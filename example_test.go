package tsvstress_test

import (
	"fmt"

	"tsvstress"
)

// The minimal analysis flow: build the baseline structure, place two
// TSVs, and compare the linear-superposition baseline with the
// interactive-stress-aware framework at the gap midpoint.
func Example() {
	st := tsvstress.Baseline(tsvstress.BCB)
	pl := tsvstress.PairPlacement(10)
	an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
	if err != nil {
		panic(err)
	}
	mid := tsvstress.Pt(0, 0)
	fmt.Printf("LS  sxx = %.1f MPa\n", an.StressLS(mid).XX)
	fmt.Printf("PF  sxx = %.1f MPa\n", an.StressAt(mid).XX)
	// Output:
	// LS  sxx = 58.1 MPa
	// PF  sxx = 37.4 MPa
}

// The analytical single-TSV solution gives the Eq. (6) decay constant
// and the stress anywhere around an isolated via.
func ExampleSolveSingleTSV() {
	sol, err := tsvstress.SolveSingleTSV(tsvstress.Baseline(tsvstress.BCB))
	if err != nil {
		panic(err)
	}
	fmt.Printf("K = %.1f MPa*um^2\n", sol.K)
	s := sol.StressAt(tsvstress.Pt(6, 0), tsvstress.Pt(0, 0))
	fmt.Printf("sxx(6um) = %.2f MPa\n", s.XX)
	// Output:
	// K = 725.9 MPa*um^2
	// sxx(6um) = 20.16 MPa
}

// Mobility variation and keep-out zones follow directly from the stress
// tensor via the piezoresistance model.
func ExampleKeepOutRadius() {
	st := tsvstress.Baseline(tsvstress.BCB)
	r, err := tsvstress.KeepOutRadius(st, tsvstress.PMOS, 0.01)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PMOS 1%% KOZ radius = %.1f um\n", r)
	// Output:
	// PMOS 1% KOZ radius = 10.0 um
}

// Error metrics in the paper's layout: compare two sampled fields above
// a stress threshold.
func ExampleCompareFields() {
	golden := []tsvstress.Stress{{XX: 100}, {XX: 60}, {XX: 5}}
	method := []tsvstress.Stress{{XX: 110}, {XX: 57}, {XX: 9}}
	stats, err := tsvstress.CompareFields(golden, method, "xx", 50)
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d avg=%.1f MPa rate=%.1f%%\n", stats.N, stats.AvgError, stats.AvgErrorRate)
	// Output:
	// n=2 avg=6.5 MPa rate=7.5%
}
