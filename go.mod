module tsvstress

go 1.22
