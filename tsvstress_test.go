package tsvstress

import (
	"testing"
	"tsvstress/internal/floats"
)

// End-to-end smoke test of the public API surface.
func TestPublicAPIFlow(t *testing.T) {
	st := Baseline(BCB)
	pl := PairPlacement(10)
	an, err := NewAnalyzer(st, pl, AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := Pt(0, 2)
	ls := an.StressLS(p)
	full := an.StressAt(p)
	if ls == full {
		t.Error("interactive correction should change the stress at a near point")
	}
	if full.VonMises() <= 0 {
		t.Error("von Mises should be positive near TSVs")
	}
	// Map over a small lattice in both modes.
	pts := []Point{Pt(0, 2), Pt(3, 3), Pt(-4, 1)}
	fullMap := an.Map(pts, ModeFull)
	lsMap := an.Map(pts, ModeLS)
	if len(fullMap) != 3 || len(lsMap) != 3 {
		t.Fatal("map sizes wrong")
	}
	stats, err := CompareFields(fullMap, lsMap, "xx", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != 3 || stats.AvgError <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if _, err := CompareFields(fullMap, lsMap, "bogus", 0); err == nil {
		t.Error("unknown component should fail")
	}
}

func TestPublicSingleTSV(t *testing.T) {
	sol, err := SolveSingleTSV(Baseline(BCB))
	if err != nil {
		t.Fatal(err)
	}
	if sol.K <= 0 {
		t.Errorf("K = %v", sol.K)
	}
	m, err := NewInteractModel(Baseline(SiO2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.MMax != 10 {
		t.Errorf("MMax = %d", m.MMax)
	}
}

func TestPublicPlacements(t *testing.T) {
	if FiveCrossPlacement(10).Len() != 5 {
		t.Error("five cross wrong")
	}
	if ArrayPlacement(3, 4, 10).Len() != 12 {
		t.Error("array wrong")
	}
	pl, err := RandomPlacement(20, 0.005, 7, 1)
	if err != nil || pl.Len() != 20 {
		t.Errorf("random placement: %v %v", pl.Len(), err)
	}
	if _, err := RandomPlacement(10, -1, 7, 1); err == nil {
		t.Error("bad density should fail")
	}
}

func TestPublicFEM(t *testing.T) {
	st := Baseline(BCB)
	pl := NewPlacement(Pt(0, 0))
	dom := FEMDomainFor(pl, st, RectAround(Pt(0, 0), 20, 20), 5)
	res, err := SolveFEM(pl, st, dom, FEMOptions{H: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSingleTSV(st)
	if err != nil {
		t.Fatal(err)
	}
	got := res.StressAt(Pt(6, 0)).XX
	want := sol.StressAt(Pt(6, 0), Pt(0, 0)).XX
	if !floats.AlmostEqualRel(got, want, 0.35) {
		t.Errorf("raw FEM σxx = %v, analytic %v", got, want)
	}
}
