// Command tsvfem runs the in-house plane-stress finite-element golden
// solver on a placement and writes a stress map CSV — the reference the
// analytical methods are validated against.
//
// Usage:
//
//	tsvfem -placement chip.json -region 60x30 -spacing 0.5 -o fem.csv
//	tsvfem -placement chip.json -h 0.25 -raw     # single-mesh solve
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"tsvstress/internal/fem"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/placefile"
	"tsvstress/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvfem: ")
	var (
		placementPath = flag.String("placement", "", "placement JSON file (required; - for stdin)")
		regionSpec    = flag.String("region", "", "map region WxH in µm (default: placement bounds + 25)")
		spacing       = flag.Float64("spacing", 0.5, "simulation point spacing in µm")
		h             = flag.Float64("h", 0.5, "global mesh size in µm")
		margin        = flag.Float64("margin", 12, "solve-domain margin beyond the region in µm")
		raw           = flag.Bool("raw", false, "single-mesh solve instead of the submodel golden")
		out           = flag.String("o", "-", "output CSV path (- for stdout)")
	)
	flag.Parse()
	if *placementPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	pl, st, err := placefile.Load(*placementPath)
	if err != nil {
		log.Fatal(err)
	}
	region := pl.Bounds(25)
	if *regionSpec != "" {
		var w, hh float64
		if _, err := fmt.Sscanf(strings.ToLower(*regionSpec), "%fx%f", &w, &hh); err != nil {
			log.Fatalf("bad -region %q: %v", *regionSpec, err)
		}
		region = geom.RectAround(pl.Bounds(0).Center(), w, hh)
	}
	domain := fem.DomainFor(pl, st, region, *margin)

	t0 := time.Now()
	var golden fem.Field
	if *raw {
		res, err := fem.Solve(pl, st, domain, fem.Options{H: *h})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("raw solve: %d DOF, %d CG iterations, residual %.2g",
			res.Stats.DOF, res.Stats.Iterations, res.Stats.Residual)
		golden = res
	} else {
		sub, err := fem.SolveSubmodel(pl, st, domain, fem.SubmodelOptions{GlobalH: *h})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("submodel golden: global fine %d DOF, %d patches",
			sub.Global.Fine.Stats.DOF, len(sub.Patches))
		golden = sub
	}
	log.Printf("solved in %v", time.Since(t0).Round(time.Millisecond))

	grid, err := field.NewGrid(region, *spacing)
	if err != nil {
		log.Fatal(err)
	}
	pts := field.Masked(grid.Points(), field.OutsideTSVs(pl, st.RPrime))
	vals := make([]tensor.Stress, len(pts))
	for i, p := range pts {
		vals[i] = golden.StressAt(p)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w = f
	}
	if err := field.WriteCSV(w, pts, map[string][]tensor.Stress{"fem": vals},
		[]string{"xx", "yy", "xy", "vm"}); err != nil {
		log.Fatal(err)
	}
	// Close (when writing a real file) is the last chance to learn the
	// kernel lost our CSV; a defer would swallow that error.
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			log.Fatalf("closing %s: %v", *out, err)
		}
	}
}
