// Command tsvexp regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index) and writes
// markdown reports plus CSV data into a results directory.
//
// Usage:
//
//	tsvexp -out results            # everything, full resolution
//	tsvexp -quick -only tab1,fig3  # reduced resolution, selected ids
//
// Experiment ids: fig3, fig4, tab1, tab3 (BCB pair sweep shares tab1's
// solves), tab4, tab5 (SiO2 sweep), fig6, tab2 (five-TSV), tab6
// (scalability).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tsvstress/internal/cluster"
	"tsvstress/internal/exp"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
	"tsvstress/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvexp: ")
	var (
		outDir = flag.String("out", "results", "output directory")
		quick  = flag.Bool("quick", false, "reduced resolution (for smoke runs)")
		only   = flag.String("only", "", "comma-separated experiment ids (default: all)")
		seed   = flag.Int64("seed", 2013, "seed for random placements")
		bench  = flag.Bool("bench", false, "run only the full-chip map benchmark and write BENCH_fullchip.json")
		agingF = flag.Bool("aging", false, "run the aging lifetime sweep and write AGING_curves.json (with -compare: golden-check two sweep records)")
		fleet  = flag.String("cluster", "", "with -bench: run the cluster benchmark instead, against local:N in-process workers or a comma-separated worker fleet, and write BENCH_cluster.json")
		cpuPro = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memPro = flag.String("memprofile", "", "write a heap profile at exit to this file")
		cmp    = flag.Bool("compare", false, "with -bench: compare two benchmark JSON records (old new) instead of running; exits 1 on a >tolerance regression")
		cmpTol = flag.Float64("compare-tol", 0.10, "with -compare: fractional regression tolerance")
	)
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			log.Fatalf("-compare needs exactly two files (old.json new.json), got %d args", flag.NArg())
		}
		if *agingF {
			os.Exit(runAgingCompare(flag.Arg(0), flag.Arg(1), *cmpTol))
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *cmpTol))
	}

	stopProf, err := prof.Start(*cpuPro, *memPro)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	sel := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(id)] = true
		}
	}
	want := func(ids ...string) bool {
		if len(sel) == 0 {
			return true
		}
		for _, id := range ids {
			if sel[id] {
				return true
			}
		}
		return false
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	if *agingF {
		// Lifetime-vs-pitch and lifetime-vs-parallelism curves through
		// the aging engine (DESIGN.md §17); the emitted record is the
		// golden CI compares against.
		log.Print("aging: EM + extrusion lifetime sweep ...")
		t0 := time.Now()
		s, err := exp.RunAgingSweep(*quick)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(*outDir, "AGING_curves.json"))
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteAgingJSON(f, s); err != nil {
			log.Fatal(err)
		}
		closeOut(f)
		first, last := s.PitchCurve[0], s.PitchCurve[len(s.PitchCurve)-1]
		log.Printf("aging done in %v: pitch %g→%g µm moves mean lifetime %.3g→%.3g s, mean risk %.3g→%.3g",
			time.Since(t0).Round(time.Millisecond), first.PitchUm, last.PitchUm,
			first.MeanLifetimeSeconds, last.MeanLifetimeSeconds, first.MeanRisk, last.MeanRisk)
		log.Printf("results written to %s", *outDir)
		return
	}
	if *bench && *fleet != "" {
		runClusterBench(*outDir, *fleet, *quick, *seed)
		return
	}
	if *bench {
		// Full-chip map throughput: 1000 TSVs, ~200k device-layer grid
		// points (20k in quick mode), LS and Full through the
		// tile-batched engine. The JSON record tracks the perf
		// trajectory across PRs.
		numPts := 200_000
		if *quick {
			numPts = 20_000
		}
		log.Printf("bench: full-chip map, 1000 TSVs, ~%d points ...", numPts)
		t0 := time.Now()
		r, err := exp.RunFullChipBench(1000, numPts, *seed)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(*outDir, "BENCH_fullchip.json"))
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteFullChipJSON(f, r); err != nil {
			log.Fatal(err)
		}
		closeOut(f)
		log.Printf("bench done in %v: LS %.0f ns/point, Full %.0f ns/point (%d points, %d pair rounds, %d cached pitches)",
			time.Since(t0).Round(time.Millisecond), r.LSNsPerPoint, r.FullNsPerPoint, r.NumPoints, r.PairRounds, r.CoeffCacheSize)
		log.Printf("results written to %s", *outDir)
		return
	}
	cfg := exp.Config{Quick: *quick}
	pitches := exp.Pitches
	if *quick {
		pitches = exp.QuickPitches
	}

	openOut := func(name string) *os.File {
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	if want("fig3") {
		log.Print("fig3: σxx line scan, 2 TSVs, BCB, d=10 ...")
		t0 := time.Now()
		sc, err := exp.RunLineScan(cfg, material.BCB, 10, 25, 101)
		if err != nil {
			log.Fatal(err)
		}
		f := openOut("fig3.md")
		outf(f, "## Figure 3 — σxx along the line through two TSV centers (BCB, d=10µm)\n\n```\n")
		if err := sc.Write(f, "sigma_xx (MPa) vs x (um)"); err != nil {
			log.Fatal(err)
		}
		outf(f, "```\n\nGenerated in %v.\n", time.Since(t0).Round(time.Second))
		closeOut(f)
		log.Printf("fig3 done in %v", time.Since(t0).Round(time.Second))
	}

	if want("tab1", "tab3", "fig4") {
		log.Print("tab1/tab3/fig4: BCB pair sweep ...")
		t0 := time.Now()
		sw, err := exp.RunPairSweep(cfg, material.BCB, pitches)
		if err != nil {
			log.Fatal(err)
		}
		f := openOut("tab1_tab3.md")
		outf(f, "## Tables 1 and 3 — two-TSV pitch sweep, BCB liner\n\n")
		if err := sw.WriteTable(f, metrics.SigmaXX, "Table 1 (measured): σxx"); err != nil {
			log.Fatal(err)
		}
		if err := sw.WriteTable(f, metrics.VonMises, "Table 3 (measured): von Mises"); err != nil {
			log.Fatal(err)
		}
		closeOut(f)

		// Figure 4 uses the d=10 case of the sweep.
		for i, pc := range sw.Cases {
			if pc.D != 10 && !(cfg.Quick && i == 1) {
				continue
			}
			em, err := exp.BuildErrorMaps(cfg, pc, geom.RectAround(geom.Pt(0, 0), 60, 30))
			if err != nil {
				log.Fatal(err)
			}
			f := openOut("fig4.md")
			outf(f, "## Figure 4 — σxx error maps, 2 TSVs (BCB, d=%g)\n\n```\n", pc.D)
			if err := em.Write(f, "two-TSV"); err != nil {
				log.Fatal(err)
			}
			outf(f, "```\n")
			closeOut(f)
			break
		}
		log.Printf("tab1/tab3/fig4 done in %v", time.Since(t0).Round(time.Second))
	}

	if want("tab4", "tab5") {
		log.Print("tab4/tab5: SiO2 pair sweep ...")
		t0 := time.Now()
		sw, err := exp.RunPairSweep(cfg, material.SiO2, pitches)
		if err != nil {
			log.Fatal(err)
		}
		f := openOut("tab4_tab5.md")
		outf(f, "## Tables 4 and 5 — two-TSV pitch sweep, SiO2 liner\n\n")
		if err := sw.WriteTable(f, metrics.SigmaXX, "Table 4 (measured): σxx"); err != nil {
			log.Fatal(err)
		}
		if err := sw.WriteTable(f, metrics.VonMises, "Table 5 (measured): von Mises"); err != nil {
			log.Fatal(err)
		}
		closeOut(f)
		log.Printf("tab4/tab5 done in %v", time.Since(t0).Round(time.Second))
	}

	if want("tab2", "fig6", "fig5") {
		log.Print("tab2/fig6: five-TSV placement ...")
		t0 := time.Now()
		fc, err := exp.RunFiveCase(cfg)
		if err != nil {
			log.Fatal(err)
		}
		f := openOut("tab2_fig6.md")
		outf(f, "## Table 2 and Figure 6 — five-TSV placement (Fig. 5, min pitch 10µm, BCB)\n\n")
		if err := fc.WriteTable(f, "Table 2 (measured)"); err != nil {
			log.Fatal(err)
		}
		em, err := fc.ErrorMaps(cfg)
		if err != nil {
			log.Fatal(err)
		}
		outf(f, "```\n")
		if err := em.Write(f, "five-TSV"); err != nil {
			log.Fatal(err)
		}
		outf(f, "```\n")
		closeOut(f)
		log.Printf("tab2/fig6 done in %v", time.Since(t0).Round(time.Second))
	}

	if want("tab6") {
		log.Print("tab6: scalability ...")
		t0 := time.Now()
		results, err := exp.RunTable6(*quick, *seed)
		if err != nil {
			log.Fatal(err)
		}
		f := openOut("tab6.md")
		if err := exp.WriteTable6(f, results); err != nil {
			log.Fatal(err)
		}
		closeOut(f)
		log.Printf("tab6 done in %v", time.Since(t0).Round(time.Second))
	}

	log.Printf("results written to %s", *outDir)
}

// runClusterBench runs the sharded-cluster benchmark (DESIGN.md §14)
// and writes BENCH_cluster.json. The fleet spec is either "local:N" —
// N in-process workers splitting this machine's cores, so fleet sizes
// compare at equal total core budget — or a comma-separated list of
// running tsvworker addresses.
func runClusterBench(outDir, fleet string, quick bool, seed int64) {
	numPts := 250_000
	if quick {
		numPts = 25_000
	}
	var addrs []string
	if n, ok := strings.CutPrefix(fleet, "local:"); ok {
		count, err := strconv.Atoi(n)
		if err != nil || count < 1 {
			log.Fatalf("-cluster local:N needs N ≥ 1, got %q", fleet)
		}
		lw, err := cluster.StartLocalWorkers(count, cluster.WorkerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer lw.Stop()
		addrs = lw.Addrs()
	} else {
		for _, a := range strings.Split(fleet, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			log.Fatalf("-cluster %q names no workers", fleet)
		}
	}
	log.Printf("bench: cluster map, 1000 TSVs, ~%d points, %d worker(s) ...", numPts, len(addrs))
	t0 := time.Now()
	r, err := exp.RunClusterBench(1000, numPts, seed, addrs)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(outDir, "BENCH_cluster.json"))
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.WriteClusterJSON(f, r); err != nil {
		log.Fatal(err)
	}
	closeOut(f)
	if r.SpeedupValid {
		log.Printf("bench done in %v: single-process %.0f ms, 1 worker %.0f ms, %d workers %.0f ms (×%.2f), max |Δ| %.2g MPa",
			time.Since(t0).Round(time.Millisecond), r.SingleProcessMillis, r.OneWorkerMillis, r.NumWorkers, r.ClusterMillis, r.Speedup, r.MaxAbsDiffMPa)
	} else {
		// The workers shared cores (host has fewer CPUs than the fleet),
		// so a speedup headline would measure scheduler overhead, not
		// scaling; the JSON carries speedup_valid: false for the same
		// reason.
		log.Printf("bench done in %v: single-process %.0f ms, 1 worker %.0f ms, %d workers %.0f ms (speedup not meaningful: %d workers > %d host CPUs), max |Δ| %.2g MPa",
			time.Since(t0).Round(time.Millisecond), r.SingleProcessMillis, r.OneWorkerMillis, r.NumWorkers, r.ClusterMillis, r.NumWorkers, r.HostCPUs, r.MaxAbsDiffMPa)
	}
	log.Printf("results written to %s", outDir)
}

// outf writes formatted report text, treating a write failure (full
// disk, dead pipe) as fatal: a silently truncated results file is
// worse than no file.
func outf(f *os.File, format string, args ...any) {
	if _, err := fmt.Fprintf(f, format, args...); err != nil {
		log.Fatalf("writing %s: %v", f.Name(), err)
	}
}

// closeOut closes a results file and fails the run if the close
// reports an error (the last chance to hear about lost writes).
func closeOut(f *os.File) {
	if err := f.Close(); err != nil {
		log.Fatalf("closing %s: %v", f.Name(), err)
	}
}
