package main

import (
	"log"
	"os"

	"tsvstress/internal/exp"
)

// runCompare implements `tsvexp -bench -compare old.json new.json`: it
// prints the per-metric deltas between two benchmark records and
// returns the process exit code — 1 when any metric regressed by more
// than tol, so a CI job can gate on it directly.
func runCompare(oldPath, newPath string, tol float64) int {
	oldF, err := os.Open(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	defer oldF.Close()
	newF, err := os.Open(newPath)
	if err != nil {
		log.Fatal(err)
	}
	defer newF.Close()
	deltas, err := exp.CompareBenchJSON(oldF, newF, tol)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("comparing %s -> %s (tolerance %.0f%%)", oldPath, newPath, 100*tol)
	regressions, err := exp.WriteBenchDeltas(os.Stdout, deltas)
	if err != nil {
		log.Fatal(err)
	}
	if regressions > 0 {
		log.Printf("%d metric(s) regressed beyond %.0f%%", regressions, 100*tol)
		return 1
	}
	log.Print("no regressions")
	return 0
}

// runAgingCompare implements `tsvexp -aging -compare golden.json
// fresh.json`: every curve metric must sit within tol of the golden
// and the pitch curve must keep its monotone trend. Exit code 1 on any
// deviation, so the CI aging job gates on it directly.
func runAgingCompare(goldenPath, freshPath string, tol float64) int {
	goldenF, err := os.Open(goldenPath)
	if err != nil {
		log.Fatal(err)
	}
	defer goldenF.Close()
	freshF, err := os.Open(freshPath)
	if err != nil {
		log.Fatal(err)
	}
	defer freshF.Close()
	log.Printf("comparing aging curves %s -> %s (tolerance %.1f%%)", goldenPath, freshPath, 100*tol)
	report, err := exp.CompareAgingJSON(goldenF, freshF, tol)
	if _, werr := os.Stdout.WriteString(report); werr != nil {
		log.Fatal(werr)
	}
	if err != nil {
		log.Printf("aging curves deviate from golden: %v", err)
		return 1
	}
	log.Print("aging curves match the golden")
	return 0
}
