// Command tsvworker runs one evaluation worker of the sharded compute
// cluster (DESIGN.md §14). A worker is stateless from the operator's
// point of view: it holds per-job analyzers only as a cache, and a
// coordinator that loses a worker simply re-ships the job to another
// one. Start a fleet, then point tsvexp -cluster or tsvserve -workers
// at the addresses:
//
//	tsvworker -addr :9101 &
//	tsvworker -addr :9102 &
//	tsvexp -bench -cluster localhost:9101,localhost:9102
//
// Endpoints (length-prefixed binary frames over HTTP; DESIGN.md §14):
//
//	GET    /v1/cluster/ping          liveness + protocol version + cores
//	POST   /v1/cluster/jobs/{id}     declare a job (placement, points, spec)
//	POST   /v1/cluster/jobs/{id}/eval evaluate a batch of tiles
//	DELETE /v1/cluster/jobs/{id}     drop a job's cached state
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"tsvstress/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvworker: ")
	var (
		addr    = flag.String("addr", ":9101", "listen address")
		maxJobs = flag.Int("max-jobs", 8, "job states cached before LRU eviction")
		threads = flag.Int("threads", 0, "tile-evaluation parallelism (0 = all cores)")
		drain   = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	w := cluster.NewWorker(cluster.WorkerOptions{MaxJobs: *maxJobs, Workers: *threads})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           w.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("worker listening on %s (job cache %d, threads %d)", *addr, *maxJobs, *threads)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining ≤ %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
