// Command tsvworker runs one evaluation worker of the sharded compute
// cluster (DESIGN.md §14). A worker is stateless from the operator's
// point of view: it holds per-job analyzers only as a cache, and a
// coordinator that loses a worker simply re-ships the job to another
// one. Start a fleet, then point tsvexp -cluster or tsvserve -workers
// at the addresses:
//
//	tsvworker -addr :9101 &
//	tsvworker -addr :9102 &
//	tsvexp -bench -cluster localhost:9101,localhost:9102
//
// Endpoints (length-prefixed binary frames over HTTP; DESIGN.md §14):
//
//	GET    /v1/cluster/ping          liveness + protocol version + cores
//	POST   /v1/cluster/jobs/{id}     declare a job (placement, points, spec)
//	POST   /v1/cluster/jobs/{id}/eval evaluate a batch of tiles
//	DELETE /v1/cluster/jobs/{id}     drop a job's cached state
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"tsvstress/internal/cluster"
	"tsvstress/internal/resilience"
)

// listenRetry binds addr, retrying with deterministic backoff when the
// port is momentarily unavailable — the common fleet-restart race where
// the old process's socket lingers in TIME_WAIT or the supervisor
// restarts workers faster than the kernel releases the port. Binding is
// how a worker joins the fleet (coordinators register workers by
// heartbeat), so a transiently busy port should delay registration, not
// kill the process.
func listenRetry(ctx context.Context, addr string, attempts int) (net.Listener, error) {
	bo := resilience.BackoffConfig{Base: 200 * time.Millisecond, Max: 2 * time.Second}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		if attempt == attempts {
			break
		}
		delay := bo.Next(attempt)
		log.Printf("bind %s: %v (retry %d/%d in %v)", addr, err, attempt, attempts-1, delay)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
	return nil, lastErr
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvworker: ")
	var (
		addr        = flag.String("addr", ":9101", "listen address")
		maxJobs     = flag.Int("max-jobs", 8, "job states cached before LRU eviction")
		threads     = flag.Int("threads", 0, "tile-evaluation parallelism (0 = all cores)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window")
		bindRetries = flag.Int("bind-retries", 5, "listener-bind attempts before giving up (backoff between attempts)")
	)
	flag.Parse()

	w := cluster.NewWorker(cluster.WorkerOptions{MaxJobs: *maxJobs, Workers: *threads})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           w.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := listenRetry(ctx, *addr, *bindRetries)
	if err != nil {
		log.Fatalf("bind %s: %v", *addr, err)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("worker listening on %s (job cache %d, threads %d)", ln.Addr(), *maxJobs, *threads)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining ≤ %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
