// Command tsvserve runs the incremental stress-analysis service: a
// long-lived HTTP server holding placement sessions whose stress maps
// update incrementally as edits stream in (the ECO loop as an API).
//
// Usage:
//
//	tsvserve -addr :8080 -wal /var/lib/tsvserve/wal
//
// API (JSON; see DESIGN.md §12–13):
//
//	POST   /v1/placements               create a session from a placement
//	GET    /v1/placements               list sessions
//	POST   /v1/placements/{id}/edits    apply an atomic edit batch + flush
//	GET    /v1/placements/{id}/map      field summary, or CSV with format=csv
//	GET    /v1/placements/{id}/screen   reliability ranking + KOZ radii
//	DELETE /v1/placements/{id}          drop a session
//	GET    /healthz                     liveness (200 while the process runs)
//	GET    /readyz                      readiness (recovery done, queue sane)
//	GET    /debug/vars                  expvar metrics
//
// With -wal set, every accepted edit batch is journaled and synced
// before it is acknowledged, and on startup the server rebuilds its
// sessions from the journals (checkpoint + replay), so a crash or kill
// loses no acknowledged edit. The server shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests and session state within
// the -drain window before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tsvstress/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvserve: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxSessions = flag.Int("max-sessions", 16, "maximum live placement sessions")
		maxTSVs     = flag.Int("max-tsvs", 20000, "maximum TSVs per placement")
		maxPoints   = flag.Int("max-points", 2_000_000, "maximum simulation points per session")
		maxInFlight = flag.Int("max-inflight", 4, "maximum concurrently executing compute requests")
		reqTimeout  = flag.Duration("timeout", 60*time.Second, "per-request compute deadline")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		maxLive     = flag.Int("max-live-sessions", 0, "sessions kept hydrated in memory; excess cold sessions are evicted to the WAL and rehydrated on demand (0 = no eviction; requires -wal)")
		walDir      = flag.String("wal", "", "journal directory for crash-safe sessions (empty = sessions die with the process)")
		snapEvery   = flag.Int("snapshot-every", 8, "edit batches between placement snapshots")
		shedDepth   = flag.Int("shed-depth", 0, "admission-queue depth that triggers full→ls degradation (0 = 2×max-inflight)")
		workers     = flag.String("workers", "", "comma-separated tsvworker addresses; full-mode session flushes are sharded across them (empty = evaluate in-process)")
	)
	flag.Parse()

	var workerAddrs []string
	for _, a := range strings.Split(*workers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workerAddrs = append(workerAddrs, a)
		}
	}

	s := serve.NewServer(serve.Options{
		MaxSessions:     *maxSessions,
		MaxTSVs:         *maxTSVs,
		MaxPoints:       *maxPoints,
		MaxInFlight:     *maxInFlight,
		RequestTimeout:  *reqTimeout,
		WALDir:          *walDir,
		MaxLiveSessions: *maxLive,
		SnapshotEvery:   *snapEvery,
		ShedQueueDepth:  *shedDepth,
		ClusterWorkers:  workerAddrs,
	})
	if len(workerAddrs) > 0 {
		log.Printf("cluster mode: sharding flushes across %d worker(s)", len(workerAddrs))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *walDir != "" {
		start := time.Now()
		n, err := s.Recover(ctx)
		if err != nil {
			// Per-session recovery failures are logged but not fatal:
			// healthy sessions serve, broken ones are quarantined or
			// left on disk for inspection.
			log.Printf("recovery: %v", err)
		}
		log.Printf("recovered %d session(s) from %s in %v", n, *walDir, time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (sessions ≤ %d, in-flight ≤ %d)", *addr, *maxSessions, *maxInFlight)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining ≤ %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Persist session state (final snapshots, journal close) within
	// whatever remains of the drain window.
	if err := s.Close(shutCtx); err != nil {
		log.Printf("close: %v", err)
	}
}
