// Command tsvlint is the repository's domain-aware static-analysis
// suite: five analyzers enforcing the numerical, hot-path and
// API-boundary invariants the framework's correctness and performance
// claims rest on (DESIGN.md §9).
//
//	floatcmp       no ==/!= on computed floats; use internal/floats
//	hotpath        no Atan2/Pow/closures/map-ranges/growing appends in
//	               //tsvlint:hotpath files
//	panicboundary  no kernel panic reachable from an unvalidated
//	               exported entry point
//	nonfinite      API-boundary constructors must reject NaN/Inf
//	unitdoc        exported physical-quantity functions document units
//
// Standalone:
//
//	go run ./cmd/tsvlint ./...          # whole module, all analyzers
//	tsvlint -tests ./...                # include test packages
//
// As a vet tool (package analyzers only — program analyzers need the
// whole module loaded at once):
//
//	go vet -vettool=$(which tsvlint) ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// operational errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsvstress/internal/analysis"
	"tsvstress/internal/analysis/floatcmp"
	"tsvstress/internal/analysis/hotpath"
	"tsvstress/internal/analysis/nonfinite"
	"tsvstress/internal/analysis/panicboundary"
	"tsvstress/internal/analysis/unitdoc"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatcmp.Analyzer,
		hotpath.Analyzer,
		panicboundary.Analyzer,
		nonfinite.Analyzer,
		unitdoc.Analyzer,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvlint: ")

	if analysis.UnitMain("tsvlint", analyzers()) {
		return // unreachable; UnitMain exits when it handles the args
	}

	var (
		tests = flag.Bool("tests", false, "also load and analyze test packages")
		dir   = flag.String("C", ".", "module directory to analyze")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tsvlint [-tests] [-C dir] [package patterns]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(analysis.LoadOptions{Dir: *dir, Patterns: patterns, Tests: *tests})
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(prog, analyzers())
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if analysis.PrintFindings(os.Stderr, findings) > 0 {
		os.Exit(1)
	}
}
