// Command tsvlint is the repository's domain-aware static-analysis
// suite: nine analyzers enforcing the numerical, hot-path, API-boundary
// and serving-safety invariants the framework's correctness and
// performance claims rest on (DESIGN.md §9, §10).
//
//	floatcmp       no ==/!= on computed floats; use internal/floats
//	hotpath        no Atan2/Pow/closures/map-ranges/growing appends in
//	               //tsvlint:hotpath files
//	panicboundary  no kernel panic reachable from an unvalidated
//	               exported entry point
//	nonfinite      API-boundary constructors must reject NaN/Inf
//	unitdoc        exported physical-quantity functions document units
//	lockorder      mutex acquisition must respect //tsvlint:lockorder
//	               directives; undeclared inversions are reported
//	ctxflow        request paths into the evaluation core must accept
//	               and forward context.Context; no context.Background
//	               on request paths
//	goroleak       goroutines in serving packages need a provable join
//	               or cancel path; no time.After in loops
//	allocfree      //tsvlint:allocfree functions proven allocation-free
//	               against compiler escape diagnostics
//
// Standalone:
//
//	go run ./cmd/tsvlint ./...            # whole module, all analyzers
//	tsvlint -tests ./...                  # include test packages
//	tsvlint -json ./...                   # machine-readable findings
//	tsvlint -sarif out.sarif ./...        # SARIF 2.1.0 for code scanning
//	tsvlint -baseline lint/baseline.json ./...   # suppress known findings
//	tsvlint -write-baseline lint/baseline.json ./...  # snapshot current
//
// As a vet tool (package analyzers only — program analyzers need the
// whole module loaded at once):
//
//	go vet -vettool=$(which tsvlint) ./...
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on
// operational errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsvstress/internal/analysis"
	"tsvstress/internal/analysis/allocfree"
	"tsvstress/internal/analysis/ctxflow"
	"tsvstress/internal/analysis/floatcmp"
	"tsvstress/internal/analysis/goroleak"
	"tsvstress/internal/analysis/hotpath"
	"tsvstress/internal/analysis/lockorder"
	"tsvstress/internal/analysis/nonfinite"
	"tsvstress/internal/analysis/panicboundary"
	"tsvstress/internal/analysis/unitdoc"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatcmp.Analyzer,
		hotpath.Analyzer,
		panicboundary.Analyzer,
		nonfinite.Analyzer,
		unitdoc.Analyzer,
		lockorder.Analyzer,
		ctxflow.Analyzer,
		goroleak.Analyzer,
		allocfree.Analyzer,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvlint: ")

	if analysis.UnitMain("tsvlint", analyzers()) {
		return // unreachable; UnitMain exits when it handles the args
	}

	var (
		tests         = flag.Bool("tests", false, "also load and analyze test packages")
		dir           = flag.String("C", ".", "module directory to analyze")
		jsonOut       = flag.Bool("json", false, "write findings as JSON to stdout")
		sarifPath     = flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file`")
		baselinePath  = flag.String("baseline", "", "suppress findings recorded in baseline `file`; report stale entries")
		writeBaseline = flag.String("write-baseline", "", "snapshot current findings to baseline `file` and exit 0")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tsvlint [flags] [package patterns]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(analysis.LoadOptions{Dir: *dir, Patterns: patterns, Tests: *tests})
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(prog, analyzers())
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if *writeBaseline != "" {
		if err := analysis.WriteBaselineFile(*writeBaseline, prog.Dir, findings); err != nil {
			log.Print(err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "tsvlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		var stale []analysis.BaselineEntry
		findings, stale = base.Apply(prog.Dir, findings)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "tsvlint: stale baseline entry (no longer reported): %s %s: %s\n", e.Analyzer, e.File, e.Message)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		werr := analysis.WriteSARIF(f, prog.Dir, analyzers(), findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Print(werr)
			os.Exit(2)
		}
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, prog.Dir, findings); err != nil {
			log.Print(err)
			os.Exit(2)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	if analysis.PrintFindings(os.Stderr, findings) > 0 {
		os.Exit(1)
	}
}
