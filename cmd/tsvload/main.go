// Command tsvload is the gateway's proof harness: a deterministic
// synthetic traffic generator that drives thousands of concurrent
// placement sessions of mixed create/edit/map/screen/aging traffic
// against a tsvgate (or a bare tsvserve) and writes a per-route
// latency/SLO report to results/LOAD_slo.json.
//
// Usage (10k-session run against a local two-replica topology):
//
//	tsvload -target http://127.0.0.1:9090 -sessions 10000 -workers 128
//
// Determinism: all traffic *content* — placements, edit batches, which
// sessions issue screen/aging calls, tenant assignment — is a pure
// function of -seed and the session index, so two runs against
// equivalent fleets replay the same workload (latencies, of course,
// are the measurement). A deterministic subset of sessions is
// shadow-verified: tsvload maintains the placement locally, fetches
// the served map, and recomputes it from scratch with the in-process
// engine; any point off by more than 1e-9 MPa is a parity failure.
//
// Exit status: 0 on success; 1 when -slo-p99-ms or -require-parity
// gates fail (the report is still written first); 2 on usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/serve"
	"tsvstress/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvload: ")
	var (
		target      = flag.String("target", "http://127.0.0.1:9090", "gateway (or replica) base URL")
		sessions    = flag.Int("sessions", 10000, "placement sessions to create")
		workers     = flag.Int("workers", 128, "concurrent traffic workers")
		seed        = flag.Int64("seed", 1, "workload seed; traffic content is a pure function of seed and session index")
		editBatches = flag.Int("edit-batches", 3, "edit batches per session (each batch flushes incrementally)")
		tenants     = flag.Int("tenants", 4, "distinct tenants cycling through X-Tsvgate-Tenant")
		verifyN     = flag.Int("verify", 8, "sessions shadow-verified against an in-process from-scratch evaluation")
		screenEvery = flag.Int("screen-every", 4, "1-in-N sessions issue a reliability screen")
		agingEvery  = flag.Int("aging-every", 50, "1-in-N sessions issue an aging run (0 = never)")
		deleteEvery = flag.Int("delete-every", 16, "1-in-N sessions are deleted at the end of their script (0 = never)")
		revisits    = flag.Int("revisits", -1, "map re-reads over already-built sessions after the build pass, exercising eviction/rehydration (-1 = sessions/4)")
		mode        = flag.String("mode", "full", "session evaluation mode: full, ls or interactive")
		spacing     = flag.Float64("spacing", 3, "simulation-grid spacing in µm")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		out         = flag.String("out", filepath.Join("results", "LOAD_slo.json"), "report path")
		sloP99      = flag.Float64("slo-p99-ms", 0, "fail (exit 1) when any core route's p99 exceeds this many ms (0 = no gate)")
		reqParity   = flag.Bool("require-parity", false, "fail (exit 1) on any shadow-verification parity failure")
	)
	flag.Parse()
	if *sessions <= 0 || *workers <= 0 {
		log.Println("need -sessions > 0 and -workers > 0")
		os.Exit(2)
	}
	if *revisits < 0 {
		*revisits = *sessions / 4
	}
	if *verifyN > *sessions {
		*verifyN = *sessions
	}

	client := &http.Client{Timeout: *timeout}
	rec := newRecorder()
	run := &loadRun{
		target:  *target,
		client:  client,
		rec:     rec,
		seed:    *seed,
		tenants: *tenants,
		mode:    *mode,
		spacing: *spacing,
		cfg: scriptConfig{
			editBatches: *editBatches,
			screenEvery: *screenEvery,
			agingEvery:  *agingEvery,
			deleteEvery: *deleteEvery,
		},
	}

	log.Printf("driving %d sessions (%d workers, seed %d) against %s", *sessions, *workers, *seed, *target)
	start := time.Now()

	// Build pass: every session runs its deterministic script.
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run.runSession(i, i < *verifyN)
			}
		}()
	}
	for i := 0; i < *sessions; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	buildDone := time.Now()
	log.Printf("build pass done in %v: %d sessions live", buildDone.Sub(start).Round(time.Millisecond), run.liveCount())

	// Revisit pass: re-read maps of a deterministic shuffle of the live
	// sessions. Under -max-live-sessions on the replicas this is the
	// eviction/rehydration workout — cold sessions must come back with
	// their exact state.
	if *revisits > 0 {
		run.revisit(*revisits, *workers)
		log.Printf("revisit pass done: %d map re-reads in %v", *revisits, time.Since(buildDone).Round(time.Millisecond))
	}

	wall := time.Since(start)
	report := run.report(*sessions, *workers, wall)
	if err := writeReport(*out, report); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s (%d requests, %.1f req/s, %d errors, %d parity checks / %d failures)",
		*out, report.TotalRequests, report.ThroughputRPS, report.TotalErrors,
		report.Parity.Checked, report.Parity.Failures)

	fail := false
	if *reqParity && report.Parity.Failures > 0 {
		log.Printf("GATE: %d parity failure(s)", report.Parity.Failures)
		fail = true
	}
	if *sloP99 > 0 {
		for _, route := range []string{"create", "edits", "map"} {
			if rs, ok := report.Routes[route]; ok && rs.P99Ms > *sloP99 {
				log.Printf("GATE: route %s p99 %.1fms exceeds SLO %.1fms", route, rs.P99Ms, *sloP99)
				fail = true
			}
		}
	}
	if fail {
		os.Exit(1)
	}
}

// scriptConfig is the per-session script shape (all deterministic).
type scriptConfig struct {
	editBatches int
	screenEvery int
	agingEvery  int
	deleteEvery int
}

type loadRun struct {
	target  string
	client  *http.Client
	rec     *recorder
	seed    int64
	tenants int
	mode    string
	spacing float64
	cfg     scriptConfig

	mu                            sync.Mutex
	live                          []string // ids of sessions left alive after their script
	parityChecked, parityFailures int
}

func (r *loadRun) liveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// rng returns the session's private deterministic stream. Workers race
// on the wire, never on the content.
func (r *loadRun) rng(i int) *rand.Rand {
	return rand.New(rand.NewSource(r.seed*1_000_003 + int64(i)))
}

func (r *loadRun) tenant(i int) string {
	if r.tenants <= 0 {
		return "default"
	}
	return fmt.Sprintf("t%d", i%r.tenants)
}

// placement builds session i's initial lattice: 2x2 .. 3x3 at 24µm
// pitch with ±4µm jitter (min pitch stays ≥ 16µm, far above the 2R'
// = 6µm design-rule floor).
func (r *loadRun) placement(rng *rand.Rand) serve.CreateRequest {
	req := serve.CreateRequest{Spacing: r.spacing, Margin: 5, Mode: r.mode}
	n := 2 + rng.Intn(2)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			req.TSVs = append(req.TSVs, serve.TSVWire{
				X: float64(24*i) + rng.Float64()*8 - 4,
				Y: float64(24*j) + rng.Float64()*8 - 4,
			})
		}
	}
	return req
}

// editBatch draws 1–3 edits valid against the mirror (the server's
// atomic-rehearsal semantics) and applies them to it.
func (r *loadRun) editBatch(rng *rand.Rand, mirror *geom.Placement, minPitch float64) []serve.EditWire {
	n := 1 + rng.Intn(3)
	var wires []serve.EditWire
	for len(wires) < n {
		var ed geom.Edit
		var ew serve.EditWire
		switch op := rng.Intn(3); {
		case op == 1 && mirror.Len() > 4:
			idx := rng.Intn(mirror.Len())
			ed = geom.Edit{Op: geom.EditRemove, Index: idx}
			ew = serve.EditWire{Op: "remove", Index: idx}
		case op == 2:
			idx := rng.Intn(mirror.Len())
			c := mirror.TSVs[idx].Center.Add(geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4))
			ed = geom.Edit{Op: geom.EditMove, Index: idx, TSV: geom.TSV{Center: c}}
			ew = serve.EditWire{Op: "move", Index: idx, X: c.X, Y: c.Y}
		default:
			c := geom.Pt(rng.Float64()*90-10, rng.Float64()*90-10)
			ed = geom.Edit{Op: geom.EditAdd, TSV: geom.TSV{Center: c}}
			ew = serve.EditWire{Op: "add", X: c.X, Y: c.Y}
		}
		if err := ed.Apply(mirror, minPitch); err != nil {
			continue // invalid against the running batch; redraw
		}
		wires = append(wires, ew)
	}
	return wires
}

// runSession drives one session's full deterministic script.
func (r *loadRun) runSession(i int, verify bool) {
	rng := r.rng(i)
	tenant := r.tenant(i)
	create := r.placement(rng)

	var created serve.CreateResponse
	status, err := r.do("create", "POST", "/v1/placements", tenant, create, &created)
	if err != nil || status != http.StatusCreated {
		return // recorded; a failed create ends the script
	}
	base := "/v1/placements/" + created.ID

	// probe mirrors the server's placement state edit-for-edit; names
	// are irrelevant to the stress field, so it goes nameless. The
	// server builds its simulation grid once at create time, so the
	// parity reference must use the *original* bounds.
	probe := &geom.Placement{}
	for _, tw := range create.TSVs {
		probe.TSVs = append(probe.TSVs, geom.TSV{Center: geom.Pt(tw.X, tw.Y)})
	}
	var orig *geom.Placement
	if verify {
		orig = probe.Clone()
	}
	minPitch := 2 * material.Baseline(material.BCB).RPrime

	for b := 0; b < r.cfg.editBatches; b++ {
		wires := r.editBatch(rng, probe, minPitch)
		var er serve.EditsResponse
		if status, err = r.do("edits", "POST", base+"/edits", tenant, serve.EditsRequest{Edits: wires}, &er); err != nil || status != http.StatusOK {
			return
		}
	}

	var mp serve.MapResponse
	if status, err = r.do("map", "GET", base+"/map?component=xx", tenant, nil, &mp); err != nil || status != http.StatusOK {
		return
	}
	if r.cfg.screenEvery > 0 && rng.Intn(r.cfg.screenEvery) == 0 {
		r.do("screen", "GET", base+"/screen", tenant, nil, nil)
	}
	if r.cfg.agingEvery > 0 && rng.Intn(r.cfg.agingEvery) == 0 {
		// A bounded, cheap aging run: coarse steps, short horizon.
		r.do("aging", "POST", base+"/aging", tenant, serve.AgingRequest{
			DTSeconds: 1e7, MaxTimeSeconds: 1e9, Top: 5, Workers: 1,
		}, nil)
	}

	if verify && r.mode == "full" {
		r.verifySession(base, tenant, probe, orig)
	}

	if r.cfg.deleteEvery > 0 && rng.Intn(r.cfg.deleteEvery) == 0 {
		r.do("delete", "DELETE", base, tenant, nil, nil)
		return
	}
	r.mu.Lock()
	r.live = append(r.live, created.ID)
	r.mu.Unlock()
}

// verifySession fetches the served xx field and recomputes it from
// scratch with the in-process engine over the original grid bounds;
// ≤1e-9 MPa per point or it is a parity failure.
func (r *loadRun) verifySession(base, tenant string, edited, orig *geom.Placement) {
	var mp serve.MapResponse
	status, err := r.do("map", "GET", base+"/map?component=xx&values=1", tenant, nil, &mp)
	r.mu.Lock()
	r.parityChecked++
	r.mu.Unlock()
	fail := func(format string, args ...any) {
		log.Printf("parity %s: "+format, append([]any{base}, args...)...)
		r.mu.Lock()
		r.parityFailures++
		r.mu.Unlock()
	}
	if err != nil || status != http.StatusOK {
		fail("map fetch failed: status %d err %v", status, err)
		return
	}
	st := material.Baseline(material.BCB)
	grid, err := field.NewGrid(orig.Bounds(5), r.spacing)
	if err != nil {
		fail("grid: %v", err)
		return
	}
	an, err := core.New(st, edited.Clone(), core.Options{})
	if err != nil {
		fail("engine: %v", err)
		return
	}
	want := make([]tensor.Stress, grid.Len())
	if err := an.MapInto(context.Background(), want, grid.Points(), core.ModeFull); err != nil {
		fail("reference eval: %v", err)
		return
	}
	if len(mp.Values) != len(want) {
		fail("served %d values, reference has %d", len(mp.Values), len(want))
		return
	}
	for i, v := range mp.Values {
		if d := math.Abs(v - want[i].XX); d > 1e-9 {
			fail("point %d differs by %g MPa", i, d)
			return
		}
	}
}

// revisit re-reads maps over a deterministic shuffle of live sessions.
func (r *loadRun) revisit(n, workers int) {
	r.mu.Lock()
	ids := append([]string(nil), r.live...)
	r.mu.Unlock()
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids) // worker completion order is not deterministic; the shuffle below is
	rng := rand.New(rand.NewSource(r.seed ^ 0x5eed))
	picks := make([]string, n)
	for i := range picks {
		picks[i] = ids[rng.Intn(len(ids))]
	}
	ch := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ch {
				r.do("map", "GET", "/v1/placements/"+id+"/map?component=vm", "revisit", nil, nil)
			}
		}()
	}
	for _, id := range picks {
		ch <- id
	}
	close(ch)
	wg.Wait()
}

// do issues one request, records its latency and outcome under the
// route, and decodes a JSON response into out when given.
func (r *loadRun) do(route, method, path, tenant string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(context.Background(), method, r.target+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Tsvgate-Tenant", tenant)
	start := time.Now()
	resp, err := r.client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		r.rec.observe(route, elapsed, 0, false)
		return 0, err
	}
	defer resp.Body.Close()
	degraded := resp.Header.Get("X-Tsvserve-Degraded") != ""
	r.rec.observe(route, elapsed, resp.StatusCode, degraded)
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}

// ---- latency recording ----

type recorder struct {
	mu     sync.Mutex
	routes map[string]*routeRec
}

type routeRec struct {
	latencies []time.Duration
	errors    int // transport failures + 5xx
	quota429  int
	degraded  int
	statuses  map[int]int
}

func newRecorder() *recorder {
	return &recorder{routes: make(map[string]*routeRec)}
}

func (r *recorder) observe(route string, d time.Duration, status int, degraded bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rr := r.routes[route]
	if rr == nil {
		rr = &routeRec{statuses: make(map[int]int)}
		r.routes[route] = rr
	}
	rr.latencies = append(rr.latencies, d)
	rr.statuses[status]++
	switch {
	case status == 0 || status >= 500:
		rr.errors++
	case status == http.StatusTooManyRequests:
		rr.quota429++
	}
	if degraded {
		rr.degraded++
	}
}

// ---- report ----

// RouteStats is one route's latency/SLO summary.
type RouteStats struct {
	Count    int         `json:"count"`
	Errors   int         `json:"errors"`
	Quota429 int         `json:"quota429,omitempty"`
	Degraded int         `json:"degraded,omitempty"`
	Statuses map[int]int `json:"statuses"`
	P50Ms    float64     `json:"p50Ms"`
	P95Ms    float64     `json:"p95Ms"`
	P99Ms    float64     `json:"p99Ms"`
	MeanMs   float64     `json:"meanMs"`
	MaxMs    float64     `json:"maxMs"`
}

// Report is results/LOAD_slo.json.
type Report struct {
	Target        string                `json:"target"`
	Seed          int64                 `json:"seed"`
	Sessions      int                   `json:"sessions"`
	Workers       int                   `json:"workers"`
	Mode          string                `json:"mode"`
	WallSeconds   float64               `json:"wallSeconds"`
	TotalRequests int                   `json:"totalRequests"`
	TotalErrors   int                   `json:"totalErrors"`
	ThroughputRPS float64               `json:"throughputRps"`
	LiveSessions  int                   `json:"liveSessions"`
	Routes        map[string]RouteStats `json:"routes"`
	Parity        ParityStats           `json:"parity"`
}

// ParityStats summarizes the shadow verification.
type ParityStats struct {
	Checked  int `json:"checked"`
	Failures int `json:"failures"`
}

func (r *loadRun) report(sessions, workers int, wall time.Duration) Report {
	r.rec.mu.Lock()
	defer r.rec.mu.Unlock()
	rep := Report{
		Target:      r.target,
		Seed:        r.seed,
		Sessions:    sessions,
		Workers:     workers,
		Mode:        r.mode,
		WallSeconds: wall.Seconds(),
		Routes:      make(map[string]RouteStats, len(r.rec.routes)),
	}
	for route, rr := range r.rec.routes {
		sort.Slice(rr.latencies, func(i, j int) bool { return rr.latencies[i] < rr.latencies[j] })
		rs := RouteStats{
			Count:    len(rr.latencies),
			Errors:   rr.errors,
			Quota429: rr.quota429,
			Degraded: rr.degraded,
			Statuses: rr.statuses,
			P50Ms:    quantileMs(rr.latencies, 0.50),
			P95Ms:    quantileMs(rr.latencies, 0.95),
			P99Ms:    quantileMs(rr.latencies, 0.99),
			MaxMs:    quantileMs(rr.latencies, 1),
		}
		var sum time.Duration
		for _, d := range rr.latencies {
			sum += d
		}
		if rs.Count > 0 {
			rs.MeanMs = float64(sum.Microseconds()) / float64(rs.Count) / 1000
		}
		rep.Routes[route] = rs
		rep.TotalRequests += rs.Count
		rep.TotalErrors += rs.Errors
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.TotalRequests) / wall.Seconds()
	}
	r.mu.Lock()
	rep.LiveSessions = len(r.live)
	rep.Parity = ParityStats{Checked: r.parityChecked, Failures: r.parityFailures}
	r.mu.Unlock()
	return rep
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Microseconds()) / 1000
}

func writeReport(path string, rep Report) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
