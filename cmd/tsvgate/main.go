// Command tsvgate runs the stateless routing gateway in front of a
// pool of tsvserve replicas (DESIGN.md §19): consistent-hash session
// routing with bounded-load id minting, /readyz health probes gated
// through per-replica circuit breakers, WAL-shipping session migration
// when the ring changes, and per-tenant token-bucket quotas.
//
// Usage:
//
//	tsvgate -addr :9090 -seed 7 \
//	    -replica ra=http://127.0.0.1:8081=/var/lib/tsv/ra \
//	    -replica rb=http://127.0.0.1:8082=/var/lib/tsv/rb
//
// Every gateway in front of one fleet must run with the same -seed,
// -vnodes and replica names, or their rings disagree and sessions
// ping-pong between replicas. Replica names are ring identities: keep
// them stable across replica restarts and address changes.
//
// API: the gateway re-exposes the tsvserve placement API (create,
// list, edits, map, screen, aging, delete) plus /healthz, /readyz and
// /debug/vars. Responses stream through verbatim — status, Retry-After
// and degraded-mode headers included.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tsvstress/internal/gateway"
)

// parseReplica parses "name=url[=waldir]".
func parseReplica(spec string) (gateway.Replica, error) {
	parts := strings.SplitN(spec, "=", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return gateway.Replica{}, fmt.Errorf("replica spec %q: want name=url[=waldir]", spec)
	}
	rep := gateway.Replica{Name: parts[0], URL: strings.TrimSuffix(parts[1], "/")}
	if len(parts) == 3 {
		rep.WALDir = parts[2]
	}
	return rep, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvgate: ")
	var replicas []gateway.Replica
	var (
		addr       = flag.String("addr", ":9090", "listen address")
		seed       = flag.Uint64("seed", 1, "ring seed; identical on every gateway in front of one fleet")
		vnodes     = flag.Int("vnodes", 128, "virtual nodes per replica on the hash ring")
		loadFactor = flag.Float64("load-factor", 1.25, "bounded-load cap for new-session minting (×mean)")
		healthEv   = flag.Duration("health-every", time.Second, "/readyz probe cadence")
		healthTO   = flag.Duration("health-timeout", 500*time.Millisecond, "per-probe deadline")
		quotaRate  = flag.Float64("quota-rate", 0, "per-tenant request quota in req/s (0 = quotas off)")
		quotaBurst = flag.Float64("quota-burst", 0, "per-tenant burst size (default 4×rate)")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
	)
	flag.Func("replica", "replica spec name=url[=waldir]; repeat per replica (waldir enables dead-owner WAL rescue)", func(spec string) error {
		rep, err := parseReplica(spec)
		if err != nil {
			return err
		}
		replicas = append(replicas, rep)
		return nil
	})
	flag.Parse()

	if len(replicas) == 0 {
		log.Fatal("no replicas: pass at least one -replica name=url[=waldir]")
	}

	g, err := gateway.New(gateway.Options{
		Replicas:      replicas,
		Seed:          *seed,
		VNodes:        *vnodes,
		LoadFactor:    *loadFactor,
		HealthEvery:   *healthEv,
		HealthTimeout: *healthTO,
		QuotaRate:     *quotaRate,
		QuotaBurst:    *quotaBurst,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", g.Handler())
	mux.Handle("/debug/vars", http.DefaultServeMux) // expvar

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	names := make([]string, len(replicas))
	for i, r := range replicas {
		names[i] = r.Name
	}
	log.Printf("listening on %s, routing to %d replica(s): %s (seed %d, %d vnodes)",
		*addr, len(replicas), strings.Join(names, ", "), *seed, *vnodes)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (draining ≤ %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := g.Close(shutCtx); err != nil {
		log.Printf("close: %v", err)
	}
}
