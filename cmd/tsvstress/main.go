// Command tsvstress analyzes the TSV-induced stress of a placement with
// the semi-analytical framework (or the linear-superposition baseline)
// and writes a stress map CSV.
//
// Usage:
//
//	tsvstress -placement chip.json -region 60x30 -spacing 0.5 -o map.csv
//	tsvstress -placement chip.json -ls            # baseline only
//	tsvstress -placement chip.json -at 5,2        # single-point query
//
// The placement file schema is documented in internal/placefile.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/placefile"
	"tsvstress/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsvstress: ")
	var (
		placementPath = flag.String("placement", "", "placement JSON file (required; - for stdin)")
		regionSpec    = flag.String("region", "", "map region WxH in µm centered on the placement (default: placement bounds + 25)")
		spacing       = flag.Float64("spacing", 0.5, "simulation point spacing in µm")
		out           = flag.String("o", "-", "output CSV path (- for stdout)")
		lsOnly        = flag.Bool("ls", false, "linear superposition only (skip the interactive stage)")
		at            = flag.String("at", "", "query a single point \"x,y\" instead of a map")
		includeVias   = flag.Bool("include-vias", false, "include points inside TSV footprints")
	)
	flag.Parse()
	if *placementPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	pl, st, err := placefile.Load(*placementPath)
	if err != nil {
		log.Fatal(err)
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	if *at != "" {
		var x, y float64
		if _, err := fmt.Sscanf(*at, "%f,%f", &x, &y); err != nil {
			log.Fatalf("bad -at %q: %v", *at, err)
		}
		p := geom.Pt(x, y)
		ls := an.StressLS(p)
		full := an.StressAt(p)
		fmt.Printf("point (%g, %g) µm\n", x, y)
		fmt.Printf("  LS:  σxx=%.3f σyy=%.3f σxy=%.3f vonMises=%.3f MPa\n", ls.XX, ls.YY, ls.XY, ls.VonMises())
		fmt.Printf("  PF:  σxx=%.3f σyy=%.3f σxy=%.3f vonMises=%.3f MPa\n", full.XX, full.YY, full.XY, full.VonMises())
		return
	}

	region := pl.Bounds(25)
	if *regionSpec != "" {
		var w, h float64
		if _, err := fmt.Sscanf(strings.ToLower(*regionSpec), "%fx%f", &w, &h); err != nil {
			log.Fatalf("bad -region %q: %v", *regionSpec, err)
		}
		region = geom.RectAround(pl.Bounds(0).Center(), w, h)
	}
	grid, err := field.NewGrid(region, *spacing)
	if err != nil {
		log.Fatal(err)
	}
	pts := grid.Points()
	if !*includeVias {
		pts = field.Masked(pts, field.OutsideTSVs(pl, st.RPrime))
	}

	mode := core.ModeFull
	name := "pf"
	if *lsOnly {
		mode = core.ModeLS
		name = "ls"
	}
	t0 := time.Now()
	vals := make([]tensor.Stress, len(pts))
	if err := an.MapInto(context.Background(), vals, pts, mode); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d TSVs, %d points, %s mode: %v", pl.Len(), len(pts), name, time.Since(t0).Round(time.Millisecond))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w = f
	}
	if err := field.WriteCSV(w, pts, map[string][]tensor.Stress{name: vals},
		[]string{"xx", "yy", "xy", "vm"}); err != nil {
		log.Fatal(err)
	}
	// Close (when writing a real file) is the last chance to learn the
	// kernel lost our CSV; a defer would swallow that error.
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			log.Fatalf("closing %s: %v", *out, err)
		}
	}
}
