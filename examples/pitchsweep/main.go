// Pitch sweep: quantify where linear superposition breaks down as TSVs
// get closer, using the analytical interactive-stress model directly
// (no FEM required) — the design-space study behind the paper's
// contribution (2): LS error grows as pitch shrinks.
package main

import (
	"fmt"
	"log"
	"math"

	"tsvstress"
)

func main() {
	for _, liner := range []tsvstress.Material{tsvstress.BCB, tsvstress.SiO2} {
		st := tsvstress.Baseline(liner)
		sol, err := tsvstress.SolveSingleTSV(st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("liner %s: single-TSV substrate constant K = %.1f MPa*um^2\n", liner.Name, sol.K)
		fmt.Printf("%8s %16s %16s %16s\n", "pitch", "LS sxx @mid", "interactive", "correction %")
		for _, d := range []float64{8, 9, 10, 12, 15, 20, 25, 30} {
			pl := tsvstress.PairPlacement(d)
			an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
			if err != nil {
				log.Fatal(err)
			}
			mid := tsvstress.Pt(0, 0)
			ls := an.StressLS(mid).XX
			corr := an.Interactive(mid).XX
			pct := 0.0
			if ls != 0 {
				pct = 100 * math.Abs(corr) / math.Abs(ls)
			}
			fmt.Printf("%6.0fum %13.2f %16.2f %15.1f%%\n", d, ls, corr, pct)
		}
		fmt.Println()
	}
	fmt.Println("The interactive correction (the stress LS misses) grows like")
	fmt.Println("(R'/d)^2 as pitch shrinks, and is far larger for the compliant")
	fmt.Println("BCB liner than for SiO2 — exactly the paper's Section 2.2 claim.")
}
