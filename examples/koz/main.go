// Keep-out-zone study: turn TSV-induced stress into the device-impact
// metric designers actually budget — carrier mobility variation — and
// derive keep-out zones, the application of the stress-aware placement
// literature the paper builds on (its references [1] and [2]).
package main

import (
	"fmt"
	"log"

	"tsvstress"
)

func main() {
	for _, liner := range []tsvstress.Material{tsvstress.BCB, tsvstress.SiO2} {
		st := tsvstress.Baseline(liner)
		fmt.Printf("=== %s liner ===\n", liner.Name)

		// Single-TSV keep-out radii at the usual mobility budgets.
		for _, tol := range []float64{0.05, 0.02, 0.01, 0.005} {
			rn, err := tsvstress.KeepOutRadius(st, tsvstress.NMOS, tol)
			if err != nil {
				log.Fatal(err)
			}
			rp, err := tsvstress.KeepOutRadius(st, tsvstress.PMOS, tol)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  |dmu/mu| < %4.1f%%: KOZ radius NMOS %5.2f um, PMOS %5.2f um\n",
				tol*100, rn, rp)
		}

		// For a tight pair, interactive stress changes the mobility map
		// between the vias: compare the baseline and framework
		// predictions for a PMOS channel along x at the midpoint.
		pl := tsvstress.PairPlacement(8)
		an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		k := tsvstress.PiezoDefaults(tsvstress.PMOS)
		mid := tsvstress.Pt(0, 0)
		lsShift := tsvstress.MobilityShift(an.StressLS(mid), 0, k)
		pfShift := tsvstress.MobilityShift(an.StressAt(mid), 0, k)
		fmt.Printf("  8um pair midpoint, PMOS along x: dmu/mu LS %+.2f%%, framework %+.2f%%\n",
			100*lsShift, 100*pfShift)
		worst, theta := tsvstress.WorstMobilityShift(an.StressAt(mid), k)
		fmt.Printf("  worst orientation there: %+.2f%% at %.0f deg\n\n",
			100*worst, theta*180/3.14159265)
	}
	fmt.Println("PMOS keep-out zones dominate (|piL - piT| is ~10x the NMOS value),")
	fmt.Println("and the linear-superposition baseline misjudges mobility between")
	fmt.Println("tightly pitched TSVs by several percentage points.")
}
