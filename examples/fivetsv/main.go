// Five-TSV validation: reproduce the Section 5.2 experiment of the
// paper end to end — solve the in-house FEM golden for the five-TSV
// cross placement, run both analytical methods, and print the Table-2
// style error statistics plus an ASCII error map (Figure 6).
//
// This example runs the FEM solver at reduced resolution so it
// completes in a few seconds; cmd/tsvexp regenerates the full-accuracy
// numbers.
package main

import (
	"fmt"
	"log"
	"os"

	"tsvstress"
	"tsvstress/internal/exp"
	"tsvstress/internal/metrics"
)

func main() {
	fmt.Println("Solving the five-TSV cross (min pitch 10 um, BCB liner)...")
	fc, err := exp.RunFiveCase(exp.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name string
		comp metrics.Component
	}{{"sigma_xx", metrics.SigmaXX}, {"von Mises", metrics.VonMises}} {
		ls, pf, err := fc.Rows(c.comp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s over the 60x60 um monitored region (%d points):\n",
			c.name, ls.MonitoredPts)
		fmt.Printf("  linear superposition: avg err %.2f MPa, rate@50MPa %.1f%%, critical %.1f%%\n",
			ls.Avg.AvgError, ls.Thresh50.AvgErrorRate, ls.Critical50.AvgErrorRate)
		fmt.Printf("  proposed framework:   avg err %.2f MPa, rate@50MPa %.1f%%, critical %.1f%%\n",
			pf.Avg.AvgError, pf.Thresh50.AvgErrorRate, pf.Critical50.AvgErrorRate)
	}

	em, err := fc.ErrorMaps(exp.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := em.Write(os.Stdout, "five-TSV placement"); err != nil {
		log.Fatal(err)
	}

	// The same fields are available through the public API for custom
	// post-processing, e.g. the worst von Mises hotspot:
	st := tsvstress.Baseline(tsvstress.BCB)
	an, err := tsvstress.NewAnalyzer(st, tsvstress.FiveCrossPlacement(10), tsvstress.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	var worst tsvstress.Point
	var worstVM float64
	for _, p := range fc.Monitored {
		if vm := an.StressAt(p).VonMises(); vm > worstVM {
			worstVM, worst = vm, p
		}
	}
	fmt.Printf("worst von Mises hotspot: %.1f MPa at (%.2f, %.2f) um\n", worstVM, worst.X, worst.Y)
}
