// Full-chip analysis: place 500 TSVs at realistic density, evaluate the
// stress field over two million device-layer points with both methods,
// and report keep-out-zone style statistics — the workload the paper's
// introduction motivates (stress-aware placement and reliability
// analysis).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tsvstress"
)

func main() {
	st := tsvstress.Baseline(tsvstress.BCB)

	const (
		numTSV  = 500
		density = 0.5e-2 // µm⁻² (half the paper's densest case)
		numPts  = 200_000
	)
	pl, err := tsvstress.RandomPlacement(numTSV, density, 8, 2013)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: %d TSVs, min pitch %.2f um, density %.3g /um^2\n",
		pl.Len(), pl.MinPitch(), pl.Density(5))

	t0 := time.Now()
	an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzer built in %v (%d interactive pair rounds)\n",
		time.Since(t0).Round(time.Millisecond), an.NumPairRounds())

	// Random device-layer simulation points over the chip.
	rng := rand.New(rand.NewSource(7))
	b := pl.Bounds(5)
	pts := make([]tsvstress.Point, 0, numPts)
	for len(pts) < numPts {
		p := tsvstress.Pt(b.Min.X+rng.Float64()*b.W(), b.Min.Y+rng.Float64()*b.H())
		if _, d := pl.NearestTSV(p); d < st.RPrime {
			continue // devices cannot sit inside a via
		}
		pts = append(pts, p)
	}

	t1 := time.Now()
	ls := an.Map(pts, tsvstress.ModeLS)
	tLS := time.Since(t1)
	t2 := time.Now()
	full := an.Map(pts, tsvstress.ModeFull)
	tFull := time.Since(t2)
	fmt.Printf("stage I (linear superposition): %v for %d points\n", tLS.Round(time.Millisecond), numPts)
	fmt.Printf("stage I+II (proposed):          %v (+%.0f%%)\n",
		tFull.Round(time.Millisecond), 100*float64(tFull-tLS)/float64(tLS))

	// Keep-out-zone style report: how many candidate device sites
	// exceed von Mises thresholds, and how far the baseline misjudges
	// them.
	for _, thr := range []float64{25, 50, 100} {
		nLS, nPF, flips := 0, 0, 0
		for i := range pts {
			a := ls[i].VonMises() > thr
			b := full[i].VonMises() > thr
			if a {
				nLS++
			}
			if b {
				nPF++
			}
			if a != b {
				flips++
			}
		}
		fmt.Printf("von Mises > %5.0f MPa: LS flags %6d sites, PF %6d (%d sites misclassified by LS)\n",
			thr, nLS, nPF, flips)
	}

	// Worst hotspot under the accurate model.
	var worstVM float64
	var worst tsvstress.Point
	for i, p := range pts {
		if vm := full[i].VonMises(); vm > worstVM {
			worstVM, worst = vm, p
		}
	}
	_, dNear := pl.NearestTSV(worst)
	fmt.Printf("worst hotspot: %.1f MPa von Mises at (%.1f, %.1f), %.2f um from the nearest TSV\n",
		worstVM, worst.X, worst.Y, dNear)

	// Interfacial reliability screening: rank vias by debonding risk
	// (maximum radial tension on the liner/substrate interface).
	reports, err := tsvstress.ScreenReliability(pl, st, an.StressAt, tsvstress.ReliabilityOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ranked := tsvstress.RankByTension(reports)
	fmt.Println("\ntop interfacial-tension vias (debonding screening):")
	for _, r := range ranked[:3] {
		fmt.Printf("  TSV %3d at (%6.1f, %6.1f): interface tension %.1f MPa, shear %.1f MPa\n",
			r.Index, r.Center.X, r.Center.Y, r.MaxTension, r.MaxShear)
	}
}
