// Stress-aware placement optimization: start from a deliberately bad
// TSV cluster next to critical device sites, then let the optimizer
// move the vias until every site meets its mobility budget — the
// layout-optimization flow the paper's conclusion motivates.
package main

import (
	"fmt"
	"log"

	"tsvstress"
)

func main() {
	st := tsvstress.Baseline(tsvstress.BCB)

	// A tight 3-TSV cluster around a block of PMOS-critical sites.
	initial := tsvstress.NewPlacement(
		tsvstress.Pt(-5, 0),
		tsvstress.Pt(5, 0),
		tsvstress.Pt(0, 7),
	)
	sites := []tsvstress.Point{
		tsvstress.Pt(0, 0), tsvstress.Pt(0, 3.5), tsvstress.Pt(-2, 2),
		tsvstress.Pt(2, 2), tsvstress.Pt(-8, 4), tsvstress.Pt(8, 4),
	}

	budget := 0.02 // 2% worst-orientation mobility shift
	report := func(label string, pl *tsvstress.Placement) {
		an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
		if err != nil {
			log.Fatal(err)
		}
		k := tsvstress.PiezoDefaults(tsvstress.PMOS)
		bad := 0
		worstAll := 0.0
		for _, site := range sites {
			shift, _ := tsvstress.WorstMobilityShift(an.StressAt(site), k)
			if -shift > budget {
				bad++
			}
			if -shift > worstAll {
				worstAll = -shift
			}
		}
		fmt.Printf("%s: %d/%d sites over the %.0f%% budget; worst |dmu/mu| = %.2f%%\n",
			label, bad, len(sites), budget*100, worstAll*100)
		for _, t := range pl.TSVs {
			fmt.Printf("    TSV at (%6.2f, %6.2f)\n", t.Center.X, t.Center.Y)
		}
	}

	report("before", initial)

	res, err := tsvstress.OptimizePlacement(st, initial, sites, tsvstress.OptimizeOptions{
		Region:         tsvstress.RectAround(tsvstress.Pt(0, 0), 70, 70),
		MobilityBudget: budget,
		Carrier:        tsvstress.PMOS, // hole channels dominate the KOZ
		Iterations:     1500,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noptimizer: cost %.3g -> %.3g, %d/%d moves accepted, violations %d -> %d\n\n",
		res.InitialCost, res.FinalCost, res.Accepted, res.Iterations,
		res.InitialViolations, res.FinalViolations)
	report("after", res.Placement)

	fmt.Println("\nThe optimizer uses the interactive-stress-aware model, so it")
	fmt.Println("knows tight pairs stress their surroundings *less* than linear")
	fmt.Println("superposition predicts between the vias — and moves vias only as")
	fmt.Println("far as the accurate field requires.")
}
