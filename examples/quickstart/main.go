// Quickstart: analyze the stress two closely-spaced TSVs induce at a
// handful of candidate device locations, comparing the classic
// linear-superposition estimate with the interactive-stress-aware
// framework of the paper.
package main

import (
	"fmt"
	"log"

	"tsvstress"
)

func main() {
	// The paper's baseline structure: 2.5 µm copper body, 0.5 µm BCB
	// liner, silicon substrate, ΔT = −250 K after annealing.
	st := tsvstress.Baseline(tsvstress.BCB)

	// Two TSVs, 8 µm pitch — the tightest configuration the paper
	// evaluates, where interactive stress matters most.
	pl := tsvstress.PairPlacement(8)

	an, err := tsvstress.NewAnalyzer(st, pl, tsvstress.AnalyzerOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Two TSVs at 8 um pitch (centers at x = ±4, BCB liner)")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s %12s %14s\n",
		"device location (um)", "LS sxx", "PF sxx", "PF vonMises", "LS overshoot")
	for _, p := range []tsvstress.Point{
		tsvstress.Pt(0, 0),   // midpoint between the vias
		tsvstress.Pt(0, 3.5), // just above the gap
		tsvstress.Pt(7.5, 0), // outer flank of the right via
		tsvstress.Pt(4, 4),   // diagonal neighbourhood
		tsvstress.Pt(12, 0),  // one pitch further out
		tsvstress.Pt(20, 10), // far field
	} {
		ls := an.StressLS(p)
		pf := an.StressAt(p)
		fmt.Printf("(%6.1f, %5.1f)       %9.2f    %9.2f    %9.2f     %9.2f\n",
			p.X, p.Y, ls.XX, pf.XX, pf.VonMises(), ls.XX-pf.XX)
	}

	fmt.Println()
	fmt.Println("PF = proposed framework (linear superposition + pairwise")
	fmt.Println("interactive stress). The overshoot column is the error the")
	fmt.Println("baseline makes by ignoring TSV-TSV elastic interaction.")
}
