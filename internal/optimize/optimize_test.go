package optimize

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
)

func region() geom.Rect { return geom.RectAround(geom.Pt(0, 0), 60, 60) }

func TestMinimizeValidation(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sites := []geom.Point{{X: 10, Y: 0}}
	if _, err := Minimize(context.Background(), st, pl, sites, Options{}); err == nil {
		t.Error("missing region should fail")
	}
	if _, err := Minimize(context.Background(), st, pl, nil, Options{Region: region()}); err == nil {
		t.Error("no sites should fail")
	}
	if _, err := Minimize(context.Background(), st, geom.NewPlacement(geom.Pt(100, 0)), sites, Options{Region: region()}); err == nil {
		t.Error("TSV outside region should fail")
	}
	if _, err := Minimize(context.Background(), st, geom.NewPlacement(geom.Pt(0, 0), geom.Pt(3, 0)), sites, Options{Region: region()}); err == nil {
		t.Error("illegal initial pitch should fail")
	}
	if _, err := Minimize(context.Background(), st, pl, []geom.Point{{X: 1, Y: 0}}, Options{Region: region()}); err == nil {
		t.Error("site inside via should fail")
	}
}

func TestMinimizeReducesViolations(t *testing.T) {
	st := material.Baseline(material.BCB)
	// Two tightly pitched TSVs flanked by device sites well inside the
	// PMOS keep-out distance (~10 µm at 1%; budget 2% → KOZ ~7 µm).
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	sites := []geom.Point{
		{X: 0, Y: 0}, {X: 0, Y: 4}, {X: 0, Y: -4},
		{X: -9, Y: 0}, {X: 9, Y: 0}, {X: 5, Y: 5},
	}
	res, err := Minimize(context.Background(), st, pl, sites, Options{
		Region:     region(),
		Iterations: 800,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations == 0 {
		t.Fatal("test setup should start with violations")
	}
	if res.FinalCost >= res.InitialCost {
		t.Errorf("cost did not decrease: %g → %g", res.InitialCost, res.FinalCost)
	}
	if res.FinalViolations > res.InitialViolations {
		t.Errorf("violations grew: %d → %d", res.InitialViolations, res.FinalViolations)
	}
	if res.Accepted == 0 {
		t.Error("no accepted moves")
	}
	// Legality of the result.
	if err := res.Placement.Validate(2*st.RPrime + 1); err != nil {
		t.Errorf("result violates min pitch: %v", err)
	}
	for _, tsv := range res.Placement.TSVs {
		if !region().Contains(tsv.Center) {
			t.Errorf("TSV %v escaped the region", tsv.Center)
		}
	}
	t.Logf("cost %.3g→%.3g, violations %d→%d, accepted %d",
		res.InitialCost, res.FinalCost, res.InitialViolations, res.FinalViolations, res.Accepted)
}

func TestMinimizeDeterministic(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	sites := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 5}}
	opt := Options{Region: region(), Iterations: 150, Seed: 3}
	a, err := Minimize(context.Background(), st, pl, sites, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize(context.Background(), st, pl, sites, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placement.TSVs {
		if a.Placement.TSVs[i].Center != b.Placement.TSVs[i].Center {
			t.Fatal("same seed should give identical placements")
		}
	}
	if a.FinalCost != b.FinalCost {
		t.Fatal("same seed should give identical cost")
	}
}

func TestMinimizeAlreadyClean(t *testing.T) {
	st := material.Baseline(material.BCB)
	// A lone TSV far from its only site: no violations; the optimizer
	// must not move it away from the initial position (move penalty).
	pl := geom.NewPlacement(geom.Pt(-20, -20))
	sites := []geom.Point{{X: 20, Y: 20}}
	res, err := Minimize(context.Background(), st, pl, sites, Options{Region: region(), Iterations: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations != 0 || res.FinalViolations != 0 {
		t.Fatal("setup should be violation free")
	}
	if d := res.Placement.TSVs[0].Center.Dist(geom.Pt(-20, -20)); d > 1.5 {
		t.Errorf("TSV drifted %g µm with no pressure to move", d)
	}
	_ = math.Pi
}

// countdownCtx reports no error for the first n Err polls, then
// context.Canceled forever: it cancels at a deterministic point in the
// search regardless of machine speed.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestMinimizeCancellation(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	sites := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 5}}
	opt := Options{Region: region(), Iterations: 400, Seed: 11}

	t.Run("pre_canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Minimize(ctx, st, pl, sites, opt)
		if err == nil {
			t.Fatal("pre-canceled context returned a result")
		}
		if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v must match core.ErrCanceled and context.Canceled", err)
		}
	})
	t.Run("mid_search", func(t *testing.T) {
		// The countdown fires well inside the annealing loop: after the
		// initial cost evaluation but long before 400 iterations' worth
		// of polls have run down.
		_, err := Minimize(newCountdownCtx(25), st, pl, sites, opt)
		if err == nil {
			t.Fatal("mid-search cancellation returned a result")
		}
		if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v must match core.ErrCanceled and context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "iterations") {
			t.Fatalf("error %v should report annealing progress", err)
		}
	})
	t.Run("inside_objective", func(t *testing.T) {
		// Enough sites that a single objective evaluation spans several
		// cost-loop polls; a budget below that count cancels inside it.
		var many []geom.Point
		for i := 0; i < 64; i++ {
			many = append(many, geom.Pt(20+float64(i%8)*2, 20+float64(i/8)*2))
		}
		_, err := Minimize(newCountdownCtx(2), st, pl, many, opt)
		if err == nil {
			t.Fatal("cancellation inside the objective returned a result")
		}
		if !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("error %v must match core.ErrCanceled", err)
		}
	})
	t.Run("uncanceled_countdown_parity", func(t *testing.T) {
		// A countdown that never fires must not perturb the search: the
		// result is identical to a plain background context's.
		a, err := Minimize(context.Background(), st, pl, sites, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Minimize(newCountdownCtx(1_000_000), st, pl, sites, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.FinalCost != b.FinalCost || a.Accepted != b.Accepted {
			t.Fatalf("context polling changed the search: cost %g vs %g, accepted %d vs %d",
				a.FinalCost, b.FinalCost, a.Accepted, b.Accepted)
		}
	})
}
