package optimize

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
)

func region() geom.Rect { return geom.RectAround(geom.Pt(0, 0), 60, 60) }

func TestMinimizeValidation(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sites := []geom.Point{{X: 10, Y: 0}}
	if _, err := Minimize(st, pl, sites, Options{}); err == nil {
		t.Error("missing region should fail")
	}
	if _, err := Minimize(st, pl, nil, Options{Region: region()}); err == nil {
		t.Error("no sites should fail")
	}
	if _, err := Minimize(st, geom.NewPlacement(geom.Pt(100, 0)), sites, Options{Region: region()}); err == nil {
		t.Error("TSV outside region should fail")
	}
	if _, err := Minimize(st, geom.NewPlacement(geom.Pt(0, 0), geom.Pt(3, 0)), sites, Options{Region: region()}); err == nil {
		t.Error("illegal initial pitch should fail")
	}
	if _, err := Minimize(st, pl, []geom.Point{{X: 1, Y: 0}}, Options{Region: region()}); err == nil {
		t.Error("site inside via should fail")
	}
}

func TestMinimizeReducesViolations(t *testing.T) {
	st := material.Baseline(material.BCB)
	// Two tightly pitched TSVs flanked by device sites well inside the
	// PMOS keep-out distance (~10 µm at 1%; budget 2% → KOZ ~7 µm).
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	sites := []geom.Point{
		{X: 0, Y: 0}, {X: 0, Y: 4}, {X: 0, Y: -4},
		{X: -9, Y: 0}, {X: 9, Y: 0}, {X: 5, Y: 5},
	}
	res, err := Minimize(st, pl, sites, Options{
		Region:     region(),
		Iterations: 800,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations == 0 {
		t.Fatal("test setup should start with violations")
	}
	if res.FinalCost >= res.InitialCost {
		t.Errorf("cost did not decrease: %g → %g", res.InitialCost, res.FinalCost)
	}
	if res.FinalViolations > res.InitialViolations {
		t.Errorf("violations grew: %d → %d", res.InitialViolations, res.FinalViolations)
	}
	if res.Accepted == 0 {
		t.Error("no accepted moves")
	}
	// Legality of the result.
	if err := res.Placement.Validate(2*st.RPrime + 1); err != nil {
		t.Errorf("result violates min pitch: %v", err)
	}
	for _, tsv := range res.Placement.TSVs {
		if !region().Contains(tsv.Center) {
			t.Errorf("TSV %v escaped the region", tsv.Center)
		}
	}
	t.Logf("cost %.3g→%.3g, violations %d→%d, accepted %d",
		res.InitialCost, res.FinalCost, res.InitialViolations, res.FinalViolations, res.Accepted)
}

func TestMinimizeDeterministic(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	sites := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 5}}
	opt := Options{Region: region(), Iterations: 150, Seed: 3}
	a, err := Minimize(st, pl, sites, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize(st, pl, sites, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Placement.TSVs {
		if a.Placement.TSVs[i].Center != b.Placement.TSVs[i].Center {
			t.Fatal("same seed should give identical placements")
		}
	}
	if a.FinalCost != b.FinalCost {
		t.Fatal("same seed should give identical cost")
	}
}

func TestMinimizeAlreadyClean(t *testing.T) {
	st := material.Baseline(material.BCB)
	// A lone TSV far from its only site: no violations; the optimizer
	// must not move it away from the initial position (move penalty).
	pl := geom.NewPlacement(geom.Pt(-20, -20))
	sites := []geom.Point{{X: 20, Y: 20}}
	res, err := Minimize(st, pl, sites, Options{Region: region(), Iterations: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialViolations != 0 || res.FinalViolations != 0 {
		t.Fatal("setup should be violation free")
	}
	if d := res.Placement.TSVs[0].Center.Dist(geom.Pt(-20, -20)); d > 1.5 {
		t.Errorf("TSV drifted %g µm with no pressure to move", d)
	}
	_ = math.Pi
}
