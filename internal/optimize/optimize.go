// Package optimize implements stress-aware TSV placement optimization —
// the layout-optimization application the paper's conclusion points at
// (its references [1] and [2]: stress-driven 3D-IC placement with TSV
// keep-out zones).
//
// Given fixed device sites and a movable TSV placement, the optimizer
// perturbs TSV positions with simulated annealing to minimize
//
//	cost = Σ_sites w(site) · max(0, |Δµ/µ|worst − budget)²  +  λ · Σ_TSV ‖move‖²
//
// where the mobility shift is evaluated with the full semi-analytical
// framework (linear superposition + pairwise interactive stress), so the
// optimizer sees the interaction error that a plain-LS flow misses at
// tight pitch. All randomness is seeded; runs are deterministic.
package optimize

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/interact"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
	"tsvstress/internal/mobility"
	"tsvstress/internal/tensor"
)

// Options configures Minimize. Zero values select documented defaults.
type Options struct {
	// Region constrains TSV centers; required.
	Region geom.Rect
	// MinPitch is the legal center-to-center distance (default 2R′+1).
	MinPitch float64
	// MobilityBudget is the allowed |Δµ/µ| at device sites (default
	// 0.02 = 2%).
	MobilityBudget float64
	// Carrier selects the piezoresistance coefficients; the zero value
	// is NMOS — pass mobility.PMOS explicitly for hole channels, whose
	// keep-out zones are ~3× larger and usually dominate.
	Carrier mobility.Carrier
	// MoveWeight is λ, the quadratic penalty on displacement from the
	// initial position in (Δµ/µ)²/µm² units (default 1e-6 — mobility
	// violations dominate unless moves get large).
	MoveWeight float64
	// Iterations bounds annealing steps (default 300·#TSV).
	Iterations int
	// InitialStep is the starting move size in µm (default 2).
	InitialStep float64
	// Cutoff bounds stress interaction distances (default 25 µm).
	Cutoff float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (o Options) withDefaults(st material.Structure, n int) Options {
	if o.MinPitch <= 0 {
		o.MinPitch = 2*st.RPrime + 1
	}
	if o.MobilityBudget <= 0 {
		o.MobilityBudget = 0.02
	}
	if o.MoveWeight <= 0 {
		o.MoveWeight = 1e-6
	}
	if o.Iterations <= 0 {
		o.Iterations = 300 * n
	}
	if o.InitialStep <= 0 {
		o.InitialStep = 2
	}
	if o.Cutoff <= 0 {
		o.Cutoff = 25
	}
	return o
}

// Result reports the optimization outcome.
type Result struct {
	Placement   *geom.Placement
	InitialCost float64
	FinalCost   float64
	Accepted    int
	Iterations  int
	// Violations counts sites whose worst-orientation |Δµ/µ| exceeds
	// the budget before and after.
	InitialViolations, FinalViolations int
}

// evaluator computes full-framework stress at sites for a candidate
// placement, without rebuilding structure-level models.
type evaluator struct {
	st    material.Structure
	sol   *lame.Solution
	model *interact.Model
	piezo mobility.Coefficients
	opt   Options
}

// stressAt evaluates LS + interactive stress at p for centers cs.
func (ev *evaluator) stressAt(p geom.Point, cs []geom.Point) tensor.Stress {
	var s tensor.Stress
	cut := ev.opt.Cutoff
	for _, c := range cs {
		if p.Dist(c) <= cut {
			s = s.Add(ev.sol.StressAt(p, c))
		}
	}
	// Pairwise interactive rounds: victim j near the point, aggressor i
	// within the pitch cutoff of j.
	for j, vic := range cs {
		if p.Dist(vic) > cut {
			continue
		}
		for i, agg := range cs {
			if i == j {
				continue
			}
			if vic.Dist(agg) > cut {
				continue
			}
			s = s.Add(ev.model.PairStress(p, vic, agg))
		}
	}
	return s
}

// costCheckMask throttles context polls in the objective's site loop:
// each site evaluation walks every TSV pair within the cutoff, so a
// poll every 16 sites cancels even a single huge evaluation promptly.
const costCheckMask = 0xf

// cost evaluates the objective for centers cs against fixed sites. It
// polls ctx between site evaluations so a deadline interrupts one
// objective evaluation, not just the annealing loop around it.
func (ev *evaluator) cost(ctx context.Context, cs, initial []geom.Point, sites []geom.Point) (float64, int, error) {
	total := 0.0
	violations := 0
	budget := ev.opt.MobilityBudget
	for si, site := range sites {
		if si&costCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
		}
		s := ev.stressAt(site, cs)
		worst, _ := mobility.WorstCase(s, ev.piezo)
		if v := math.Abs(worst) - budget; v > 0 {
			total += v * v
			violations++
		}
	}
	for i := range cs {
		d := cs[i].Dist(initial[i])
		total += ev.opt.MoveWeight * d * d
	}
	return total, violations, nil
}

// canceled wraps a context error so callers can match both
// core.ErrCanceled and the context cause, mirroring the evaluation and
// aging engines' cancellation contract.
func canceled(it, total int, cause error) error {
	return fmt.Errorf("optimize: annealing canceled after %d of %d iterations (%w): %w",
		it, total, core.ErrCanceled, cause)
}

// Minimize runs the annealing. Device sites inside a TSV footprint are
// rejected (they would be destroyed by the via, not stressed by it).
// Cancellation of ctx interrupts the search between objective
// evaluations and inside them; the returned error matches both
// core.ErrCanceled and the context's own error.
func Minimize(ctx context.Context, st material.Structure, initial *geom.Placement, sites []geom.Point, opt Options) (*Result, error) {
	n := initial.Len()
	opt = opt.withDefaults(st, n)
	if !opt.Region.Valid() || opt.Region.Area() <= 0 {
		return nil, fmt.Errorf("optimize: invalid region %+v", opt.Region)
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("optimize: no device sites given")
	}
	for _, t := range initial.TSVs {
		if !opt.Region.Contains(t.Center) {
			return nil, fmt.Errorf("optimize: initial TSV %v outside region", t.Center)
		}
	}
	if err := initial.Validate(opt.MinPitch); err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	sol, err := lame.Solve(st)
	if err != nil {
		return nil, err
	}
	model, err := interact.New(st, 0)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{st: st, sol: sol, model: model, piezo: mobility.Default110(opt.Carrier), opt: opt}

	init := initial.Centers()
	for _, site := range sites {
		for _, c := range init {
			if site.Dist(c) < st.RPrime {
				return nil, fmt.Errorf("optimize: device site %v inside TSV footprint at %v", site, c)
			}
		}
	}

	cur := append([]geom.Point(nil), init...)
	curCost, initViol, err := ev.cost(ctx, cur, init, sites)
	if err != nil {
		return nil, canceled(0, opt.Iterations, err)
	}
	res := &Result{InitialCost: curCost, InitialViolations: initViol}

	best := append([]geom.Point(nil), cur...)
	bestCost := curCost
	rng := rand.New(rand.NewSource(opt.Seed))
	temp := curCost/10 + 1e-12

	legal := func(cs []geom.Point, moved int) bool {
		p := cs[moved]
		if !opt.Region.Contains(p) {
			return false
		}
		for i, c := range cs {
			if i != moved && c.Dist(p) < opt.MinPitch {
				return false
			}
		}
		for _, site := range sites {
			if site.Dist(p) < st.RPrime {
				return false
			}
		}
		return true
	}

	for it := 0; it < opt.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, canceled(it, opt.Iterations, err)
		}
		frac := float64(it) / float64(opt.Iterations)
		step := opt.InitialStep * (1 - 0.9*frac)
		k := rng.Intn(n)
		old := cur[k]
		cur[k] = geom.Pt(old.X+rng.NormFloat64()*step, old.Y+rng.NormFloat64()*step)
		if !legal(cur, k) {
			cur[k] = old
			continue
		}
		cand, _, err := ev.cost(ctx, cur, init, sites)
		if err != nil {
			return nil, canceled(it, opt.Iterations, err)
		}
		accept := cand <= curCost
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp((curCost-cand)/temp)
		}
		if accept {
			curCost = cand
			res.Accepted++
			if cand < bestCost {
				bestCost = cand
				copy(best, cur)
			}
		} else {
			cur[k] = old
		}
		temp *= 0.995
	}

	res.Iterations = opt.Iterations
	res.Placement = geom.NewPlacement(best...)
	res.FinalCost, res.FinalViolations, err = ev.cost(ctx, best, init, sites)
	if err != nil {
		return nil, canceled(opt.Iterations, opt.Iterations, err)
	}
	return res, nil
}
