package material

import (
	"math"
	"testing"
)

func TestUnitHelpers(t *testing.T) {
	if GPa(1) != 1000 {
		t.Errorf("GPa(1) = %v", GPa(1))
	}
	if PPMPerK(17) != 17e-6 {
		t.Errorf("PPMPerK(17) = %v", PPMPerK(17))
	}
}

func TestStandardMaterialsValid(t *testing.T) {
	for _, m := range []Material{Copper, BCB, SiO2, Silicon} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// Paper constants spot check.
	if Copper.E != 110e3 || BCB.E != 3e3 || SiO2.E != 71e3 || Silicon.E != 188e3 {
		t.Error("Young's moduli do not match Section 5 of the paper")
	}
	for _, c := range []struct{ got, want float64 }{
		{Copper.CTE, 17e-6}, {BCB.CTE, 40e-6}, {SiO2.CTE, 0.5e-6}, {Silicon.CTE, 2.3e-6},
	} {
		if math.Abs(c.got-c.want) > 1e-18 {
			t.Errorf("CTE %v does not match Section 5 value %v", c.got, c.want)
		}
	}
}

func TestDerivedConstants(t *testing.T) {
	m := Material{Name: "test", E: 100, Nu: 0.25, CTE: 1e-6}
	if got, want := m.Mu(), 40.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mu = %v, want %v", got, want)
	}
	if got, want := m.KappaPlaneStress(), (3-0.25)/(1+0.25); math.Abs(got-want) > 1e-12 {
		t.Errorf("KappaPlaneStress = %v, want %v", got, want)
	}
	if got, want := m.KappaPlaneStrain(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("KappaPlaneStrain = %v, want %v", got, want)
	}
}

func TestPlaneStressD(t *testing.T) {
	m := Material{Name: "test", E: 100, Nu: 0.3, CTE: 0}
	d := m.PlaneStressD()
	// Uniaxial strain εxx=1 should give σxx = E/(1-ν²), σyy = νE/(1-ν²).
	c := 100 / (1 - 0.09)
	if math.Abs(d[0][0]-c) > 1e-9 || math.Abs(d[0][1]-0.3*c) > 1e-9 {
		t.Errorf("D row 0 = %v", d[0])
	}
	if math.Abs(d[2][2]-c*0.35) > 1e-9 {
		t.Errorf("D[2][2] = %v", d[2][2])
	}
	// Symmetry.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("D not symmetric at %d,%d", i, j)
			}
		}
	}
	// Pure shear: γxy = 1 → σxy = G = E/(2(1+ν)).
	if math.Abs(d[2][2]-m.Mu()) > 1e-9 {
		t.Errorf("D[2][2] = %v, want shear modulus %v", d[2][2], m.Mu())
	}
}

func TestMaterialValidate(t *testing.T) {
	bad := []Material{
		{Name: "zeroE", E: 0, Nu: 0.3},
		{Name: "negE", E: -5, Nu: 0.3},
		{Name: "nanE", E: math.NaN(), Nu: 0.3},
		{Name: "nu0.5", E: 1, Nu: 0.5},
		{Name: "nu-1", E: 1, Nu: -1},
		{Name: "nanCTE", E: 1, Nu: 0.3, CTE: math.NaN()},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", m.Name)
		}
	}
}

func TestBaselineStructure(t *testing.T) {
	s := Baseline(BCB)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.R != 2.5 || s.RPrime != 3.0 || s.PadDim != 6.0 || s.DeltaT != -250 {
		t.Errorf("baseline geometry mismatch: %+v", s)
	}
	if got := s.LinerThickness(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LinerThickness = %v", got)
	}
	if got := s.K(); math.Abs(got-2.5/3.0) > 1e-12 {
		t.Errorf("K = %v", got)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestStructureValidate(t *testing.T) {
	s := Baseline(BCB)
	s.R = 0
	if err := s.Validate(); err == nil {
		t.Error("zero radius should fail")
	}
	s = Baseline(BCB)
	s.RPrime = 2.0
	if err := s.Validate(); err == nil {
		t.Error("liner radius < body radius should fail")
	}
	s = Baseline(BCB)
	s.Liner.Nu = 0.7
	if err := s.Validate(); err == nil {
		t.Error("bad liner material should fail")
	}
}
