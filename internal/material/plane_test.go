package material

import (
	"math"
	"testing"
)

func TestPlaneHelpers(t *testing.T) {
	m := Material{Name: "t", E: 100, Nu: 0.25, CTE: 2e-6}

	if got, want := m.Kappa(PlaneStress), (3-0.25)/(1+0.25); math.Abs(got-want) > 1e-12 {
		t.Errorf("Kappa(stress) = %v, want %v", got, want)
	}
	if got, want := m.Kappa(PlaneStrain), 3-4*0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("Kappa(strain) = %v, want %v", got, want)
	}

	if got, want := m.PlaneModulus(PlaneStress), 100/(1-0.25); math.Abs(got-want) > 1e-12 {
		t.Errorf("PlaneModulus(stress) = %v, want %v", got, want)
	}
	if got, want := m.PlaneModulus(PlaneStrain), 100/((1+0.25)*(1-0.5)); math.Abs(got-want) > 1e-12 {
		t.Errorf("PlaneModulus(strain) = %v, want %v", got, want)
	}

	if got := m.EffectiveCTE(PlaneStress); got != 2e-6 {
		t.Errorf("EffectiveCTE(stress) = %v", got)
	}
	if got, want := m.EffectiveCTE(PlaneStrain), 2e-6*1.25; math.Abs(got-want) > 1e-18 {
		t.Errorf("EffectiveCTE(strain) = %v, want %v", got, want)
	}
}

func TestDMatrixModes(t *testing.T) {
	m := Material{Name: "t", E: 100, Nu: 0.3, CTE: 0}
	ds := m.D(PlaneStress)
	if ds != m.PlaneStressD() {
		t.Error("D(PlaneStress) should equal PlaneStressD")
	}
	de := m.D(PlaneStrain)
	// Plane strain is stiffer in the normal directions...
	if de[0][0] <= ds[0][0] {
		t.Errorf("plane-strain D11 %v should exceed plane-stress %v", de[0][0], ds[0][0])
	}
	// ...but the shear modulus is identical.
	if math.Abs(de[2][2]-ds[2][2]) > 1e-12 {
		t.Errorf("shear moduli differ: %v vs %v", de[2][2], ds[2][2])
	}
	// Known closed form: D11 = E(1−ν)/((1+ν)(1−2ν)).
	want := 100 * 0.7 / (1.3 * 0.4)
	if math.Abs(de[0][0]-want) > 1e-9 {
		t.Errorf("plane-strain D11 = %v, want %v", de[0][0], want)
	}
	// Symmetry.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if de[i][j] != de[j][i] {
				t.Fatal("plane-strain D not symmetric")
			}
		}
	}
}

func TestSigmaZZModes(t *testing.T) {
	if SigmaZZ(PlaneStress, 0.3, 10, 20) != 0 {
		t.Error("plane-stress σzz != 0")
	}
	if got := SigmaZZ(PlaneStrain, 0.25, 40, 20); math.Abs(got-15) > 1e-12 {
		t.Errorf("plane-strain σzz = %v, want 15", got)
	}
}

// Uniaxial plane-strain consistency: for εxx = e, εyy = γ = 0,
// σxx/σyy = (1−ν)/ν.
func TestPlaneStrainUniaxialRatio(t *testing.T) {
	m := Material{Name: "t", E: 50, Nu: 0.2, CTE: 0}
	d := m.D(PlaneStrain)
	sxx := d[0][0]
	syy := d[1][0]
	if math.Abs(sxx/syy-(1-0.2)/0.2) > 1e-9 {
		t.Errorf("σxx/σyy = %v, want %v", sxx/syy, (1-0.2)/0.2)
	}
}
