// Package material defines linear-elastic isotropic material properties
// and the TSV cross-sectional structure used by the stress models.
//
// Units: Young's modulus in MPa (so stresses come out in MPa with µm
// lengths), CTE in 1/K, temperatures in K, lengths in µm.
package material

import (
	"fmt"
	"math"
)

// Material is a linear-elastic isotropic material.
type Material struct {
	Name string
	// E is Young's modulus in MPa.
	E float64
	// Nu is Poisson's ratio (dimensionless).
	Nu float64
	// CTE is the coefficient of thermal expansion in 1/K.
	CTE float64
}

// Mu returns the shear modulus µ = E / (2(1+ν)) in MPa.
func (m Material) Mu() float64 { return m.E / (2 * (1 + m.Nu)) }

// KappaPlaneStress returns the dimensionless Kolosov constant
// κ = (3−ν)/(1+ν) for plane stress, used by the complex variable
// method.
func (m Material) KappaPlaneStress() float64 { return (3 - m.Nu) / (1 + m.Nu) }

// KappaPlaneStrain returns the dimensionless Kolosov constant κ = 3−4ν
// for plane strain.
func (m Material) KappaPlaneStrain() float64 { return 3 - 4*m.Nu }

// PlaneStressD returns the 3×3 plane-stress constitutive matrix D such
// that [σxx σyy σxy]ᵀ = D [εxx εyy γxy]ᵀ, in MPa.
func (m Material) PlaneStressD() [3][3]float64 {
	c := m.E / (1 - m.Nu*m.Nu)
	return [3][3]float64{
		{c, c * m.Nu, 0},
		{c * m.Nu, c, 0},
		{0, 0, c * (1 - m.Nu) / 2},
	}
}

// Validate returns an error for physically inadmissible properties.
func (m Material) Validate() error {
	if !(m.E > 0) || math.IsInf(m.E, 0) || math.IsNaN(m.E) {
		return fmt.Errorf("material %q: Young's modulus %v must be positive and finite", m.Name, m.E)
	}
	if m.Nu <= -1 || m.Nu >= 0.5 {
		return fmt.Errorf("material %q: Poisson ratio %v outside (-1, 0.5)", m.Name, m.Nu)
	}
	if math.IsNaN(m.CTE) || math.IsInf(m.CTE, 0) {
		return fmt.Errorf("material %q: CTE %v must be finite", m.Name, m.CTE)
	}
	return nil
}

// GPa converts GPa to the package's MPa convention.
func GPa(v float64) float64 { return v * 1e3 }

// PPMPerK converts ppm/K to 1/K.
func PPMPerK(v float64) float64 { return v * 1e-6 }

// Standard materials with the constants from Section 5 of the paper
// (E, CTE) and Poisson ratios from its reference chain (Jung et al.,
// DAC'11).
var (
	// Copper is the TSV body material.
	Copper = Material{Name: "copper", E: GPa(110), Nu: 0.35, CTE: PPMPerK(17)}
	// BCB (benzocyclobutene) is the baseline compliant liner.
	BCB = Material{Name: "BCB", E: GPa(3), Nu: 0.34, CTE: PPMPerK(40)}
	// SiO2 is the alternative stiff liner (Appendix A.2).
	SiO2 = Material{Name: "SiO2", E: GPa(71), Nu: 0.16, CTE: PPMPerK(0.5)}
	// Silicon is the substrate.
	Silicon = Material{Name: "silicon", E: GPa(188), Nu: 0.28, CTE: PPMPerK(2.3)}
)

// Structure is the cross-sectional specification of a TSV: a copper body
// of radius R, surrounded by a liner out to radius RPrime, embedded in a
// substrate, annealed with thermal load DeltaT (stress-free at annealing
// temperature; DeltaT is the cool-down, −250 K in the paper).
type Structure struct {
	// R is the TSV body radius in µm.
	R float64
	// RPrime is the outer liner radius (body + liner) in µm.
	RPrime float64
	// PadDim is the landing pad dimension in µm; recorded for
	// completeness, unused by the 2D device-layer models.
	PadDim float64
	// DeltaT is the thermal load in K (negative for cool-down).
	DeltaT float64
	// Body, Liner, Substrate are the constituent materials.
	Body, Liner, Substrate Material
}

// Baseline returns the paper's baseline TSV structure: 2.5 µm copper
// body, 0.5 µm liner of the given material, 6 µm landing pad, silicon
// substrate and ΔT = −250 K.
func Baseline(liner Material) Structure {
	return Structure{
		R:         2.5,
		RPrime:    3.0,
		PadDim:    6.0,
		DeltaT:    -250,
		Body:      Copper,
		Liner:     liner,
		Substrate: Silicon,
	}
}

// LinerThickness returns RPrime − R in µm.
func (s Structure) LinerThickness() float64 { return s.RPrime - s.R }

// K returns R/RPrime, the radius ratio called k in Appendix A.4.
func (s Structure) K() float64 { return s.R / s.RPrime }

// Validate returns an error for inadmissible geometry or materials.
func (s Structure) Validate() error {
	if !(s.R > 0) {
		return fmt.Errorf("material: body radius %v must be positive", s.R)
	}
	if s.RPrime < s.R {
		return fmt.Errorf("material: liner radius %v smaller than body radius %v", s.RPrime, s.R)
	}
	for _, m := range []Material{s.Body, s.Liner, s.Substrate} {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (s Structure) String() string {
	return fmt.Sprintf("TSV{R=%.3gµm, R'=%.3gµm, liner=%s, ΔT=%gK}",
		s.R, s.RPrime, s.Liner.Name, s.DeltaT)
}
