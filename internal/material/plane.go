package material

// Plane selects the 2D elasticity idealization. The paper's device-layer
// analysis uses plane stress (free surface); plane strain is the right
// idealization for cross-sections deep inside the die, and is provided
// as an extension. The classic mapping is used throughout: plane-strain
// formulas follow from plane-stress ones by substituting the "plane
// modulus" and the effective thermal expansion α(1+ν).
type Plane int

const (
	// PlaneStress is the device-layer assumption (σzz = 0).
	PlaneStress Plane = iota
	// PlaneStrain is the deep-cross-section assumption (εzz = 0).
	PlaneStrain
)

// String implements fmt.Stringer.
func (p Plane) String() string {
	if p == PlaneStrain {
		return "plane-strain"
	}
	return "plane-stress"
}

// Kappa returns the dimensionless Kolosov constant for the plane mode.
func (m Material) Kappa(p Plane) float64 {
	if p == PlaneStrain {
		return m.KappaPlaneStrain()
	}
	return m.KappaPlaneStress()
}

// PlaneModulus returns the coefficient of the uniform term in the
// axisymmetric Lamé solution, in MPa: E/(1−ν) for plane stress,
// E/((1+ν)(1−2ν)) for plane strain.
func (m Material) PlaneModulus(p Plane) float64 {
	if p == PlaneStrain {
		return m.E / ((1 + m.Nu) * (1 - 2*m.Nu))
	}
	return m.E / (1 - m.Nu)
}

// EffectiveCTE returns the in-plane effective thermal expansion in 1/K:
// α for plane stress, α(1+ν) for plane strain (the out-of-plane
// constraint amplifies the in-plane thermal mismatch).
func (m Material) EffectiveCTE(p Plane) float64 {
	if p == PlaneStrain {
		return m.CTE * (1 + m.Nu)
	}
	return m.CTE
}

// D returns the 3×3 constitutive matrix for the plane mode such that
// [σxx σyy σxy]ᵀ = D [εxx εyy γxy]ᵀ, in MPa.
func (m Material) D(p Plane) [3][3]float64 {
	if p == PlaneStress {
		return m.PlaneStressD()
	}
	c := m.E / ((1 + m.Nu) * (1 - 2*m.Nu))
	return [3][3]float64{
		{c * (1 - m.Nu), c * m.Nu, 0},
		{c * m.Nu, c * (1 - m.Nu), 0},
		{0, 0, m.E / (2 * (1 + m.Nu))},
	}
}

// SigmaZZ returns the out-of-plane stress in MPa implied by in-plane
// stresses for the perturbation problem: 0 for plane stress; for plane strain
// σzz = ν(σxx + σyy) − E·(α−αref)·ΔT/(1−...) is material-dependent —
// here the *elastic* part ν(σxx+σyy) is returned and the thermal part
// must be added by the caller that knows the local eigenstrain. For
// points in the substrate (the usual case — device regions are silicon
// and the perturbation convention uses α−αs = 0 there) the returned
// value is exact.
func SigmaZZ(p Plane, nu, sxx, syy float64) float64 {
	if p == PlaneStrain {
		return nu * (sxx + syy)
	}
	return 0
}
