// Package potential implements the Muskhelishvili complex-potential
// machinery used to characterize interactive stress (Section 3 of the
// paper).
//
// A 2D elastic field is represented by two analytic functions φ(z),
// ψ(z) with (Eqs. 3–5 of the paper)
//
//	σrr + σθθ            = 4·Re φ′(z)
//	σθθ − σrr + 2iσrθ    = 2 e^{2iθ} ( z̄ φ″(z) + ψ′(z) )
//	2µ (ur + i uθ)       = e^{−iθ} ( κ φ(z) − z·conj(φ′(z)) − conj(ψ(z)) )
//
// For the TSV-pair problem the geometry is symmetric about the line
// joining the two centers, so the potentials have power series with
// *real* coefficients: φ′(z) = Σ aₙ zⁿ, ψ′(z) = Σ bₙ zⁿ. On a circle of
// radius ρ the traction and displacement combinations decompose into
// Fourier harmonics e^{imθ} with real coefficients:
//
//	t_m(ρ)      = (1−m) a_m ρ^m + a_{−m} ρ^{−m} − b_{m−2} ρ^{m−2}
//	2µ d_m(ρ)   = κ a_m ρ^{m+1}/(m+1) − a_{−m} ρ^{1−m} + b_{−m−2} ρ^{−m−1}/(m+1)
//
// where σrr − iσrθ = Σ t_m e^{imθ} and ur + i uθ = Σ d_m e^{imθ}.
// These identities, plus the per-harmonic stress evaluation below, are
// everything the interactive-stress solver needs. All radii here are
// non-dimensional (scaled by the TSV outer radius R′), which keeps the
// per-harmonic boundary systems well conditioned up to high m.
package potential

import "math"

// HarmCoeffs holds the four potential coefficients that participate in
// the ±m harmonic pair of a symmetric field: a_m, a_{−m} of φ′ and
// b_{m−2}, b_{−m−2} of ψ′. Coefficients that do not exist in a region
// (e.g. positive powers in an exterior domain) are simply zero.
type HarmCoeffs struct {
	APos float64 // a_m
	ANeg float64 // a_{−m}
	BPos float64 // b_{m−2}
	BNeg float64 // b_{−m−2}
}

// Scale returns the coefficients multiplied by s (fields are linear in
// their potentials).
func (c HarmCoeffs) Scale(s float64) HarmCoeffs {
	return HarmCoeffs{c.APos * s, c.ANeg * s, c.BPos * s, c.BNeg * s}
}

// Add returns the coefficient-wise sum.
func (c HarmCoeffs) Add(d HarmCoeffs) HarmCoeffs {
	return HarmCoeffs{c.APos + d.APos, c.ANeg + d.ANeg, c.BPos + d.BPos, c.BNeg + d.BNeg}
}

// TractionPlus returns t_{+m}(ρ) in MPa, the e^{+imθ} Fourier
// coefficient of σrr − iσrθ on the circle of radius ρ.
func (c HarmCoeffs) TractionPlus(m int, rho float64) float64 {
	fm := float64(m)
	return (1-fm)*c.APos*math.Pow(rho, fm) +
		c.ANeg*math.Pow(rho, -fm) -
		c.BPos*math.Pow(rho, fm-2)
}

// TractionMinus returns t_{−m}(ρ) in MPa, the e^{−imθ} Fourier
// coefficient of σrr − iσrθ on the circle of radius ρ.
func (c HarmCoeffs) TractionMinus(m int, rho float64) float64 {
	fm := float64(m)
	return (1+fm)*c.ANeg*math.Pow(rho, -fm) +
		c.APos*math.Pow(rho, fm) -
		c.BNeg*math.Pow(rho, -fm-2)
}

// DispPlus returns 2µ·d_{+m}(ρ) in MPa, the e^{+imθ} Fourier
// coefficient of 2µ(ur + i uθ) on the circle of radius ρ, for Kolosov
// constant κ. Divide by 2µ of the region's material to obtain the
// physical displacement as a fraction of R′.
func (c HarmCoeffs) DispPlus(m int, rho, kappa float64) float64 {
	fm := float64(m)
	return kappa*c.APos*math.Pow(rho, fm+1)/(fm+1) -
		c.ANeg*math.Pow(rho, 1-fm) +
		c.BNeg*math.Pow(rho, -fm-1)/(fm+1)
}

// DispMinus returns 2µ·d_{−m}(ρ) in MPa, the e^{−imθ} coefficient of
// 2µ(ur + i uθ). Valid for m ≥ 2 (m = 1 would need a log term).
func (c HarmCoeffs) DispMinus(m int, rho, kappa float64) float64 {
	fm := float64(m)
	return kappa*c.ANeg*math.Pow(rho, 1-fm)/(1-fm) -
		c.APos*math.Pow(rho, fm+1) +
		c.BPos*math.Pow(rho, fm-1)/(1-fm)
}

// PolarHarm is the stress contribution of one harmonic at a point
// (ρ, θ): σrr and σθθ vary as cos(mθ) and σrθ as sin(mθ) with the
// radial profiles returned by StressProfiles.
type PolarHarm struct {
	RR, TT, RT float64
}

// StressProfiles returns the radial profiles (σrr, σθθ, σrθ) of the
// harmonic m at radius ρ, i.e. the full components are
//
//	σrr(ρ,θ) = RR·cos(mθ),  σθθ(ρ,θ) = TT·cos(mθ),  σrθ(ρ,θ) = RT·sin(mθ).
func (c HarmCoeffs) StressProfiles(m int, rho float64) PolarHarm {
	fm := float64(m)
	rp := math.Pow(rho, fm)    // ρ^m
	rn := math.Pow(rho, -fm)   // ρ^−m
	rp2 := math.Pow(rho, fm-2) // ρ^{m−2}
	rn2 := math.Pow(rho, -fm-2)
	return PolarHarm{
		RR: (2-fm)*c.APos*rp + (2+fm)*c.ANeg*rn - c.BPos*rp2 - c.BNeg*rn2,
		TT: (2+fm)*c.APos*rp + (2-fm)*c.ANeg*rn + c.BPos*rp2 + c.BNeg*rn2,
		RT: fm*c.APos*rp + fm*c.ANeg*rn + c.BPos*rp2 - c.BNeg*rn2,
	}
}

// DispProfiles returns the radial profiles (ur, uθ) of the harmonic m
// at radius ρ for a material with shear modulus 2µ = twoMu and Kolosov
// constant κ: ur(ρ,θ) = UR·cos(mθ), uθ(ρ,θ) = UT·sin(mθ), as
// dimensionless fractions of R′. Derived from ur + iuθ = d_m e^{imθ} + d_{−m} e^{−imθ}:
// UR = d_m + d_{−m}, UT = d_m − d_{−m}.
func (c HarmCoeffs) DispProfiles(m int, rho, twoMu, kappa float64) (ur, ut float64) {
	dp := c.DispPlus(m, rho, kappa) / twoMu
	dn := c.DispMinus(m, rho, kappa) / twoMu
	return dp + dn, dp - dn
}

// IncidentCoeff returns the ψ′ Taylor coefficient b̂_n in MPa (n ≥ 0,
// scaled radii) of the aggressor's ideal stress field expanded about
// the victim center. The ideal single-TSV field σrr = K/r², σθθ = −K/r² is
// generated by φ₀ = 0, ψ₀′(w) = −K/(w − d)² in the victim frame with
// the aggressor on the +x axis at distance d. Expanding about w = 0 and
// rescaling radii by R′ gives
//
//	b̂_n = −(K/R′²)·(n+1)/ d̂^{n+2},  d̂ = d/R′.
//
// Its harmonic-m traction on the circle ρ̂ = 1 is −b̂_{m−2}, which
// reproduces Eq. (7) of the paper exactly.
func IncidentCoeff(n int, K, rPrime, d float64) float64 {
	dHat := d / rPrime
	return -(K / (rPrime * rPrime)) * float64(n+1) / math.Pow(dHat, float64(n+2))
}

// IncidentHarm returns the HarmCoeffs of the incident (aggressor ideal)
// field for harmonic m ≥ 2: only b_{m−2} is present.
func IncidentHarm(m int, K, rPrime, d float64) HarmCoeffs {
	return HarmCoeffs{BPos: IncidentCoeff(m-2, K, rPrime, d)}
}
