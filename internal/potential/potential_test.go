package potential

import (
	"math"
	"math/rand"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func TestScaleAdd(t *testing.T) {
	c := HarmCoeffs{1, 2, 3, 4}
	if got := c.Scale(2); got != (HarmCoeffs{2, 4, 6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := c.Add(HarmCoeffs{1, 1, 1, 1}); got != (HarmCoeffs{2, 3, 4, 5}) {
		t.Errorf("Add = %v", got)
	}
}

// The σrr profile must equal t_m + t_{−m} and the σrθ profile
// −(t_m − t_{−m}), since σrr − iσrθ = Σ t_m e^{imθ} with real t_m.
func TestTractionStressConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		c := HarmCoeffs{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		m := 2 + rng.Intn(9)
		rho := 0.5 + rng.Float64()*2
		p := c.StressProfiles(m, rho)
		tp := c.TractionPlus(m, rho)
		tm := c.TractionMinus(m, rho)
		scale := math.Max(1, math.Abs(tp)+math.Abs(tm))
		if !eq(p.RR, tp+tm, 1e-10*scale) {
			t.Fatalf("m=%d ρ=%g: σrr profile %v != t+ + t− = %v", m, rho, p.RR, tp+tm)
		}
		if !eq(p.RT, -(tp - tm), 1e-10*scale) {
			t.Fatalf("m=%d ρ=%g: σrθ profile %v != −(t+ − t−) = %v", m, rho, p.RT, -(tp - tm))
		}
	}
}

// Differentiating the displacement profiles must reproduce the stress
// profiles through the plane-stress constitutive law — this jointly
// validates every formula in the package.
func TestDisplacementStressCompatibility(t *testing.T) {
	mat := material.Silicon
	twoMu := 2 * mat.Mu()
	kappa := mat.KappaPlaneStress()
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 60; trial++ {
		c := HarmCoeffs{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		m := 2 + rng.Intn(7)
		rho := 0.6 + rng.Float64()*1.5
		theta := rng.Float64() * 2 * math.Pi

		ur := func(r, th float64) float64 {
			u, _ := c.DispProfiles(m, r, twoMu, kappa)
			return u * math.Cos(float64(m)*th)
		}
		ut := func(r, th float64) float64 {
			_, u := c.DispProfiles(m, r, twoMu, kappa)
			return u * math.Sin(float64(m)*th)
		}
		h := 1e-6
		durDr := (ur(rho+h, theta) - ur(rho-h, theta)) / (2 * h)
		durDt := (ur(rho, theta+h) - ur(rho, theta-h)) / (2 * h)
		dutDr := (ut(rho+h, theta) - ut(rho-h, theta)) / (2 * h)
		dutDt := (ut(rho, theta+h) - ut(rho, theta-h)) / (2 * h)

		err := durDr // εrr
		ett := ur(rho, theta)/rho + dutDt/rho
		ert := 0.5 * (durDt/rho + dutDr - ut(rho, theta)/rho)

		cfac := mat.E / (1 - mat.Nu*mat.Nu)
		srr := cfac * (err + mat.Nu*ett)
		stt := cfac * (ett + mat.Nu*err)
		srt := mat.E / (1 + mat.Nu) * ert

		p := c.StressProfiles(m, rho)
		wantRR := p.RR * math.Cos(float64(m)*theta)
		wantTT := p.TT * math.Cos(float64(m)*theta)
		wantRT := p.RT * math.Sin(float64(m)*theta)

		scale := math.Max(1, math.Abs(wantRR)+math.Abs(wantTT)+math.Abs(wantRT))
		if !eq(srr, wantRR, 2e-4*scale) || !eq(stt, wantTT, 2e-4*scale) || !eq(srt, wantRT, 2e-4*scale) {
			t.Fatalf("m=%d ρ=%.3f θ=%.3f: FD stress (%g,%g,%g) != profile (%g,%g,%g)",
				m, rho, theta, srr, stt, srt, wantRR, wantTT, wantRT)
		}
	}
}

// Summing the incident harmonic series must reproduce the aggressor's
// closed-form ideal field σrr = K/r², σθθ = −K/r² (rotated into the
// victim-centered polar frame). This validates IncidentCoeff and the
// claim that it reproduces Eqs. (7)–(8) of the paper.
func TestIncidentSeriesMatchesClosedForm(t *testing.T) {
	K := 725.93 // MPa·µm² (BCB baseline magnitude)
	rPrime := 3.0
	d := 10.0
	mmax := 60 // generous truncation for near-machine agreement

	evalSeries := func(r, theta float64) tensor.Polar {
		rho := r / rPrime
		var out tensor.Polar
		for m := 2; m <= mmax; m++ {
			c := IncidentHarm(m, K, rPrime, d)
			p := c.StressProfiles(m, rho)
			cm, sm := math.Cos(float64(m)*theta), math.Sin(float64(m)*theta)
			out.RR += p.RR * cm
			out.TT += p.TT * cm
			out.RT += p.RT * sm
		}
		return out
	}

	closedForm := func(r, theta float64) tensor.Polar {
		// Point in victim frame; aggressor at (d, 0).
		x := r*math.Cos(theta) - d
		y := r * math.Sin(theta)
		ra := math.Hypot(x, y)
		pol := tensor.Polar{RR: K / (ra * ra), TT: -K / (ra * ra)}
		cart := pol.ToCartesian(math.Atan2(y, x))
		return cart.ToPolar(theta)
	}

	for _, pt := range []struct{ r, theta float64 }{
		{1.0, 0}, {3.0, 0.4}, {4.5, 1.2}, {2.0, math.Pi / 2}, {3.3, -2.5}, {5.0, math.Pi},
	} {
		got := evalSeries(pt.r, pt.theta)
		want := closedForm(pt.r, pt.theta)
		scale := math.Max(1, math.Abs(want.RR)+math.Abs(want.TT)+math.Abs(want.RT))
		if !eq(got.RR, want.RR, 1e-6*scale) || !eq(got.TT, want.TT, 1e-6*scale) || !eq(got.RT, want.RT, 1e-6*scale) {
			t.Errorf("(r=%g θ=%g): series (%g,%g,%g) != closed form (%g,%g,%g)",
				pt.r, pt.theta, got.RR, got.TT, got.RT, want.RR, want.TT, want.RT)
		}
	}
}

// The incident traction harmonic on the victim boundary must match
// Eq. (7): (σrr − iσrθ)|Γ1 = Σ_{m≥2} K(m−1)/R′² (R′/d)^m e^{imθ}.
func TestIncidentReproducesPaperEq7(t *testing.T) {
	K, rPrime, d := 500.0, 3.0, 9.0
	for m := 2; m <= 12; m++ {
		c := IncidentHarm(m, K, rPrime, d)
		got := c.TractionPlus(m, 1.0) // ρ̂ = 1 is the victim boundary
		want := K * float64(m-1) / (rPrime * rPrime) * math.Pow(rPrime/d, float64(m))
		if !eq(got, want, 1e-12*math.Abs(want)) {
			t.Errorf("m=%d: traction %v, want Eq.(7) value %v", m, got, want)
		}
		// And the negative harmonic must vanish (Eq. 7 has none).
		if gotNeg := c.TractionMinus(m, 1.0); !eq(gotNeg, 0, 1e-14) {
			t.Errorf("m=%d: negative traction harmonic %v, want 0", m, gotNeg)
		}
	}
}

// The incident displacement harmonic on Γ1 must match Eq. (8):
// (ur + ivθ)|Γ1 = Σ_{m≤−1} (K/R′)(1+νs)/Es (d/R′)^m e^{imθ}, i.e. the
// e^{−imθ} coefficient is K(1+νs)/Es · R′^{m−1}/d^m for m ≥ 2 (in µm;
// our profiles are in units of R′).
func TestIncidentReproducesPaperEq8(t *testing.T) {
	K, rPrime, d := 500.0, 3.0, 9.0
	s := material.Silicon
	twoMu := 2 * s.Mu()
	kappa := s.KappaPlaneStress()
	for m := 2; m <= 12; m++ {
		c := IncidentHarm(m, K, rPrime, d)
		got := c.DispMinus(m, 1.0, kappa) / twoMu * rPrime // convert to µm
		want := K * (1 + s.Nu) / s.E * math.Pow(rPrime, float64(m-1)) / math.Pow(d, float64(m))
		if !eq(got, want, 1e-12*math.Abs(want)) {
			t.Errorf("m=%d: displacement %v, want Eq.(8) value %v", m, got, want)
		}
		if gotPos := c.DispPlus(m, 1.0, kappa); !eq(gotPos, 0, 1e-14) {
			t.Errorf("m=%d: positive displacement harmonic %v, want 0", m, gotPos)
		}
	}
}

func TestStressProfileDecay(t *testing.T) {
	// An exterior-domain coefficient set (ANeg, BNeg only) must decay
	// at least as fast as ρ^{−m}.
	c := HarmCoeffs{ANeg: 1, BNeg: 1}
	for _, m := range []int{2, 4, 8} {
		near := c.StressProfiles(m, 1.5)
		far := c.StressProfiles(m, 3.0)
		ratio := math.Abs(far.RR) / math.Abs(near.RR)
		if ratio > math.Pow(2, -float64(m))*1.5 {
			t.Errorf("m=%d: decay ratio %v too slow", m, ratio)
		}
	}
}
