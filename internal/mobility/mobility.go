// Package mobility converts TSV-induced stress into carrier-mobility
// variation via the linear piezoresistance model — the device-impact
// application the paper's introduction motivates (its reference [2],
// Yang et al., "TSV stress aware timing analysis", DAC 2010).
//
// For a MOSFET channel along direction l̂ in the (001) silicon device
// plane, the first-order mobility shift is
//
//	Δµ/µ = −( π_L σ_L + π_T σ_T )
//
// where σ_L and σ_T are the normal stresses along and across the
// channel and π_L, π_T are the longitudinal/transverse piezoresistance
// coefficients of the carrier type. Positive Δµ/µ is a mobility gain.
//
// Default coefficients are the widely used bulk values for standard
// <110> channels on (001) silicon (Smith's data rotated to <110>, in
// 1/MPa): they reproduce the behaviour exploited by the stress-aware
// placement literature — NMOS speeds up under tensile channel stress,
// PMOS slows down, and vice versa.
package mobility

import (
	"fmt"
	"math"

	"tsvstress/internal/tensor"
)

// Carrier selects electron or hole mobility.
type Carrier int

const (
	// NMOS is the electron channel.
	NMOS Carrier = iota
	// PMOS is the hole channel.
	PMOS
)

// String implements fmt.Stringer.
func (c Carrier) String() string {
	if c == NMOS {
		return "NMOS"
	}
	return "PMOS"
}

// Coefficients are piezoresistance coefficients in 1/MPa. πL couples to
// stress along the channel, πT across it. Note the sign convention:
// mobility shift is Δµ/µ = −(πL σL + πT σT), matching piezoresistance
// (resistivity increase = mobility decrease).
type Coefficients struct {
	PiL, PiT float64
}

// Default110 returns the bulk piezoresistance coefficients for <110>
// channels on (001) silicon, in 1/MPa.
func Default110(c Carrier) Coefficients {
	switch c {
	case NMOS:
		// π11 = −102.2e-5, π12 = 53.4e-5, π44 = −13.6e-5 (1/MPa·1e-5
		// in the usual 1e-11/Pa units); rotated to <110>:
		// πL = (π11+π12+π44)/2, πT = (π11+π12−π44)/2.
		return Coefficients{PiL: -31.2e-5, PiT: -17.6e-5}
	default:
		// Holes: π11 = 6.6e-5, π12 = −1.1e-5, π44 = 138.1e-5.
		return Coefficients{PiL: 71.8e-5, PiT: -66.3e-5}
	}
}

// Shift returns Δµ/µ (dimensionless, e.g. +0.05 = +5%) for a channel
// whose direction makes angle theta with the x-axis, under the given
// device-layer stress.
func Shift(s tensor.Stress, theta float64, k Coefficients) float64 {
	// Rotate the stress into channel coordinates: σL is the normal
	// stress along the channel, σT across it.
	p := s.ToPolar(theta)
	return -(k.PiL*p.RR + k.PiT*p.TT)
}

// ShiftXY returns Δµ/µ, as a dimensionless fraction, for the two
// canonical channel orientations (along x and along y).
func ShiftXY(s tensor.Stress, k Coefficients) (alongX, alongY float64) {
	return Shift(s, 0, k), Shift(s, math.Pi/2, k)
}

// WorstCase returns the most negative Δµ/µ (a dimensionless fraction)
// over all channel orientations and the angle at which it occurs, in
// radians. Because Δµ/µ is a
// quadratic form in the channel direction, the extrema occur along the
// principal axes of an effective tensor; they are found here by direct
// closed form.
func WorstCase(s tensor.Stress, k Coefficients) (shift, theta float64) {
	// Δµ/µ(θ) = −(πL σL(θ) + πT σT(θ))
	//         = −(πL+πT)(σxx+σyy)/2 − (πL−πT)[(σxx−σyy)/2 cos2θ + σxy sin2θ]
	mean := -(k.PiL + k.PiT) * (s.XX + s.YY) / 2
	ax := (s.XX - s.YY) / 2
	amp := (k.PiL - k.PiT) * math.Hypot(ax, s.XY)
	// Worst case is mean − |amp|; the minimizing angle solves
	// cos(2θ−φ) = ±1 with φ = atan2(σxy, ax).
	phi := math.Atan2(s.XY, ax)
	if amp >= 0 {
		return mean - amp, phi / 2
	}
	return mean + amp, phi/2 + math.Pi/2
}

// WorstCaseOver returns the most negative worst-orientation Δµ/µ, as a
// dimensionless fraction, over a set of sampled stresses in MPa, plus
// the index at which it occurs (0, -1 for an empty set) — the per-TSV
// summary that interface-ring screens feed to the serving layer.
func WorstCaseOver(stresses []tensor.Stress, k Coefficients) (shift float64, at int) {
	at = -1
	for i, s := range stresses {
		w, _ := WorstCase(s, k)
		if at < 0 || w < shift {
			shift, at = w, i
		}
	}
	return shift, at
}

// Validate rejects non-finite coefficients.
func (k Coefficients) Validate() error {
	for _, v := range []float64{k.PiL, k.PiT} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mobility: non-finite coefficient %v", v)
		}
	}
	return nil
}
