package mobility

import (
	"math"
	"math/rand"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/tensor"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func TestCarrierString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Error("carrier names wrong")
	}
}

func TestDefaultCoefficients(t *testing.T) {
	n := Default110(NMOS)
	p := Default110(PMOS)
	// Rotated-Smith values for <110>/(001).
	if !eq(n.PiL, -31.2e-5, 1e-9) || !eq(n.PiT, -17.6e-5, 1e-9) {
		t.Errorf("NMOS coefficients = %+v", n)
	}
	if !eq(p.PiL, 71.8e-5, 1e-9) || !eq(p.PiT, -66.3e-5, 1e-9) {
		t.Errorf("PMOS coefficients = %+v", p)
	}
	if n.Validate() != nil || p.Validate() != nil {
		t.Error("default coefficients should validate")
	}
	if (Coefficients{PiL: math.NaN()}).Validate() == nil {
		t.Error("NaN coefficient should fail")
	}
}

func TestShiftSigns(t *testing.T) {
	// Uniaxial tension along the channel: NMOS gains mobility
	// (πL < 0 → Δµ/µ = −πL·σ > 0), PMOS loses (πL > 0).
	s := tensor.Stress{XX: 100}
	nm := Shift(s, 0, Default110(NMOS))
	pm := Shift(s, 0, Default110(PMOS))
	if nm <= 0 {
		t.Errorf("NMOS under longitudinal tension: Δµ/µ = %v, want > 0", nm)
	}
	if pm >= 0 {
		t.Errorf("PMOS under longitudinal tension: Δµ/µ = %v, want < 0", pm)
	}
	// Magnitudes: 100 MPa × 31.2e-5 ≈ 3.1% for NMOS.
	if !eq(nm, 100*31.2e-5, 1e-9) {
		t.Errorf("NMOS shift = %v", nm)
	}
}

func TestShiftRotationConsistency(t *testing.T) {
	// Shifting the channel by θ equals rotating the stress by −θ.
	rng := rand.New(rand.NewSource(4))
	k := Default110(PMOS)
	for i := 0; i < 200; i++ {
		s := tensor.Stress{XX: rng.NormFloat64() * 100, YY: rng.NormFloat64() * 100, XY: rng.NormFloat64() * 100}
		th := rng.Float64() * 2 * math.Pi
		a := Shift(s, th, k)
		b := Shift(s.Rotate(th), 0, k)
		if !eq(a, b, 1e-9*(1+math.Abs(a))) {
			t.Fatalf("rotation inconsistency: %v vs %v", a, b)
		}
	}
}

func TestShiftXY(t *testing.T) {
	s := tensor.Stress{XX: 50, YY: -30}
	k := Default110(NMOS)
	ax, ay := ShiftXY(s, k)
	if !eq(ax, Shift(s, 0, k), 1e-12) || !eq(ay, Shift(s, math.Pi/2, k), 1e-12) {
		t.Error("ShiftXY inconsistent with Shift")
	}
	// Equibiaxial stress: orientation independent.
	iso := tensor.Stress{XX: 80, YY: 80}
	ax, ay = ShiftXY(iso, k)
	if !eq(ax, ay, 1e-12) {
		t.Error("equibiaxial shift should be isotropic")
	}
}

func TestWorstCaseIsMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, carrier := range []Carrier{NMOS, PMOS} {
		k := Default110(carrier)
		for i := 0; i < 100; i++ {
			s := tensor.Stress{XX: rng.NormFloat64() * 100, YY: rng.NormFloat64() * 100, XY: rng.NormFloat64() * 100}
			worst, theta := WorstCase(s, k)
			// The reported angle must attain the reported value...
			if got := Shift(s, theta, k); !eq(got, worst, 1e-9*(1+math.Abs(worst))) {
				t.Fatalf("%v: WorstCase angle does not attain value: %v vs %v", carrier, got, worst)
			}
			// ...and no sampled angle may be lower.
			for j := 0; j < 64; j++ {
				th := 2 * math.Pi * float64(j) / 64
				if Shift(s, th, k) < worst-1e-9*(1+math.Abs(worst)) {
					t.Fatalf("%v: found lower shift than WorstCase at θ=%v", carrier, th)
				}
			}
		}
	}
}

func TestWorstCaseUnderTSVField(t *testing.T) {
	// The single-TSV field σrr = K/r², σθθ = −K/r² (K > 0, cool-down):
	// a PMOS channel pointing at the via sits under radial tension and
	// tangential compression — both terms hurt (πL > 0, πT < 0), so the
	// worst orientation is radial.
	K := 700.0
	r := 5.0
	s := tensor.Polar{RR: K / (r * r), TT: -K / (r * r)}.ToCartesian(0)
	worst, theta := WorstCase(s, Default110(PMOS))
	if worst >= 0 {
		t.Fatalf("PMOS near TSV should lose mobility: %v", worst)
	}
	// θ = 0 is the radial direction here.
	if math.Abs(math.Mod(theta+math.Pi, math.Pi)) > 1e-6 && math.Abs(theta) > 1e-6 {
		t.Errorf("worst angle = %v, want radial (0 mod π)", theta)
	}
}
