package mobility

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
)

func TestKeepOutRadius(t *testing.T) {
	sol, err := lame.Solve(material.Baseline(material.BCB))
	if err != nil {
		t.Fatal(err)
	}
	for _, carrier := range []Carrier{NMOS, PMOS} {
		k := Default110(carrier)
		r := KeepOutRadius(sol, k, 0.01)
		if r < sol.Struct.RPrime {
			t.Fatalf("%v: KOZ radius %v below via radius", carrier, r)
		}
		// At the KOZ boundary the worst-case shift equals the
		// tolerance (field sampled via the actual solution).
		s := sol.StressAt(geom.Pt(r, 0), geom.Pt(0, 0))
		worst, _ := WorstCase(s, k)
		if math.Abs(math.Abs(worst)-0.01) > 1e-3 {
			t.Errorf("%v: |shift| at KOZ boundary = %v, want ≈ 0.01", carrier, math.Abs(worst))
		}
		// Just outside it must be below tolerance.
		s2 := sol.StressAt(geom.Pt(r*1.2, 0), geom.Pt(0, 0))
		if w, _ := WorstCase(s2, k); math.Abs(w) > 0.01 {
			t.Errorf("%v: shift beyond KOZ = %v", carrier, w)
		}
	}
	// PMOS KOZ is much larger than NMOS (|πL−πT| is ~10× bigger).
	if KeepOutRadius(sol, Default110(PMOS), 0.01) <= KeepOutRadius(sol, Default110(NMOS), 0.01) {
		t.Error("PMOS KOZ should exceed NMOS KOZ")
	}
}

func TestKeepOutRadiusEdgeCases(t *testing.T) {
	sol, err := lame.Solve(material.Baseline(material.BCB))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(KeepOutRadius(sol, Default110(PMOS), 0), 1) {
		t.Error("zero tolerance should give infinite KOZ")
	}
	// Huge tolerance clamps at the via radius.
	if got := KeepOutRadius(sol, Default110(NMOS), 100); got != sol.Struct.RPrime {
		t.Errorf("huge tolerance KOZ = %v", got)
	}
}

func TestShiftAtField(t *testing.T) {
	sol, err := lame.Solve(material.Baseline(material.BCB))
	if err != nil {
		t.Fatal(err)
	}
	s := sol.StressAt(geom.Pt(5, 2), geom.Pt(0, 0))
	k := Default110(PMOS)
	worst, _ := WorstCase(s, k)
	if ShiftAtField(s, k) != worst {
		t.Error("ShiftAtField should equal WorstCase value")
	}
}
