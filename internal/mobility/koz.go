package mobility

import (
	"math"

	"tsvstress/internal/lame"
	"tsvstress/internal/tensor"
)

// KeepOutRadius returns the keep-out-zone radius of a single TSV for a
// carrier: the distance from the via center beyond which the
// worst-orientation |Δµ/µ| stays below tol (e.g. 0.01 for the common
// "1% mobility shift" KOZ rule). The single-TSV field magnitude decays
// monotonically as K/r², so the radius solves |shift|(r) = tol in
// closed form; the returned value is never below the via radius R′.
func KeepOutRadius(sol *lame.Solution, k Coefficients, tol float64) float64 {
	if tol <= 0 {
		return math.Inf(1)
	}
	// In the substrate the field is σrr = K/r², σθθ = −K/r², a pure
	// deviator: the worst-case shift is ±(πL−πT)·K/r² plus zero mean
	// term... mean = −(πL+πT)(σxx+σyy)/2 = 0 since trace is zero. So
	// |shift|(r) = |πL−πT|·K/r².
	amp := math.Abs((k.PiL - k.PiT) * sol.K)
	r := math.Sqrt(amp / tol)
	if r < sol.Struct.RPrime {
		return sol.Struct.RPrime
	}
	return r
}

// ShiftAtField is a convenience helper mapping a sampled stress to the
// worst-case mobility shift Δµ/µ as a dimensionless fraction (used by
// keep-out-zone scans over full placements, where superposed fields are
// no longer pure deviators).
func ShiftAtField(s tensor.Stress, k Coefficients) float64 {
	worst, _ := WorstCase(s, k)
	return worst
}
