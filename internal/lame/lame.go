// Package lame implements the 2D plane-stress analytical model of a
// single TSV with liner (Section 3.2 of the paper): a copper body of
// radius R, a liner ring out to R′, embedded in an infinite silicon
// substrate, cooled by ΔT from the stress-free annealing temperature.
//
// The axisymmetric displacement ansatz is
//
//	body:      u(r) = Ac·r
//	liner:     u(r) = Al·r + Bl/r
//	substrate: u(r) = αs·ΔT·r + Bs/r   (free thermal expansion + decay)
//
// with plane-stress thermo-elastic constitutive law
//
//	σrr = E/(1−ν)·(A − αΔT) − E/(1+ν)·B/r²
//	σθθ = E/(1−ν)·(A − αΔT) + E/(1+ν)·B/r²
//
// Continuity of u and σrr at r = R and r = R′ gives a 4×4 linear system
// for (Ac, Al, Bl, Bs). The substrate stress is then exactly the paper's
// Eq. (6): σrr = K/r², σθθ = −K/r², σrθ = 0, with K = −Es·Bs/(1+νs).
//
// The paper's closed-form K (Appendix A.4) is provided separately as
// PaperK for cross-checking.
package lame

import (
	"fmt"
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/linalg"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// Region identifies which ring of the TSV structure a radius falls in.
type Region int

const (
	// Body is the copper TSV body, r < R.
	Body Region = iota
	// Liner is the liner ring, R ≤ r < R′.
	Liner
	// Substrate is the silicon bulk, r ≥ R′.
	Substrate
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case Body:
		return "body"
	case Liner:
		return "liner"
	case Substrate:
		return "substrate"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Solution is the solved single-TSV stress field. It is immutable and
// safe for concurrent use.
type Solution struct {
	Struct material.Structure
	// Plane records the 2D idealization the solution was computed for.
	Plane material.Plane

	// Displacement coefficients (see the package comment).
	Ac, Al, Bl, Bs float64

	// K is the substrate decay constant of Eq. (6), in MPa·µm².
	K float64
}

// Solve computes the single-TSV solution for the given structure under
// plane stress (the paper's device-layer assumption).
func Solve(s material.Structure) (*Solution, error) {
	return SolvePlane(s, material.PlaneStress)
}

// SolvePlane computes the single-TSV solution for either plane mode.
// Plane strain uses the standard substitution: the plane modulus
// E/((1+ν)(1−2ν)) replaces E/(1−ν) and the effective in-plane CTE is
// α(1+ν); the q = E/(1+ν) = 2µ coefficient of the B/r² term is mode
// independent.
func SolvePlane(s material.Structure, plane material.Plane) (*Solution, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("lame: %w", err)
	}
	c, l, sub := s.Body, s.Liner, s.Substrate
	dT := s.DeltaT
	R, Rp := s.R, s.RPrime

	// Shorthand moduli: p multiplies the uniform (A − α_eff ΔT) term,
	// q the B/r² term. The body has no B term so qc is unneeded.
	pc := c.PlaneModulus(plane)
	pl := l.PlaneModulus(plane)
	ql := l.E / (1 + l.Nu)
	qs := sub.E / (1 + sub.Nu)

	// Unknowns x = [Ac, Al, Bl, Bs].
	a := linalg.NewMatrix(4, 4)
	b := make([]float64, 4)

	// (1) u continuity at R: Ac·R − Al·R − Bl/R = 0.
	a.Set(0, 0, R)
	a.Set(0, 1, -R)
	a.Set(0, 2, -1/R)

	// (2) σrr continuity at R:
	// pc(Ac − αcΔT) − [pl(Al − αlΔT) − ql·Bl/R²] = 0.
	a.Set(1, 0, pc)
	a.Set(1, 1, -pl)
	a.Set(1, 2, ql/(R*R))
	b[1] = pc*c.EffectiveCTE(plane)*dT - pl*l.EffectiveCTE(plane)*dT

	// (3) u continuity at R′: Al·R′ + Bl/R′ − αsΔT·R′ − Bs/R′ = 0.
	a.Set(2, 1, Rp)
	a.Set(2, 2, 1/Rp)
	a.Set(2, 3, -1/Rp)
	b[2] = sub.EffectiveCTE(plane) * dT * Rp

	// (4) σrr continuity at R′:
	// pl(Al − αlΔT) − ql·Bl/R′² − [ps(αsΔT − αsΔT) − qs·Bs/R′²] = 0.
	// The substrate A-term equals its thermal strain so it drops out.
	a.Set(3, 1, pl)
	a.Set(3, 2, -ql/(Rp*Rp))
	a.Set(3, 3, qs/(Rp*Rp))
	b[3] = pl * l.EffectiveCTE(plane) * dT

	x, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("lame: interface system: %w", err)
	}
	sol := &Solution{
		Struct: s,
		Plane:  plane,
		Ac:     x[0], Al: x[1], Bl: x[2], Bs: x[3],
		K: -qs * x[3],
	}
	return sol, nil
}

// RegionOf classifies a radius from the TSV center.
func (sol *Solution) RegionOf(r float64) Region {
	switch {
	case r < sol.Struct.R:
		return Body
	case r < sol.Struct.RPrime:
		return Liner
	default:
		return Substrate
	}
}

// PolarAt returns the stress tensor in MPa in the TSV-centered
// cylindrical frame at radius r (valid in every region; σrθ ≡ 0 by
// axisymmetry).
func (sol *Solution) PolarAt(r float64) tensor.Polar {
	s := sol.Struct
	dT := s.DeltaT
	switch sol.RegionOf(r) {
	case Body:
		c := s.Body
		iso := c.PlaneModulus(sol.Plane) * (sol.Ac - c.EffectiveCTE(sol.Plane)*dT)
		return tensor.Polar{RR: iso, TT: iso}
	case Liner:
		l := s.Liner
		iso := l.PlaneModulus(sol.Plane) * (sol.Al - l.EffectiveCTE(sol.Plane)*dT)
		dev := l.E / (1 + l.Nu) * sol.Bl / (r * r)
		return tensor.Polar{RR: iso - dev, TT: iso + dev}
	default:
		// Eq. (6): σrr = K/r², σθθ = −K/r².
		return tensor.Polar{RR: sol.K / (r * r), TT: -sol.K / (r * r)}
	}
}

// StressAt returns the Cartesian stress tensor in MPa at point p for a
// TSV centered at c. At the TSV center itself the field is the uniform
// body stress.
func (sol *Solution) StressAt(p, c geom.Point) tensor.Stress {
	d := p.Sub(c)
	r := d.Norm()
	if r == 0 {
		pol := sol.PolarAt(0)
		return tensor.Stress{XX: pol.RR, YY: pol.TT}
	}
	return sol.PolarAt(r).ToCartesian(d.Angle())
}

// DisplacementAt returns the radial displacement u(r) in µm, including
// the substrate's free thermal expansion term.
func (sol *Solution) DisplacementAt(r float64) float64 {
	s := sol.Struct
	switch sol.RegionOf(r) {
	case Body:
		return sol.Ac * r
	case Liner:
		return sol.Al*r + sol.Bl/r
	default:
		return s.Substrate.EffectiveCTE(sol.Plane)*s.DeltaT*r + sol.Bs/r
	}
}

// InterfaceResiduals returns the maximum violation of displacement
// continuity (µm) and radial-stress continuity (MPa) at the two
// interfaces — a correctness diagnostic that should be ~0 up to
// round-off.
func (sol *Solution) InterfaceResiduals() (du, dsig float64) {
	const epsRel = 1e-9
	s := sol.Struct
	for _, r := range []float64{s.R, s.RPrime} {
		h := r * epsRel
		uin := sol.DisplacementAt(r - h)
		uout := sol.DisplacementAt(r + h)
		if d := math.Abs(uin - uout); d > du {
			du = d
		}
		sin := sol.PolarAt(r - h).RR
		sout := sol.PolarAt(r + h).RR
		if d := math.Abs(sin - sout); d > dsig {
			dsig = d
		}
	}
	return du, dsig
}

// PaperK evaluates the closed-form constant K of Appendix A.4 (MPa·µm²)
// verbatim.
// It agrees with the 4×4 interface solve of Solve to machine precision
// for both liner materials (see TestPaperKCrossCheck), which validates
// both derivations; Solve remains the authoritative path because it
// extends to the in-body and in-liner fields.
func PaperK(s material.Structure) float64 {
	Ec, El, Es := s.Body.E, s.Liner.E, s.Substrate.E
	vc, vl, vs := s.Body.Nu, s.Liner.Nu, s.Substrate.Nu
	ac, al, as := s.Body.CTE, s.Liner.CTE, s.Substrate.CTE
	T := s.DeltaT
	Rp := s.RPrime
	k := s.K()
	k2 := k * k

	cc := (1 - vc) / Ec
	clP := (1 + vl) / El
	clM := (1 - vl) / El
	csP := (1 + vs) / Es

	num := (cc+clP)*(al-as) + (cc+clP)*(ac-al)*k2 - (cc-clM)*(ac-as)*k2
	den := (cc+clP)*(csP+clM) - (cc-clM)*(csP-clP)*k2
	return -T * Rp * Rp * num / den
}
