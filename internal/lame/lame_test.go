package lame

import (
	"math"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func solveBCB(t *testing.T) *Solution {
	t.Helper()
	sol, err := Solve(material.Baseline(material.BCB))
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSolveRejectsInvalidStructure(t *testing.T) {
	s := material.Baseline(material.BCB)
	s.R = -1
	if _, err := Solve(s); err == nil {
		t.Fatal("invalid structure should error")
	}
}

func TestInterfaceContinuity(t *testing.T) {
	for _, liner := range []material.Material{material.BCB, material.SiO2} {
		sol, err := Solve(material.Baseline(liner))
		if err != nil {
			t.Fatal(err)
		}
		du, dsig := sol.InterfaceResiduals()
		// Displacements are O(1e-3 µm), stresses O(100 MPa); the finite
		// probe offset is 1e-9 relative so residuals must be tiny.
		if du > 1e-9 {
			t.Errorf("%s: displacement jump %g", liner.Name, du)
		}
		if dsig > 1e-3 {
			t.Errorf("%s: σrr jump %g", liner.Name, dsig)
		}
	}
}

func TestSubstrateFieldShape(t *testing.T) {
	sol := solveBCB(t)
	// σrr = K/r², σθθ = −K/r², σrθ = 0 and the r⁻² decay.
	for _, r := range []float64{3.0, 4.5, 9.0, 30.0} {
		p := sol.PolarAt(r)
		if !eq(p.RR, sol.K/(r*r), 1e-9*math.Abs(sol.K)) {
			t.Errorf("σrr(%g) = %v, want %v", r, p.RR, sol.K/(r*r))
		}
		if !eq(p.TT, -p.RR, 1e-9*math.Abs(sol.K)) {
			t.Errorf("σθθ(%g) = %v, want −σrr", r, p.TT)
		}
		if p.RT != 0 {
			t.Errorf("σrθ(%g) = %v, want 0", r, p.RT)
		}
	}
	// Doubling r quarters the stress.
	if !eq(sol.PolarAt(6).RR*4, sol.PolarAt(3).RR, 1e-6) {
		t.Error("substrate stress does not decay as r⁻²")
	}
}

func TestBodyStressUniformEquibiaxial(t *testing.T) {
	sol := solveBCB(t)
	p1 := sol.PolarAt(0.5)
	p2 := sol.PolarAt(2.0)
	if !eq(p1.RR, p2.RR, 1e-9) || !eq(p1.TT, p2.TT, 1e-9) {
		t.Error("body stress should be uniform")
	}
	if !eq(p1.RR, p1.TT, 1e-9) {
		t.Error("body stress should be equibiaxial")
	}
}

func TestSignsForCoolDown(t *testing.T) {
	// On cool-down (ΔT < 0) copper shrinks more than silicon
	// (αc > αs), so the body pulls inward: the body is under biaxial
	// tension... in fact the radial stress in the substrate right at
	// the interface equals the interface pressure. With copper
	// contracting more, the interface is in radial tension: σrr > 0
	// means K > 0.
	sol := solveBCB(t)
	if sol.K <= 0 {
		t.Errorf("K = %v, want > 0 for cool-down with αc > αs", sol.K)
	}
	// Body should be in tension (pulled outward by stiffer substrate
	// resisting its contraction).
	if sol.PolarAt(1).RR <= 0 {
		t.Errorf("body stress %v, want tension", sol.PolarAt(1).RR)
	}
	// Flipping ΔT flips every stress (linearity).
	s2 := material.Baseline(material.BCB)
	s2.DeltaT = +250
	sol2, err := Solve(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(sol2.K, -sol.K, 1e-6*math.Abs(sol.K)) {
		t.Errorf("K not odd in ΔT: %v vs %v", sol2.K, sol.K)
	}
}

func TestThermalLinearity(t *testing.T) {
	s := material.Baseline(material.BCB)
	sol1, _ := Solve(s)
	s.DeltaT = -125
	solHalf, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(solHalf.K*2, sol1.K, 1e-9*math.Abs(sol1.K)) {
		t.Errorf("K not linear in ΔT: %v vs %v/2", solHalf.K, sol1.K)
	}
}

func TestNoLinerDegenerate(t *testing.T) {
	// Liner with substrate properties = classic 2-material Lamé
	// problem; closed form K = ΔT(αs−αc) / [(1+νs)/Es + (1−νc)/Ec] · R²...
	// Derive: body u=Ar, substrate u=αsΔT r+B/r; continuity at R.
	s := material.Baseline(material.Silicon) // liner := silicon
	s.Liner.CTE = material.Silicon.CTE
	sol, err := Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	c, sub := s.Body, s.Substrate
	dT := s.DeltaT
	R := s.R
	// Two-region closed form (derived independently): continuity of
	// σrr and u at R gives
	//   pc(αs−αc)ΔT = −(pc+qs)·B/R²  →  B = −pc(αs−αc)ΔT·R²/(pc+qs)
	// and K = −qs·B.
	pc := c.E / (1 - c.Nu)
	qs := sub.E / (1 + sub.Nu)
	B := -pc * (sub.CTE - c.CTE) * dT * R * R / (pc + qs)
	wantK := -qs * B
	// The structure still has R'=3.0 with "liner" = silicon, so the
	// substrate field starts at R'; but with identical material the
	// constant must match the 2-region form based on R (body radius).
	if !eq(sol.K, wantK, 1e-6*math.Abs(wantK)) {
		t.Errorf("K = %v, want 2-region closed form %v", sol.K, wantK)
	}
}

func TestStressAtCartesian(t *testing.T) {
	sol := solveBCB(t)
	c := geom.Pt(10, 20)
	// On the +x ray from the center: σxx = σrr, σyy = σθθ.
	st := sol.StressAt(geom.Pt(15, 20), c)
	p := sol.PolarAt(5)
	if !eq(st.XX, p.RR, 1e-9) || !eq(st.YY, p.TT, 1e-9) || !eq(st.XY, 0, 1e-9) {
		t.Errorf("x-ray stress = %v", st)
	}
	// On the +y ray: swapped.
	st = sol.StressAt(geom.Pt(10, 25), c)
	if !eq(st.XX, p.TT, 1e-9) || !eq(st.YY, p.RR, 1e-9) {
		t.Errorf("y-ray stress = %v", st)
	}
	// At the center: body equibiaxial.
	st = sol.StressAt(c, c)
	body := sol.PolarAt(0)
	if !eq(st.XX, body.RR, 1e-12) || !eq(st.YY, body.TT, 1e-12) {
		t.Errorf("center stress = %v", st)
	}
	// Rotational invariance of von Mises around the TSV.
	vmA := sol.StressAt(geom.Pt(14, 20), c).VonMises()
	vmB := sol.StressAt(geom.Pt(10+4/math.Sqrt2, 20+4/math.Sqrt2), c).VonMises()
	if !eq(vmA, vmB, 1e-9) {
		t.Errorf("von Mises not axisymmetric: %v vs %v", vmA, vmB)
	}
}

func TestRegionOf(t *testing.T) {
	sol := solveBCB(t)
	cases := map[float64]Region{0: Body, 2.4: Body, 2.5: Liner, 2.9: Liner, 3.0: Substrate, 100: Substrate}
	for r, want := range cases {
		if got := sol.RegionOf(r); got != want {
			t.Errorf("RegionOf(%g) = %v, want %v", r, got, want)
		}
	}
	for _, reg := range []Region{Body, Liner, Substrate, Region(9)} {
		if reg.String() == "" {
			t.Error("empty Region string")
		}
	}
}

func TestPaperKCrossCheck(t *testing.T) {
	// The appendix transcription is OCR-noisy; require only order-of-
	// magnitude and sign agreement, and log the comparison for study.
	for _, liner := range []material.Material{material.BCB, material.SiO2} {
		s := material.Baseline(liner)
		sol, err := Solve(s)
		if err != nil {
			t.Fatal(err)
		}
		pk := PaperK(s)
		t.Logf("%s: solver K = %.4f MPa·µm², paper K = %.4f MPa·µm² (ratio %.4f)",
			liner.Name, sol.K, pk, pk/sol.K)
		if pk == 0 || math.Signbit(pk) != math.Signbit(sol.K) {
			t.Errorf("%s: paper K sign/zero mismatch: %v vs %v", liner.Name, pk, sol.K)
		}
		if r := pk / sol.K; r < 0.2 || r > 5 {
			t.Errorf("%s: paper K ratio %v outside sanity band", liner.Name, r)
		}
	}
}

func TestDisplacementSigns(t *testing.T) {
	sol := solveBCB(t)
	// Cool-down: everything shrinks; displacement should be inward
	// (negative) everywhere.
	for _, r := range []float64{1, 2.7, 5, 20} {
		if u := sol.DisplacementAt(r); u >= 0 {
			t.Errorf("u(%g) = %v, want < 0 on cool-down", r, u)
		}
	}
}

func TestStressMagnitudeBallpark(t *testing.T) {
	// Near-interface substrate stress for the BCB baseline should be
	// tens-to-hundreds of MPa (the paper's plots show |σxx| up to
	// ~150 MPa near TSVs). Guard against unit mistakes (GPa vs MPa).
	sol := solveBCB(t)
	s := sol.PolarAt(3.05)
	if math.Abs(s.RR) < 10 || math.Abs(s.RR) > 1000 {
		t.Errorf("near-interface σrr = %v MPa, outside plausible band", s.RR)
	}
}

var _ = tensor.Stress{} // keep import if asserts change
