package lame

import (
	"math"
	"testing"

	"tsvstress/internal/material"
)

// Regression lock on the solved constants for the paper's baseline
// structures. These values were cross-validated against the paper's
// closed-form K (Appendix A.4) to machine precision; any drift signals
// an accidental change to the solver or the material constants.
func TestBaselineConstantsRegression(t *testing.T) {
	cases := []struct {
		liner material.Material
		wantK float64 // MPa·µm², plane stress
	}{
		{material.BCB, 725.9306},
		{material.SiO2, 1649.8000},
	}
	for _, c := range cases {
		sol, err := Solve(material.Baseline(c.liner))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.K-c.wantK) > 5e-4*c.wantK {
			t.Errorf("%s: K = %.4f, want %.4f (regression)", c.liner.Name, sol.K, c.wantK)
		}
	}
}

// The BCB liner shields: its K must be well below both the SiO2 and the
// no-liner configurations (monotone in liner compliance).
func TestLinerShieldingOrdering(t *testing.T) {
	kFor := func(liner material.Material) float64 {
		t.Helper()
		sol, err := Solve(material.Baseline(liner))
		if err != nil {
			t.Fatal(err)
		}
		return sol.K
	}
	kBCB := kFor(material.BCB)
	kSiO2 := kFor(material.SiO2)
	noLiner := material.Baseline(material.Silicon)
	noLiner.Liner.CTE = material.Silicon.CTE
	solNo, err := Solve(noLiner)
	if err != nil {
		t.Fatal(err)
	}
	if !(kBCB < kSiO2 && kSiO2 < solNo.K) {
		t.Errorf("shielding order broken: BCB %v, SiO2 %v, none %v", kBCB, kSiO2, solNo.K)
	}
}

// Geometry sensitivity: a thicker *compliant* liner shields more
// (smaller K) — provided the liner has no thermal mismatch of its own.
// (The real BCB liner is non-monotonic in thickness: its 40 ppm/K CTE
// eventually adds more stress than its compliance removes, which this
// test also pins down.)
func TestLinerThicknessShielding(t *testing.T) {
	prev := math.Inf(1)
	for _, thick := range []float64{0.25, 0.5, 1.0} {
		st := material.Baseline(material.BCB)
		st.Liner.CTE = st.Substrate.CTE // compliance only, no own mismatch
		st.RPrime = st.R + thick
		sol, err := Solve(st)
		if err != nil {
			t.Fatal(err)
		}
		if sol.K >= prev {
			t.Errorf("thickness %g: K = %v did not decrease (prev %v)", thick, sol.K, prev)
		}
		prev = sol.K
	}
	// Real BCB: thick liners add stress again (CTE-driven).
	thin := material.Baseline(material.BCB)
	thin.RPrime = thin.R + 0.5
	thick := material.Baseline(material.BCB)
	thick.RPrime = thick.R + 1.0
	solThin, err := Solve(thin)
	if err != nil {
		t.Fatal(err)
	}
	solThick, err := Solve(thick)
	if err != nil {
		t.Fatal(err)
	}
	if solThick.K <= solThin.K {
		t.Errorf("BCB CTE effect vanished: K %v (1.0µm) vs %v (0.5µm)", solThick.K, solThin.K)
	}
}

// Scaling: K scales with R′² at fixed radius ratio k and materials
// (dimensional analysis of Eq. 6 / Appendix A.4).
func TestKScalesWithRadiusSquared(t *testing.T) {
	base := material.Baseline(material.BCB)
	big := base
	big.R *= 2
	big.RPrime *= 2
	solBase, err := Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	solBig, err := Solve(big)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(solBig.K-4*solBase.K) > 1e-6*solBase.K {
		t.Errorf("K(2R') = %v, want 4·K(R') = %v", solBig.K, 4*solBase.K)
	}
}
