package lame

import (
	"math"
	"testing"

	"tsvstress/internal/material"
)

func TestPlaneStrainBasics(t *testing.T) {
	st := material.Baseline(material.BCB)
	ps, err := SolvePlane(st, material.PlaneStress)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := SolvePlane(st, material.PlaneStrain)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Plane != material.PlaneStress || pe.Plane != material.PlaneStrain {
		t.Fatal("plane mode not recorded")
	}
	// Same field structure, different magnitude: the plane-strain K is
	// larger (the out-of-plane constraint amplifies the in-plane
	// thermal mismatch by ~(1+ν)) but within a factor ~2.
	if pe.K <= ps.K {
		t.Errorf("plane-strain K %v should exceed plane-stress K %v", pe.K, ps.K)
	}
	if pe.K > 2*ps.K {
		t.Errorf("plane-strain K %v implausibly large vs %v", pe.K, ps.K)
	}
	// Interface continuity holds in both modes.
	du, dsig := pe.InterfaceResiduals()
	if du > 1e-9 || dsig > 1e-3 {
		t.Errorf("plane-strain interface residuals %g / %g", du, dsig)
	}
}

// Plane-strain degenerate two-region closed form (liner = substrate):
// continuity of σrr and u at R with plane-strain moduli gives
// B = −pc'(αs'−αc')ΔT·R²/(pc'+qs), K = −qs·B, with primes denoting
// plane-strain effective quantities.
func TestPlaneStrainTwoRegionClosedForm(t *testing.T) {
	st := material.Baseline(material.Silicon)
	st.Liner.CTE = material.Silicon.CTE
	sol, err := SolvePlane(st, material.PlaneStrain)
	if err != nil {
		t.Fatal(err)
	}
	c, sub := st.Body, st.Substrate
	pc := c.PlaneModulus(material.PlaneStrain)
	qs := sub.E / (1 + sub.Nu)
	ac := c.EffectiveCTE(material.PlaneStrain)
	as := sub.EffectiveCTE(material.PlaneStrain)
	B := -pc * (as - ac) * st.DeltaT * st.R * st.R / (pc + qs)
	wantK := -qs * B
	if math.Abs(sol.K-wantK) > 1e-6*math.Abs(wantK) {
		t.Errorf("plane-strain K = %v, want closed form %v", sol.K, wantK)
	}
}

func TestPlaneModeString(t *testing.T) {
	if material.PlaneStress.String() != "plane-stress" || material.PlaneStrain.String() != "plane-strain" {
		t.Error("plane mode names wrong")
	}
}
