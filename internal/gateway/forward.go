package gateway

// Request forwarding and session mobility. The gateway is a
// deliberately thin proxy: it streams the replica's response through
// verbatim — status, headers (Retry-After, X-Tsvserve-Degraded, ...)
// and body — so a client behind the gateway sees exactly the replica
// contract DESIGN.md documents. The one place it intervenes is a 404
// from the ring owner: that triggers the migration protocol, because
// "the owner doesn't know the session" almost always means the ring
// changed (a replica died or rejoined) and the session's WAL lives
// somewhere else.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"

	"tsvstress/internal/wal"
)

// maxForwardBody caps a buffered request body; bodies are buffered so
// a request can be replayed after a migration.
const maxForwardBody = wal.MaxBundleBytes

// Handler returns the gateway's routing handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealth)
	mux.HandleFunc("GET /readyz", g.handleReady)
	mux.HandleFunc("POST /v1/placements", g.guard("create", g.handleCreate))
	mux.HandleFunc("GET /v1/placements", g.guard("list", g.handleList))
	mux.HandleFunc("/v1/placements/{id}", g.guard("session", g.handleSession))
	mux.HandleFunc("/v1/placements/{id}/{rest...}", g.guard("session", g.handleSession))
	return mux
}

// tenantOf extracts the request's tenant (quota and metrics key).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tsvgate-Tenant"); t != "" {
		return t
	}
	return "default"
}

// guard wraps every routed handler with drain refusal, in-flight
// accounting and the per-tenant quota.
func (g *Gateway) guard(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.draining.Load() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, errDraining.Error())
			return
		}
		g.inflight.Add(1)
		defer g.inflight.Done()
		tenant := tenantOf(r)
		if !g.quotas.allow(tenant) {
			metricQuotaRejections.Add(1)
			metricTenantRejections.Add(tenant, 1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q is over its request quota", tenant))
			return
		}
		metricTenantRouted.Add(tenant, 1)
		h(w, r)
	}
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "replicas": len(g.reps), "alive": g.numAlive(),
	})
}

func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	alive := g.numAlive()
	switch {
	case g.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case alive == 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "no-replicas"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "alive": alive})
	}
}

// handleCreate mints a bounded-load session id and forwards the create
// to its owner. The replica honors the minted id via the
// X-Tsvgate-Session header, so the returned session id routes back to
// the same replica on every subsequent request.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := bufferBody(w, r)
	if !ok {
		return
	}
	id, st := g.mintID(tenantOf(r))
	if st == nil {
		noReplicas(w)
		return
	}
	r.Header.Set("X-Tsvgate-Session", id)
	resp, err := g.forward(r, st, body)
	if err != nil {
		g.forwardError(w, st, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		st.sessions.Add(1)
		metricMinted.Add(1)
	}
	copyResponse(w, resp)
}

// handleList merges the placement lists of every live replica.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	merged := struct {
		Placements []any `json:"placements"`
	}{Placements: []any{}}
	alive := g.aliveFn()
	for name, st := range g.reps {
		if !alive(name) {
			continue
		}
		resp, err := g.forward(r, st, nil)
		if err != nil {
			continue // a flapping replica must not fail the whole list
		}
		var part struct {
			Placements []any `json:"placements"`
		}
		err = decodeJSON(resp.Body, &part)
		resp.Body.Close()
		if err == nil {
			merged.Placements = append(merged.Placements, part.Placements...)
		}
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleSession routes a session-scoped request to the ring owner,
// migrating the session onto it first when it lives elsewhere.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, ok := bufferBody(w, r)
	if !ok {
		return
	}
	st := g.owner(id)
	if st == nil {
		noReplicas(w)
		return
	}
	resp, err := g.forward(r, st, body)
	if err != nil {
		g.forwardError(w, st, err)
		return
	}
	if resp.StatusCode != http.StatusNotFound || strings.HasSuffix(r.URL.Path, "/import") {
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	resp.Body.Close()
	// The owner does not know the session: find its WAL elsewhere in
	// the fleet and ship it here, then replay the original request.
	if err := g.migrate(r.Context(), id, st); err != nil {
		if errors.Is(err, errSessionNotFound) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown placement %q", id))
			return
		}
		metricMigrationFailures.Add(1)
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("placement %q: migration to its owner failed: %v", id, err))
		return
	}
	resp, err = g.forward(r, st, body)
	if err != nil {
		g.forwardError(w, st, err)
		return
	}
	defer resp.Body.Close()
	copyResponse(w, resp)
}

// forward replays the incoming request against one replica, preserving
// method, path, query, headers and deadline. The caller owns the
// response body.
func (g *Gateway) forward(r *http.Request, st *replicaState, body []byte) (*http.Response, error) {
	if !st.breaker.Allow() {
		return nil, fmt.Errorf("replica %s: circuit breaker open", st.rep.Name)
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, st.rep.URL+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		st.breaker.OnFailure()
		st.errors.Add(1)
		metricForwardErrors.Add(1)
		return nil, err
	}
	st.breaker.OnSuccess()
	st.routed.Add(1)
	metricRouted.Add(1)
	return resp, nil
}

func (g *Gateway) forwardError(w http.ResponseWriter, st *replicaState, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusBadGateway,
		fmt.Sprintf("replica %s unreachable: %v", st.rep.Name, err))
}

var errSessionNotFound = errors.New("session not found anywhere in the fleet")

// migrate ships session id onto dst from wherever its WAL lives:
// a fenced export from another live replica, or the WAL directory a
// dead replica left behind. Migrations of one id are serialized;
// latecomers wait for the winner and succeed vacuously.
func (g *Gateway) migrate(ctx context.Context, id string, dst *replicaState) error {
	g.mu.Lock()
	if ch, busy := g.migrating[id]; busy {
		g.mu.Unlock()
		select {
		case <-ch:
			return nil // the winner migrated (or it truly is gone; the retry will 404)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ch := make(chan struct{})
	g.migrating[id] = ch
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.migrating, id)
		close(ch)
		g.mu.Unlock()
	}()

	// Live donors first: a fenced export is strictly safer than a disk
	// read because the donor stops computing the moment it exports.
	alive := g.aliveFn()
	for name, src := range g.reps {
		if src == dst || !alive(name) {
			continue
		}
		raw, found, err := g.fetchExport(ctx, src, id)
		if err != nil || !found {
			continue
		}
		if err := g.importTo(ctx, dst, id, raw); err != nil {
			return fmt.Errorf("import on %s: %w", dst.rep.Name, err)
		}
		g.deleteFrom(ctx, src, id)
		src.sessions.Add(-1)
		dst.sessions.Add(1)
		metricMigrations.Add(1)
		return nil
	}

	// Dead donors: lift the session straight out of the WAL directory
	// the crashed replica left behind, then delete the source copy so a
	// rejoining replica cannot resurrect a stale twin.
	for name, src := range g.reps {
		if src == dst || alive(name) || src.rep.WALDir == "" {
			continue
		}
		dir := filepath.Join(src.rep.WALDir, id)
		b, err := wal.Export(dir)
		if err != nil {
			continue
		}
		if err := g.importTo(ctx, dst, id, wal.EncodeBundle(b)); err != nil {
			return fmt.Errorf("import rescued WAL on %s: %w", dst.rep.Name, err)
		}
		if err := wal.Remove(dir); err == nil {
			metricEvictionsDead.Add(1)
		}
		dst.sessions.Add(1)
		metricMigrations.Add(1)
		return nil
	}
	return errSessionNotFound
}

// fetchExport pulls a fenced export from a live donor. found=false
// means the donor does not have the session (keep looking); an error
// means the donor is misbehaving (also keep looking — migration probes
// must tolerate a dying donor).
func (g *Gateway) fetchExport(ctx context.Context, src *replicaState, id string) (raw []byte, found bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		src.rep.URL+"/v1/placements/"+id+"/export?fence=1", nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		st := src
		st.breaker.OnFailure()
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, nil
	}
	raw, err = io.ReadAll(io.LimitReader(resp.Body, wal.MaxBundleBytes+1))
	if err != nil || len(raw) > wal.MaxBundleBytes {
		return nil, false, fmt.Errorf("export of %q from %s: oversized or truncated", id, src.rep.Name)
	}
	return raw, true, nil
}

// importTo lands an encoded bundle on the destination replica. A 409
// (already there) counts as success: a concurrent path beat us to it.
func (g *Gateway) importTo(ctx context.Context, dst *replicaState, id string, raw []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		dst.rep.URL+"/v1/placements/"+id+"/import", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := g.opt.Client.Do(req)
	if err != nil {
		dst.breaker.OnFailure()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
	return fmt.Errorf("status %d: %s", resp.StatusCode, msg)
}

// deleteFrom releases the donor's fenced copy. Best effort: the fence
// already stops the donor from serving stale compute, so a failed
// delete costs memory, not correctness.
func (g *Gateway) deleteFrom(ctx context.Context, src *replicaState, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		src.rep.URL+"/v1/placements/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := g.opt.Client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// bufferBody reads the request body into memory so it can be replayed
// after a migration. Returns ok=false after writing the error.
func bufferBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading request body: "+err.Error())
		return nil, false
	}
	return body, true
}

func noReplicas(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "no live replicas")
}

// copyResponse streams a replica response through verbatim.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
