package gateway

// Gateway metrics, published once under the process-global "tsvgate"
// expvar map (mirroring the "tsvserve" map one layer down). Counters
// are package-level so tests constructing many Gateways aggregate; the
// per-replica snapshot reads the most recently constructed Gateway.

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
)

var (
	metricRouted            = new(expvar.Int) // requests forwarded to a replica
	metricForwardErrors     = new(expvar.Int) // transport-level forward failures
	metricMigrations        = new(expvar.Int) // sessions shipped to their ring owner
	metricMigrationFailures = new(expvar.Int) // migrations that found the WAL but failed to land it
	metricEvictionsDead     = new(expvar.Int) // dead-owner WAL copies evicted after rescue
	metricQuotaRejections   = new(expvar.Int) // requests refused by tenant quota
	metricMinted            = new(expvar.Int) // sessions created through bounded-load minting
	// Per-tenant accounting, keyed by the X-Tsvgate-Tenant header.
	metricTenantRouted     = new(expvar.Map).Init()
	metricTenantRejections = new(expvar.Map).Init()
)

func init() {
	m := expvar.NewMap("tsvgate")
	m.Set("routed_total", metricRouted)
	m.Set("forward_errors_total", metricForwardErrors)
	m.Set("migrations_total", metricMigrations)
	m.Set("migration_failures_total", metricMigrationFailures)
	m.Set("evictions_total", metricEvictionsDead)
	m.Set("quota_rejections_total", metricQuotaRejections)
	m.Set("minted_sessions_total", metricMinted)
	m.Set("tenant_routed_total", metricTenantRouted)
	m.Set("tenant_quota_rejections_total", metricTenantRejections)
	m.Set("replicas", expvar.Func(replicaSnapshot))
}

// activeGateway is the gateway the expvar page reports on (the newest
// wins; expvar names are process-global anyway).
var activeGateway atomic.Pointer[Gateway]

func registerGateway(g *Gateway) { activeGateway.Store(g) }

// replicaSnapshot is the per-replica health/traffic table: liveness,
// breaker state, forwarded counts and the gateway's bounded-load
// session estimate.
func replicaSnapshot() any {
	g := activeGateway.Load()
	if g == nil {
		return map[string]any{}
	}
	alive := g.aliveFn()
	out := make(map[string]any, len(g.reps))
	names := make([]string, 0, len(g.reps))
	for name := range g.reps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := g.reps[name]
		out[name] = map[string]any{
			"alive":    alive(name),
			"breaker":  st.breaker.State().String(),
			"opens":    st.breaker.Opens(),
			"routed":   st.routed.Load(),
			"errors":   st.errors.Load(),
			"sessions": st.sessions.Load(),
		}
	}
	return out
}

// ---- small HTTP helpers (the gateway speaks the same JSON error
// shape as the replicas) ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
