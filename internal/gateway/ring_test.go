package gateway

import (
	"fmt"
	"testing"
)

func ringKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("s-%016x", hash64(99, fmt.Sprintf("key-%d", i)))
	}
	return keys
}

func ownersOf(r *Ring, keys []string, alive func(string) bool) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.Owner(k, alive)
	}
	return out
}

// TestRingBalance: with 128 vnodes the per-replica share stays within
// ±35% of the mean — the bound the bounded-load minting layer assumes
// as its starting point.
func TestRingBalance(t *testing.T) {
	const K, N = 20000, 5
	names := make([]string, N)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d", i)
	}
	r, err := NewRing(7, names, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range ringKeys(K) {
		counts[r.Owner(k, nil)]++
	}
	mean := float64(K) / N
	for name, c := range counts {
		if f := float64(c) / mean; f < 0.65 || f > 1.35 {
			t.Errorf("replica %s owns %d keys (%.2fx mean)", name, c, f)
		}
	}
}

// TestRingSingleReplicaDelta is the consistency property: adding or
// removing one replica moves at most ceil(K/N)+slack keys, and every
// moved key moves to (or away from) exactly the changed replica.
func TestRingSingleReplicaDelta(t *testing.T) {
	const K = 10000
	keys := ringKeys(K)
	names := []string{"a", "b", "c", "d"}
	r4, err := NewRing(7, names, 128)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := NewRing(7, append(append([]string{}, names...), "e"), 128)
	if err != nil {
		t.Fatal(err)
	}
	before := ownersOf(r4, keys, nil)
	after := ownersOf(r5, keys, nil)

	// Adding "e": every moved key must land on "e", and the count is
	// bounded by its fair share plus vnode-variance slack.
	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != "e" {
				t.Fatalf("key %s moved %s -> %s, not to the new replica", k, before[k], after[k])
			}
		}
	}
	bound := (K+len(names)-1)/len(names) + K/10 // ceil(K/N) + 10% slack
	if moved == 0 || moved > bound {
		t.Fatalf("adding one replica moved %d of %d keys (bound %d)", moved, K, bound)
	}

	// Removing a replica via the liveness view: only its keys move, and
	// they spread over the survivors rather than pile on one neighbor.
	aliveNotB := func(n string) bool { return n != "b" }
	redistributed := ownersOf(r4, keys, aliveNotB)
	landed := map[string]int{}
	for _, k := range keys {
		if before[k] != "b" {
			if redistributed[k] != before[k] {
				t.Fatalf("key %s not owned by b moved %s -> %s on b's death", k, before[k], redistributed[k])
			}
			continue
		}
		if redistributed[k] == "b" {
			t.Fatalf("key %s still routed to dead replica b", k)
		}
		landed[redistributed[k]]++
	}
	if len(landed) < 2 {
		t.Fatalf("b's keys all landed on one survivor: %v", landed)
	}
}

// TestRingDeterminism: two rings with the same seed and replica set
// agree on every key — the property that lets gateways scale out
// statelessly.
func TestRingDeterminism(t *testing.T) {
	names := []string{"x", "y", "z"}
	r1, _ := NewRing(42, names, 64)
	r2, _ := NewRing(42, names, 64)
	for _, k := range ringKeys(500) {
		if r1.Owner(k, nil) != r2.Owner(k, nil) {
			t.Fatalf("rings with equal config disagree on %s", k)
		}
	}
	r3, _ := NewRing(43, names, 64)
	diff := 0
	for _, k := range ringKeys(500) {
		if r1.Owner(k, nil) != r3.Owner(k, nil) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed changed nothing — seed is not wired into placement")
	}
}

// TestRingRejectsBadConfig: duplicate or empty names and empty fleets
// must fail construction, not corrupt routing.
func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(1, nil, 8); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewRing(1, []string{"a", "a"}, 8); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewRing(1, []string{"a", ""}, 8); err == nil {
		t.Error("empty name accepted")
	}
}

// TestRingAllDead: no live replica → "" (the gateway maps this to 503).
func TestRingAllDead(t *testing.T) {
	r, _ := NewRing(1, []string{"a", "b"}, 8)
	if got := r.Owner("k", func(string) bool { return false }); got != "" {
		t.Fatalf("owner over a dead fleet = %q, want empty", got)
	}
}
