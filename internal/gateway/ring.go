package gateway

// Consistent-hash ring: the routing function of the horizontal tier.
// Session ownership is owner = Ring.Owner(id, alive) — a pure function
// of the id, the configured replica set and the current liveness view,
// so a fleet of stateless gateways sharing a config and a seed agree
// on every session's home without coordination.
//
// Each replica projects VNodes points onto a 64-bit circle; a key is
// owned by the first point clockwise of its hash whose replica is
// alive. Virtual nodes bound the imbalance (≈ 1/√VNodes relative
// spread) and, with the clockwise-walk fallback, a dead replica's keys
// redistribute across the survivors instead of landing on one
// neighbor. Adding or removing one replica moves only the keys whose
// first live point belonged to it — ≤ ceil(K/N) plus vnode-variance
// slack of the K keys; the property test pins this.

import (
	"fmt"
	"sort"
)

// hash64 is a seeded FNV/splitmix hybrid: cheap, allocation-free and
// deterministic across processes (the fleet must agree), with a
// splitmix64 finalizer so close keys land far apart on the circle.
func hash64(seed uint64, parts ...string) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 0x100000001b3
		}
		h ^= 0xff // part separator, so ("ab","c") != ("a","bc")
		h *= 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

type ringPoint struct {
	hash    uint64
	replica int // index into Ring.names
}

// Ring is an immutable consistent-hash ring over a replica set.
// Liveness is supplied per lookup, not baked into the ring, so a
// flapping replica never forces a rebuild.
type Ring struct {
	names  []string
	points []ringPoint // sorted by hash
	seed   uint64
}

// NewRing builds a ring with vnodes points per replica (≤ 0 defaults
// to 128). Replica names must be unique and non-empty — they are the
// ring identity, stable across address changes.
func NewRing(seed uint64, names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("gateway: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = 128
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{names: append([]string(nil), names...), seed: seed}
	r.points = make([]ringPoint, 0, len(names)*vnodes)
	for ri, name := range r.names {
		if name == "" || seen[name] {
			return nil, fmt.Errorf("gateway: ring replica %d: duplicate or empty name %q", ri, name)
		}
		seen[name] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(seed, name, fmt.Sprintf("v%d", v)),
				replica: ri,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.replica < b.replica // total order: hash collisions stay deterministic
	})
	return r, nil
}

// Owner returns the replica owning key under the given liveness view
// (nil alive means all replicas are live), or "" when no replica is
// alive.
func (r *Ring) Owner(key string, alive func(name string) bool) string {
	h := hash64(r.seed, key)
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n]
		name := r.names[p.replica]
		if alive == nil || alive(name) {
			return name
		}
	}
	return ""
}

// Replicas returns the configured replica names (ring order is
// configuration order, not circle order).
func (r *Ring) Replicas() []string { return append([]string(nil), r.names...) }
