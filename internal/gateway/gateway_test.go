package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/serve"
	"tsvstress/internal/tensor"
)

// replicaFixture is one live tsvserve instance under test.
type replicaFixture struct {
	name   string
	walDir string
	srv    *serve.Server
	ts     *httptest.Server
}

// startReplica boots a WAL-backed tsvserve replica.
func startReplica(t *testing.T, name string) *replicaFixture {
	t.Helper()
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{WALDir: dir, SnapshotEvery: 2})
	if _, err := srv.Recover(context.Background()); err != nil {
		t.Fatalf("replica %s recover: %v", name, err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &replicaFixture{name: name, walDir: dir, srv: srv, ts: ts}
}

// sigkill simulates a hard kill: the listener and every live
// connection die, but the serve.Server is never Closed — no final
// snapshot, no graceful drain. Because the WAL syncs before every
// acknowledgment, the on-disk state is exactly what a SIGKILL would
// leave behind.
func (f *replicaFixture) sigkill() {
	f.ts.Listener.Close()
	f.ts.CloseClientConnections()
}

// newGateway builds a gateway over the fixtures with a fast probe
// cadence and registers cleanup.
func newGateway(t *testing.T, opt Options, fixtures ...*replicaFixture) *Gateway {
	t.Helper()
	for _, f := range fixtures {
		opt.Replicas = append(opt.Replicas, Replica{Name: f.name, URL: f.ts.URL, WALDir: f.walDir})
	}
	if opt.HealthEvery == 0 {
		opt.HealthEvery = 25 * time.Millisecond
	}
	if opt.Seed == 0 {
		opt.Seed = 7
	}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = g.Close(ctx)
	})
	return g
}

// waitAlive polls until the gateway's liveness view of a replica
// matches want.
func waitAlive(t *testing.T, g *Gateway, name string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.aliveFn()(name) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica %s never became alive=%v", name, want)
}

// ---- placement + parity helpers (4x4 lattice, cheap under -race) ----

func testCreateBody() map[string]any {
	var tsvs []map[string]float64
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			tsvs = append(tsvs, map[string]float64{"x": float64(24 * i), "y": float64(24 * j)})
		}
	}
	return map[string]any{"tsvs": tsvs, "spacing": 3, "margin": 5}
}

func mirrorPlacement() *geom.Placement {
	pl := &geom.Placement{}
	n := 0
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			pl.TSVs = append(pl.TSVs, geom.TSV{Center: geom.Pt(float64(24*i), float64(24*j)), Name: "V" + strconv.Itoa(n)})
			n++
		}
	}
	return pl
}

func doJSON(t *testing.T, c *http.Client, method, url string, body, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp
}

// applyEdits drives a fixed edit history through the gateway and
// mirrors it locally.
func applyEdits(t *testing.T, c *http.Client, base string, mirror *geom.Placement) {
	t.Helper()
	minPitch := 2 * material.Baseline(material.BCB).RPrime
	batches := [][]map[string]any{
		{{"op": "move", "index": 0, "x": 3.0, "y": 2.0}},
		{{"op": "add", "x": 90.0, "y": 90.0}, {"op": "remove", "index": 5}},
	}
	typed := [][]geom.Edit{
		{{Op: geom.EditMove, Index: 0, TSV: geom.TSV{Center: geom.Pt(3, 2)}}},
		{{Op: geom.EditAdd, TSV: geom.TSV{Center: geom.Pt(90, 90)}}, {Op: geom.EditRemove, Index: 5}},
	}
	for bi, batch := range batches {
		for _, ed := range typed[bi] {
			if err := ed.Apply(mirror, minPitch); err != nil {
				t.Fatalf("mirror batch %d: %v", bi, err)
			}
		}
		if resp := doJSON(t, c, "POST", base+"/edits", map[string]any{"edits": batch}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("edits batch %d: status %d", bi, resp.StatusCode)
		}
	}
}

// checkParity compares the gateway-served map against a from-scratch
// full-mode evaluation of the mirror, pinning ≤ 1e-9 MPa agreement.
func checkParity(t *testing.T, c *http.Client, base string, mirror *geom.Placement) {
	t.Helper()
	var mp struct {
		Values []float64 `json:"values"`
	}
	if resp := doJSON(t, c, "GET", base+"/map?component=xx&values=1", nil, &mp); resp.StatusCode != http.StatusOK {
		t.Fatalf("map: status %d", resp.StatusCode)
	}
	st := material.Baseline(material.BCB)
	grid, err := field.NewGrid(mirrorPlacement().Bounds(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.New(st, mirror.Clone(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]tensor.Stress, grid.Len())
	if err := an.MapInto(context.Background(), want, grid.Points(), core.ModeFull); err != nil {
		t.Fatal(err)
	}
	if len(mp.Values) != len(want) {
		t.Fatalf("served %d values, want %d", len(mp.Values), len(want))
	}
	for i, v := range mp.Values {
		if d := math.Abs(v - want[i].XX); d > 1e-9 {
			t.Fatalf("migrated map differs from never-moved reference by %g MPa at point %d", d, i)
		}
	}
}

// createVia creates a placement through the gateway and returns its id.
func createVia(t *testing.T, c *http.Client, gwURL string) string {
	t.Helper()
	var created struct {
		ID string `json:"id"`
	}
	if resp := doJSON(t, c, "POST", gwURL+"/v1/placements", testCreateBody(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via gateway: status %d", resp.StatusCode)
	}
	if len(created.ID) < 3 || created.ID[:2] != "s-" {
		t.Fatalf("gateway-minted id %q does not carry the s- prefix", created.ID)
	}
	return created.ID
}

// TestGatewayRoutesAndMints: create/edit/map through the gateway over
// two replicas; ids are gateway-minted, routing is stable, the merged
// list sees every session.
func TestGatewayRoutesAndMints(t *testing.T) {
	a, b := startReplica(t, "ra"), startReplica(t, "rb")
	g := newGateway(t, Options{}, a, b)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	c := gw.Client()

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		ids = append(ids, createVia(t, c, gw.URL))
	}
	// Both replicas got some share (6 mints over 2 replicas; the
	// bounded-load cap makes an all-on-one split impossible).
	if a.srv.NumSessions() == 0 || b.srv.NumSessions() == 0 {
		t.Fatalf("lopsided mint: ra=%d rb=%d", a.srv.NumSessions(), b.srv.NumSessions())
	}
	if a.srv.NumSessions()+b.srv.NumSessions() != 6 {
		t.Fatalf("fleet holds %d+%d sessions, want 6", a.srv.NumSessions(), b.srv.NumSessions())
	}

	mirror := mirrorPlacement()
	applyEdits(t, c, gw.URL+"/v1/placements/"+ids[0], mirror)
	checkParity(t, c, gw.URL+"/v1/placements/"+ids[0], mirror)

	var list struct {
		Placements []map[string]any `json:"placements"`
	}
	doJSON(t, c, "GET", gw.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 6 {
		t.Fatalf("merged list has %d placements, want 6", len(list.Placements))
	}

	// Deleting through the gateway reaches the owning replica.
	if resp := doJSON(t, c, "DELETE", gw.URL+"/v1/placements/"+ids[1], nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete via gateway: status %d", resp.StatusCode)
	}
	if a.srv.NumSessions()+b.srv.NumSessions() != 5 {
		t.Fatalf("fleet holds %d sessions after delete, want 5", a.srv.NumSessions()+b.srv.NumSessions())
	}
}

// TestGatewayLiveMigrationParity: a session living on the wrong
// replica (as after a ring change) is fenced, exported, imported on
// its ring owner and deleted at the donor — transparently, inside one
// client request, with ≤1e-9 MPa parity.
func TestGatewayLiveMigrationParity(t *testing.T) {
	a, b := startReplica(t, "ra"), startReplica(t, "rb")
	g := newGateway(t, Options{}, a, b)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	c := gw.Client()

	// Choose an id the ring assigns to rb, then plant the session on ra
	// — the state a ring change leaves behind.
	id := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("s-planted-%d", i)
		if g.ring.Owner(cand, nil) == "rb" {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no candidate id maps to rb")
	}
	body, _ := json.Marshal(testCreateBody())
	req, _ := http.NewRequest("POST", a.ts.URL+"/v1/placements", bytes.NewReader(body))
	req.Header.Set("X-Tsvgate-Session", id)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plant on ra: status %d", resp.StatusCode)
	}
	mirror := mirrorPlacement()
	applyEdits(t, c, a.ts.URL+"/v1/placements/"+id, mirror)

	before := migrationsCount()
	// One gateway request both migrates and serves.
	checkParity(t, c, gw.URL+"/v1/placements/"+id, mirror)
	if migrationsCount() != before+1 {
		t.Fatalf("migrations counter did not advance")
	}
	// The donor released its copy; the owner serves it now.
	if n := a.srv.NumSessions(); n != 0 {
		t.Fatalf("donor still holds %d sessions", n)
	}
	if n := b.srv.NumSessions(); n != 1 {
		t.Fatalf("owner holds %d sessions, want 1", n)
	}
	// Follow-up requests hit the new owner directly — no second migration.
	checkParity(t, c, gw.URL+"/v1/placements/"+id, mirror)
	if migrationsCount() != before+1 {
		t.Fatal("a second migration ran for an already-migrated session")
	}
}

func migrationsCount() int64 { return metricMigrations.Value() }

// TestGatewayDeadOwnerRescueParity is the SIGKILL chaos variant: the
// replica owning a session is hard-killed; the next request routes to
// the survivor, which rescues the session from the dead replica's WAL
// directory and serves it with full parity. The dead copy is removed
// so a rejoining replica cannot resurrect a stale twin.
func TestGatewayDeadOwnerRescueParity(t *testing.T) {
	a, b := startReplica(t, "ra"), startReplica(t, "rb")
	g := newGateway(t, Options{}, a, b)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	c := gw.Client()
	waitAlive(t, g, "ra", true)
	waitAlive(t, g, "rb", true)

	id := createVia(t, c, gw.URL)
	mirror := mirrorPlacement()
	applyEdits(t, c, gw.URL+"/v1/placements/"+id, mirror)

	ownerName := g.ring.Owner(id, nil)
	owner, survivor := a, b
	if ownerName == "rb" {
		owner, survivor = b, a
	}
	if owner.srv.NumSessions() != 1 {
		t.Fatalf("session not on its ring owner %s", ownerName)
	}

	owner.sigkill()
	waitAlive(t, g, owner.name, false)

	// The session resurfaces on the survivor within one request.
	checkParity(t, c, gw.URL+"/v1/placements/"+id, mirror)
	if n := survivor.srv.NumSessions(); n != 1 {
		t.Fatalf("survivor holds %d sessions, want 1", n)
	}
	// The dead owner's WAL copy is gone: a restart on the same
	// directory recovers nothing, so no stale twin can come back.
	restarted := serve.NewServer(serve.Options{WALDir: owner.walDir})
	if n, err := restarted.Recover(context.Background()); err != nil || n != 0 {
		t.Fatalf("dead owner's WAL still recovers %d sessions (err=%v)", n, err)
	}
}

// TestGatewayQuota: a tenant over its bucket gets 429 + Retry-After;
// other tenants are unaffected.
func TestGatewayQuota(t *testing.T) {
	a := startReplica(t, "ra")
	g := newGateway(t, Options{QuotaRate: 0.001, QuotaBurst: 2}, a)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	c := gw.Client()

	status := func(tenant string) int {
		req, _ := http.NewRequest("GET", gw.URL+"/v1/placements", nil)
		req.Header.Set("X-Tsvgate-Tenant", tenant)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if s := status("hog"); s != http.StatusOK {
		t.Fatalf("first request: %d", s)
	}
	if s := status("hog"); s != http.StatusOK {
		t.Fatalf("second request: %d", s)
	}
	if s := status("hog"); s != http.StatusTooManyRequests {
		t.Fatalf("third request: %d, want 429", s)
	}
	if s := status("polite"); s != http.StatusOK {
		t.Fatalf("other tenant collateral damage: %d", s)
	}
}

// TestGatewayDrain: Close refuses new work, waits out in-flight
// requests, and leaves no goroutines behind. The gateway handler runs
// in-process (no httptest listener of its own) so the goroutine count
// isolates what the gateway spawned.
func TestGatewayDrain(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"placements":[]}`))
	}))
	defer slow.Close()
	client := &http.Client{}

	baseline := runtime.NumGoroutine()
	g, err := New(Options{
		Replicas:    []Replica{{Name: "slow", URL: slow.URL}},
		HealthEvery: 20 * time.Millisecond,
		Seed:        7,
		Client:      client,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := g.Handler()

	// Park one request inside the gateway.
	got := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/placements", nil))
		got <- rec.Code
	}()
	<-entered

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- g.Close(ctx)
	}()
	// While draining: new requests are refused with 503. (Close flips
	// the flag before blocking, so once it is visible the refusal is
	// deterministic.)
	deadline := time.Now().Add(2 * time.Second)
	for !g.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Close never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/placements", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503", rec.Code)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned before the in-flight request finished: %v", err)
	default:
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if s := <-got; s != http.StatusOK {
		t.Fatalf("in-flight request finished with %d", s)
	}
	// No goroutine leak: the health loop and drain helper are gone
	// (transport keep-alive conns are flushed before counting).
	leakDeadline := time.Now().Add(3 * time.Second)
	for {
		client.CloseIdleConnections()
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: baseline %d, after drain %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestGatewayNoReplicas: with the whole fleet down the gateway answers
// 503 with a retry hint rather than hanging.
func TestGatewayNoReplicas(t *testing.T) {
	dead := startReplica(t, "ra")
	g := newGateway(t, Options{}, dead)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	waitAlive(t, g, "ra", true)
	dead.sigkill()
	waitAlive(t, g, "ra", false)

	resp := doJSON(t, gw.Client(), "GET", gw.URL+"/v1/placements/s-x/map", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fleet-down request: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fleet-down 503 without Retry-After")
	}
	if resp := doJSON(t, gw.Client(), "GET", gw.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz over a dead fleet: %d, want 503", resp.StatusCode)
	}
}
