package gateway

//tsvlint:apiboundary

// Package gateway is the stateless routing tier in front of a pool of
// tsvserve replicas (DESIGN.md §19). It owns no session state: a
// session's home is the pure ring function of its id over the live
// replica set, so any number of gateways can run side by side. What
// the gateway adds on top of routing:
//
//   - liveness: /readyz probes feed a per-replica circuit breaker;
//     a tripped replica leaves the routing set until it recovers
//   - session mobility: when the ring says a session belongs on A but
//     A answers 404, the gateway finds the session — a fenced export
//     from another live replica, or the WAL directory a dead replica
//     left behind — imports it on A and replays the request
//   - admission: per-tenant token buckets in front of the fleet
//   - bounded-load id minting: new sessions get gateway-minted ids
//     re-salted until the owner is below the fleet's load cap
//
// Lock order: //tsvlint:lockorder Gateway.mu < quotaTable.mu

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tsvstress/internal/floats"
	"tsvstress/internal/resilience"
)

// Replica is one tsvserve instance behind the gateway.
type Replica struct {
	// Name is the replica's stable ring identity. It must survive
	// restarts and address changes, or every restart reshuffles the
	// ring.
	Name string
	// URL is the replica's base URL (e.g. "http://10.0.0.7:8080").
	URL string
	// WALDir, when the gateway can reach the replica's WAL directory
	// (shared or local disk), enables dead-owner rescue: sessions of a
	// crashed replica are lifted straight from its journals instead of
	// waiting for it to come back.
	WALDir string
}

// Options configures a Gateway.
type Options struct {
	// Replicas is the fleet (at least one).
	Replicas []Replica
	// Seed makes ring placement and id minting deterministic across
	// gateway instances; every gateway in front of one fleet must use
	// the same seed.
	Seed uint64
	// VNodes is the ring's virtual-node count per replica (default 128).
	VNodes int
	// HealthEvery is the /readyz probe cadence (default 1s).
	HealthEvery time.Duration
	// HealthTimeout bounds one probe (default 500ms).
	HealthTimeout time.Duration
	// LoadFactor is the bounded-load cap: a replica is "full" for id
	// minting once it holds more than LoadFactor × (sessions/alive)
	// of the gateway-created sessions (default 1.25).
	LoadFactor float64
	// MintAttempts bounds the re-salting loop (default 16).
	MintAttempts int
	// QuotaRate is the per-tenant token refill rate in requests/sec;
	// 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the per-tenant bucket size (default 4×QuotaRate,
	// minimum 1, when quotas are on).
	QuotaBurst float64
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
	// Breaker tunes the per-replica health breakers.
	Breaker resilience.BreakerConfig
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = 128
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = time.Second
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 500 * time.Millisecond
	}
	if o.LoadFactor < 1 {
		o.LoadFactor = 1.25
	}
	if o.MintAttempts <= 0 {
		o.MintAttempts = 16
	}
	if o.QuotaRate > 0 && o.QuotaBurst <= 0 {
		o.QuotaBurst = 4 * o.QuotaRate
		if o.QuotaBurst < 1 {
			o.QuotaBurst = 1
		}
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// replicaState is the gateway's view of one replica.
type replicaState struct {
	rep     Replica
	breaker *resilience.Breaker
	// alive is the latest health verdict (probe or forward outcome).
	alive atomic.Bool
	// sessions is this gateway's bounded-load accounting: sessions it
	// minted onto the replica minus sessions it migrated away. An
	// estimate, not a census — the cap only needs to spread load.
	sessions atomic.Int64
	routed   atomic.Int64
	errors   atomic.Int64
}

// Gateway routes placement traffic onto a replica fleet.
type Gateway struct {
	opt  Options
	ring *Ring
	reps map[string]*replicaState

	quotas *quotaTable

	// mintSalt makes successive minted ids distinct within a process.
	mintSalt atomic.Uint64

	// migrating serializes concurrent migrations of one session id.
	// Guarded by mu.
	mu        sync.Mutex
	migrating map[string]chan struct{}

	draining atomic.Bool
	inflight sync.WaitGroup
	stop     chan struct{}
	done     chan struct{}
}

// New builds a gateway and starts its health-probe loop. Close stops
// it.
func New(opt Options) (*Gateway, error) {
	if !floats.AllFinite(opt.LoadFactor, opt.QuotaRate, opt.QuotaBurst) {
		return nil, fmt.Errorf("gateway: non-finite option (load factor %v, quota rate %v, burst %v)",
			opt.LoadFactor, opt.QuotaRate, opt.QuotaBurst)
	}
	opt = opt.withDefaults()
	names := make([]string, 0, len(opt.Replicas))
	for _, r := range opt.Replicas {
		if r.URL == "" {
			return nil, fmt.Errorf("gateway: replica %q has no URL", r.Name)
		}
		names = append(names, r.Name)
	}
	ring, err := NewRing(opt.Seed, names, opt.VNodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		opt:       opt,
		ring:      ring,
		reps:      make(map[string]*replicaState, len(opt.Replicas)),
		quotas:    newQuotaTable(opt.QuotaRate, opt.QuotaBurst),
		migrating: make(map[string]chan struct{}),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, r := range opt.Replicas {
		st := &replicaState{rep: r, breaker: resilience.NewBreaker(opt.Breaker)}
		st.alive.Store(true) // optimistic until the first probe says otherwise
		g.reps[r.Name] = st
	}
	registerGateway(g)
	go g.healthLoop()
	return g, nil
}

// healthLoop probes every replica's /readyz on a fixed cadence. Probe
// outcomes feed the same breaker forwarding does, so a replica that
// fails requests trips even between probes, and a recovered one is
// readmitted by the next successful probe.
func (g *Gateway) healthLoop() {
	defer close(g.done)
	t := time.NewTicker(g.opt.HealthEvery)
	defer t.Stop()
	g.probeAll() // first verdicts immediately, not a tick later
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, st := range g.reps {
		wg.Add(1)
		go func(st *replicaState) {
			defer wg.Done()
			g.probe(st)
		}(st)
	}
	wg.Wait()
}

func (g *Gateway) probe(st *replicaState) {
	ctx, cancel := context.WithTimeout(context.Background(), g.opt.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.rep.URL+"/readyz", nil)
	if err != nil {
		st.alive.Store(false)
		return
	}
	resp, err := g.opt.Client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		resp.Body.Close()
	}
	if ok {
		st.breaker.OnSuccess()
		st.alive.Store(true)
	} else {
		st.breaker.OnFailure()
		// A not-ready replica (recovering, overloaded) leaves the
		// routing set immediately; the breaker only governs how
		// eagerly we keep asking.
		st.alive.Store(false)
	}
}

// aliveFn is the liveness view Ring.Owner consumes: a replica routes
// only when its latest probe succeeded and its breaker admits traffic.
func (g *Gateway) aliveFn() func(string) bool {
	return func(name string) bool {
		st, ok := g.reps[name]
		return ok && st.alive.Load() && !st.breaker.Tripped()
	}
}

func (g *Gateway) numAlive() int {
	alive := g.aliveFn()
	n := 0
	for name := range g.reps {
		if alive(name) {
			n++
		}
	}
	return n
}

// owner resolves a session id to its home replica, or nil when the
// fleet is entirely down.
func (g *Gateway) owner(id string) *replicaState {
	name := g.ring.Owner(id, g.aliveFn())
	if name == "" {
		return nil
	}
	return g.reps[name]
}

// mintID picks an id for a new session with bounded load: candidates
// are re-salted until one lands on a replica holding no more than
// LoadFactor × mean of this gateway's sessions. If every attempt lands
// hot (tiny fleets, skewed liveness) the least-loaded candidate wins.
func (g *Gateway) mintID(tenant string) (string, *replicaState) {
	alive := g.numAlive()
	if alive == 0 {
		return "", nil
	}
	var total int64
	for _, st := range g.reps {
		total += st.sessions.Load()
	}
	cap64 := float64(total+1)/float64(alive)*g.opt.LoadFactor + 1
	var bestID string
	var best *replicaState
	for i := 0; i < g.opt.MintAttempts; i++ {
		salt := g.mintSalt.Add(1)
		id := fmt.Sprintf("s-%016x", hash64(g.opt.Seed, tenant, fmt.Sprintf("%d", salt)))
		st := g.owner(id)
		if st == nil {
			return "", nil
		}
		if best == nil || st.sessions.Load() < best.sessions.Load() {
			bestID, best = id, st
		}
		if float64(st.sessions.Load()) <= cap64 {
			return id, st
		}
	}
	return bestID, best
}

// Close drains the gateway: new requests are refused with 503, every
// in-flight request (including any migration it is driving) finishes,
// and the health loop stops. Sessions need no handling — they live on
// the replicas, durable in their WALs. Returns ctx.Err() if the drain
// outlives the context.
func (g *Gateway) Close(ctx context.Context) error {
	g.draining.Store(true)
	close(g.stop)
	<-g.done
	drained := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gateway: drain: %w", ctx.Err())
	}
}

var errDraining = errors.New("gateway is draining; retry against another gateway")
