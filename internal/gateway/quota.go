package gateway

// Per-tenant admission: a classic token bucket per tenant, refilled at
// QuotaRate tokens/sec up to QuotaBurst. The gateway applies it in
// front of the whole fleet so one tenant's load-test cannot starve the
// replicas for everyone else. Zero rate disables quotas entirely.

import (
	"sync"
	"time"
)

type quotaTable struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test clock
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64) *quotaTable {
	return &quotaTable{rate: rate, burst: burst, buckets: make(map[string]*bucket), now: time.Now}
}

// allow consumes one token from the tenant's bucket, reporting whether
// the request may proceed.
func (q *quotaTable) allow(tenant string) bool {
	if q.rate <= 0 {
		return true
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.rate
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
