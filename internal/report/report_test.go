package report

import (
	"bytes"
	"strings"
	"testing"

	"tsvstress/internal/metrics"
)

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "| a | b |" || lines[1] != "| --- | --- |" || lines[3] != "| 3 | 4 |" {
		t.Errorf("markdown = %q", buf.String())
	}
}

func TestPaperRowCells(t *testing.T) {
	r := metrics.Row{
		Avg:        metrics.Stats{AvgError: 3.24},
		Thresh10:   metrics.Stats{AvgError: 6.42, AvgErrorRate: 13.5},
		Thresh50:   metrics.Stats{AvgError: 20.5, AvgErrorRate: 20.7},
		Critical50: metrics.Stats{AvgError: 35.3, AvgErrorRate: 36.8},
	}
	cells := PaperRowCells(r)
	if len(cells) != 7 {
		t.Fatalf("cells = %v", cells)
	}
	if cells[0] != "3.24" || cells[2] != "13.5" || cells[6] != "36.8" {
		t.Errorf("cells = %v", cells)
	}
	if got := PaperHeader("d (um)", "Method"); len(got) != 9 {
		t.Errorf("header = %v", got)
	}
}

func TestHeatMap(t *testing.T) {
	vals := []float64{0, 5, 10, 0, -10, 5}
	var buf bytes.Buffer
	if err := HeatMap(&buf, vals, 3, 2, 10, "test"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	// Top row is j=1: {0, -10, 5} → " @=" with the default ramp.
	if lines[1] != " @=" {
		t.Errorf("top row = %q", lines[1])
	}
	if lines[2] != " =@" {
		t.Errorf("bottom row = %q", lines[2])
	}
	// Auto-scale path and size validation.
	if err := HeatMap(&buf, vals, 3, 2, 0, "auto"); err != nil {
		t.Fatal(err)
	}
	if err := HeatMap(&buf, vals, 4, 2, 10, "bad"); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestLinePlot(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	series := map[string][]float64{
		"fem": {0, 1, 2, 3},
		"ls":  {3, 2, 1, 0},
	}
	var buf bytes.Buffer
	if err := LinePlot(&buf, x, series, 8, "scan"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "o=fem") || !strings.Contains(out, "x=ls") {
		t.Errorf("legend missing: %q", out)
	}
	if !strings.Contains(out, "x: 0..3") {
		t.Errorf("x range missing: %q", out)
	}
	// Mismatched series length.
	if err := LinePlot(&buf, x, map[string][]float64{"bad": {1}}, 8, "t"); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := LinePlot(&buf, []float64{0, 1}, map[string][]float64{"c": {5, 5}}, 4, "const"); err != nil {
		t.Fatal(err)
	}
}
