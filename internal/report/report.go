// Package report renders the experiment outputs: markdown tables
// matching the layout of the paper's Tables 1–6, ASCII heat maps
// standing in for the error-map figures, and ASCII line plots for the
// line-scan figure.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tsvstress/internal/floats"
	"tsvstress/internal/metrics"
)

// Table is a simple markdown table builder.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteMarkdown renders the table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// PaperRowCells formats a metrics.Row in the column layout of the
// paper's Tables 1 and 3–5: Avg Error, then (error, rate) at the 10 and
// 50 MPa thresholds, then (error, rate) in the critical region at
// 50 MPa.
func PaperRowCells(r metrics.Row) []string {
	return []string{
		fmt.Sprintf("%.2f", r.Avg.AvgError),
		fmt.Sprintf("%.2f", r.Thresh10.AvgError),
		fmt.Sprintf("%.1f", r.Thresh10.AvgErrorRate),
		fmt.Sprintf("%.2f", r.Thresh50.AvgError),
		fmt.Sprintf("%.1f", r.Thresh50.AvgErrorRate),
		fmt.Sprintf("%.2f", r.Critical50.AvgError),
		fmt.Sprintf("%.1f", r.Critical50.AvgErrorRate),
	}
}

// PaperHeader returns the column header matching PaperRowCells,
// prefixed by the given leading columns.
func PaperHeader(leading ...string) []string {
	return append(leading,
		"Avg Err (MPa)",
		"Err@10MPa (MPa)", "Rate@10MPa (%)",
		"Err@50MPa (MPa)", "Rate@50MPa (%)",
		"Crit Err@50MPa (MPa)", "Crit Rate@50MPa (%)")
}

// HeatMap renders a W×H scalar field as an ASCII intensity map; values
// map onto the ramp " .:-=+*#%@" between 0 and vmax (values are taken
// in absolute value). Rows are emitted top (max y) first.
func HeatMap(w io.Writer, vals []float64, nx, ny int, vmax float64, title string) error {
	if len(vals) != nx*ny {
		return fmt.Errorf("report: %d values for %dx%d map", len(vals), nx, ny)
	}
	if vmax <= 0 {
		for _, v := range vals {
			if a := math.Abs(v); a > vmax {
				vmax = a
			}
		}
		if vmax == 0 {
			vmax = 1
		}
	}
	const ramp = " .:-=+*#%@"
	if _, err := fmt.Fprintf(w, "%s (scale: %s = 0..%.3g)\n", title, ramp, vmax); err != nil {
		return err
	}
	line := make([]byte, nx)
	for j := ny - 1; j >= 0; j-- {
		for i := 0; i < nx; i++ {
			a := math.Abs(vals[j*nx+i]) / vmax
			idx := int(a * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			line[i] = ramp[idx]
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// LinePlot renders series sampled on a shared x-axis as a fixed-height
// ASCII chart, one glyph per series.
func LinePlot(w io.Writer, x []float64, series map[string][]float64, height int, title string) error {
	if height < 4 {
		height = 16
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	names := make([]string, 0, len(series))
	for name, ys := range series {
		if len(ys) != len(x) {
			return fmt.Errorf("report: series %q has %d values for %d x", name, len(ys), len(x))
		}
		names = append(names, name)
		for _, v := range ys {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	sortStrings(names)
	if floats.AlmostEqual(ymax, ymin, 0) {
		ymax = ymin + 1
	}
	glyphs := "ox+*#&%"
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(x)))
	}
	for si, name := range names {
		g := glyphs[si%len(glyphs)]
		for i, v := range series[name] {
			r := int((v - ymin) / (ymax - ymin) * float64(height-1))
			grid[height-1-r][i] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s  [y: %.3g..%.3g]", title, ymin, ymax); err != nil {
		return err
	}
	for si, name := range names {
		if _, err := fmt.Fprintf(w, "  %c=%s", glyphs[si%len(glyphs)], name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s\n", row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "+%s\n x: %.3g..%.3g\n", strings.Repeat("-", len(x)), x[0], x[len(x)-1]); err != nil {
		return err
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
