package fem

import (
	"fmt"
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// SubmodelOptions configures the two-scale golden solver.
type SubmodelOptions struct {
	// GlobalH is the coarse mesh size of the global Richardson pair
	// (default 0.25 ⇒ global meshes at 0.25 and 0.125).
	GlobalH float64
	// CartesianPatches selects the legacy Cartesian submodel patches
	// instead of the interface-aligned polar patches. Kept for
	// comparison studies; the polar patches are strictly more accurate
	// near the liner because their mesh rings coincide with the
	// material interfaces.
	CartesianPatches bool
	// LocalH is the coarse mesh size of a Cartesian patch's Richardson
	// pair (default 0.125 ⇒ patch meshes at 0.125 and 0.0625). Unused
	// for polar patches.
	LocalH float64
	// PatchHalf is the half-size of the square Cartesian patch
	// (default 6 µm). For polar patches it caps the annulus radius.
	PatchHalf float64
	// CoreHalf is the radius around a TSV center within which a patch
	// overrides the global field (default 4.5 µm, automatically shrunk
	// with the patch when neighbours are close).
	CoreHalf float64
	// Polar mesh controls (defaults in PolarPatchOptions).
	PolarDR     float64
	PolarNTheta int
	// Base carries remaining solver options.
	Base Options
}

func (o SubmodelOptions) withDefaults() SubmodelOptions {
	if o.GlobalH <= 0 {
		o.GlobalH = 0.25
	}
	if o.LocalH <= 0 {
		o.LocalH = 0.125
	}
	if o.PatchHalf <= 0 {
		o.PatchHalf = 6
	}
	if o.CoreHalf <= 0 {
		o.CoreHalf = 4.5
	}
	return o
}

// Submodel is the production golden reference: a Richardson-extrapolated
// global solve plus fine patches around every TSV, driven by boundary
// displacements interpolated from the global fine mesh (classic FEM
// submodeling / zooming). Near-interface stress — where the paper's
// critical region lives — comes from the patches; the far field from
// the global solve. By default the patches are polar-meshed so the
// body/liner and liner/substrate interfaces are resolved exactly.
type Submodel struct {
	Global  *RichardsonResult
	Centers []geom.Point
	Patches []Field
	cores   []float64
	opt     SubmodelOptions
}

// SolveSubmodel builds the two-scale golden for a placement.
func SolveSubmodel(pl *geom.Placement, st material.Structure, domain geom.Rect, opt SubmodelOptions) (*Submodel, error) {
	opt = opt.withDefaults()
	if opt.CoreHalf >= opt.PatchHalf {
		return nil, fmt.Errorf("fem: CoreHalf %g must be below PatchHalf %g", opt.CoreHalf, opt.PatchHalf)
	}
	gOpt := opt.Base
	gOpt.H = opt.GlobalH
	global, err := SolveRichardson(pl, st, domain, gOpt)
	if err != nil {
		return nil, fmt.Errorf("fem: submodel global: %w", err)
	}
	sm := &Submodel{Global: global, opt: opt}
	bc := func(p geom.Point) (float64, float64) {
		// Drive patches with the global *fine* solution: displacement
		// is the primary FEM variable and is already accurate away
		// from the interfaces, which is where the patch boundaries sit.
		return global.Fine.DisplacementAt(p)
	}
	for i, t := range pl.TSVs {
		var patch Field
		core := opt.CoreHalf
		if opt.CartesianPatches {
			patchDom := geom.RectAround(t.Center, 2*opt.PatchHalf, 2*opt.PatchHalf)
			pOpt := opt.Base
			pOpt.H = opt.LocalH
			pOpt.BoundaryDisp = bc
			p, err := SolveRichardson(pl, st, patchDom, pOpt)
			if err != nil {
				return nil, fmt.Errorf("fem: submodel patch at %v: %w", t.Center, err)
			}
			patch = p
		} else {
			// Shrink the annulus so a neighbouring TSV's liner stays
			// outside it (its staircased interface would otherwise sit
			// inside the fine patch).
			rOut := opt.PatchHalf
			dNear := math.Inf(1)
			for k, o := range pl.TSVs {
				if k == i {
					continue
				}
				if d := o.Center.Dist(t.Center); d < dNear {
					dNear = d
				}
			}
			if cap := dNear - st.RPrime - 0.2; cap < rOut {
				rOut = cap
			}
			if rOut < st.RPrime+0.8 {
				rOut = st.RPrime + 0.8 // accept neighbour blending
			}
			if c := rOut - 0.6; c < core {
				core = c
			}
			p, err := SolvePolarPatch(pl, st, t.Center, PolarPatchOptions{
				ROut:         rOut,
				DR:           opt.PolarDR,
				NTheta:       opt.PolarNTheta,
				Plane:        opt.Base.Plane,
				BoundaryDisp: bc,
				SubSamples:   opt.Base.SubSamples,
			})
			if err != nil {
				return nil, fmt.Errorf("fem: polar patch at %v: %w", t.Center, err)
			}
			patch = p
		}
		sm.Centers = append(sm.Centers, t.Center)
		sm.Patches = append(sm.Patches, patch)
		sm.cores = append(sm.cores, core)
	}
	return sm, nil
}

// StressAt samples the two-scale field in MPa: the nearest patch wins
// inside its core radius, the global field elsewhere.
func (sm *Submodel) StressAt(p geom.Point) tensor.Stress {
	best := -1
	bestD := math.Inf(1)
	for i, c := range sm.Centers {
		if d := c.Dist(p); d <= sm.cores[i] && d < bestD {
			best, bestD = i, d
		}
	}
	if best >= 0 {
		return sm.Patches[best].StressAt(p)
	}
	return sm.Global.StressAt(p)
}

var _ Field = (*Submodel)(nil)
