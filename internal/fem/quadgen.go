package fem

import (
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// General (non-rectangular) isoparametric Q4 element machinery, used by
// the polar patches where elements are annular sector quads. The
// uniform-rectangle fast path in element.go remains for the Cartesian
// mesh.

// quadB builds the 3×8 strain-displacement matrix and |J| at local
// coordinates (ξ, η) for a quad with the given corner coordinates.
func quadB(c [4]geom.Point, xi, eta float64) (b [3][8]float64, detJ float64) {
	dxi, deta := shapeDeriv(xi, eta)
	var j11, j12, j21, j22 float64
	for a := 0; a < 4; a++ {
		j11 += dxi[a] * c[a].X
		j12 += dxi[a] * c[a].Y
		j21 += deta[a] * c[a].X
		j22 += deta[a] * c[a].Y
	}
	detJ = j11*j22 - j12*j21
	inv := 1 / detJ
	for a := 0; a < 4; a++ {
		dNdx := (j22*dxi[a] - j12*deta[a]) * inv
		dNdy := (-j21*dxi[a] + j11*deta[a]) * inv
		b[0][2*a] = dNdx
		b[1][2*a+1] = dNdy
		b[2][2*a] = dNdy
		b[2][2*a+1] = dNdx
	}
	return b, detJ
}

var gaussPts = [4][2]float64{
	{-1 / sqrt3, -1 / sqrt3},
	{1 / sqrt3, -1 / sqrt3},
	{1 / sqrt3, 1 / sqrt3},
	{-1 / sqrt3, 1 / sqrt3},
}

// quadStiffness computes ke = Σ_gp Bᵀ D B |J| for a general quad.
func quadStiffness(c [4]geom.Point, d *[3][3]float64, out *[8][8]float64) {
	for i := range out {
		for j := range out[i] {
			out[i][j] = 0
		}
	}
	for _, gp := range gaussPts {
		b, detJ := quadB(c, gp[0], gp[1])
		var db [3][8]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 8; j++ {
				db[i][j] = d[i][0]*b[0][j] + d[i][1]*b[1][j] + d[i][2]*b[2][j]
			}
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				out[i][j] += (b[0][i]*db[0][j] + b[1][i]*db[1][j] + b[2][i]*db[2][j]) * detJ
			}
		}
	}
}

// quadThermal computes fe = Σ_gp Bᵀ tv |J| for a general quad.
func quadThermal(c [4]geom.Point, tv *[3]float64, out *[8]float64) {
	for i := range out {
		out[i] = 0
	}
	for _, gp := range gaussPts {
		b, detJ := quadB(c, gp[0], gp[1])
		for i := 0; i < 8; i++ {
			out[i] += (b[0][i]*tv[0] + b[1][i]*tv[1] + b[2][i]*tv[2]) * detJ
		}
	}
}

// quadStressCenter evaluates σ = D(B ue) − tv at ξ = η = 0.
func quadStressCenter(c [4]geom.Point, d *[3][3]float64, tv *[3]float64, ue *[8]float64) tensor.Stress {
	b, _ := quadB(c, 0, 0)
	var eps [3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			eps[i] += b[i][j] * ue[j]
		}
	}
	return tensor.Stress{
		XX: d[0][0]*eps[0] + d[0][1]*eps[1] + d[0][2]*eps[2] - tv[0],
		YY: d[1][0]*eps[0] + d[1][1]*eps[1] + d[1][2]*eps[2] - tv[1],
		XY: d[2][0]*eps[0] + d[2][1]*eps[1] + d[2][2]*eps[2] - tv[2],
	}
}

var sqrt3 = math.Sqrt(3)
