package fem

import (
	"math"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func square(t *testing.T, half float64) geom.Rect {
	t.Helper()
	return geom.RectAround(geom.Pt(0, 0), 2*half, 2*half)
}

// A homogeneous plate (no TSVs) under uniform ΔT must be stress free:
// the solver works with eigenstrains relative to the substrate, so the
// solution is identically zero.
func TestHomogeneousPlateStressFree(t *testing.T) {
	pl := geom.NewPlacement()
	st := material.Baseline(material.BCB)
	res, err := Solve(pl, st, square(t, 10), Options{H: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.CellStress {
		if math.Abs(s.XX) > 1e-9 || math.Abs(s.YY) > 1e-9 || math.Abs(s.XY) > 1e-9 {
			t.Fatalf("nonzero stress in homogeneous plate: %v", s)
		}
	}
	for _, u := range res.U {
		if math.Abs(u) > 1e-12 {
			t.Fatal("nonzero displacement in homogeneous plate")
		}
	}
}

// Single TSV: the Richardson-extrapolated FEM (the production golden)
// must reproduce the analytical Lamé composite-cylinder solution in the
// substrate to a few percent; the raw h = 0.25 solve carries a known
// ~10% first-order liner-resolution bias (see femconv tool / DESIGN.md).
func TestSingleTSVMatchesLame(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	res, err := SolveRichardson(pl, st, square(t, 20), Options{H: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the full tensor on rays at several angles.
	maxRel := 0.0
	for _, r := range []float64{4, 5, 6, 8, 10, 14} {
		for _, th := range []float64{0, math.Pi / 4, math.Pi / 2, 2.2} {
			p := geom.Pt(r*math.Cos(th), r*math.Sin(th))
			got := res.StressAt(p)
			want := sol.StressAt(p, geom.Pt(0, 0))
			scale := math.Max(5, math.Abs(want.XX)+math.Abs(want.YY)+math.Abs(want.XY))
			rel := (math.Abs(got.XX-want.XX) + math.Abs(got.YY-want.YY) + math.Abs(got.XY-want.XY)) / scale
			if rel > maxRel {
				maxRel = rel
			}
			if rel > 0.08 {
				t.Errorf("r=%g θ=%.2f: FEM %v vs Lamé %v (rel %.3f)", r, th, got, want, rel)
			}
		}
	}
	t.Logf("max relative field error vs Lamé: %.4f (fine DOF=%d, iters=%d)",
		maxRel, res.Fine.Stats.DOF, res.Fine.Stats.Iterations)
}

// The raw (non-extrapolated) solve must still be within its documented
// bias band: the golden path relies on the bias being first order.
func TestRawSolveBiasBand(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(pl, st, square(t, 25), Options{H: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	kEff := res.StressAt(geom.Pt(8, 0)).XX * 64
	if r := kEff / sol.K; r < 1.0 || r > 1.2 {
		t.Errorf("raw h=0.25 K ratio %.3f outside expected (1.0, 1.2) band", r)
	}
}

// Pure-eigenstrain inclusion (same elastic constants everywhere,
// different CTE) has the classic Eshelby closed form, which lame.Solve
// reproduces with a "liner" identical to the substrate.
func TestEshelbyInclusion(t *testing.T) {
	st := material.Baseline(material.Silicon) // liner = silicon
	st.Body = material.Silicon
	st.Body.CTE = material.Copper.CTE // CTE mismatch only
	pl := geom.NewPlacement(geom.Pt(0, 0))
	res, err := Solve(pl, st, square(t, 25), Options{H: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{4, 6, 10} {
		got := res.StressAt(geom.Pt(r, 0))
		want := sol.StressAt(geom.Pt(r, 0), geom.Pt(0, 0))
		if !eq(got.XX, want.XX, 0.06*math.Abs(want.XX)+1) {
			t.Errorf("r=%g: σxx %v vs analytic %v", r, got.XX, want.XX)
		}
	}
}

func TestDisplacementMatchesLame(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	res, err := SolveRichardson(pl, st, square(t, 30), Options{H: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{5, 8, 12} {
		ux, uy := res.DisplacementAt(geom.Pt(r, 0))
		// FEM displacement excludes the substrate free expansion;
		// subtract it from the Lamé value: u_pert = Bs/r.
		want := sol.DisplacementAt(r) - st.Substrate.CTE*st.DeltaT*r
		if !eq(ux, want, 0.05*math.Abs(want)) {
			t.Errorf("r=%g: ux = %g, want %g", r, ux, want)
		}
		if math.Abs(uy) > math.Abs(want)*0.05 {
			t.Errorf("r=%g: uy = %g, want ≈ 0", r, uy)
		}
	}
}

// Two symmetric TSVs: the field must be symmetric under x → −x.
func TestTwoTSVSymmetry(t *testing.T) {
	st := material.Baseline(material.BCB)
	d := 8.0
	pl := geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0))
	res, err := Solve(pl, st, square(t, 25), Options{H: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []geom.Point{{X: 2, Y: 1.5}, {X: 6, Y: 3}, {X: 1, Y: -4}} {
		a := res.StressAt(p)
		b := res.StressAt(geom.Pt(-p.X, p.Y))
		// Mirror: σxx, σyy even; σxy odd.
		tol := 0.02*(math.Abs(a.XX)+math.Abs(a.YY)+math.Abs(a.XY)) + 0.5
		if !eq(a.XX, b.XX, tol) || !eq(a.YY, b.YY, tol) || !eq(a.XY, -b.XY, tol) {
			t.Errorf("mirror asymmetry at %v: %v vs %v", p, a, b)
		}
	}
}

// Mesh refinement must reduce the error against the analytic solution.
func TestConvergenceUnderRefinement(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(h float64) float64 {
		res, err := Solve(pl, st, square(t, 20), Options{H: h})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		n := 0
		for _, r := range []float64{4, 5, 7, 9} {
			p := geom.Pt(r/math.Sqrt2, r/math.Sqrt2)
			got := res.StressAt(p)
			want := sol.StressAt(p, geom.Pt(0, 0))
			sum += math.Abs(got.XX-want.XX) + math.Abs(got.YY-want.YY)
			n += 2
		}
		return sum / float64(n)
	}
	coarse := errAt(1.0)
	fine := errAt(0.33)
	t.Logf("mean |σ−σ_exact|: h=1.0 → %.3f MPa, h=0.33 → %.3f MPa", coarse, fine)
	if fine > coarse {
		t.Errorf("refinement did not reduce error: %v → %v", coarse, fine)
	}
}

func TestSolveValidation(t *testing.T) {
	st := material.Baseline(material.BCB)
	// TSV outside domain.
	pl := geom.NewPlacement(geom.Pt(100, 0))
	if _, err := Solve(pl, st, square(t, 10), Options{H: 1}); err == nil {
		t.Error("TSV outside domain should fail")
	}
	// Bad structure.
	bad := st
	bad.R = -1
	if _, err := Solve(geom.NewPlacement(), bad, square(t, 10), Options{H: 1}); err == nil {
		t.Error("invalid structure should fail")
	}
	// Domain too small.
	if _, err := Solve(geom.NewPlacement(), st, square(t, 0.5), Options{H: 1}); err == nil {
		t.Error("degenerate mesh should fail")
	}
}

func TestDomainFor(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-5, 0), geom.Pt(5, 0))
	region := geom.RectAround(geom.Pt(0, 0), 60, 30)
	d := DomainFor(pl, st, region, 20)
	if !d.Contains(geom.Pt(-30, -15)) || !d.Contains(geom.Pt(30, 15)) {
		t.Error("domain does not cover the region")
	}
	if d.W() != 100 || d.H() != 70 {
		t.Errorf("domain = %+v", d)
	}
	// Without a region the TSV bounds drive the size.
	d2 := DomainFor(pl, st, geom.Rect{}, 10)
	if !d2.Contains(geom.Pt(-8, -3)) {
		t.Errorf("domain2 = %+v", d2)
	}
}

func TestStats(t *testing.T) {
	st := material.Baseline(material.BCB)
	res, err := Solve(geom.NewPlacement(geom.Pt(0, 0)), st, square(t, 12), Options{H: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DOF <= 0 || res.Stats.Iterations <= 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.Residual > 1e-8 {
		t.Errorf("residual %v above tolerance", res.Stats.Residual)
	}
}
