package fem

import (
	"math"

	"tsvstress/internal/tensor"
)

// quad holds the precomputed isoparametric machinery of the uniform
// 4-node rectangular element (all elements share it because the mesh is
// uniform): strain-displacement matrices at the 2×2 Gauss points and at
// the element center, and the Jacobian determinant.
type quad struct {
	bGauss [4][3][8]float64 // B at the four Gauss points
	bCent  [3][8]float64    // B at ξ = η = 0
	detJ   float64          // |J| (constant for rectangles)
}

// shapeN returns the bilinear shape functions at (ξ, η).
func shapeN(xi, eta float64) [4]float64 {
	return [4]float64{
		(1 - xi) * (1 - eta) / 4,
		(1 + xi) * (1 - eta) / 4,
		(1 + xi) * (1 + eta) / 4,
		(1 - xi) * (1 + eta) / 4,
	}
}

// shapeDeriv returns dN/dξ and dN/dη at (ξ, η).
func shapeDeriv(xi, eta float64) (dxi, deta [4]float64) {
	dxi = [4]float64{-(1 - eta) / 4, (1 - eta) / 4, (1 + eta) / 4, -(1 + eta) / 4}
	deta = [4]float64{-(1 - xi) / 4, -(1 + xi) / 4, (1 + xi) / 4, (1 - xi) / 4}
	return
}

// newQuad precomputes element matrices for a dx×dy rectangle.
func newQuad(dx, dy float64) *quad {
	q := &quad{detJ: dx * dy / 4}
	g := 1 / math.Sqrt(3)
	pts := [4][2]float64{{-g, -g}, {g, -g}, {g, g}, {-g, g}}
	for k, p := range pts {
		q.bGauss[k] = bMatrix(p[0], p[1], dx, dy)
	}
	q.bCent = bMatrix(0, 0, dx, dy)
	return q
}

// bMatrix builds the 3×8 strain-displacement matrix at (ξ, η) for a
// dx×dy rectangle: ε = B·ue with ε = [εxx, εyy, γxy].
func bMatrix(xi, eta, dx, dy float64) [3][8]float64 {
	dxi, deta := shapeDeriv(xi, eta)
	var b [3][8]float64
	for a := 0; a < 4; a++ {
		dNdx := dxi[a] * 2 / dx
		dNdy := deta[a] * 2 / dy
		b[0][2*a] = dNdx
		b[1][2*a+1] = dNdy
		b[2][2*a] = dNdy
		b[2][2*a+1] = dNdx
	}
	return b
}

// stiffness computes ke = Σ_gp Bᵀ·D·B·|J| into out.
func (q *quad) stiffness(d *[3][3]float64, out *[8][8]float64) {
	for i := range out {
		for j := range out[i] {
			out[i][j] = 0
		}
	}
	for k := range q.bGauss {
		b := &q.bGauss[k]
		// db = D·B (3×8).
		var db [3][8]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 8; j++ {
				db[i][j] = d[i][0]*b[0][j] + d[i][1]*b[1][j] + d[i][2]*b[2][j]
			}
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				out[i][j] += (b[0][i]*db[0][j] + b[1][i]*db[1][j] + b[2][i]*db[2][j]) * q.detJ
			}
		}
	}
}

// thermalLoad computes fe = Σ_gp Bᵀ·tv·|J| into out, where tv is the
// element's thermal stress vector D·ε_th.
func (q *quad) thermalLoad(tv *[3]float64, out *[8]float64) {
	for i := range out {
		out[i] = 0
	}
	for k := range q.bGauss {
		b := &q.bGauss[k]
		for i := 0; i < 8; i++ {
			out[i] += (b[0][i]*tv[0] + b[1][i]*tv[1] + b[2][i]*tv[2]) * q.detJ
		}
	}
}

// stressAtCenter evaluates σ = D·(B·ue) − tv at the element center.
func (q *quad) stressAtCenter(d *[3][3]float64, tv *[3]float64, ue *[8]float64) tensor.Stress {
	var eps [3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			eps[i] += q.bCent[i][j] * ue[j]
		}
	}
	return tensor.Stress{
		XX: d[0][0]*eps[0] + d[0][1]*eps[1] + d[0][2]*eps[2] - tv[0],
		YY: d[1][0]*eps[0] + d[1][1]*eps[1] + d[1][2]*eps[2] - tv[1],
		XY: d[2][0]*eps[0] + d[2][1]*eps[1] + d[2][2]*eps[2] - tv[2],
	}
}
