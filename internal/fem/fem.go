// Package fem implements the in-house 2D linear-elastic finite-element
// solver (plane stress by default, plane strain optional) that stands
// in for the paper's commercial FEM golden reference (COMSOL). See
// DESIGN.md §2 for why a 2D golden preserves the behaviour under study.
//
// Base solver: uniform structured mesh of 4-node quadrilaterals, one
// blended material per element (Reuss area-fraction mixing at the
// circular TSV interfaces), thermal eigenstrains relative to the
// substrate (so the substrate's stress-free expansion is subtracted
// analytically and the far field decays to zero), Dirichlet boundary
// carrying the analytic single-TSV far field, preconditioned
// conjugate-gradient solution, and element-center stress recovery with
// bilinear sampling.
//
// Production golden (SolveSubmodel): Richardson extrapolation across a
// mesh pair removes the first-order interface-band error globally, and
// polar-meshed submodel patches around each TSV — whose rings coincide
// exactly with the body/liner and liner/substrate interfaces — provide
// near-interface accuracy (<1% von Mises on the paper's critical ring).
package fem

import (
	"fmt"
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
	"tsvstress/internal/mesh"
	"tsvstress/internal/sparse"
	"tsvstress/internal/tensor"
)

// Options configures the solver. The zero value selects sensible
// defaults for the paper's experiments.
type Options struct {
	// H is the target element size in µm (default 0.25).
	H float64
	// SubSamples is the per-axis material subsampling used for
	// area-fraction blending at circular interfaces (default 4).
	SubSamples int
	// Tol is the CG relative-residual target (default 1e-8).
	Tol float64
	// MaxIter caps CG iterations (default 20·√DOF + 2000).
	MaxIter int
	// Omega is the SSOR relaxation factor (default 1.5).
	Omega float64
	// Plane selects plane stress (default, the paper's device-layer
	// setting) or plane strain (deep cross-sections).
	Plane material.Plane
	// BoundaryDisp, when set, prescribes the Dirichlet boundary
	// displacement field instead of the default analytic single-TSV
	// far-field superposition. Used by the submodeling golden
	// (SolveSubmodel) to drive fine local patches from a global
	// solution.
	BoundaryDisp func(p geom.Point) (ux, uy float64)
}

func (o Options) withDefaults() Options {
	if o.H <= 0 {
		o.H = 0.25
	}
	if o.SubSamples <= 0 {
		o.SubSamples = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Omega <= 0 {
		o.Omega = 1.5
	}
	return o
}

// Stats reports solver diagnostics.
type Stats struct {
	DOF        int
	Iterations int
	Residual   float64
}

// Result is a solved stress field. It is immutable and safe for
// concurrent sampling.
type Result struct {
	Grid       *mesh.Grid
	U          []float64       // nodal displacements, 2 per node (µm)
	CellStress []tensor.Stress // element-center stresses (MPa)
	Stats      Stats
}

// DomainFor returns a solve domain covering both the placement (with
// its TSV radii) and the region of interest, expanded by margin.
func DomainFor(pl *geom.Placement, st material.Structure, region geom.Rect, margin float64) geom.Rect {
	b := pl.Bounds(st.RPrime)
	if region.Valid() && region.Area() > 0 {
		b = b.Union(region)
	}
	return b.Expand(margin)
}

// Solve runs the FEM on the placement over the given domain.
func Solve(pl *geom.Placement, st material.Structure, domain geom.Rect, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := st.Validate(); err != nil {
		return nil, fmt.Errorf("fem: %w", err)
	}
	g, err := mesh.New(domain, opt.H)
	if err != nil {
		return nil, fmt.Errorf("fem: %w", err)
	}
	if opt.BoundaryDisp == nil {
		// With the analytic far-field boundary every TSV must be well
		// inside the domain; submodel patches (custom BoundaryDisp)
		// legitimately clip neighbouring TSVs instead.
		for _, t := range pl.TSVs {
			if !domain.Contains(t.Center) {
				return nil, fmt.Errorf("fem: TSV at %v outside solve domain %+v", t.Center, domain)
			}
		}
	}

	em := buildElementMaterials(g, pl, st, opt.SubSamples, opt.Plane)

	// Boundary condition: Dirichlet with the analytical far field. Each
	// TSV's single-TSV perturbation displacement decays as Bs/r; its
	// superposition is exact up to the interaction correction, which at
	// the domain edge is smaller by another (R′/d)² factor. This keeps
	// domain-truncation error far below the modeling errors under study
	// (a plain u = 0 boundary biases near-TSV stress by
	// ~(r/R_boundary)², which is not acceptable here).
	single, err := lame.SolvePlane(st, opt.Plane)
	if err != nil {
		return nil, fmt.Errorf("fem: %w", err)
	}
	nn := g.NumNodes()
	ub := make([]float64, 2*nn) // prescribed values on fixed dofs
	free := make([]int, 2*nn)   // full dof -> reduced index or -1
	nFree := 0
	for j := 0; j <= g.NY; j++ {
		for i := 0; i <= g.NX; i++ {
			n := g.NodeID(i, j)
			if g.IsBoundaryNode(i, j) {
				free[2*n] = -1
				free[2*n+1] = -1
				p := g.NodeXY(i, j)
				if opt.BoundaryDisp != nil {
					ub[2*n], ub[2*n+1] = opt.BoundaryDisp(p)
				} else {
					for _, t := range pl.TSVs {
						rel := p.Sub(t.Center)
						r := rel.Norm()
						if r <= st.RPrime {
							continue // cannot happen for sane domains
						}
						ur := single.Bs / r // perturbation part of u(r)
						ub[2*n] += ur * rel.X / r
						ub[2*n+1] += ur * rel.Y / r
					}
				}
			} else {
				free[2*n] = nFree
				free[2*n+1] = nFree + 1
				nFree += 2
			}
		}
	}
	if nFree == 0 {
		return nil, fmt.Errorf("fem: no free DOFs (domain too small for h=%g)", opt.H)
	}

	q := newQuad(g.DX, g.DY)
	builder := sparse.NewBuilder(nFree)
	rhs := make([]float64, nFree)

	var ke [8][8]float64
	var fe [8]float64
	var dofs [8]int
	for e := 0; e < g.NumElems(); e++ {
		q.stiffness(&em.D[e], &ke)
		q.thermalLoad(&em.TV[e], &fe)
		nodes := g.ElemNodes(e)
		for a := 0; a < 4; a++ {
			dofs[2*a] = 2 * nodes[a]
			dofs[2*a+1] = 2*nodes[a] + 1
		}
		for a := 0; a < 8; a++ {
			ra := free[dofs[a]]
			if ra < 0 {
				continue
			}
			rhs[ra] += fe[a]
			for b := 0; b < 8; b++ {
				rb := free[dofs[b]]
				if rb < 0 {
					// Prescribed dof: move its contribution to the RHS.
					if g := ub[dofs[b]]; g != 0 {
						rhs[ra] -= ke[a][b] * g
					}
					continue
				}
				builder.Add(ra, rb, ke[a][b])
			}
		}
	}
	mat := builder.Build()

	prec, err := sparse.NewSSOR(mat, opt.Omega)
	if err != nil {
		return nil, fmt.Errorf("fem: %w", err)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 20*int(math.Sqrt(float64(nFree))) + 2000
	}
	x := make([]float64, nFree)
	res, err := sparse.CG(mat, rhs, x, sparse.CGOptions{Tol: opt.Tol, MaxIter: maxIter, Prec: prec})
	if err != nil {
		return nil, fmt.Errorf("fem: %w", err)
	}

	// Expand to the full displacement vector, restoring prescribed
	// boundary values.
	u := make([]float64, 2*nn)
	for d, r := range free {
		if r >= 0 {
			u[d] = x[r]
		} else {
			u[d] = ub[d]
		}
	}

	// Element-center stress recovery: σ = D·(B·ue) − tv.
	cs := make([]tensor.Stress, g.NumElems())
	var ue [8]float64
	for e := 0; e < g.NumElems(); e++ {
		nodes := g.ElemNodes(e)
		for a := 0; a < 4; a++ {
			ue[2*a] = u[2*nodes[a]]
			ue[2*a+1] = u[2*nodes[a]+1]
		}
		cs[e] = q.stressAtCenter(&em.D[e], &em.TV[e], &ue)
	}

	return &Result{
		Grid:       g,
		U:          u,
		CellStress: cs,
		Stats:      Stats{DOF: nFree, Iterations: res.Iterations, Residual: res.Residual},
	}, nil
}

// StressAt samples the stress field at p, in MPa, by bilinear
// interpolation of element-center stresses (clamped at the domain
// edge).
func (r *Result) StressAt(p geom.Point) tensor.Stress {
	cells, w := r.Grid.CellInterp(p)
	var s tensor.Stress
	for k := range cells {
		s = s.Add(r.CellStress[cells[k]].Scale(w[k]))
	}
	return s
}

// DisplacementAt samples the perturbation displacement in µm (relative
// to the substrate's free thermal expansion) at p via the element shape
// functions.
func (r *Result) DisplacementAt(p geom.Point) (ux, uy float64) {
	e, xi, eta, _ := r.Grid.Locate(p)
	nodes := r.Grid.ElemNodes(e)
	n := shapeN(xi, eta)
	for a := 0; a < 4; a++ {
		ux += n[a] * r.U[2*nodes[a]]
		uy += n[a] * r.U[2*nodes[a]+1]
	}
	return ux, uy
}
