package fem

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
)

// Plane-strain FEM vs the plane-strain composite-cylinder solution —
// validates the whole plane-mode plumbing (D matrices, effective CTEs,
// boundary drive) end to end.
func TestPlaneStrainFEMMatchesLame(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	res, err := SolveRichardson(pl, st, square(t, 20), Options{H: 0.25, Plane: material.PlaneStrain})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lame.SolvePlane(st, material.PlaneStrain)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{4, 6, 9, 12} {
		p := geom.Pt(r/math.Sqrt2, r/math.Sqrt2)
		got := res.StressAt(p)
		want := sol.StressAt(p, geom.Pt(0, 0))
		scale := math.Abs(want.XX) + math.Abs(want.YY) + math.Abs(want.XY)
		rel := (math.Abs(got.XX-want.XX) + math.Abs(got.YY-want.YY) + math.Abs(got.XY-want.XY)) / scale
		if rel > 0.08 {
			t.Errorf("r=%g: rel error %.3f (got %v want %v)", r, rel, got, want)
		}
	}
	// The plane-strain field must be stronger than plane stress.
	ps, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.StressAt(geom.Pt(6, 0)).XX) < math.Abs(ps.StressAt(geom.Pt(6, 0), geom.Pt(0, 0)).XX) {
		t.Error("plane-strain σxx should exceed plane-stress σxx")
	}
}

func TestSigmaZZHelper(t *testing.T) {
	if material.SigmaZZ(material.PlaneStress, 0.3, 10, 20) != 0 {
		t.Error("plane-stress σzz must be 0")
	}
	if got := material.SigmaZZ(material.PlaneStrain, 0.3, 10, 20); math.Abs(got-9) > 1e-12 {
		t.Errorf("plane-strain σzz = %v, want 9", got)
	}
}
