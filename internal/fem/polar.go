package fem

import (
	"fmt"
	"math"
	"sort"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/sparse"
	"tsvstress/internal/tensor"
)

// PolarPatch is a finite-element solution on an annular patch around
// one TSV, meshed in polar coordinates so the body/liner and
// liner/substrate interfaces fall exactly on mesh rings. This removes
// the staircase error that limits the Cartesian mesh near the circular
// interfaces — precisely where the paper's critical region sits. Both
// annulus boundaries carry Dirichlet displacements from a driving
// (global) solution; the inner boundary lies inside the copper body
// where that solution is smooth and accurate.
type PolarPatch struct {
	Center geom.Point
	Rs     []float64 // ring radii (ascending, len = rings+1)
	NTheta int
	CellRR []tensor.Stress // element-center stress, [ring][sector]
	Stats  Stats
	midR   []float64 // element mid radii
}

// PolarPatchOptions configures SolvePolarPatch.
type PolarPatchOptions struct {
	// RIn is the inner annulus radius (default 1.2 µm, inside the
	// body).
	RIn float64
	// ROut is the outer annulus radius (default 6 µm; shrink it when a
	// neighbouring TSV's liner would intrude, see SolveSubmodel).
	ROut float64
	// DR is the target radial element size (default 0.05 µm).
	DR float64
	// NTheta is the number of angular sectors (default 192).
	NTheta int
	// SubSamples controls material blending for elements cut by
	// *neighbouring* TSVs (the center TSV's interfaces are exact).
	SubSamples int
	// Tol / MaxIter / Omega: solver controls as in Options.
	Tol     float64
	MaxIter int
	Omega   float64
	// Plane selects plane stress (default) or plane strain.
	Plane material.Plane
	// BoundaryDisp prescribes displacement on both annulus boundaries
	// (required).
	BoundaryDisp func(p geom.Point) (ux, uy float64)
}

func (o PolarPatchOptions) withDefaults() PolarPatchOptions {
	if o.RIn <= 0 {
		o.RIn = 1.2
	}
	if o.ROut <= 0 {
		o.ROut = 6
	}
	if o.DR <= 0 {
		o.DR = 0.05
	}
	if o.NTheta <= 0 {
		o.NTheta = 192
	}
	if o.SubSamples <= 0 {
		o.SubSamples = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Omega <= 0 {
		o.Omega = 1.5
	}
	return o
}

// buildRings returns ring radii from rin to rout with target spacing
// dr, with the interface radii snapped onto rings exactly.
func buildRings(rin, rout, dr, rBody, rLiner float64) []float64 {
	marks := []float64{rin}
	for _, m := range []float64{rBody, rLiner} {
		if m > rin+1e-9 && m < rout-1e-9 {
			marks = append(marks, m)
		}
	}
	marks = append(marks, rout)
	sort.Float64s(marks)
	var rs []float64
	for k := 0; k+1 < len(marks); k++ {
		a, b := marks[k], marks[k+1]
		n := int(math.Ceil((b - a) / dr))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			rs = append(rs, a+(b-a)*float64(i)/float64(n))
		}
	}
	rs = append(rs, rout)
	return rs
}

// SolvePolarPatch solves the annular patch around center for the given
// placement (the center TSV plus any neighbours whose material
// intersects the annulus).
func SolvePolarPatch(pl *geom.Placement, st material.Structure, center geom.Point, opt PolarPatchOptions) (*PolarPatch, error) {
	opt = opt.withDefaults()
	if opt.BoundaryDisp == nil {
		return nil, fmt.Errorf("fem: polar patch requires BoundaryDisp")
	}
	if opt.RIn >= st.R {
		return nil, fmt.Errorf("fem: polar patch inner radius %g must be inside the body (R=%g)", opt.RIn, st.R)
	}
	if opt.ROut <= st.RPrime {
		return nil, fmt.Errorf("fem: polar patch outer radius %g must be outside the liner (R'=%g)", opt.ROut, st.RPrime)
	}
	rs := buildRings(opt.RIn, opt.ROut, opt.DR, st.R, st.RPrime)
	nr := len(rs) - 1
	nth := opt.NTheta

	nodeID := func(i, j int) int { return i*nth + ((j%nth)+nth)%nth }
	nodeXY := func(i, j int) geom.Point {
		th := 2 * math.Pi * float64(j) / float64(nth)
		return geom.Pt(center.X+rs[i]*math.Cos(th), center.Y+rs[i]*math.Sin(th))
	}
	nn := (nr + 1) * nth

	// Free DOFs: rings 1..nr-1; rings 0 and nr are Dirichlet.
	free := make([]int, 2*nn)
	ub := make([]float64, 2*nn)
	nFree := 0
	for i := 0; i <= nr; i++ {
		for j := 0; j < nth; j++ {
			n := nodeID(i, j)
			if i == 0 || i == nr {
				free[2*n], free[2*n+1] = -1, -1
				ub[2*n], ub[2*n+1] = opt.BoundaryDisp(nodeXY(i, j))
			} else {
				free[2*n], free[2*n+1] = nFree, nFree+1
				nFree += 2
			}
		}
	}
	if nFree == 0 {
		return nil, fmt.Errorf("fem: polar patch has no free DOFs (DR too large)")
	}

	// Element materials: exact by ring for the center TSV; blended by
	// subsampling only if a neighbour intersects the element.
	dSi := st.Substrate.D(opt.Plane)
	dCu := st.Body.D(opt.Plane)
	dLi := st.Liner.D(opt.Plane)
	tvCu := thermalVec(st.Body, (st.Body.EffectiveCTE(opt.Plane)-st.Substrate.EffectiveCTE(opt.Plane))*st.DeltaT, opt.Plane)
	tvLi := thermalVec(st.Liner, (st.Liner.EffectiveCTE(opt.Plane)-st.Substrate.EffectiveCTE(opt.Plane))*st.DeltaT, opt.Plane)

	builder := sparse.NewBuilder(nFree)
	rhs := make([]float64, nFree)

	var ke [8][8]float64
	var fe [8]float64
	var coords [4]geom.Point
	var dofs [8]int
	cellStress := make([]tensor.Stress, nr*nth)
	midR := make([]float64, nr)
	type elemRef struct {
		d  [3][3]float64
		tv [3]float64
		ue [8]int // global dof ids
	}
	elems := make([]elemRef, 0, nr*nth)

	for i := 0; i < nr; i++ {
		midR[i] = (rs[i] + rs[i+1]) / 2
		for j := 0; j < nth; j++ {
			// CCW corners: (i,j), (i+1,j), (i+1,j+1), (i,j+1).
			coords[0] = nodeXY(i, j)
			coords[1] = nodeXY(i+1, j)
			coords[2] = nodeXY(i+1, j+1)
			coords[3] = nodeXY(i, j+1)

			var d [3][3]float64
			var tv [3]float64
			switch {
			case midR[i] < st.R:
				d, tv = dCu, tvCu
			case midR[i] < st.RPrime:
				d, tv = dLi, tvLi
			default:
				d, tv = dSi, [3]float64{}
			}
			// Neighbour intrusion: blend by subsampling when another
			// TSV's footprint reaches this element.
			if intruded(pl, st, center, coords) {
				d, tv = blendQuad(pl, st, coords, opt.SubSamples, opt.Plane)
			}

			quadStiffness(coords, &d, &ke)
			quadThermal(coords, &tv, &fe)
			nodes := [4]int{nodeID(i, j), nodeID(i+1, j), nodeID(i+1, j+1), nodeID(i, j+1)}
			for a := 0; a < 4; a++ {
				dofs[2*a] = 2 * nodes[a]
				dofs[2*a+1] = 2*nodes[a] + 1
			}
			for a := 0; a < 8; a++ {
				ra := free[dofs[a]]
				if ra < 0 {
					continue
				}
				rhs[ra] += fe[a]
				for bcol := 0; bcol < 8; bcol++ {
					rb := free[dofs[bcol]]
					if rb < 0 {
						if g := ub[dofs[bcol]]; g != 0 {
							rhs[ra] -= ke[a][bcol] * g
						}
						continue
					}
					builder.Add(ra, rb, ke[a][bcol])
				}
			}
			var er elemRef
			er.d, er.tv = d, tv
			for a := 0; a < 8; a++ {
				er.ue[a] = dofs[a]
			}
			elems = append(elems, er)
		}
	}

	mat := builder.Build()
	prec, err := sparse.NewSSOR(mat, opt.Omega)
	if err != nil {
		return nil, fmt.Errorf("fem: polar patch: %w", err)
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 20*int(math.Sqrt(float64(nFree))) + 4000
	}
	x := make([]float64, nFree)
	res, err := sparse.CG(mat, rhs, x, sparse.CGOptions{Tol: opt.Tol, MaxIter: maxIter, Prec: prec})
	if err != nil {
		return nil, fmt.Errorf("fem: polar patch: %w", err)
	}
	u := make([]float64, 2*nn)
	for d, r := range free {
		if r >= 0 {
			u[d] = x[r]
		} else {
			u[d] = ub[d]
		}
	}

	// Element-center stress recovery.
	var ue [8]float64
	for e, er := range elems {
		i := e / nth
		j := e % nth
		coords[0] = nodeXY(i, j)
		coords[1] = nodeXY(i+1, j)
		coords[2] = nodeXY(i+1, j+1)
		coords[3] = nodeXY(i, j+1)
		for a := 0; a < 8; a++ {
			ue[a] = u[er.ue[a]]
		}
		cellStress[e] = quadStressCenter(coords, &er.d, &er.tv, &ue)
	}

	return &PolarPatch{
		Center: center,
		Rs:     rs,
		NTheta: nth,
		CellRR: cellStress,
		Stats:  Stats{DOF: nFree, Iterations: res.Iterations, Residual: res.Residual},
		midR:   midR,
	}, nil
}

// intruded reports whether any TSV other than the one at center
// reaches the quad (conservative bounding test).
func intruded(pl *geom.Placement, st material.Structure, center geom.Point, c [4]geom.Point) bool {
	cx := (c[0].X + c[1].X + c[2].X + c[3].X) / 4
	cy := (c[0].Y + c[1].Y + c[2].Y + c[3].Y) / 4
	// Quad circumradius bound.
	rad := 0.0
	for _, p := range c {
		if d := math.Hypot(p.X-cx, p.Y-cy); d > rad {
			rad = d
		}
	}
	for _, t := range pl.TSVs {
		//tsvlint:ignore floatcmp identity test: center is a verbatim copy of one pl.TSVs entry
		if t.Center == center {
			continue
		}
		if math.Hypot(t.Center.X-cx, t.Center.Y-cy) <= st.RPrime+rad {
			return true
		}
	}
	return false
}

// blendQuad computes Reuss-blended material properties for a quad by
// sub-sampling in its bilinear parameter space.
func blendQuad(pl *geom.Placement, st material.Structure, c [4]geom.Point, sub int, plane material.Plane) ([3][3]float64, [3]float64) {
	dSi := st.Substrate.D(plane)
	sSi := invert3(dSi)
	sCu := invert3(st.Body.D(plane))
	sLi := invert3(st.Liner.D(plane))
	epsCu := (st.Body.EffectiveCTE(plane) - st.Substrate.EffectiveCTE(plane)) * st.DeltaT
	epsLi := (st.Liner.EffectiveCTE(plane) - st.Substrate.EffectiveCTE(plane)) * st.DeltaT

	var fb, fl float64
	inv := 1 / float64(sub*sub)
	for si := 0; si < sub; si++ {
		xi := -1 + (2*float64(si)+1)/float64(sub)
		for sj := 0; sj < sub; sj++ {
			eta := -1 + (2*float64(sj)+1)/float64(sub)
			n := shapeN(xi, eta)
			px := n[0]*c[0].X + n[1]*c[1].X + n[2]*c[2].X + n[3]*c[3].X
			py := n[0]*c[0].Y + n[1]*c[1].Y + n[2]*c[2].Y + n[3]*c[3].Y
			_, d := pl.NearestTSV(geom.Pt(px, py))
			switch {
			case d < st.R:
				fb += inv
			case d < st.RPrime:
				fl += inv
			}
		}
	}
	fs := 1 - fb - fl
	var sEff [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			sEff[i][j] = fs*sSi[i][j] + fb*sCu[i][j] + fl*sLi[i][j]
		}
	}
	dEff := invert3(sEff)
	eps := fb*epsCu + fl*epsLi
	tv := [3]float64{
		(dEff[0][0] + dEff[0][1]) * eps,
		(dEff[1][0] + dEff[1][1]) * eps,
		(dEff[2][0] + dEff[2][1]) * eps,
	}
	return dEff, tv
}

// StressAt samples the patch field, in MPa, by bilinear interpolation
// over element centers in (r, θ) space (periodic in θ). Points outside
// the annulus are clamped radially; callers restrict sampling to the
// core band anyway.
func (pp *PolarPatch) StressAt(p geom.Point) tensor.Stress {
	rel := p.Sub(pp.Center)
	r := rel.Norm()
	th := math.Atan2(rel.Y, rel.X)
	if th < 0 {
		th += 2 * math.Pi
	}
	// Radial cell interval in element-center space.
	i := sort.SearchFloat64s(pp.midR, r) // first midR ≥ r
	i0 := i - 1
	i1 := i
	if i0 < 0 {
		i0, i1 = 0, 0
	}
	if i1 >= len(pp.midR) {
		i0, i1 = len(pp.midR)-1, len(pp.midR)-1
	}
	var tr float64
	if i1 > i0 {
		tr = (r - pp.midR[i0]) / (pp.midR[i1] - pp.midR[i0])
	}
	// Angular cell interval: element-center angles at (j+0.5)·Δθ.
	dth := 2 * math.Pi / float64(pp.NTheta)
	fj := th/dth - 0.5
	j0 := int(math.Floor(fj))
	tt := fj - float64(j0)
	j0 = ((j0 % pp.NTheta) + pp.NTheta) % pp.NTheta
	j1 := (j0 + 1) % pp.NTheta

	get := func(i, j int) tensor.Stress { return pp.CellRR[i*pp.NTheta+j] }
	s00 := get(i0, j0).Scale((1 - tr) * (1 - tt))
	s01 := get(i0, j1).Scale((1 - tr) * tt)
	s10 := get(i1, j0).Scale(tr * (1 - tt))
	s11 := get(i1, j1).Scale(tr * tt)
	return s00.Add(s01).Add(s10).Add(s11)
}

var _ Field = (*PolarPatch)(nil)
