package fem

import (
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/mesh"
)

// elemMaterials holds the per-element blended constitutive matrix and
// thermal stress vector tv = D·ε_th, where ε_th is the eigenstrain
// *relative to the substrate*: ε_th = (α − αs)·ΔT. Elements cut by a
// circular interface get area-fraction (Voigt) blends, which softens
// the staircase error of the structured mesh.
type elemMaterials struct {
	D  [][3][3]float64
	TV [][3]float64
}

// thermalVec returns D·[ε, ε, 0] for isotropic relative eigenstrain ε.
func thermalVec(m material.Material, epsRel float64, plane material.Plane) [3]float64 {
	d := m.D(plane)
	return [3]float64{
		(d[0][0] + d[0][1]) * epsRel,
		(d[1][0] + d[1][1]) * epsRel,
		0,
	}
}

// buildElementMaterials assigns blended materials to every element.
func buildElementMaterials(g *mesh.Grid, pl *geom.Placement, st material.Structure, sub int, plane material.Plane) *elemMaterials {
	ne := g.NumElems()
	em := &elemMaterials{
		D:  make([][3][3]float64, ne),
		TV: make([][3]float64, ne),
	}

	dSi := st.Substrate.D(plane)
	dCu := st.Body.D(plane)
	dLi := st.Liner.D(plane)
	dT := st.DeltaT
	tvCu := thermalVec(st.Body, (st.Body.EffectiveCTE(plane)-st.Substrate.EffectiveCTE(plane))*dT, plane)
	tvLi := thermalVec(st.Liner, (st.Liner.EffectiveCTE(plane)-st.Substrate.EffectiveCTE(plane))*dT, plane)
	// Substrate relative eigenstrain is zero by construction.

	// Start with pure substrate everywhere.
	for e := 0; e < ne; e++ {
		em.D[e] = dSi
	}

	// Per-TSV body/liner fractions, accumulated per element. Overlap
	// of distinct TSVs is geometrically invalid and rejected upstream;
	// fractions are clamped defensively anyway.
	fBody := make([]float64, ne)
	fLiner := make([]float64, ne)
	diag := math.Hypot(g.DX, g.DY) / 2
	inv := 1 / float64(sub*sub)
	for _, t := range pl.TSVs {
		// Element index range covered by the circle R′ plus the
		// element half-diagonal.
		reach := st.RPrime + diag
		i0 := int(math.Floor((t.Center.X - reach - g.Domain.Min.X) / g.DX))
		i1 := int(math.Ceil((t.Center.X + reach - g.Domain.Min.X) / g.DX))
		j0 := int(math.Floor((t.Center.Y - reach - g.Domain.Min.Y) / g.DY))
		j1 := int(math.Ceil((t.Center.Y + reach - g.Domain.Min.Y) / g.DY))
		i0, i1 = clampI(i0, 0, g.NX-1), clampI(i1, 0, g.NX-1)
		j0, j1 = clampI(j0, 0, g.NY-1), clampI(j1, 0, g.NY-1)
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				e := g.ElemID(i, j)
				x0 := g.Domain.Min.X + float64(i)*g.DX
				y0 := g.Domain.Min.Y + float64(j)*g.DY
				nb, nl := 0, 0
				for sj := 0; sj < sub; sj++ {
					py := y0 + (float64(sj)+0.5)*g.DY/float64(sub)
					for si := 0; si < sub; si++ {
						px := x0 + (float64(si)+0.5)*g.DX/float64(sub)
						r := math.Hypot(px-t.Center.X, py-t.Center.Y)
						switch {
						case r < st.R:
							nb++
						case r < st.RPrime:
							nl++
						}
					}
				}
				fBody[e] += float64(nb) * inv
				fLiner[e] += float64(nl) * inv
			}
		}
	}

	// Compliance matrices and relative eigenstrains for the Reuss
	// (uniform-stress) blend. Reuss is the right mixing rule here: the
	// liner is a thin *soft* ring loaded mostly in series radially, so
	// averaging stiffness (Voigt) across cut cells would stiffen it and
	// bias the golden field high by tens of percent; averaging
	// compliance preserves the ring's radial compliance.
	sSi := invert3(dSi)
	sCu := invert3(dCu)
	sLi := invert3(dLi)
	epsCu := (st.Body.EffectiveCTE(plane) - st.Substrate.EffectiveCTE(plane)) * dT
	epsLi := (st.Liner.EffectiveCTE(plane) - st.Substrate.EffectiveCTE(plane)) * dT

	for e := 0; e < ne; e++ {
		fb, fl := fBody[e], fLiner[e]
		if fb == 0 && fl == 0 {
			em.TV[e] = [3]float64{}
			continue
		}
		if s := fb + fl; s > 1 { // defensive clamp (overlapping TSVs)
			fb /= s
			fl /= s
		}
		fs := 1 - fb - fl
		if fb == 1 {
			em.D[e] = dCu
			em.TV[e] = tvCu
			continue
		}
		if fl == 1 {
			em.D[e] = dLi
			em.TV[e] = tvLi
			continue
		}
		// Reuss blend: S_eff = Σ f S_i, ε_eff = Σ f ε_i,
		// D_eff = S_eff⁻¹, tv = D_eff · ε_eff.
		var sEff [3][3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				sEff[i][j] = fs*sSi[i][j] + fb*sCu[i][j] + fl*sLi[i][j]
			}
		}
		dEff := invert3(sEff)
		em.D[e] = dEff
		eps := fb*epsCu + fl*epsLi
		em.TV[e] = [3]float64{
			(dEff[0][0] + dEff[0][1]) * eps,
			(dEff[1][0] + dEff[1][1]) * eps,
			(dEff[2][0] + dEff[2][1]) * eps,
		}
	}
	return em
}

// invert3 inverts a symmetric positive-definite 3×3 matrix by cofactors.
func invert3(m [3][3]float64) [3][3]float64 {
	a, b, c := m[0][0], m[0][1], m[0][2]
	d, e, f := m[1][0], m[1][1], m[1][2]
	g, h, i := m[2][0], m[2][1], m[2][2]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	inv := 1 / det
	return [3][3]float64{
		{(e*i - f*h) * inv, (c*h - b*i) * inv, (b*f - c*e) * inv},
		{(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv},
		{(d*h - e*g) * inv, (b*g - a*h) * inv, (a*e - b*d) * inv},
	}
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
