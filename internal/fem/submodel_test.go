package fem

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
)

func TestSubmodelValidation(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	if _, err := SolveSubmodel(pl, st, square(t, 15), SubmodelOptions{PatchHalf: 4, CoreHalf: 5}); err == nil {
		t.Fatal("CoreHalf >= PatchHalf should fail")
	}
}

// The submodel must agree with the global field away from TSVs and with
// the analytic single-TSV solution near the interface (where it is the
// whole point of the construction).
func TestSubmodelSingleTSV(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	// GlobalH is coarse but the patches run at the production local
	// resolution — near-interface accuracy comes entirely from them.
	sub, err := SolveSubmodel(pl, st, square(t, 15), SubmodelOptions{GlobalH: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	// Near-interface accuracy: 0.2 µm from the liner (r = 3.2) the
	// blended-interface discretization leaves ~10% pointwise noise even
	// in the patches (documented in DESIGN.md §11); one radius further
	// out it must be a few percent.
	for _, ring := range []struct{ r, tol float64 }{{3.2, 0.16}, {4.0, 0.08}} {
		for _, th := range []float64{0, 0.7, 1.9, 3.0} {
			p := geom.Pt(ring.r*math.Cos(th), ring.r*math.Sin(th))
			got := sub.StressAt(p)
			want := sol.StressAt(p, geom.Pt(0, 0))
			scale := math.Abs(want.XX) + math.Abs(want.YY) + math.Abs(want.XY)
			rel := (math.Abs(got.XX-want.XX) + math.Abs(got.YY-want.YY) + math.Abs(got.XY-want.XY)) / scale
			if rel > ring.tol {
				t.Errorf("ring r=%g θ=%.1f: rel error %.3f (got %v want %v)", ring.r, th, rel, got, want)
			}
		}
	}
	// Far from the TSV the sampler must hand off to the global field.
	far := geom.Pt(8, 3)
	if sub.StressAt(far) != sub.Global.StressAt(far) {
		t.Error("far point should come from the global field")
	}
	// Inside the core it must come from the patch.
	nearPt := geom.Pt(3.5, 0)
	if sub.StressAt(nearPt) != sub.Patches[0].StressAt(nearPt) {
		t.Error("near point should come from the patch")
	}
}

// Patch fed by a custom boundary-displacement field: feeding the exact
// analytic solution must reproduce the analytic stress inside.
func TestCustomBoundaryDisp(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(pl, st, square(t, 8), Options{
		H: 0.125,
		BoundaryDisp: func(p geom.Point) (float64, float64) {
			r := p.Norm()
			u := sol.DisplacementAt(r) - st.Substrate.CTE*st.DeltaT*r
			return u * p.X / r, u * p.Y / r
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(5, 0)
	got := res.StressAt(p)
	want := sol.StressAt(p, geom.Pt(0, 0))
	if rel := math.Abs(got.XX-want.XX) / math.Abs(want.XX); rel > 0.1 {
		t.Errorf("σxx = %v, want %v (rel %.3f)", got.XX, want.XX, rel)
	}
}
