package fem

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
)

func TestBuildRings(t *testing.T) {
	rs := buildRings(1.2, 6.0, 0.1, 2.5, 3.0)
	if rs[0] != 1.2 || rs[len(rs)-1] != 6.0 {
		t.Fatalf("ring endpoints %v..%v", rs[0], rs[len(rs)-1])
	}
	found25, found30 := false, false
	for i := 1; i < len(rs); i++ {
		if rs[i] <= rs[i-1] {
			t.Fatal("rings not strictly increasing")
		}
		if math.Abs(rs[i]-2.5) < 1e-12 {
			found25 = true
		}
		if math.Abs(rs[i]-3.0) < 1e-12 {
			found30 = true
		}
	}
	if !found25 || !found30 {
		t.Error("interface radii not snapped onto rings")
	}
	// Interfaces outside the annulus are skipped.
	rs = buildRings(3.5, 6.0, 0.1, 2.5, 3.0)
	if rs[0] != 3.5 {
		t.Error("inner radius wrong")
	}
}

func TestPolarPatchValidation(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	bc := func(geom.Point) (float64, float64) { return 0, 0 }
	if _, err := SolvePolarPatch(pl, st, geom.Pt(0, 0), PolarPatchOptions{}); err == nil {
		t.Error("missing BoundaryDisp should fail")
	}
	if _, err := SolvePolarPatch(pl, st, geom.Pt(0, 0), PolarPatchOptions{RIn: 2.6, BoundaryDisp: bc}); err == nil {
		t.Error("inner radius beyond body should fail")
	}
	if _, err := SolvePolarPatch(pl, st, geom.Pt(0, 0), PolarPatchOptions{ROut: 2.9, BoundaryDisp: bc}); err == nil {
		t.Error("outer radius inside liner should fail")
	}
}

// Feeding the exact analytic boundary displacement must reproduce the
// analytic stress through the annulus to sub-percent accuracy — the
// polar mesh resolves the circular interfaces exactly.
func TestPolarPatchAnalyticDrive(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	bc := func(p geom.Point) (float64, float64) {
		// The solver works in the perturbation convention: subtract the
		// substrate free thermal expansion αsΔT·r in every region.
		r := p.Norm()
		u := sol.DisplacementAt(r) - st.Substrate.CTE*st.DeltaT*r
		return u * p.X / r, u * p.Y / r
	}
	pp, err := SolvePolarPatch(pl, st, geom.Pt(0, 0), PolarPatchOptions{BoundaryDisp: bc, DR: 0.05, NTheta: 96})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{3.05, 3.3, 4.0, 5.0} {
		for _, th := range []float64{0, 0.8, 2.1, 4.4} {
			p := geom.Pt(r*math.Cos(th), r*math.Sin(th))
			got := pp.StressAt(p)
			want := sol.StressAt(p, geom.Pt(0, 0))
			scale := math.Abs(want.XX) + math.Abs(want.YY) + math.Abs(want.XY)
			rel := (math.Abs(got.XX-want.XX) + math.Abs(got.YY-want.YY) + math.Abs(got.XY-want.XY)) / scale
			if rel > 0.01 {
				t.Errorf("r=%g θ=%.1f: rel error %.4f (got %v want %v)", r, th, rel, got, want)
			}
		}
	}
	if pp.Stats.DOF <= 0 || pp.Stats.Iterations <= 0 {
		t.Errorf("stats = %+v", pp.Stats)
	}
}

// The production submodel with polar patches must hit the documented
// accuracy on the critical ring: ≲5% per component, ≲1.5% in von Mises
// (at quick global resolution slightly looser).
func TestPolarSubmodelRingAccuracy(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sub, err := SolveSubmodel(pl, st, square(t, 18), SubmodelOptions{GlobalH: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{3.05, 3.3} {
		for k := 0; k < 16; k++ {
			th := 2 * math.Pi * float64(k) / 16
			p := geom.Pt(r*math.Cos(th), r*math.Sin(th))
			got := sub.StressAt(p)
			want := sol.StressAt(p, geom.Pt(0, 0))
			vmRel := math.Abs(got.VonMises()-want.VonMises()) / want.VonMises()
			if vmRel > 0.03 {
				t.Errorf("r=%g θ=%.2f: von Mises rel error %.4f", r, th, vmRel)
			}
		}
	}
}

// Cartesian patches remain available behind the option.
func TestCartesianPatchOptionStillWorks(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(0, 0))
	sub, err := SolveSubmodel(pl, st, square(t, 12), SubmodelOptions{
		GlobalH: 0.5, LocalH: 0.25, CartesianPatches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sub.StressAt(geom.Pt(3.5, 0))
	if math.IsNaN(s.XX) || s.XX == 0 {
		t.Errorf("cartesian patch stress = %v", s)
	}
}

// Neighbour intrusion: a second TSV close enough that its liner reaches
// the first TSV's annulus must not break the solve, and the field must
// stay symmetric under the pair's mirror symmetry.
func TestPolarPatchNeighbourIntrusion(t *testing.T) {
	st := material.Baseline(material.BCB)
	d := 7.0 // annulus capped at d − R' − 0.2 = 3.8
	pl := geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0))
	sub, err := SolveSubmodel(pl, st, square(t, 15), SubmodelOptions{GlobalH: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a := sub.StressAt(geom.Pt(-d/2, 3.2))
	b := sub.StressAt(geom.Pt(d/2, 3.2))
	tol := 0.03 * (math.Abs(a.XX) + math.Abs(a.YY) + math.Abs(a.XY))
	if math.Abs(a.XX-b.XX) > tol || math.Abs(a.YY-b.YY) > tol || math.Abs(a.XY+b.XY) > tol {
		t.Errorf("mirror symmetry broken: %v vs %v", a, b)
	}
}
