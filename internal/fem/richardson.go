package fem

import (
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// Field is anything that can be sampled for a stress tensor at a point.
// Both Result and RichardsonResult implement it, as do the analytical
// models in other packages.
type Field interface {
	StressAt(p geom.Point) tensor.Stress
}

// RichardsonResult combines two solutions at mesh sizes h and h/2 by
// pointwise Richardson extrapolation, σ = 2·σ_{h/2} − σ_h.
//
// The dominant discretization error of the blended-material structured
// mesh is first order in h (it comes from the O(h)-wide mixed-material
// band at the circular interfaces), so the extrapolation cancels it:
// measured single-TSV K error drops from ~10% (h = 0.25) to < 1%. This
// is the accuracy the golden reference needs, because the modeling
// errors under study are themselves a few percent at large pitch.
type RichardsonResult struct {
	Coarse, Fine *Result
}

// SolveRichardson runs the solver at opt.H and opt.H/2 and returns the
// extrapolating sampler.
func SolveRichardson(pl *geom.Placement, st material.Structure, domain geom.Rect, opt Options) (*RichardsonResult, error) {
	opt = opt.withDefaults()
	coarse, err := Solve(pl, st, domain, opt)
	if err != nil {
		return nil, err
	}
	fineOpt := opt
	fineOpt.H = opt.H / 2
	fine, err := Solve(pl, st, domain, fineOpt)
	if err != nil {
		return nil, err
	}
	return &RichardsonResult{Coarse: coarse, Fine: fine}, nil
}

// StressAt samples the extrapolated stress field in MPa.
func (r *RichardsonResult) StressAt(p geom.Point) tensor.Stress {
	c := r.Coarse.StressAt(p)
	f := r.Fine.StressAt(p)
	return f.Scale(2).Sub(c)
}

// DisplacementAt samples the extrapolated perturbation displacement in
// µm.
func (r *RichardsonResult) DisplacementAt(p geom.Point) (ux, uy float64) {
	cx, cy := r.Coarse.DisplacementAt(p)
	fx, fy := r.Fine.DisplacementAt(p)
	return 2*fx - cx, 2*fy - cy
}

var (
	_ Field = (*Result)(nil)
	_ Field = (*RichardsonResult)(nil)
)
