package incr

import (
	"context"
	"errors"
	"testing"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
)

// TestFlushCanceledThenRetryRestoresParity pins the engine's
// cancel-then-retry contract: a Flush aborted mid-evaluation returns an
// error matching core.ErrCanceled, leaves the engine reusable (dirty
// tiles retained, analyzer rebuild committed), and the next Flush
// restores exact parity with a from-scratch evaluation.
func TestFlushCanceledThenRetryRestoresParity(t *testing.T) {
	defer faultinject.Reset()
	e, st := testSession(t, 60, 11, 1.0, core.ModeFull)

	if err := e.Apply(geom.Edit{Op: geom.EditMove, Index: 0,
		TSV: geom.TSV{Center: e.Placement().TSVs[0].Center.Add(geom.Pt(3, 2))}}); err != nil {
		t.Fatal(err)
	}

	faultinject.Set("core.tile.eval", faultinject.Fault{Delay: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.Flush(ctx); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Flush under deadline = %v, want ErrCanceled", err)
	}
	faultinject.Reset()

	if e.Stats().CanceledFlushes != 1 {
		t.Fatalf("CanceledFlushes = %d, want 1", e.Stats().CanceledFlushes)
	}
	if !e.NeedsFlush() {
		t.Fatal("canceled flush cleared NeedsFlush; the owed tiles would never re-evaluate")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after the rebuild committed, want 0", e.Pending())
	}

	// Retry on the untouched engine: full parity with scratch.
	checkParity(t, e, st, 1e-9)
	if e.NeedsFlush() {
		t.Fatal("successful retry left NeedsFlush set")
	}
}

// TestFlushDegradedThenFullRestoresParity pins the degradation ladder:
// a degraded flush applies the edits with Stage-I-only values in the
// dirty tiles, reports Degraded, and a later full Flush heals back to
// exact full-mode parity.
func TestFlushDegradedThenFullRestoresParity(t *testing.T) {
	e, st := testSession(t, 60, 12, 1.0, core.ModeFull)

	if err := e.Apply(geom.Edit{Op: geom.EditRemove, Index: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FlushDegraded(context.Background()); err != nil {
		t.Fatalf("FlushDegraded: %v", err)
	}
	if !e.Degraded() {
		t.Fatal("FlushDegraded did not mark the map degraded")
	}
	if e.Stats().DegradedFlushes != 1 {
		t.Fatalf("DegradedFlushes = %d, want 1", e.Stats().DegradedFlushes)
	}
	if !e.NeedsFlush() {
		t.Fatal("degraded tiles still owe a full-mode pass; NeedsFlush must hold")
	}

	// checkParity runs a regular Flush first, which heals the map.
	checkParity(t, e, st, 1e-9)
	if e.Degraded() || e.NeedsFlush() {
		t.Fatal("full Flush did not clear the degraded state")
	}
}

// TestFlushDegradedIsFlushForNonFullModes: for an LS-pinned session
// there is nothing cheaper to degrade to.
func TestFlushDegradedIsFlushForNonFullModes(t *testing.T) {
	e, st := testSession(t, 40, 13, 1.5, core.ModeLS)
	if err := e.Apply(geom.Edit{Op: geom.EditRemove, Index: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FlushDegraded(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Degraded() {
		t.Fatal("an LS session cannot be degraded")
	}
	if e.Stats().DegradedFlushes != 0 {
		t.Fatalf("DegradedFlushes = %d, want 0", e.Stats().DegradedFlushes)
	}
	checkParity(t, e, st, 1e-9)
}

// TestNewCanceled: a canceled initial evaluation returns no engine.
func TestNewCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(40, 1e-2, 2*st.RPrime+1, 14)
	if err != nil {
		t.Fatal(err)
	}
	g, err := field.NewGrid(pl.Bounds(5), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ctx, st, pl, g.Points(), core.ModeFull, core.Options{}); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("New(pre-canceled) = %v, want ErrCanceled", err)
	}
}
