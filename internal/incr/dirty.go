//tsvlint:hotpath

package incr

import (
	"tsvstress/internal/core"
	"tsvstress/internal/geom"
)

// dirtySlack absorbs floating-point rounding in the disc-vs-tile
// distance tests, keeping the dirty tile set a strict superset of the
// affected points (mirrors the gather slack inside core's tile engine).
const dirtySlack = 1e-6

// markEdit marks every tile an edit with the given sites (old and/or
// new TSV centers) can affect, and invalidates the round-reuse mapping
// of every victim whose aggressor set the edit changed.
//
// Locality argument (the dirty-tile invariant, DESIGN.md §12): a point
// p changes value only if (a) a site is within LSCutoff of p — Stage I
// gains or loses that single-TSV contribution — or (b) some victim v
// with a changed round set is within PairDistCutoff of p. Changed
// victims are exactly the edited TSV itself (a site) and the TSVs
// within PairPitchCutoff of a site. Marking disc(site, siteRadius) and
// disc(v, PairDistCutoff) for those victims therefore covers every
// affected point; tile membership adds the half-diagonal.
func (e *Engine) markEdit(sites []geom.Point) {
	opt := e.an.Options()
	pair := e.mode == core.ModeFull || e.mode == core.ModeInteractive
	siteR := opt.LSCutoff
	if pair && opt.PairDistCutoff > siteR {
		siteR = opt.PairDistCutoff
	}
	for _, c := range sites {
		e.markDisc(c, siteR)
	}
	// Victims whose round set changed: TSVs within PairPitchCutoff of a
	// site. Their packed rounds must be re-aggregated at the next flush
	// regardless of mode (the rebuilt analyzer also backs reliability
	// screening); their influence discs dirty tiles only when Stage II
	// contributes to the session's field.
	pitch2 := opt.PairPitchCutoff * opt.PairPitchCutoff
	for u := range e.pl.TSVs {
		c := e.pl.TSVs[u].Center
		for _, s := range sites {
			dx := c.X - s.X
			dy := c.Y - s.Y
			if dx*dx+dy*dy <= pitch2 {
				e.prevIdx[u] = -1
				if pair {
					e.markDisc(c, opt.PairDistCutoff)
				}
				break
			}
		}
	}
}

// markDisc marks dirty every tile whose points could lie within radius
// of c.
func (e *Engine) markDisc(c geom.Point, radius float64) {
	r := radius + e.tiling.HalfDiag() + dirtySlack
	r2 := r * r
	n := e.tiling.NumTiles()
	for id := 0; id < n; id++ {
		if e.dirty[id] {
			continue
		}
		tc := e.tiling.TileCenter(id)
		dx := tc.X - c.X
		dy := tc.Y - c.Y
		if dx*dx+dy*dy <= r2 {
			e.dirty[id] = true
		}
	}
}

// collectDirty appends the ids of the set tiles to dst and returns it.
func collectDirty(dst []int32, dirty []bool) []int32 {
	for id := range dirty {
		if dirty[id] {
			dst = append(dst, int32(id))
		}
	}
	return dst
}
