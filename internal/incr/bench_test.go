package incr

import (
	"context"
	"math"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// benchChip is the acceptance-scale workload: 1000 TSVs at the paper's
// Table 6 density with a ~250k-point device-layer grid.
func benchChip(b *testing.B) (material.Structure, *geom.Placement, []geom.Point) {
	b.Helper()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(1000, 1e-2, 2*st.RPrime+1, 2013)
	if err != nil {
		b.Fatal(err)
	}
	region := pl.Bounds(5)
	g, err := field.NewGrid(region, math.Sqrt(region.Area()/250_000))
	if err != nil {
		b.Fatal(err)
	}
	return st, pl, g.Points()
}

// BenchmarkIncrementalEdit measures one single-TSV move propagated to
// the full map: the incremental path (Apply + Flush over dirty tiles)
// against the from-scratch path (rebuild analyzer, full MapInto). The
// ns/op ratio of the two sub-benchmarks is the ECO speedup; the
// incremental case also reports the dirty-tile ratio.
func BenchmarkIncrementalEdit(b *testing.B) {
	st, pl, pts := benchChip(b)
	// One TSV toggled between its seed position and a 2 µm offset;
	// pick the first via where both positions are pitch-legal.
	target, delta := -1, geom.Pt(2, 1)
	for i := 0; i < pl.Len(); i++ {
		moved := geom.Edit{Op: geom.EditMove, Index: i, TSV: geom.TSV{Center: pl.TSVs[i].Center.Add(delta)}}
		if moved.Validate(pl, 2*st.RPrime) == nil {
			target = i
			break
		}
	}
	if target < 0 {
		b.Fatal("no legally movable TSV in the bench placement")
	}
	home := pl.TSVs[target].Center

	b.Run("incremental", func(b *testing.B) {
		e, err := New(context.Background(), st, pl, pts, core.ModeFull, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := home.Add(delta)
			if i%2 == 1 {
				c = home
			}
			if err := e.Apply(geom.Edit{Op: geom.EditMove, Index: target, TSV: geom.TSV{Center: c}}); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Flush(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(e.Stats().LastDirtyRatio, "dirty-ratio")
	})

	b.Run("scratch", func(b *testing.B) {
		cur := pl.Clone()
		dst := make([]tensor.Stress, len(pts))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := home.Add(delta)
			if i%2 == 1 {
				c = home
			}
			if err := (geom.Edit{Op: geom.EditMove, Index: target, TSV: geom.TSV{Center: c}}).Apply(cur, 2*st.RPrime); err != nil {
				b.Fatal(err)
			}
			an, err := core.New(st, cur, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := an.MapInto(context.Background(), dst, pts, core.ModeFull); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalFlushBatch measures a 10-edit batch coalesced
// into one flush — the ECO-loop steady state the service runs.
func BenchmarkIncrementalFlushBatch(b *testing.B) {
	st, pl, pts := benchChip(b)
	e, err := New(context.Background(), st, pl, pts, core.ModeFull, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// Ten movable TSVs toggled together.
	delta := geom.Pt(2, 1)
	var targets []int
	for i := 0; i < pl.Len() && len(targets) < 10; i++ {
		moved := geom.Edit{Op: geom.EditMove, Index: i, TSV: geom.TSV{Center: pl.TSVs[i].Center.Add(delta)}}
		if moved.Validate(pl, 2*st.RPrime) == nil {
			targets = append(targets, i)
		}
	}
	homes := make([]geom.Point, len(targets))
	for k, i := range targets {
		homes[k] = pl.TSVs[i].Center
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, idx := range targets {
			c := homes[k].Add(delta)
			if i%2 == 1 {
				c = homes[k]
			}
			if err := e.Apply(geom.Edit{Op: geom.EditMove, Index: idx, TSV: geom.TSV{Center: c}}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := e.Flush(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(e.Stats().LastDirtyRatio, "dirty-ratio")
}
