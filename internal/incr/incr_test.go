package incr

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

func testSession(t *testing.T, n int, seed int64, spacing float64, mode core.Mode) (*Engine, material.Structure) {
	t.Helper()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(n, 1e-2, 2*st.RPrime+1, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := field.NewGrid(pl.Bounds(5), spacing)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(context.Background(), st, pl, g.Points(), mode, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, st
}

func maxDiff(a, b tensor.Stress) float64 {
	d := math.Abs(a.XX - b.XX)
	if v := math.Abs(a.YY - b.YY); v > d {
		d = v
	}
	if v := math.Abs(a.XY - b.XY); v > d {
		d = v
	}
	return d
}

// checkParity compares the engine's map against a from-scratch analyzer
// over the engine's current placement.
func checkParity(t *testing.T, e *Engine, st material.Structure, tol float64) {
	t.Helper()
	vals, err := e.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := core.New(st, e.Placement(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]tensor.Stress, e.NumPoints())
	if err := scratch.MapInto(context.Background(), want, e.Points(), e.Mode()); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	worstI := -1
	for i := range want {
		if d := maxDiff(vals[i], want[i]); d > worst {
			worst, worstI = d, i
		}
	}
	if worst > tol {
		t.Fatalf("incremental map differs from scratch by %g MPa at point %d %v (tol %g)",
			worst, worstI, e.Points()[worstI], tol)
	}
}

func TestEngineInitialMapMatchesScratch(t *testing.T) {
	e, st := testSession(t, 60, 3, 1.5, core.ModeFull)
	checkParity(t, e, st, 1e-12) // no edits: bit-near-identical path
	if e.Stats().Flushes != 0 {
		t.Error("flush with no edits re-evaluated tiles")
	}
}

func TestEngineSingleEdits(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeFull, core.ModeLS} {
		e, st := testSession(t, 60, 4, 1.5, mode)

		// Move one TSV.
		target := e.Placement().TSVs[10].Center
		if err := e.Apply(geom.Edit{Op: geom.EditMove, Index: 10, TSV: geom.TSV{Center: target.Add(geom.Pt(3, 2))}}); err != nil {
			t.Fatal(err)
		}
		checkParity(t, e, st, 1e-9)

		// Add a TSV in a gap.
		bounds := e.Placement().Bounds(0)
		added := false
		for try := 0; try < 200 && !added; try++ {
			c := geom.Pt(bounds.Min.X+float64(try)*1.7, bounds.Center().Y)
			if err := e.Apply(geom.Edit{Op: geom.EditAdd, TSV: geom.TSV{Center: c}}); err == nil {
				added = true
			}
		}
		if !added {
			t.Fatal("could not place an added TSV")
		}
		checkParity(t, e, st, 1e-9)

		// Remove one.
		if err := e.Apply(geom.Edit{Op: geom.EditRemove, Index: 5}); err != nil {
			t.Fatal(err)
		}
		checkParity(t, e, st, 1e-9)

		st2 := e.Stats()
		if st2.Edits != 3 || st2.Flushes != 3 {
			t.Errorf("mode %v: stats %+v, want 3 edits / 3 flushes", mode, st2)
		}
		if st2.LastDirtyTiles == 0 || st2.LastDirtyTiles == st2.TotalTiles {
			t.Errorf("mode %v: last flush dirtied %d of %d tiles — not incremental",
				mode, st2.LastDirtyTiles, st2.TotalTiles)
		}
	}
}

func TestEngineRejectsBadEdits(t *testing.T) {
	e, _ := testSession(t, 30, 5, 2, core.ModeFull)
	before := e.Placement()
	cases := []geom.Edit{
		{Op: geom.EditMove, Index: -1, TSV: geom.TSV{Center: geom.Pt(0, 0)}},
		{Op: geom.EditMove, Index: 99, TSV: geom.TSV{Center: geom.Pt(0, 0)}},
		{Op: geom.EditAdd, TSV: geom.TSV{Center: geom.Pt(math.NaN(), 0)}},
		{Op: geom.EditAdd, TSV: geom.TSV{Center: before.TSVs[0].Center.Add(geom.Pt(0.5, 0))}},
		{Op: geom.EditRemove, Index: 30},
	}
	for _, ed := range cases {
		if err := e.Apply(ed); err == nil {
			t.Errorf("edit %v accepted", ed)
		}
	}
	if e.Pending() != 0 {
		t.Error("failed edits left pending work")
	}
	after := e.Placement()
	if len(after.TSVs) != len(before.TSVs) {
		t.Error("failed edits mutated the placement")
	}
}

// TestEngineEditSequenceParity is the property test of the issue: a
// random sequence of ≤20 edits followed by one Flush must match a fresh
// MapInto over the final placement within 1e-9 MPa, in Full and LS
// modes. Each iteration also flushes mid-sequence on a coin flip so
// multi-flush sessions are covered.
func TestEngineEditSequenceParity(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeFull, core.ModeLS} {
		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewSource(int64(100*int(mode) + trial)))
			e, st := testSession(t, 50, int64(7+trial), 2, mode)
			bounds := e.Placement().Bounds(10)
			nEdits := 1 + rng.Intn(20)
			applied := 0
			for applied < nEdits {
				if err := e.Apply(randomEdit(rng, e.Placement(), bounds)); err != nil {
					continue // invalid random edit: retry with a new one
				}
				applied++
				if rng.Intn(6) == 0 {
					if _, err := e.Flush(context.Background()); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkParity(t, e, st, 1e-9)
		}
	}
}

func randomEdit(rng *rand.Rand, pl *geom.Placement, bounds geom.Rect) geom.Edit {
	randPt := func() geom.Point {
		return geom.Pt(bounds.Min.X+rng.Float64()*bounds.W(), bounds.Min.Y+rng.Float64()*bounds.H())
	}
	switch op := rng.Intn(3); {
	case op == 0 || pl.Len() < 2:
		return geom.Edit{Op: geom.EditAdd, TSV: geom.TSV{Center: randPt()}}
	case op == 1:
		return geom.Edit{Op: geom.EditRemove, Index: rng.Intn(pl.Len())}
	default:
		i := rng.Intn(pl.Len())
		step := geom.Pt(rng.NormFloat64()*8, rng.NormFloat64()*8)
		return geom.Edit{Op: geom.EditMove, Index: i, TSV: geom.TSV{Center: pl.TSVs[i].Center.Add(step)}}
	}
}

// TestEngineBatchedEditsOneFlush covers the coalescing path: many edits
// then a single Flush.
func TestEngineBatchedEditsOneFlush(t *testing.T) {
	e, st := testSession(t, 50, 9, 2, core.ModeFull)
	rng := rand.New(rand.NewSource(42))
	bounds := e.Placement().Bounds(10)
	applied := 0
	for applied < 12 {
		if err := e.Apply(randomEdit(rng, e.Placement(), bounds)); err == nil {
			applied++
		}
	}
	if e.Pending() != 12 {
		t.Fatalf("pending = %d, want 12", e.Pending())
	}
	checkParity(t, e, st, 1e-9)
	if e.Pending() != 0 {
		t.Error("flush left pending edits")
	}
}

// TestEngineReusesModels pins the edit-aware constructor wiring: a
// flush must keep the same superpose.LS and interact.Model instances.
func TestEngineReusesModels(t *testing.T) {
	e, _ := testSession(t, 40, 11, 2, core.ModeFull)
	ls, model := e.Analyzer().LS, e.Analyzer().Model
	if err := e.Apply(geom.Edit{Op: geom.EditRemove, Index: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Analyzer().LS != ls || e.Analyzer().Model != model {
		t.Error("flush rebuilt the solved models instead of reusing them")
	}
}
