// Package incr implements incremental full-chip stress evaluation over
// a mutable placement — the ECO (engineering change order) workload:
// a designer adds, removes or moves a handful of TSVs and wants the
// updated stress map without paying for a from-scratch recompute.
//
// The paper's framework makes this possible because both stages are
// local: a simulation point's Stage I sum only sees TSVs within
// LSCutoff, and its Stage II correction only sees pair rounds whose
// victim lies within PairDistCutoff (with aggressors within
// PairPitchCutoff of that victim). Editing one TSV therefore perturbs
// the field only inside a bounded region:
//
//   - Stage I changes inside disc(site, LSCutoff) around each edit
//     site (the old and/or new center);
//   - Stage II changes inside disc(v, PairDistCutoff) for every victim
//     v whose round set changed — the edited TSV itself plus every TSV
//     within PairPitchCutoff of an edit site.
//
// The engine pins one core.Tiling over the session's fixed simulation
// points, marks the tiles intersecting those discs dirty as edits are
// applied, and on Flush rebuilds the analyzer through the edit-aware
// constructor (core.Analyzer.Rebuild — shared Stage I table, shared
// interactive model and pitch-coefficient cache, per-victim rounds
// re-aggregated only where an edit touched them) and re-evaluates just
// the dirty tiles concurrently. Clean tiles keep their values, which is
// exact: their true field is unchanged, and the dirty-disc geometry
// above is a superset of every affected point (the parity property test
// pins incremental-vs-scratch agreement at ≤1e-9 MPa).
//
// An Engine is not safe for concurrent use; callers (internal/serve
// sessions) serialize access.
package incr

import (
	"context"
	"errors"
	"fmt"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// Engine is an incremental stress-map session: one structure, one
// evaluation mode, one fixed simulation-point set, and a placement that
// evolves through Apply calls.
type Engine struct {
	st       material.Structure
	mode     core.Mode
	minPitch float64

	pl *geom.Placement // current placement (owned clone)
	an *core.Analyzer  // analyzer of the last-flushed placement

	pts    []geom.Point // owned copy of the simulation points
	tiling *core.Tiling
	vals   []tensor.Stress

	// prevIdx[j] is the index TSV j held in the last-flushed analyzer
	// when its center and full aggressor neighborhood are unchanged
	// since the flush, else -1 (see core.Analyzer.Rebuild).
	prevIdx []int
	dirty   []bool  // per-tile dirty flags
	ids     []int32 // scratch: dirty tile ids for EvalTiles

	pendingEdits int
	// needsEval forces the next Flush to re-evaluate the dirty tiles
	// even with no pending edits: set when a flush was canceled after
	// committing its analyzer rebuild, or after a degraded (LS-only)
	// flush whose tiles still owe a full-mode pass.
	needsEval bool
	// degraded reports that the dirty tiles currently hold Stage-I-only
	// values (a load-shedding flush); cleared by the next full flush.
	degraded bool
	stats    Stats

	// evalTiles, when non-nil, replaces the in-process tile evaluation
	// on Flush (see SetTileEvaluator). Everything else — dirty
	// tracking, analyzer rebuilds, degraded/cancel semantics — is
	// unchanged.
	evalTiles TileEvaluator
}

// TileEvaluator computes stress for a set of tiles of a pinned tiling.
// It is the seam the cluster tier plugs into: the implementation must
// produce, for every id in ids, exactly the values the analyzer's own
// EvalTiles would write into dst (the sharded-evaluation property test
// pins this bit-for-bit), must honor per-tile cancellation by returning
// an error matching core.ErrCanceled, and must either complete every
// requested tile or return a non-nil error.
type TileEvaluator interface {
	EvalTiles(ctx context.Context, an *core.Analyzer, dst []tensor.Stress, pts []geom.Point, tl *core.Tiling, ids []int32, mode core.Mode) error
}

// SetTileEvaluator routes the engine's flush evaluations through ev;
// nil restores the in-process path. Like every Engine method it must
// not race a Flush.
func (e *Engine) SetTileEvaluator(ev TileEvaluator) { e.evalTiles = ev }

// Stats reports the engine's incremental-evaluation counters.
type Stats struct {
	// Edits is the total number of applied edits.
	Edits int
	// Flushes is the number of Flush calls that re-evaluated tiles.
	Flushes int
	// TotalTiles is the tile count of the session's partition.
	TotalTiles int
	// LastDirtyTiles is the number of tiles the last flush re-evaluated.
	LastDirtyTiles int
	// LastDirtyRatio is LastDirtyTiles / TotalTiles (0 when no flush
	// has run).
	LastDirtyRatio float64
	// DegradedFlushes counts load-shedding flushes that evaluated dirty
	// tiles in LS mode only (see FlushDegraded).
	DegradedFlushes int
	// CanceledFlushes counts Flush calls aborted by context
	// cancellation after at least the analyzer rebuild committed.
	CanceledFlushes int
	// CoeffCacheEntries and CoeffCacheHits mirror the shared interact
	// model's pitch-keyed coefficient cache (entries solved, rounds
	// served from cache).
	CoeffCacheEntries int
	CoeffCacheHits    int
}

// New builds an engine: it constructs the analyzer, partitions the
// simulation points into tiles, and evaluates the initial full map.
// The placement and points are copied; later mutation of the caller's
// slices does not affect the session. The initial evaluation observes
// ctx (per tile, see core.EvalTiles); a canceled build returns an error
// matching core.ErrCanceled and no engine.
func New(ctx context.Context, st material.Structure, pl *geom.Placement, pts []geom.Point, mode core.Mode, opt core.Options) (*Engine, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("incr: empty simulation point set")
	}
	an, err := core.New(st, pl.Clone(), opt)
	if err != nil {
		return nil, err
	}
	eff := an.Options()
	cutoff := eff.LSCutoff
	if (mode == core.ModeFull || mode == core.ModeInteractive) && eff.PairDistCutoff > cutoff {
		cutoff = eff.PairDistCutoff
	}
	own := append([]geom.Point(nil), pts...)
	// Partition finer than MapInto's transient tiling (side cutoff/16
	// instead of cutoff/2): an edit dirties the tiles intersecting its
	// influence discs, so a smaller half-diagonal both tightens that
	// tile set and shrinks the per-tile gather radius, at a per-tile
	// gather overhead that stays negligible against the points a
	// coarser dirty boundary would needlessly re-evaluate (measured:
	// single-move flush 470 ms → 302 ms on the 1000-TSV/250k-pt bench).
	tl, err := core.NewTiling(own, cutoff/8)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		st:       st,
		mode:     mode,
		minPitch: 2 * st.RPrime,
		pl:       pl.Clone(),
		an:       an,
		pts:      own,
		tiling:   tl,
		vals:     make([]tensor.Stress, len(own)),
		prevIdx:  make([]int, pl.Len()),
		dirty:    make([]bool, tl.NumTiles()),
	}
	for j := range e.prevIdx {
		e.prevIdx[j] = j
	}
	e.stats.TotalTiles = tl.NumTiles()
	if err := an.MapInto(ctx, e.vals, e.pts, mode); err != nil {
		return nil, err
	}
	return e, nil
}

// NumTSVs returns the current TSV count (including unflushed edits).
func (e *Engine) NumTSVs() int { return e.pl.Len() }

// NumPoints returns the session's simulation-point count.
func (e *Engine) NumPoints() int { return len(e.pts) }

// Mode returns the evaluation mode the session is pinned to.
func (e *Engine) Mode() core.Mode { return e.mode }

// Points returns the session's simulation points. The slice is owned
// by the engine; callers must not mutate it.
func (e *Engine) Points() []geom.Point { return e.pts }

// Values returns the current stress map in point order. The slice is
// owned by the engine and rewritten in place by Flush; callers must
// not mutate it and must not read it concurrently with Flush. With
// edits pending it reflects the last flushed placement.
func (e *Engine) Values() []tensor.Stress { return e.vals }

// Placement returns a clone of the current placement (including
// unflushed edits).
func (e *Engine) Placement() *geom.Placement { return e.pl.Clone() }

// Analyzer returns the analyzer of the last-flushed placement — the
// evaluator reliability screening and keep-out-zone scans run against.
// It is immutable and safe for concurrent use, but stale while edits
// are pending; call Flush first.
func (e *Engine) Analyzer() *core.Analyzer { return e.an }

// Pending returns the number of edits applied since the last Flush.
func (e *Engine) Pending() int { return e.pendingEdits }

// NeedsFlush reports whether Flush would do work: edits are pending, or
// dirty tiles still owe an evaluation after a canceled or degraded
// flush.
func (e *Engine) NeedsFlush() bool { return e.pendingEdits > 0 || e.needsEval }

// Stats returns the engine counters, including the shared coefficient
// cache state.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.CoeffCacheEntries, s.CoeffCacheHits = e.an.Model.CoeffCacheStats()
	return s
}

// Apply validates ed against the current placement and applies it,
// marking the affected tiles dirty. The field map is not updated until
// Flush. A failed edit leaves the session unchanged.
func (e *Engine) Apply(ed geom.Edit) error {
	// Test-only drill (one atomic load when unarmed): an injected
	// failure here models an engine/validator divergence — an edit the
	// rehearsal accepted that the engine then refuses.
	if err := faultinject.Fire("incr.apply"); err != nil {
		return err
	}
	// Capture the old center before the placement mutates.
	var oldC geom.Point
	hasOld := ed.Op == geom.EditRemove || ed.Op == geom.EditMove
	if hasOld {
		if ed.Index < 0 || ed.Index >= e.pl.Len() {
			return fmt.Errorf("incr: edit index %d outside placement of %d TSVs", ed.Index, e.pl.Len())
		}
		oldC = e.pl.TSVs[ed.Index].Center
	}
	if err := ed.Apply(e.pl, e.minPitch); err != nil {
		return err
	}

	// Maintain the index mapping into the last-flushed analyzer.
	switch ed.Op {
	case geom.EditAdd:
		e.prevIdx = append(e.prevIdx, -1)
	case geom.EditRemove:
		e.prevIdx = append(e.prevIdx[:ed.Index], e.prevIdx[ed.Index+1:]...)
	case geom.EditMove:
		e.prevIdx[ed.Index] = -1
	}

	// Edit sites: centers whose single-TSV contribution and round
	// participation changed.
	var sites [2]geom.Point
	ns := 0
	if hasOld {
		sites[ns] = oldC
		ns++
	}
	if ed.Op == geom.EditAdd || ed.Op == geom.EditMove {
		sites[ns] = ed.TSV.Center
		ns++
	}
	e.markEdit(sites[:ns])

	e.pendingEdits++
	e.stats.Edits++
	return nil
}

// Flush rebuilds the analyzer for the edited placement (reusing the
// solved models and every untouched victim's packed rounds) and
// re-evaluates the dirty tiles, returning the updated map (the same
// slice Values returns). With no pending work it returns immediately.
//
// Cancellation is cooperative (per tile): when ctx fires mid-flush the
// call returns an error matching core.ErrCanceled, but the engine stays
// reusable — the analyzer rebuild is committed, the dirty flags stay
// set, and the next Flush re-evaluates exactly the owed tiles, so a
// retry restores full parity with a from-scratch evaluation.
func (e *Engine) Flush(ctx context.Context) ([]tensor.Stress, error) {
	return e.flush(ctx, e.mode)
}

// FlushDegraded is the load-shedding variant for sessions pinned to
// core.ModeFull: it applies pending edits but evaluates the dirty tiles
// in LS (Stage I only) mode, which skips the pair-round accumulation —
// the expensive part of a full-mode flush. The tiles stay marked dirty
// and Degraded reports true until a later Flush re-evaluates them in
// the session's pinned mode, restoring parity. For sessions not pinned
// to Full mode it behaves exactly like Flush (there is nothing cheaper
// to degrade to).
func (e *Engine) FlushDegraded(ctx context.Context) ([]tensor.Stress, error) {
	if e.mode != core.ModeFull {
		return e.flush(ctx, e.mode)
	}
	return e.flush(ctx, core.ModeLS)
}

// Degraded reports whether the map currently holds Stage-I-only values
// in its dirty tiles after a FlushDegraded; the next Flush clears it.
func (e *Engine) Degraded() bool { return e.degraded }

func (e *Engine) flush(ctx context.Context, mode core.Mode) ([]tensor.Stress, error) {
	if e.pendingEdits == 0 && !e.needsEval {
		return e.vals, nil
	}
	if e.pendingEdits > 0 {
		prevIdx := e.prevIdx
		an, err := e.an.Rebuild(e.pl.Clone(), func(j int) int { return prevIdx[j] })
		if err != nil {
			return nil, err
		}
		// Commit the rebuild before evaluating: the analyzer now matches
		// e.pl, so a canceled evaluation can retry with an identity
		// mapping (full round reuse) instead of re-deriving edits.
		e.an = an
		e.prevIdx = e.prevIdx[:0]
		for j := 0; j < e.pl.Len(); j++ {
			e.prevIdx = append(e.prevIdx, j)
		}
		e.pendingEdits = 0
		e.needsEval = true
	}
	e.ids = collectDirty(e.ids[:0], e.dirty)
	evalErr := error(nil)
	if e.evalTiles != nil {
		evalErr = e.evalTiles.EvalTiles(ctx, e.an, e.vals, e.pts, e.tiling, e.ids, mode)
	} else {
		evalErr = e.an.EvalTiles(ctx, e.vals, e.pts, e.tiling, e.ids, mode)
	}
	if err := evalErr; err != nil {
		// Dirty flags stay set: the next Flush retries the evaluation
		// against the already-committed analyzer.
		if errors.Is(err, core.ErrCanceled) {
			e.stats.CanceledFlushes++
		}
		return nil, err
	}
	if mode != e.mode {
		// Degraded pass: the tiles hold LS-only values and still owe a
		// full-mode evaluation — keep them dirty.
		e.degraded = true
		e.stats.DegradedFlushes++
	} else {
		for i := range e.dirty {
			e.dirty[i] = false
		}
		e.needsEval = false
		e.degraded = false
	}
	e.stats.Flushes++
	e.stats.LastDirtyTiles = len(e.ids)
	e.stats.LastDirtyRatio = float64(len(e.ids)) / float64(e.stats.TotalTiles)
	return e.vals, nil
}
