package linalg

import "math"

// Dot returns the dot product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Two-pass scaling to avoid overflow on extreme inputs.
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		r := v / mx
		s += r * r
	}
	return mx * math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Axpy computes y ← a·x + y in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}
