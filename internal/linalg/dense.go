// Package linalg implements the dense linear algebra needed by the
// stress models: general matrices, LU factorization with partial
// pivoting, linear solves, determinants/inverses and small symmetric
// eigenproblems. Everything is written from scratch on the standard
// library, since the module is offline.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be rectangular.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// AddTo adds v to m[i,j].
func (m *Matrix) AddTo(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.AddTo(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// MulVec returns m·x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MaxAbs returns the largest absolute entry of m (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// LU is an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
	n    int
}

// Factorize computes the LU factorization of the square matrix a.
// It returns an error if a is singular to working precision.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cannot factorize %dx%d non-square matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at/below the diagonal.
		p, mx := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > mx {
				p, mx = i, v
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("linalg: matrix is singular (zero pivot at column %d)", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.AddTo(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign, n: n}, nil
}

// Solve solves A·x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), f.n)
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b directly (factorize + solve).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ or an error if A is singular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Residual returns max_i |A·x − b|_i, a cheap solve-quality check.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	mx := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}
