package linalg

import (
	"math"
	"math/rand"
	"testing"
	"tsvstress/internal/floats"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Diagonal boost to keep condition numbers sane for solve tests.
	for i := 0; i < n; i++ {
		m.AddTo(i, i, float64(n))
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At wrong")
	}
	m.Set(0, 0, 10)
	m.AddTo(0, 0, 5)
	if m.At(0, 0) != 15 {
		t.Fatal("Set/AddTo wrong")
	}
	tr := m.T()
	if tr.At(1, 0) != 2 || tr.At(0, 1) != 3 {
		t.Fatal("T wrong")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 15 {
		t.Fatal("Clone aliases data")
	}
	if m.MaxAbs() != 15 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 6)
	i6 := Identity(6)
	prod := a.Mul(i6)
	for k := range a.Data {
		if !eq(prod.Data[k], a.Data[k], 1e-12) {
			t.Fatal("A·I != A")
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 8, 20, 50} {
		a := randMatrix(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if !eq(x[i], xTrue[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], xTrue[i])
			}
		}
		if r := Residual(a, x, b); r > 1e-8*float64(n) {
			t.Fatalf("n=%d: residual %v", n, r)
		}
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !eq(x[0], 3, 1e-12) || !eq(x[1], 2, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSingularDetection(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); err == nil {
		t.Error("singular matrix should not factorize")
	}
	if _, err := Factorize(FromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Error("non-square should error")
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(f.Det(), 6, 1e-12) {
		t.Errorf("Det = %v", f.Det())
	}
	// Pivoting flips sign bookkeeping; det must stay correct.
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(fb.Det(), -1, 1e-12) {
		t.Errorf("Det = %v, want -1", fb.Det())
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 7)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !eq(prod.At(i, j), want, 1e-9) {
				t.Fatalf("A·A⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestSolveRHSLengthMismatch(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Error("short rhs should error")
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Errorf("Dot = %v", Dot(x, y))
	}
	if !eq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Errorf("Norm2 = %v", Norm2([]float64{3, 4}))
	}
	if Norm2(nil) != 0 {
		t.Error("Norm2(nil) != 0")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Error("NormInf wrong")
	}
	z := []float64{1, 1, 1}
	Axpy(2, x, z)
	if z[0] != 3 || z[2] != 7 {
		t.Errorf("Axpy = %v", z)
	}
	ScaleVec(0.5, z)
	if z[0] != 1.5 {
		t.Errorf("ScaleVec = %v", z)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	if !eq(got/big, math.Sqrt(2), 1e-12) {
		t.Fatalf("Norm2 scaled wrong: %v", got/big)
	}
}

func TestEigSym2(t *testing.T) {
	l1, l2 := EigSym2(3, 0, 1)
	if !eq(l1, 3, 1e-12) || !eq(l2, 1, 1e-12) {
		t.Errorf("EigSym2 diag = %v, %v", l1, l2)
	}
	// [[2,1],[1,2]] has eigenvalues 3, 1.
	l1, l2 = EigSym2(2, 1, 2)
	if !eq(l1, 3, 1e-12) || !eq(l2, 1, 1e-12) {
		t.Errorf("EigSym2 = %v, %v", l1, l2)
	}
}

func TestEigSym3(t *testing.T) {
	// Diagonal.
	l1, l2, l3 := EigSym3(1, 5, 3, 0, 0, 0)
	if !eq(l1, 5, 1e-12) || !eq(l2, 3, 1e-12) || !eq(l3, 1, 1e-12) {
		t.Errorf("diag eig = %v %v %v", l1, l2, l3)
	}
	// Known: [[2,1,0],[1,2,0],[0,0,4]] → 4, 3, 1.
	l1, l2, l3 = EigSym3(2, 2, 4, 1, 0, 0)
	if !eq(l1, 4, 1e-9) || !eq(l2, 3, 1e-9) || !eq(l3, 1, 1e-9) {
		t.Errorf("eig = %v %v %v", l1, l2, l3)
	}
}

func TestEigSym3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		a11, a22, a33 := rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10
		a12, a13, a23 := rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10
		l1, l2, l3 := EigSym3(a11, a22, a33, a12, a13, a23)
		if !(l1 >= l2-1e-9 && l2 >= l3-1e-9) {
			t.Fatalf("eigenvalues not sorted: %v %v %v", l1, l2, l3)
		}
		// Invariants: trace and Frobenius norm.
		tr := a11 + a22 + a33
		if !eq(l1+l2+l3, tr, 1e-8*math.Max(1, math.Abs(tr))) {
			t.Fatalf("trace mismatch")
		}
		frob := a11*a11 + a22*a22 + a33*a33 + 2*(a12*a12+a13*a13+a23*a23)
		if !eq(l1*l1+l2*l2+l3*l3, frob, 1e-6*math.Max(1, frob)) {
			t.Fatalf("Frobenius mismatch: %v vs %v", l1*l1+l2*l2+l3*l3, frob)
		}
	}
}
