package linalg

import "math"

// EigSym2 returns the eigenvalues of the symmetric 2×2 matrix
// [[a, b], [b, c]] sorted descending.
func EigSym2(a, b, c float64) (l1, l2 float64) {
	m := (a + c) / 2
	r := math.Hypot((a-c)/2, b)
	return m + r, m - r
}

// EigSym3 returns the eigenvalues of a symmetric 3×3 matrix
// [[a11,a12,a13],[a12,a22,a23],[a13,a23,a33]] sorted descending, using
// the trigonometric closed form (Smith's algorithm). It is used for the
// maximum-tensile-stress reliability metric on full 3D tensors.
func EigSym3(a11, a22, a33, a12, a13, a23 float64) (l1, l2, l3 float64) {
	p1 := a12*a12 + a13*a13 + a23*a23
	if p1 == 0 {
		// Diagonal matrix: sort the diagonal.
		l1, l2, l3 = a11, a22, a33
		if l1 < l2 {
			l1, l2 = l2, l1
		}
		if l2 < l3 {
			l2, l3 = l3, l2
		}
		if l1 < l2 {
			l1, l2 = l2, l1
		}
		return
	}
	q := (a11 + a22 + a33) / 3
	p2 := (a11-q)*(a11-q) + (a22-q)*(a22-q) + (a33-q)*(a33-q) + 2*p1
	p := math.Sqrt(p2 / 6)
	// B = (A − qI)/p; r = det(B)/2 ∈ [−1, 1] up to round-off.
	b11, b22, b33 := (a11-q)/p, (a22-q)/p, (a33-q)/p
	b12, b13, b23 := a12/p, a13/p, a23/p
	detB := b11*(b22*b33-b23*b23) - b12*(b12*b33-b23*b13) + b13*(b12*b23-b22*b13)
	r := detB / 2
	if r < -1 {
		r = -1
	} else if r > 1 {
		r = 1
	}
	phi := math.Acos(r) / 3
	l1 = q + 2*p*math.Cos(phi)
	l3 = q + 2*p*math.Cos(phi+2*math.Pi/3)
	l2 = 3*q - l1 - l3
	return
}
