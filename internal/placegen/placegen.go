// Package placegen generates the TSV placements used in the paper's
// evaluation: the two-TSV pitch-sweep pair, the five-TSV cross of
// Figure 5, regular arrays, and density-controlled random placements
// for the Table 6 scalability study. All randomness is seeded for
// reproducibility.
package placegen

import (
	"fmt"
	"math"
	"math/rand"

	"tsvstress/internal/floats"
	"tsvstress/internal/geom"
)

// Pair returns two TSVs at pitch d centered on the origin, on the
// x-axis — the placement of Section 5.1.
func Pair(d float64) *geom.Placement {
	return geom.NewPlacement(geom.Pt(-d/2, 0), geom.Pt(d/2, 0))
}

// FiveCross returns the five-TSV placement of Figure 5: a center TSV
// with four neighbours at the given minimal pitch in a cross
// arrangement (the paper states minimal pitch 10 µm).
func FiveCross(minPitch float64) *geom.Placement {
	return geom.NewPlacement(
		geom.Pt(0, 0),
		geom.Pt(minPitch, 0),
		geom.Pt(-minPitch, 0),
		geom.Pt(0, minPitch),
		geom.Pt(0, -minPitch),
	)
}

// Array returns an nx×ny regular TSV array with the given pitch,
// centered on the origin — the "very dense square TSV array" of
// Appendix A.3.
func Array(nx, ny int, pitch float64) *geom.Placement {
	pts := make([]geom.Point, 0, nx*ny)
	x0 := -pitch * float64(nx-1) / 2
	y0 := -pitch * float64(ny-1) / 2
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			pts = append(pts, geom.Pt(x0+float64(i)*pitch, y0+float64(j)*pitch))
		}
	}
	return geom.NewPlacement(pts...)
}

// Random returns n TSVs placed uniformly in a square chosen so the
// placement density (n / area) equals the requested density in µm⁻²,
// with a minimum pitch constraint enforced by dart throwing. It is
// deterministic for a given seed.
func Random(n int, density, minPitch float64, seed int64) (*geom.Placement, error) {
	if n <= 0 {
		return geom.NewPlacement(), nil
	}
	if !floats.AllFinite(density, minPitch) {
		return nil, fmt.Errorf("placegen: non-finite density %g or min pitch %g", density, minPitch)
	}
	if density <= 0 {
		return nil, fmt.Errorf("placegen: density %g must be positive", density)
	}
	side := math.Sqrt(float64(n) / density)
	if maxN := (side / minPitch) * (side / minPitch) * 0.55; float64(n) > maxN {
		return nil, fmt.Errorf("placegen: cannot pack %d TSVs at min pitch %g in %.3gx%.3g µm (max ≈ %.0f)",
			n, minPitch, side, side, maxN)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	// Grid-bucketed dart throwing keeps this O(n) per dart.
	cell := minPitch
	nxCells := int(side/cell) + 1
	buckets := make([][]int, nxCells*nxCells)
	bucketOf := func(p geom.Point) (int, int) {
		return clamp(int(p.X/cell), 0, nxCells-1), clamp(int(p.Y/cell), 0, nxCells-1)
	}
	const maxAttempts = 10000
	for len(pts) < n {
		placed := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			cand := geom.Pt(rng.Float64()*side, rng.Float64()*side)
			bx, by := bucketOf(cand)
			okPlace := true
		scan:
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					cx, cy := bx+dx, by+dy
					if cx < 0 || cy < 0 || cx >= nxCells || cy >= nxCells {
						continue
					}
					for _, idx := range buckets[cy*nxCells+cx] {
						if pts[idx].Dist(cand) < minPitch {
							okPlace = false
							break scan
						}
					}
				}
			}
			if okPlace {
				buckets[by*nxCells+bx] = append(buckets[by*nxCells+bx], len(pts))
				pts = append(pts, cand)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("placegen: dart throwing failed after %d attempts with %d/%d placed",
				maxAttempts, len(pts), n)
		}
	}
	// Center on the origin for convenience.
	half := side / 2
	for i := range pts {
		pts[i] = pts[i].Sub(geom.Pt(half, half))
	}
	return geom.NewPlacement(pts...), nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
