package placegen

import (
	"math"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func TestPair(t *testing.T) {
	p := Pair(10)
	if p.Len() != 2 {
		t.Fatal("pair should have 2 TSVs")
	}
	if !eq(p.MinPitch(), 10, 1e-12) {
		t.Errorf("pitch = %v", p.MinPitch())
	}
	mid := p.TSVs[0].Center.Add(p.TSVs[1].Center).Scale(0.5)
	if mid != geom.Pt(0, 0) {
		t.Errorf("pair not centered: %v", mid)
	}
}

func TestFiveCross(t *testing.T) {
	p := FiveCross(10)
	if p.Len() != 5 {
		t.Fatal("five-cross should have 5 TSVs")
	}
	if !eq(p.MinPitch(), 10, 1e-12) {
		t.Errorf("min pitch = %v", p.MinPitch())
	}
	// Symmetric about both axes.
	var sum geom.Point
	for _, tsv := range p.TSVs {
		sum = sum.Add(tsv.Center)
	}
	if sum.Norm() > 1e-12 {
		t.Errorf("centroid = %v", sum)
	}
}

func TestArray(t *testing.T) {
	p := Array(10, 10, 10)
	if p.Len() != 100 {
		t.Fatal("array should have 100 TSVs")
	}
	if !eq(p.MinPitch(), 10, 1e-12) {
		t.Errorf("pitch = %v", p.MinPitch())
	}
	// Density with half-pitch margin is 1e-2 µm⁻² (Appendix A.3).
	if !eq(p.Density(5), 1e-2, 1e-9) {
		t.Errorf("density = %v", p.Density(5))
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(50, 0.005, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(50, 0.005, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TSVs {
		if a.TSVs[i].Center != b.TSVs[i].Center {
			t.Fatal("same seed should give identical placement")
		}
	}
	c, err := Random(50, 0.005, 7, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.TSVs {
		if a.TSVs[i].Center != c.TSVs[i].Center {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRandomRespectsConstraints(t *testing.T) {
	n := 100
	density := 0.01
	p, err := Random(n, density, 6.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != n {
		t.Fatalf("Len = %d", p.Len())
	}
	if mp := p.MinPitch(); mp < 6.5 {
		t.Errorf("min pitch %v below constraint", mp)
	}
	// Every point within the intended square.
	side := math.Sqrt(float64(n) / density)
	for _, tsv := range p.TSVs {
		if math.Abs(tsv.Center.X) > side/2 || math.Abs(tsv.Center.Y) > side/2 {
			t.Fatalf("TSV %v outside square of side %g", tsv.Center, side)
		}
	}
}

func TestRandomRejectsImpossible(t *testing.T) {
	// 100 TSVs at density 0.01 → 100x100 µm; min pitch 11 µm can hold
	// at most ~81... the packing guard must reject clearly impossible
	// requests.
	if _, err := Random(100, 0.01, 25, 1); err == nil {
		t.Error("over-dense request should fail")
	}
	if _, err := Random(10, -1, 5, 1); err == nil {
		t.Error("negative density should fail")
	}
}

func TestRandomEmpty(t *testing.T) {
	p, err := Random(0, 0.01, 5, 1)
	if err != nil || p.Len() != 0 {
		t.Errorf("empty random: %v, %v", p, err)
	}
}
