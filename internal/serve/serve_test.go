package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// testPlacement is a 6x6 lattice at 24 µm pitch — large enough that an
// edit's influence discs (≤ ~50 µm radius) cover only part of the chip.
func testPlacement() CreateRequest {
	req := CreateRequest{Spacing: 2, Margin: 5}
	for j := 0; j < 6; j++ {
		for i := 0; i < 6; i++ {
			req.TSVs = append(req.TSVs, TSVWire{X: float64(24 * i), Y: float64(24 * j)})
		}
	}
	return req
}

func doJSON(t *testing.T, client *http.Client, method, url string, body, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp
}

// TestServeLifecycle is the end-to-end smoke test CI runs: create a
// placement, edit it, and verify the served map matches a from-scratch
// evaluation of the edited placement.
func TestServeLifecycle(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Create.
	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if created.NumTSVs != 36 || created.NumPoints == 0 || created.Mode != "full" || created.Liner != "bcb" {
		t.Fatalf("create response %+v", created)
	}

	// Health and list.
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 1 || list.Placements[0].ID != created.ID {
		t.Fatalf("list %+v", list)
	}

	// First batch: one corner move, whose influence discs cover only a
	// corner of the chip — the flush must be incremental.
	var er EditsResponse
	moveBatch := EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/edits", moveBatch, &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("edits: status %d", resp.StatusCode)
	}
	if er.Applied != 1 || er.NumTSVs != 36 {
		t.Fatalf("edits response %+v", er)
	}
	if er.DirtyTiles == 0 || er.DirtyRatio > 0.5 {
		t.Fatalf("corner move dirtied %d of %d tiles (%.2f) — not incremental", er.DirtyTiles, er.TotalTiles, er.DirtyRatio)
	}

	// Second batch: add and remove together.
	addRemove := EditsRequest{Edits: []EditWire{
		{Op: "add", X: 12, Y: 36},
		{Op: "remove", Index: 3},
	}}
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/edits", addRemove, &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("edits 2: status %d", resp.StatusCode)
	}
	if er.Applied != 2 || er.NumTSVs != 36 {
		t.Fatalf("edits 2 response %+v", er)
	}

	// Map summary + values, checked against a from-scratch analyzer over
	// the same grid and edited placement.
	var mp MapResponse
	if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+created.ID+"/map?component=xx&values=1", nil, &mp); resp.StatusCode != http.StatusOK {
		t.Fatalf("map: status %d", resp.StatusCode)
	}
	if mp.NumPoints != created.NumPoints || len(mp.Values) != mp.NumPoints {
		t.Fatalf("map response: %d points, %d values (created %d)", mp.NumPoints, len(mp.Values), created.NumPoints)
	}
	st := material.Baseline(material.BCB)
	pl := &geom.Placement{}
	for _, tw := range testPlacement().TSVs {
		pl.TSVs = append(pl.TSVs, geom.TSV{Center: geom.Pt(tw.X, tw.Y)})
	}
	grid, err := field.NewGrid(pl.Bounds(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ed := range []geom.Edit{
		{Op: geom.EditMove, Index: 0, TSV: geom.TSV{Center: geom.Pt(2, 2)}},
		{Op: geom.EditAdd, TSV: geom.TSV{Center: geom.Pt(12, 36)}},
		{Op: geom.EditRemove, Index: 3},
	} {
		if err := ed.Apply(pl, 2*st.RPrime); err != nil {
			t.Fatal(err)
		}
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]tensor.Stress, grid.Len())
	if err := an.MapInto(context.Background(), want, grid.Points(), core.ModeFull); err != nil {
		t.Fatal(err)
	}
	for i, v := range mp.Values {
		if d := math.Abs(v - want[i].XX); d > 1e-9 {
			t.Fatalf("served map differs from scratch by %g MPa at point %d", d, i)
		}
	}

	// CSV export.
	resp, err := c.Get(ts.URL + "/v1/placements/" + created.ID + "/map?component=vm&format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "x,y,stress_vm") {
		t.Fatalf("csv: status %d, head %q", resp.StatusCode, string(csv[:min(len(csv), 40)]))
	}
	if got := strings.Count(string(csv), "\n"); got != mp.NumPoints+1 {
		t.Fatalf("csv has %d lines, want %d", got, mp.NumPoints+1)
	}

	// Screen: ranked by tension, KOZ radii at least the via radius.
	var sc ScreenResponse
	if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+created.ID+"/screen?top=5&threshold=10", nil, &sc); resp.StatusCode != http.StatusOK {
		t.Fatalf("screen: status %d", resp.StatusCode)
	}
	if sc.NumTSVs != 36 || len(sc.TSVs) != 5 {
		t.Fatalf("screen response %+v", sc)
	}
	for i := 1; i < len(sc.TSVs); i++ {
		if sc.TSVs[i].MaxTension > sc.TSVs[i-1].MaxTension {
			t.Fatal("screen results not ranked by tension")
		}
	}
	if sc.KOZNMOS < st.RPrime || sc.KOZPMOS < st.RPrime {
		t.Fatalf("KOZ radii %g/%g below via radius %g", sc.KOZNMOS, sc.KOZPMOS, st.RPrime)
	}

	// Metrics page mentions our counters.
	resp, err = c.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(vars), "tsvserve") || !strings.Contains(string(vars), "edit_latency_ms") {
		t.Fatal("expvar page missing tsvserve metrics")
	}

	// Delete, then the session is gone.
	if resp := doJSON(t, c, "DELETE", ts.URL+"/v1/placements/"+created.ID, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+created.ID+"/map", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("map after delete: status %d", resp.StatusCode)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	s := NewServer(Options{MaxSessions: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created)
	base := ts.URL + "/v1/placements/" + created.ID

	cases := []struct {
		name   string
		method string
		url    string
		body   any
		status int
	}{
		{"empty placement", "POST", ts.URL + "/v1/placements", CreateRequest{}, http.StatusBadRequest},
		{"bad liner", "POST", ts.URL + "/v1/placements", CreateRequest{TSVs: []TSVWire{{X: 0, Y: 0}}, Liner: "cu"}, http.StatusUnprocessableEntity},
		{"session limit", "POST", ts.URL + "/v1/placements", testPlacement(), http.StatusTooManyRequests},
		{"unknown placement", "POST", ts.URL + "/v1/placements/nope/edits", EditsRequest{Edits: []EditWire{{Op: "remove"}}}, http.StatusNotFound},
		{"empty batch", "POST", base + "/edits", EditsRequest{}, http.StatusBadRequest},
		{"unknown op", "POST", base + "/edits", EditsRequest{Edits: []EditWire{{Op: "teleport"}}}, http.StatusBadRequest},
		{"pitch violation", "POST", base + "/edits", EditsRequest{Edits: []EditWire{{Op: "add", X: 0.5, Y: 0}}}, http.StatusUnprocessableEntity},
		{"bad component", "GET", base + "/map?component=zz", nil, http.StatusBadRequest},
		{"bad format", "GET", base + "/map?format=xml", nil, http.StatusBadRequest},
		{"mode mismatch", "GET", base + "/map?mode=ls", nil, http.StatusConflict},
		{"bad ntheta", "GET", base + "/screen?ntheta=2", nil, http.StatusBadRequest},
		{"delete unknown", "DELETE", ts.URL + "/v1/placements/nope", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var em errorResponse
		resp := doJSON(t, c, tc.method, tc.url, tc.body, &em)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, em.Error)
		} else if em.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	// The failed (atomic) batch must not have mutated the placement.
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 1 || list.Placements[0].NumTSVs != 36 {
		t.Fatalf("rejected edits mutated the session: %+v", list)
	}
}

// TestServeAtomicBatch pins the rehearsal semantics: a batch whose last
// edit is invalid applies none of its edits.
func TestServeAtomicBatch(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created)
	batch := EditsRequest{Edits: []EditWire{
		{Op: "move", Index: 5, X: 122, Y: 2}, // valid alone
		{Op: "add", X: 122.5, Y: 2},          // collides with the moved via
	}}
	var em errorResponse
	resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/edits", batch, &em)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("batch: status %d (%s)", resp.StatusCode, em.Error)
	}
	if !strings.Contains(em.Error, "edit 1") {
		t.Fatalf("error %q does not name the failing edit", em.Error)
	}
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if list.Placements[0].NumTSVs != 36 || list.Placements[0].Pending != 0 {
		t.Fatalf("failed batch left state behind: %+v", list.Placements[0])
	}
}
