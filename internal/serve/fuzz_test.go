package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tsvstress/internal/aging"
)

// FuzzDecodeAging exercises the aging request decoder with arbitrary
// bodies: it must never panic, must reject non-finite or negative time
// steps, and any accepted request must normalize to a config the
// engine's own validation accepts (the decoder and the engine must
// never disagree about what is runnable).
func FuzzDecodeAging(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"dtSeconds":1e6,"maxTimeSeconds":1e10}`,
		`{"dtSeconds":-1}`,
		`{"dtSeconds":1e400}`,
		`{"minDtSeconds":2e6,"dtSeconds":1e6}`,
		`{"unitCurrentA":0.00086,"maxParallelism":16,"workers":4,"top":-1}`,
		`{"maxParallelism":3}`,
		`{"ntheta":9999}`,
		`{"top":-7}`,
		`{"unknown":1}`,
		`{"dtSeconds":"fast"}`,
		`{`,
		`null`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req, cfg, drive, err := decodeAging(strings.NewReader(body))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("accepted request yields invalid config: %v", err)
		}
		if err := aging.ValidateDrive(drive); err != nil {
			t.Fatalf("accepted request yields invalid drive: %v", err)
		}
		if !(cfg.DTSeconds > 0) || !(cfg.MinDTSeconds > 0) || !(cfg.MaxTimeSeconds > 0) {
			t.Fatalf("accepted config has non-positive stepping: %+v", cfg)
		}
		if req.NTheta < 4 || req.NTheta > 1024 {
			t.Fatalf("accepted ntheta %d outside [4, 1024]", req.NTheta)
		}
		if req.Workers < 0 || req.Top < -1 {
			t.Fatalf("accepted fan-out bounds %d/%d", req.Workers, req.Top)
		}
	})
}

// FuzzDecodeEdits exercises the edit-batch decoder — the surface both
// the HTTP handler and WAL replay parse through — with arbitrary
// bodies: it must never panic, and any accepted batch must survive the
// journal round trip (marshal as a journalRecord, decode again) with
// the same edit count, since that is exactly what crash recovery does.
func FuzzDecodeEdits(f *testing.F) {
	seeds := []string{
		`{"edits":[{"op":"add","x":12,"y":36}]}`,
		`{"edits":[{"op":"move","index":0,"x":2,"y":2,"name":"V0b"},{"op":"remove","index":3}]}`,
		`{"edits":[]}`,
		`{"edits":[{"op":"teleport"}]}`,
		`{"edits":[{"op":"add","x":1e308,"y":-1e308}]}`,
		`{"edits":[{"op":"add","x":0,"y":0,"extra":1}]}`,
		`{`,
		`[]`,
		`null`,
		`{"edits":[{"op":"ADD","x":1,"y":2}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		edits, wires, err := decodeEdits(strings.NewReader(body))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(edits) == 0 || len(edits) != len(wires) {
			t.Fatalf("accepted batch has %d edits, %d wires", len(edits), len(wires))
		}
		// The WAL journals the wire form; replay must accept it again
		// and reproduce the same batch shape.
		payload, err := json.Marshal(journalRecord{Edits: wires})
		if err != nil {
			t.Fatalf("journal marshal of accepted batch failed: %v", err)
		}
		var jr journalRecord
		if err := json.Unmarshal(payload, &jr); err != nil {
			t.Fatalf("journal unmarshal failed: %v", err)
		}
		if len(jr.Edits) != len(wires) {
			t.Fatalf("journal round trip changed batch size: %d vs %d", len(jr.Edits), len(wires))
		}
		for i := range jr.Edits {
			if _, err := jr.Edits[i].toEdit(); err != nil {
				t.Fatalf("replayed edit %d no longer decodes: %v", i, err)
			}
		}
		// The decoder itself re-accepts its own journaled form.
		var buf bytes.Buffer
		buf.Write(payload)
		if _, _, err := decodeEdits(&buf); err != nil {
			t.Fatalf("decodeEdits rejects its own journal form: %v", err)
		}
	})
}
