package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeEdits exercises the edit-batch decoder — the surface both
// the HTTP handler and WAL replay parse through — with arbitrary
// bodies: it must never panic, and any accepted batch must survive the
// journal round trip (marshal as a journalRecord, decode again) with
// the same edit count, since that is exactly what crash recovery does.
func FuzzDecodeEdits(f *testing.F) {
	seeds := []string{
		`{"edits":[{"op":"add","x":12,"y":36}]}`,
		`{"edits":[{"op":"move","index":0,"x":2,"y":2,"name":"V0b"},{"op":"remove","index":3}]}`,
		`{"edits":[]}`,
		`{"edits":[{"op":"teleport"}]}`,
		`{"edits":[{"op":"add","x":1e308,"y":-1e308}]}`,
		`{"edits":[{"op":"add","x":0,"y":0,"extra":1}]}`,
		`{`,
		`[]`,
		`null`,
		`{"edits":[{"op":"ADD","x":1,"y":2}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		edits, wires, err := decodeEdits(strings.NewReader(body))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(edits) == 0 || len(edits) != len(wires) {
			t.Fatalf("accepted batch has %d edits, %d wires", len(edits), len(wires))
		}
		// The WAL journals the wire form; replay must accept it again
		// and reproduce the same batch shape.
		payload, err := json.Marshal(journalRecord{Edits: wires})
		if err != nil {
			t.Fatalf("journal marshal of accepted batch failed: %v", err)
		}
		var jr journalRecord
		if err := json.Unmarshal(payload, &jr); err != nil {
			t.Fatalf("journal unmarshal failed: %v", err)
		}
		if len(jr.Edits) != len(wires) {
			t.Fatalf("journal round trip changed batch size: %d vs %d", len(jr.Edits), len(wires))
		}
		for i := range jr.Edits {
			if _, err := jr.Edits[i].toEdit(); err != nil {
				t.Fatalf("replayed edit %d no longer decodes: %v", i, err)
			}
		}
		// The decoder itself re-accepts its own journaled form.
		var buf bytes.Buffer
		buf.Write(payload)
		if _, _, err := decodeEdits(&buf); err != nil {
			t.Fatalf("decodeEdits rejects its own journal form: %v", err)
		}
	})
}
