package serve

import (
	"expvar"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestAgingEndpoint(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	var ar AgingResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/aging",
		AgingRequest{Top: 10}, &ar); resp.StatusCode != http.StatusOK {
		t.Fatalf("aging: status %d", resp.StatusCode)
	}
	if ar.NumTSVs != 36 || ar.Censored != 0 {
		t.Fatalf("aging response %+v", ar)
	}
	if len(ar.TSVs) != 10 {
		t.Fatalf("top 10 requested, got %d vias", len(ar.TSVs))
	}
	for i := 1; i < len(ar.TSVs); i++ {
		if ar.TSVs[i].LifetimeSeconds < ar.TSVs[i-1].LifetimeSeconds {
			t.Fatalf("response vias not sorted worst-first: %g before %g",
				ar.TSVs[i-1].LifetimeSeconds, ar.TSVs[i].LifetimeSeconds)
		}
	}
	if !(ar.MinLifetimeSeconds > 0) || ar.MinLifetimeSeconds > ar.MeanLifetimeSeconds {
		t.Fatalf("lifetime stats not ordered: %+v", ar)
	}
	for _, v := range ar.TSVs {
		if v.ExtrusionRisk < 0 || v.ExtrusionRisk > 1 {
			t.Fatalf("via %d risk %g outside [0,1]", v.Index, v.ExtrusionRisk)
		}
	}

	// Determinism across requests: same placement, same answer.
	var ar2 AgingResponse
	doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/aging", AgingRequest{Top: 10}, &ar2)
	if ar2.MinLifetimeSeconds != ar.MinLifetimeSeconds || ar2.MeanLifetimeSeconds != ar.MeanLifetimeSeconds {
		t.Fatalf("aging endpoint not deterministic: %+v vs %+v", ar.MinLifetimeSeconds, ar2.MinLifetimeSeconds)
	}

	// The per-endpoint counters saw the route and the in-flight gauge
	// drained back to zero.
	if v, ok := metricEndpointRequests.Get("aging").(*expvar.Int); !ok || v.Value() < 2 {
		t.Fatalf("endpoint_requests_total[aging] = %v", metricEndpointRequests.Get("aging"))
	}
	if v, ok := metricEndpointInFlight.Get("aging").(*expvar.Int); !ok || v.Value() != 0 {
		t.Fatalf("endpoint_in_flight[aging] = %v after requests drained", metricEndpointInFlight.Get("aging"))
	}
}

func TestAgingValidation(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created)
	url := ts.URL + "/v1/placements/" + created.ID + "/aging"

	for _, body := range []string{
		`{"dtSeconds": -1}`,
		`{"dtSeconds": 1e400}`,
		`{"maxTimeSeconds": -5}`,
		`{"unitCurrentA": -0.001}`,
		`{"maxParallelism": 3}`,
		`{"ntheta": 2}`,
		`{"workers": -1}`,
		`{"top": -7}`,
		`{"unknownField": 1}`,
		`{"dtSeconds": "fast"}`,
	} {
		resp, err := c.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown placement → 404.
	resp, err := c.Post(ts.URL+"/v1/placements/nope/aging", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown placement: status %d, want 404", resp.StatusCode)
	}
}

// TestAgingCancelMidSimulation drills the acceptance criterion: a
// deadline expiring while the integration loops are running must abort
// the simulation cooperatively and answer 504.
func TestAgingCancelMidSimulation(t *testing.T) {
	s := NewServer(Options{RequestTimeout: time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	// A 50-second step over a 10⁸-second horizon pins every via at its
	// 2·10⁶-step budget regardless of its stress state (the EM phase
	// plus the fixed extrusion horizon always exhaust it), so the 36-via
	// simulation is deterministically far more work than the one-second
	// deadline allows and the cancellation fires inside the integration
	// loops.
	body := AgingRequest{DTSeconds: 50, MaxTimeSeconds: 1e8}
	var errResp errorResponse
	resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/aging", body, &errResp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("mid-simulation deadline: status %d (%+v), want 504", resp.StatusCode, errResp)
	}
	if !strings.Contains(errResp.Error, "canceled") {
		t.Fatalf("504 body does not name the cancellation: %q", errResp.Error)
	}

	// A canceled simulation must not quarantine the session: it stays
	// listed clean and keeps serving. (TestAgingEndpoint covers the
	// success path under a generous deadline.)
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 1 || list.Placements[0].Quarantined != "" {
		t.Fatalf("session after canceled aging: %+v", list.Placements)
	}
}
