// Package serve exposes the incremental stress-map engine as a
// long-lived JSON-over-HTTP service — the ECO loop as an API. Each
// placement uploaded through POST /v1/placements becomes a session
// holding an incr.Engine (analyzer, tile partition, current field map);
// edits stream in through POST /v1/placements/{id}/edits and flush
// incrementally; GET .../map and GET .../screen read the maintained
// field without recomputation.
//
// Concurrency model: the session table is guarded by one mutex; every
// session serializes its own engine access with a per-session mutex, so
// two placements evaluate concurrently while edits to one placement are
// ordered. Compute-bearing requests pass an admission semaphore
// (Options.MaxInFlight) and observe the request context: a request that
// cannot start before its deadline (or before AdmissionWait elapses) is
// rejected with 503 instead of queueing unboundedly — load sheds at the
// door, not in the middle of a half-applied edit batch.
//
// Observability: expvar metrics under "tsvserve" (see metrics.go) —
// edit-latency histogram, dirty-tile ratio of the last flush, shared
// coefficient-cache stats, in-flight and rejected request counts.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tsvstress/internal/incr"
	"tsvstress/internal/material"
)

// Options configures the service. Zero values select production-safe
// defaults.
type Options struct {
	// MaxSessions bounds the number of live placement sessions
	// (default 16). Each session pins its field map and tile partition
	// in memory.
	MaxSessions int
	// MaxTSVs bounds the TSV count of one placement (default 20000).
	MaxTSVs int
	// MaxPoints bounds the simulation-point count of one session
	// (default 2,000,000).
	MaxPoints int
	// MaxInFlight bounds concurrently executing compute requests
	// (default 2×GOMAXPROCS is excessive for tile-parallel work; the
	// default is 4).
	MaxInFlight int
	// AdmissionWait is how long a request may wait for an execution
	// slot before 503 (default 5s; the request context's own deadline
	// applies too, whichever is sooner).
	AdmissionWait time.Duration
	// RequestTimeout is the per-request compute deadline applied when
	// the incoming context has none (default 60s).
	RequestTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.MaxTSVs <= 0 {
		o.MaxTSVs = 20000
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 2_000_000
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.AdmissionWait <= 0 {
		o.AdmissionWait = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	return o
}

// Server is the service state: the session table and the admission
// semaphore. Create one with NewServer and mount Handler on an
// http.Server.
type Server struct {
	opt Options

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
}

// session is one live placement: an engine plus the bookkeeping the
// handlers need. All engine access happens under mu.
type session struct {
	mu      sync.Mutex
	id      string
	engine  *incr.Engine
	st      material.Structure
	liner   string
	mode    string
	created time.Time
}

// NewServer builds a service with no sessions.
func NewServer(opt Options) *Server {
	return &Server{opt: opt.withDefaults(), sessions: make(map[string]*session)}
}

// Handler returns the service's HTTP handler, including the expvar
// endpoint at /debug/vars.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/placements", s.instrument("create", s.handleCreate))
	mux.HandleFunc("GET /v1/placements", s.handleList)
	mux.HandleFunc("POST /v1/placements/{id}/edits", s.instrument("edits", s.handleEdits))
	mux.HandleFunc("GET /v1/placements/{id}/map", s.instrument("map", s.handleMap))
	mux.HandleFunc("GET /v1/placements/{id}/screen", s.instrument("screen", s.handleScreen))
	mux.HandleFunc("DELETE /v1/placements/{id}", s.handleDelete)
	mux.Handle("GET /debug/vars", expvarHandler())
	return mux
}

// NumSessions returns the live session count.
func (s *Server) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// instrument wraps a compute-bearing handler with admission control,
// the default compute deadline and the request counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metricRequests.Add(1)
		ctx := r.Context()
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := s.admit(ctx)
		if err != nil {
			metricRejects.Add(1)
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("%s: server at capacity (%d in flight): %v", name, s.opt.MaxInFlight, err))
			return
		}
		defer release()
		metricInFlight.Add(1)
		defer metricInFlight.Add(-1)
		h(w, r)
	}
}

// admissionSlots is the process-wide compute semaphore, sized lazily
// from the first server's options (tests creating several servers
// share it; sizing races are harmless because the channel is only
// created once).
var (
	admitOnce sync.Once
	admitCh   chan struct{}
)

func (s *Server) admit(ctx context.Context) (release func(), err error) {
	admitOnce.Do(func() { admitCh = make(chan struct{}, s.opt.MaxInFlight) })
	wait := time.NewTimer(s.opt.AdmissionWait)
	defer wait.Stop()
	select {
	case admitCh <- struct{}{}:
		return func() { <-admitCh }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-wait.C:
		return nil, fmt.Errorf("no slot within %v", s.opt.AdmissionWait)
	}
}

// getSession looks up a session by the request's {id} path value.
func (s *Server) getSession(r *http.Request) (*session, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	ses, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown placement %q", id)
	}
	return ses, nil
}

// addSession registers a new session, enforcing MaxSessions.
func (s *Server) addSession(ses *session) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) >= s.opt.MaxSessions {
		return "", fmt.Errorf("session limit %d reached; DELETE an existing placement first", s.opt.MaxSessions)
	}
	s.nextID++
	id := "p" + strconv.Itoa(s.nextID)
	ses.id = id
	s.sessions[id] = ses
	metricSessions.Set(int64(len(s.sessions)))
	return id, nil
}

func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return false
	}
	delete(s.sessions, id)
	metricSessions.Set(int64(len(s.sessions)))
	return true
}
