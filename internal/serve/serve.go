// Package serve exposes the incremental stress-map engine as a
// long-lived JSON-over-HTTP service — the ECO loop as an API. Each
// placement uploaded through POST /v1/placements becomes a session
// holding an incr.Engine (analyzer, tile partition, current field map);
// edits stream in through POST /v1/placements/{id}/edits and flush
// incrementally; GET .../map and GET .../screen read the maintained
// field without recomputation.
//
// Concurrency model: the session table is guarded by one mutex; every
// session serializes its own engine access with a per-session mutex, so
// two placements evaluate concurrently while edits to one placement are
// ordered. Lock order is ses.mu before Server.mu and never the
// reverse: compute handlers quarantine (Server.mu) while holding their
// session's lock, so no path may acquire a ses.mu while holding
// Server.mu — table readers snapshot under Server.mu and lock each
// session only after releasing it. Compute-bearing requests pass an
// admission semaphore
// (Options.MaxInFlight) and observe the request context: a request that
// cannot start before its deadline (or before AdmissionWait elapses) is
// rejected with 503 instead of queueing unboundedly — load sheds at the
// door, not in the middle of a half-applied edit batch.
//
// Fault tolerance (DESIGN.md §13): with Options.WALDir set, every
// accepted edit batch is appended to a per-session CRC-framed journal
// (internal/wal) and synced before the 200 goes out, with periodic
// placement snapshots; Recover rebuilds the sessions after a crash by
// checkpoint-and-replay. Deadlines cancel evaluation cooperatively per
// tile (core.ErrCanceled → 504). Handler and kernel panics are
// contained: the offending session is quarantined (503 on later
// compute; DELETE still works) and the process lives on. Under
// admission-queue pressure, full-mode flushes degrade to Stage-I-only
// (header X-Tsvserve-Degraded) and heal on the next calm request.
//
// Observability: expvar metrics under "tsvserve" (see metrics.go) —
// edit-latency histogram, dirty-tile ratio of the last flush, shared
// coefficient-cache stats, in-flight/rejected/panic/WAL counters.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsvstress/internal/cluster"
	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/incr"
	"tsvstress/internal/material"
	"tsvstress/internal/prof"
	"tsvstress/internal/tensor"
	"tsvstress/internal/wal"
)

// Options configures the service. Zero values select production-safe
// defaults.
type Options struct {
	// MaxSessions bounds the number of live placement sessions
	// (default 16). Each session pins its field map and tile partition
	// in memory.
	MaxSessions int
	// MaxTSVs bounds the TSV count of one placement (default 20000).
	MaxTSVs int
	// MaxPoints bounds the simulation-point count of one session
	// (default 2,000,000).
	MaxPoints int
	// MaxInFlight bounds concurrently executing compute requests
	// (default 2×GOMAXPROCS is excessive for tile-parallel work; the
	// default is 4).
	MaxInFlight int
	// AdmissionWait is how long a request may wait for an execution
	// slot before 503 (default 5s; the request context's own deadline
	// applies too, whichever is sooner).
	AdmissionWait time.Duration
	// RequestTimeout is the per-request compute deadline applied when
	// the incoming context has none (default 60s).
	RequestTimeout time.Duration
	// WALDir enables crash-safe sessions: every accepted edit batch is
	// journaled (and synced) under WALDir/<session-id>/ before it is
	// acknowledged, with a placement snapshot every SnapshotEvery
	// batches. Empty disables durability (sessions die with the
	// process). Call Recover at startup to rebuild journaled sessions.
	WALDir string
	// SnapshotEvery is the number of accepted edit batches between
	// placement snapshots (default 8); snapshots bound journal length
	// and recovery replay time.
	SnapshotEvery int
	// ShedQueueDepth is the number of compute requests waiting for an
	// admission slot at which the service starts degrading full-mode
	// flushes to Stage-I-only (default 2×MaxInFlight). Degraded
	// responses carry the X-Tsvserve-Degraded header and heal on the
	// next un-pressured request.
	ShedQueueDepth int
	// MaxLiveSessions bounds the sessions holding a live engine in
	// memory (0 disables eviction). Requires WALDir: when a create,
	// import or hydration would exceed the bound, the least-recently
	// flushed durable session is evicted — final snapshot, journal
	// closed, engine released — and transparently rehydrated from its
	// WAL on the next request. MaxSessions still bounds the total
	// (live + evicted).
	MaxLiveSessions int
	// ClusterWorkers lists tsvworker addresses (host:port). When
	// non-empty, session flushes evaluate their dirty tiles across the
	// cluster tier (internal/cluster) instead of in-process; WAL,
	// admission, degradation and cancellation semantics are unchanged,
	// and a cluster failure falls back to local evaluation (counted in
	// the cluster_fallbacks_total metric). Empty keeps everything
	// in-process.
	ClusterWorkers []string
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16
	}
	if o.MaxTSVs <= 0 {
		o.MaxTSVs = 20000
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 2_000_000
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.AdmissionWait <= 0 {
		o.AdmissionWait = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8
	}
	if o.ShedQueueDepth <= 0 {
		o.ShedQueueDepth = 2 * o.MaxInFlight
	}
	return o
}

// Server is the service state: the session table and the admission
// semaphore. Create one with NewServer; with WAL durability enabled,
// call Recover before serving, then mount Handler on an http.Server
// and Close on the way out.
//
// Lock order: the session table lock (Server.mu) is a leaf — it is
// never held while acquiring a session's lock. Handlers snapshot the
// *session under Server.mu, release it, then lock the session. The
// directive below lets tsvlint prove the invariant statically (the
// pre-fix shape — iterating the table while locking each session —
// deadlocked against handlers holding a session lock while waiting on
// the table).
//
//tsvlint:lockorder session.mu < Server.mu
type Server struct {
	opt Options

	// coord is the cluster coordinator when Options.ClusterWorkers is
	// set, else nil (all evaluation in-process).
	coord *cluster.Coordinator

	// ready gates /readyz: set once recovery (a no-op without a WAL
	// directory) has completed.
	ready atomic.Bool

	mu       sync.Mutex
	sessions map[string]*session
	// reserved counts session slots handed out by reserveID but not yet
	// published: a MaxSessions slot stays held while handleCreate opens
	// the session's journal, before anything is visible to requests.
	reserved int
	nextID   int
	// evicted names sessions whose engine was released to disk
	// (lifecycle.go): their WAL directory is the session until a
	// request hydrates it back. Guarded by mu.
	evicted map[string]bool
	// hydrating serializes rehydration per session id: the first
	// request builds, later ones wait on the channel. Guarded by mu.
	hydrating map[string]chan struct{}
}

// session is one live placement: an engine plus the bookkeeping the
// handlers need. Engine access happens under mu; the quarantined
// reason is guarded by the server mutex instead, so the panic-recovery
// middleware can set it without waiting on a wedged session.
type session struct {
	mu      sync.Mutex
	id      string
	engine  *incr.Engine
	st      material.Structure
	liner   string
	mode    string
	created time.Time
	// meta is the session's birth certificate (the normalized create
	// request), kept in memory so a session without a WAL can still be
	// exported (lifecycle.go synthesizes its bundle from it).
	meta metaRecord
	// lastUsed is the unix-nano time of the last compute access — the
	// LRU key eviction ranks by. Atomic so the eviction scan can read
	// it without taking every session's lock.
	lastUsed atomic.Int64
	// evicted flips once lifecycle.go released this session's engine:
	// a request that raced the eviction (holding a stale *session)
	// must re-resolve instead of computing against a closed journal.
	// Guarded by mu.
	evicted bool
	// migrating is the export fence: set by export?fence=1, it refuses
	// further compute on this replica while the gateway ships the
	// session elsewhere. Guarded by mu.
	migrating bool

	// log is the session's WAL (nil when durability is disabled);
	// operated under mu.
	log *wal.Log
	// batchesSinceSnap counts accepted batches since the last
	// snapshot; operated under mu.
	batchesSinceSnap int

	// eval is the session's cluster evaluator when the server runs with
	// a worker fleet (nil otherwise); closed with the session to free
	// worker-side job state.
	eval *cluster.SessionEvaluator

	// quarantined is the non-empty reason this session refuses compute
	// requests (contained panic, WAL write failure, replay divergence).
	// Guarded by Server.mu.
	quarantined string
}

// NewServer builds a service with no sessions. It performs no I/O;
// call Recover to load journaled sessions from Options.WALDir. With
// Options.ClusterWorkers set it also starts the cluster coordinator
// (its heartbeats register workers as they come up; an empty fleet
// degrades to local evaluation per session, it does not fail startup).
func NewServer(opt Options) *Server {
	s := &Server{
		opt:       opt.withDefaults(),
		sessions:  make(map[string]*session),
		evicted:   make(map[string]bool),
		hydrating: make(map[string]chan struct{}),
	}
	if len(s.opt.ClusterWorkers) > 0 {
		if coord, err := cluster.NewCoordinator(s.opt.ClusterWorkers, cluster.CoordinatorOptions{}); err == nil {
			s.coord = coord
			clusterCoord.Store(coord)
		}
	}
	// Without a WAL there is nothing to recover: the server is ready
	// the moment it exists.
	s.ready.Store(s.opt.WALDir == "")
	return s
}

// attachCluster routes a new session's flush evaluations through the
// cluster tier (no-op without a fleet). The evaluator itself falls back
// to in-process evaluation when the cluster cannot complete a flush, so
// attaching never makes a session less available.
func (s *Server) attachCluster(ses *session) {
	if s.coord == nil {
		return
	}
	ev := s.coord.NewSessionEvaluator()
	ev.OnFallback = func(error) { metricClusterFallbacks.Add(1) }
	ses.eval = ev
	ses.engine.SetTileEvaluator(countingEvaluator{ev})
}

// countingEvaluator counts cluster-routed flush evaluations on their
// way into the session evaluator.
type countingEvaluator struct {
	ev *cluster.SessionEvaluator
}

func (ce countingEvaluator) EvalTiles(ctx context.Context, an *core.Analyzer, dst []tensor.Stress, pts []geom.Point, tl *core.Tiling, ids []int32, mode core.Mode) error {
	metricClusterFlushes.Add(1)
	return ce.ev.EvalTiles(ctx, an, dst, pts, tl, ids, mode)
}

// Handler returns the service's HTTP handler, including the expvar
// endpoint at /debug/vars and the pprof profile tree at /debug/pprof/
// (CPU-profiling a live server is how the tile kernels were tuned; see
// DESIGN.md §15). Every route runs inside the panic-recovery
// middleware: a handler or kernel panic becomes a 500 and a
// quarantined session, never a dead process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("POST /v1/placements", s.instrument("create", s.handleCreate))
	mux.HandleFunc("GET /v1/placements", s.handleList)
	mux.HandleFunc("POST /v1/placements/{id}/edits", s.instrument("edits", s.handleEdits))
	mux.HandleFunc("GET /v1/placements/{id}/map", s.instrument("map", s.handleMap))
	mux.HandleFunc("GET /v1/placements/{id}/screen", s.instrument("screen", s.handleScreen))
	mux.HandleFunc("POST /v1/placements/{id}/aging", s.instrument("aging", s.handleAging))
	mux.HandleFunc("GET /v1/placements/{id}/export", s.handleExport)
	mux.HandleFunc("POST /v1/placements/{id}/import", s.instrument("import", s.handleImport))
	mux.HandleFunc("DELETE /v1/placements/{id}", s.handleDelete)
	mux.Handle("GET /debug/vars", expvarHandler())
	mux.Handle("GET /debug/pprof/", prof.Handler())
	return s.withRecovery(mux)
}

// NumSessions returns the live session count.
func (s *Server) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// withRecovery converts a panic escaping any handler into a 500
// response, a metric increment and — when the request targets a
// session — a quarantine of that session, instead of a dead process.
func (s *Server) withRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			metricPanics.Add(1)
			reason := fmt.Sprintf("handler panic on %s %s: %v", r.Method, r.URL.Path, rec)
			if id := sessionIDFromPath(r.URL.Path); id != "" {
				s.quarantine(id, reason)
			}
			// Best effort: if the handler already streamed a body this
			// header write is a no-op, and the truncated body is the
			// remaining signal.
			writeError(w, http.StatusInternalServerError, reason)
		}()
		h.ServeHTTP(w, r)
	})
}

// sessionIDFromPath extracts the {id} segment of /v1/placements/{id}/…
// without relying on mux path values (the recovery middleware sits
// outside the mux).
func sessionIDFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/placements/")
	if !ok {
		return ""
	}
	id, _, _ := strings.Cut(rest, "/")
	return id
}

// quarantine marks a session as refusing compute requests. The first
// reason wins; later quarantines of the same session are no-ops.
func (s *Server) quarantine(id, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses, ok := s.sessions[id]
	if !ok || ses.quarantined != "" {
		return
	}
	ses.quarantined = reason
	metricQuarantined.Set(int64(s.quarantinedLocked()))
}

// quarantinedLocked counts quarantined sessions; caller holds s.mu.
func (s *Server) quarantinedLocked() int {
	n := 0
	for _, ses := range s.sessions {
		if ses.quarantined != "" {
			n++
		}
	}
	return n
}

// quarantinedCount counts quarantined sessions.
func (s *Server) quarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantinedLocked()
}

// instrument wraps a compute-bearing handler with admission control,
// the default compute deadline and the request counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metricRequests.Add(1)
		metricEndpointRequests.Add(name, 1)
		ctx := r.Context()
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opt.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := s.admit(ctx)
		if err != nil {
			metricRejects.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("%s: server at capacity (%d in flight): %v", name, s.opt.MaxInFlight, err))
			return
		}
		defer release()
		metricInFlight.Add(1)
		metricEndpointInFlight.Add(name, 1)
		defer func() {
			metricEndpointInFlight.Add(name, -1)
			metricInFlight.Add(-1)
		}()
		h(w, r)
	}
}

// admissionSlots is the process-wide compute semaphore, sized lazily
// from the first server's options (tests creating several servers
// share it; sizing races are harmless because the channel is only
// created once).
var (
	admitOnce sync.Once
	admitCh   chan struct{}
	// admitWaiting counts requests blocked on an admission slot — the
	// queue-pressure signal the degradation ladder keys off.
	admitWaiting atomic.Int64
)

func (s *Server) admit(ctx context.Context) (release func(), err error) {
	admitOnce.Do(func() { admitCh = make(chan struct{}, s.opt.MaxInFlight) })
	admitWaiting.Add(1)
	defer admitWaiting.Add(-1)
	wait := time.NewTimer(s.opt.AdmissionWait)
	defer wait.Stop()
	select {
	case admitCh <- struct{}{}:
		return func() { <-admitCh }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-wait.C:
		return nil, fmt.Errorf("no slot within %v", s.opt.AdmissionWait)
	}
}

// shedding reports whether the admission queue is deep enough that
// full-mode flushes should degrade to Stage I only.
func (s *Server) shedding() bool {
	return int(admitWaiting.Load()) >= s.opt.ShedQueueDepth
}

// retryAfterSeconds derives the Retry-After value for a rejected
// request: the current admission queue, plus the rejected request
// itself, drains at MaxInFlight-way parallelism priced at the last
// minute's mean compute latency (a 250ms prior before any
// observations). Clamped to [1, 60] so clients neither hammer nor
// stall.
func (s *Server) retryAfterSeconds() int {
	mean := windowMeanLatency(250 * time.Millisecond)
	queued := admitWaiting.Load() + 1
	wait := time.Duration(queued) * mean / time.Duration(s.opt.MaxInFlight)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// quarantinedError distinguishes "session exists but is fenced off"
// from "no such session" so the handler can answer 503, not 404.
type quarantinedError struct {
	id     string
	reason string
}

func (e *quarantinedError) Error() string {
	return fmt.Sprintf("placement %q is quarantined (%s); DELETE it and re-create", e.id, e.reason)
}

// reserveID allocates a session id and holds a MaxSessions slot for it
// without making anything visible: no request can observe the session
// until publishSession runs, by which point its journal (when
// durability is on) is already open. A non-empty requested id (the
// gateway's routing key, or an import) is used verbatim after
// validation; otherwise the server mints the next "p<n>" id.
func (s *Server) reserveID(requested string) (string, error) {
	if requested != "" {
		if err := validateSessionID(requested); err != nil {
			return "", err
		}
		// The server's own p<n> namespace is fenced off from requested
		// ids, so a client-chosen id can never collide with a minted one.
		if _, ok := parseSessionID(requested); ok {
			return "", &invalidIDError{msg: fmt.Sprintf(
				"session id %q collides with the server's p<n> namespace", requested)}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions)+len(s.evicted)+s.reserved >= s.opt.MaxSessions {
		return "", fmt.Errorf("session limit %d reached; DELETE an existing placement first", s.opt.MaxSessions)
	}
	if requested != "" {
		if _, ok := s.sessions[requested]; ok || s.evicted[requested] {
			return "", &idTakenError{id: requested}
		}
		s.reserved++
		return requested, nil
	}
	s.reserved++
	s.nextID++
	return "p" + strconv.Itoa(s.nextID), nil
}

// reserveImported reserves an explicitly shipped session id. Unlike
// reserveID it admits the server's own p<n> namespace — a session
// minted on one replica keeps its id when it migrates — advancing the
// mint counter past it so a future create can never collide with it.
func (s *Server) reserveImported(id string) error {
	if err := validateSessionID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions)+len(s.evicted)+s.reserved >= s.opt.MaxSessions {
		return fmt.Errorf("session limit %d reached; DELETE an existing placement first", s.opt.MaxSessions)
	}
	if _, ok := s.sessions[id]; ok || s.evicted[id] {
		return &idTakenError{id: id}
	}
	if n, ok := parseSessionID(id); ok && n > s.nextID {
		s.nextID = n
	}
	s.reserved++
	return nil
}

// idTakenError distinguishes "requested id already exists" (409) from
// capacity exhaustion (429).
type idTakenError struct{ id string }

func (e *idTakenError) Error() string {
	return fmt.Sprintf("placement %q already exists on this replica", e.id)
}

// invalidIDError marks a requested session id the server refuses on
// its face (charset, length, namespace) — a client error (422), not
// capacity exhaustion (429).
type invalidIDError struct{ msg string }

func (e *invalidIDError) Error() string { return e.msg }

// validateSessionID vets an externally supplied session id: it becomes
// a WAL directory name and a URL path segment, so the charset is
// conservative.
func validateSessionID(id string) error {
	if len(id) == 0 || len(id) > 64 {
		return &invalidIDError{msg: fmt.Sprintf("session id must be 1-64 characters, got %d", len(id))}
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || (c == '.' && i > 0) {
			continue
		}
		return &invalidIDError{msg: fmt.Sprintf("session id %q has invalid character %q", id, c)}
	}
	return nil
}

// publishSession makes a reserved session visible to requests.
func (s *Server) publishSession(id string, ses *session) {
	ses.lastUsed.Store(time.Now().UnixNano())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved--
	ses.id = id
	s.sessions[id] = ses
	registerSessionQueue(id)
	metricSessions.Set(int64(len(s.sessions)))
}

// unreserve releases a slot taken by reserveID for a session that will
// never publish (its journal failed to initialize).
func (s *Server) unreserve() {
	s.mu.Lock()
	s.reserved--
	s.mu.Unlock()
}

func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	ses, ok := s.sessions[id]
	if !ok {
		// An evicted session is just its WAL directory; deleting it is
		// deleting the directory.
		if s.evicted[id] {
			delete(s.evicted, id)
			metricEvictedSessions.Set(int64(len(s.evicted)))
			s.mu.Unlock()
			_ = wal.Remove(s.sessionDir(id))
			return true
		}
		s.mu.Unlock()
		return false
	}
	delete(s.sessions, id)
	dropSessionQueue(id)
	metricSessions.Set(int64(len(s.sessions)))
	metricQuarantined.Set(int64(s.quarantinedLocked()))
	s.mu.Unlock()
	// Close and delete the journal outside the table lock; the session
	// is already unreachable.
	ses.mu.Lock()
	if ses.log != nil {
		_ = ses.log.Close()
		ses.log = nil
		_ = wal.Remove(filepath.Join(s.opt.WALDir, id))
	}
	if ses.eval != nil {
		ses.eval.Close()
		ses.eval = nil
	}
	ses.mu.Unlock()
	return true
}

// lockSession acquires the session's mutex while exporting the
// session's compute queue depth (requests holding or waiting on the
// lock) through the session_queue_depth expvar.
func lockSession(ses *session) (unlock func()) {
	leave := enterSessionQueue(ses.id)
	ses.mu.Lock()
	return func() {
		ses.mu.Unlock()
		leave()
	}
}

// sessionDir returns the WAL directory of a session id.
func (s *Server) sessionDir(id string) string {
	return filepath.Join(s.opt.WALDir, id)
}

// Close drains the sessions and persists their WAL state: for every
// session it takes the per-session lock (waiting out any in-flight
// request), writes a final snapshot when batches are owed, and closes
// the journal. It returns once every session drained or ctx expired —
// in the latter case naming how many sessions were still busy.
// Journaled state is already durable before Close runs (Append syncs
// before acknowledging), so a timed-out drain loses no acknowledged
// edits; the final snapshot only shortens the next recovery's replay.
func (s *Server) Close(ctx context.Context) error {
	if s.coord != nil {
		s.coord.Close()
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		sessions = append(sessions, ses)
	}
	s.mu.Unlock()
	done := make(chan struct{}, len(sessions))
	for _, ses := range sessions {
		go func(ses *session) {
			defer func() { done <- struct{}{} }()
			ses.mu.Lock()
			defer ses.mu.Unlock()
			if ses.log == nil {
				return
			}
			if ses.batchesSinceSnap > 0 {
				if payload, err := marshalSnapshot(ses.engine.Placement()); err == nil {
					if ses.log.Snapshot(payload) == nil {
						ses.batchesSinceSnap = 0
						metricSnapshots.Add(1)
					}
				}
			}
			_ = ses.log.Close()
		}(ses)
	}
	for remaining := len(sessions); remaining > 0; remaining-- {
		select {
		case <-done:
		case <-ctx.Done():
			return fmt.Errorf("serve: shutdown drain expired with %d of %d sessions still busy: %w",
				remaining, len(sessions), ctx.Err())
		}
	}
	return nil
}
