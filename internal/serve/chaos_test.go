package serve

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// chaosPlacement is a 4x4 lattice — small enough that every recovery
// cycle (engine rebuild + replay + flush) stays cheap under -race.
func chaosPlacement() CreateRequest {
	req := CreateRequest{Spacing: 3, Margin: 5}
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			req.TSVs = append(req.TSVs, TSVWire{X: float64(24 * i), Y: float64(24 * j)})
		}
	}
	return req
}

// mirrorPlacement rebuilds the chaos placement the way the server does
// (auto-assigned names included).
func mirrorPlacement() *geom.Placement {
	pl := &geom.Placement{}
	for i, tw := range chaosPlacement().TSVs {
		pl.TSVs = append(pl.TSVs, geom.TSV{Center: geom.Pt(tw.X, tw.Y), Name: "V" + strconv.Itoa(i)})
	}
	return pl
}

// randomBatch builds a batch of 1–3 edits that are valid against
// mirror applied in order (the server's rehearsal semantics), applying
// them to a throwaway clone as it goes.
func randomBatch(rng *rand.Rand, mirror *geom.Placement, minPitch float64) ([]geom.Edit, []EditWire) {
	probe := mirror.Clone()
	n := 1 + rng.Intn(3)
	var edits []geom.Edit
	var wires []EditWire
	for len(edits) < n {
		var ed geom.Edit
		var ew EditWire
		switch op := rng.Intn(3); {
		case op == 1 && probe.Len() > 8:
			idx := rng.Intn(probe.Len())
			ed = geom.Edit{Op: geom.EditRemove, Index: idx}
			ew = EditWire{Op: "remove", Index: idx}
		case op == 2:
			idx := rng.Intn(probe.Len())
			c := probe.TSVs[idx].Center.Add(geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4))
			ed = geom.Edit{Op: geom.EditMove, Index: idx, TSV: geom.TSV{Center: c}}
			ew = EditWire{Op: "move", Index: idx, X: c.X, Y: c.Y}
		default:
			c := geom.Pt(rng.Float64()*90-9, rng.Float64()*90-9)
			ed = geom.Edit{Op: geom.EditAdd, TSV: geom.TSV{Center: c}}
			ew = EditWire{Op: "add", X: c.X, Y: c.Y}
		}
		if err := ed.Apply(probe, minPitch); err != nil {
			continue // invalid against the running batch; redraw
		}
		edits = append(edits, ed)
		wires = append(wires, ew)
	}
	return edits, wires
}

// chaosCheckParity fetches the served map and compares it against a
// from-scratch full-mode evaluation of the mirror placement.
func chaosCheckParity(t *testing.T, c *http.Client, url string, mirror *geom.Placement) {
	t.Helper()
	var mp MapResponse
	if resp := doJSON(t, c, "GET", url+"/map?component=xx&values=1", nil, &mp); resp.StatusCode != http.StatusOK {
		t.Fatalf("map after recovery: status %d", resp.StatusCode)
	}
	st := material.Baseline(material.BCB)
	grid, err := field.NewGrid(mirrorPlacement().Bounds(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.New(st, mirror.Clone(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]tensor.Stress, grid.Len())
	if err := an.MapInto(context.Background(), want, grid.Points(), core.ModeFull); err != nil {
		t.Fatal(err)
	}
	if len(mp.Values) != len(want) {
		t.Fatalf("served %d values, want %d", len(mp.Values), len(want))
	}
	for i, v := range mp.Values {
		if d := math.Abs(v - want[i].XX); d > 1e-9 {
			t.Fatalf("recovered map differs from never-crashed reference by %g MPa at point %d", d, i)
		}
	}
}

// TestChaosKillReplay drives a session through random edit batches
// interleaved with crashes — hard kills, kills mid-journal-append (torn
// writes), and graceful shutdowns — and after every recovery asserts
// the served stress map is within 1e-9 MPa of a never-crashed reference
// evaluation of the acknowledged edit history.
func TestChaosKillReplay(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	st := material.Baseline(material.BCB)
	minPitch := 2 * st.RPrime
	mirror := mirrorPlacement()

	opts := Options{WALDir: root, SnapshotEvery: 3}
	srv := NewServer(opts)
	if _, err := srv.Recover(context.Background()); err != nil {
		t.Fatalf("initial recover: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	id := created.ID

	// reopen simulates a crash (or finishes a graceful stop) and brings
	// up a fresh server over the same WAL directory.
	reopen := func(graceful bool) {
		t.Helper()
		ts.Close()
		if graceful {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Close(ctx); err != nil {
				t.Fatalf("graceful close: %v", err)
			}
			cancel()
		}
		srv = NewServer(opts)
		if n, err := srv.Recover(context.Background()); err != nil || n != 1 {
			t.Fatalf("recover: %d sessions, err %v", n, err)
		}
		ts = httptest.NewServer(srv.Handler())
		c = ts.Client()
	}
	defer func() { ts.Close() }()

	for round := 0; round < 6; round++ {
		base := ts.URL + "/v1/placements/" + id
		// A few acknowledged batches, mirrored locally.
		for b := 0; b < 1+rng.Intn(3); b++ {
			edits, wires := randomBatch(rng, mirror, minPitch)
			var er EditsResponse
			if resp := doJSON(t, c, "POST", base+"/edits", EditsRequest{Edits: wires}, &er); resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d: edits status %d", round, resp.StatusCode)
			}
			for _, ed := range edits {
				if err := ed.Apply(mirror, minPitch); err != nil {
					t.Fatalf("round %d: mirror apply: %v", round, err)
				}
			}
		}

		switch round % 3 {
		case 0: // hard kill after the acks
			reopen(false)
		case 1: // torn write: the batch dies mid-append, then a hard kill
			_, wires := randomBatch(rng, mirror, minPitch)
			faultinject.Set("wal.append.write", faultinject.Fault{ShortWrite: rng.Intn(20), Times: 1})
			resp := doJSON(t, c, "POST", base+"/edits", EditsRequest{Edits: wires}, nil)
			faultinject.Reset()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("round %d: torn-write batch status %d, want 503", round, resp.StatusCode)
			}
			// The un-acknowledged batch is NOT applied to the mirror; the
			// session is quarantined until the restart.
			if resp := doJSON(t, c, "GET", base+"/map", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("round %d: quarantined map status %d, want 503", round, resp.StatusCode)
			}
			reopen(false)
		case 2: // graceful shutdown (drain + final snapshot)
			reopen(true)
		}
		chaosCheckParity(t, c, ts.URL+"/v1/placements/"+id, mirror)
	}

	// The recovered session keeps serving edits after the last crash.
	edits, wires := randomBatch(rng, mirror, minPitch)
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+id+"/edits", EditsRequest{Edits: wires}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos edits: status %d", resp.StatusCode)
	}
	for _, ed := range edits {
		if err := ed.Apply(mirror, minPitch); err != nil {
			t.Fatal(err)
		}
	}
	chaosCheckParity(t, c, ts.URL+"/v1/placements/"+id, mirror)
}

// TestChaosDeadlineAbortsFlush pins the cooperative-cancellation path
// end to end: a compute deadline that fires mid-flush yields a 504
// within roughly one tile's work of the deadline, and the session heals
// on the next request.
func TestChaosDeadlineAbortsFlush(t *testing.T) {
	defer faultinject.Reset()
	srv := NewServer(Options{RequestTimeout: 300 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	// 5ms per dirty tile makes the flush tens of times slower than the
	// deadline; the handler must abort instead of running it out.
	faultinject.Set("core.tile.eval", faultinject.Fault{Delay: 5 * time.Millisecond})
	start := time.Now()
	var em errorResponse
	resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}, &em)
	elapsed := time.Since(start)
	faultinject.Reset()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline flush: status %d (%s), want 504", resp.StatusCode, em.Error)
	}
	// Deadline plus generous slack for scheduler jitter under -race —
	// far below the seconds a non-cooperative flush would take.
	if elapsed > 3*time.Second {
		t.Fatalf("aborted flush took %v", elapsed)
	}

	// A 504 means the edits reached the engine's placement but the map
	// is stale; the engine owes the dirty tiles. With the fault cleared,
	// the next request's flush completes them and the served map must
	// match a from-scratch evaluation of the edited placement.
	st := material.Baseline(material.BCB)
	mirror := mirrorPlacement()
	if err := (geom.Edit{Op: geom.EditMove, Index: 0, TSV: geom.TSV{Center: geom.Pt(2, 2)}}).Apply(mirror, 2*st.RPrime); err != nil {
		t.Fatal(err)
	}
	chaosCheckParity(t, c, base, mirror)
}
