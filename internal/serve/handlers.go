package serve

//tsvlint:apiboundary

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/incr"
	"tsvstress/internal/material"
	"tsvstress/internal/mobility"
	"tsvstress/internal/reliability"
	"tsvstress/internal/tensor"
	"tsvstress/internal/wal"
)

// ---- wire types ----

// TSVWire is one via in a request or response body (coordinates in µm).
type TSVWire struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Name string  `json:"name,omitempty"`
}

// CreateRequest is the POST /v1/placements body.
type CreateRequest struct {
	// TSVs is the initial placement (required, coordinates in µm).
	TSVs []TSVWire `json:"tsvs"`
	// Liner selects the baseline structure: "bcb" (default) or "sio2".
	Liner string `json:"liner,omitempty"`
	// Mode pins the session's evaluation mode: "full" (default), "ls"
	// or "interactive".
	Mode string `json:"mode,omitempty"`
	// Spacing is the simulation-grid spacing in µm (default 1).
	Spacing float64 `json:"spacing,omitempty"`
	// Margin extends the grid beyond the placement bounds in µm
	// (default 5).
	Margin float64 `json:"margin,omitempty"`
	// MMax overrides the Stage II series truncation (default 10).
	MMax int `json:"mmax,omitempty"`
}

// CreateResponse answers POST /v1/placements.
type CreateResponse struct {
	ID        string  `json:"id"`
	NumTSVs   int     `json:"numTSVs"`
	NumPoints int     `json:"numPoints"`
	NumTiles  int     `json:"numTiles"`
	Mode      string  `json:"mode"`
	Liner     string  `json:"liner"`
	BuildMs   float64 `json:"buildMs"`
}

// SessionInfo is one entry of GET /v1/placements.
type SessionInfo struct {
	ID        string    `json:"id"`
	NumTSVs   int       `json:"numTSVs"`
	NumPoints int       `json:"numPoints"`
	Mode      string    `json:"mode"`
	Liner     string    `json:"liner"`
	Pending   int       `json:"pendingEdits"`
	Created   time.Time `json:"created"`
	// Quarantined is the non-empty reason this session refuses compute
	// requests (contained panic or durability failure).
	Quarantined string `json:"quarantined,omitempty"`
	// Evicted marks a session whose engine was released to disk; the
	// next compute request rehydrates it from its WAL.
	Evicted bool `json:"evicted,omitempty"`
}

// EditWire is one placement edit: op "add" (x, y, optional name),
// "remove" (index) or "move" (index, x, y, optional name).
type EditWire struct {
	Op    string  `json:"op"`
	Index int     `json:"index,omitempty"`
	X     float64 `json:"x,omitempty"`
	Y     float64 `json:"y,omitempty"`
	Name  string  `json:"name,omitempty"`
}

// EditsRequest is the POST /v1/placements/{id}/edits body. The batch is
// atomic: either every edit validates and applies, or none does.
type EditsRequest struct {
	Edits []EditWire `json:"edits"`
}

// EditsResponse answers an edit batch with the incremental-flush cost.
type EditsResponse struct {
	Applied    int     `json:"applied"`
	NumTSVs    int     `json:"numTSVs"`
	DirtyTiles int     `json:"dirtyTiles"`
	TotalTiles int     `json:"totalTiles"`
	DirtyRatio float64 `json:"dirtyRatio"`
	FlushMs    float64 `json:"flushMs"`
}

// MapResponse answers GET /v1/placements/{id}/map (format=json).
type MapResponse struct {
	ID        string     `json:"id"`
	Mode      string     `json:"mode"`
	Component string     `json:"component"`
	NumPoints int        `json:"numPoints"`
	Min       float64    `json:"min"`
	Max       float64    `json:"max"`
	Mean      float64    `json:"mean"`
	MinAt     [2]float64 `json:"minAt"`
	MaxAt     [2]float64 `json:"maxAt"`
	FlushMs   float64    `json:"flushMs"`
	// Values is the per-point component field in grid order, present
	// only with ?values=1.
	Values []float64 `json:"values,omitempty"`
}

// ScreenTSV is one via's reliability/mobility summary.
type ScreenTSV struct {
	Index           int     `json:"index"`
	X               float64 `json:"x"`
	Y               float64 `json:"y"`
	Name            string  `json:"name,omitempty"`
	MaxTension      float64 `json:"maxTensionMPa"`
	MaxTensionTheta float64 `json:"maxTensionTheta"`
	MaxShear        float64 `json:"maxShearMPa"`
	MaxVonMises     float64 `json:"maxVonMisesMPa"`
	WorstShiftNMOS  float64 `json:"worstShiftNMOS"`
	WorstShiftPMOS  float64 `json:"worstShiftPMOS"`
}

// ScreenResponse answers GET /v1/placements/{id}/screen: TSVs ranked by
// worst interfacial tension, plus the structure's keep-out radii.
type ScreenResponse struct {
	ID      string  `json:"id"`
	NumTSVs int     `json:"numTSVs"`
	NTheta  int     `json:"nTheta"`
	KOZTol  float64 `json:"kozTol"`
	// KOZNMOS/KOZPMOS are the single-TSV keep-out radii in µm at KOZTol.
	KOZNMOS float64 `json:"kozNMOSum"`
	KOZPMOS float64 `json:"kozPMOSum"`
	// AboveThreshold counts TSVs whose MaxTension exceeds ?threshold
	// (present only when the parameter is given).
	Threshold      *float64    `json:"thresholdMPa,omitempty"`
	AboveThreshold int         `json:"aboveThreshold,omitempty"`
	FlushMs        float64     `json:"flushMs"`
	TSVs           []ScreenTSV `json:"tsvs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func parseLiner(name string) (material.Material, string, error) {
	switch strings.ToLower(name) {
	case "", "bcb":
		return material.BCB, "bcb", nil
	case "sio2":
		return material.SiO2, "sio2", nil
	default:
		return material.Material{}, "", fmt.Errorf("unknown liner %q (want bcb or sio2)", name)
	}
}

func parseMode(name string) (core.Mode, string, error) {
	switch strings.ToLower(name) {
	case "", "full":
		return core.ModeFull, "full", nil
	case "ls":
		return core.ModeLS, "ls", nil
	case "interactive":
		return core.ModeInteractive, "interactive", nil
	default:
		return 0, "", fmt.Errorf("unknown mode %q (want full, ls or interactive)", name)
	}
}

// queryFloat parses an optional finite float query parameter.
func queryFloat(r *http.Request, key string, def float64) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("parameter %s=%q is not a finite number", key, s)
	}
	return v, nil
}

func queryInt(r *http.Request, key string, def int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, s)
	}
	return v, nil
}

func (ed EditWire) toEdit() (geom.Edit, error) {
	t := geom.TSV{Center: geom.Pt(ed.X, ed.Y), Name: ed.Name}
	switch strings.ToLower(ed.Op) {
	case "add":
		return geom.Edit{Op: geom.EditAdd, TSV: t}, nil
	case "remove":
		return geom.Edit{Op: geom.EditRemove, Index: ed.Index}, nil
	case "move":
		return geom.Edit{Op: geom.EditMove, Index: ed.Index, TSV: t}, nil
	default:
		return geom.Edit{}, fmt.Errorf("unknown op %q (want add, remove or move)", ed.Op)
	}
}

// decodeEdits decodes and validates an edit-batch body, returning both
// the typed edits and the wire form (the latter is what the WAL
// journals, so replay goes through this same decoder). It never
// panics on malformed input — the fuzz target pins that.
func decodeEdits(r io.Reader) ([]geom.Edit, []EditWire, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req EditsRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	if len(req.Edits) == 0 {
		return nil, nil, errors.New("empty edit batch")
	}
	edits := make([]geom.Edit, 0, len(req.Edits))
	for i, ew := range req.Edits {
		ed, err := ew.toEdit()
		if err != nil {
			return nil, nil, fmt.Errorf("edit %d: %w", i, err)
		}
		edits = append(edits, ed)
	}
	return edits, req.Edits, nil
}

// flushLocked flushes pending work (caller holds ses.mu) and publishes
// the flush metrics, returning the elapsed milliseconds. Under
// admission-queue pressure a full-mode session degrades to a Stage-I
// flush (see Engine.FlushDegraded); the response then carries the
// degradation header and the owed full-mode pass runs on the next
// un-pressured request.
func (s *Server) flushLocked(ctx context.Context, ses *session) (float64, error) {
	if !ses.engine.NeedsFlush() {
		return 0, nil
	}
	start := time.Now()
	var err error
	if s.shedding() && ses.engine.Mode() == core.ModeFull {
		_, err = ses.engine.FlushDegraded(ctx)
	} else {
		_, err = ses.engine.Flush(ctx)
	}
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	recordFlush(ses.engine.Stats(), elapsed)
	if ses.engine.Degraded() {
		metricDegraded.Add(1)
	}
	return float64(elapsed) / float64(time.Millisecond), nil
}

// setDegradedHeader marks a response whose field values are (partly)
// Stage-I-only because load shedding degraded the flush, with a
// Retry-After hint telling the client when the queue should have
// drained enough for a full-accuracy retry. Caller holds ses.mu.
func (s *Server) setDegradedHeader(w http.ResponseWriter, ses *session) {
	if ses.engine.Degraded() {
		w.Header().Set("X-Tsvserve-Degraded", "full->ls")
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
}

// writeComputeError maps an engine failure to its HTTP shape: a
// contained kernel panic quarantines the session (500), a cooperative
// cancellation is a 504 with partial-progress detail, anything else is
// a plain 500.
func (s *Server) writeComputeError(w http.ResponseWriter, id, op string, err error) {
	var pe *core.PanicError
	var ce *core.CancelError
	switch {
	case errors.As(err, &pe):
		metricPanics.Add(1)
		s.quarantine(id, fmt.Sprintf("%s: contained kernel panic: %v", op, pe.Value))
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("%s: kernel panic contained; placement %q quarantined: %v", op, id, pe.Value))
	case errors.As(err, &ce):
		writeError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("%s: evaluation canceled after %d of %d tiles: %v", op, ce.TilesDone, ce.TilesTotal, ce.Cause))
	case errors.Is(err, core.ErrCanceled):
		writeError(w, http.StatusGatewayTimeout, op+": "+err.Error())
	default:
		writeError(w, http.StatusInternalServerError, op+": "+err.Error())
	}
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"sessions":    s.NumSessions(),
		"quarantined": s.quarantinedCount(),
	})
}

// handleReady reports whether the service should receive traffic:
// recovery must have completed and the admission queue must be below
// the shedding depth. Load balancers poll this; /healthz stays 200 as
// long as the process lives.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	waiting := int(admitWaiting.Load())
	switch {
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
	case waiting >= s.opt.ShedQueueDepth:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "overloaded", "waiting": waiting, "shedDepth": s.opt.ShedQueueDepth})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "waiting": waiting, "sessions": s.NumSessions()})
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CreateRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.TSVs) == 0 {
		writeError(w, http.StatusBadRequest, "placement has no TSVs")
		return
	}
	if len(req.TSVs) > s.opt.MaxTSVs {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("placement has %d TSVs, limit is %d", len(req.TSVs), s.opt.MaxTSVs))
		return
	}
	liner, linerName, err := parseLiner(req.Liner)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	mode, modeName, err := parseMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	spacing := req.Spacing
	if spacing == 0 {
		spacing = 1
	}
	margin := req.Margin
	if margin == 0 {
		margin = 5
	}
	pl := &geom.Placement{TSVs: make([]geom.TSV, 0, len(req.TSVs))}
	for i, t := range req.TSVs {
		name := t.Name
		if name == "" {
			name = "V" + strconv.Itoa(i)
		}
		pl.TSVs = append(pl.TSVs, geom.TSV{Center: geom.Pt(t.X, t.Y), Name: name})
	}
	st := material.Baseline(liner)
	grid, err := field.NewGrid(pl.Bounds(margin), spacing)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if grid.Len() > s.opt.MaxPoints {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("grid has %d points (spacing %g over %gx%g µm), limit is %d — coarsen the spacing",
				grid.Len(), spacing, grid.Region.W(), grid.Region.H(), s.opt.MaxPoints))
		return
	}
	start := time.Now()
	engine, err := incr.New(r.Context(), st, pl, grid.Points(), mode, core.Options{MMax: req.MMax})
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			writeError(w, http.StatusGatewayTimeout, "create: initial evaluation canceled: "+err.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	ses := &session{engine: engine, st: st, liner: linerName, mode: modeName, created: time.Now()}
	// The meta record lives on the session even without a WAL: it is
	// what export synthesizes a bundle from, and the grid derives from
	// the *initial* placement bounds, so it must survive verbatim.
	ses.meta = metaRecord{
		TSVs:    wireTSVs(pl),
		Liner:   linerName,
		Mode:    modeName,
		Spacing: spacing,
		Margin:  margin,
		MMax:    req.MMax,
		Created: ses.created,
	}
	s.attachCluster(ses)
	// The gateway mints session ids so routing stays a pure function of
	// the id; a bare client lets the server number the session.
	id, err := s.reserveID(r.Header.Get("X-Tsvgate-Session"))
	if err != nil {
		var taken *idTakenError
		var invalid *invalidIDError
		switch {
		case errors.As(err, &taken):
			writeError(w, http.StatusConflict, err.Error())
		case errors.As(err, &invalid):
			writeError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			// The slot frees only when a client DELETEs a placement; the
			// queue-derived interval is still the best polling hint we have.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, err.Error())
		}
		return
	}
	// Open the journal before the session is published: a session that
	// requests can observe must never exist without an open log, or an
	// edit batch could be acknowledged in the window where it would not
	// be journaled — durability the client was promised but never had.
	if s.opt.WALDir != "" {
		meta, err := marshalMeta(ses.meta)
		if err == nil {
			ses.log, err = wal.Create(s.sessionDir(id), meta)
		}
		if err != nil {
			s.unreserve()
			_ = wal.Remove(s.sessionDir(id))
			writeError(w, http.StatusInternalServerError, "create: journal init failed: "+err.Error())
			return
		}
	}
	s.ensureLiveCapacity(1)
	s.publishSession(id, ses)
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID:        id,
		NumTSVs:   engine.NumTSVs(),
		NumPoints: engine.NumPoints(),
		NumTiles:  engine.Stats().TotalTiles,
		Mode:      modeName,
		Liner:     linerName,
		BuildMs:   float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// Snapshot the table under s.mu and read each session's engine only
	// after s.mu is released: compute handlers acquire s.mu (quarantine)
	// while holding ses.mu, so nesting s.mu→ses.mu here would be an
	// ABBA deadlock. The quarantined reason is s.mu-guarded, so capture
	// it during the snapshot.
	type listEntry struct {
		ses         *session
		quarantined string
	}
	s.mu.Lock()
	entries := make([]listEntry, 0, len(s.sessions))
	for _, ses := range s.sessions {
		entries = append(entries, listEntry{ses: ses, quarantined: ses.quarantined})
	}
	evictedIDs := make([]string, 0, len(s.evicted))
	for id := range s.evicted {
		evictedIDs = append(evictedIDs, id)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(entries)+len(evictedIDs))
	for _, e := range entries {
		ses := e.ses
		ses.mu.Lock()
		if ses.evicted {
			// Lost a race with the LRU sweep: the engine is gone. The id
			// will reappear below on a later list; skip it rather than
			// dereference a released engine.
			ses.mu.Unlock()
			continue
		}
		infos = append(infos, SessionInfo{
			ID:          ses.id,
			NumTSVs:     ses.engine.NumTSVs(),
			NumPoints:   ses.engine.NumPoints(),
			Mode:        ses.mode,
			Liner:       ses.liner,
			Pending:     ses.engine.Pending(),
			Created:     ses.created,
			Quarantined: e.quarantined,
		})
		ses.mu.Unlock()
	}
	for _, id := range evictedIDs {
		infos = append(infos, SessionInfo{ID: id, Evicted: true})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"placements": infos})
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	ses, unlock, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer unlock()
	edits, wires, err := decodeEdits(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := r.Context().Err(); err != nil {
		writeError(w, http.StatusRequestTimeout, "request expired waiting for the session: "+err.Error())
		return
	}
	// Atomic batch: rehearse every edit on a throwaway clone first, so a
	// failure in edit k never leaves edits 0..k-1 half-applied.
	probe := ses.engine.Placement()
	minPitch := 2 * ses.st.RPrime
	for i, ed := range edits {
		if err := ed.Apply(probe, minPitch); err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("edit %d: %v", i, err))
			return
		}
	}
	if probe.Len() > s.opt.MaxTSVs {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("batch grows the placement to %d TSVs, limit is %d", probe.Len(), s.opt.MaxTSVs))
		return
	}
	// Journal before apply: once the batch reaches the engine its edits
	// are acknowledged to the client, so they must already be durable.
	// A journal failure quarantines the session — its on-disk state no
	// longer matches what the client will be told.
	if ses.log != nil {
		payload, err := json.Marshal(journalRecord{Edits: wires})
		if err == nil {
			_, err = ses.log.Append(payload)
		}
		if err != nil {
			metricWALErrors.Add(1)
			s.quarantine(ses.id, "edit journal append failed: "+err.Error())
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("durability failure; placement %q quarantined: %v", ses.id, err))
			return
		}
		metricWALAppends.Add(1)
	}
	for i, ed := range edits {
		// The rehearsal accepted the batch, so each apply must succeed;
		// a failure here is an engine/validator divergence — and the
		// batch is already journaled, so the engine now holds a partial
		// application that recovery would replay in full. Quarantine,
		// mirroring the WAL-append failure path, instead of serving
		// state that diverges from the journal.
		if err := ses.engine.Apply(ed); err != nil {
			reason := fmt.Sprintf("edit %d failed after validation (engine diverged from journal): %v", i, err)
			s.quarantine(ses.id, reason)
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("%s; placement %q quarantined", reason, ses.id))
			return
		}
	}
	metricEdits.Add(int64(len(edits)))
	// The batch is journaled and applied, so it counts toward snapshot
	// cadence now, whatever the flush below does — a canceled flush
	// must not drift the cadence for a batch that is already durable.
	if ses.log != nil {
		ses.batchesSinceSnap++
	}
	flushMs, err := s.flushLocked(r.Context(), ses)
	if err != nil {
		// The edits themselves are accepted (journaled and applied);
		// only the map evaluation failed. Say so in the op, or a
		// timed-out client would resubmit and double-apply the batch.
		s.writeComputeError(w, ses.id, "flush (edit batch already accepted; do not resubmit)", err)
		return
	}
	// Snapshot every SnapshotEvery accepted batches to bound journal
	// length and recovery replay time. A snapshot failure is not fatal:
	// the journal still holds every batch since the last good snapshot.
	if ses.log != nil && ses.batchesSinceSnap >= s.opt.SnapshotEvery {
		if payload, err := marshalSnapshot(ses.engine.Placement()); err == nil {
			if err := ses.log.Snapshot(payload); err == nil {
				ses.batchesSinceSnap = 0
				metricSnapshots.Add(1)
			} else {
				metricWALErrors.Add(1)
			}
		}
	}
	s.setDegradedHeader(w, ses)
	st := ses.engine.Stats()
	writeJSON(w, http.StatusOK, EditsResponse{
		Applied:    len(edits),
		NumTSVs:    ses.engine.NumTSVs(),
		DirtyTiles: st.LastDirtyTiles,
		TotalTiles: st.TotalTiles,
		DirtyRatio: st.LastDirtyRatio,
		FlushMs:    flushMs,
	})
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	ses, unlock, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer unlock()
	// Test-only drill for the panic-recovery middleware (one atomic
	// load when unarmed): arming this site with a Panic fault simulates
	// a handler bug escaping to withRecovery.
	_ = faultinject.Fire("serve.map.handler")
	q := r.URL.Query()
	component := q.Get("component")
	if component == "" {
		component = "vm"
	}
	if _, err := (tensor.Stress{}).Component(component); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if m := q.Get("mode"); m != "" {
		if _, name, err := parseMode(m); err != nil || name != ses.mode {
			writeError(w, http.StatusConflict,
				fmt.Sprintf("session %s is pinned to mode %q; create a separate placement for mode %q", ses.id, ses.mode, m))
			return
		}
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	includeValues := q.Get("values") == "1" || q.Get("values") == "true"

	flushMs, err := s.flushLocked(r.Context(), ses)
	if err != nil {
		s.writeComputeError(w, ses.id, "flush", err)
		return
	}
	s.setDegradedHeader(w, ses)
	pts, vals := ses.engine.Points(), ses.engine.Values()

	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		cols := strings.Split(component, ",")
		if err := field.WriteCSV(w, pts, map[string][]tensor.Stress{"stress": vals}, cols); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			return
		}
	case "json":
		resp := MapResponse{
			ID:        ses.id,
			Mode:      ses.mode,
			Component: component,
			NumPoints: len(pts),
			FlushMs:   flushMs,
		}
		sum := 0.0
		minI, maxI := 0, 0
		for i := range vals {
			v, _ := vals[i].Component(component)
			sum += v
			if cur, _ := vals[minI].Component(component); v < cur {
				minI = i
			}
			if cur, _ := vals[maxI].Component(component); v > cur {
				maxI = i
			}
			if includeValues {
				resp.Values = append(resp.Values, v)
			}
		}
		minV, _ := vals[minI].Component(component)
		maxV, _ := vals[maxI].Component(component)
		resp.Min, resp.Max, resp.Mean = minV, maxV, sum/float64(len(vals))
		resp.MinAt = [2]float64{pts[minI].X, pts[minI].Y}
		resp.MaxAt = [2]float64{pts[maxI].X, pts[maxI].Y}
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (want json or csv)", format))
	}
}

func (s *Server) handleScreen(w http.ResponseWriter, r *http.Request) {
	ses, unlock, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer unlock()
	nTheta, err := queryInt(r, "ntheta", 72)
	if err != nil || nTheta < 4 || nTheta > 1024 {
		writeError(w, http.StatusBadRequest, "ntheta must be an integer in [4, 1024]")
		return
	}
	top, err := queryInt(r, "top", 20)
	if err != nil || top < 0 {
		writeError(w, http.StatusBadRequest, "top must be a non-negative integer (0 = all)")
		return
	}
	kozTol, err := queryFloat(r, "koztol", 0.01)
	if err != nil || kozTol <= 0 {
		writeError(w, http.StatusBadRequest, "koztol must be a positive finite number")
		return
	}
	var threshold *float64
	if r.URL.Query().Get("threshold") != "" {
		v, err := queryFloat(r, "threshold", 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		threshold = &v
	}

	flushMs, err := s.flushLocked(r.Context(), ses)
	if err != nil {
		s.writeComputeError(w, ses.id, "flush", err)
		return
	}
	s.setDegradedHeader(w, ses)
	an := ses.engine.Analyzer()
	var eval reliability.Evaluator
	switch ses.engine.Mode() {
	case core.ModeLS:
		eval = an.StressLS
	case core.ModeInteractive:
		eval = an.Interactive
	default:
		eval = an.StressAt
	}
	reports, err := reliability.Screen(ses.engine.Placement(), ses.st,
		eval, reliability.Options{NTheta: nTheta})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "screen: "+err.Error())
		return
	}
	ranked := reliability.RankByTension(reports)

	resp := ScreenResponse{
		ID:      ses.id,
		NumTSVs: len(reports),
		NTheta:  nTheta,
		KOZTol:  kozTol,
		KOZNMOS: mobility.KeepOutRadius(an.Model.Lame, mobility.Default110(mobility.NMOS), kozTol),
		KOZPMOS: mobility.KeepOutRadius(an.Model.Lame, mobility.Default110(mobility.PMOS), kozTol),
		FlushMs: flushMs,
	}
	if threshold != nil {
		resp.Threshold = threshold
		resp.AboveThreshold = reliability.CountAbove(reports, *threshold)
	}
	limit := len(ranked)
	if top > 0 && top < limit {
		limit = top
	}
	pl := ses.engine.Placement()
	stresses := make([]tensor.Stress, nTheta)
	for _, rep := range ranked[:limit] {
		for k, smp := range rep.Samples {
			stresses[k] = smp.Stress
		}
		nShift, _ := mobility.WorstCaseOver(stresses, mobility.Default110(mobility.NMOS))
		pShift, _ := mobility.WorstCaseOver(stresses, mobility.Default110(mobility.PMOS))
		resp.TSVs = append(resp.TSVs, ScreenTSV{
			Index:           rep.Index,
			X:               rep.Center.X,
			Y:               rep.Center.Y,
			Name:            pl.TSVs[rep.Index].Name,
			MaxTension:      rep.MaxTension,
			MaxTensionTheta: rep.MaxTensionTheta,
			MaxShear:        rep.MaxShear,
			MaxVonMises:     rep.MaxVonMises,
			WorstShiftNMOS:  nShift,
			WorstShiftPMOS:  pShift,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.dropSession(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown placement %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
