package serve

//tsvlint:apiboundary

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/incr"
	"tsvstress/internal/material"
	"tsvstress/internal/wal"
)

// The WAL payload formats. All three are JSON so a human can inspect a
// journal with od + jq during an incident; the framing, CRC and
// torn-write handling live one layer down in internal/wal.
//
// metaRecord is the session's immutable birth certificate (the
// normalized create request). The simulation grid derives from the
// *initial* placement bounds and never changes afterwards, which is
// why recovery must rebuild it from meta rather than from a snapshot.
type metaRecord struct {
	TSVs    []TSVWire `json:"tsvs"`
	Liner   string    `json:"liner"`
	Mode    string    `json:"mode"`
	Spacing float64   `json:"spacing"`
	Margin  float64   `json:"margin"`
	MMax    int       `json:"mmax,omitempty"`
	Created time.Time `json:"created"`
}

// snapshotRecord is a placement checkpoint: the full TSV list at some
// journal sequence. Replay starts from here.
type snapshotRecord struct {
	TSVs []TSVWire `json:"tsvs"`
}

// journalRecord is one accepted edit batch, stored in wire form so
// recovery replays through the same decoder the live path used.
type journalRecord struct {
	Edits []EditWire `json:"edits"`
}

// wireTSVs converts a placement to its wire form (names included, so
// recovery reproduces them exactly).
func wireTSVs(pl *geom.Placement) []TSVWire {
	out := make([]TSVWire, 0, pl.Len())
	for _, t := range pl.TSVs {
		out = append(out, TSVWire{X: t.Center.X, Y: t.Center.Y, Name: t.Name})
	}
	return out
}

func placementFromWire(tsvs []TSVWire) *geom.Placement {
	pl := &geom.Placement{TSVs: make([]geom.TSV, 0, len(tsvs))}
	for _, t := range tsvs {
		pl.TSVs = append(pl.TSVs, geom.TSV{Center: geom.Pt(t.X, t.Y), Name: t.Name})
	}
	return pl
}

func marshalSnapshot(pl *geom.Placement) ([]byte, error) {
	return json.Marshal(snapshotRecord{TSVs: wireTSVs(pl)})
}

func marshalMeta(m metaRecord) ([]byte, error) { return json.Marshal(m) }

// parseSessionID extracts the numeric part of a "p<n>" session id.
func parseSessionID(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "p")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Recover rebuilds journaled sessions from Options.WALDir: for each
// session directory it opens the journal (truncating any torn tail),
// reconstructs the placement from the latest snapshot plus the edit
// batches journaled after it, rebuilds the engine and flushes, so the
// recovered field map equals the one a never-crashed server would
// serve (the chaos test pins the agreement at 1e-9 MPa).
//
// Recovery is best-effort per session: a directory whose meta or
// journal is unreadable is skipped (left on disk for forensics) and a
// session whose replay diverges is registered quarantined; both are
// reported in the joined error while every healthy session serves.
// Only ctx cancellation aborts recovery as a whole — readiness
// (/readyz) then stays false. Returns the number of sessions restored
// to service.
func (s *Server) Recover(ctx context.Context) (int, error) {
	if s.opt.WALDir == "" {
		s.ready.Store(true)
		return 0, nil
	}
	ids, err := wal.List(s.opt.WALDir)
	if err != nil {
		return 0, fmt.Errorf("serve: recover: %w", err)
	}
	recovered := 0
	maxID := 0
	var errs []error
	for _, id := range ids {
		// A leftover directory — even one too corrupt to recover —
		// still reserves its id, so a fresh session can never collide
		// with its journal.
		if n, ok := parseSessionID(id); ok && n > maxID {
			maxID = n
		}
		if err := ctx.Err(); err != nil {
			return recovered, fmt.Errorf("serve: recover aborted: %w", err)
		}
		ses, err := s.recoverSession(ctx, id)
		if err != nil {
			if errors.Is(err, core.ErrCanceled) || ctx.Err() != nil {
				return recovered, fmt.Errorf("serve: recover aborted in session %s: %w", id, err)
			}
			errs = append(errs, fmt.Errorf("session %s: %w", id, err))
			continue
		}
		s.mu.Lock()
		s.sessions[id] = ses
		registerSessionQueue(id)
		metricSessions.Set(int64(len(s.sessions)))
		if ses.quarantined != "" {
			errs = append(errs, fmt.Errorf("session %s quarantined: %s", id, ses.quarantined))
			metricQuarantined.Set(int64(s.quarantinedLocked()))
		} else {
			recovered++
			metricRecovered.Add(1)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.mu.Unlock()
	s.ready.Store(true)
	return recovered, errors.Join(errs...)
}

// recoverSession rebuilds one session from its WAL directory. An error
// means the session could not be reconstructed at all (unreadable meta
// or journal, engine build failure); a replay divergence instead
// returns a quarantined session so the operator sees it in the list.
func (s *Server) recoverSession(ctx context.Context, id string) (*session, error) {
	log, rec, err := wal.Open(s.sessionDir(id))
	if err != nil {
		return nil, err
	}
	ses, err := s.buildSession(ctx, id, rec, log)
	if err != nil {
		_ = log.Close()
		return nil, err
	}
	return ses, nil
}

// buildSession reconstructs a session from recovered WAL state — the
// shared spine of crash recovery, cold-session hydration and bundle
// import (lifecycle.go). log may be nil (an import on a replica
// without durability). On error the caller owns closing log; on
// success the session owns it.
func (s *Server) buildSession(ctx context.Context, id string, rec *wal.Recovered, log *wal.Log) (*session, error) {
	var meta metaRecord
	if err := json.Unmarshal(rec.Meta, &meta); err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	liner, linerName, err := parseLiner(meta.Liner)
	if err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	mode, modeName, err := parseMode(meta.Mode)
	if err != nil {
		return nil, fmt.Errorf("meta: %w", err)
	}
	st := material.Baseline(liner)
	initial := placementFromWire(meta.TSVs)
	grid, err := field.NewGrid(initial.Bounds(meta.Margin), meta.Spacing)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	base := initial
	if rec.Snapshot != nil {
		var snap snapshotRecord
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		base = placementFromWire(snap.TSVs)
	}
	engine, err := incr.New(ctx, st, base, grid.Points(), mode, core.Options{MMax: meta.MMax})
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	ses := &session{
		id:      id,
		engine:  engine,
		st:      st,
		liner:   linerName,
		mode:    modeName,
		created: meta.Created,
		meta:    meta,
		log:     log,
	}
	s.attachCluster(ses)
	// Replay the batches journaled after the snapshot. Every batch was
	// accepted (rehearsed) by the live path, so a failure here means
	// the journal and the engine disagree about validity — quarantine
	// rather than serve a placement that diverged from what clients
	// were told.
	for _, r := range rec.Records {
		var jr journalRecord
		if err := json.Unmarshal(r.Payload, &jr); err != nil {
			ses.quarantined = fmt.Sprintf("replay: record %d: %v", r.Seq, err)
			return ses, nil
		}
		for i, ew := range jr.Edits {
			ed, err := ew.toEdit()
			if err == nil {
				err = engine.Apply(ed)
			}
			if err != nil {
				ses.quarantined = fmt.Sprintf("replay: record %d edit %d: %v", r.Seq, i, err)
				return ses, nil
			}
		}
	}
	if _, err := engine.Flush(ctx); err != nil {
		if errors.Is(err, core.ErrCanceled) {
			return nil, err
		}
		ses.quarantined = "replay flush: " + err.Error()
		return ses, nil
	}
	return ses, nil
}
