package serve

//tsvlint:apiboundary

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"tsvstress/internal/aging"
	"tsvstress/internal/core"
	"tsvstress/internal/reliability"
)

// AgingRequest is the POST /v1/placements/{id}/aging body: an optional
// override of the simulation's time stepping and the uniform per-TSV
// electrical assignment. Omitted (zero) fields take the engine's
// defaults; every supplied value is validated (finite, positive where
// required) before any compute runs.
type AgingRequest struct {
	// DTSeconds is the base integration step in seconds (default 1e6).
	DTSeconds float64 `json:"dtSeconds,omitempty"`
	// MinDTSeconds is the crossing-localization floor in seconds
	// (default dtSeconds/4096).
	MinDTSeconds float64 `json:"minDtSeconds,omitempty"`
	// MaxTimeSeconds bounds the simulated time per TSV in seconds
	// (default 1e10); a via outliving it is reported censored.
	MaxTimeSeconds float64 `json:"maxTimeSeconds,omitempty"`
	// UnitCurrentA is the per-parallelism-unit current in A (default
	// 55 mA across a 64-bit interface).
	UnitCurrentA float64 `json:"unitCurrentA,omitempty"`
	// MaxParallelism is the starting activation parallelism, a power of
	// two (default 16).
	MaxParallelism int `json:"maxParallelism,omitempty"`
	// NTheta is the interface-ring sample count feeding the stress
	// summaries (default 72).
	NTheta int `json:"ntheta,omitempty"`
	// Workers bounds the simulation fan-out (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Top limits the per-TSV detail in the response to the N
	// shortest-lived vias (default 20; 0 keeps the default, -1 = all).
	Top int `json:"top,omitempty"`
}

// AgingTSV is one via's simulated fate on the wire.
type AgingTSV struct {
	Index int     `json:"index"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Name  string  `json:"name,omitempty"`
	// LifetimeSeconds is the EM lifetime in seconds (a lower bound when
	// Censored).
	LifetimeSeconds float64 `json:"lifetimeSeconds"`
	Censored        bool    `json:"censored,omitempty"`
	VoidRadiusUm    float64 `json:"voidRadiusUm"`
	ResGainPct      float64 `json:"resGainPct"`
	// DropTimesSeconds are the parallelism-halving instants in seconds.
	DropTimesSeconds []float64 `json:"dropTimesSeconds"`
	ExtrusionNm      float64   `json:"extrusionNm"`
	ExtrusionRisk    float64   `json:"extrusionRisk"`
	MaxVonMisesMPa   float64   `json:"maxVonMisesMPa"`
}

// AgingResponse answers the aging endpoint: the lifetime/extrusion
// distribution of the session's current placement plus the Top
// shortest-lived vias in detail.
type AgingResponse struct {
	ID      string `json:"id"`
	NumTSVs int    `json:"numTSVs"`
	// Censored counts vias that outlived maxTimeSeconds.
	Censored int `json:"censored"`
	// Lifetime distribution in seconds.
	MeanLifetimeSeconds float64 `json:"meanLifetimeSeconds"`
	MinLifetimeSeconds  float64 `json:"minLifetimeSeconds"`
	P10LifetimeSeconds  float64 `json:"p10LifetimeSeconds"`
	// Extrusion distribution: heights in nm, risk dimensionless [0,1].
	MeanExtrusionNm float64 `json:"meanExtrusionNm"`
	P90ExtrusionNm  float64 `json:"p90ExtrusionNm"`
	MeanRisk        float64 `json:"meanRisk"`
	P90Risk         float64 `json:"p90Risk"`
	FlushMs         float64 `json:"flushMs"`
	SimMs           float64 `json:"simMs"`
	// TSVs are the Top shortest-lived vias, worst first.
	TSVs []AgingTSV `json:"tsvs"`
}

// decodeAging decodes and validates an aging request body into the
// engine's config and drive. It never panics on malformed input and
// rejects NaN/Inf/negative time steps — the fuzz target pins both.
func decodeAging(r io.Reader) (AgingRequest, aging.Config, aging.Drive, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req AgingRequest
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		// An empty body is a valid "all defaults" request; anything else
		// must parse.
		return AgingRequest{}, aging.Config{}, aging.Drive{}, fmt.Errorf("invalid JSON body: %w", err)
	}
	cfg, err := aging.Config{
		DTSeconds:      req.DTSeconds,
		MinDTSeconds:   req.MinDTSeconds,
		MaxTimeSeconds: req.MaxTimeSeconds,
	}.Normalize()
	if err != nil {
		return AgingRequest{}, aging.Config{}, aging.Drive{}, err
	}
	d := aging.DefaultDrive()
	if req.UnitCurrentA != 0 {
		d.UnitCurrentA = req.UnitCurrentA
	}
	if req.MaxParallelism != 0 {
		d.MaxParallelism = req.MaxParallelism
	}
	if err := aging.ValidateDrive(d); err != nil {
		return AgingRequest{}, aging.Config{}, aging.Drive{}, err
	}
	if req.NTheta == 0 {
		req.NTheta = 72
	}
	if req.NTheta < 4 || req.NTheta > 1024 {
		return AgingRequest{}, aging.Config{}, aging.Drive{}, fmt.Errorf("ntheta %d outside [4, 1024]", req.NTheta)
	}
	if req.Workers < 0 {
		return AgingRequest{}, aging.Config{}, aging.Drive{}, fmt.Errorf("workers %d must be ≥ 0", req.Workers)
	}
	switch {
	case req.Top == 0:
		req.Top = 20
	case req.Top < -1:
		return AgingRequest{}, aging.Config{}, aging.Drive{}, fmt.Errorf("top %d must be ≥ -1", req.Top)
	}
	return req, cfg, d, nil
}

// handleAging runs a bounded lifetime simulation against the session's
// current placement: flush the stress state, digest every via's
// interface ring, then integrate the EM + extrusion models per TSV.
// The simulation observes the request context (cancellation/deadline →
// 504 like every other compute route).
func (s *Server) handleAging(w http.ResponseWriter, r *http.Request) {
	ses, unlock, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer unlock()
	req, cfg, drive, err := decodeAging(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	flushMs, err := s.flushLocked(r.Context(), ses)
	if err != nil {
		s.writeComputeError(w, ses.id, "flush", err)
		return
	}
	s.setDegradedHeader(w, ses)
	an := ses.engine.Analyzer()
	var eval reliability.Evaluator
	switch ses.engine.Mode() {
	case core.ModeLS:
		eval = an.StressLS
	case core.ModeInteractive:
		eval = an.Interactive
	default:
		eval = an.StressAt
	}
	pl := ses.engine.Placement()
	reports, err := reliability.Screen(pl, ses.st, eval, reliability.Options{NTheta: req.NTheta})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "aging: "+err.Error())
		return
	}
	sums := reliability.Summarize(reports)

	start := time.Now()
	res, err := aging.SimulateParallel(r.Context(), cfg, sums, aging.UniformDrives(drive, len(sums)), req.Workers)
	if err != nil {
		s.writeComputeError(w, ses.id, "aging", err)
		return
	}
	simMs := float64(time.Since(start)) / float64(time.Millisecond)

	ranked := append([]aging.TSVResult(nil), res.TSVs...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].LifetimeSeconds < ranked[j].LifetimeSeconds
	})
	limit := len(ranked)
	if req.Top >= 0 && req.Top < limit {
		limit = req.Top
	}
	resp := AgingResponse{
		ID:                  ses.id,
		NumTSVs:             res.Stats.NumTSVs,
		Censored:            res.Stats.NumCensored,
		MeanLifetimeSeconds: res.Stats.MeanLifetimeSeconds,
		MinLifetimeSeconds:  res.Stats.MinLifetimeSeconds,
		P10LifetimeSeconds:  res.Stats.P10LifetimeSeconds,
		MeanExtrusionNm:     res.Stats.MeanExtrusionNm,
		P90ExtrusionNm:      res.Stats.P90ExtrusionNm,
		MeanRisk:            res.Stats.MeanRisk,
		P90Risk:             res.Stats.P90Risk,
		FlushMs:             flushMs,
		SimMs:               simMs,
	}
	for _, tr := range ranked[:limit] {
		resp.TSVs = append(resp.TSVs, AgingTSV{
			Index:            tr.Index,
			X:                pl.TSVs[tr.Index].Center.X,
			Y:                pl.TSVs[tr.Index].Center.Y,
			Name:             pl.TSVs[tr.Index].Name,
			LifetimeSeconds:  tr.LifetimeSeconds,
			Censored:         tr.Censored,
			VoidRadiusUm:     tr.VoidRadiusUm,
			ResGainPct:       tr.ResGainPct,
			DropTimesSeconds: tr.DropTimesSeconds,
			ExtrusionNm:      tr.ExtrusionNm,
			ExtrusionRisk:    tr.ExtrusionRisk,
			MaxVonMisesMPa:   tr.MaxVonMisesMPa,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
