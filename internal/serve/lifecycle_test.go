package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/wal"
)

// fetchBundle GETs a session export and decodes it.
func fetchBundle(t *testing.T, c *http.Client, url string) *wal.Bundle {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d: %s", resp.StatusCode, raw)
	}
	b, err := wal.DecodeBundle(raw)
	if err != nil {
		t.Fatalf("export bundle does not decode: %v", err)
	}
	return b
}

// importBundle POSTs an encoded bundle to a server's import endpoint.
func importBundle(t *testing.T, c *http.Client, url string, b *wal.Bundle) *http.Response {
	t.Helper()
	resp, err := c.Post(url, "application/octet-stream", bytes.NewReader(wal.EncodeBundle(b)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// applyChaosEdits drives a fixed deterministic edit history against a
// session and mirrors it locally (rehearsed the same way the server
// does), returning the mirror for parity checks.
func applyChaosEdits(t *testing.T, c *http.Client, base string) *geom.Placement {
	t.Helper()
	mirror := mirrorPlacement()
	minPitch := 2 * material.Baseline(material.BCB).RPrime
	batches := [][]EditWire{
		{{Op: "move", Index: 0, X: 3, Y: 2}},
		{{Op: "add", X: 90, Y: 90}, {Op: "remove", Index: 5}},
		{{Op: "move", Index: 2, X: 47, Y: 1}, {Op: "add", X: -8, Y: 50}},
	}
	for bi, batch := range batches {
		for _, ew := range batch {
			ed, err := ew.toEdit()
			if err == nil {
				err = ed.Apply(mirror, minPitch)
			}
			if err != nil {
				t.Fatalf("mirror batch %d: %v", bi, err)
			}
		}
		var er EditsResponse
		if resp := doJSON(t, c, "POST", base+"/edits", EditsRequest{Edits: batch}, &er); resp.StatusCode != http.StatusOK {
			t.Fatalf("edits batch %d: status %d", bi, resp.StatusCode)
		}
	}
	return mirror
}

// TestMigrationParity ships a session from one replica to another via
// export?fence=1 → import → delete and pins the migrated map to the
// never-moved reference within 1e-9 MPa. The fence must refuse compute
// on the source while the bundle is in flight.
func TestMigrationParity(t *testing.T) {
	src := NewServer(Options{WALDir: t.TempDir(), SnapshotEvery: 2})
	tsSrc := httptest.NewServer(src.Handler())
	defer tsSrc.Close()
	dst := NewServer(Options{WALDir: t.TempDir(), SnapshotEvery: 2})
	tsDst := httptest.NewServer(dst.Handler())
	defer tsDst.Close()
	c := tsSrc.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", tsSrc.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := tsSrc.URL + "/v1/placements/" + created.ID
	mirror := applyChaosEdits(t, c, base)

	b := fetchBundle(t, c, base+"/export?fence=1")
	if len(b.Meta) == 0 {
		t.Fatal("bundle has no meta")
	}

	// The fence holds: the source refuses further compute with a retry
	// hint, so a client racing the migration cannot lose an update.
	resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 1, X: 30, Y: 1}}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("edit through the fence: status %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fenced 409 carries no Retry-After")
	}

	// Import on the new owner under the same id, then release the source.
	if resp := importBundle(t, c, tsDst.URL+"/v1/placements/"+created.ID+"/import", b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("import: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "DELETE", base, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete source: status %d", resp.StatusCode)
	}

	chaosCheckParity(t, c, tsDst.URL+"/v1/placements/"+created.ID, mirror)

	// A second import of the same id must be refused (409), not overwrite.
	if resp := importBundle(t, c, tsDst.URL+"/v1/placements/"+created.ID+"/import", b); resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-import: status %d, want 409", resp.StatusCode)
	}
}

// TestMigrationParityNoWAL migrates a session that was never durable:
// the source synthesizes a meta+snapshot bundle from memory, and the
// destination (also WAL-less) rebuilds it in memory.
func TestMigrationParityNoWAL(t *testing.T) {
	src := NewServer(Options{})
	tsSrc := httptest.NewServer(src.Handler())
	defer tsSrc.Close()
	dst := NewServer(Options{})
	tsDst := httptest.NewServer(dst.Handler())
	defer tsDst.Close()
	c := tsSrc.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", tsSrc.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	mirror := applyChaosEdits(t, c, tsSrc.URL+"/v1/placements/"+created.ID)

	b := fetchBundle(t, c, tsSrc.URL+"/v1/placements/"+created.ID+"/export")
	if b.Snapshot == nil {
		t.Fatal("synthesized bundle has no snapshot")
	}
	if resp := importBundle(t, c, tsDst.URL+"/v1/placements/"+created.ID+"/import", b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("import: status %d", resp.StatusCode)
	}
	chaosCheckParity(t, c, tsDst.URL+"/v1/placements/"+created.ID, mirror)
}

// TestEvictionHydrationParity pins the cold-session path: with
// MaxLiveSessions=1 the second create evicts the first session to its
// WAL, the next request for it rehydrates through the recovery path,
// and the rehydrated map equals the never-evicted reference.
func TestEvictionHydrationParity(t *testing.T) {
	srv := NewServer(Options{WALDir: t.TempDir(), SnapshotEvery: 2, MaxLiveSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	var a CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &a); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create a: status %d", resp.StatusCode)
	}
	mirror := applyChaosEdits(t, c, ts.URL+"/v1/placements/"+a.ID)

	var b CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create b: status %d", resp.StatusCode)
	}

	// a must now be listed as evicted, b live.
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	state := map[string]bool{}
	for _, si := range list.Placements {
		state[si.ID] = si.Evicted
	}
	if ev, ok := state[a.ID]; !ok || !ev {
		t.Fatalf("session %s not listed evicted: %+v", a.ID, list.Placements)
	}
	if ev, ok := state[b.ID]; !ok || ev {
		t.Fatalf("session %s not listed live: %+v", b.ID, list.Placements)
	}

	// An evicted session still exports — straight from disk.
	if bundle := fetchBundle(t, c, ts.URL+"/v1/placements/"+a.ID+"/export"); len(bundle.Meta) == 0 {
		t.Fatal("disk export has no meta")
	}

	// Touching a hydrates it (and evicts b in turn) with full parity.
	chaosCheckParity(t, c, ts.URL+"/v1/placements/"+a.ID, mirror)
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	for _, si := range list.Placements {
		if si.ID == b.ID && !si.Evicted {
			t.Fatalf("session %s should have been evicted by a's hydration", b.ID)
		}
	}

	// DELETE of an evicted session removes its WAL for good.
	if resp := doJSON(t, c, "DELETE", ts.URL+"/v1/placements/"+b.ID, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete evicted: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+b.ID+"/map", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted evicted session still resolves: status %d", resp.StatusCode)
	}
}

// TestEvictedSessionsSurviveRestart: an evicted session is indistinguishable
// on disk from a crashed one, so a restart recovers it.
func TestEvictedSessionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(Options{WALDir: dir, SnapshotEvery: 2, MaxLiveSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()
	var a CreateResponse
	doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &a)
	mirror := applyChaosEdits(t, c, ts.URL+"/v1/placements/"+a.ID)
	var b CreateResponse
	doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &b)
	ts.Close() // SIGKILL-alike: nothing flushed beyond what Append synced

	srv2 := NewServer(Options{WALDir: dir, SnapshotEvery: 2})
	if n, err := srv2.Recover(context.Background()); err != nil || n != 2 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	chaosCheckParity(t, ts2.Client(), ts2.URL+"/v1/placements/"+a.ID, mirror)
}

// TestCreateWithRequestedID covers the gateway's minted-id header.
func TestCreateWithRequestedID(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	post := func(id string) *http.Response {
		t.Helper()
		b := new(bytes.Buffer)
		if err := json.NewEncoder(b).Encode(chaosPlacement()); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", ts.URL+"/v1/placements", b)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Tsvgate-Session", id)
		}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("s-42.alpha_X"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("requested id: status %d", resp.StatusCode)
	}
	if resp := post("s-42.alpha_X"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: status %d, want 409", resp.StatusCode)
	}
	if resp := post("bad id!"); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid id: status %d, want 422", resp.StatusCode)
	}
	if resp := post("p7"); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("namespace id: status %d, want 422", resp.StatusCode)
	}
}

// TestImportRejectsGarbage: the decoder refuses junk before any state
// is reserved.
func TestImportRejectsGarbage(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/placements/x1/import", "application/octet-stream",
		bytes.NewReader([]byte("not a bundle")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import: status %d, want 400", resp.StatusCode)
	}
	if n := srv.NumSessions(); n != 0 {
		t.Fatalf("garbage import left %d sessions", n)
	}
}

// TestImportPreservesMintCounter: importing "p9" must advance the mint
// counter so a later create cannot collide with the migrated session.
func TestImportPreservesMintCounter(t *testing.T) {
	src := NewServer(Options{})
	tsSrc := httptest.NewServer(src.Handler())
	defer tsSrc.Close()
	c := tsSrc.Client()
	var created CreateResponse
	doJSON(t, c, "POST", tsSrc.URL+"/v1/placements", chaosPlacement(), &created)
	b := fetchBundle(t, c, tsSrc.URL+"/v1/placements/"+created.ID+"/export")

	dst := NewServer(Options{})
	tsDst := httptest.NewServer(dst.Handler())
	defer tsDst.Close()
	if resp := importBundle(t, c, tsDst.URL+"/v1/placements/p9/import", b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("import p9: status %d", resp.StatusCode)
	}
	var next CreateResponse
	doJSON(t, c, "POST", tsDst.URL+"/v1/placements", chaosPlacement(), &next)
	if next.ID == "p9" || next.ID == "" {
		t.Fatalf("minted id %q collides with the imported session", next.ID)
	}
	if _, n := parseMustID(t, next.ID); n <= 9 {
		t.Fatalf("mint counter did not advance past the import: minted %q", next.ID)
	}
}

func parseMustID(t *testing.T, id string) (string, int) {
	t.Helper()
	n, ok := parseSessionID(id)
	if !ok {
		t.Fatalf("id %q is not in the p<n> namespace", id)
	}
	return id, n
}
