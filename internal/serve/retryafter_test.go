package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// retryAfterOf asserts the response carries a Retry-After header inside
// the documented [1, 60] second clamp and returns it.
func retryAfterOf(t *testing.T, resp *http.Response) int {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("rejection carries no Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %q outside the [1, 60] second clamp", ra)
	}
	return secs
}

// TestAdmissionRejectRetryAfter pins the 503 shape under saturation:
// with the process-wide admission semaphore full, a compute request is
// rejected after AdmissionWait and told when to come back.
func TestAdmissionRejectRetryAfter(t *testing.T) {
	s := NewServer(Options{AdmissionWait: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Saturate the semaphore (initializing it first through the normal
	// admit path), and restore it whatever the test's outcome.
	release, err := s.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	extra := 0
	defer func() {
		for i := 0; i < extra; i++ {
			<-admitCh
		}
	}()
	for {
		select {
		case admitCh <- struct{}{}:
			extra++
			continue
		default:
		}
		break
	}

	var em errorResponse
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/placements", chaosPlacement(), &em)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create under saturation: status %d (%s), want 503", resp.StatusCode, em.Error)
	}
	retryAfterOf(t, resp)
}

// TestSessionLimitRetryAfter pins the 429 shape: the session-limit
// rejection carries the same queue-derived polling hint.
func TestSessionLimitRetryAfter(t *testing.T) {
	s := NewServer(Options{MaxSessions: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create: status %d", resp.StatusCode)
	}
	var em errorResponse
	resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &em)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create past the session limit: status %d (%s), want 429", resp.StatusCode, em.Error)
	}
	retryAfterOf(t, resp)
}

// TestRetryAfterSecondsClamps pins the derivation's bounds directly:
// whatever the rolling latency window holds, the hint stays in [1, 60].
func TestRetryAfterSecondsClamps(t *testing.T) {
	s := NewServer(Options{MaxInFlight: 1})
	if got := s.retryAfterSeconds(); got < 1 || got > 60 {
		t.Fatalf("retryAfterSeconds() = %d, want within [1, 60]", got)
	}
	// A pathological latency history must hit the ceiling, not escape it.
	for i := 0; i < 4; i++ {
		editLatencyWindow.observe(10 * time.Minute)
	}
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("retryAfterSeconds() = %d under 10-minute mean latency, want the 60s ceiling", got)
	}
}
