package serve

//tsvlint:apiboundary

// Session lifecycle beyond create/delete: cold-session eviction and
// rehydration (the horizontal tier's answer to "millions of sessions,
// finite RAM") and the export/import pair the gateway uses to ship a
// session between replicas via its WAL (DESIGN.md §19).
//
// Eviction: when Options.MaxLiveSessions is exceeded, the least-
// recently-flushed durable session is checkpointed (final snapshot),
// its journal closed and its engine released; only the id survives in
// Server.evicted. The next request for it rebuilds the engine from the
// WAL through the same checkpoint-and-replay path crash recovery uses,
// so an evicted-and-hydrated session cannot diverge from one that
// never left memory.
//
// Export/import: GET …/{id}/export serializes the session's WAL
// directory into a wal.Bundle (a no-WAL session synthesizes meta +
// current-placement snapshot); POST …/{id}/import rehydrates a shipped
// bundle as a new session. export?fence=1 additionally marks the
// session migrating, refusing further compute here so the gateway can
// ship-then-delete without a lost-update window.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tsvstress/internal/wal"
)

// acquireSession resolves the request's session — hydrating it from
// its WAL if it was evicted — and returns it locked. A session evicted
// between resolution and locking is re-resolved once; a migrating
// session answers 409 with a retry hint. On any failure the response
// has been written and ok is false.
func (s *Server) acquireSession(w http.ResponseWriter, r *http.Request) (ses *session, unlock func(), ok bool) {
	id := r.PathValue("id")
	for attempt := 0; attempt < 2; attempt++ {
		ses, err := s.resolveSession(r.Context(), id)
		if err != nil {
			var qe *quarantinedError
			switch {
			case errors.As(err, &qe):
				writeError(w, http.StatusServiceUnavailable, qe.Error())
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "session hydration: "+err.Error())
			default:
				writeError(w, http.StatusNotFound, err.Error())
			}
			return nil, nil, false
		}
		unlock := lockSession(ses)
		if ses.evicted {
			// Lost the race against the LRU sweep: the pointer we hold
			// is a husk whose journal is closed. Resolve again — the
			// hydration path will rebuild it.
			unlock()
			continue
		}
		if ses.migrating {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusConflict,
				fmt.Sprintf("placement %q is migrating to another replica; retry", id))
			unlock()
			return nil, nil, false
		}
		ses.lastUsed.Store(time.Now().UnixNano())
		return ses, unlock, true
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("placement %q is being evicted; retry", id))
	return nil, nil, false
}

// resolveSession returns the live session for id, rebuilding it from
// its WAL when it was evicted. Hydration of one id is serialized:
// the first request builds, the rest wait on its channel.
func (s *Server) resolveSession(ctx context.Context, id string) (*session, error) {
	for {
		s.mu.Lock()
		if ses, ok := s.sessions[id]; ok {
			if ses.quarantined != "" {
				s.mu.Unlock()
				return nil, &quarantinedError{id: id, reason: ses.quarantined}
			}
			s.mu.Unlock()
			return ses, nil
		}
		if !s.evicted[id] {
			s.mu.Unlock()
			return nil, fmt.Errorf("unknown placement %q", id)
		}
		if ch, busy := s.hydrating[id]; busy {
			s.mu.Unlock()
			select {
			case <-ch:
				continue // hydrated (or failed); re-check the table
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		s.hydrating[id] = ch
		s.mu.Unlock()
		err := s.hydrate(ctx, id)
		s.mu.Lock()
		delete(s.hydrating, id)
		close(ch)
		s.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("hydrating placement %q: %w", id, err)
		}
	}
}

// hydrate rebuilds one evicted session from its WAL directory and
// publishes it (possibly quarantined, if replay diverged). The caller
// holds the id's hydrating channel.
func (s *Server) hydrate(ctx context.Context, id string) error {
	s.ensureLiveCapacity(1)
	ses, err := s.recoverSession(ctx, id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.evicted, id)
	metricEvictedSessions.Set(int64(len(s.evicted)))
	ses.id = id
	s.sessions[id] = ses
	registerSessionQueue(id)
	metricSessions.Set(int64(len(s.sessions)))
	if ses.quarantined != "" {
		metricQuarantined.Set(int64(s.quarantinedLocked()))
	}
	s.mu.Unlock()
	s.attachCluster(ses)
	ses.lastUsed.Store(time.Now().UnixNano())
	metricHydrations.Add(1)
	return nil
}

// ensureLiveCapacity evicts least-recently-used durable sessions until
// there is room for incoming new live sessions under MaxLiveSessions.
// Sessions that cannot be evicted (no journal, quarantined, already
// migrating) are passed over; if nothing is evictable the bound is
// soft — the incoming session is admitted anyway, since refusing
// compute outright would be worse than briefly exceeding the target.
func (s *Server) ensureLiveCapacity(incoming int) {
	if s.opt.MaxLiveSessions <= 0 || s.opt.WALDir == "" {
		return
	}
	for {
		s.mu.Lock()
		if len(s.sessions)+incoming <= s.opt.MaxLiveSessions {
			s.mu.Unlock()
			return
		}
		var victim *session
		var victimAt int64
		for _, ses := range s.sessions {
			if ses.quarantined != "" {
				continue
			}
			if at := ses.lastUsed.Load(); victim == nil || at < victimAt {
				victim, victimAt = ses, at
			}
		}
		s.mu.Unlock()
		if victim == nil || !s.evict(victim) {
			return
		}
	}
}

// evict checkpoints one session and releases its engine, leaving only
// the WAL directory and an entry in Server.evicted. Returns false when
// the session turned out to be unevictable (raced a delete, has no
// journal, is mid-migration) so the LRU sweep can stop rather than
// spin. Lock order: ses.mu is taken first, then Server.mu — the
// declared session.mu < Server.mu order.
func (s *Server) evict(ses *session) bool {
	unlock := lockSession(ses)
	defer unlock()
	if ses.evicted || ses.migrating || ses.log == nil {
		return false
	}
	s.mu.Lock()
	if cur, ok := s.sessions[ses.id]; !ok || cur != ses || ses.quarantined != "" {
		s.mu.Unlock()
		return false
	}
	delete(s.sessions, ses.id)
	s.evicted[ses.id] = true
	dropSessionQueue(ses.id)
	metricSessions.Set(int64(len(s.sessions)))
	metricEvictedSessions.Set(int64(len(s.evicted)))
	s.mu.Unlock()
	// Checkpoint so rehydration replays from a current snapshot rather
	// than the whole journal tail. A snapshot failure is tolerable: the
	// journal still holds every accepted batch.
	if ses.batchesSinceSnap > 0 {
		if payload, err := marshalSnapshot(ses.engine.Placement()); err == nil {
			if ses.log.Snapshot(payload) == nil {
				ses.batchesSinceSnap = 0
				metricSnapshots.Add(1)
			} else {
				metricWALErrors.Add(1)
			}
		}
	}
	_ = ses.log.Close()
	ses.log = nil
	if ses.eval != nil {
		ses.eval.Close()
		ses.eval = nil
	}
	ses.evicted = true
	ses.engine = nil // release the field map and tile partition
	metricEvictions.Add(1)
	return true
}

// exportBundle builds the session's portable state under ses.mu: the
// WAL directory when durable, else a synthesized meta + current-
// placement snapshot.
func (s *Server) exportBundle(ses *session) (*wal.Bundle, error) {
	if ses.log != nil {
		return wal.Export(s.sessionDir(ses.id))
	}
	meta, err := marshalMeta(ses.meta)
	if err != nil {
		return nil, err
	}
	snap, err := marshalSnapshot(ses.engine.Placement())
	if err != nil {
		return nil, err
	}
	return &wal.Bundle{Meta: meta, SnapshotSeq: 1, Snapshot: snap}, nil
}

// handleExport serializes a session for shipping. With ?fence=1 the
// session additionally refuses further compute on this replica (the
// migration fence); DELETE lifts the session entirely once the import
// elsewhere succeeded.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Evicted sessions export straight from disk — no need to rebuild
	// an engine just to serialize the WAL that would rebuild it.
	s.mu.Lock()
	onDisk := s.evicted[id]
	s.mu.Unlock()
	if onDisk {
		b, err := wal.Export(s.sessionDir(id))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "export: "+err.Error())
			return
		}
		metricExports.Add(1)
		writeBundle(w, b)
		return
	}
	ses, unlock, ok := s.acquireSession(w, r)
	if !ok {
		return
	}
	defer unlock()
	b, err := s.exportBundle(ses)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "export: "+err.Error())
		return
	}
	if r.URL.Query().Get("fence") == "1" {
		ses.migrating = true
	}
	metricExports.Add(1)
	writeBundle(w, b)
}

func writeBundle(w http.ResponseWriter, b *wal.Bundle) {
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(wal.EncodeBundle(b))
}

// handleImport rehydrates a shipped bundle as a session with the path
// id. With a WAL directory the bundle lands on disk first and recovery
// replays it (so the imported session is durable from its first
// moment); without one it is rebuilt in memory.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wal.MaxBundleBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "import: reading bundle: "+err.Error())
		return
	}
	b, err := wal.DecodeBundle(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "import: "+err.Error())
		return
	}
	if err := s.reserveImported(id); err != nil {
		var taken *idTakenError
		var invalid *invalidIDError
		switch {
		case errors.As(err, &taken):
			writeError(w, http.StatusConflict, err.Error())
		case errors.As(err, &invalid):
			writeError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, err.Error())
		}
		return
	}
	s.ensureLiveCapacity(1)
	var ses *session
	if s.opt.WALDir != "" {
		dir := s.sessionDir(id)
		if err := wal.Rehydrate(dir, b); err != nil {
			s.unreserve()
			writeError(w, http.StatusConflict, "import: "+err.Error())
			return
		}
		ses, err = s.recoverSession(r.Context(), id)
		if err != nil {
			s.unreserve()
			_ = wal.Remove(dir)
			s.writeImportError(w, err)
			return
		}
	} else {
		rec := &wal.Recovered{Meta: b.Meta, SnapshotSeq: b.SnapshotSeq, Snapshot: b.Snapshot, Records: b.Records}
		ses, err = s.buildSession(r.Context(), id, rec, nil)
		if err != nil {
			s.unreserve()
			s.writeImportError(w, err)
			return
		}
	}
	if ses.quarantined != "" {
		// A bundle whose replay diverges must not take root here: the
		// source still has the authoritative copy.
		reason := ses.quarantined
		if ses.log != nil {
			_ = ses.log.Close()
			_ = wal.Remove(s.sessionDir(id))
		}
		s.unreserve()
		writeError(w, http.StatusUnprocessableEntity, "import: bundle replay diverged: "+reason)
		return
	}
	s.attachCluster(ses)
	s.publishSession(id, ses)
	metricImports.Add(1)
	writeJSON(w, http.StatusCreated, CreateResponse{
		ID:        id,
		NumTSVs:   ses.engine.NumTSVs(),
		NumPoints: ses.engine.NumPoints(),
		NumTiles:  ses.engine.Stats().TotalTiles,
		Mode:      ses.mode,
		Liner:     ses.liner,
	})
}

// writeImportError maps a bundle rebuild failure: cancellation is the
// client's deadline (504), anything else is a bad bundle (422).
func (s *Server) writeImportError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "import: "+err.Error())
		return
	}
	writeError(w, http.StatusUnprocessableEntity, "import: "+err.Error())
}
