package serve

import (
	"expvar"
	"net/http"
	"strconv"
	"time"

	"tsvstress/internal/incr"
)

// Service metrics, published once under the "tsvserve" expvar map (the
// package may construct many Servers — tests do — but expvar names are
// process-global, so the vars live at package level and aggregate).
var (
	metricRequests    = new(expvar.Int)   // compute requests accepted for admission
	metricRejects     = new(expvar.Int)   // admission rejections (503)
	metricInFlight    = new(expvar.Int)   // currently executing compute requests
	metricSessions    = new(expvar.Int)   // live placement sessions
	metricEdits       = new(expvar.Int)   // applied edits
	metricFlushes     = new(expvar.Int)   // incremental flushes
	metricDirtyTile   = new(expvar.Float) // dirty-tile ratio of the last flush
	metricCacheEnt    = new(expvar.Int)   // pitch-coefficient cache entries
	metricCacheHits   = new(expvar.Int)   // pitch-coefficient cache hits
	metricPanics      = new(expvar.Int)   // contained handler/kernel panics
	metricQuarantined = new(expvar.Int)   // currently quarantined sessions
	metricDegraded    = new(expvar.Int)   // load-shedding (full→ls) flushes served
	metricWALAppends  = new(expvar.Int)   // journaled edit batches
	metricWALErrors   = new(expvar.Int)   // WAL append/snapshot failures
	metricSnapshots   = new(expvar.Int)   // placement snapshots written
	metricRecovered   = new(expvar.Int)   // sessions restored by Recover
	editLatency       = newHistogram("edit_latency_ms",
		1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)
)

func init() {
	m := expvar.NewMap("tsvserve")
	m.Set("requests_total", metricRequests)
	m.Set("admission_rejects_total", metricRejects)
	m.Set("in_flight", metricInFlight)
	m.Set("sessions", metricSessions)
	m.Set("edits_total", metricEdits)
	m.Set("flushes_total", metricFlushes)
	m.Set("last_dirty_tile_ratio", metricDirtyTile)
	m.Set("coeff_cache_entries", metricCacheEnt)
	m.Set("coeff_cache_hits", metricCacheHits)
	m.Set("panics_total", metricPanics)
	m.Set("quarantined_sessions", metricQuarantined)
	m.Set("degraded_responses_total", metricDegraded)
	m.Set("wal_appends_total", metricWALAppends)
	m.Set("wal_errors_total", metricWALErrors)
	m.Set("snapshots_total", metricSnapshots)
	m.Set("recovered_sessions_total", metricRecovered)
	m.Set("admit_waiting", expvar.Func(func() any { return admitWaiting.Load() }))
	m.Set("edit_latency_ms", editLatency.m)
}

// histogram is a fixed-bucket latency histogram over expvar counters:
// cumulative "le_<bound>" buckets plus count and sum, the layout
// scrapers expect from Prometheus-style histograms.
type histogram struct {
	bounds  []float64 // upper bounds, ascending
	buckets []*expvar.Int
	inf     *expvar.Int
	count   *expvar.Int
	sum     *expvar.Float
	m       *expvar.Map
}

func newHistogram(name string, bounds ...float64) *histogram {
	h := &histogram{
		bounds: bounds,
		inf:    new(expvar.Int),
		count:  new(expvar.Int),
		sum:    new(expvar.Float),
		m:      new(expvar.Map),
	}
	for _, b := range bounds {
		v := new(expvar.Int)
		h.buckets = append(h.buckets, v)
		h.m.Set("le_"+strconv.FormatFloat(b, 'g', -1, 64), v)
	}
	h.m.Set("le_inf", h.inf)
	h.m.Set("count", h.count)
	h.m.Set("sum", h.sum)
	return h
}

// observe records one duration. Buckets are cumulative: every bucket
// whose bound is ≥ the value increments.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.count.Add(1)
	h.sum.Add(ms)
	h.inf.Add(1)
	for i, b := range h.bounds {
		if ms <= b {
			h.buckets[i].Add(1)
		}
	}
}

// recordFlush publishes the engine counters of the session that just
// flushed.
func recordFlush(st incr.Stats, elapsed time.Duration) {
	metricFlushes.Add(1)
	metricDirtyTile.Set(st.LastDirtyRatio)
	metricCacheEnt.Set(int64(st.CoeffCacheEntries))
	metricCacheHits.Set(int64(st.CoeffCacheHits))
	editLatency.observe(elapsed)
}

// expvarHandler exposes the process expvar page (/debug/vars).
func expvarHandler() http.Handler { return expvar.Handler() }
