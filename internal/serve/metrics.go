package serve

import (
	"expvar"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tsvstress/internal/cluster"
	"tsvstress/internal/incr"
)

// Service metrics, published once under the "tsvserve" expvar map (the
// package may construct many Servers — tests do — but expvar names are
// process-global, so the vars live at package level and aggregate).
var (
	metricRequests         = new(expvar.Int)   // compute requests accepted for admission
	metricRejects          = new(expvar.Int)   // admission rejections (503)
	metricInFlight         = new(expvar.Int)   // currently executing compute requests
	metricSessions         = new(expvar.Int)   // live placement sessions
	metricEdits            = new(expvar.Int)   // applied edits
	metricFlushes          = new(expvar.Int)   // incremental flushes
	metricDirtyTile        = new(expvar.Float) // dirty-tile ratio of the last flush
	metricCacheEnt         = new(expvar.Int)   // pitch-coefficient cache entries
	metricCacheHits        = new(expvar.Int)   // pitch-coefficient cache hits
	metricPanics           = new(expvar.Int)   // contained handler/kernel panics
	metricQuarantined      = new(expvar.Int)   // currently quarantined sessions
	metricDegraded         = new(expvar.Int)   // load-shedding (full→ls) flushes served
	metricWALAppends       = new(expvar.Int)   // journaled edit batches
	metricWALErrors        = new(expvar.Int)   // WAL append/snapshot failures
	metricSnapshots        = new(expvar.Int)   // placement snapshots written
	metricRecovered        = new(expvar.Int)   // sessions restored by Recover
	metricClusterFlushes   = new(expvar.Int)   // flushes routed through the cluster tier
	metricClusterFallbacks = new(expvar.Int)   // cluster flushes that fell back to local eval
	metricEvictions        = new(expvar.Int)   // cold sessions checkpointed out of memory
	metricHydrations       = new(expvar.Int)   // evicted sessions rebuilt on demand
	metricExports          = new(expvar.Int)   // session bundles shipped out
	metricImports          = new(expvar.Int)   // session bundles taken in
	metricEvictedSessions  = new(expvar.Int)   // sessions currently on disk only
	// Per-endpoint request accounting, keyed by route name ("create",
	// "edits", "map", "screen", "aging"): cumulative request counts and
	// a live in-flight gauge per route, so a dashboard can tell a stuck
	// aging simulation from edit-path pressure at a glance.
	metricEndpointRequests = new(expvar.Map).Init()
	metricEndpointInFlight = new(expvar.Map).Init()
	editLatency            = newHistogram("edit_latency_ms",
		1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)
	// editLatencyWindow is the rolling complement of the cumulative
	// histogram above: the same buckets over (only) the last minute, so
	// dashboards see current latency without differentiating counters.
	editLatencyWindow = newRollingHistogram(6, 10*time.Second,
		1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)
)

func init() {
	m := expvar.NewMap("tsvserve")
	m.Set("requests_total", metricRequests)
	m.Set("admission_rejects_total", metricRejects)
	m.Set("in_flight", metricInFlight)
	m.Set("sessions", metricSessions)
	m.Set("edits_total", metricEdits)
	m.Set("flushes_total", metricFlushes)
	m.Set("last_dirty_tile_ratio", metricDirtyTile)
	m.Set("coeff_cache_entries", metricCacheEnt)
	m.Set("coeff_cache_hits", metricCacheHits)
	m.Set("panics_total", metricPanics)
	m.Set("quarantined_sessions", metricQuarantined)
	m.Set("degraded_responses_total", metricDegraded)
	m.Set("wal_appends_total", metricWALAppends)
	m.Set("wal_errors_total", metricWALErrors)
	m.Set("snapshots_total", metricSnapshots)
	m.Set("recovered_sessions_total", metricRecovered)
	m.Set("admit_waiting", expvar.Func(func() any { return admitWaiting.Load() }))
	m.Set("edit_latency_ms", editLatency.m)
	m.Set("edit_latency_ms_1m", expvar.Func(editLatencyWindow.snapshot))
	m.Set("session_queue_depth", expvar.Func(sessionQueueDepths))
	m.Set("cluster_flushes_total", metricClusterFlushes)
	m.Set("cluster_fallbacks_total", metricClusterFallbacks)
	m.Set("evictions_total", metricEvictions)
	m.Set("hydrations_total", metricHydrations)
	m.Set("exports_total", metricExports)
	m.Set("imports_total", metricImports)
	m.Set("evicted_sessions", metricEvictedSessions)
	m.Set("endpoint_requests_total", metricEndpointRequests)
	m.Set("endpoint_in_flight", metricEndpointInFlight)
	m.Set("cluster", expvar.Func(clusterSnapshot))
}

// histogram is a fixed-bucket latency histogram over expvar counters:
// cumulative "le_<bound>" buckets plus count and sum, the layout
// scrapers expect from Prometheus-style histograms.
type histogram struct {
	bounds  []float64 // upper bounds, ascending
	buckets []*expvar.Int
	inf     *expvar.Int
	count   *expvar.Int
	sum     *expvar.Float
	m       *expvar.Map
}

func newHistogram(name string, bounds ...float64) *histogram {
	h := &histogram{
		bounds: bounds,
		inf:    new(expvar.Int),
		count:  new(expvar.Int),
		sum:    new(expvar.Float),
		m:      new(expvar.Map),
	}
	for _, b := range bounds {
		v := new(expvar.Int)
		h.buckets = append(h.buckets, v)
		h.m.Set("le_"+strconv.FormatFloat(b, 'g', -1, 64), v)
	}
	h.m.Set("le_inf", h.inf)
	h.m.Set("count", h.count)
	h.m.Set("sum", h.sum)
	return h
}

// observe records one duration. Buckets are cumulative: every bucket
// whose bound is ≥ the value increments.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.count.Add(1)
	h.sum.Add(ms)
	h.inf.Add(1)
	for i, b := range h.bounds {
		if ms <= b {
			h.buckets[i].Add(1)
		}
	}
}

// rollingHistogram is a reset-safe rolling-window view of the same
// latency distribution: observations land in the current time slot of a
// ring, slots older than the window are discarded on rotation, and a
// snapshot merges the live slots. Unlike the cumulative histogram it
// answers "what does latency look like right now" directly — and a
// scraper restart loses nothing, because the window carries its own
// history.
type rollingHistogram struct {
	mu      sync.Mutex
	bounds  []float64
	slotDur time.Duration
	slots   []histSlot
	cur     int
}

type histSlot struct {
	start   time.Time // zero: slot is empty
	buckets []int64   // cumulative, per bound
	inf     int64
	count   int64
	sum     float64
}

func newRollingHistogram(nSlots int, slotDur time.Duration, bounds ...float64) *rollingHistogram {
	h := &rollingHistogram{bounds: bounds, slotDur: slotDur, slots: make([]histSlot, nSlots)}
	for i := range h.slots {
		h.slots[i].buckets = make([]int64, len(bounds))
	}
	return h
}

// rotateLocked advances the ring so slots[cur] covers now, zeroing every
// slot whose window has passed. Caller holds mu.
func (h *rollingHistogram) rotateLocked(now time.Time) {
	cur := &h.slots[h.cur]
	if cur.start.IsZero() {
		cur.start = now.Truncate(h.slotDur)
		return
	}
	for now.Sub(h.slots[h.cur].start) >= h.slotDur {
		next := h.slots[h.cur].start.Add(h.slotDur)
		h.cur = (h.cur + 1) % len(h.slots)
		s := &h.slots[h.cur]
		s.start = next
		for i := range s.buckets {
			s.buckets[i] = 0
		}
		s.inf, s.count, s.sum = 0, 0, 0
	}
}

func (h *rollingHistogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotateLocked(time.Now())
	s := &h.slots[h.cur]
	s.count++
	s.sum += ms
	s.inf++
	for i, b := range h.bounds {
		if ms <= b {
			s.buckets[i]++
		}
	}
}

// snapshot merges the slots still inside the window into one
// histogram-shaped map (the expvar.Func payload).
func (h *rollingHistogram) snapshot() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	h.rotateLocked(now)
	window := h.slotDur * time.Duration(len(h.slots))
	out := make(map[string]any, len(h.bounds)+3)
	merged := make([]int64, len(h.bounds))
	var inf, count int64
	var sum float64
	for _, s := range h.slots {
		if s.start.IsZero() || now.Sub(s.start) >= window {
			continue
		}
		for i := range merged {
			merged[i] += s.buckets[i]
		}
		inf += s.inf
		count += s.count
		sum += s.sum
	}
	for i, b := range h.bounds {
		out["le_"+strconv.FormatFloat(b, 'g', -1, 64)] = merged[i]
	}
	out["le_inf"] = inf
	out["count"] = count
	out["sum"] = sum
	out["window_s"] = window.Seconds()
	return out
}

// sessionQueue maps session id → waiters-plus-holder count of that
// session's mutex: how many compute requests are stacked on one
// placement right now. Counters register at publish and unregister at
// drop, so the expvar map never names dead sessions.
var sessionQueue sync.Map // string → *atomic.Int64

func registerSessionQueue(id string) {
	sessionQueue.Store(id, new(atomic.Int64))
}

func dropSessionQueue(id string) {
	sessionQueue.Delete(id)
}

// enterSessionQueue bumps a session's queue depth, returning the undo.
// Unregistered ids (a session mid-drop) count nowhere, harmlessly.
func enterSessionQueue(id string) func() {
	v, ok := sessionQueue.Load(id)
	if !ok {
		return func() {}
	}
	n := v.(*atomic.Int64)
	n.Add(1)
	return func() { n.Add(-1) }
}

func sessionQueueDepths() any {
	out := make(map[string]int64)
	sessionQueue.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// clusterCoord is the coordinator the expvar page reports on (the
// newest cluster-enabled server wins; expvar is process-global anyway).
var clusterCoord atomic.Pointer[cluster.Coordinator]

func clusterSnapshot() any {
	c := clusterCoord.Load()
	if c == nil {
		return map[string]any{"enabled": false}
	}
	out := c.ExpvarSnapshot()
	out["enabled"] = true
	out["workers_alive"] = c.NumAlive()
	return out
}

// windowMeanLatency is the mean compute latency over the rolling
// window, or fallback when the window is empty.
func windowMeanLatency(fallback time.Duration) time.Duration {
	snap, ok := editLatencyWindow.snapshot().(map[string]any)
	if !ok {
		return fallback
	}
	count, _ := snap["count"].(int64)
	sum, _ := snap["sum"].(float64)
	if count <= 0 {
		return fallback
	}
	return time.Duration(sum / float64(count) * float64(time.Millisecond))
}

// recordFlush publishes the engine counters of the session that just
// flushed.
func recordFlush(st incr.Stats, elapsed time.Duration) {
	metricFlushes.Add(1)
	metricDirtyTile.Set(st.LastDirtyRatio)
	metricCacheEnt.Set(int64(st.CoeffCacheEntries))
	metricCacheHits.Set(int64(st.CoeffCacheHits))
	editLatency.observe(elapsed)
	editLatencyWindow.observe(elapsed)
}

// expvarHandler exposes the process expvar page (/debug/vars).
func expvarHandler() http.Handler { return expvar.Handler() }
