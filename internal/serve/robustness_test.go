package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tsvstress/internal/faultinject"
)

// TestKernelPanicQuarantinesSession: a panic inside the evaluation
// kernel is contained by the worker pool, surfaces as a 500 naming the
// quarantine, and fences the session from further compute requests
// while leaving the rest of the server (and DELETE) functional.
func TestKernelPanicQuarantinesSession(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	faultinject.Set("core.tile.eval", faultinject.Fault{Panic: "index out of range [drill]", Times: 1})
	var em errorResponse
	resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}, &em)
	faultinject.Reset()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking flush: status %d (%s), want 500", resp.StatusCode, em.Error)
	}
	if !strings.Contains(em.Error, "quarantined") || !strings.Contains(em.Error, "drill") {
		t.Fatalf("panic error %q does not name the quarantine and panic value", em.Error)
	}

	// The session is fenced: compute requests get 503 with the reason.
	if resp := doJSON(t, c, "GET", base+"/map", nil, &em); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map on quarantined session: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(em.Error, "quarantined") {
		t.Fatalf("quarantine 503 %q does not say why", em.Error)
	}

	// The list surfaces the quarantine; health keeps answering.
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 1 || list.Placements[0].Quarantined == "" {
		t.Fatalf("list does not show the quarantine: %+v", list.Placements)
	}
	var health struct {
		Quarantined int `json:"quarantined"`
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, &health); resp.StatusCode != http.StatusOK || health.Quarantined != 1 {
		t.Fatalf("healthz: status %d, quarantined %d", resp.StatusCode, health.Quarantined)
	}

	// Other sessions are unaffected.
	var other CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &other); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after quarantine: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+other.ID+"/map", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy session map: status %d", resp.StatusCode)
	}

	// The quarantined session can still be deleted.
	if resp := doJSON(t, c, "DELETE", base, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete quarantined: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "GET", base+"/map", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("map after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestHandlerPanicRecoveryMiddleware: a panic that escapes a handler
// (drilled via the serve.map.handler site) is caught by withRecovery,
// answered as a 500, and quarantines the session it was touching.
func TestHandlerPanicRecoveryMiddleware(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	faultinject.Set("serve.map.handler", faultinject.Fault{Panic: "handler bug [drill]", Times: 1})
	var em errorResponse
	resp := doJSON(t, c, "GET", base+"/map", nil, &em)
	faultinject.Reset()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d (%s), want 500", resp.StatusCode, em.Error)
	}

	// The middleware parsed the session id out of the path and fenced it.
	if resp := doJSON(t, c, "GET", base+"/map", nil, &em); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map after handler panic: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(em.Error, "quarantined") {
		t.Fatalf("quarantine 503 %q does not say why", em.Error)
	}

	// The server as a whole survived: health and list still answer.
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", resp.StatusCode)
	}
}

// TestReadyzTracksRecovery: a WAL-backed server reports 503 "recovering"
// until Recover completes, while /healthz answers 200 throughout — the
// split load balancers rely on.
func TestReadyzTracksRecovery(t *testing.T) {
	s := NewServer(Options{WALDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var body struct {
		Status string `json:"status"`
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); resp.StatusCode != http.StatusServiceUnavailable || body.Status != "recovering" {
		t.Fatalf("readyz before recovery: status %d, body %+v", resp.StatusCode, body)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before recovery: status %d", resp.StatusCode)
	}

	if n, err := s.Recover(context.Background()); err != nil || n != 0 {
		t.Fatalf("recover over empty WAL root: %d, %v", n, err)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); resp.StatusCode != http.StatusOK || body.Status != "ready" {
		t.Fatalf("readyz after recovery: status %d, body %+v", resp.StatusCode, body)
	}

	// A server with no WAL configured is ready from construction.
	s2 := NewServer(Options{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if resp := doJSON(t, ts2.Client(), "GET", ts2.URL+"/readyz", nil, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz without WAL: status %d", resp.StatusCode)
	}
}
