package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tsvstress/internal/faultinject"
)

// TestKernelPanicQuarantinesSession: a panic inside the evaluation
// kernel is contained by the worker pool, surfaces as a 500 naming the
// quarantine, and fences the session from further compute requests
// while leaving the rest of the server (and DELETE) functional.
func TestKernelPanicQuarantinesSession(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	faultinject.Set("core.tile.eval", faultinject.Fault{Panic: "index out of range [drill]", Times: 1})
	var em errorResponse
	resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}, &em)
	faultinject.Reset()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking flush: status %d (%s), want 500", resp.StatusCode, em.Error)
	}
	if !strings.Contains(em.Error, "quarantined") || !strings.Contains(em.Error, "drill") {
		t.Fatalf("panic error %q does not name the quarantine and panic value", em.Error)
	}

	// The session is fenced: compute requests get 503 with the reason.
	if resp := doJSON(t, c, "GET", base+"/map", nil, &em); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map on quarantined session: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(em.Error, "quarantined") {
		t.Fatalf("quarantine 503 %q does not say why", em.Error)
	}

	// The list surfaces the quarantine; health keeps answering.
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 1 || list.Placements[0].Quarantined == "" {
		t.Fatalf("list does not show the quarantine: %+v", list.Placements)
	}
	var health struct {
		Quarantined int `json:"quarantined"`
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, &health); resp.StatusCode != http.StatusOK || health.Quarantined != 1 {
		t.Fatalf("healthz: status %d, quarantined %d", resp.StatusCode, health.Quarantined)
	}

	// Other sessions are unaffected.
	var other CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &other); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after quarantine: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+other.ID+"/map", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy session map: status %d", resp.StatusCode)
	}

	// The quarantined session can still be deleted.
	if resp := doJSON(t, c, "DELETE", base, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete quarantined: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, c, "GET", base+"/map", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("map after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestHandlerPanicRecoveryMiddleware: a panic that escapes a handler
// (drilled via the serve.map.handler site) is caught by withRecovery,
// answered as a 500, and quarantines the session it was touching.
func TestHandlerPanicRecoveryMiddleware(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	faultinject.Set("serve.map.handler", faultinject.Fault{Panic: "handler bug [drill]", Times: 1})
	var em errorResponse
	resp := doJSON(t, c, "GET", base+"/map", nil, &em)
	faultinject.Reset()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d (%s), want 500", resp.StatusCode, em.Error)
	}

	// The middleware parsed the session id out of the path and fenced it.
	if resp := doJSON(t, c, "GET", base+"/map", nil, &em); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map after handler panic: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(em.Error, "quarantined") {
		t.Fatalf("quarantine 503 %q does not say why", em.Error)
	}

	// The server as a whole survived: health and list still answer.
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", resp.StatusCode)
	}
}

// TestListDuringQuarantineNoDeadlock: the list handler must not hold
// the table lock while taking a session lock. Compute handlers
// quarantine (ses.mu → Server.mu) when a WAL append fails, so an
// s.mu → ses.mu nesting in handleList is an ABBA deadlock that wedges
// the whole server; this drill holds the session lock in a slow failing
// sync while listers hammer the table.
func TestListDuringQuarantineNoDeadlock(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{WALDir: t.TempDir()})
	if _, err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	// The sync failure is delayed so the edit handler provably holds the
	// session lock while the listers pile up behind the table lock.
	faultinject.Set("wal.append.sync", faultinject.Fault{
		Err: faultinject.ErrInjected, Delay: 100 * time.Millisecond, Times: 1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var em errorResponse
			resp := doJSON(t, c, "POST", base+"/edits",
				EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}, &em)
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("edit with failing sync: status %d (%s), want 503", resp.StatusCode, em.Error)
			}
		}()
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				deadline := time.Now().Add(400 * time.Millisecond)
				for time.Now().Before(deadline) {
					doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, nil)
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("list/quarantine deadlock: server wedged")
	}
	// The quarantine itself landed.
	var em errorResponse
	if resp := doJSON(t, c, "GET", base+"/map", nil, &em); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map after WAL failure: status %d (%s), want 503 quarantined", resp.StatusCode, em.Error)
	}
}

// TestCreateJournalFailureLeavesNoSession: when journal init fails the
// create must 500 without the session ever having been visible, and
// the MaxSessions slot it reserved must be returned — a second create
// answering 429 would mean the slot leaked.
func TestCreateJournalFailureLeavesNoSession(t *testing.T) {
	// A WAL root that is a regular file makes every wal.Create fail.
	walRoot := filepath.Join(t.TempDir(), "walroot")
	if err := os.WriteFile(walRoot, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewServer(Options{WALDir: walRoot, MaxSessions: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	for i := 0; i < 2; i++ {
		var em errorResponse
		resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &em)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("create %d with broken WAL root: status %d (%s), want 500", i, resp.StatusCode, em.Error)
		}
		if !strings.Contains(em.Error, "journal init failed") {
			t.Fatalf("create %d error %q does not name the journal failure", i, em.Error)
		}
	}
	var list struct{ Placements []SessionInfo }
	doJSON(t, c, "GET", ts.URL+"/v1/placements", nil, &list)
	if len(list.Placements) != 0 {
		t.Fatalf("failed create left a visible session: %+v", list.Placements)
	}
}

// TestApplyDivergenceQuarantines: an edit the rehearsal accepted but
// the engine refuses means the engine disagrees with the journal (the
// batch is already appended) — the session must be quarantined, not
// left serving state that recovery would contradict.
func TestApplyDivergenceQuarantines(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{WALDir: t.TempDir()})
	if _, err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID

	faultinject.Set("incr.apply", faultinject.Fault{Err: faultinject.ErrInjected, Times: 1})
	var em errorResponse
	resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}, &em)
	faultinject.Reset()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("diverging apply: status %d (%s), want 500", resp.StatusCode, em.Error)
	}
	if !strings.Contains(em.Error, "quarantined") {
		t.Fatalf("diverging apply error %q does not name the quarantine", em.Error)
	}
	if resp := doJSON(t, c, "GET", base+"/map", nil, &em); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("map after apply divergence: status %d, want 503 quarantined", resp.StatusCode)
	}
}

// TestEditFlushFailureKeepsBatch: a flush that fails after the batch is
// journaled and applied must tell the client the edits were accepted
// (a retry would double-apply), leave the session serviceable, and
// still count the batch toward snapshot cadence.
func TestEditFlushFailureKeepsBatch(t *testing.T) {
	defer faultinject.Reset()
	s := NewServer(Options{WALDir: t.TempDir(), SnapshotEvery: 2})
	if _, err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var created CreateResponse
	if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", chaosPlacement(), &created); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	base := ts.URL + "/v1/placements/" + created.ID
	snaps0 := metricSnapshots.Value()

	faultinject.Set("core.tile.eval", faultinject.Fault{Err: errors.New("tile eval blew up"), Times: 1})
	var em errorResponse
	resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}}, &em)
	faultinject.Reset()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("edit with failing flush: status %d (%s), want 500", resp.StatusCode, em.Error)
	}
	if !strings.Contains(em.Error, "already accepted") || !strings.Contains(em.Error, "do not resubmit") {
		t.Fatalf("flush failure %q does not tell the client the batch was accepted", em.Error)
	}

	// The engine is reusable and the edit stuck: the second batch sees
	// the moved TSV at index 0 and completes the snapshot cadence for
	// both journaled batches.
	var er EditsResponse
	if resp := doJSON(t, c, "POST", base+"/edits",
		EditsRequest{Edits: []EditWire{{Op: "move", Index: 0, X: 3, Y: 3}}}, &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("edit after failed flush: status %d", resp.StatusCode)
	}
	if got := metricSnapshots.Value(); got != snaps0+1 {
		t.Fatalf("snapshot cadence drifted: %d snapshots after 2 journaled batches with SnapshotEvery=2, want %d",
			got-snaps0, 1)
	}
	if resp := doJSON(t, c, "GET", base+"/map", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("map after failed flush: status %d, want 200", resp.StatusCode)
	}
}

// TestReadyzTracksRecovery: a WAL-backed server reports 503 "recovering"
// until Recover completes, while /healthz answers 200 throughout — the
// split load balancers rely on.
func TestReadyzTracksRecovery(t *testing.T) {
	s := NewServer(Options{WALDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	var body struct {
		Status string `json:"status"`
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); resp.StatusCode != http.StatusServiceUnavailable || body.Status != "recovering" {
		t.Fatalf("readyz before recovery: status %d, body %+v", resp.StatusCode, body)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before recovery: status %d", resp.StatusCode)
	}

	if n, err := s.Recover(context.Background()); err != nil || n != 0 {
		t.Fatalf("recover over empty WAL root: %d, %v", n, err)
	}
	if resp := doJSON(t, c, "GET", ts.URL+"/readyz", nil, &body); resp.StatusCode != http.StatusOK || body.Status != "ready" {
		t.Fatalf("readyz after recovery: status %d, body %+v", resp.StatusCode, body)
	}

	// A server with no WAL configured is ready from construction.
	s2 := NewServer(Options{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if resp := doJSON(t, ts2.Client(), "GET", ts2.URL+"/readyz", nil, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz without WAL: status %d", resp.StatusCode)
	}
}
