package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"tsvstress/internal/cluster"
)

// TestServeClusterFlushParity runs the same session twice — one server
// evaluating in-process, one flushing through a two-worker cluster —
// and requires identical served maps after every edit batch. WAL and
// session semantics are untouched by the cluster path, so the only
// observable difference may be the cluster metrics.
func TestServeClusterFlushParity(t *testing.T) {
	lw, err := cluster.StartLocalWorkers(2, cluster.WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Stop()

	local := NewServer(Options{})
	clustered := NewServer(Options{ClusterWorkers: lw.Addrs()})
	tsLocal := httptest.NewServer(local.Handler())
	defer tsLocal.Close()
	tsCluster := httptest.NewServer(clustered.Handler())
	defer tsCluster.Close()

	run := func(ts *httptest.Server) (string, []float64) {
		t.Helper()
		c := ts.Client()
		var created CreateResponse
		if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements", testPlacement(), &created); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: status %d", resp.StatusCode)
		}
		batches := []EditsRequest{
			{Edits: []EditWire{{Op: "move", Index: 0, X: 2, Y: 2}}},
			{Edits: []EditWire{{Op: "add", X: 12, Y: 36}, {Op: "remove", Index: 3}}},
		}
		for i, b := range batches {
			var er EditsResponse
			if resp := doJSON(t, c, "POST", ts.URL+"/v1/placements/"+created.ID+"/edits", b, &er); resp.StatusCode != http.StatusOK {
				t.Fatalf("batch %d: status %d", i, resp.StatusCode)
			}
		}
		var mp MapResponse
		if resp := doJSON(t, c, "GET", ts.URL+"/v1/placements/"+created.ID+"/map?component=vm&values=1", nil, &mp); resp.StatusCode != http.StatusOK {
			t.Fatalf("map: status %d", resp.StatusCode)
		}
		return created.ID, mp.Values
	}

	flushesBefore := metricClusterFlushes.Value()
	_, wantVals := run(tsLocal)
	id, gotVals := run(tsCluster)
	if len(gotVals) != len(wantVals) {
		t.Fatalf("clustered map has %d values, local %d", len(gotVals), len(wantVals))
	}
	for i := range gotVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("point %d: clustered %g != local %g", i, gotVals[i], wantVals[i])
		}
	}
	if metricClusterFlushes.Value() == flushesBefore {
		t.Error("no flush was routed through the cluster")
	}
	// Deleting the session releases its worker-side job state.
	if resp := doJSON(t, tsCluster.Client(), "DELETE", tsCluster.URL+"/v1/placements/"+id, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
}
