// Package reliability implements the interfacial-reliability screening
// the paper motivates with its references [3] and [4] (Ryu et al. on
// near-surface interfacial reliability of TSVs; Jung et al. on
// full-chip interfacial crack analysis): for each TSV, the radial
// tensile stress acting on the liner/substrate interface drives
// debonding and crack growth, and the von Mises stress nearby drives
// plastic yielding.
//
// Given a stress evaluator (the full semi-analytical framework or the
// baseline), the package samples the interface ring of every TSV and
// ranks the vias by their worst interfacial traction, so a designer can
// find the pairs/clusters that need attention — the screening that the
// paper's accurate interactive-stress model exists to make trustworthy.
package reliability

import (
	"fmt"
	"math"
	"sort"

	"tsvstress/internal/floats"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// Evaluator is any stress field (core.Analyzer.StressAt, a FEM field,
// or a single method stage).
type Evaluator func(p geom.Point) tensor.Stress

// RingSample is one probed location on a TSV's interface ring.
type RingSample struct {
	Theta float64 // ring angle (radians)
	// SigmaRR is the radial (interface-normal) stress in MPa:
	// positive = interface tension (debonding driver).
	SigmaRR float64
	// SigmaRT is the interfacial shear in MPa.
	SigmaRT float64
	// VonMises is the equivalent stress in MPa (yield driver).
	VonMises float64
	// Stress is the raw Cartesian tensor at the sample in MPa, kept so
	// downstream consumers (mobility screening, serving) can derive
	// further figures of merit without re-evaluating the field.
	Stress tensor.Stress
}

// TSVReport is the reliability screening result of one via.
type TSVReport struct {
	Index  int
	Center geom.Point
	// MaxTension is the largest interface-normal tensile stress found
	// on the ring (0 if the whole ring is compressive).
	MaxTension float64
	// MaxTensionTheta is where it occurs.
	MaxTensionTheta float64
	// MaxShear is the largest |interfacial shear|.
	MaxShear float64
	// MaxVonMises is the largest von Mises stress on the ring.
	MaxVonMises float64
	Samples     []RingSample
}

// Options configures the screening.
type Options struct {
	// NTheta is the number of ring samples per TSV (default 72).
	NTheta int
	// Offset is the probing distance beyond R′ in µm (default 0.05;
	// probing exactly on the interface is ambiguous for sampled golden
	// fields).
	Offset float64
}

func (o Options) withDefaults() Options {
	if o.NTheta <= 0 {
		o.NTheta = 72
	}
	if o.Offset <= 0 {
		o.Offset = 0.05
	}
	return o
}

// Screen probes the interface ring of every TSV in the placement.
func Screen(pl *geom.Placement, st material.Structure, eval Evaluator, opt Options) ([]TSVReport, error) {
	if eval == nil {
		return nil, fmt.Errorf("reliability: nil evaluator")
	}
	opt = opt.withDefaults()
	if !floats.AllFinite(st.RPrime, opt.Offset) {
		return nil, fmt.Errorf("reliability: non-finite probe ring (R' %g, offset %g)", st.RPrime, opt.Offset)
	}
	r := st.RPrime + opt.Offset
	reports := make([]TSVReport, 0, pl.Len())
	for i, t := range pl.TSVs {
		rep := TSVReport{Index: i, Center: t.Center}
		rep.Samples = make([]RingSample, 0, opt.NTheta)
		for k := 0; k < opt.NTheta; k++ {
			th := 2 * math.Pi * float64(k) / float64(opt.NTheta)
			p := geom.Pt(t.Center.X+r*math.Cos(th), t.Center.Y+r*math.Sin(th))
			s := eval(p)
			pol := s.ToPolar(th)
			sample := RingSample{Theta: th, SigmaRR: pol.RR, SigmaRT: pol.RT, VonMises: s.VonMises(), Stress: s}
			rep.Samples = append(rep.Samples, sample)
			if pol.RR > rep.MaxTension {
				rep.MaxTension = pol.RR
				rep.MaxTensionTheta = th
			}
			if a := math.Abs(pol.RT); a > rep.MaxShear {
				rep.MaxShear = a
			}
			if sample.VonMises > rep.MaxVonMises {
				rep.MaxVonMises = sample.VonMises
			}
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// RankByTension sorts reports by MaxTension descending (worst first),
// returning a new slice.
func RankByTension(reports []TSVReport) []TSVReport {
	out := append([]TSVReport(nil), reports...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].MaxTension > out[j].MaxTension })
	return out
}

// CountAbove returns how many TSVs exceed the tension threshold (MPa).
func CountAbove(reports []TSVReport, threshold float64) int {
	n := 0
	for _, r := range reports {
		if r.MaxTension > threshold {
			n++
		}
	}
	return n
}
