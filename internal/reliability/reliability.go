// Package reliability implements the interfacial-reliability screening
// the paper motivates with its references [3] and [4] (Ryu et al. on
// near-surface interfacial reliability of TSVs; Jung et al. on
// full-chip interfacial crack analysis): for each TSV, the radial
// tensile stress acting on the liner/substrate interface drives
// debonding and crack growth, and the von Mises stress nearby drives
// plastic yielding.
//
// Given a stress evaluator (the full semi-analytical framework or the
// baseline), the package samples the interface ring of every TSV and
// ranks the vias by their worst interfacial traction, so a designer can
// find the pairs/clusters that need attention — the screening that the
// paper's accurate interactive-stress model exists to make trustworthy.
package reliability

import (
	"fmt"
	"math"
	"sort"

	"tsvstress/internal/floats"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// Evaluator is any stress field (core.Analyzer.StressAt, a FEM field,
// or a single method stage).
type Evaluator func(p geom.Point) tensor.Stress

// RingSample is one probed location on a TSV's interface ring.
type RingSample struct {
	Theta float64 // ring angle (radians)
	// SigmaRR is the radial (interface-normal) stress in MPa:
	// positive = interface tension (debonding driver).
	SigmaRR float64
	// SigmaRT is the interfacial shear in MPa.
	SigmaRT float64
	// VonMises is the equivalent stress in MPa (yield driver).
	VonMises float64
	// Stress is the raw Cartesian tensor at the sample in MPa, kept so
	// downstream consumers (mobility screening, serving) can derive
	// further figures of merit without re-evaluating the field.
	Stress tensor.Stress
}

// TSVReport is the reliability screening result of one via.
type TSVReport struct {
	Index  int
	Center geom.Point
	// MaxTension is the largest interface-normal tensile stress found
	// on the ring (0 if the whole ring is compressive).
	MaxTension float64
	// MaxTensionTheta is where it occurs.
	MaxTensionTheta float64
	// MaxShear is the largest |interfacial shear|.
	MaxShear float64
	// MaxVonMises is the largest von Mises stress on the ring.
	MaxVonMises float64
	Samples     []RingSample
}

// StressSummary is the per-TSV digest of a ring scan — the local
// stress state the downstream consumers (the serving screen endpoint,
// the aging engine's EM and extrusion models) key off without
// re-walking the samples. All stresses are in MPa.
type StressSummary struct {
	Index int
	// MaxVonMises and MeanVonMises summarize the equivalent (yield /
	// creep driver) stress over the ring, in MPa.
	MaxVonMises  float64
	MeanVonMises float64
	// MaxTension is the largest interface-normal tensile stress in MPa
	// (0 if the whole ring is compressive); MaxTensionTheta is its ring
	// angle in radians.
	MaxTension      float64
	MaxTensionTheta float64
	// MaxShear is the largest |interfacial shear| in MPa.
	MaxShear float64
	// MeanHydrostatic is the ring mean of the in-plane hydrostatic
	// stress (σxx+σyy)/2 in MPa: positive = net tension.
	MeanHydrostatic float64
}

// accumulate folds one ring sample into the summary; n is the total
// sample count used for the running means.
func (s *StressSummary) accumulate(smp RingSample, n int) {
	inv := 1 / float64(n)
	s.MeanVonMises += smp.VonMises * inv
	s.MeanHydrostatic += smp.Stress.Trace() / 2 * inv
	if smp.VonMises > s.MaxVonMises {
		s.MaxVonMises = smp.VonMises
	}
	if smp.SigmaRR > s.MaxTension {
		s.MaxTension = smp.SigmaRR
		s.MaxTensionTheta = smp.Theta
	}
	if a := math.Abs(smp.SigmaRT); a > s.MaxShear {
		s.MaxShear = a
	}
}

// Summary condenses the report's ring samples into the per-TSV stress
// digest (stresses in MPa). It is the one code path deriving ring
// statistics — Screen itself populates the report maxima through it.
func (r *TSVReport) Summary() StressSummary {
	s := StressSummary{Index: r.Index}
	for _, smp := range r.Samples {
		s.accumulate(smp, len(r.Samples))
	}
	return s
}

// Summarize returns the per-TSV stress digests of a screening run in
// report order (stresses in MPa).
func Summarize(reports []TSVReport) []StressSummary {
	out := make([]StressSummary, 0, len(reports))
	for i := range reports {
		out = append(out, reports[i].Summary())
	}
	return out
}

// Options configures the screening.
type Options struct {
	// NTheta is the number of ring samples per TSV (default 72).
	NTheta int
	// Offset is the probing distance beyond R′ in µm (default 0.05;
	// probing exactly on the interface is ambiguous for sampled golden
	// fields).
	Offset float64
}

func (o Options) withDefaults() Options {
	if o.NTheta <= 0 {
		o.NTheta = 72
	}
	if o.Offset <= 0 {
		o.Offset = 0.05
	}
	return o
}

// Screen probes the interface ring of every TSV in the placement.
func Screen(pl *geom.Placement, st material.Structure, eval Evaluator, opt Options) ([]TSVReport, error) {
	if eval == nil {
		return nil, fmt.Errorf("reliability: nil evaluator")
	}
	opt = opt.withDefaults()
	if !floats.AllFinite(st.RPrime, opt.Offset) {
		return nil, fmt.Errorf("reliability: non-finite probe ring (R' %g, offset %g)", st.RPrime, opt.Offset)
	}
	r := st.RPrime + opt.Offset
	reports := make([]TSVReport, 0, pl.Len())
	for i, t := range pl.TSVs {
		rep := TSVReport{Index: i, Center: t.Center}
		rep.Samples = make([]RingSample, 0, opt.NTheta)
		for k := 0; k < opt.NTheta; k++ {
			th := 2 * math.Pi * float64(k) / float64(opt.NTheta)
			p := geom.Pt(t.Center.X+r*math.Cos(th), t.Center.Y+r*math.Sin(th))
			s := eval(p)
			pol := s.ToPolar(th)
			rep.Samples = append(rep.Samples, RingSample{Theta: th, SigmaRR: pol.RR, SigmaRT: pol.RT, VonMises: s.VonMises(), Stress: s})
		}
		// One accumulation path for ring statistics: the report maxima
		// are the digest's, so the screen endpoint and the aging engine
		// can never disagree with the ranking below.
		sum := rep.Summary()
		rep.MaxTension = sum.MaxTension
		rep.MaxTensionTheta = sum.MaxTensionTheta
		rep.MaxShear = sum.MaxShear
		rep.MaxVonMises = sum.MaxVonMises
		reports = append(reports, rep)
	}
	return reports, nil
}

// RankByTension sorts reports by MaxTension descending (worst first),
// returning a new slice.
func RankByTension(reports []TSVReport) []TSVReport {
	out := append([]TSVReport(nil), reports...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].MaxTension > out[j].MaxTension })
	return out
}

// CountAbove returns how many TSVs exceed the tension threshold (MPa).
func CountAbove(reports []TSVReport, threshold float64) int {
	n := 0
	for _, r := range reports {
		if r.MaxTension > threshold {
			n++
		}
	}
	return n
}
