package reliability

import (
	"math"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

func TestScreenValidation(t *testing.T) {
	pl := geom.NewPlacement(geom.Pt(0, 0))
	if _, err := Screen(pl, material.Baseline(material.BCB), nil, Options{}); err == nil {
		t.Fatal("nil evaluator should fail")
	}
}

// A single isolated TSV on cool-down: the interface is in uniform
// radial tension σrr = K/r² (K > 0), no shear, the same at every angle.
func TestScreenSingleTSV(t *testing.T) {
	st := material.Baseline(material.BCB)
	sol, err := lame.Solve(st)
	if err != nil {
		t.Fatal(err)
	}
	pl := geom.NewPlacement(geom.Pt(3, -2))
	eval := func(p geom.Point) tensor.Stress { return sol.StressAt(p, geom.Pt(3, -2)) }
	reports, err := Screen(pl, st, eval, Options{NTheta: 36})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	rep := reports[0]
	r := st.RPrime + 0.05
	want := sol.K / (r * r)
	if math.Abs(rep.MaxTension-want) > 1e-6*want {
		t.Errorf("MaxTension = %v, want %v", rep.MaxTension, want)
	}
	if rep.MaxShear > 1e-9 {
		t.Errorf("isolated TSV should have no interfacial shear: %v", rep.MaxShear)
	}
	// Ring uniformity.
	for _, s := range rep.Samples {
		if math.Abs(s.SigmaRR-want) > 1e-6*want {
			t.Fatalf("ring tension not uniform at θ=%v: %v", s.Theta, s.SigmaRR)
		}
	}
	if rep.MaxVonMises <= 0 {
		t.Error("von Mises should be positive")
	}
}

// A tight pair: the interactive framework must report *different* ring
// profiles than the baseline, shear must appear, and ranking/threshold
// helpers must behave.
func TestScreenPairWithFramework(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0), geom.Pt(0, 30))
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Screen(pl, st, an.StressAt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	// The two pair members see shear (asymmetric neighbourhood); the
	// isolated third TSV sees almost none.
	if reports[0].MaxShear < 1 || reports[1].MaxShear < 1 {
		t.Errorf("pair members should see interfacial shear: %v, %v",
			reports[0].MaxShear, reports[1].MaxShear)
	}
	if reports[2].MaxShear > reports[0].MaxShear/4 {
		t.Errorf("isolated TSV shear %v should be far below pair member %v",
			reports[2].MaxShear, reports[0].MaxShear)
	}
	// Ranking puts a pair member first; both orderings legal but the
	// lone via cannot win.
	ranked := RankByTension(reports)
	if ranked[0].Index == 2 {
		t.Error("isolated TSV should not have the worst interface tension")
	}
	// CountAbove is monotone in the threshold.
	if CountAbove(reports, 0) != 3 {
		t.Error("all vias are in tension on cool-down")
	}
	if CountAbove(reports, 1e6) != 0 {
		t.Error("nothing exceeds an absurd threshold")
	}
	lo := CountAbove(reports, 50)
	hi := CountAbove(reports, 80)
	if hi > lo {
		t.Error("CountAbove not monotone")
	}
}

// The framework and the baseline disagree on the pair's interface
// tension (that disagreement is the paper's subject); the screening
// must surface it.
func TestScreenFrameworkVsBaseline(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-4, 0), geom.Pt(4, 0))
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Screen(pl, st, an.StressAt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Screen(pl, st, an.StressLS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full[0].MaxTension-ls[0].MaxTension) < 0.5 {
		t.Errorf("interactive stress should move the interface tension: %v vs %v",
			full[0].MaxTension, ls[0].MaxTension)
	}
}

// Summarize is the shared digest path: its maxima must agree exactly
// with the report fields Screen published, its means must sit inside
// the sample envelope, and the hydrostatic mean must carry the sign of
// the ring's trace.
func TestSummarizeMatchesReports(t *testing.T) {
	st := material.Baseline(material.BCB)
	pl := geom.NewPlacement(geom.Pt(-5, 0), geom.Pt(5, 0))
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Screen(pl, st, an.StressAt, Options{NTheta: 48})
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(reports)
	if len(sums) != len(reports) {
		t.Fatalf("got %d summaries for %d reports", len(sums), len(reports))
	}
	for i, sum := range sums {
		rep := reports[i]
		if sum.Index != rep.Index {
			t.Fatalf("summary %d indexes TSV %d", i, sum.Index)
		}
		// Exact agreement: Screen derives its maxima through Summary.
		if sum.MaxTension != rep.MaxTension || sum.MaxTensionTheta != rep.MaxTensionTheta ||
			sum.MaxShear != rep.MaxShear || sum.MaxVonMises != rep.MaxVonMises {
			t.Fatalf("summary %d diverges from report: %+v vs %+v", i, sum, rep)
		}
		if sum.MeanVonMises <= 0 || sum.MeanVonMises > sum.MaxVonMises+1e-9 {
			t.Errorf("TSV %d: mean von Mises %v outside (0, max %v]", i, sum.MeanVonMises, sum.MaxVonMises)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		mean := 0.0
		for _, smp := range rep.Samples {
			h := smp.Stress.Trace() / 2
			lo = math.Min(lo, h)
			hi = math.Max(hi, h)
			mean += h / float64(len(rep.Samples))
		}
		if sum.MeanHydrostatic < lo-1e-9 || sum.MeanHydrostatic > hi+1e-9 {
			t.Errorf("TSV %d: mean hydrostatic %v outside sample range [%v, %v]", i, sum.MeanHydrostatic, lo, hi)
		}
		if math.Abs(sum.MeanHydrostatic-mean) > 1e-9*(1+math.Abs(mean)) {
			t.Errorf("TSV %d: mean hydrostatic %v, recomputed %v", i, sum.MeanHydrostatic, mean)
		}
	}
}
