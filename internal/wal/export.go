package wal

// Session export/rehydration: the WAL directory — meta, snapshot,
// journal tail — serialized into one self-delimiting byte bundle that
// can travel over HTTP. This is the unit of session mobility in the
// gateway tier (DESIGN.md §19): the owning replica Exports, the
// gateway ships the bytes, the new owner Rehydrates and replays
// through the exact recovery path a crash would use, so a migrated
// session cannot diverge from a recovered one.
//
// Because Snapshot compacts the journal (only records after the
// snapshot survive on disk), a bundle's size is bounded by one
// snapshot plus at most SnapshotEvery journal records regardless of
// session age — the plateau the regression test pins.
//
// Wire format, reusing the journal's CRC frame:
//
//	bundle  := magic(8) | section...
//	section := tag(1) | frame
//	tag     := 'M' (meta, exactly one, first)
//	         | 'S' (snapshot, at most one, before any 'R')
//	         | 'R' (journal record, ascending seq)
//
// Every frame carries its own length and CRC, so a truncated or
// bit-flipped bundle fails decode instead of rehydrating silently
// wrong (FuzzDecodeBundle pins no-panic on arbitrary input).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// bundleMagic versions the export wire format.
var bundleMagic = [8]byte{'T', 'S', 'V', 'B', 'N', 'D', 'L', '1'}

// MaxBundleBytes caps a decoded bundle's total size (a corrupt length field
// must not OOM the importer).
const MaxBundleBytes = 1 << 28 // 256 MiB

// Bundle is one session's portable state: everything Open would
// recover from the session directory.
type Bundle struct {
	// Meta is the create-time record payload (required).
	Meta []byte
	// SnapshotSeq/Snapshot mirror Recovered: the latest checkpoint and
	// its journal position (Snapshot nil when none was ever written).
	SnapshotSeq uint64
	Snapshot    []byte
	// Records are the journal records after the snapshot, ascending.
	Records []Record
}

// LastSeq returns the sequence number rehydration will resume from:
// the last record's, else the snapshot's.
func (b *Bundle) LastSeq() uint64 {
	if n := len(b.Records); n > 0 {
		return b.Records[n-1].Seq
	}
	return b.SnapshotSeq
}

// Export reads a session directory into a Bundle without disturbing
// it: the journal is parsed with the same torn-tail tolerance as Open,
// but nothing is truncated or opened for append — the owning Log (if
// any) keeps working. The caller serializes against concurrent
// appends (the serving layer holds the session mutex).
func Export(dir string) (*Bundle, error) {
	rawMeta, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return nil, fmt.Errorf("wal: export %s: %w", dir, err)
	}
	_, meta, rest, err := parseFrame(rawMeta)
	if err != nil || len(rest) != 0 {
		return nil, fmt.Errorf("wal: export %s: corrupt meta record: %v", dir, err)
	}
	b := &Bundle{Meta: meta}

	if rawSnap, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		seq, payload, rest, err := parseFrame(rawSnap)
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("wal: export %s: corrupt snapshot: %v", dir, err)
		}
		b.SnapshotSeq, b.Snapshot = seq, payload
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("wal: export snapshot: %w", err)
	}

	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		return nil, fmt.Errorf("wal: export journal: %w", err)
	}
	lastSeq := b.SnapshotSeq
	for buf := raw; len(buf) > 0; {
		seq, payload, rest, err := parseFrame(buf)
		if err != nil {
			break // torn tail: everything before it ships
		}
		if seq > lastSeq {
			b.Records = append(b.Records, Record{Seq: seq, Payload: payload})
			lastSeq = seq
		} else if len(b.Records) > 0 {
			break // sequence went backwards mid-file
		}
		buf = rest
	}
	return b, nil
}

// Rehydrate materializes a bundle as a fresh session directory laid
// out exactly as Create+Append+Snapshot would have left it, ready for
// Open. The directory must not already hold a session.
func Rehydrate(dir string, b *Bundle) error {
	if len(b.Meta) == 0 {
		return errors.New("wal: rehydrate: bundle has no meta record")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: rehydrate %s: %w", dir, err)
	}
	metaPath := filepath.Join(dir, metaName)
	if _, err := os.Stat(metaPath); err == nil {
		return fmt.Errorf("wal: rehydrate: %s already holds a session", dir)
	}
	if b.Snapshot != nil {
		if err := writeFileSynced(filepath.Join(dir, snapName), frame(b.SnapshotSeq, b.Snapshot)); err != nil {
			return err
		}
	}
	var journal []byte
	for _, r := range b.Records {
		journal = append(journal, frame(r.Seq, r.Payload)...)
	}
	if err := writeFileSynced(filepath.Join(dir, journalName), journal); err != nil {
		return err
	}
	// Meta last: its presence is what marks the directory as holding a
	// session, so a crash mid-rehydrate leaves a directory Open refuses
	// (and a retry can clear) rather than a half-session it would trust.
	if err := writeFileSynced(metaPath, frame(0, b.Meta)); err != nil {
		return err
	}
	return syncDir(dir)
}

// EncodeBundle serializes a bundle to its wire form.
func EncodeBundle(b *Bundle) []byte {
	var buf bytes.Buffer
	buf.Write(bundleMagic[:])
	buf.WriteByte('M')
	buf.Write(frame(0, b.Meta))
	if b.Snapshot != nil {
		buf.WriteByte('S')
		buf.Write(frame(b.SnapshotSeq, b.Snapshot))
	}
	for _, r := range b.Records {
		buf.WriteByte('R')
		buf.Write(frame(r.Seq, r.Payload))
	}
	return buf.Bytes()
}

// DecodeBundle parses a wire-form bundle, validating structure (tag
// order, ascending sequence numbers) and every frame's CRC. It never
// panics on malformed input.
func DecodeBundle(raw []byte) (*Bundle, error) {
	if len(raw) > MaxBundleBytes {
		return nil, fmt.Errorf("wal: bundle of %d bytes exceeds the %d cap", len(raw), MaxBundleBytes)
	}
	if len(raw) < len(bundleMagic) || !bytes.Equal(raw[:len(bundleMagic)], bundleMagic[:]) {
		return nil, errors.New("wal: not a session bundle (bad magic)")
	}
	buf := raw[len(bundleMagic):]
	b := &Bundle{}
	sawMeta, sawSnap := false, false
	lastSeq := uint64(0)
	for len(buf) > 0 {
		tag := buf[0]
		seq, payload, rest, err := parseFrame(buf[1:])
		if err != nil {
			return nil, fmt.Errorf("wal: bundle section %q: %w", tag, err)
		}
		switch tag {
		case 'M':
			if sawMeta {
				return nil, errors.New("wal: bundle has two meta sections")
			}
			sawMeta = true
			b.Meta = payload
		case 'S':
			if !sawMeta || sawSnap || len(b.Records) > 0 {
				return nil, errors.New("wal: bundle snapshot out of order")
			}
			sawSnap = true
			b.SnapshotSeq, b.Snapshot = seq, payload
			lastSeq = seq
		case 'R':
			if !sawMeta {
				return nil, errors.New("wal: bundle record before meta")
			}
			if seq <= lastSeq {
				return nil, fmt.Errorf("wal: bundle record seq %d not above %d", seq, lastSeq)
			}
			b.Records = append(b.Records, Record{Seq: seq, Payload: payload})
			lastSeq = seq
		default:
			return nil, fmt.Errorf("wal: bundle has unknown section tag %q", tag)
		}
		buf = rest
	}
	if !sawMeta {
		return nil, errors.New("wal: bundle has no meta section")
	}
	return b, nil
}
