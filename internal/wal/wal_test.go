package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tsvstress/internal/faultinject"
)

func mustCreate(t *testing.T, dir string, meta []byte) *Log {
	t.Helper()
	l, err := Create(dir, meta)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	seq, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return seq
}

func TestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("meta-blob"))
	for i := 1; i <= 5; i++ {
		if seq := mustAppend(t, l, fmt.Sprintf("batch-%d", i)); seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if !bytes.Equal(rec.Meta, []byte("meta-blob")) {
		t.Fatalf("meta = %q", rec.Meta)
	}
	if rec.Snapshot != nil || rec.SnapshotSeq != 0 {
		t.Fatalf("unexpected snapshot: seq %d", rec.SnapshotSeq)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("truncated %d bytes of a clean journal", rec.TruncatedBytes)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) || string(r.Payload) != fmt.Sprintf("batch-%d", i+1) {
			t.Fatalf("record %d = {%d, %q}", i, r.Seq, r.Payload)
		}
	}
	// The reopened log appends after the replayed tail.
	if seq := mustAppend(t, l2, "batch-6"); seq != 6 {
		t.Fatalf("post-replay seq = %d, want 6", seq)
	}
}

func TestCreateRejectsExistingSession(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("m"))
	l.Close()
	if _, err := Create(dir, []byte("m2")); err == nil {
		t.Fatal("Create over an existing session succeeded")
	}
}

// TestTornTailTruncated simulates a crash mid-append at every possible
// torn length of the final record: replay must keep the intact prefix,
// drop the tail, and leave the journal appendable.
func TestTornTailTruncated(t *testing.T) {
	base := t.TempDir()
	full := frame(3, []byte("batch-3"))
	for cut := 1; cut < len(full); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		l := mustCreate(t, dir, []byte("m"))
		mustAppend(t, l, "batch-1")
		mustAppend(t, l, "batch-2")
		l.Close()

		jpath := filepath.Join(dir, journalName)
		f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(full[:cut]); err != nil {
			t.Fatal(err)
		}
		f.Close()

		l2, rec, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if len(rec.Records) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(rec.Records))
		}
		if rec.TruncatedBytes != int64(cut) {
			t.Fatalf("cut %d: truncated %d bytes", cut, rec.TruncatedBytes)
		}
		// The torn record was never acknowledged; its seq must be reusable.
		if seq := mustAppend(t, l2, "batch-3-retry"); seq != 3 {
			t.Fatalf("cut %d: retry seq = %d, want 3", cut, seq)
		}
		l2.Close()
	}
}

func TestSnapshotCompactsJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("m"))
	mustAppend(t, l, "batch-1")
	mustAppend(t, l, "batch-2")
	if err := l.Snapshot([]byte("snap@2")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	mustAppend(t, l, "batch-3")
	l.Close()

	l2, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if rec.SnapshotSeq != 2 || string(rec.Snapshot) != "snap@2" {
		t.Fatalf("snapshot = {%d, %q}", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 3 {
		t.Fatalf("post-snapshot records = %+v", rec.Records)
	}
	if l2.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", l2.Seq())
	}
}

// TestSnapshotCrashBeforeCompaction covers the crash window between the
// snap rename and the journal swap: the journal still holds records the
// snapshot already folded in, and replay must skip them by sequence.
func TestSnapshotCrashBeforeCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("m"))
	mustAppend(t, l, "batch-1")
	mustAppend(t, l, "batch-2")
	l.Close()
	// Hand-write the snapshot the way a crash would leave it: snap in
	// place, journal uncompacted.
	if err := writeFileSynced(filepath.Join(dir, snapName), frame(2, []byte("snap@2"))); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if rec.SnapshotSeq != 2 {
		t.Fatalf("SnapshotSeq = %d", rec.SnapshotSeq)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("stale pre-snapshot records replayed: %+v", rec.Records)
	}
	if seq := mustAppend(t, l2, "batch-3"); seq != 3 {
		t.Fatalf("seq after skipped replay = %d, want 3", seq)
	}
}

func TestShortWriteBreaksLog(t *testing.T) {
	defer faultinject.Reset()
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("m"))
	mustAppend(t, l, "batch-1")

	errDisk := errors.New("disk gone")
	faultinject.Set("wal.append.write", faultinject.Fault{ShortWrite: 5, Err: errDisk, Times: 1})
	if _, err := l.Append([]byte("batch-2")); !errors.Is(err, errDisk) {
		t.Fatalf("short-write append error = %v, want %v", err, errDisk)
	}
	// The log latches broken: the tail is untrustworthy even though the
	// fault has cleared.
	if _, err := l.Append([]byte("batch-2-retry")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after failure = %v, want ErrBroken", err)
	}
	if err := l.Snapshot([]byte("s")); !errors.Is(err, ErrBroken) {
		t.Fatalf("snapshot after failure = %v, want ErrBroken", err)
	}
	l.Close()

	// Recovery truncates the five torn bytes and keeps the good record.
	l2, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "batch-1" {
		t.Fatalf("records = %+v", rec.Records)
	}
	if rec.TruncatedBytes != 5 {
		t.Fatalf("truncated %d bytes, want 5", rec.TruncatedBytes)
	}
}

func TestSyncFailureBreaksLog(t *testing.T) {
	defer faultinject.Reset()
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("m"))
	faultinject.Set("wal.append.sync", faultinject.Fault{Times: 1})
	if _, err := l.Append([]byte("b")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append = %v, want injected sync error", err)
	}
	if _, err := l.Append([]byte("b")); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after sync failure = %v, want ErrBroken", err)
	}
}

func TestOpenRejectsCorruptMetaAndSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p1")
	l := mustCreate(t, dir, []byte("m"))
	l.Close()
	// Corrupt meta: unrecoverable.
	if err := os.WriteFile(filepath.Join(dir, metaName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("Open with corrupt meta succeeded")
	}

	dir2 := filepath.Join(t.TempDir(), "p2")
	l2 := mustCreate(t, dir2, []byte("m"))
	l2.Close()
	// Corrupt snapshot: also unrecoverable (the journal may have been
	// compacted against it), unlike a torn journal tail.
	if err := os.WriteFile(filepath.Join(dir2, snapName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir2); err == nil {
		t.Fatal("Open with corrupt snapshot succeeded")
	}
}

func TestList(t *testing.T) {
	root := t.TempDir()
	if got, err := List(filepath.Join(root, "missing")); err != nil || len(got) != 0 {
		t.Fatalf("List(missing) = %v, %v", got, err)
	}
	for _, id := range []string{"p2", "p1"} {
		l := mustCreate(t, filepath.Join(root, id), []byte("m"))
		l.Close()
	}
	if err := os.WriteFile(filepath.Join(root, "stray-file"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := List(root)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("List = %v, want [p1 p2]", got)
	}
}
