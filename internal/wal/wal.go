// Package wal implements the crash-safety layer of the serving stack:
// a per-session append-only journal of accepted edit batches plus a
// periodically rewritten placement snapshot, both CRC-framed, from
// which tsvserve rebuilds its sessions after a crash (checkpoint-and-
// replay recovery).
//
// On-disk layout, one directory per session:
//
//	<dir>/meta          create-time record (seq 0): the session config
//	<dir>/journal.wal   framed records, one per accepted edit batch
//	<dir>/snap          latest snapshot (atomic tmp+rename replace)
//
// Record framing is length-prefixed with a CRC over the body:
//
//	record := length(4, LE) | crc32c(4, LE) | body
//	body   := seq(8, LE)    | payload
//
// Append syncs before returning, so a record the caller acknowledged
// survives a crash. Replay scans the journal front to back and, at the
// first frame that fails its length or CRC check, truncates the file
// there: a torn tail — the half-written frame of a crash mid-append —
// is discarded rather than poisoning recovery, and everything before it
// is kept. Snapshots are written to a temporary file, synced and
// renamed, so the snap file is always a complete record; records whose
// seq is ≤ the snapshot's are skipped on replay, which makes journal
// compaction after a snapshot safe at every crash position.
//
// The "wal.append.write", "wal.append.sync" and "wal.snapshot" sites of
// internal/faultinject let tests inject short writes, sync failures and
// snapshot errors. A Log whose write path failed is broken: every later
// operation errors, because the journal tail is no longer trustworthy —
// the owner must treat the session as lost until recovery.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"tsvstress/internal/faultinject"
)

const (
	headerSize = 8       // length(4) + crc(4)
	seqSize    = 8       // body prefix
	maxRecord  = 1 << 26 // 64 MiB body cap: a corrupt length must not OOM replay

	metaName    = "meta"
	journalName = "journal.wal"
	snapName    = "snap"
)

// crcTable is the Castagnoli polynomial, the standard choice for
// storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBroken reports an operation on a log whose write path already
// failed; the on-disk tail is not trustworthy until re-opened through
// recovery.
var ErrBroken = errors.New("wal: log broken by an earlier write failure")

// Record is one replayed journal entry.
type Record struct {
	// Seq is the record's 1-based sequence number within the session.
	Seq uint64
	// Payload is the caller's opaque record body.
	Payload []byte
}

// Recovered is the state Open reassembles from a session directory.
type Recovered struct {
	// Meta is the create-time record payload.
	Meta []byte
	// SnapshotSeq is the journal position of the snapshot (0 when no
	// snapshot was ever written).
	SnapshotSeq uint64
	// Snapshot is the latest snapshot payload (nil when none).
	Snapshot []byte
	// Records are the journal records after the snapshot, in order.
	Records []Record
	// TruncatedBytes is how many torn-tail bytes replay discarded.
	TruncatedBytes int64
}

// Log is one session's open journal. It is not safe for concurrent
// use; callers serialize (the serving layer's per-session mutex).
type Log struct {
	dir    string
	f      *os.File
	seq    uint64
	broken bool
}

// Create initializes a new session directory: it writes the meta
// record and an empty journal, syncing both and the directory. The
// directory must not already hold a session.
func Create(dir string, meta []byte) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	metaPath := filepath.Join(dir, metaName)
	if _, err := os.Stat(metaPath); err == nil {
		return nil, fmt.Errorf("wal: %s already holds a session", dir)
	}
	if err := writeFileSynced(metaPath, frame(0, meta)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create journal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{dir: dir, f: f}, nil
}

// Open replays a session directory and returns the recovered state
// plus a log positioned to append after the last valid record. A torn
// journal tail is truncated in place (Recovered.TruncatedBytes).
func Open(dir string) (*Log, *Recovered, error) {
	rawMeta, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	_, meta, rest, err := parseFrame(rawMeta)
	if err != nil || len(rest) != 0 {
		return nil, nil, fmt.Errorf("wal: %s: corrupt meta record: %v", dir, err)
	}
	rec := &Recovered{Meta: meta}

	if rawSnap, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		seq, payload, rest, err := parseFrame(rawSnap)
		if err != nil || len(rest) != 0 {
			// snap is written atomically, so a bad frame is real
			// corruption, not a torn write — and the journal may have
			// been compacted against it. Unrecoverable.
			return nil, nil, fmt.Errorf("wal: %s: corrupt snapshot: %v", dir, err)
		}
		rec.SnapshotSeq, rec.Snapshot = seq, payload
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: open snapshot: %w", err)
	}

	jpath := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(jpath)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open journal: %w", err)
	}
	lastSeq := rec.SnapshotSeq
	validEnd := int64(0)
	for buf := raw; len(buf) > 0; {
		seq, payload, rest, err := parseFrame(buf)
		if err != nil {
			break // torn tail: truncate at validEnd
		}
		if seq > lastSeq {
			// Records at or below the snapshot seq are pre-compaction
			// leftovers already folded into the snapshot; skip them.
			rec.Records = append(rec.Records, Record{Seq: seq, Payload: payload})
			lastSeq = seq
		} else if len(rec.Records) > 0 {
			break // sequence went backwards mid-file: corrupt from here
		}
		validEnd += int64(len(buf) - len(rest))
		buf = rest
	}
	if validEnd < int64(len(raw)) {
		rec.TruncatedBytes = int64(len(raw)) - validEnd
		if err := os.Truncate(jpath, validEnd); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reopen journal: %w", err)
	}
	return &Log{dir: dir, f: f, seq: lastSeq}, rec, nil
}

// Seq returns the sequence number of the last appended (or replayed)
// record.
func (l *Log) Seq() uint64 { return l.seq }

// Append frames, writes and syncs one record, returning its sequence
// number. The record is durable when Append returns nil — the caller
// may acknowledge it. On any write or sync failure the log becomes
// broken and the error is permanent until recovery re-opens the
// directory.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.broken {
		return 0, ErrBroken
	}
	seq := l.seq + 1
	buf := frame(seq, payload)
	n, injErr := faultinject.ShortWrite("wal.append.write", len(buf))
	wn, err := l.f.Write(buf[:n])
	if err == nil && injErr != nil {
		err = injErr
	}
	if err == nil && wn < len(buf) {
		err = io.ErrShortWrite
	}
	if err == nil {
		if err = faultinject.Fire("wal.append.sync"); err == nil {
			err = l.f.Sync()
		}
	}
	if err != nil {
		l.broken = true
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.seq = seq
	return seq, nil
}

// Snapshot atomically replaces the session snapshot with payload at
// the current sequence position and compacts the journal. After a
// crash at any point inside Snapshot, Open still reconstructs the same
// state: the snap rename is atomic, and journal records the compaction
// had not yet removed are skipped by their sequence numbers.
func (l *Log) Snapshot(payload []byte) error {
	if l.broken {
		return ErrBroken
	}
	if err := faultinject.Fire("wal.snapshot"); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	tmp := filepath.Join(l.dir, snapName+".tmp")
	if err := writeFileSynced(tmp, frame(l.seq, payload)); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// Compact: swap in an empty journal. Sequence numbers continue from
	// l.seq, so replay composes the snapshot with any later records.
	jtmp := filepath.Join(l.dir, journalName+".tmp")
	if err := writeFileSynced(jtmp, nil); err != nil {
		return err
	}
	if err := os.Rename(jtmp, filepath.Join(l.dir, journalName)); err != nil {
		return fmt.Errorf("wal: journal compaction rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	old := l.f
	f, err := os.OpenFile(filepath.Join(l.dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.broken = true
		return fmt.Errorf("wal: reopen compacted journal: %w", err)
	}
	l.f = f
	old.Close()
	return nil
}

// Close syncs and closes the journal. The directory stays on disk for
// recovery; use Remove to delete a session.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Remove deletes a session directory and everything in it.
func Remove(dir string) error { return os.RemoveAll(dir) }

// List returns the session directory names under root, in lexical
// order. A missing root is an empty store, not an error.
func List(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", root, err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	return dirs, nil
}

// frame builds one on-disk record.
func frame(seq uint64, payload []byte) []byte {
	body := len(payload) + seqSize
	buf := make([]byte, headerSize+body)
	binary.LittleEndian.PutUint64(buf[headerSize:], seq)
	copy(buf[headerSize+seqSize:], payload)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(body))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[headerSize:], crcTable))
	return buf
}

// parseFrame decodes the record at the head of buf, returning the
// remaining bytes. Any structural problem — short header, impossible
// length, short body, CRC mismatch — is an error; the caller decides
// whether that means a torn tail (journal) or corruption (meta/snap).
func parseFrame(buf []byte) (seq uint64, payload, rest []byte, err error) {
	if len(buf) < headerSize {
		return 0, nil, nil, fmt.Errorf("short header: %d bytes", len(buf))
	}
	body := binary.LittleEndian.Uint32(buf[0:4])
	if body < seqSize || body > maxRecord {
		return 0, nil, nil, fmt.Errorf("implausible body length %d", body)
	}
	if len(buf) < headerSize+int(body) {
		return 0, nil, nil, fmt.Errorf("short body: want %d, have %d", body, len(buf)-headerSize)
	}
	want := binary.LittleEndian.Uint32(buf[4:8])
	got := crc32.Checksum(buf[headerSize:headerSize+int(body)], crcTable)
	if got != want {
		return 0, nil, nil, fmt.Errorf("crc mismatch: %08x != %08x", got, want)
	}
	seq = binary.LittleEndian.Uint64(buf[headerSize : headerSize+seqSize])
	payload = buf[headerSize+seqSize : headerSize+int(body)]
	return seq, payload, buf[headerSize+int(body):], nil
}

// writeFileSynced writes path with an fsync before close.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
