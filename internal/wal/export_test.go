package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// mustExport exports a session directory or fails the test.
func mustExport(t *testing.T, dir string) *Bundle {
	t.Helper()
	b, err := Export(dir)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	return b
}

func TestExportRehydrateRoundTrip(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src")
	l := mustCreate(t, src, []byte("meta-blob"))
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, fmt.Sprintf("batch-%d", i))
	}
	if err := l.Snapshot([]byte("snap-at-3")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 4; i <= 5; i++ {
		mustAppend(t, l, fmt.Sprintf("batch-%d", i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	b := mustExport(t, src)
	if string(b.Meta) != "meta-blob" || string(b.Snapshot) != "snap-at-3" || b.SnapshotSeq != 3 {
		t.Fatalf("bundle = %+v", b)
	}
	if len(b.Records) != 2 || b.Records[0].Seq != 4 || b.Records[1].Seq != 5 {
		t.Fatalf("records = %+v", b.Records)
	}
	if b.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", b.LastSeq())
	}

	// Ship over the wire and back.
	decoded, err := DecodeBundle(EncodeBundle(b))
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}

	// Rehydrate on the "new owner" and recover through the normal path.
	dst := filepath.Join(t.TempDir(), "dst")
	if err := Rehydrate(dst, decoded); err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	l2, rec, err := Open(dst)
	if err != nil {
		t.Fatalf("Open rehydrated: %v", err)
	}
	if string(rec.Meta) != "meta-blob" || string(rec.Snapshot) != "snap-at-3" || rec.SnapshotSeq != 3 {
		t.Fatalf("recovered = %+v", rec)
	}
	if len(rec.Records) != 2 || string(rec.Records[1].Payload) != "batch-5" {
		t.Fatalf("recovered records = %+v", rec.Records)
	}
	// The rehydrated log keeps journaling from the shipped position.
	if seq := mustAppend(t, l2, "batch-6"); seq != 6 {
		t.Fatalf("post-rehydrate seq = %d, want 6", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close rehydrated: %v", err)
	}
}

func TestExportNoSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	l := mustCreate(t, dir, []byte("m"))
	mustAppend(t, l, "only")
	l.Close()
	b := mustExport(t, dir)
	if b.Snapshot != nil || b.SnapshotSeq != 0 || len(b.Records) != 1 {
		t.Fatalf("bundle = %+v", b)
	}
	dst := filepath.Join(t.TempDir(), "dst")
	if err := Rehydrate(dst, b); err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	if _, rec, err := Open(dst); err != nil || rec.Snapshot != nil || len(rec.Records) != 1 {
		t.Fatalf("Open: rec=%+v err=%v", nil, err)
	}
}

func TestRehydrateRejectsExistingSession(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	l := mustCreate(t, dir, []byte("m"))
	l.Close()
	b := &Bundle{Meta: []byte("other")}
	if err := Rehydrate(dir, b); err == nil {
		t.Fatal("Rehydrate over an existing session succeeded")
	}
}

// TestExportSizePlateaus is the journal-compaction regression: a
// long-lived session's shipped hydration payload must be bounded by
// one snapshot plus at most snapEvery journal records — not grow with
// session age. Without the compaction Snapshot performs, the export
// would grow linearly and this test fails.
func TestExportSizePlateaus(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "p")
	l := mustCreate(t, dir, []byte("meta"))
	const snapEvery, rounds = 8, 30
	payload := bytes.Repeat([]byte("e"), 200) // one edit batch's worth
	snap := bytes.Repeat([]byte("s"), 500)    // one placement snapshot's worth

	var maxAfterFirstSnap, firstPlateau int
	batches := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < snapEvery; i++ {
			mustAppend(t, l, string(payload))
			batches++
		}
		if err := l.Snapshot(snap); err != nil {
			t.Fatalf("Snapshot round %d: %v", r, err)
		}
		size := len(EncodeBundle(mustExport(t, dir)))
		if r == 0 {
			firstPlateau = size
		}
		if size > maxAfterFirstSnap {
			maxAfterFirstSnap = size
		}
	}
	l.Close()
	if batches != snapEvery*rounds {
		t.Fatalf("appended %d batches", batches)
	}
	// 30 rounds × 8 batches = 240 batches journaled in total; the
	// export right after a snapshot must stay exactly at the first
	// round's plateau (snapshot + empty journal), not scale with age.
	if maxAfterFirstSnap != firstPlateau {
		t.Fatalf("export size grew: first plateau %d bytes, later max %d bytes", firstPlateau, maxAfterFirstSnap)
	}
	// And mid-cycle exports are bounded by plateau + snapEvery records.
	bound := firstPlateau + snapEvery*(len(payload)+headerSize+seqSize+1)
	if maxAfterFirstSnap > bound {
		t.Fatalf("export exceeds bound: %d > %d", maxAfterFirstSnap, bound)
	}
}

func TestDecodeBundleRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC........"),
		append(bundleMagic[:], 'X', 0, 0, 0, 0),
		bundleMagic[:], // magic but no meta
	}
	for i, raw := range cases {
		if _, err := DecodeBundle(raw); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
	// Record before meta.
	bad := append([]byte{}, bundleMagic[:]...)
	bad = append(bad, 'R')
	bad = append(bad, frame(1, []byte("x"))...)
	if _, err := DecodeBundle(bad); err == nil {
		t.Error("record-before-meta decoded")
	}
	// Non-ascending record seqs.
	bad = append([]byte{}, bundleMagic[:]...)
	bad = append(bad, 'M')
	bad = append(bad, frame(0, []byte("m"))...)
	bad = append(bad, 'R')
	bad = append(bad, frame(2, []byte("a"))...)
	bad = append(bad, 'R')
	bad = append(bad, frame(2, []byte("b"))...)
	if _, err := DecodeBundle(bad); err == nil {
		t.Error("non-ascending seq decoded")
	}
}
