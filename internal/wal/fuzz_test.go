package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeBundle pins the session export/import decoder: arbitrary
// bytes must never panic, and any input that decodes must re-encode to
// a bundle that decodes to the same state (the gateway trusts this on
// every migration).
func FuzzDecodeBundle(f *testing.F) {
	// A well-formed bundle with snapshot and records.
	full := EncodeBundle(&Bundle{
		Meta:        []byte(`{"tsvs":[{"x":0,"y":0}]}`),
		SnapshotSeq: 3,
		Snapshot:    []byte(`{"tsvs":[{"x":1,"y":0}]}`),
		Records: []Record{
			{Seq: 4, Payload: []byte(`{"edits":[{"op":"add","x":9,"y":9}]}`)},
			{Seq: 5, Payload: []byte(`{"edits":[{"op":"remove","index":0}]}`)},
		},
	})
	f.Add(full)
	f.Add(EncodeBundle(&Bundle{Meta: []byte("m")}))
	f.Add(full[:len(full)-3]) // truncated tail
	f.Add([]byte("TSVBNDL1"))
	f.Add([]byte(nil))
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x40 // bit flip mid-frame
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := DecodeBundle(raw)
		if err != nil {
			return
		}
		again, err := DecodeBundle(EncodeBundle(b))
		if err != nil {
			t.Fatalf("re-encode of a decoded bundle failed to decode: %v", err)
		}
		if !bytes.Equal(again.Meta, b.Meta) || !bytes.Equal(again.Snapshot, b.Snapshot) ||
			again.SnapshotSeq != b.SnapshotSeq || len(again.Records) != len(b.Records) {
			t.Fatalf("round trip diverged: %+v != %+v", again, b)
		}
		for i := range b.Records {
			if again.Records[i].Seq != b.Records[i].Seq || !bytes.Equal(again.Records[i].Payload, b.Records[i].Payload) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}
