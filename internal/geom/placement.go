package geom

import (
	"fmt"
	"math"
	"sort"

	"tsvstress/internal/floats"
)

// TSV is a single through-silicon via on the device layer. Only the
// position is stored here; the cross-sectional structure (body radius,
// liner thickness, materials) is shared per placement and lives in the
// material package's Structure type.
type TSV struct {
	// Center of the via in µm.
	Center Point
	// Name is an optional designator (e.g. "V17") used in reports.
	Name string
}

// Placement is a set of TSVs sharing one cross-sectional structure.
type Placement struct {
	TSVs []TSV
}

// NewPlacement builds a placement from center points.
func NewPlacement(centers ...Point) *Placement {
	p := &Placement{TSVs: make([]TSV, len(centers))}
	for i, c := range centers {
		p.TSVs[i] = TSV{Center: c, Name: fmt.Sprintf("V%d", i)}
	}
	return p
}

// Len returns the number of TSVs.
func (p *Placement) Len() int { return len(p.TSVs) }

// Clone returns a deep copy of the placement. Analyzers hold their
// placement by pointer and assume it never changes, so any flow that
// edits a placement (see Edit) must operate on a clone.
func (p *Placement) Clone() *Placement {
	return &Placement{TSVs: append([]TSV(nil), p.TSVs...)}
}

// Centers returns the TSV center points in order.
func (p *Placement) Centers() []Point {
	cs := make([]Point, len(p.TSVs))
	for i, t := range p.TSVs {
		cs[i] = t.Center
	}
	return cs
}

// Bounds returns the bounding box of the TSV centers expanded by margin.
// For an empty placement it returns an empty rectangle at the origin.
func (p *Placement) Bounds(margin float64) Rect {
	if len(p.TSVs) == 0 {
		return Rect{}
	}
	r := Rect{Min: p.TSVs[0].Center, Max: p.TSVs[0].Center}
	for _, t := range p.TSVs[1:] {
		r.Min.X = math.Min(r.Min.X, t.Center.X)
		r.Min.Y = math.Min(r.Min.Y, t.Center.Y)
		r.Max.X = math.Max(r.Max.X, t.Center.X)
		r.Max.Y = math.Max(r.Max.Y, t.Center.Y)
	}
	return r.Expand(margin)
}

// MinPitch returns the smallest center-to-center distance between any two
// TSVs in µm, or +Inf for fewer than two TSVs. It is O(n log n) via a sweep over
// x-sorted centers with an adaptive window, which is exact because any
// closer pair must be within the current best distance in x.
func (p *Placement) MinPitch() float64 {
	n := len(p.TSVs)
	if n < 2 {
		return math.Inf(1)
	}
	cs := p.Centers()
	sort.Slice(cs, func(i, j int) bool { return cs[i].X < cs[j].X })
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && cs[j].X-cs[i].X < best; j++ {
			if d := cs[i].Dist(cs[j]); d < best {
				best = d
			}
		}
	}
	return best
}

// Density returns the TSV count divided by the bounding-box area
// (µm⁻²), the metric used in Table 6 of the paper. The bounding box is
// expanded by half the given pitch guess on each side so single rows do
// not produce a zero-area box; pass 0 to use the raw box.
func (p *Placement) Density(margin float64) float64 {
	if len(p.TSVs) == 0 {
		return 0
	}
	area := p.Bounds(margin).Area()
	if area <= 0 {
		return math.Inf(1)
	}
	return float64(len(p.TSVs)) / area
}

// Validate returns an error if any TSV center is NaN or infinite, or if
// any two TSVs are closer than minPitch (overlapping vias are
// physically impossible and break the models). Note a NaN center would
// otherwise pass the pitch check: every distance through it is NaN and
// NaN < minPitch is false.
func (p *Placement) Validate(minPitch float64) error {
	for i, t := range p.TSVs {
		if !floats.AllFinite(t.Center.X, t.Center.Y) {
			return fmt.Errorf("geom: TSV %d center (%g, %g) is not finite", i, t.Center.X, t.Center.Y)
		}
	}
	if got := p.MinPitch(); got < minPitch {
		return fmt.Errorf("geom: placement min pitch %.3g µm below limit %.3g µm", got, minPitch)
	}
	return nil
}

// NearestTSV returns the index of the TSV whose center is closest to q and
// the distance to it in µm. It returns (-1, +Inf) for an empty placement.
func (p *Placement) NearestTSV(q Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, t := range p.TSVs {
		if d := t.Center.Dist(q); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
