package geom

import (
	"math"
	"strings"
	"testing"
)

func threeTSVs() *Placement {
	return NewPlacement(Pt(0, 0), Pt(20, 0), Pt(0, 20))
}

func TestPlacementClone(t *testing.T) {
	p := threeTSVs()
	q := p.Clone()
	if q.Len() != p.Len() {
		t.Fatalf("clone has %d TSVs, want %d", q.Len(), p.Len())
	}
	q.TSVs[0].Center = Pt(99, 99)
	q.TSVs = append(q.TSVs, TSV{Center: Pt(50, 50)})
	if p.TSVs[0].Center != Pt(0, 0) || p.Len() != 3 {
		t.Fatal("mutating the clone leaked into the original")
	}
}

func TestEditValidate(t *testing.T) {
	p := threeTSVs()
	const pitch = 6
	cases := []struct {
		name    string
		e       Edit
		wantErr string // substring; "" = valid
	}{
		{"add ok", Edit{Op: EditAdd, TSV: TSV{Center: Pt(20, 20)}}, ""},
		{"add too close", Edit{Op: EditAdd, TSV: TSV{Center: Pt(1, 0)}}, "below min pitch"},
		{"add NaN", Edit{Op: EditAdd, TSV: TSV{Center: Pt(math.NaN(), 0)}}, "not finite"},
		{"add Inf", Edit{Op: EditAdd, TSV: TSV{Center: Pt(0, math.Inf(1))}}, "not finite"},
		{"remove ok", Edit{Op: EditRemove, Index: 1}, ""},
		{"remove negative", Edit{Op: EditRemove, Index: -1}, "outside placement"},
		{"remove past end", Edit{Op: EditRemove, Index: 3}, "outside placement"},
		{"move ok", Edit{Op: EditMove, Index: 0, TSV: TSV{Center: Pt(-10, -10)}}, ""},
		{"move onto neighbor", Edit{Op: EditMove, Index: 0, TSV: TSV{Center: Pt(19, 0)}}, "below min pitch"},
		{"move NaN", Edit{Op: EditMove, Index: 0, TSV: TSV{Center: Pt(0, math.NaN())}}, "not finite"},
		{"move bad index", Edit{Op: EditMove, Index: 7, TSV: TSV{Center: Pt(5, 5)}}, "outside placement"},
		{"unknown op", Edit{Op: EditOp(42)}, "unknown edit op"},
	}
	for _, tc := range cases {
		err := tc.e.Validate(p, pitch)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// A NaN min pitch must be rejected, not silently pass comparisons.
	if err := (Edit{Op: EditAdd, TSV: TSV{Center: Pt(50, 50)}}).Validate(p, math.NaN()); err == nil {
		t.Error("NaN min pitch accepted")
	}
}

func TestEditMoveSelfPitch(t *testing.T) {
	// Moving a TSV a tiny step must not trip the pitch check against
	// its own old position.
	p := threeTSVs()
	e := Edit{Op: EditMove, Index: 0, TSV: TSV{Center: Pt(0.5, 0)}}
	if err := e.Validate(p, 6); err != nil {
		t.Fatalf("small move rejected: %v", err)
	}
}

func TestEditApply(t *testing.T) {
	p := threeTSVs()
	const pitch = 6

	if err := (Edit{Op: EditAdd, TSV: TSV{Center: Pt(20, 20)}}).Apply(p, pitch); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 || p.TSVs[3].Center != Pt(20, 20) {
		t.Fatalf("add: placement %+v", p.TSVs)
	}
	if p.TSVs[3].Name == "" {
		t.Error("add: auto-name not assigned")
	}

	if err := (Edit{Op: EditMove, Index: 0, TSV: TSV{Center: Pt(-8, 0)}}).Apply(p, pitch); err != nil {
		t.Fatal(err)
	}
	if p.TSVs[0].Center != Pt(-8, 0) {
		t.Fatalf("move: center %v", p.TSVs[0].Center)
	}
	if p.TSVs[0].Name != "V0" {
		t.Errorf("move without name overwrote designator: %q", p.TSVs[0].Name)
	}

	if err := (Edit{Op: EditRemove, Index: 1}).Apply(p, pitch); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 || p.TSVs[1].Center != Pt(0, 20) {
		t.Fatalf("remove: placement %+v", p.TSVs)
	}

	// A failing edit must leave the placement untouched.
	before := p.Clone()
	if err := (Edit{Op: EditAdd, TSV: TSV{Center: Pt(0, 20.5)}}).Apply(p, pitch); err == nil {
		t.Fatal("overlapping add accepted")
	}
	if p.Len() != before.Len() {
		t.Error("failed edit mutated the placement")
	}

	// The resulting placement still passes the full validator.
	if err := p.Validate(pitch); err != nil {
		t.Fatalf("post-edit placement invalid: %v", err)
	}
}
