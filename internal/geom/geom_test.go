package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"tsvstress/internal/floats"
)

func almostEq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Sqrt(16+4), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
}

func TestPointAngle(t *testing.T) {
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), -math.Pi / 2},
		{Pt(1, 1), math.Pi / 4},
	}
	for _, c := range cases {
		if got := c.p.Angle(); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Angle(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist(b) == b.Dist(a) && a.Dist(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
		b := Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
		c := Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{C: Pt(1, 1), R: 2}
	if !c.Contains(Pt(1, 1)) || !c.Contains(Pt(3, 1)) {
		t.Error("Contains should include center and boundary")
	}
	if c.Contains(Pt(3.01, 1)) {
		t.Error("Contains should exclude exterior")
	}
}

func TestRect(t *testing.T) {
	r := RectAround(Pt(0, 0), 60, 30)
	if r.W() != 60 || r.H() != 30 {
		t.Fatalf("W/H = %v/%v", r.W(), r.H())
	}
	if r.Center() != Pt(0, 0) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Pt(30, 15)) || r.Contains(Pt(30.1, 0)) {
		t.Error("Contains boundary check failed")
	}
	if r.Area() != 1800 {
		t.Errorf("Area = %v", r.Area())
	}
	e := r.Expand(5)
	if e.W() != 70 || e.H() != 40 {
		t.Errorf("Expand = %v", e)
	}
	u := r.Union(RectAround(Pt(100, 0), 2, 2))
	if u.Max.X != 101 || u.Min.X != -30 {
		t.Errorf("Union = %v", u)
	}
	if !r.Valid() || (Rect{Min: Pt(1, 0), Max: Pt(0, 0)}).Valid() {
		t.Error("Valid check failed")
	}
}

func TestPlacementBasics(t *testing.T) {
	p := NewPlacement(Pt(0, 0), Pt(10, 0), Pt(0, 10))
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if got := p.MinPitch(); !almostEq(got, 10, 1e-12) {
		t.Errorf("MinPitch = %v", got)
	}
	if err := p.Validate(9); err != nil {
		t.Errorf("Validate(9) = %v", err)
	}
	if err := p.Validate(11); err == nil {
		t.Error("Validate(11) should fail")
	}
	i, d := p.NearestTSV(Pt(9, 1))
	if i != 1 || !almostEq(d, math.Sqrt(2), 1e-12) {
		t.Errorf("NearestTSV = %d, %v", i, d)
	}
}

func TestPlacementEdgeCases(t *testing.T) {
	empty := NewPlacement()
	if !math.IsInf(empty.MinPitch(), 1) {
		t.Error("empty MinPitch should be +Inf")
	}
	if i, d := empty.NearestTSV(Pt(0, 0)); i != -1 || !math.IsInf(d, 1) {
		t.Error("empty NearestTSV should be (-1, +Inf)")
	}
	if empty.Density(0) != 0 {
		t.Error("empty Density should be 0")
	}
	single := NewPlacement(Pt(5, 5))
	if !math.IsInf(single.MinPitch(), 1) {
		t.Error("single MinPitch should be +Inf")
	}
	if !math.IsInf(single.Density(0), 1) {
		t.Error("single Density with zero-area box should be +Inf")
	}
}

func TestPlacementMinPitchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		p := NewPlacement(pts...)
		brute := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := pts[i].Dist(pts[j]); d < brute {
					brute = d
				}
			}
		}
		if got := p.MinPitch(); !almostEq(got, brute, 1e-9) {
			t.Fatalf("MinPitch = %v, brute = %v", got, brute)
		}
	}
}

func TestPlacementDensity(t *testing.T) {
	// 10x10 grid at 10 µm pitch: bounding box 90x90, expanded by 5 each
	// side → 100x100 µm; 100 TSVs → 1e-2 µm⁻², the paper's "very dense"
	// upper bound in Appendix A.3.
	var pts []Point
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			pts = append(pts, Pt(float64(i)*10, float64(j)*10))
		}
	}
	p := NewPlacement(pts...)
	if got := p.Density(5); !almostEq(got, 1e-2, 1e-9) {
		t.Errorf("Density = %v, want 1e-2", got)
	}
	if got := p.MinPitch(); !almostEq(got, 10, 1e-9) {
		t.Errorf("MinPitch = %v", got)
	}
}

func TestBounds(t *testing.T) {
	p := NewPlacement(Pt(-5, 2), Pt(7, -3))
	b := p.Bounds(1)
	want := Rect{Min: Pt(-6, -4), Max: Pt(8, 3)}
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
}
