// Package geom provides the 2D geometric primitives used throughout the
// TSV stress modeling framework: points, vectors, circles, rectangles and
// TSV placements on the device layer.
//
// All coordinates and lengths are in micrometers (µm) unless stated
// otherwise; the device layer is modeled as the z = 0 plane so only x/y
// coordinates appear.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the device layer, in µm.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q treated as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q treated as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q treated as vectors, in µm².
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p treated as a vector, in µm.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in µm.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Angle returns the polar angle of the vector p in radians, in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Circle is a disk of radius R centered at C.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool { return c.C.Dist(p) <= c.R }

// Rect is an axis-aligned rectangle spanning [Min.X, Max.X] × [Min.Y, Max.Y].
type Rect struct {
	Min, Max Point
}

// RectAround returns the rectangle of width w and height h centered at c.
func RectAround(c Point, w, h float64) Rect {
	return Rect{
		Min: Point{c.X - w/2, c.Y - h/2},
		Max: Point{c.X + w/2, c.Y + h/2},
	}
}

// Contains reports whether p lies inside or on the rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// W returns the rectangle width in µm.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the rectangle height in µm.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Area returns the rectangle area in µm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Expand returns the rectangle grown by margin on every side.
func (r Rect) Expand(margin float64) Rect {
	return Rect{
		Min: Point{r.Min.X - margin, r.Min.Y - margin},
		Max: Point{r.Max.X + margin, r.Max.Y + margin},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Valid reports whether Min <= Max in both dimensions.
func (r Rect) Valid() bool { return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y }
