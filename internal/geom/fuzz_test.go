package geom

import (
	"math"
	"testing"
)

// fuzzBasePlacement is a small lattice the fuzzer mutates; 24 µm pitch
// at a 6 µm minimum leaves room for valid adds and moves.
func fuzzBasePlacement() *Placement {
	pl := &Placement{}
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			pl.TSVs = append(pl.TSVs, TSV{Center: Pt(float64(24*i), float64(24*j)), Name: ""})
		}
	}
	return pl
}

// FuzzEditApply exercises edit validation with arbitrary operations:
// Apply must never panic, a rejected edit must leave the placement
// untouched, and an accepted edit must keep every placement invariant
// (finite centers, min pitch) — the contract the serving stack's
// rehearsal-then-apply batches and WAL replay both lean on.
func FuzzEditApply(f *testing.F) {
	f.Add(int(EditAdd), 0, 12.0, 36.0, "V9")
	f.Add(int(EditRemove), 4, 0.0, 0.0, "")
	f.Add(int(EditMove), 8, 50.0, 50.0, "moved")
	f.Add(int(EditMove), -1, 0.0, 0.0, "")
	f.Add(int(EditAdd), 0, math.Inf(1), 0.0, "")
	f.Add(int(EditAdd), 0, 0.1, 0.1, "") // pitch violation
	f.Add(99, 2, 1.0, 1.0, "")           // unknown op
	f.Fuzz(func(t *testing.T, op, index int, x, y float64, name string) {
		const minPitch = 6.0
		pl := fuzzBasePlacement()
		before := pl.Clone()
		ed := Edit{Op: EditOp(op), Index: index, TSV: TSV{Center: Pt(x, y), Name: name}}
		if err := ed.Apply(pl, minPitch); err != nil {
			// Rejected: the placement must be byte-identical.
			if pl.Len() != before.Len() {
				t.Fatalf("failed edit %v changed TSV count", ed)
			}
			for i := range pl.TSVs {
				if pl.TSVs[i] != before.TSVs[i] {
					t.Fatalf("failed edit %v mutated TSV %d", ed, i)
				}
			}
			return
		}
		// Accepted: the documented invariants must survive.
		if err := pl.Validate(minPitch); err != nil {
			t.Fatalf("accepted edit %v broke the placement: %v", ed, err)
		}
		switch ed.Op {
		case EditAdd:
			if pl.Len() != before.Len()+1 {
				t.Fatalf("add produced %d TSVs from %d", pl.Len(), before.Len())
			}
			if pl.TSVs[pl.Len()-1].Name == "" {
				t.Fatal("added TSV has no name")
			}
		case EditRemove:
			if pl.Len() != before.Len()-1 {
				t.Fatalf("remove produced %d TSVs from %d", pl.Len(), before.Len())
			}
		case EditMove:
			if pl.Len() != before.Len() {
				t.Fatalf("move changed TSV count")
			}
			if pl.TSVs[index].Center != Pt(x, y) {
				t.Fatalf("move left TSV %d at %v", index, pl.TSVs[index].Center)
			}
		}
	})
}
