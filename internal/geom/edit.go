package geom

//tsvlint:apiboundary

import (
	"fmt"

	"tsvstress/internal/floats"
)

// EditOp enumerates the placement edit kinds an ECO flow performs.
type EditOp int

const (
	// EditAdd inserts a new TSV at the end of the placement.
	EditAdd EditOp = iota
	// EditRemove deletes the TSV at Index (later TSVs shift down).
	EditRemove
	// EditMove relocates the TSV at Index to TSV.Center.
	EditMove
)

// String implements fmt.Stringer.
func (op EditOp) String() string {
	switch op {
	case EditAdd:
		return "add"
	case EditRemove:
		return "remove"
	case EditMove:
		return "move"
	}
	return fmt.Sprintf("EditOp(%d)", int(op))
}

// Edit is one placement mutation. It is a value type so edit logs can
// be copied, queued and replayed without aliasing surprises.
type Edit struct {
	// Op selects the mutation kind.
	Op EditOp
	// Index is the target TSV for Remove and Move (ignored for Add).
	Index int
	// TSV carries the new via for Add and the new center (and
	// optionally a new name) for Move. Ignored for Remove.
	TSV TSV
}

// String implements fmt.Stringer.
func (e Edit) String() string {
	switch e.Op {
	case EditAdd:
		return fmt.Sprintf("add %s at %s", e.TSV.Name, e.TSV.Center)
	case EditRemove:
		return fmt.Sprintf("remove #%d", e.Index)
	default:
		return fmt.Sprintf("move #%d to %s", e.Index, e.TSV.Center)
	}
}

// Validate reports whether applying e to p would keep the placement
// well formed: the target index must exist, new centers must be finite
// (the same rejection Placement.Validate performs — a NaN center slips
// through every pitch comparison downstream), and the new center must
// not come closer than minPitch to any other TSV (overlapping vias are
// physically impossible and break the models). It does not mutate p.
func (e Edit) Validate(p *Placement, minPitch float64) error {
	if !floats.IsFinite(minPitch) || minPitch < 0 {
		return fmt.Errorf("geom: edit min pitch %g must be finite and non-negative", minPitch)
	}
	switch e.Op {
	case EditAdd:
		return e.validateCenter(p, -1, minPitch)
	case EditRemove:
		if e.Index < 0 || e.Index >= p.Len() {
			return fmt.Errorf("geom: remove index %d outside placement of %d TSVs", e.Index, p.Len())
		}
		return nil
	case EditMove:
		if e.Index < 0 || e.Index >= p.Len() {
			return fmt.Errorf("geom: move index %d outside placement of %d TSVs", e.Index, p.Len())
		}
		return e.validateCenter(p, e.Index, minPitch)
	}
	return fmt.Errorf("geom: unknown edit op %d", int(e.Op))
}

// validateCenter checks the finiteness and pitch constraints of the
// edit's new center against every TSV except the one at skip.
func (e Edit) validateCenter(p *Placement, skip int, minPitch float64) error {
	c := e.TSV.Center
	if !floats.AllFinite(c.X, c.Y) {
		return fmt.Errorf("geom: %s center (%g, %g) is not finite", e.Op, c.X, c.Y)
	}
	for i, t := range p.TSVs {
		if i == skip {
			continue
		}
		if d := t.Center.Dist(c); d < minPitch {
			return fmt.Errorf("geom: %s at %s would sit %.3g µm from TSV %d, below min pitch %.3g µm",
				e.Op, c, d, i, minPitch)
		}
	}
	return nil
}

// Apply validates e against p and then mutates p in place. Callers
// holding a live analyzer over p must clone first (see Clone); the
// incremental engine owns its clone and applies edits to it directly.
func (e Edit) Apply(p *Placement, minPitch float64) error {
	if err := e.Validate(p, minPitch); err != nil {
		return err
	}
	switch e.Op {
	case EditAdd:
		t := e.TSV
		if t.Name == "" {
			t.Name = fmt.Sprintf("V%d", p.Len())
		}
		p.TSVs = append(p.TSVs, t)
	case EditRemove:
		p.TSVs = append(p.TSVs[:e.Index], p.TSVs[e.Index+1:]...)
	case EditMove:
		p.TSVs[e.Index].Center = e.TSV.Center
		if e.TSV.Name != "" {
			p.TSVs[e.Index].Name = e.TSV.Name
		}
	}
	return nil
}
