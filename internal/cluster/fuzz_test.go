package cluster

import (
	"bytes"
	"testing"

	"tsvstress/internal/core"
)

// FuzzDecodeFrames drives the cluster wire decoder with adversarial
// byte streams: frame splitting, then the payload decoder matching each
// frame type (assignments, coordinate slabs, tile-result records). The
// decoders must never panic or over-allocate, and every accepted
// payload must re-encode to the identical bytes — the framing is
// canonical, so decode∘encode is the identity on valid input.
func FuzzDecodeFrames(f *testing.F) {
	// An empty error frame, a two-tile assignment, a one-point slab, a
	// one-point tile result, and a truncated declaration.
	f.Add([]byte("\x00\x00\x00\x00\x07"))
	f.Add(appendFrame(nil, frameAssign, appendAssignPayload(nil, assignment{Epoch: 1, Mode: core.ModeFull, IDs: []int32{0, 1}})))
	f.Add(appendFrame(nil, framePoints, []byte("\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")))
	f.Add(appendFrame(nil, frameResult, append([]byte("\x00\x00\x00\x00\x01\x00\x00\x00"), make([]byte, 24)...)))
	// A two-tile result batch (tile 0 with one point, tile 1 empty) and
	// a batch whose declared tile count exceeds its payload.
	f.Add(appendFrame(nil, frameResultBatch, append(append([]byte("\x02\x00\x00\x00"),
		append([]byte("\x00\x00\x00\x00\x01\x00\x00\x00"), make([]byte, 24)...)...),
		[]byte("\x01\x00\x00\x00\x00\x00\x00\x00")...)))
	f.Add(appendFrame(nil, frameResultBatch, []byte("\xff\xff\x00\x00")))
	f.Add([]byte("\x10\x00\x00\x00\x05abc"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for depth := 0; len(rest) > 0 && depth < 64; depth++ {
			typ, payload, next, err := DecodeFrame(rest)
			if err != nil {
				return
			}
			if len(next) >= len(rest) {
				t.Fatalf("frame made no progress: %d -> %d bytes", len(rest), len(next))
			}
			switch typ {
			case frameAssign:
				if a, err := decodeAssignPayload(payload); err == nil {
					if re := appendAssignPayload(nil, a); !bytes.Equal(re, payload) {
						t.Fatalf("assignment round trip diverged: %x != %x", re, payload)
					}
				}
			case framePlacement, framePoints:
				if pts, err := decodePointsPayload(payload); err == nil {
					if re := appendPointsPayload(nil, pts); !bytes.Equal(re, payload) {
						t.Fatalf("point slab round trip diverged")
					}
				}
			case frameResult:
				if id, vals, tail, err := core.ReadTileResult(payload); err == nil {
					if len(vals) > len(payload) {
						t.Fatalf("tile %d decoded %d values from %d bytes", id, len(vals), len(payload))
					}
					_ = tail
				}
			case frameResultBatch:
				if records, slab, err := decodeResultBatch(payload, nil, nil); err == nil {
					if len(slab) > len(payload)/core.StressWireLen {
						t.Fatalf("batch decoded %d values from %d bytes", len(slab), len(payload))
					}
					// Canonical framing: decode∘encode is the identity on
					// accepted batches.
					re := make([]byte, 0, len(payload))
					re = append(re, payload[:4]...)
					for _, rec := range records {
						re = core.AppendTileResultVals(re, rec.id, rec.vals)
					}
					if !bytes.Equal(re, payload) {
						t.Fatalf("result batch round trip diverged: %d tiles", len(records))
					}
				}
			}
			rest = next
		}
	})
}
