package cluster

import (
	"expvar"
	"sync/atomic"
)

// current is the most recently constructed coordinator, published under
// the process-wide "tsvcluster" expvar so operators can read breaker
// states and retry counters from any binary embedding a coordinator
// (tsvserve attached to a cluster, the bench harness). Close clears it
// if it still points at the closing coordinator.
var current atomic.Pointer[Coordinator]

func init() {
	expvar.Publish("tsvcluster", expvar.Func(func() any {
		c := current.Load()
		if c == nil {
			return nil
		}
		return c.ExpvarSnapshot()
	}))
}

// ExpvarSnapshot renders the coordinator's resilience counters as a
// plain map for expvar consumers; internal/serve reuses it for the
// cluster section of its own metrics endpoint.
func (c *Coordinator) ExpvarSnapshot() map[string]any {
	st := c.Stats()
	workers := make([]map[string]any, 0, len(st.Workers))
	for _, w := range st.Workers {
		workers = append(workers, map[string]any{
			"addr":          w.Addr,
			"alive":         w.Alive,
			"cores":         w.Cores,
			"last_err":      w.LastErr,
			"attempts":      w.Attempts,
			"retries":       w.Retries,
			"timeouts":      w.Timeouts,
			"breaker":       w.Breaker,
			"breaker_opens": w.BreakerOpens,
		})
	}
	return map[string]any{
		"maps":             st.Maps,
		"chunks":           st.Chunks,
		"steals":           st.Steals,
		"requeues":         st.Requeues,
		"worker_failures":  st.WorkerFailures,
		"attempts":         st.Attempts,
		"deadlined":        st.Deadlined,
		"retries":          st.Retries,
		"timeouts":         st.Timeouts,
		"budget_tokens":    st.BudgetTokens,
		"budget_exhausted": st.BudgetExhausted,
		"breaker_opens":    st.BreakerOpens,
		"pool_breaker":     st.PoolBreaker,
		"workers":          workers,
	}
}
