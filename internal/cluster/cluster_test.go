package cluster

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/geom"
	"tsvstress/internal/incr"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// fixture is one shared evaluation problem: a placement, a simulation
// grid and the single-process reference result the cluster must
// reproduce.
type fixture struct {
	st   material.Structure
	pl   *geom.Placement
	pts  []geom.Point
	an   *core.Analyzer
	want []tensor.Stress
}

func newFixture(t *testing.T, nTSV int, spacing float64) *fixture {
	t.Helper()
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(nTSV, 1e-2, 2*st.RPrime+1, 29)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	region := pl.Bounds(5)
	nx := int(region.W()/spacing) + 1
	ny := int(region.H()/spacing) + 1
	pts := make([]geom.Point, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			pts = append(pts, geom.Pt(region.Min.X+float64(i)*spacing, region.Min.Y+float64(j)*spacing))
		}
	}
	want := make([]tensor.Stress, len(pts))
	if err := an.MapInto(context.Background(), want, pts, core.ModeFull); err != nil {
		t.Fatal(err)
	}
	return &fixture{st: st, pl: pl, pts: pts, an: an, want: want}
}

func maxAbsDiff(a, b tensor.Stress) float64 {
	d := math.Abs(a.XX - b.XX)
	if v := math.Abs(a.YY - b.YY); v > d {
		d = v
	}
	if v := math.Abs(a.XY - b.XY); v > d {
		d = v
	}
	return d
}

// startCluster launches n local workers and a coordinator over them,
// with heartbeats disabled (tests drive liveness synchronously) unless
// hb is positive.
func startCluster(t *testing.T, n int, hb time.Duration) (*LocalWorkers, *Coordinator) {
	t.Helper()
	lw, err := StartLocalWorkers(n, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lw.Stop)
	if hb == 0 {
		hb = -1
	}
	c, err := NewCoordinator(lw.Addrs(), CoordinatorOptions{HeartbeatEvery: hb, PingTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	return lw, c
}

// TestClusterMapParity is the acceptance property: a cluster map over
// any fleet size reproduces the single-process MapInto — bit-for-bit
// here, which trivially satisfies the ≤1e-9 MPa pin. The worker counts
// cover one worker (every chunk through one batched result stream),
// even splits, and a count coprime to the chunk fan-out (uneven
// chunking, so batch frames of different sizes merge into one grid).
func TestClusterMapParity(t *testing.T) {
	fx := newFixture(t, 90, 1.5)
	for _, n := range []int{1, 2, 4, 7} {
		_, c := startCluster(t, n, 0)
		got := make([]tensor.Stress, len(fx.pts))
		if err := c.Map(context.Background(), got, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{}); err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		worst := 0.0
		for i := range got {
			if d := maxAbsDiff(got[i], fx.want[i]); d > worst {
				worst = d
			}
		}
		if worst != 0 {
			t.Errorf("%d workers: cluster map diverges from MapInto by %g MPa", n, worst)
		}
		if s := c.Stats(); s.Maps != 1 || s.Chunks == 0 {
			t.Errorf("%d workers: stats %+v after one map", n, s)
		}
	}
}

// TestClusterMapModes pins parity for the cheaper modes too (a degraded
// serve flush ships ModeLS assignments over the same job).
func TestClusterMapModes(t *testing.T) {
	fx := newFixture(t, 60, 2)
	_, c := startCluster(t, 2, 0)
	for _, mode := range []core.Mode{core.ModeLS, core.ModeInteractive} {
		want := make([]tensor.Stress, len(fx.pts))
		if err := fx.an.MapInto(context.Background(), want, fx.pts, mode); err != nil {
			t.Fatal(err)
		}
		got := make([]tensor.Stress, len(fx.pts))
		if err := c.Map(context.Background(), got, fx.st, fx.pl, fx.pts, mode, core.Options{}); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("mode %v: point %d diverges", mode, i)
			}
		}
	}
}

// TestClusterKillWorkerMidMap is the chaos drill: every eval is slowed
// so the map is in flight long enough to hard-stop one worker under it.
// The coordinator must mark the worker dead, requeue its chunks and
// finish the map with the survivors — with exact parity.
func TestClusterKillWorkerMidMap(t *testing.T) {
	fx := newFixture(t, 90, 1.5)
	lw, c := startCluster(t, 3, 0)
	faultinject.Set("cluster.worker.eval", faultinject.Fault{Delay: 25 * time.Millisecond})
	defer faultinject.Reset()

	got := make([]tensor.Stress, len(fx.pts))
	mapErr := make(chan error, 1)
	go func() {
		mapErr <- c.Map(context.Background(), got, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	}()
	time.Sleep(40 * time.Millisecond) // well inside the slowed map
	lw.StopWorker(0)
	if err := <-mapErr; err != nil {
		t.Fatalf("map with a killed worker: %v", err)
	}
	for i := range got {
		if got[i] != fx.want[i] {
			t.Fatalf("point %d diverges after worker death", i)
		}
	}
	if s := c.Stats(); s.WorkerFailures == 0 {
		t.Errorf("worker death not observed: stats %+v", s)
	}
}

// TestClusterEvalFaultFallthrough drills the injected-failure path: the
// first few evals fail server-side, the scheduler requeues, and the map
// still completes exactly (the worker is marked dead, the survivors
// absorb the work).
func TestClusterEvalFaultRequeue(t *testing.T) {
	fx := newFixture(t, 60, 2)
	_, c := startCluster(t, 3, 0)
	faultinject.Set("cluster.worker.eval", faultinject.Fault{Times: 2})
	defer faultinject.Reset()

	got := make([]tensor.Stress, len(fx.pts))
	if err := c.Map(context.Background(), got, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{}); err != nil {
		t.Fatalf("map with injected eval faults: %v", err)
	}
	for i := range got {
		if got[i] != fx.want[i] {
			t.Fatalf("point %d diverges after injected faults", i)
		}
	}
}

// TestClusterMapCancel pins cooperative cancellation: a canceled
// context aborts the map with an error matching core.ErrCanceled and
// tile-level progress attached.
func TestClusterMapCancel(t *testing.T) {
	fx := newFixture(t, 90, 1.5)
	_, c := startCluster(t, 2, 0)
	faultinject.Set("cluster.worker.eval", faultinject.Fault{Delay: 25 * time.Millisecond})
	defer faultinject.Reset()

	ctx, cancel := context.WithCancel(context.Background())
	got := make([]tensor.Stress, len(fx.pts))
	mapErr := make(chan error, 1)
	go func() {
		mapErr <- c.Map(ctx, got, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	err := <-mapErr
	if err == nil {
		t.Fatal("canceled map returned nil")
	}
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled map returned %v, want core.ErrCanceled", err)
	}
	var ce *core.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled map returned %T, want *core.CancelError", err)
	}
	if ce.TilesTotal == 0 {
		t.Errorf("cancel error carries no progress: %+v", ce)
	}
}

// TestClusterNoWorkers pins the fail-fast shape when nothing answers.
func TestClusterNoWorkers(t *testing.T) {
	c, err := NewCoordinator([]string{"127.0.0.1:1"}, CoordinatorOptions{HeartbeatEvery: -1, PingTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err == nil {
		t.Error("ping over a dead fleet returned nil")
	}
	fx := newFixture(t, 20, 3)
	got := make([]tensor.Stress, len(fx.pts))
	if err := c.Map(context.Background(), got, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{}); err == nil {
		t.Error("map over a dead fleet returned nil")
	}
}

// TestSessionEvaluatorParity runs the same ECO session twice — one
// engine in-process, one flushing through the cluster — and requires
// identical maps after every flush. This exercises the epoch bump and
// the worker-side Rebuild (placement-only re-init) across edits.
func TestSessionEvaluatorParity(t *testing.T) {
	fx := newFixture(t, 60, 2)
	_, c := startCluster(t, 2, 0)
	ctx := context.Background()

	local, err := incr.New(ctx, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := incr.New(ctx, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := c.NewSessionEvaluator()
	ev.OnFallback = func(err error) { t.Errorf("unexpected local fallback: %v", err) }
	defer ev.Close()
	clustered.SetTileEvaluator(ev)

	far := fx.pl.Bounds(0).Max
	edits := []geom.Edit{
		{Op: geom.EditMove, Index: 0, TSV: geom.TSV{Center: geom.Pt(far.X+20, far.Y+20)}},
		{Op: geom.EditAdd, TSV: geom.TSV{Center: geom.Pt(far.X+40, far.Y+40)}},
		{Op: geom.EditRemove, Index: 5},
	}
	for i, ed := range edits {
		if err := local.Apply(ed); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if err := clustered.Apply(ed); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		wantVals, err := local.Flush(ctx)
		if err != nil {
			t.Fatalf("edit %d: local flush: %v", i, err)
		}
		gotVals, err := clustered.Flush(ctx)
		if err != nil {
			t.Fatalf("edit %d: clustered flush: %v", i, err)
		}
		for p := range gotVals {
			if gotVals[p] != wantVals[p] {
				t.Fatalf("edit %d: point %d: clustered %+v != local %+v", i, p, gotVals[p], wantVals[p])
			}
		}
	}
}

// TestSessionEvaluatorFallback pins the correctness-first degradation:
// with the whole fleet dead, a flush falls back to the in-process
// analyzer, reports the cluster error through OnFallback, and still
// produces the exact map.
func TestSessionEvaluatorFallback(t *testing.T) {
	fx := newFixture(t, 40, 2.5)
	lw, c := startCluster(t, 2, 0)
	ctx := context.Background()

	eng, err := incr.New(ctx, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := incr.New(ctx, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := c.NewSessionEvaluator()
	fellBack := 0
	ev.OnFallback = func(error) { fellBack++ }
	defer ev.Close()
	eng.SetTileEvaluator(ev)
	lw.Stop()

	far := fx.pl.Bounds(0).Max
	ed := geom.Edit{Op: geom.EditMove, Index: 1, TSV: geom.TSV{Center: geom.Pt(far.X+15, far.Y+15)}}
	if err := eng.Apply(ed); err != nil {
		t.Fatal(err)
	}
	if err := ref.Apply(ed); err != nil {
		t.Fatal(err)
	}
	gotVals, err := eng.Flush(ctx)
	if err != nil {
		t.Fatalf("flush over dead fleet: %v", err)
	}
	wantVals, err := ref.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack == 0 {
		t.Error("dead fleet did not trigger the local fallback")
	}
	for p := range gotVals {
		if gotVals[p] != wantVals[p] {
			t.Fatalf("point %d diverges after fallback", p)
		}
	}
}

// TestWorkerProtocolErrors exercises the worker's refusal paths
// end-to-end through the coordinator's RPC helpers.
func TestWorkerProtocolErrors(t *testing.T) {
	fx := newFixture(t, 20, 3)
	_, c := startCluster(t, 1, 0)
	w := c.workers[0]

	opt := core.Options{}.Resolved()
	cutoff := opt.GatherCutoff(core.ModeFull)
	tl, err := core.NewTiling(fx.pts, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	j := &job{id: c.newJobID("t"), pl: fx.pl.Clone(), pts: fx.pts}
	j.spec = jobSpec{
		Job: j.id, Epoch: 2, Struct: fx.st, Options: opt, Mode: core.ModeFull,
		TileCutoff: cutoff, NumTiles: tl.NumTiles(), NumPoints: len(fx.pts),
	}

	// A placement-only init for a job the worker has never seen must be
	// answered 404 (full init required).
	if err := c.initRPC(context.Background(), w, j, false); !isRetryableStatus(err) {
		t.Fatalf("re-init of unknown job: %v, want retryable 404", err)
	}
	if err := c.initRPC(context.Background(), w, j, true); err != nil {
		t.Fatalf("full init: %v", err)
	}
	// A stale-epoch assignment must be answered 409.
	stale := &job{id: j.id, pl: j.pl, pts: j.pts}
	stale.spec = j.spec
	stale.spec.Epoch = 1
	if _, retryable, err := c.evalRPC(context.Background(), w, stale, []int32{0}, core.ModeFull, &evalScratch{}); err == nil || !retryable {
		t.Fatalf("stale epoch eval: err=%v retryable=%v, want retryable 409", err, retryable)
	}
	// The full evalChunk path transparently re-inits and evaluates.
	if _, _, err := c.evalChunk(context.Background(), w, j, []int32{0, 1}, core.ModeFull, &evalScratch{}); err != nil {
		t.Fatalf("evalChunk: %v", err)
	}
	c.dropJob(j.id)
}
