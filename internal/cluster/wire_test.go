package cluster

import (
	"math/rand"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// buildTiling makes a small deterministic tiling plus a filled dst.
func buildTiling(t *testing.T, n int) (*core.Tiling, []geom.Point, []tensor.Stress) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*80, rng.Float64()*80)
	}
	tl, err := core.NewTiling(pts, 25)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]tensor.Stress, n)
	for i := range dst {
		dst[i] = tensor.Stress{XX: float64(i), YY: -float64(i), XY: 0.5 * float64(i)}
	}
	return tl, pts, dst
}

// A result batch must decode back to exactly the per-tile values the
// encoder read from dst, for chunk sizes spanning one tile to the whole
// tiling, and the scatter of the decoded records must rebuild dst.
func TestResultBatchRoundTrip(t *testing.T) {
	tl, _, dst := buildTiling(t, 500)
	allIDs := make([]int32, tl.NumTiles())
	for i := range allIDs {
		allIDs[i] = int32(i)
	}
	for _, k := range []int{1, 2, 4, 7, tl.NumTiles()} {
		if k > tl.NumTiles() {
			continue
		}
		ids := allIDs[:k]
		payload := appendResultBatchPayload(nil, tl, ids, dst)
		records, _, err := decodeResultBatch(payload, nil, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(records) != k {
			t.Fatalf("k=%d: decoded %d records", k, len(records))
		}
		got := make([]tensor.Stress, len(dst))
		for _, rec := range records {
			if err := tl.ScatterTileResult(rec.id, rec.vals, got); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
		for _, id := range ids {
			for _, oi := range tl.TilePoints(int(id)) {
				if got[oi] != dst[oi] {
					t.Fatalf("k=%d: tile %d point %d: %+v != %+v", k, id, oi, got[oi], dst[oi])
				}
			}
		}
	}
}

// The encode buffer and decode slab are reusable: a second, larger
// batch through the same buffers must decode exactly, and a smaller one
// after that must not see stale tail data.
func TestResultBatchBufferReuse(t *testing.T) {
	tl, _, dst := buildTiling(t, 400)
	var buf []byte
	var slab []tensor.Stress
	var records []tileRecord
	for _, k := range []int{2, tl.NumTiles(), 1} {
		ids := make([]int32, k)
		for i := range ids {
			ids[i] = int32(i)
		}
		buf = appendResultBatchPayload(buf[:0], tl, ids, dst)
		var err error
		records, slab, err = decodeResultBatch(buf, records[:0], slab[:0])
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(records) != k {
			t.Fatalf("k=%d: decoded %d records", k, len(records))
		}
		for _, rec := range records {
			pts := tl.TilePoints(int(rec.id))
			for i, oi := range pts {
				if rec.vals[i] != dst[oi] {
					t.Fatalf("k=%d: tile %d value %d diverges after reuse", k, rec.id, i)
				}
			}
		}
	}
}

// realiasRecords must rebuild every record's view after a slab copy —
// the repair evalRPC applies when a response carries several result
// frames and a later one grows the shared slab.
func TestRealiasRecords(t *testing.T) {
	tl, _, dst := buildTiling(t, 300)
	payload := appendResultBatchPayload(nil, tl, []int32{0, 1, 2}, dst)
	records, slab, err := decodeResultBatch(payload, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a reallocation: copy the slab elsewhere and re-alias.
	moved := append(make([]tensor.Stress, 0, len(slab)+64), slab...)
	realiasRecords(records, moved)
	for _, rec := range records {
		pts := tl.TilePoints(int(rec.id))
		for i, oi := range pts {
			if rec.vals[i] != dst[oi] {
				t.Fatalf("tile %d value %d lost after realias", rec.id, i)
			}
		}
	}
}

// Malformed batches must be rejected, never panic.
func TestResultBatchMalformed(t *testing.T) {
	tl, _, dst := buildTiling(t, 100)
	good := appendResultBatchPayload(nil, tl, []int32{0}, dst)
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:3],
		"overcount":      append([]byte{0xff, 0xff, 0xff, 0xff}, good[4:]...),
		"trailing bytes": append(append([]byte{}, good...), 0xAB),
		"truncated tile": good[:len(good)-8],
	}
	for name, payload := range cases {
		if _, _, err := decodeResultBatch(payload, nil, nil); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
