// Package cluster is the sharded multi-process evaluation tier: a
// coordinator that partitions a core.Tiling across a fleet of worker
// processes (cmd/tsvworker) and merges their tile results back into the
// caller's grid, with output pinned to single-process core.MapInto
// parity.
//
// The division of labor follows the paper's structure: the expensive
// solves (Stage I look-up table, per-harmonic interactive systems) are
// placement-independent, so every worker derives them locally from the
// structure + options shipped once at job init — only tile assignments
// (bare tile ids) and tile results (stress values in tile point order)
// cross the wire afterwards. Both ends build the same deterministic
// Tiling from the shared (points, cutoff), which is what makes a tile
// id a complete work description.
//
// Failure model: workers are stateless caches of their job — any tile
// may be re-evaluated by any worker at any time with an identical
// result, so the coordinator reassigns the chunks of a dead worker,
// speculatively re-executes stragglers' chunks on idle workers, and
// merges whichever copy completes first. Cancellation propagates from
// the coordinator's context through the in-flight HTTP requests into
// each worker's per-tile cancellation checks (core.EvalTiles).
package cluster

//tsvlint:apiboundary
//tsvlint:hotpath

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// protoVersion is the wire-protocol version; ping exchanges it and the
// coordinator refuses workers speaking another version. Version 2
// introduced the batched result frame (frameResultBatch): one frame per
// eval chunk instead of one per tile, which cuts the header and
// read-loop traffic on the many-small-tiles shape a fine tiling
// produces.
const protoVersion = 2

// Frame types. Every frame on the wire is length-prefixed:
//
//	u32 payload length (little-endian) | u8 type | payload
//
// so a reader can skip frames it does not expect and a decoder can
// bound its allocations before touching the payload.
const (
	frameInit        = 1 // JSON jobSpec
	framePlacement   = 2 // u32 n | n × (f64 x, f64 y) TSV centers
	framePoints      = 3 // u32 n | n × (f64 x, f64 y) simulation points
	frameAssign      = 4 // u64 epoch | u8 mode | u32 n | n × u32 tile id
	frameResult      = 5 // one core tile-result record (v1 shape; still decoded)
	frameDone        = 6 // u32 tiles evaluated
	frameError       = 7 // UTF-8 message
	frameResultBatch = 8 // u32 n | n × core tile-result record (one per chunk)
)

// maxFramePayload bounds a single frame. The largest legitimate frame
// is the point set of a session (24 B/point would allow ~10M points);
// anything larger is a corrupt or hostile length.
const maxFramePayload = 1 << 28

// frameHeaderLen is u32 length + u8 type.
const frameHeaderLen = 5

// growBytes returns a byte buffer of length n, reusing b's backing
// array when it is large enough — the amortized realloc path of every
// reused wire buffer (the grow* prefix is the allocfree analyzer's
// amortization allowance).
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// growBytesSpare ensures b has at least spare free capacity beyond its
// length, preserving its contents.
func growBytesSpare(b []byte, spare int) []byte {
	if cap(b)-len(b) < spare {
		nb := make([]byte, len(b), len(b)+spare)
		copy(nb, b)
		return nb
	}
	return b
}

// growStressSpare ensures s has at least spare free capacity beyond
// its length, preserving its contents.
func growStressSpare(s []tensor.Stress, spare int) []tensor.Stress {
	if cap(s)-len(s) < spare {
		ns := make([]tensor.Stress, len(s), len(s)+spare)
		copy(ns, s)
		return ns
	}
	return s
}

// appendFrame appends a framed payload to buf.
//
//tsvlint:allocfree
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, typ)
	return append(buf, payload...)
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame from r, rejecting oversized declarations
// before allocating.
func readFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	typ, payload, _, err = readFrameInto(r, nil)
	return typ, payload, err
}

// readFrameInto is readFrame with a caller-owned payload buffer: the
// payload is read into buf when it fits, and bufOut returns the
// (possibly grown) buffer for the next call. The coordinator's result
// drain reads one frame per chunk through this, so a steady-state eval
// stream touches the allocator only while the buffer is still growing
// toward the largest chunk.
//
//tsvlint:allocfree
func readFrameInto(r *bufio.Reader, buf []byte) (typ byte, payload, bufOut []byte, err error) {
	// The header is read into the reusable buffer, not a stack array: a
	// local array would escape through the io.ReadFull interface call
	// and cost one heap allocation per frame.
	buf = growBytes(buf, frameHeaderLen)
	if _, err := io.ReadFull(r, buf[:frameHeaderLen]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(buf[:4])
	typ = buf[4]
	if n > maxFramePayload {
		return 0, nil, buf, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, maxFramePayload)
	}
	buf = growBytes(buf, int(n))
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("cluster: frame truncated: %w", err)
	}
	return typ, payload, buf, nil
}

// DecodeFrame splits one frame off the front of data — the byte-slice
// twin of readFrame, and the entry point the fuzz target drives. It
// never panics on malformed input.
func DecodeFrame(data []byte) (typ byte, payload, rest []byte, err error) {
	if len(data) < frameHeaderLen {
		return 0, nil, nil, fmt.Errorf("cluster: frame header truncated: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint32(data[:4])
	if n > maxFramePayload {
		return 0, nil, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, maxFramePayload)
	}
	body := data[frameHeaderLen:]
	if uint64(n) > uint64(len(body)) {
		return 0, nil, nil, fmt.Errorf("cluster: frame declares %d bytes, %d follow", n, len(body))
	}
	return data[4], body[:n], body[n:], nil
}

// ---- coordinate slabs (placement centers, simulation points) ----

// appendPointsPayload encodes n (x, y) pairs.
func appendPointsPayload(buf []byte, pts []geom.Point) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pts)))
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
	}
	return buf
}

// decodePointsPayload decodes an (x, y) slab, validating the declared
// count against the bytes that actually arrived.
func decodePointsPayload(payload []byte) ([]geom.Point, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("cluster: point slab truncated: %d bytes", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	body := payload[4:]
	if uint64(n)*16 != uint64(len(body)) {
		return nil, fmt.Errorf("cluster: point slab declares %d points, carries %d bytes", n, len(body))
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		off := i * 16
		pts[i] = geom.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(body[off:])),
			math.Float64frombits(binary.LittleEndian.Uint64(body[off+8:])),
		)
	}
	return pts, nil
}

// ---- tile assignments ----

// assignment is one eval request: which tiles to evaluate, against
// which job epoch, in which mode.
type assignment struct {
	Epoch uint64
	Mode  core.Mode
	IDs   []int32
}

// appendAssignPayload encodes an assignment.
func appendAssignPayload(buf []byte, a assignment) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, a.Epoch)
	buf = append(buf, byte(a.Mode))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.IDs)))
	for _, id := range a.IDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	}
	return buf
}

// decodeAssignPayload decodes an assignment, bounding the id count by
// the payload that actually arrived. Tile-id range checking is the
// worker's job — only it holds the tiling.
func decodeAssignPayload(payload []byte) (assignment, error) {
	var a assignment
	if len(payload) < 13 {
		return a, fmt.Errorf("cluster: assignment truncated: %d bytes", len(payload))
	}
	a.Epoch = binary.LittleEndian.Uint64(payload)
	mode := payload[8]
	if mode > byte(core.ModeInteractive) {
		return a, fmt.Errorf("cluster: assignment mode %d unknown", mode)
	}
	a.Mode = core.Mode(mode)
	n := binary.LittleEndian.Uint32(payload[9:])
	body := payload[13:]
	if uint64(n)*4 != uint64(len(body)) {
		return a, fmt.Errorf("cluster: assignment declares %d tiles, carries %d bytes", n, len(body))
	}
	a.IDs = make([]int32, n)
	for i := range a.IDs {
		a.IDs[i] = int32(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return a, nil
}

// ---- batched tile results ----

// tileRecord is one decoded tile result. vals may alias a shared decode
// slab (see decodeResultBatch); it is only valid until the slab's next
// reuse.
type tileRecord struct {
	id   int32
	vals []tensor.Stress
}

// appendResultBatchPayload encodes every assigned tile's result as one
// frameResultBatch payload: u32 count followed by the concatenated core
// tile-result records. The buffer is pre-grown to the exact encoded
// size so a worker's reused scratch stops growing once it has seen its
// largest chunk.
//tsvlint:allocfree
func appendResultBatchPayload(buf []byte, tl *core.Tiling, ids []int32, dst []tensor.Stress) []byte {
	need := 4
	for _, id := range ids {
		need += tl.TileResultLen(id)
	}
	buf = growBytesSpare(buf, need)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = tl.AppendTileResult(buf, id, dst)
	}
	return buf
}

// decodeResultBatch decodes a frameResultBatch payload, appending the
// records to records and their values to slab (both may be reused
// buffers; pass them with length 0). Every record's vals slice aliases
// the returned slab — the records are only valid until the caller
// reuses it. The slab is pre-grown from the payload size, so the
// appends never reallocate out from under earlier records.
//tsvlint:allocfree
func decodeResultBatch(payload []byte, records []tileRecord, slab []tensor.Stress) ([]tileRecord, []tensor.Stress, error) {
	if len(payload) < 4 {
		return records, slab, fmt.Errorf("cluster: result batch truncated: %d bytes", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	body := payload[4:]
	if uint64(n)*uint64(tileResultMinLen) > uint64(len(body)) {
		return records, slab, fmt.Errorf("cluster: result batch declares %d tiles, carries %d bytes", n, len(body))
	}
	slab = growStressSpare(slab, len(body)/core.StressWireLen)
	for i := 0; i < int(n); i++ {
		id, slabOut, rest, err := core.ReadTileResultAppend(body, slab)
		if err != nil {
			return records, slab, err
		}
		records = append(records, tileRecord{id: id, vals: slabOut[len(slab):]})
		slab, body = slabOut, rest
	}
	if len(body) != 0 {
		return records, slab, fmt.Errorf("cluster: result batch carries %d trailing bytes", len(body))
	}
	return records, slab, nil
}

// tileResultMinLen is the smallest legal tile-result record (empty
// tile: u32 id + u32 count), used to bound a batch's declared tile
// count before decoding.
const tileResultMinLen = 8

// ---- job spec ----

// jobSpec is the JSON frameInit payload: everything a worker needs to
// rebuild the coordinator's evaluation state from scratch. Options are
// shipped resolved (core.Options.Resolved) so worker-side defaulting
// can never diverge; Workers is the only field a worker overrides with
// its own budget.
type jobSpec struct {
	// Job names the evaluation state on the worker; it is unique per
	// coordinator instance so restarts never collide with stale jobs.
	Job string `json:"job"`
	// Epoch versions the placement: a worker holding an older epoch
	// rebuilds its analyzer (reusing its solved models and coefficient
	// cache) from the placement shipped alongside.
	Epoch uint64 `json:"epoch"`
	// Struct is the TSV cross-section; with Options it determines the
	// solved models, bit-for-bit.
	Struct material.Structure `json:"struct"`
	// Options are the resolved analyzer options.
	Options core.Options `json:"options"`
	// Mode is the session's pinned evaluation mode (an assignment may
	// still request a cheaper mode, e.g. a degraded LS pass).
	Mode core.Mode `json:"mode"`
	// TileCutoff is the gather radius the tiling is built with; with
	// the shipped points it reproduces the coordinator's partition.
	TileCutoff float64 `json:"tileCutoff"`
	// NumTiles and NumPoints are the expected partition shape; the
	// worker verifies its rebuilt tiling against them and refuses the
	// job on mismatch rather than return misaligned results.
	NumTiles  int `json:"numTiles"`
	NumPoints int `json:"numPoints"`
}

// validate rejects specs whose numbers could poison worker-side state.
func (s *jobSpec) validate() error {
	if s.Job == "" {
		return fmt.Errorf("cluster: job spec has no id")
	}
	if err := s.Struct.Validate(); err != nil {
		return fmt.Errorf("cluster: job %s: %w", s.Job, err)
	}
	if math.IsNaN(s.TileCutoff) || math.IsInf(s.TileCutoff, 0) || s.TileCutoff <= 0 {
		return fmt.Errorf("cluster: job %s: tile cutoff %g must be positive and finite", s.Job, s.TileCutoff)
	}
	if s.Mode < core.ModeLS || s.Mode > core.ModeInteractive {
		return fmt.Errorf("cluster: job %s: unknown mode %d", s.Job, s.Mode)
	}
	if s.NumPoints <= 0 || s.NumTiles <= 0 {
		return fmt.Errorf("cluster: job %s: empty partition (%d tiles, %d points)", s.Job, s.NumTiles, s.NumPoints)
	}
	return nil
}
