package cluster

import (
	"fmt"
	"net"
	"net/http"
	"runtime"
)

// LocalWorkers is a fleet of in-process worker HTTP servers on loopback
// ports — the `-cluster local:N` backend for tsvexp and the fixture the
// cluster tests and benches drive. Each worker is a full Worker behind
// a real TCP listener, so the wire protocol, HTTP layer and failure
// paths are exactly those of a remote fleet; only process isolation is
// elided.
type LocalWorkers struct {
	workers []*Worker
	servers []*http.Server
	addrs   []string
}

// StartLocalWorkers launches n workers on ephemeral loopback ports.
// Worker thread budgets are split evenly across the fleet (NumCPU / n,
// at least 1) unless opt.Workers pins one explicitly — co-located
// workers must not oversubscribe the machine, and benches comparing
// fleet sizes need each configuration to use the same total core
// budget.
func StartLocalWorkers(n int, opt WorkerOptions) (*LocalWorkers, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: %d local workers", n)
	}
	if opt.Workers == 0 {
		per := runtime.NumCPU() / n
		if per < 1 {
			per = 1
		}
		opt.Workers = per
	}
	lw := &LocalWorkers{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lw.Stop()
			return nil, fmt.Errorf("cluster: local worker %d: %w", i, err)
		}
		w := NewWorker(opt)
		srv := &http.Server{Handler: w.Handler()}
		// The accept loop's lifetime is owned by the *http.Server, not a
		// channel: Stop/StopWorker call srv.Close, which Serve observes
		// as ErrServerClosed and returns.
		//tsvlint:ignore goroleak joined via srv.Close in Stop/StopWorker, invisible to the analyzer
		go func() { _ = srv.Serve(ln) }()
		lw.workers = append(lw.workers, w)
		lw.servers = append(lw.servers, srv)
		lw.addrs = append(lw.addrs, ln.Addr().String())
	}
	return lw, nil
}

// Addrs returns the host:port addresses, in launch order — pass them to
// NewCoordinator.
func (lw *LocalWorkers) Addrs() []string { return append([]string(nil), lw.addrs...) }

// StopWorker hard-stops worker i (closing its listener and connections
// mid-request), simulating a process death for the chaos tests.
func (lw *LocalWorkers) StopWorker(i int) {
	if i < 0 || i >= len(lw.servers) || lw.servers[i] == nil {
		return
	}
	_ = lw.servers[i].Close()
	lw.servers[i] = nil
}

// Stop hard-stops every worker.
func (lw *LocalWorkers) Stop() {
	for i := range lw.servers {
		lw.StopWorker(i)
	}
}
