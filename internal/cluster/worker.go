package cluster

//tsvlint:apiboundary

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// MaxJobs bounds the number of evaluation states held in memory
	// (default 8); beyond it the least-recently-used job is evicted —
	// a coordinator that still needs it re-initializes transparently.
	MaxJobs int
	// Workers bounds the tile parallelism of one eval call (default
	// GOMAXPROCS). Benchmarks use it to pin a per-process core budget.
	Workers int
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.MaxJobs <= 0 {
		o.MaxJobs = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Worker is the worker-side state: a table of initialized jobs. Mount
// Handler on an HTTP server (cmd/tsvworker does) to serve a
// coordinator.
type Worker struct {
	opt WorkerOptions

	mu   sync.Mutex
	jobs map[string]*workerJob
}

// workerJob is one initialized evaluation state: the analyzer and
// tiling rebuilt from a job spec, plus the destination buffer evals
// write into. Eval calls on one job serialize on its mutex (their dst
// slots may overlap under speculative re-execution); different jobs
// evaluate concurrently.
type workerJob struct {
	mu       sync.Mutex
	spec     jobSpec
	pts      []geom.Point
	tl       *core.Tiling
	an       *core.Analyzer
	dst      []tensor.Stress
	lastUsed time.Time
	// resultBuf is the reusable frameResultBatch encode buffer (under
	// mu, like dst); it stops growing once the job has answered its
	// largest chunk.
	resultBuf []byte
}

// NewWorker builds an empty worker.
func NewWorker(opt WorkerOptions) *Worker {
	return &Worker{opt: opt.withDefaults(), jobs: make(map[string]*workerJob)}
}

// NumJobs returns the number of initialized jobs.
func (w *Worker) NumJobs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.jobs)
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/ping", w.handlePing)
	mux.HandleFunc("POST /v1/cluster/jobs/{id}", w.handleInit)
	mux.HandleFunc("POST /v1/cluster/jobs/{id}/eval", w.handleEval)
	mux.HandleFunc("DELETE /v1/cluster/jobs/{id}", w.handleDrop)
	return mux
}

// pingResponse is the registration/heartbeat body: the coordinator
// records Cores at registration and refuses a Proto mismatch.
type pingResponse struct {
	Status string `json:"status"`
	Proto  int    `json:"proto"`
	Cores  int    `json:"cores"`
	Jobs   int    `json:"jobs"`
}

func (w *Worker) handlePing(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(pingResponse{
		Status: "ok",
		Proto:  protoVersion,
		Cores:  w.opt.Workers,
		Jobs:   w.NumJobs(),
	})
}

func workerError(rw http.ResponseWriter, status int, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": msg})
}

// handleInit builds or refreshes a job. The body is a frame sequence:
// frameInit (JSON spec), framePlacement (TSV centers), and — on a full
// init — framePoints (the simulation points). A re-init (placement
// only) requires the job to already exist at an older epoch; the
// worker then rebuilds its analyzer through core.Analyzer.Rebuild,
// reusing the solved models and the pitch-keyed coefficient cache. A
// re-init for an unknown job answers 404 and the coordinator retries
// with a full init.
func (w *Worker) handleInit(rw http.ResponseWriter, r *http.Request) {
	if err := faultinject.Fire("cluster.worker.init"); err != nil {
		workerError(rw, http.StatusInternalServerError, "injected: "+err.Error())
		return
	}
	br := bufio.NewReader(r.Body)
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameInit {
		workerError(rw, http.StatusBadRequest, fmt.Sprintf("want init frame first (type %d, err %v)", typ, err))
		return
	}
	var spec jobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		workerError(rw, http.StatusBadRequest, "job spec: "+err.Error())
		return
	}
	if err := spec.validate(); err != nil {
		workerError(rw, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if spec.Job != r.PathValue("id") {
		workerError(rw, http.StatusBadRequest, fmt.Sprintf("spec names job %q, path names %q", spec.Job, r.PathValue("id")))
		return
	}
	typ, payload, err = readFrame(br)
	if err != nil || typ != framePlacement {
		workerError(rw, http.StatusBadRequest, fmt.Sprintf("want placement frame (type %d, err %v)", typ, err))
		return
	}
	centers, err := decodePointsPayload(payload)
	if err != nil {
		workerError(rw, http.StatusBadRequest, err.Error())
		return
	}
	pl := geom.NewPlacement(centers...)

	var pts []geom.Point
	if typ, payload, err = readFrame(br); err == nil && typ == framePoints {
		if pts, err = decodePointsPayload(payload); err != nil {
			workerError(rw, http.StatusBadRequest, err.Error())
			return
		}
	}

	ack, status, err := w.initJob(spec, pl, pts)
	if err != nil {
		workerError(rw, status, err.Error())
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(ack)
}

// initAck answers a successful init.
type initAck struct {
	Job       string `json:"job"`
	Epoch     uint64 `json:"epoch"`
	NumTiles  int    `json:"numTiles"`
	NumPoints int    `json:"numPoints"`
}

// initJob applies an init under the job table and job locks, returning
// the HTTP status to report on failure.
func (w *Worker) initJob(spec jobSpec, pl *geom.Placement, pts []geom.Point) (initAck, int, error) {
	w.mu.Lock()
	job, exists := w.jobs[spec.Job]
	if !exists {
		if pts == nil {
			w.mu.Unlock()
			return initAck{}, http.StatusNotFound, fmt.Errorf("cluster: job %s unknown; full init required", spec.Job)
		}
		job = &workerJob{}
		w.jobs[spec.Job] = job
		w.evictLocked(spec.Job)
	}
	job.lastUsed = time.Now()
	w.mu.Unlock()

	job.mu.Lock()
	defer job.mu.Unlock()
	if exists && job.an == nil && pts == nil {
		// The job was evicted (or its first init failed) between the
		// table lookup and here; without points it cannot be rebuilt.
		return initAck{}, http.StatusNotFound, fmt.Errorf("cluster: job %s lost its state; full init required", spec.Job)
	}
	if job.an != nil && job.spec.Epoch >= spec.Epoch {
		// Idempotent replay of an epoch the job already has (a retried
		// init after a dropped response): nothing to rebuild.
		return initAck{Job: spec.Job, Epoch: job.spec.Epoch, NumTiles: job.tl.NumTiles(), NumPoints: len(job.pts)}, 0, nil
	}

	if pts == nil {
		pts = job.pts
	}
	if len(pts) != spec.NumPoints {
		return initAck{}, http.StatusUnprocessableEntity,
			fmt.Errorf("cluster: job %s ships %d points, spec says %d", spec.Job, len(pts), spec.NumPoints)
	}
	var an *core.Analyzer
	var err error
	if job.an != nil {
		// Same structure/options, new placement: rebuild shares the
		// solved models and the pitch-keyed coefficient cache.
		an, err = job.an.Rebuild(pl, nil)
	} else {
		opt := spec.Options.Resolved()
		opt.Workers = w.opt.Workers
		an, err = core.New(spec.Struct, pl, opt)
	}
	if err != nil {
		return initAck{}, http.StatusUnprocessableEntity, err
	}
	tl := job.tl
	if tl == nil {
		if tl, err = core.NewTiling(pts, spec.TileCutoff); err != nil {
			return initAck{}, http.StatusUnprocessableEntity, err
		}
	}
	if tl.NumTiles() != spec.NumTiles {
		return initAck{}, http.StatusUnprocessableEntity,
			fmt.Errorf("cluster: job %s tiling disagrees: worker built %d tiles, coordinator has %d", spec.Job, tl.NumTiles(), spec.NumTiles)
	}
	job.spec = spec
	job.pts = pts
	job.tl = tl
	job.an = an
	if len(job.dst) != len(pts) {
		job.dst = make([]tensor.Stress, len(pts))
	}
	return initAck{Job: spec.Job, Epoch: spec.Epoch, NumTiles: tl.NumTiles(), NumPoints: len(pts)}, 0, nil
}

// evictLocked drops least-recently-used jobs beyond MaxJobs, never the
// one just touched. Caller holds w.mu.
func (w *Worker) evictLocked(keep string) {
	for len(w.jobs) > w.opt.MaxJobs {
		type entry struct {
			id string
			at time.Time
		}
		victims := make([]entry, 0, len(w.jobs))
		for id, j := range w.jobs {
			if id != keep {
				victims = append(victims, entry{id, j.lastUsed})
			}
		}
		if len(victims) == 0 {
			return
		}
		sort.Slice(victims, func(i, k int) bool { return victims[i].at.Before(victims[k].at) })
		delete(w.jobs, victims[0].id)
	}
}

// handleEval evaluates an assignment's tiles and streams one
// frameResultBatch carrying every tile of the chunk, followed by
// frameDone. An epoch mismatch is a 409 (the coordinator re-inits and
// retries); an evaluation failure after the 200 has been committed is
// reported in-stream as a frameError.
func (w *Worker) handleEval(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	job, ok := w.jobs[id]
	if ok {
		job.lastUsed = time.Now()
	}
	w.mu.Unlock()
	if !ok {
		workerError(rw, http.StatusNotFound, fmt.Sprintf("cluster: job %s unknown; full init required", id))
		return
	}
	br := bufio.NewReader(r.Body)
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameAssign {
		workerError(rw, http.StatusBadRequest, fmt.Sprintf("want assignment frame (type %d, err %v)", typ, err))
		return
	}
	asn, err := decodeAssignPayload(payload)
	if err != nil {
		workerError(rw, http.StatusBadRequest, err.Error())
		return
	}

	job.mu.Lock()
	defer job.mu.Unlock()
	if job.an == nil {
		workerError(rw, http.StatusNotFound, fmt.Sprintf("cluster: job %s lost its state; full init required", id))
		return
	}
	if asn.Epoch != job.spec.Epoch {
		workerError(rw, http.StatusConflict,
			fmt.Sprintf("cluster: job %s is at epoch %d, assignment wants %d", id, job.spec.Epoch, asn.Epoch))
		return
	}
	// The test-only straggler/death drill: a Delay fault makes this
	// worker slow (stealable), an Err fault makes every eval fail.
	if err := faultinject.Fire("cluster.worker.eval"); err != nil {
		workerError(rw, http.StatusInternalServerError, "injected: "+err.Error())
		return
	}
	if err := job.an.EvalTiles(r.Context(), job.dst, job.pts, job.tl, asn.IDs, asn.Mode); err != nil {
		// Before the first byte of the body the status line is still
		// ours to choose; report eval failures as a 500 so the
		// coordinator's retry logic sees one uniform shape.
		workerError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(rw, 1<<16)
	// One batch frame for the whole chunk, encoded into the job's
	// reusable scratch (held under job.mu like the rest of the eval).
	job.resultBuf = appendResultBatchPayload(job.resultBuf[:0], job.tl, asn.IDs, job.dst)
	if err := writeFrame(bw, frameResultBatch, job.resultBuf); err != nil {
		return // client went away; nothing left to report to
	}
	// The partial-response drill: an armed fault ends the stream after
	// the batch frame but before frameDone, so the coordinator sees a
	// truncated result and must discard it and retry — never merge it.
	if err := faultinject.Fire("cluster.worker.partial"); err != nil {
		_ = bw.Flush()
		return
	}
	var done [4]byte
	binary.LittleEndian.PutUint32(done[:], uint32(len(asn.IDs)))
	if err := writeFrame(bw, frameDone, done[:]); err != nil {
		return
	}
	_ = bw.Flush()
}

func (w *Worker) handleDrop(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	_, ok := w.jobs[id]
	delete(w.jobs, id)
	w.mu.Unlock()
	if !ok {
		workerError(rw, http.StatusNotFound, fmt.Sprintf("cluster: job %s unknown", id))
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}
