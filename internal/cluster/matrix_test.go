package cluster

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/geom"
	"tsvstress/internal/incr"
	"tsvstress/internal/resilience"
	"tsvstress/internal/tensor"
)

// matrixResilience is the policy every matrix cell runs under: fast
// deterministic backoff (seeded jitter, so the retry schedule — and
// with it the attempt bounds asserted below — is a pure function of
// the config) and the production retry/breaker semantics otherwise.
func matrixResilience() resilience.Config {
	return resilience.Config{
		Backoff: resilience.BackoffConfig{
			Base: 2 * time.Millisecond, Max: 20 * time.Millisecond,
			Factor: 2, Jitter: 0.2, Seed: 42,
		},
	}.WithDefaults()
}

// matrixCell is one failure-mode column of the chaos matrix. arm
// injects the mode's faults; during (optional) runs while the map is in
// flight.
type matrixCell struct {
	name   string
	arm    func()
	during func(lw *LocalWorkers)
}

// matrixCells is the failure matrix's fault dimension. Every fault is
// bounded (Times) so no cell can take out the whole fleet: the harness
// drills recovery, not extinction.
func matrixCells() []matrixCell {
	return []matrixCell{
		{
			// A worker process dies mid-map: its chunks requeue onto the
			// survivors.
			name: "dead",
			arm: func() {
				faultinject.Set("cluster.worker.eval", faultinject.Fault{Delay: 15 * time.Millisecond})
			},
			during: func(lw *LocalWorkers) {
				time.Sleep(30 * time.Millisecond)
				lw.StopWorker(0)
			},
		},
		{
			// Every eval is slow: the derived deadlines must tolerate it and
			// the speculation hedge absorbs stragglers.
			name: "slow",
			arm: func() {
				faultinject.Set("cluster.worker.eval", faultinject.Fault{Delay: 20 * time.Millisecond})
			},
		},
		{
			// The network is flaky: eval RPCs fail probabilistically (a
			// deterministic splitmix64 stream) and the retry budget absorbs
			// them.
			name: "flaky",
			arm: func() {
				faultinject.Set("cluster.coord.eval", faultinject.Fault{Prob: 0.4, Seed: 11, Times: 6})
			},
		},
		{
			// Workers truncate result streams after the batch frame: the
			// coordinator must discard the partial response and retry — a
			// truncated result merged into the map would break parity.
			name: "partial",
			arm: func() {
				faultinject.Set("cluster.worker.partial", faultinject.Fault{Prob: 0.5, Seed: 5, Times: 4})
			},
		},
	}
}

// cellReport is one matrix cell's outcome for the CI artifact.
type cellReport struct {
	Cell       string  `json:"cell"`
	Mode       string  `json:"mode"`
	Attempts   int64   `json:"attempts"`
	Retries    int64   `json:"retries"`
	Timeouts   int64   `json:"timeouts"`
	Requeues   int64   `json:"requeues"`
	Steals     int64   `json:"steals"`
	Chunks     int64   `json:"chunks"`
	WorstMPa   float64 `json:"worstMPa"`
	ElapsedMs  float64 `json:"elapsedMs"`
	BudgetLeft float64 `json:"budgetLeft"`
}

// TestFailureMatrix sweeps {dead, slow, flaky, partial} × {Full, LS}:
// every cell must produce a map within 1e-9 MPa of the single-process
// core.MapInto reference, every eval RPC must carry a derived deadline
// (Attempts == Deadlined), and the attempt count must stay inside the
// retry budget — no cell is allowed to degenerate into a retry storm.
// With CHAOS_MATRIX_OUT set, the per-cell report is written there as
// JSON (the CI chaos-matrix job uploads it as an artifact).
func TestFailureMatrix(t *testing.T) {
	fx := newFixture(t, 80, 1.8)
	refs := map[core.Mode][]tensor.Stress{core.ModeFull: fx.want}
	lsRef := make([]tensor.Stress, len(fx.pts))
	if err := fx.an.MapInto(context.Background(), lsRef, fx.pts, core.ModeLS); err != nil {
		t.Fatal(err)
	}
	refs[core.ModeLS] = lsRef

	var reports []cellReport
	for _, cell := range matrixCells() {
		for _, mc := range []struct {
			mode core.Mode
			name string
		}{{core.ModeFull, "full"}, {core.ModeLS, "ls"}} {
			t.Run(cell.name+"/"+mc.name, func(t *testing.T) {
				lw, err := StartLocalWorkers(3, WorkerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				defer lw.Stop()
				c, err := NewCoordinator(lw.Addrs(), CoordinatorOptions{
					HeartbeatEvery: -1,
					PingTimeout:    5 * time.Second,
					Resilience:     matrixResilience(),
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if err := c.Ping(context.Background()); err != nil {
					t.Fatal(err)
				}

				cell.arm()
				defer faultinject.Reset()
				got := make([]tensor.Stress, len(fx.pts))
				start := time.Now()
				mapErr := make(chan error, 1)
				go func() {
					mapErr <- c.Map(context.Background(), got, fx.st, fx.pl, fx.pts, mc.mode, core.Options{})
				}()
				if cell.during != nil {
					cell.during(lw)
				}
				if err := <-mapErr; err != nil {
					t.Fatalf("map under %s: %v", cell.name, err)
				}
				elapsed := time.Since(start)

				want := refs[mc.mode]
				worst := 0.0
				for i := range got {
					if d := maxAbsDiff(got[i], want[i]); d > worst {
						worst = d
					}
				}
				if worst > 1e-9 {
					t.Errorf("map under %s diverges from MapInto by %g MPa", cell.name, worst)
				}

				st := c.Stats()
				if st.Attempts == 0 || st.Attempts != st.Deadlined {
					t.Errorf("attempts %d, deadlined %d: every eval RPC must carry a derived deadline",
						st.Attempts, st.Deadlined)
				}
				// Attempt accounting: dispatches = chunks + requeues +
				// steals; each dispatch spends at most one first attempt,
				// each retry is budget-metered, and every attempt performs
				// at most two eval RPCs (the 404/409 re-ship).
				if maxAttempts := 2 * (st.Chunks + st.Requeues + st.Steals + st.Retries); st.Attempts > maxAttempts {
					t.Errorf("attempts %d exceed the dispatch bound %d (stats %+v)", st.Attempts, maxAttempts, st)
				}
				if budget := matrixResilience().Budget.MaxTokens; float64(st.Retries) > budget {
					t.Errorf("retries %d exceed the %g-token budget", st.Retries, budget)
				}
				reports = append(reports, cellReport{
					Cell: cell.name, Mode: mc.name,
					Attempts: st.Attempts, Retries: st.Retries, Timeouts: st.Timeouts,
					Requeues: st.Requeues, Steals: st.Steals, Chunks: st.Chunks,
					WorstMPa:   worst,
					ElapsedMs:  float64(elapsed) / float64(time.Millisecond),
					BudgetLeft: st.BudgetTokens,
				})
			})
		}
	}
	if out := os.Getenv("CHAOS_MATRIX_OUT"); out != "" && len(reports) > 0 {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Errorf("chaos matrix report: %v", err)
		}
	}
}

// TestHeartbeatFlappingDampened drills register/deregister churn: ping
// faults flap the whole fleet to dead mid-map. The per-worker breakers
// (threshold 2 here) trip after the second consecutive failed round,
// and while they cool down further ping rounds are suppressed — the
// flapping is dampened instead of amplified. The in-flight map must
// still complete with exact parity (no tile lost to the churn, none
// double-merged), and after the cool-down one probe ping per worker
// heals the fleet.
func TestHeartbeatFlappingDampened(t *testing.T) {
	fx := newFixture(t, 60, 2)
	lw, err := StartLocalWorkers(3, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Stop()
	res := matrixResilience()
	res.Breaker = resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 100 * time.Millisecond}
	c, err := NewCoordinator(lw.Addrs(), CoordinatorOptions{
		HeartbeatEvery: -1, PingTimeout: 5 * time.Second, Resilience: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	// Slow evals keep the map in flight across the ping churn.
	faultinject.Set("cluster.worker.eval", faultinject.Fault{Delay: 10 * time.Millisecond})
	defer faultinject.Reset()
	got := make([]tensor.Stress, len(fx.pts))
	mapErr := make(chan error, 1)
	go func() {
		mapErr <- c.Map(ctx, got, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	}()
	time.Sleep(15 * time.Millisecond)

	// Exactly two failing ping rounds: 3 workers × 2 rounds = 6 firings,
	// two consecutive failures per worker — the trip threshold.
	faultinject.Set("cluster.coord.ping", faultinject.Fault{Times: 6})
	c.pingAll(ctx)
	c.pingAll(ctx)
	if n := c.NumAlive(); n != 0 {
		t.Fatalf("%d workers alive after two failing ping rounds", n)
	}
	for _, w := range c.Workers() {
		if w.Breaker != "open" {
			t.Errorf("worker %s breaker %q after flapping, want open", w.Addr, w.Breaker)
		}
	}
	// The ping fault is spent, but the cooling breakers suppress the
	// next round entirely: the fleet stays (nominally) dead instead of
	// flapping straight back — that is the damping.
	c.pingAll(ctx)
	if n := c.NumAlive(); n != 0 {
		t.Fatalf("%d workers re-registered inside the breaker cool-down", n)
	}

	// The churn must not have corrupted the in-flight map.
	if err := <-mapErr; err != nil {
		t.Fatalf("map under heartbeat flapping: %v", err)
	}
	for i := range got {
		if got[i] != fx.want[i] {
			t.Fatalf("point %d diverges after heartbeat flapping", i)
		}
	}

	// Cool-down elapses: one probe ping per worker heals the fleet.
	time.Sleep(150 * time.Millisecond)
	c.pingAll(ctx)
	if n := c.NumAlive(); n != 3 {
		t.Fatalf("%d workers alive after the heal round, want 3", n)
	}
	st := c.Stats()
	if st.BreakerOpens < 3 {
		t.Errorf("breaker opens %d after three tripped workers", st.BreakerOpens)
	}
	for _, w := range st.Workers {
		if w.Breaker != "closed" {
			t.Errorf("worker %s breaker %q after heal, want closed", w.Addr, w.Breaker)
		}
	}
}

// TestSessionEvaluatorBreakerFallback pins the pool-breaker fast path:
// after a whole evaluation fails, the open breaker sends subsequent
// flushes straight to local eval without spending a single RPC attempt,
// and once the cool-down elapses the half-open probe heals the session
// back onto the cluster.
func TestSessionEvaluatorBreakerFallback(t *testing.T) {
	fx := newFixture(t, 40, 2.5)
	lw, err := StartLocalWorkers(2, WorkerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Stop()
	res := matrixResilience()
	// Worker breakers out of the way (the pool breaker is under test);
	// the pool trips on the first failed evaluation and cools briefly.
	res.Breaker = resilience.BreakerConfig{FailureThreshold: 100, OpenFor: 50 * time.Millisecond}
	res.PoolBreaker = resilience.BreakerConfig{FailureThreshold: 1, OpenFor: 200 * time.Millisecond}
	c, err := NewCoordinator(lw.Addrs(), CoordinatorOptions{
		HeartbeatEvery: -1, PingTimeout: 5 * time.Second, Resilience: res,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}

	clustered, err := incr.New(ctx, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := incr.New(ctx, fx.st, fx.pl, fx.pts, core.ModeFull, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := &enginePair{fx: fx, clustered: clustered, local: local}
	ev := c.NewSessionEvaluator()
	var fallbacks []error
	ev.OnFallback = func(err error) { fallbacks = append(fallbacks, err) }
	defer ev.Close()
	eng.clustered.SetTileEvaluator(ev)

	// Flush 1: every eval RPC fails; the evaluation fails whole, the
	// pool breaker trips, and the flush falls back to local eval.
	faultinject.Set("cluster.coord.eval", faultinject.Fault{})
	if err := eng.editAndCompare(ctx, t, 0); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	faultinject.Reset()
	if len(fallbacks) != 1 {
		t.Fatalf("%d fallbacks after the failed evaluation, want 1", len(fallbacks))
	}
	if c.Stats().PoolBreaker != "open" {
		t.Fatalf("pool breaker %q after a failed evaluation, want open", c.Stats().PoolBreaker)
	}
	attemptsAfterTrip := c.Stats().Attempts

	// Flush 2 (inside the cool-down): fast local fallback — the breaker
	// refuses before any RPC, so the attempt counter must not move.
	if err := eng.editAndCompare(ctx, t, 1); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	if len(fallbacks) != 2 || fallbacks[1] != ErrClusterOpen {
		t.Fatalf("fallbacks %v after the fast-fallback flush, want ErrClusterOpen", fallbacks)
	}
	if got := c.Stats().Attempts; got != attemptsAfterTrip {
		t.Fatalf("attempts moved %d → %d during an open-breaker flush", attemptsAfterTrip, got)
	}

	// Flush 3 (after the cool-down): the half-open probe goes back to
	// the now-healthy cluster, succeeds, and closes the breaker.
	time.Sleep(250 * time.Millisecond)
	if err := eng.editAndCompare(ctx, t, 2); err != nil {
		t.Fatalf("flush 3: %v", err)
	}
	if len(fallbacks) != 2 {
		t.Fatalf("heal flush fell back (%v), want cluster evaluation", fallbacks[len(fallbacks)-1])
	}
	st := c.Stats()
	if st.PoolBreaker != "closed" {
		t.Errorf("pool breaker %q after the heal flush, want closed", st.PoolBreaker)
	}
	if st.Attempts <= attemptsAfterTrip {
		t.Errorf("heal flush performed no eval RPCs (attempts %d)", st.Attempts)
	}
}

// enginePair is a clustered engine plus its in-process reference.
type enginePair struct {
	fx        *fixture
	clustered *incr.Engine
	local     *incr.Engine
}

// editAndCompare applies the k-th scripted edit to both engines,
// flushes both, and fails the test on any point divergence.
func (p *enginePair) editAndCompare(ctx context.Context, t *testing.T, k int) error {
	t.Helper()
	far := p.fx.pl.Bounds(0).Max
	eds := []struct{ dx, dy float64 }{{10, 10}, {20, 15}, {15, 25}}
	ed := geom.Edit{Op: geom.EditMove, Index: 1, TSV: geom.TSV{Center: geom.Pt(far.X + eds[k].dx, far.Y + eds[k].dy)}}
	if err := p.clustered.Apply(ed); err != nil {
		return err
	}
	if err := p.local.Apply(ed); err != nil {
		return err
	}
	got, err := p.clustered.Flush(ctx)
	if err != nil {
		return err
	}
	want, err := p.local.Flush(ctx)
	if err != nil {
		return err
	}
	for i := range got {
		if maxAbsDiff(got[i], want[i]) > 1e-9 {
			t.Fatalf("edit %d: point %d diverges from the local reference", k, i)
		}
	}
	return nil
}
