package cluster

import (
	"context"
	"errors"
	"sync"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// SessionEvaluator adapts a Coordinator to the incr.TileEvaluator seam:
// it routes a session's flush evaluations through the cluster while
// leaving the engine's dirty tracking, rebuild, WAL and cancellation
// semantics untouched. One evaluator serves one session (one pinned
// tiling and point set); its job lives for the evaluator's lifetime and
// each analyzer rebuild bumps the job epoch, so workers re-ship only
// the placement and rebuild their analyzers in place — reusing their
// solved Stage I table, interactive model and pitch-keyed coefficient
// cache exactly like the local path does.
//
// When the cluster cannot complete an evaluation for any reason other
// than cancellation, the evaluator falls back to the in-process
// analyzer (correctness first: every worker being down must degrade to
// local latency, not to a failed flush). Cancellation is propagated
// as-is so the serving tier's deadline semantics are unchanged.
type SessionEvaluator struct {
	c *Coordinator
	// OnFallback, when non-nil, observes every local fallback with the
	// cluster error that caused it (serving metrics hook). Set before
	// first use.
	OnFallback func(error)

	mu     sync.Mutex
	j      *job
	lastAn *core.Analyzer
}

// NewSessionEvaluator builds an evaluator backed by c. Call Close when
// the session ends to release worker-side job state.
func (c *Coordinator) NewSessionEvaluator() *SessionEvaluator {
	return &SessionEvaluator{c: c}
}

// ErrClusterOpen reports an evaluation the pool breaker refused before
// any RPC was attempted: the cluster recently failed whole evaluations
// and is cooling down, so the caller fell straight back to local eval.
var ErrClusterOpen = errors.New("cluster: pool breaker open")

// EvalTiles implements incr.TileEvaluator. Calls must not overlap (the
// engine serializes flushes; this evaluator inherits that contract).
//
// While the coordinator's pool breaker is open, flushes skip the
// cluster entirely (fast local fallback, no per-worker timeouts to
// wait out). After the cool-down the breaker's half-open probe lets one
// flush try the cluster again; success closes the breaker and restores
// cluster evaluation — the heal path.
func (ev *SessionEvaluator) EvalTiles(ctx context.Context, an *core.Analyzer, dst []tensor.Stress, pts []geom.Point, tl *core.Tiling, ids []int32, mode core.Mode) error {
	if !ev.c.poolBreaker.Allow() {
		if ev.OnFallback != nil {
			ev.OnFallback(ErrClusterOpen)
		}
		return an.EvalTiles(ctx, dst, pts, tl, ids, mode)
	}
	j := ev.jobFor(an, pts, tl, mode)
	err := ev.c.eval(ctx, j, dst, tl, ids, mode)
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrCanceled) || ctx.Err() != nil {
		return err
	}
	if ev.OnFallback != nil {
		ev.OnFallback(err)
	}
	// The cluster may have merged some tiles before failing; the local
	// pass rewrites every requested tile, so dst ends consistent.
	return an.EvalTiles(ctx, dst, pts, tl, ids, mode)
}

// jobFor returns the session job, creating it on first use and bumping
// its epoch whenever the engine rebuilt its analyzer since the last
// flush.
func (ev *SessionEvaluator) jobFor(an *core.Analyzer, pts []geom.Point, tl *core.Tiling, mode core.Mode) *job {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if ev.j == nil {
		ev.j = &job{
			id:  ev.c.newJobID("s"),
			pl:  an.Placement.Clone(),
			pts: pts,
		}
		ev.j.spec = jobSpec{
			Job:        ev.j.id,
			Epoch:      1,
			Struct:     an.Struct,
			Options:    an.Options().Resolved(),
			Mode:       mode,
			TileCutoff: tl.Cutoff(),
			NumTiles:   tl.NumTiles(),
			NumPoints:  len(pts),
		}
		ev.lastAn = an
		return ev.j
	}
	if an != ev.lastAn {
		ev.j.spec.Epoch++
		ev.j.spec.Mode = mode
		ev.j.pl = an.Placement.Clone()
		ev.lastAn = an
	}
	return ev.j
}

// Close releases the worker-side job state (best effort; eviction
// reclaims it regardless).
func (ev *SessionEvaluator) Close() {
	ev.mu.Lock()
	j := ev.j
	ev.j = nil
	ev.lastAn = nil
	ev.mu.Unlock()
	if j != nil {
		ev.c.dropJob(j.id)
	}
}
