package cluster

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/faultinject"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/resilience"
	"tsvstress/internal/tensor"
)

// CoordinatorOptions configures the coordinator side.
type CoordinatorOptions struct {
	// HeartbeatEvery is the worker heartbeat interval (default 2s;
	// negative disables the background loop — tests drive pings
	// manually).
	HeartbeatEvery time.Duration
	// PingTimeout bounds one registration/heartbeat ping (default 2s).
	PingTimeout time.Duration
	// ChunksPerWorker is the work-queue granularity: the tile set is
	// split into alive-workers × ChunksPerWorker chunks (default 4).
	// More chunks → finer rebalancing, more RPCs.
	ChunksPerWorker int
	// InFlightPerWorker bounds concurrently outstanding eval RPCs per
	// worker (default 2: one evaluating, one pipelined behind it) —
	// the bounded in-flight budget stragglers are measured against.
	InFlightPerWorker int
	// MaxSpeculation bounds how many workers may evaluate the same
	// chunk concurrently when the pending queue is empty (default 2:
	// the owner plus one thief).
	MaxSpeculation int
	// Client is the HTTP client for worker RPCs (default a dedicated
	// client with sane connection pooling). Every eval and init RPC
	// additionally carries a deadline derived from its work size via
	// Resilience.Deadline.
	Client *http.Client
	// Resilience configures retry budgets, backoff, per-worker and
	// pool-level circuit breakers and per-RPC deadline derivation
	// (zero value = production defaults; DESIGN.md §18).
	Resilience resilience.Config
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = 2 * time.Second
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 2 * time.Second
	}
	if o.ChunksPerWorker <= 0 {
		o.ChunksPerWorker = 4
	}
	if o.InFlightPerWorker <= 0 {
		o.InFlightPerWorker = 2
	}
	if o.MaxSpeculation <= 0 {
		o.MaxSpeculation = 2
	}
	o.Resilience = o.Resilience.WithDefaults()
	return o
}

// Stats is a snapshot of the coordinator's lifetime counters.
type Stats struct {
	// Maps counts completed cluster evaluations (full maps and
	// incremental tile sets).
	Maps int64
	// Chunks counts chunk evaluations merged.
	Chunks int64
	// Steals counts speculative re-executions of an in-flight chunk by
	// an idle worker.
	Steals int64
	// Requeues counts chunks returned to the queue after a worker
	// failure.
	Requeues int64
	// WorkerFailures counts worker-dead transitions observed by the
	// scheduler or the heartbeat loop.
	WorkerFailures int64
	// Attempts counts eval RPC attempts: first tries, retries and
	// speculative duplicates alike.
	Attempts int64
	// Deadlined counts eval RPC attempts that carried a derived
	// deadline. Every attempt derives one, so this equals Attempts —
	// the chaos harness asserts the equality.
	Deadlined int64
	// Retries counts budget-consuming same-worker retry attempts.
	Retries int64
	// Timeouts counts eval attempts ended by their derived deadline
	// (not by the caller's own context).
	Timeouts int64
	// BudgetTokens is the retry budget's current balance.
	BudgetTokens float64
	// BudgetExhausted counts retries denied for lack of budget tokens.
	BudgetExhausted int64
	// BreakerOpens totals breaker trips across the per-worker breakers
	// and the pool breaker.
	BreakerOpens int64
	// PoolBreaker is the pool breaker's state ("closed", "open",
	// "half-open") — the switch that decides the serving tier's
	// cluster→local fallback.
	PoolBreaker string
	// Workers is the per-worker view: live at call time or, after
	// Close, the final snapshot taken when the heartbeat loop stopped —
	// the last-known liveness tests and the bench harness read.
	Workers []WorkerStatus
}

// WorkerStatus describes one registered worker.
type WorkerStatus struct {
	Addr     string
	Alive    bool
	Cores    int
	LastErr  string
	LastSeen time.Time
	// Attempts, Retries and Timeouts count this worker's eval RPCs:
	// total attempts, budget-consuming retries, and attempts ended by
	// their derived deadline.
	Attempts int64
	Retries  int64
	Timeouts int64
	// Breaker is the worker's breaker state; BreakerOpens counts its
	// trips.
	Breaker      string
	BreakerOpens int64
}

// workerRef is the coordinator's view of one worker process.
//
// Lock order: ensureInit holds initMu across the init RPC and briefly
// takes mu inside it to read and update the inited epochs; the reverse
// nesting is forbidden.
//
//tsvlint:lockorder workerRef.initMu < workerRef.mu
type workerRef struct {
	base string // http://host:port

	mu       sync.Mutex
	alive    bool
	everSeen bool
	cores    int
	lastSeen time.Time
	lastErr  error
	// inited maps job id → the epoch this worker's copy was last
	// initialized at. Cleared on a dead→alive transition: a restarted
	// process lost its jobs.
	inited map[string]uint64

	// initMu serializes init RPCs to this worker so concurrent loop
	// goroutines do not ship the same points twice.
	initMu sync.Mutex

	// breaker gates eval RPCs and heartbeat probes to this worker;
	// attempts/retries/timeouts feed WorkerStatus and the expvar view.
	breaker  *resilience.Breaker
	attempts atomic.Int64
	retries  atomic.Int64
	timeouts atomic.Int64
}

// Coordinator shards tile evaluations across a fleet of workers. It is
// safe for concurrent use; one coordinator serves any number of
// concurrent Map calls and session evaluators.
type Coordinator struct {
	opt    CoordinatorOptions
	hc     *http.Client
	prefix string
	jobSeq atomic.Uint64

	workers []*workerRef

	stopOnce sync.Once
	stopCh   chan struct{}

	statMaps     atomic.Int64
	statChunks   atomic.Int64
	statSteals   atomic.Int64
	statRequeues atomic.Int64
	statDead     atomic.Int64

	statAttempts  atomic.Int64
	statDeadlined atomic.Int64
	statRetries   atomic.Int64
	statTimeouts  atomic.Int64

	// budget is the shared retry-token bucket; poolBreaker trips when
	// whole cluster evaluations fail and gates the serving tier's
	// cluster→local fallback (DESIGN.md §18).
	budget      *resilience.Budget
	poolBreaker *resilience.Breaker

	// finalWorkers is the per-worker snapshot taken by Close, so Stats
	// keeps answering with last-known worker state after shutdown.
	finalMu      sync.Mutex
	finalWorkers []WorkerStatus
}

// NewCoordinator builds a coordinator over the given worker addresses
// (host:port or full http:// URLs) and starts its heartbeat loop.
// Workers need not be up yet: the heartbeat registers them as they
// appear. Call Close to stop the loop.
func NewCoordinator(addrs []string, opt CoordinatorOptions) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	opt = opt.withDefaults()
	hc := opt.Client
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 2 * opt.InFlightPerWorker
		hc = &http.Client{Transport: tr}
	}
	var nonce [6]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("cluster: job nonce: %w", err)
	}
	c := &Coordinator{
		opt:         opt,
		hc:          hc,
		prefix:      hex.EncodeToString(nonce[:]),
		stopCh:      make(chan struct{}),
		budget:      resilience.NewBudget(opt.Resilience.Budget),
		poolBreaker: resilience.NewBreaker(opt.Resilience.PoolBreaker),
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		base := a
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c.workers = append(c.workers, &workerRef{
			base:    strings.TrimRight(base, "/"),
			inited:  make(map[string]uint64),
			breaker: resilience.NewBreaker(opt.Resilience.Breaker),
		})
	}
	if len(c.workers) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	current.Store(c)
	if opt.HeartbeatEvery > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// Close stops the heartbeat loop and freezes the per-worker state into
// the snapshot Stats keeps returning afterwards. In-flight evaluations
// are unaffected (their contexts govern them).
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stopCh)
		final := c.Workers()
		c.finalMu.Lock()
		c.finalWorkers = final
		c.finalMu.Unlock()
		current.CompareAndSwap(c, nil)
	})
}

// Stats returns a snapshot of the lifetime counters. After Close the
// per-worker view is the final snapshot taken at shutdown.
func (c *Coordinator) Stats() Stats {
	c.finalMu.Lock()
	workers := c.finalWorkers
	c.finalMu.Unlock()
	if workers == nil {
		workers = c.Workers()
	}
	opens := c.poolBreaker.Opens()
	for _, w := range workers {
		opens += w.BreakerOpens
	}
	return Stats{
		Maps:            c.statMaps.Load(),
		Chunks:          c.statChunks.Load(),
		Steals:          c.statSteals.Load(),
		Requeues:        c.statRequeues.Load(),
		WorkerFailures:  c.statDead.Load(),
		Attempts:        c.statAttempts.Load(),
		Deadlined:       c.statDeadlined.Load(),
		Retries:         c.statRetries.Load(),
		Timeouts:        c.statTimeouts.Load(),
		BudgetTokens:    c.budget.Tokens(),
		BudgetExhausted: c.budget.Exhausted(),
		BreakerOpens:    opens,
		PoolBreaker:     c.poolBreaker.State().String(),
		Workers:         workers,
	}
}

// Workers returns the status of every configured worker.
func (c *Coordinator) Workers() []WorkerStatus {
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		w.mu.Lock()
		st := WorkerStatus{Addr: w.base, Alive: w.alive, Cores: w.cores, LastSeen: w.lastSeen}
		if w.lastErr != nil {
			st.LastErr = w.lastErr.Error()
		}
		w.mu.Unlock()
		st.Attempts = w.attempts.Load()
		st.Retries = w.retries.Load()
		st.Timeouts = w.timeouts.Load()
		st.Breaker = w.breaker.State().String()
		st.BreakerOpens = w.breaker.Opens()
		out = append(out, st)
	}
	return out
}

// NumAlive returns the number of workers currently believed alive.
func (c *Coordinator) NumAlive() int {
	n := 0
	for _, w := range c.workers {
		w.mu.Lock()
		if w.alive {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

func (c *Coordinator) heartbeatLoop() {
	t := time.NewTicker(c.opt.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.pingAll(context.Background())
		}
	}
}

// Ping registers every reachable worker now and returns an error only
// when none answered — the fail-fast check callers run at startup.
func (c *Coordinator) Ping(ctx context.Context) error {
	c.pingAll(ctx)
	if c.NumAlive() == 0 {
		var errs []error
		for _, st := range c.Workers() {
			if st.LastErr != "" {
				errs = append(errs, fmt.Errorf("%s: %s", st.Addr, st.LastErr))
			}
		}
		return fmt.Errorf("cluster: no workers alive: %w", errors.Join(errs...))
	}
	return nil
}

func (c *Coordinator) pingAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerRef) {
			defer wg.Done()
			c.pingWorker(ctx, w)
		}(w)
	}
	wg.Wait()
}

// pingWorker performs one registration/heartbeat ping and updates the
// worker's liveness. A dead→alive transition clears the worker's
// init ledger: a restarted process lost its jobs, so every job must be
// re-shipped in full before its next eval.
func (c *Coordinator) pingWorker(ctx context.Context, w *workerRef) {
	// A tripped breaker dampens flapping: the worker sits out the
	// cool-down, then one probe ping decides whether it rejoins.
	if !w.breaker.Allow() {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, c.opt.PingTimeout)
	defer cancel()
	if err := faultinject.Fire("cluster.coord.ping"); err != nil {
		w.breaker.OnFailure()
		c.markDead(w, err)
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/cluster/ping", nil)
	if err != nil {
		w.breaker.OnFailure()
		c.markDead(w, err)
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		w.breaker.OnFailure()
		c.markDead(w, err)
		return
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	var pr pingResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		w.breaker.OnFailure()
		c.markDead(w, fmt.Errorf("ping decode: %w", err))
		return
	}
	if pr.Proto != protoVersion {
		w.breaker.OnFailure()
		c.markDead(w, fmt.Errorf("protocol mismatch: worker speaks v%d, coordinator v%d", pr.Proto, protoVersion))
		return
	}
	w.breaker.OnSuccess()
	w.mu.Lock()
	if !w.alive {
		// (Re)registration: assume any previous job state is gone.
		w.inited = make(map[string]uint64)
	}
	w.alive = true
	w.everSeen = true
	w.cores = pr.Cores
	w.lastSeen = time.Now()
	w.lastErr = nil
	w.mu.Unlock()
}

// markDead transitions a worker to dead, counting only real
// transitions.
func (c *Coordinator) markDead(w *workerRef, cause error) {
	w.mu.Lock()
	was := w.alive
	w.alive = false
	w.lastErr = cause
	w.mu.Unlock()
	if was {
		c.statDead.Add(1)
	}
}

// ---- job plumbing ----

// job is the coordinator-side description of one evaluation state.
type job struct {
	id   string
	spec jobSpec // Epoch carries the current placement version
	pl   *geom.Placement
	pts  []geom.Point
}

func (c *Coordinator) newJobID(kind string) string {
	return fmt.Sprintf("%s-%s%d", c.prefix, kind, c.jobSeq.Add(1))
}

// Map evaluates the selected field at every point across the cluster —
// the distributed twin of core.Analyzer.MapInto for a one-shot
// placement. Results are identical to the single-process path (the
// parity tests pin ≤1e-9 MPa; in practice bit-for-bit). The placement
// is cloned; pts is captured for the duration of the call.
func (c *Coordinator) Map(ctx context.Context, dst []tensor.Stress, st material.Structure, pl *geom.Placement, pts []geom.Point, mode core.Mode, opt core.Options) error {
	if len(dst) != len(pts) {
		return fmt.Errorf("cluster: dst has %d slots for %d points", len(dst), len(pts))
	}
	if len(pts) == 0 {
		return nil
	}
	opt = opt.Resolved()
	cutoff := opt.GatherCutoff(mode)
	tl, err := core.NewTiling(pts, cutoff)
	if err != nil {
		return err
	}
	if err := pl.Validate(2 * st.RPrime); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	j := &job{
		id:  c.newJobID("m"),
		pl:  pl.Clone(),
		pts: pts,
	}
	j.spec = jobSpec{
		Job:        j.id,
		Epoch:      1,
		Struct:     st,
		Options:    opt,
		Mode:       mode,
		TileCutoff: cutoff,
		NumTiles:   tl.NumTiles(),
		NumPoints:  len(pts),
	}
	defer c.dropJob(j.id)
	return c.eval(ctx, j, dst, tl, tl.Partition(1)[0], mode)
}

// dropJob best-effort deletes a finished job from every worker that
// holds it, freeing worker memory early (eviction would reclaim it
// eventually).
func (c *Coordinator) dropJob(id string) {
	for _, w := range c.workers {
		w.mu.Lock()
		_, has := w.inited[id]
		delete(w.inited, id)
		alive := w.alive
		w.mu.Unlock()
		if !has || !alive {
			continue
		}
		go func(base string) {
			ctx, cancel := context.WithTimeout(context.Background(), c.opt.PingTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/cluster/jobs/"+id, nil)
			if err != nil {
				return
			}
			if resp, err := c.hc.Do(req); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}(w.base)
	}
}

// ---- the chunk scheduler ----

// sched is the shared work queue of one eval: chunks move pending →
// in-flight → done, with failed chunks requeued and stragglers'
// chunks speculatively duplicated. All transitions happen under mu;
// merging into dst happens under mu too, so duplicate completions can
// never race on the destination.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	chunks   [][]int32
	running  []int // concurrent executors per chunk
	done     []bool
	pending  []int // chunk indices with running == 0 && !done
	nDone    int
	tileDone int
	canceled bool
	maxSpec  int
	// doneCh closes when every chunk has merged, so the evaluation can
	// abort straggler duplicates still in flight.
	doneCh chan struct{}
}

func newSched(chunks [][]int32, maxSpec int) *sched {
	s := &sched{
		chunks:  chunks,
		running: make([]int, len(chunks)),
		done:    make([]bool, len(chunks)),
		pending: make([]int, 0, len(chunks)),
		maxSpec: maxSpec,
		doneCh:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := len(chunks) - 1; i >= 0; i-- {
		s.pending = append(s.pending, i)
	}
	return s
}

// next blocks until a chunk is available (pending, or in-flight and
// worth duplicating), all work is done, or the run is canceled. The
// second return reports whether the caller got work; stolen reports
// whether the chunk is a speculative duplicate of an in-flight one.
func (s *sched) next() (chunk int, ok, stolen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.canceled || s.nDone == len(s.chunks) {
			return 0, false, false
		}
		if n := len(s.pending); n > 0 {
			chunk = s.pending[n-1]
			s.pending = s.pending[:n-1]
			s.running[chunk]++
			return chunk, true, false
		}
		// Queue drained: speculate on the least-duplicated in-flight
		// chunk — the straggler hedge.
		best := -1
		for i := range s.chunks {
			if s.done[i] || s.running[i] == 0 || s.running[i] >= s.maxSpec {
				continue
			}
			if best == -1 || s.running[i] < s.running[best] {
				best = i
			}
		}
		if best >= 0 {
			s.running[best]++
			return best, true, true
		}
		s.cond.Wait()
	}
}

// finish reports a completed execution of chunk. The first completion
// merges (inside the lock — duplicates must not race the scatter) and
// marks the chunk done; later duplicates are dropped. merge runs only
// for the winner.
func (s *sched) finish(chunk int, merge func() error) (first bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running[chunk]--
	if s.done[chunk] {
		s.cond.Broadcast()
		return false, nil
	}
	if err := merge(); err != nil {
		// A merge failure (malformed worker payload) is an execution
		// failure: requeue unless another executor still runs it.
		if s.running[chunk] == 0 {
			s.pending = append(s.pending, chunk)
		}
		s.cond.Broadcast()
		return false, err
	}
	s.done[chunk] = true
	s.nDone++
	s.tileDone += len(s.chunks[chunk])
	if s.nDone == len(s.chunks) {
		close(s.doneCh)
	}
	s.cond.Broadcast()
	return true, nil
}

// fail reports a failed execution: the chunk returns to the queue
// unless a duplicate still runs it or it already completed.
func (s *sched) fail(chunk int) (requeued bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running[chunk]--
	if !s.done[chunk] && s.running[chunk] == 0 {
		s.pending = append(s.pending, chunk)
		requeued = true
	}
	s.cond.Broadcast()
	return requeued
}

func (s *sched) cancel() {
	s.mu.Lock()
	s.canceled = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *sched) progress() (chunksDone, tilesDone int, complete bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nDone, s.tileDone, s.nDone == len(s.chunks)
}

// eval shards ids across the alive workers and merges tile results
// into dst. It returns nil only when every chunk merged; a canceled
// context yields a *core.CancelError (matching core.ErrCanceled) with
// tile-level progress, and a cluster-wide failure (every worker dead)
// reports the per-worker causes.
func (c *Coordinator) eval(ctx context.Context, j *job, dst []tensor.Stress, tl *core.Tiling, ids []int32, mode core.Mode) error {
	if len(ids) == 0 {
		return nil
	}
	live := c.liveWorkers(ctx)
	if len(live) == 0 {
		c.poolBreaker.OnFailure()
		return fmt.Errorf("cluster: no workers alive for job %s", j.id)
	}
	chunks := chunkIDs(ids, len(live)*c.opt.ChunksPerWorker)
	s := newSched(chunks, c.opt.MaxSpeculation)

	evalCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watcherDone := make(chan struct{})
	go func() {
		// Wake sched waiters on cancellation, and abort straggler
		// duplicate RPCs the moment every chunk has merged.
		defer close(watcherDone)
		select {
		case <-evalCtx.Done():
			s.cancel()
		case <-s.doneCh:
			cancel()
		}
	}()

	var wg sync.WaitGroup
	errsMu := sync.Mutex{}
	var workerErrs []error
	for _, w := range live {
		for slot := 0; slot < c.opt.InFlightPerWorker; slot++ {
			wg.Add(1)
			go func(w *workerRef) {
				defer wg.Done()
				if err := c.workerLoop(evalCtx, w, j, s, tl, dst, mode); err != nil {
					errsMu.Lock()
					workerErrs = append(workerErrs, fmt.Errorf("%s: %w", w.base, err))
					errsMu.Unlock()
				}
			}(w)
		}
	}
	wg.Wait()
	cancel()
	<-watcherDone

	_, tilesDone, complete := s.progress()
	if complete {
		c.statMaps.Add(1)
		c.poolBreaker.OnSuccess()
		return nil
	}
	if ctx.Err() != nil {
		// A caller-canceled run says nothing about cluster health.
		return &core.CancelError{TilesDone: tilesDone, TilesTotal: len(ids), Cause: ctx.Err()}
	}
	c.poolBreaker.OnFailure()
	errsMu.Lock()
	joined := errors.Join(workerErrs...)
	errsMu.Unlock()
	return fmt.Errorf("cluster: job %s incomplete (%d of %d tiles merged): %w", j.id, tilesDone, len(ids), joined)
}

// liveWorkers snapshots the alive workers, running one synchronous
// registration round first if no worker has ever been seen (covers
// coordinators used immediately after construction).
func (c *Coordinator) liveWorkers(ctx context.Context) []*workerRef {
	anySeen := false
	for _, w := range c.workers {
		w.mu.Lock()
		if w.everSeen {
			anySeen = true
		}
		w.mu.Unlock()
	}
	if !anySeen {
		c.pingAll(ctx)
	}
	live := c.aliveUntripped()
	if live == nil {
		// Nobody alive by heartbeat state: try once more synchronously —
		// the fleet may have just come up.
		c.pingAll(ctx)
		live = c.aliveUntripped()
	}
	return live
}

// aliveUntripped selects the workers that are alive and whose breakers
// are not cooling down. Tripped() is the non-mutating check: scheduler
// filtering must not consume the breaker's half-open probe slots, which
// are reserved for heartbeat pings.
func (c *Coordinator) aliveUntripped() []*workerRef {
	var live []*workerRef
	for _, w := range c.workers {
		w.mu.Lock()
		ok := w.alive
		w.mu.Unlock()
		if ok && !w.breaker.Tripped() {
			live = append(live, w)
		}
	}
	return live
}

// workerLoop drains the scheduler against one worker until the work is
// done, the run is canceled, or the worker fails. A worker failure
// requeues the in-flight chunk and ends the loop; the error describes
// the failure (nil when the loop ends because the work is done).
func (c *Coordinator) workerLoop(ctx context.Context, w *workerRef, j *job, s *sched, tl *core.Tiling, dst []tensor.Stress, mode core.Mode) error {
	// One decode scratch per loop: each chunk's records are merged into
	// dst before the next chunk overwrites the buffers, so the loop's
	// steady state performs no per-chunk allocation.
	sc := &evalScratch{}
	for {
		chunk, ok, stolen := s.next()
		if !ok {
			return nil
		}
		if stolen {
			c.statSteals.Add(1)
		}
		records, failed, err := c.evalChunk(ctx, w, j, s.chunks[chunk], mode, sc)
		if err != nil {
			if s.fail(chunk) {
				c.statRequeues.Add(1)
			}
			// A worker that genuinely failed is marked dead even when the
			// run's context has since been canceled — completion cancels
			// stragglers, and a steal finishing the map must not erase the
			// observation that this worker died under it. A cancellation
			// with no observed failure says nothing about the worker.
			if failed {
				c.markDead(w, err)
			}
			if ctx.Err() != nil {
				return nil // canceled: the map outcome, not this loop, decides
			}
			return err
		}
		first, mergeErr := s.finish(chunk, func() error {
			for _, rec := range records {
				if err := tl.ScatterTileResult(rec.id, rec.vals, dst); err != nil {
					return err
				}
			}
			return nil
		})
		if mergeErr != nil {
			c.markDead(w, mergeErr)
			return mergeErr
		}
		if first {
			c.statChunks.Add(1)
		}
	}
}

// evalScratch is one worker loop's reusable decode state: the frame
// payload buffer, the decoded-values slab every record's vals alias,
// and the record list itself. A chunk's records must be consumed before
// the next evalRPC reuses the buffers.
type evalScratch struct {
	frame   []byte
	slab    []tensor.Stress
	records []tileRecord
}

// realiasRecords repairs records' vals slices after the decode slab
// reallocated: every record's values occupy a contiguous prefix-ordered
// span of the slab (they were appended in decode order), so the aliases
// rebuild from the lengths alone.
func realiasRecords(records []tileRecord, slab []tensor.Stress) {
	base := 0
	for i := range records {
		n := len(records[i].vals)
		records[i].vals = slab[base : base+n]
		base += n
	}
}

// evalChunk evaluates ids on w under the resilience policy: up to
// MaxAttempts tries, each retry paid for from the shared token budget
// and spaced by deterministic backoff, cut short when the worker's
// breaker trips mid-sequence. The returned records alias sc's buffers.
// failed reports whether any attempt failed while the run was still
// live (as opposed to exits caused purely by ctx cancellation), so the
// caller can tell a dead worker from a canceled straggler.
func (c *Coordinator) evalChunk(ctx context.Context, w *workerRef, j *job, ids []int32, mode core.Mode, sc *evalScratch) (records []tileRecord, failed bool, err error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		records, err := c.evalChunkAttempt(ctx, w, j, ids, mode, sc)
		if err == nil {
			w.breaker.OnSuccess()
			c.budget.OnSuccess()
			return records, failed, nil
		}
		if ctx.Err() != nil {
			return nil, failed, err
		}
		failed = true
		w.breaker.OnFailure()
		lastErr = err
		if attempt >= c.opt.Resilience.MaxAttempts {
			return nil, failed, lastErr
		}
		if w.breaker.Tripped() {
			return nil, failed, fmt.Errorf("worker breaker open: %w", lastErr)
		}
		if !c.budget.TryRetry() {
			return nil, failed, fmt.Errorf("retry budget exhausted: %w", lastErr)
		}
		c.statRetries.Add(1)
		w.retries.Add(1)
		if err := sleepCtx(ctx, c.opt.Resilience.Backoff.Next(attempt)); err != nil {
			return nil, failed, err
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// evalChunkAttempt is one try: it transparently (re)initializes the
// worker's copy of the job when the worker does not know it or holds an
// older epoch.
func (c *Coordinator) evalChunkAttempt(ctx context.Context, w *workerRef, j *job, ids []int32, mode core.Mode, sc *evalScratch) ([]tileRecord, error) {
	if err := c.ensureInit(ctx, w, j); err != nil {
		return nil, err
	}
	records, retryable, err := c.evalRPC(ctx, w, j, ids, mode, sc)
	if err != nil && retryable && ctx.Err() == nil {
		// 404/409: the worker lost or outdated the job between our
		// ledger check and the eval (eviction, restart, stale epoch).
		// Re-ship and retry once.
		w.mu.Lock()
		delete(w.inited, j.id)
		w.mu.Unlock()
		if err := c.ensureInit(ctx, w, j); err != nil {
			return nil, err
		}
		records, _, err = c.evalRPC(ctx, w, j, ids, mode, sc)
	}
	return records, err
}

// ensureInit ships the job to w unless the coordinator's ledger says
// the worker already holds the current epoch. Inits to one worker are
// serialized so two loop goroutines never ship the point set twice.
func (c *Coordinator) ensureInit(ctx context.Context, w *workerRef, j *job) error {
	w.mu.Lock()
	epoch, has := w.inited[j.id]
	w.mu.Unlock()
	if has && epoch == j.spec.Epoch {
		return nil
	}
	w.initMu.Lock()
	defer w.initMu.Unlock()
	w.mu.Lock()
	epoch, has = w.inited[j.id]
	w.mu.Unlock()
	if has && epoch == j.spec.Epoch {
		return nil
	}
	full := !has
	if err := c.initRPC(ctx, w, j, full); err != nil {
		if !full && isRetryableStatus(err) && ctx.Err() == nil {
			// Re-init refused (worker lost the job): ship in full.
			err = c.initRPC(ctx, w, j, true)
		}
		if err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.inited[j.id] = j.spec.Epoch
	w.mu.Unlock()
	return nil
}

// statusError is an HTTP-level worker failure.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return fmt.Sprintf("worker answered %d: %s", e.code, e.msg) }

func isRetryableStatus(err error) bool {
	var se *statusError
	return errors.As(err, &se) && (se.code == http.StatusNotFound || se.code == http.StatusConflict)
}

// initRPC performs one init POST: spec + placement, plus the point set
// on a full init.
func (c *Coordinator) initRPC(ctx context.Context, w *workerRef, j *job, full bool) error {
	// Init cost scales with the shipped payload: point blocks on a full
	// init, placement size on a re-init.
	units := j.pl.Len() / 128
	if full {
		units = j.spec.NumPoints / 128
	}
	ctx, cancel := context.WithTimeout(ctx, c.opt.Resilience.Deadline.For(units))
	defer cancel()
	if err := faultinject.Fire("cluster.coord.init"); err != nil {
		return err
	}
	specBytes, err := json.Marshal(j.spec)
	if err != nil {
		return err
	}
	body := appendFrame(nil, frameInit, specBytes)
	body = appendFrame(body, framePlacement, appendPointsPayload(nil, j.pl.Centers()))
	if full {
		body = appendFrame(body, framePoints, appendPointsPayload(nil, j.pts))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/cluster/jobs/"+j.id, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, msg: readWorkerError(resp.Body)}
	}
	var ack initAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("init ack: %w", err)
	}
	if ack.NumTiles != j.spec.NumTiles || ack.NumPoints != j.spec.NumPoints {
		return fmt.Errorf("init ack disagrees: worker built %d tiles/%d points, want %d/%d",
			ack.NumTiles, ack.NumPoints, j.spec.NumTiles, j.spec.NumPoints)
	}
	return nil
}

// evalRPC performs one eval POST and decodes the result stream: one
// frameResultBatch per chunk (or v1-style individual frameResults),
// closed by frameDone. retryable reports a 404/409 (job missing or
// stale on the worker). The returned records alias sc's reusable
// buffers and are valid until its next use.
func (c *Coordinator) evalRPC(ctx context.Context, w *workerRef, j *job, ids []int32, mode core.Mode, sc *evalScratch) (records []tileRecord, retryable bool, err error) {
	// Every attempt carries a deadline derived from its tile count, so a
	// hung worker cannot stall the chunk past its work-sized budget.
	parent := ctx
	ctx, cancel := context.WithTimeout(ctx, c.opt.Resilience.Deadline.For(len(ids)))
	defer cancel()
	c.statAttempts.Add(1)
	w.attempts.Add(1)
	c.statDeadlined.Add(1)
	// Registered after cancel so it runs before it: an error whose
	// deadline expired while the caller's own context is still live is a
	// derived-deadline timeout, not a cancellation.
	defer func() {
		if err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) && parent.Err() == nil {
			c.statTimeouts.Add(1)
			w.timeouts.Add(1)
		}
	}()
	if err := faultinject.Fire("cluster.coord.eval"); err != nil {
		return nil, false, err
	}
	body := appendFrame(nil, frameAssign, appendAssignPayload(nil, assignment{Epoch: j.spec.Epoch, Mode: mode, IDs: ids}))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/cluster/jobs/"+j.id+"/eval", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		se := &statusError{code: resp.StatusCode, msg: readWorkerError(resp.Body)}
		return nil, isRetryableStatus(se), se
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	records = sc.records[:0]
	slab := sc.slab[:0]
	for {
		var typ byte
		var payload []byte
		typ, payload, sc.frame, err = readFrameInto(br, sc.frame)
		if err != nil {
			return nil, false, fmt.Errorf("result stream: %w", err)
		}
		switch typ {
		case frameResultBatch:
			oldCap := cap(slab)
			records, slab, err = decodeResultBatch(payload, records, slab)
			if err != nil {
				return nil, false, err
			}
			if cap(slab) != oldCap {
				realiasRecords(records, slab)
			}
		case frameResult:
			id, slabOut, rest, err := core.ReadTileResultAppend(payload, slab)
			if err != nil {
				return nil, false, err
			}
			if len(rest) != 0 {
				return nil, false, fmt.Errorf("result frame for tile %d carries %d trailing bytes", id, len(rest))
			}
			records = append(records, tileRecord{id: id, vals: slabOut[len(slab):]})
			if cap(slabOut) != cap(slab) {
				realiasRecords(records, slabOut)
			}
			slab = slabOut
		case frameDone:
			if len(records) != len(ids) {
				return nil, false, fmt.Errorf("worker returned %d of %d tiles", len(records), len(ids))
			}
			sc.records, sc.slab = records, slab
			return records, false, nil
		case frameError:
			return nil, false, fmt.Errorf("worker eval failed: %s", payload)
		default:
			return nil, false, fmt.Errorf("unexpected frame type %d in result stream", typ)
		}
	}
}

// readWorkerError extracts the JSON error body a worker handler wrote.
func readWorkerError(r io.Reader) string {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(r, 1<<14))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}

// chunkIDs splits ids into up to n contiguous, balanced, non-empty
// chunks (the scheduler's work unit) via the deterministic partition
// function.
func chunkIDs(ids []int32, n int) [][]int32 {
	parts := core.PartitionTiles(len(ids), n)
	chunks := make([][]int32, 0, len(parts))
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		chunk := make([]int32, len(p))
		for i, pos := range p {
			chunk[i] = ids[pos]
		}
		chunks = append(chunks, chunk)
	}
	return chunks
}
