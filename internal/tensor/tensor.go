// Package tensor provides 2D symmetric stress tensors with the
// coordinate transforms, reliability metrics (von Mises, principal /
// maximum tensile stress) and invariants used by the TSV stress models.
//
// The device layer is analyzed under the plane-stress assumption
// (Section 3.2 of the paper), so the out-of-plane components σzz, σxz,
// σyz are zero and a 2×2 symmetric tensor suffices. Components are in
// MPa.
package tensor

import (
	"fmt"
	"math"
)

// Stress is a symmetric 2D (plane-stress) stress tensor in Cartesian
// coordinates.
type Stress struct {
	XX, YY, XY float64
}

// Polar is a symmetric 2D stress tensor in cylindrical (polar)
// coordinates attached to some origin: σrr, σθθ, σrθ.
type Polar struct {
	RR, TT, RT float64
}

// Add returns s + t componentwise in MPa (linear superposition of
// stress fields).
func (s Stress) Add(t Stress) Stress {
	return Stress{s.XX + t.XX, s.YY + t.YY, s.XY + t.XY}
}

// Sub returns s − t componentwise in MPa.
func (s Stress) Sub(t Stress) Stress {
	return Stress{s.XX - t.XX, s.YY - t.YY, s.XY - t.XY}
}

// Scale returns s scaled by the dimensionless factor a, in MPa.
func (s Stress) Scale(a float64) Stress {
	return Stress{a * s.XX, a * s.YY, a * s.XY}
}

// Add returns p + q componentwise in MPa. Both must be expressed in the
// same polar frame for the sum to be meaningful.
func (p Polar) Add(q Polar) Polar {
	return Polar{p.RR + q.RR, p.TT + q.TT, p.RT + q.RT}
}

// Scale returns p scaled by the dimensionless factor a, in MPa.
func (p Polar) Scale(a float64) Polar {
	return Polar{a * p.RR, a * p.TT, a * p.RT}
}

// ToCartesian rotates the polar tensor into Cartesian components (MPa)
// given the angle θ in radians between the x-axis and the local r-axis,
// implementing
// Eq. (2) of the paper: σxyz = Q σrθz Qᵀ with Q the rotation by θ.
func (p Polar) ToCartesian(theta float64) Stress {
	c, s := math.Cos(theta), math.Sin(theta)
	c2, s2, cs := c*c, s*s, c*s
	return Stress{
		XX: p.RR*c2 - 2*p.RT*cs + p.TT*s2,
		YY: p.RR*s2 + 2*p.RT*cs + p.TT*c2,
		XY: (p.RR-p.TT)*cs + p.RT*(c2-s2),
	}
}

// ToPolar rotates the Cartesian tensor into the polar frame (MPa) whose
// r-axis makes angle θ radians with the x-axis (the inverse of
// Polar.ToCartesian).
func (s Stress) ToPolar(theta float64) Polar {
	c, sn := math.Cos(theta), math.Sin(theta)
	c2, s2, cs := c*c, sn*sn, c*sn
	return Polar{
		RR: s.XX*c2 + 2*s.XY*cs + s.YY*s2,
		TT: s.XX*s2 - 2*s.XY*cs + s.YY*c2,
		RT: (s.YY-s.XX)*cs + s.XY*(c2-s2),
	}
}

// Rotate returns the tensor, in MPa, expressed in axes rotated by θ
// radians counter-clockwise relative to the current ones.
func (s Stress) Rotate(theta float64) Stress {
	p := s.ToPolar(theta)
	return Stress{XX: p.RR, YY: p.TT, XY: p.RT}
}

// Trace returns σxx + σyy in MPa, the first invariant (σzz = 0 in plane
// stress).
func (s Stress) Trace() float64 { return s.XX + s.YY }

// VonMises returns the von Mises equivalent stress in MPa under plane
// stress (σzz = σxz = σyz = 0), the reliability metric of Appendix A.2:
//
//	σv = sqrt(σxx² − σxx σyy + σyy² + 3 σxy²)
func (s Stress) VonMises() float64 {
	v := s.XX*s.XX - s.XX*s.YY + s.YY*s.YY + 3*s.XY*s.XY
	if v < 0 { // round-off guard; the quadratic form is PSD
		v = 0
	}
	return math.Sqrt(v)
}

// VonMisesWithZZ returns the von Mises stress in MPa of the full tensor
// [σxx σxy 0; σxy σyy 0; 0 0 σzz] — used for plane-strain fields, where
// σzz = ν(σxx + σyy) for the (eigenstrain-free) substrate instead of
// the plane-stress zero.
func (s Stress) VonMisesWithZZ(szz float64) float64 {
	d1 := s.XX - s.YY
	d2 := s.YY - szz
	d3 := szz - s.XX
	v := (d1*d1+d2*d2+d3*d3)/2 + 3*s.XY*s.XY
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Principal returns the in-plane principal stresses in MPa, with
// σ1 ≥ σ2.
func (s Stress) Principal() (s1, s2 float64) {
	m := (s.XX + s.YY) / 2
	r := math.Hypot((s.XX-s.YY)/2, s.XY)
	return m + r, m - r
}

// PrincipalAngle returns the angle of the σ1 principal direction with
// the x-axis, in radians in (−π/2, π/2].
func (s Stress) PrincipalAngle() float64 {
	if s.XY == 0 && s.XX-s.YY == 0 {
		return 0
	}
	return 0.5 * math.Atan2(2*s.XY, s.XX-s.YY)
}

// MaxTensile returns the maximum tensile stress in MPa, i.e. the
// largest eigenvalue of the 3D stress tensor clamped at zero (σzz = 0
// is itself an eigenvalue in plane stress). Used as an alternative reliability
// metric in the paper's conclusion.
func (s Stress) MaxTensile() float64 {
	s1, _ := s.Principal()
	return math.Max(s1, 0)
}

// Component extracts a named component in MPa; recognized names are
// "xx", "yy", "xy", "vm" (von Mises), "s1" (max principal) and "trace".
func (s Stress) Component(name string) (float64, error) {
	switch name {
	case "xx":
		return s.XX, nil
	case "yy":
		return s.YY, nil
	case "xy":
		return s.XY, nil
	case "vm":
		return s.VonMises(), nil
	case "s1":
		s1, _ := s.Principal()
		return s1, nil
	case "trace":
		return s.Trace(), nil
	}
	return 0, fmt.Errorf("tensor: unknown stress component %q", name)
}

// String implements fmt.Stringer.
func (s Stress) String() string {
	return fmt.Sprintf("[σxx=%.4g σyy=%.4g σxy=%.4g]", s.XX, s.YY, s.XY)
}
