package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"tsvstress/internal/floats"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func randStress(rng *rand.Rand) Stress {
	return Stress{
		XX: rng.NormFloat64() * 100,
		YY: rng.NormFloat64() * 100,
		XY: rng.NormFloat64() * 100,
	}
}

func TestArithmetic(t *testing.T) {
	a := Stress{1, 2, 3}
	b := Stress{10, 20, 30}
	if got := a.Add(b); got != (Stress{11, 22, 33}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Stress{9, 18, 27}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(-2); got != (Stress{-2, -4, -6}) {
		t.Errorf("Scale = %v", got)
	}
	p := Polar{1, 2, 3}
	if got := p.Add(Polar{1, 1, 1}); got != (Polar{2, 3, 4}) {
		t.Errorf("Polar.Add = %v", got)
	}
	if got := p.Scale(2); got != (Polar{2, 4, 6}) {
		t.Errorf("Polar.Scale = %v", got)
	}
}

func TestPolarCartesianRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		s := randStress(rng)
		theta := rng.Float64()*4*math.Pi - 2*math.Pi
		back := s.ToPolar(theta).ToCartesian(theta)
		if !eq(back.XX, s.XX, 1e-9) || !eq(back.YY, s.YY, 1e-9) || !eq(back.XY, s.XY, 1e-9) {
			t.Fatalf("round trip failed: %v -> %v (θ=%v)", s, back, theta)
		}
	}
}

func TestTransformAtZeroAngle(t *testing.T) {
	p := Polar{RR: 5, TT: -3, RT: 2}
	s := p.ToCartesian(0)
	if !eq(s.XX, 5, 1e-12) || !eq(s.YY, -3, 1e-12) || !eq(s.XY, 2, 1e-12) {
		t.Errorf("θ=0 should be identity: %v", s)
	}
	// θ = π/2: r-axis along y, so σrr maps to σyy.
	s = p.ToCartesian(math.Pi / 2)
	if !eq(s.YY, 5, 1e-12) || !eq(s.XX, -3, 1e-12) || !eq(s.XY, -2, 1e-12) {
		t.Errorf("θ=π/2 transform wrong: %v", s)
	}
}

func TestLameFieldTransform(t *testing.T) {
	// The single-TSV field σrr = K/r², σθθ = −K/r² at a point on the
	// x-axis has σxx = K/r², σyy = −K/r²; on the y-axis they swap.
	K := 300.0
	p := Polar{RR: K / 4, TT: -K / 4}
	onX := p.ToCartesian(0)
	if !eq(onX.XX, K/4, 1e-12) || !eq(onX.YY, -K/4, 1e-12) {
		t.Errorf("on x-axis: %v", onX)
	}
	onY := p.ToCartesian(math.Pi / 2)
	if !eq(onY.XX, -K/4, 1e-12) || !eq(onY.YY, K/4, 1e-12) {
		t.Errorf("on y-axis: %v", onY)
	}
	// At 45°, the normal components vanish and the field is pure shear
	// σxy = (σrr − σθθ)/2 = K/r².
	on45 := p.ToCartesian(math.Pi / 4)
	if !eq(on45.XX, 0, 1e-10) || !eq(on45.YY, 0, 1e-10) || !eq(on45.XY, K/4, 1e-10) {
		t.Errorf("on 45°: %v", on45)
	}
}

func TestInvariantsUnderRotationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		s := randStress(rng)
		theta := rng.Float64() * 2 * math.Pi
		r := s.Rotate(theta)
		if !eq(r.Trace(), s.Trace(), 1e-8) {
			t.Fatalf("trace not invariant: %v vs %v", r.Trace(), s.Trace())
		}
		if !eq(r.VonMises(), s.VonMises(), 1e-8) {
			t.Fatalf("von Mises not invariant: %v vs %v", r.VonMises(), s.VonMises())
		}
		s1a, s2a := s.Principal()
		s1b, s2b := r.Principal()
		if !eq(s1a, s1b, 1e-8) || !eq(s2a, s2b, 1e-8) {
			t.Fatalf("principal stresses not invariant")
		}
	}
}

func TestVonMisesKnownValues(t *testing.T) {
	cases := []struct {
		s    Stress
		want float64
	}{
		{Stress{100, 0, 0}, 100},                   // uniaxial
		{Stress{0, 0, 100}, 100 * math.Sqrt(3)},    // pure shear
		{Stress{100, 100, 0}, 100},                 // equibiaxial
		{Stress{100, -100, 0}, 100 * math.Sqrt(3)}, // pure shear in principal axes
		{Stress{}, 0},
	}
	for _, c := range cases {
		if got := c.s.VonMises(); !eq(got, c.want, 1e-9) {
			t.Errorf("VonMises(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPrincipal(t *testing.T) {
	s := Stress{XX: 50, YY: -30, XY: 0}
	s1, s2 := s.Principal()
	if !eq(s1, 50, 1e-12) || !eq(s2, -30, 1e-12) {
		t.Errorf("Principal = %v, %v", s1, s2)
	}
	// Pure shear τ: principal = ±τ at 45°.
	s = Stress{XY: 40}
	s1, s2 = s.Principal()
	if !eq(s1, 40, 1e-12) || !eq(s2, -40, 1e-12) {
		t.Errorf("Principal = %v, %v", s1, s2)
	}
	if ang := s.PrincipalAngle(); !eq(ang, math.Pi/4, 1e-12) {
		t.Errorf("PrincipalAngle = %v", ang)
	}
	if ang := (Stress{XX: 1, YY: 1}).PrincipalAngle(); ang != 0 {
		t.Errorf("isotropic PrincipalAngle = %v", ang)
	}
}

func TestPrincipalOrderingProperty(t *testing.T) {
	clamp := func(v float64) float64 {
		if !(math.Abs(v) < 1e6) { // also remaps NaN/Inf from quick
			return math.Mod(v, 1e6)
		}
		return v
	}
	f := func(xx, yy, xy float64) bool {
		s := Stress{clamp(xx), clamp(yy), clamp(xy)}
		s1, s2 := s.Principal()
		// σ1 ≥ σ2, trace preserved, and they diagonalize the tensor:
		// det(σ) = σ1 σ2.
		det := s.XX*s.YY - s.XY*s.XY
		scale := math.Max(1, math.Abs(s1)+math.Abs(s2))
		return s1 >= s2-1e-9 &&
			eq(s1+s2, s.Trace(), 1e-6*scale) &&
			eq(s1*s2, det, 1e-6*scale*scale)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMaxTensile(t *testing.T) {
	if got := (Stress{XX: -10, YY: -50}).MaxTensile(); got != 0 {
		t.Errorf("fully compressive MaxTensile = %v, want 0", got)
	}
	if got := (Stress{XX: 30, YY: -50}).MaxTensile(); !eq(got, 30, 1e-12) {
		t.Errorf("MaxTensile = %v", got)
	}
}

func TestComponent(t *testing.T) {
	s := Stress{XX: 1, YY: 2, XY: 3}
	for name, want := range map[string]float64{
		"xx": 1, "yy": 2, "xy": 3, "trace": 3,
	} {
		got, err := s.Component(name)
		if err != nil || !eq(got, want, 1e-12) {
			t.Errorf("Component(%q) = %v, %v", name, got, err)
		}
	}
	if got, err := s.Component("vm"); err != nil || !eq(got, s.VonMises(), 1e-12) {
		t.Errorf("Component(vm) = %v, %v", got, err)
	}
	if got, err := s.Component("s1"); err != nil {
		t.Errorf("Component(s1) error: %v", err)
	} else if s1, _ := s.Principal(); !eq(got, s1, 1e-12) {
		t.Errorf("Component(s1) = %v", got)
	}
	if _, err := s.Component("bogus"); err == nil {
		t.Error("unknown component should error")
	}
}

func TestAdditivityProperty(t *testing.T) {
	// Linear superposition: transforms are linear maps.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		a, b := randStress(rng), randStress(rng)
		theta := rng.Float64() * 2 * math.Pi
		lhs := a.Add(b).ToPolar(theta)
		rhs := a.ToPolar(theta).Add(b.ToPolar(theta))
		if !eq(lhs.RR, rhs.RR, 1e-8) || !eq(lhs.TT, rhs.TT, 1e-8) || !eq(lhs.RT, rhs.RT, 1e-8) {
			t.Fatal("ToPolar is not linear")
		}
	}
}

func TestVonMisesWithZZ(t *testing.T) {
	s := Stress{XX: 100, YY: 40, XY: 10}
	// σzz = 0 must reduce to the plane-stress formula.
	if !eq(s.VonMisesWithZZ(0), s.VonMises(), 1e-12) {
		t.Error("σzz=0 should match plane-stress von Mises")
	}
	// Hydrostatic 3D state has zero von Mises.
	h := Stress{XX: 70, YY: 70}
	if got := h.VonMisesWithZZ(70); got > 1e-12 {
		t.Errorf("hydrostatic von Mises = %v", got)
	}
	// Plane-strain trace-free substrate field (σyy = −σxx): σzz = 0 by
	// ν(σxx+σyy) = 0, so plane strain and plane stress agree there.
	d := Stress{XX: 50, YY: -50, XY: 5}
	if !eq(d.VonMisesWithZZ(0.28*(d.XX+d.YY)), d.VonMises(), 1e-12) {
		t.Error("trace-free field should be mode independent")
	}
	// Adding a tensile σzz to a uniaxial σxx lowers the deviator.
	u := Stress{XX: 100}
	if u.VonMisesWithZZ(50) >= u.VonMises() {
		t.Error("σzz between 0 and σxx should reduce von Mises")
	}
}
