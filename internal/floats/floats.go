// Package floats centralizes the floating-point comparison and
// finiteness discipline of the framework. Direct == / != on computed
// float64 values is forbidden repo-wide (enforced by the floatcmp
// analyzer in internal/analysis); code compares through the epsilon
// helpers here instead, so every tolerance is named, auditable and
// consistent with the parity bounds the engine is pinned to.
package floats

import "math"

// EpsMPa is the default stress-agreement tolerance in MPa: the bound
// the tile-batched engine's parity with the pointwise evaluators is
// pinned to (DESIGN.md §8).
const EpsMPa = 1e-9

// AlmostEqual reports whether a and b agree within the absolute
// tolerance tol. It is false when either value is NaN, and true when
// both are the same infinity (their difference is meaningless but the
// values agree exactly). tol is in the units of a and b.
func AlmostEqual(a, b, tol float64) bool {
	if a == b { // exact agreement, including matching infinities
		return true
	}
	return math.Abs(a-b) <= tol
}

// AlmostEqualRel reports whether a and b agree within tol relative to
// the larger magnitude, falling back to absolute comparison below
// magnitude 1 so the test does not collapse near zero. tol is
// dimensionless.
func AlmostEqualRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

// WithinMPa reports whether two stresses in MPa agree within the
// engine parity bound EpsMPa.
func WithinMPa(a, b float64) bool { return AlmostEqual(a, b, EpsMPa) }

// IsFinite reports whether v is neither NaN nor ±Inf.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// AllFinite reports whether every value is finite (vacuously true for
// an empty argument list).
func AllFinite(vs ...float64) bool {
	for _, v := range vs {
		if !IsFinite(v) {
			return false
		}
	}
	return true
}
