package floats

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{-5, -5.0000000001, 1e-9, true},
		{0, 1e-10, 1e-9, true},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 0, 1e-9, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestAlmostEqualRel(t *testing.T) {
	if !AlmostEqualRel(1e6, 1e6*(1+1e-12), 1e-9) {
		t.Error("relative comparison should absorb magnitude")
	}
	if AlmostEqualRel(1e6, 1e6*(1+1e-6), 1e-9) {
		t.Error("relative comparison should reject large relative error")
	}
	if !AlmostEqualRel(0, 1e-12, 1e-9) {
		t.Error("near zero the comparison must fall back to absolute")
	}
	if AlmostEqualRel(math.NaN(), math.NaN(), 1) {
		t.Error("NaN never compares equal")
	}
}

func TestWithinMPa(t *testing.T) {
	if !WithinMPa(100, 100+1e-10) {
		t.Error("1e-10 MPa apart should be within the parity bound")
	}
	if WithinMPa(100, 100+1e-6) {
		t.Error("1e-6 MPa apart exceeds the parity bound")
	}
}

func TestFinite(t *testing.T) {
	if !IsFinite(0) || !IsFinite(-1e300) {
		t.Error("finite values misclassified")
	}
	if IsFinite(math.NaN()) || IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("non-finite values misclassified")
	}
	if !AllFinite() || !AllFinite(1, 2, 3) {
		t.Error("AllFinite false negatives")
	}
	if AllFinite(1, math.NaN(), 3) || AllFinite(math.Inf(-1)) {
		t.Error("AllFinite false positives")
	}
}
