package aging

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"tsvstress/internal/core"
	"tsvstress/internal/floats"
	"tsvstress/internal/reliability"
)

// testStress builds n summaries with a spread of plausible ring
// stresses (von Mises tens–hundreds of MPa), deterministically.
func testStress(n int) []reliability.StressSummary {
	out := make([]reliability.StressSummary, n)
	for i := range out {
		vm := 40 + 37*float64(i%7) // 40..262 MPa
		out[i] = reliability.StressSummary{
			Index:           i,
			MaxVonMises:     vm,
			MeanVonMises:    0.7 * vm,
			MaxTension:      0.3 * vm,
			MeanHydrostatic: -0.2 * vm,
		}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{}).Normalize(); err != nil {
		t.Fatalf("zero config must normalize to defaults: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"nan dt", func(c *Config) { c.DTSeconds = math.NaN() }},
		{"negative dt", func(c *Config) { c.DTSeconds = -1 }},
		{"inf dt", func(c *Config) { c.DTSeconds = math.Inf(1) }},
		{"inf max time", func(c *Config) { c.MaxTimeSeconds = math.Inf(1) }},
		{"min dt above dt", func(c *Config) { c.DTSeconds = 1e6; c.MinDTSeconds = 2e6 }},
		{"max time below dt", func(c *Config) { c.DTSeconds = 1e6; c.MaxTimeSeconds = 1e5 }},
		{"nan temperature", func(c *Config) { c.EM = DefaultEMParams(); c.EM.TemperatureK = math.NaN() }},
		{"empty limits", func(c *Config) { c.EM = DefaultEMParams(); c.EM.ResLimitsPct = nil }},
		{"non-increasing limits", func(c *Config) { c.EM = DefaultEMParams(); c.EM.ResLimitsPct = []float64{5, 5} }},
		{"nan limit", func(c *Config) { c.EM = DefaultEMParams(); c.EM.ResLimitsPct = []float64{math.NaN()} }},
		{"negative activation volume", func(c *Config) { c.EM = DefaultEMParams(); c.EM.StressActivationVolumeM3 = -1e-30 }},
		{"nan extrusion rate", func(c *Config) { c.Extrusion = DefaultExtrusionParams(); c.Extrusion.Rate0 = math.NaN() }},
		{"steps overflow", func(c *Config) { c.DTSeconds = 1; c.MinDTSeconds = 1; c.MaxTimeSeconds = 1e12 }},
		{"max steps ceiling", func(c *Config) { c.MaxSteps = maxStepsCeiling + 1 }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			var c Config
			tc.mut(&c)
			if _, err := c.Normalize(); err == nil {
				t.Fatalf("config %q must be rejected", tc.name)
			}
		})
	}
}

func TestDriveValidation(t *testing.T) {
	if err := ValidateDrive(DefaultDrive()); err != nil {
		t.Fatalf("default drive must validate: %v", err)
	}
	for _, d := range []Drive{
		{UnitCurrentA: 0, MaxParallelism: 16},
		{UnitCurrentA: math.NaN(), MaxParallelism: 16},
		{UnitCurrentA: math.Inf(1), MaxParallelism: 16},
		{UnitCurrentA: 1e-3, MaxParallelism: 0},
		{UnitCurrentA: 1e-3, MaxParallelism: 3},
		{UnitCurrentA: 1e-3, MaxParallelism: -4},
	} {
		if err := ValidateDrive(d); err == nil {
			t.Fatalf("drive %+v must be rejected", d)
		}
	}
	// More halvings than budgets must be rejected at simulation time.
	_, err := Simulate(context.Background(), Config{}, testStress(1),
		[]Drive{{UnitCurrentA: 1e-3, MaxParallelism: 32}})
	if err == nil {
		t.Fatal("MaxParallelism 32 against 4 budgets must be rejected")
	}
}

func TestSimulateDefaultsUncensored(t *testing.T) {
	res, err := Simulate(context.Background(), Config{}, testStress(8), UniformDrives(DefaultDrive(), 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.TSVs {
		if r.Censored {
			t.Fatalf("TSV %d censored at default config (lifetime %g s)", r.Index, r.LifetimeSeconds)
		}
		if wantDrops := levelCount(DefaultDrive().MaxParallelism); len(r.DropTimesSeconds) != wantDrops {
			t.Fatalf("TSV %d: %d parallelism drops, want %d", r.Index, len(r.DropTimesSeconds), wantDrops)
		}
		for i := 1; i < len(r.DropTimesSeconds); i++ {
			if r.DropTimesSeconds[i] <= r.DropTimesSeconds[i-1] {
				t.Fatalf("TSV %d: drop times not ascending: %v", r.Index, r.DropTimesSeconds)
			}
		}
		last := r.DropTimesSeconds[len(r.DropTimesSeconds)-1]
		if !floats.AlmostEqualRel(last, r.LifetimeSeconds, 1e-12) {
			t.Fatalf("TSV %d: final drop %g != lifetime %g", r.Index, last, r.LifetimeSeconds)
		}
		if !(r.LifetimeSeconds > 0) || !(r.VoidRadiusUm > 0) || !(r.ResGainPct > 0) {
			t.Fatalf("TSV %d: non-positive outputs %+v", r.Index, r)
		}
		if r.ExtrusionRisk < 0 || r.ExtrusionRisk > 1 {
			t.Fatalf("TSV %d: risk %g outside [0,1]", r.Index, r.ExtrusionRisk)
		}
	}
	if res.Stats.NumTSVs != 8 || res.Stats.NumCensored != 0 {
		t.Fatalf("bad stats %+v", res.Stats)
	}
	if !(res.Stats.MinLifetimeSeconds <= res.Stats.P10LifetimeSeconds) ||
		!(res.Stats.P10LifetimeSeconds <= res.Stats.MeanLifetimeSeconds) {
		t.Fatalf("lifetime stats not ordered: %+v", res.Stats)
	}
}

func TestDeterminism(t *testing.T) {
	stress, drives := testStress(6), UniformDrives(DefaultDrive(), 6)
	a, err := Simulate(context.Background(), Config{}, stress, drives)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), Config{}, stress, drives)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs disagree")
	}
}

// TestStepRefinement pins the acceptance criterion: halving DTSeconds
// moves every reported lifetime by < 1%.
func TestStepRefinement(t *testing.T) {
	stress, drives := testStress(6), UniformDrives(DefaultDrive(), 6)
	coarse, err := Simulate(context.Background(), Config{DTSeconds: 1e6}, stress, drives)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Simulate(context.Background(), Config{DTSeconds: 5e5}, stress, drives)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coarse.TSVs {
		lc, lf := coarse.TSVs[i].LifetimeSeconds, fine.TSVs[i].LifetimeSeconds
		if rel := math.Abs(lc-lf) / lf; rel >= 0.01 {
			t.Fatalf("TSV %d: lifetime moved %.3g%% under step halving (%g vs %g s)", i, 100*rel, lc, lf)
		}
		for k := range coarse.TSVs[i].DropTimesSeconds {
			dc, df := coarse.TSVs[i].DropTimesSeconds[k], fine.TSVs[i].DropTimesSeconds[k]
			if rel := math.Abs(dc-df) / df; rel >= 0.01 {
				t.Fatalf("TSV %d drop %d: moved %.3g%% under step halving", i, k, 100*rel)
			}
		}
	}
}

// TestLifetimeMonotoneInCurrent pins the physics: more current per
// via, strictly earlier failure.
func TestLifetimeMonotoneInCurrent(t *testing.T) {
	stress := testStress(1)
	prev := math.Inf(1)
	for _, scale := range []float64{0.5, 1, 2, 4} {
		d := DefaultDrive()
		d.UnitCurrentA *= scale
		res, err := Simulate(context.Background(), Config{}, stress, []Drive{d})
		if err != nil {
			t.Fatal(err)
		}
		if res.TSVs[0].Censored {
			t.Fatalf("scale %g: censored", scale)
		}
		if life := res.TSVs[0].LifetimeSeconds; life >= prev {
			t.Fatalf("scale %g: lifetime %g s not below %g s at lower current", scale, life, prev)
		} else {
			prev = life
		}
	}
}

// TestLifetimeMonotoneInStress pins the stress-assist coupling: higher
// local von Mises stress, earlier failure and higher extrusion risk.
func TestLifetimeMonotoneInStress(t *testing.T) {
	prevLife, prevRisk := math.Inf(1), -1.0
	for _, vm := range []float64{0, 100, 250, 500} {
		sum := []reliability.StressSummary{{MaxVonMises: vm, MeanVonMises: 0.7 * vm}}
		res, err := Simulate(context.Background(), Config{}, sum, UniformDrives(DefaultDrive(), 1))
		if err != nil {
			t.Fatal(err)
		}
		r := res.TSVs[0]
		if r.LifetimeSeconds >= prevLife {
			t.Fatalf("σvm %g MPa: lifetime %g s not below %g s at lower stress", vm, r.LifetimeSeconds, prevLife)
		}
		if r.ExtrusionRisk <= prevRisk {
			t.Fatalf("σvm %g MPa: risk %g not above %g at lower stress", vm, r.ExtrusionRisk, prevRisk)
		}
		prevLife, prevRisk = r.LifetimeSeconds, r.ExtrusionRisk
	}
}

// TestParallelParity pins SimulateParallel bit-identical to the serial
// reference at several worker counts.
func TestParallelParity(t *testing.T) {
	stress, drives := testStress(13), UniformDrives(DefaultDrive(), 13)
	want, err := Simulate(context.Background(), Config{}, stress, drives)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7, 32} {
		got, err := SimulateParallel(context.Background(), Config{}, stress, drives, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel result differs from serial reference", workers)
		}
	}
}

// TestExtrusionMatchesClosedForm checks the time-stepped creep
// integration against the exact solution
// h(T) = rate·τ·(1 − exp(−T/τ)).
func TestExtrusionMatchesClosedForm(t *testing.T) {
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	ex := cfg.Extrusion
	sum := []reliability.StressSummary{{MaxVonMises: 200, MeanVonMises: 150}}
	res, err := Simulate(context.Background(), cfg, sum, UniformDrives(DefaultDrive(), 1))
	if err != nil {
		t.Fatal(err)
	}
	rate := ex.Rate0 * math.Pow(200/ex.RefStressMPa, ex.StressExponent)
	wantNm := rate * ex.RelaxTimeS * (1 - math.Exp(-ex.HorizonS/ex.RelaxTimeS)) * 1e9
	if !floats.AlmostEqualRel(res.TSVs[0].ExtrusionNm, wantNm, 1e-6) {
		t.Fatalf("extrusion %g nm, closed form %g nm", res.TSVs[0].ExtrusionNm, wantNm)
	}
}

// countdownCtx returns nil from Err() for the first n polls, then
// context.Canceled — a deterministic mid-simulation cancellation.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestCancellation(t *testing.T) {
	stress, drives := testStress(6), UniformDrives(DefaultDrive(), 6)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(pre, Config{}, stress, drives); err == nil {
		t.Fatal("pre-canceled context must fail")
	} else if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v must match core.ErrCanceled and context.Canceled", err)
	}

	// Mid-run: allow a few polls, then cancel deterministically.
	mid := &countdownCtx{Context: context.Background()}
	mid.left.Store(3)
	if _, err := Simulate(mid, Config{}, stress, drives); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("mid-run cancel: got %v", err)
	}

	midPar := &countdownCtx{Context: context.Background()}
	midPar.left.Store(3)
	if _, err := SimulateParallel(midPar, Config{}, stress, drives, 4); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("mid-run parallel cancel: got %v", err)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Simulate(context.Background(), Config{}, nil, nil); err == nil {
		t.Fatal("empty stress must be rejected")
	}
	if _, err := Simulate(context.Background(), Config{}, testStress(2), UniformDrives(DefaultDrive(), 3)); err == nil {
		t.Fatal("drive/stress length mismatch must be rejected")
	}
	bad := testStress(1)
	bad[0].MaxVonMises = math.NaN()
	if _, err := Simulate(context.Background(), Config{}, bad, UniformDrives(DefaultDrive(), 1)); err == nil {
		t.Fatal("NaN stress must be rejected")
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	tsvs := make([]TSVResult, 10)
	for i := range tsvs {
		tsvs[i] = TSVResult{
			LifetimeSeconds: float64(10 - i), // 10..1
			ExtrusionNm:     float64(i + 1),  // 1..10
			ExtrusionRisk:   float64(i+1) / 10,
		}
	}
	st := Summarize(tsvs)
	if !floats.AlmostEqual(st.MinLifetimeSeconds, 1, 0) {
		t.Fatalf("min lifetime %g", st.MinLifetimeSeconds)
	}
	if !floats.AlmostEqual(st.P10LifetimeSeconds, 1, 0) {
		t.Fatalf("p10 lifetime %g", st.P10LifetimeSeconds)
	}
	if !floats.AlmostEqual(st.P90ExtrusionNm, 9, 0) {
		t.Fatalf("p90 extrusion %g", st.P90ExtrusionNm)
	}
	if !floats.AlmostEqual(st.MaxExtrusionNm, 10, 0) {
		t.Fatalf("max extrusion %g", st.MaxExtrusionNm)
	}
	if !floats.AlmostEqualRel(st.MeanLifetimeSeconds, 5.5, 1e-12) {
		t.Fatalf("mean lifetime %g", st.MeanLifetimeSeconds)
	}
}
