package aging

import (
	"context"
	"fmt"
	"math"

	"tsvstress/internal/core"
	"tsvstress/internal/reliability"
)

// Physical constants (SI).
const (
	boltzmannJPerK  = 1.380649e-23    // kB (J/K)
	electronChargeC = 1.602176634e-19 // e (C)
)

// ctxCheckMask throttles context polls in the integration loop to one
// per 256 iterations: cheap enough to keep, frequent enough that a
// deadline cancels a simulation within microseconds of work.
const ctxCheckMask = 0xff

// stepVoidRK4 advances the void radius by one classical Runge–Kutta
// step of the autonomous growth law dr/dt = coef·max(re, r), where
// coef folds the vacancy-flux prefactor and the present current
// density (1/s) and re is the flux-capture floor (m). It is the EM
// inner-loop kernel and must not allocate.
//
//tsvlint:allocfree
func stepVoidRK4(r, dt, coef, re float64) float64 {
	k1 := coef * math.Max(re, r)
	k2 := coef * math.Max(re, r+0.5*dt*k1)
	k3 := coef * math.Max(re, r+0.5*dt*k2)
	k4 := coef * math.Max(re, r+dt*k3)
	return r + dt/6*(k1+2*k2+2*k3+k4)
}

// stepExtrusionRK4 advances the extrusion height by one Runge–Kutta
// step of the saturating creep law dh/dt = rate·exp(−t·invTau), the
// extrusion inner-loop kernel; it must not allocate. (The midpoint
// stages coincide because the rate depends on t only.)
//
//tsvlint:allocfree
func stepExtrusionRK4(h, t, dt, rate, invTau float64) float64 {
	k1 := rate * math.Exp(-t*invTau)
	k2 := rate * math.Exp(-(t+0.5*dt)*invTau)
	k4 := rate * math.Exp(-(t+dt)*invTau)
	return h + dt/6*(k1+4*k2+k4)
}

// resGainPct maps a void radius in meters to the resistance gain in
// percent through the linear fit, clamped at 0 (a void below the fit's
// zero crossing has not yet measurably raised resistance).
//
//tsvlint:allocfree
func resGainPct(rM, slopePerUm, interceptPct float64) float64 {
	g := slopePerUm*(rM*1e6) + interceptPct
	if g < 0 {
		return 0
	}
	return g
}

// emPrefactor returns the vacancy-flux growth prefactor K for one TSV
// such that dr/dt = K·j·max(re, r), folding the Arrhenius terms at the
// stress-shifted effective activation energy. Units: m²/A·s⁻¹ per
// meter of capture radius — K·j is 1/s.
func emPrefactor(em EMParams, maxVonMisesMPa float64) float64 {
	kT := boltzmannJPerK * em.TemperatureK
	eaEff := em.ActivationEnergyJ - em.StressActivationVolumeM3*maxVonMisesMPa*1e6
	if floor := 0.2 * em.ActivationEnergyJ; eaEff < floor {
		eaEff = floor
	}
	arrhenius := math.Exp(-eaEff / kT)
	dv := em.Diffusivity0 * arrhenius
	cv := em.AtomicConcentration * arrhenius
	return em.CapturedVacancyRatio * em.VacancyVolumeRatio * em.AtomicVolumeM3 / em.VoidThicknessM *
		dv * cv * electronChargeC * em.EffectiveCharge * em.BarrierResistivityOhmM / kT
}

// simulateOne integrates one via to failure or the horizon. The two
// phases — EM void growth with parallelism halving, then extrusion
// creep to its own horizon — are independent integrations sharing the
// step budget.
func simulateOne(ctx context.Context, cfg Config, sum reliability.StressSummary, d Drive) (TSVResult, error) {
	em := cfg.EM
	res := TSVResult{
		Index:           sum.Index,
		MaxVonMisesMPa:  sum.MaxVonMises,
		MeanVonMisesMPa: sum.MeanVonMises,
	}

	// --- EM phase ---
	prefactor := emPrefactor(em, sum.MaxVonMises)
	area := math.Pi * em.TSVRadiusM * em.TSVRadiusM
	p := d.MaxParallelism
	nLevels := levelCount(p)
	coef := prefactor * float64(p) * d.UnitCurrentA / area
	re := em.VoidNucleusRadiusM

	r, t := 0.0, 0.0
	dt := cfg.DTSeconds
	level := 0
	iters := 0
	for t < cfg.MaxTimeSeconds && res.Steps < cfg.MaxSteps {
		iters++
		if iters&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		rNext := stepVoidRK4(r, dt, coef, re)
		if resGainPct(rNext, em.ResGainSlopePerUm, em.ResGainInterceptPct) >= em.ResLimitsPct[level] {
			if dt > cfg.MinDTSeconds {
				// The step would cross this level's budget: halve and
				// retry, localizing the crossing to MinDTSeconds.
				dt /= 2
				continue
			}
			r = rNext
			t += dt
			res.Steps++
			res.DropTimesSeconds = append(res.DropTimesSeconds, t)
			level++
			if level >= nLevels {
				res.LifetimeSeconds = t
				break
			}
			if p > 1 {
				p /= 2
			}
			coef = prefactor * float64(p) * d.UnitCurrentA / area
			dt = cfg.DTSeconds
			continue
		}
		r = rNext
		t += dt
		res.Steps++
		if dt < cfg.DTSeconds {
			// Recover toward the base step after a crossing approach
			// committed refined sub-steps.
			dt *= 2
			if dt > cfg.DTSeconds {
				dt = cfg.DTSeconds
			}
		}
	}
	if level < nLevels {
		res.Censored = true
		res.LifetimeSeconds = t
	}
	res.VoidRadiusUm = r * 1e6
	res.ResGainPct = resGainPct(r, em.ResGainSlopePerUm, em.ResGainInterceptPct)

	// --- Extrusion phase ---
	// Creep is driven by the ring-max von Mises: extrusion initiates at
	// the most-stressed sector of the liner interface, and unlike the
	// ring mean the maximum grows monotonically as neighbors close in —
	// the pitch trend the golden sweep gates on.
	ex := cfg.Extrusion
	rate := ex.Rate0 * math.Pow(sum.MaxVonMises/ex.RefStressMPa, ex.StressExponent)
	invTau := 1 / ex.RelaxTimeS
	h, te := 0.0, 0.0
	dt = cfg.DTSeconds
	for te < ex.HorizonS && res.Steps < cfg.MaxSteps {
		iters++
		if iters&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		step := dt
		if te+step > ex.HorizonS {
			step = ex.HorizonS - te
		}
		h = stepExtrusionRK4(h, te, step, rate, invTau)
		te += step
		res.Steps++
	}
	res.ExtrusionNm = h * 1e9
	res.ExtrusionRisk = 1 / (1 + math.Exp(-(h-ex.CriticalHeightM)/ex.HeightWidthM))
	return res, nil
}

// checkDriveLevels rejects drives asking for more parallelism halvings
// than the configured resistance budgets cover.
func checkDriveLevels(cfg Config, drives []Drive) error {
	for i, d := range drives {
		if n := levelCount(d.MaxParallelism); n > len(cfg.EM.ResLimitsPct) {
			return fmt.Errorf("aging: TSV %d needs %d resistance budgets for MaxParallelism %d, have %d",
				i, n, d.MaxParallelism, len(cfg.EM.ResLimitsPct))
		}
	}
	return nil
}

// canceled wraps a context error so callers can match both
// core.ErrCanceled and the context cause, mirroring the evaluation
// engine's cancellation contract.
func canceled(done, total int, cause error) error {
	return fmt.Errorf("aging: simulation canceled after %d of %d TSVs (%w): %w",
		done, total, core.ErrCanceled, cause)
}

// Simulate runs the serial reference simulation: every TSV integrated
// in order. The result is deterministic for a given config and inputs,
// and SimulateParallel is pinned bit-identical to it.
func Simulate(ctx context.Context, cfg Config, stress []reliability.StressSummary, drives []Drive) (*Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if err := checkInputs(stress, drives); err != nil {
		return nil, err
	}
	if err := checkDriveLevels(cfg, drives); err != nil {
		return nil, err
	}
	out := make([]TSVResult, len(stress))
	for i := range stress {
		r, err := simulateOne(ctx, cfg, stress[i], drives[i])
		if err != nil {
			return nil, canceled(i, len(stress), err)
		}
		out[i] = r
	}
	return &Result{TSVs: out, Stats: Summarize(out)}, nil
}
