// Package aging is the time-stepped lifetime engine on top of the
// stress framework: it evolves two degradation phenomena per TSV, both
// driven by the local stress state the semi-analytical engine already
// computes (reliability.StressSummary ring digests).
//
// (a) Electromigration void growth. Following the vacancy-flux model
// for TSVs in 3D-stacked DRAM (Bobbybose EM model, SNIPPETS.md), a
// current density j through the via sustains a vacancy flux
//
//	Jv = Dv · Cv · (e·Z*/(kB·T)) · ρB · j        [1/(m²·s)]
//
// with Arrhenius diffusivity and concentration
//
//	Dv = D0 · exp(−Ea_eff/(kB·T)),  Cv = C0 · exp(−Ea_eff/(kB·T)),
//
// which grows a void of radius r at
//
//	dr/dt = fc · fv · Ω · max(r_e, r) · Jv / δ   [m/s]
//
// (captured-vacancy ratio fc, vacancy-volume ratio fv, atomic volume
// Ω, void nucleus radius r_e, barrier thickness δ). The max(r_e, r)
// capture radius extends the reference model's constant-r_e form: once
// the void outgrows its nucleus it intercepts flux in proportion to
// its own size, so growth turns exponential — which is what makes the
// time integration a real ODE rather than a line. Stress enters
// through the effective activation energy
//
//	Ea_eff = Ea − Vσ · σvm[Pa]
//
// (activation volume Vσ, local ring-max von Mises σvm): high local
// stress assists vacancy formation and migration, so tightly pitched
// TSVs age measurably faster — the coupling that makes this a
// stress-map workload. Void radius maps to resistance gain through the
// reference model's linear fit g(r) = slope·r[µm] + intercept [%].
// Each time g crosses the current parallelism level's resistance
// budget, the architecture halves the via's activation parallelism
// (halving its current); the lifetime is the instant of the final
// crossing, after which no further halving is available.
//
// (b) Extrusion. Per Jalilvand et al. (PAPERS.md), TSV extrusion
// statistics shift with pitch because the local thermal stress does.
// The engine evolves an extrusion height by saturating power-law creep
//
//	dh/dt = A · (σ̄vm/σref)^n · exp(−t/τ)        [m/s]
//
// (ring-mean von Mises σ̄vm, stress exponent n, relaxation time τ),
// and scores a dimensionless extrusion risk in [0, 1] by a logistic in
// (h(horizon) − h_crit)/h_width. Tighter pitch → higher σ̄vm → the
// per-TSV risk distribution shifts up, reproducing the paper's
// qualitative pitch dependence (pinned by the golden sweep).
//
// Time stepping is deterministic and step-size-robust: fourth-order
// Runge–Kutta steps of size DT, with step-halving down to MinDT
// whenever a step would cross a resistance budget, so every reported
// lifetime is localized to MinDT regardless of DT (the refinement
// property test pins <1% movement under DT/2). Per-TSV integrations
// are independent; SimulateParallel fans them across goroutines with
// bit-identical results to the serial Simulate.
package aging

import (
	"fmt"
	"math"
	"sort"

	"tsvstress/internal/floats"
	"tsvstress/internal/reliability"
)

// EMParams are the electromigration model constants. The defaults
// (DefaultEMParams) are the reference DRAM-TSV values from the
// Bobbybose model; all fields are SI.
type EMParams struct {
	// CapturedVacancyRatio fc is the fraction of arriving vacancies the
	// void captures (dimensionless).
	CapturedVacancyRatio float64
	// VacancyVolumeRatio fv is the vacancy-to-atomic volume ratio
	// (dimensionless).
	VacancyVolumeRatio float64
	// AtomicVolumeM3 Ω is the copper atomic volume in m³.
	AtomicVolumeM3 float64
	// VoidThicknessM δ is the void/barrier interface thickness in m.
	VoidThicknessM float64
	// Diffusivity0 D0 is the pre-exponential vacancy diffusivity in m²/s.
	Diffusivity0 float64
	// ActivationEnergyJ Ea is the vacancy activation energy in J.
	ActivationEnergyJ float64
	// TemperatureK is the operating temperature in K.
	TemperatureK float64
	// EffectiveCharge Z* is the effective charge number (dimensionless).
	EffectiveCharge float64
	// BarrierResistivityOhmM ρB is the barrier resistivity in Ω·m.
	BarrierResistivityOhmM float64
	// TSVRadiusM is the conducting via radius in m (sets the current
	// density for a given current).
	TSVRadiusM float64
	// VoidNucleusRadiusM r_e is the effective void nucleus radius in m:
	// the flux-capture radius floor.
	VoidNucleusRadiusM float64
	// AtomicConcentration C0 is the atomic site concentration in 1/m³.
	AtomicConcentration float64
	// StressActivationVolumeM3 Vσ couples local stress to the effective
	// activation energy, in m³ (0 disables the coupling).
	StressActivationVolumeM3 float64
	// ResGainSlopePerUm and ResGainInterceptPct are the linear
	// void-radius → resistance-gain fit: gain% = slope·r[µm] + intercept.
	ResGainSlopePerUm   float64
	ResGainInterceptPct float64
	// ResLimitsPct are the per-level resistance-gain budgets in percent,
	// one per parallelism halving (level 0 = the starting parallelism).
	ResLimitsPct []float64
}

// DefaultEMParams returns the reference model constants (453 K DRAM
// stack, copper via of 1.15 µm radius).
func DefaultEMParams() EMParams {
	return EMParams{
		CapturedVacancyRatio:     1,
		VacancyVolumeRatio:       0.4,
		AtomicVolumeM3:           1.18e-29,
		VoidThicknessM:           5e-9,
		Diffusivity0:             0.0047,
		ActivationEnergyJ:        1.30e-19,
		TemperatureK:             453,
		EffectiveCharge:          1,
		BarrierResistivityOhmM:   3e-6,
		TSVRadiusM:               1.15e-6,
		VoidNucleusRadiusM:       1.15e-6,
		AtomicConcentration:      1.53e28,
		StressActivationVolumeM3: 6e-30,
		ResGainSlopePerUm:        7.78,
		ResGainInterceptPct:      -8.73944,
		ResLimitsPct:             []float64{2.79, 6.76, 14.7, 30.58},
	}
}

// ExtrusionParams are the stress-modulated extrusion (creep) model
// constants.
type ExtrusionParams struct {
	// Rate0 is the creep extrusion rate at the reference stress, in m/s.
	Rate0 float64
	// RefStressMPa σref is the stress normalization in MPa.
	RefStressMPa float64
	// StressExponent n is the power-law creep exponent (dimensionless).
	StressExponent float64
	// RelaxTimeS τ is the stress-relaxation time constant in seconds:
	// the creep rate decays as exp(−t/τ), so extrusion saturates.
	RelaxTimeS float64
	// CriticalHeightM h_crit centers the risk logistic, in m.
	CriticalHeightM float64
	// HeightWidthM h_width is the logistic width, in m.
	HeightWidthM float64
	// HorizonS is the extrusion integration horizon in seconds.
	HorizonS float64
}

// DefaultExtrusionParams returns creep constants placing the risk
// midpoint near a 120 nm extrusion over a ~3-year horizon: a via at
// ~150 MPa ring-max von Mises sits mid-scale, so the risk score
// discriminates across the 100–250 MPa band full-chip placements
// actually produce instead of saturating.
func DefaultExtrusionParams() ExtrusionParams {
	return ExtrusionParams{
		Rate0:           1e-15,
		RefStressMPa:    100,
		StressExponent:  3,
		RelaxTimeS:      3e7,
		CriticalHeightM: 120e-9,
		HeightWidthM:    40e-9,
		HorizonS:        1e8,
	}
}

// Drive is one TSV's electrical assignment: how much current it
// carries and how much activation parallelism the architecture can
// trade away before the via is considered failed.
type Drive struct {
	// UnitCurrentA is the current one parallelism unit pushes through
	// the via, in A.
	UnitCurrentA float64
	// MaxParallelism is the starting parallelism (a power of two ≥ 1);
	// the via carries MaxParallelism·UnitCurrentA until its first
	// resistance budget crossing, then half that, and so on.
	MaxParallelism int
}

// DefaultDrive returns the reference assignment: 16-way parallelism at
// 55 mA shared across a 64-bit interface (≈0.86 mA per unit).
func DefaultDrive() Drive {
	return Drive{UnitCurrentA: 55e-3 / 64, MaxParallelism: 16}
}

// Config configures one simulation run.
type Config struct {
	// EM are the electromigration constants (DefaultEMParams when the
	// zero value).
	EM EMParams
	// Extrusion are the creep constants (DefaultExtrusionParams when
	// the zero value).
	Extrusion ExtrusionParams
	// DTSeconds is the base integration step in seconds (default 1e6).
	DTSeconds float64
	// MinDTSeconds is the step-halving floor in seconds (default
	// DTSeconds/4096): threshold crossings are localized to this
	// precision.
	MinDTSeconds float64
	// MaxTimeSeconds bounds the simulated time per TSV (default 1e10);
	// a via that never exhausts its resistance budgets by then is
	// reported censored.
	MaxTimeSeconds float64
	// MaxSteps bounds committed integration steps per TSV (default
	// 2,000,000) — the hard stop that keeps a hostile config from
	// running away; exceeding it censors the via.
	MaxSteps int
}

// maxStepsCeiling bounds what a request may ask for; together with the
// serve tier's TSV limit it caps the endpoint's total work.
const maxStepsCeiling = 5_000_000

func (c Config) withDefaults() Config {
	if c.EM.isZero() {
		c.EM = DefaultEMParams()
	}
	if c.Extrusion.isZero() {
		c.Extrusion = DefaultExtrusionParams()
	}
	// Only an exact zero means "unset": negative (or NaN) values must
	// fall through to Validate and be rejected, not silently defaulted.
	if c.DTSeconds == 0 {
		c.DTSeconds = 1e6
	}
	if c.MinDTSeconds == 0 && c.DTSeconds > 0 {
		c.MinDTSeconds = c.DTSeconds / 4096
	}
	if c.MaxTimeSeconds == 0 {
		c.MaxTimeSeconds = 1e10
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000
	}
	return c
}

// isZero reports whether the params are entirely unset, so Config's
// zero value means "use the defaults". (EMParams holds a slice, so the
// struct is not ==-comparable.)
func (p EMParams) isZero() bool {
	return p.ResLimitsPct == nil &&
		p.CapturedVacancyRatio == 0 && p.VacancyVolumeRatio == 0 &&
		p.AtomicVolumeM3 == 0 && p.VoidThicknessM == 0 &&
		p.Diffusivity0 == 0 && p.ActivationEnergyJ == 0 &&
		p.TemperatureK == 0 && p.EffectiveCharge == 0 &&
		p.BarrierResistivityOhmM == 0 && p.TSVRadiusM == 0 &&
		p.VoidNucleusRadiusM == 0 && p.AtomicConcentration == 0 &&
		p.StressActivationVolumeM3 == 0 &&
		p.ResGainSlopePerUm == 0 && p.ResGainInterceptPct == 0
}

// isZero reports whether the params are entirely unset, so Config's
// zero value means "use the defaults". (Spelled field-by-field against
// exact zero — the one float equality that is a sentinel test, not a
// tolerance test.)
func (p ExtrusionParams) isZero() bool {
	return p.Rate0 == 0 && p.RefStressMPa == 0 && p.StressExponent == 0 &&
		p.RelaxTimeS == 0 && p.CriticalHeightM == 0 &&
		p.HeightWidthM == 0 && p.HorizonS == 0
}

// Validate rejects non-finite or non-physical configurations — the
// API-boundary contract the serving decoder and the fuzz target lean
// on. It must be called on the withDefaults result (Normalize does
// both).
func (c Config) Validate() error {
	em := c.EM
	pos := []struct {
		name string
		v    float64
	}{
		{"EM.CapturedVacancyRatio", em.CapturedVacancyRatio},
		{"EM.VacancyVolumeRatio", em.VacancyVolumeRatio},
		{"EM.AtomicVolumeM3", em.AtomicVolumeM3},
		{"EM.VoidThicknessM", em.VoidThicknessM},
		{"EM.Diffusivity0", em.Diffusivity0},
		{"EM.ActivationEnergyJ", em.ActivationEnergyJ},
		{"EM.TemperatureK", em.TemperatureK},
		{"EM.BarrierResistivityOhmM", em.BarrierResistivityOhmM},
		{"EM.TSVRadiusM", em.TSVRadiusM},
		{"EM.VoidNucleusRadiusM", em.VoidNucleusRadiusM},
		{"EM.AtomicConcentration", em.AtomicConcentration},
		{"EM.ResGainSlopePerUm", em.ResGainSlopePerUm},
		{"Extrusion.Rate0", c.Extrusion.Rate0},
		{"Extrusion.RefStressMPa", c.Extrusion.RefStressMPa},
		{"Extrusion.StressExponent", c.Extrusion.StressExponent},
		{"Extrusion.RelaxTimeS", c.Extrusion.RelaxTimeS},
		{"Extrusion.CriticalHeightM", c.Extrusion.CriticalHeightM},
		{"Extrusion.HeightWidthM", c.Extrusion.HeightWidthM},
		{"Extrusion.HorizonS", c.Extrusion.HorizonS},
		{"DTSeconds", c.DTSeconds},
		{"MinDTSeconds", c.MinDTSeconds},
		{"MaxTimeSeconds", c.MaxTimeSeconds},
	}
	for _, p := range pos {
		if !(p.v > 0) || math.IsInf(p.v, 0) {
			return fmt.Errorf("aging: %s = %g must be positive and finite", p.name, p.v)
		}
	}
	if !floats.AllFinite(em.EffectiveCharge, em.StressActivationVolumeM3, em.ResGainInterceptPct) {
		return fmt.Errorf("aging: non-finite EM parameter (Z* %g, Vσ %g, intercept %g)",
			em.EffectiveCharge, em.StressActivationVolumeM3, em.ResGainInterceptPct)
	}
	if em.StressActivationVolumeM3 < 0 {
		return fmt.Errorf("aging: EM.StressActivationVolumeM3 = %g must be ≥ 0", em.StressActivationVolumeM3)
	}
	if len(em.ResLimitsPct) == 0 {
		return fmt.Errorf("aging: EM.ResLimitsPct is empty")
	}
	prev := math.Inf(-1)
	for i, l := range em.ResLimitsPct {
		if !(l > 0) || math.IsInf(l, 0) {
			return fmt.Errorf("aging: EM.ResLimitsPct[%d] = %g must be positive and finite", i, l)
		}
		if l <= prev {
			return fmt.Errorf("aging: EM.ResLimitsPct must be strictly increasing (entry %d: %g after %g)", i, l, prev)
		}
		prev = l
	}
	if c.MinDTSeconds > c.DTSeconds {
		return fmt.Errorf("aging: MinDTSeconds %g exceeds DTSeconds %g", c.MinDTSeconds, c.DTSeconds)
	}
	if c.MaxTimeSeconds < c.DTSeconds {
		return fmt.Errorf("aging: MaxTimeSeconds %g is below one step DTSeconds %g", c.MaxTimeSeconds, c.DTSeconds)
	}
	if c.MaxSteps < 0 || c.MaxSteps > maxStepsCeiling {
		return fmt.Errorf("aging: MaxSteps %d outside (0, %d]", c.MaxSteps, maxStepsCeiling)
	}
	// The base-step budget must fit MaxSteps, or every via would just
	// censor at the step bound while burning the whole budget.
	if steps := c.MaxTimeSeconds / c.DTSeconds; steps > float64(c.MaxSteps) {
		return fmt.Errorf("aging: MaxTimeSeconds/DTSeconds = %.0f steps exceeds MaxSteps %d — coarsen DTSeconds", steps, c.MaxSteps)
	}
	if steps := c.Extrusion.HorizonS / c.DTSeconds; steps > float64(c.MaxSteps) {
		return fmt.Errorf("aging: Extrusion.HorizonS/DTSeconds = %.0f steps exceeds MaxSteps %d — coarsen DTSeconds", steps, c.MaxSteps)
	}
	return nil
}

// Normalize fills defaults and validates, returning the effective
// configuration a simulation will run with.
func (c Config) Normalize() (Config, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// ValidateDrive rejects a non-physical per-TSV assignment.
func ValidateDrive(d Drive) error {
	if !(d.UnitCurrentA > 0) || math.IsInf(d.UnitCurrentA, 0) {
		return fmt.Errorf("aging: UnitCurrentA = %g must be positive and finite", d.UnitCurrentA)
	}
	if d.MaxParallelism < 1 {
		return fmt.Errorf("aging: MaxParallelism = %d must be ≥ 1", d.MaxParallelism)
	}
	if d.MaxParallelism&(d.MaxParallelism-1) != 0 {
		return fmt.Errorf("aging: MaxParallelism = %d must be a power of two", d.MaxParallelism)
	}
	return nil
}

// levelCount returns how many resistance budgets a drive consumes: one
// per parallelism halving down to 1 (a via starting at parallelism 1
// still has the single terminal budget).
func levelCount(maxParallelism int) int {
	n := 0
	for p := maxParallelism; p > 1; p /= 2 {
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

// TSVResult is one via's simulated fate.
type TSVResult struct {
	Index int
	// LifetimeSeconds is the time of the final resistance-budget
	// crossing in seconds; for a censored via it is the simulated
	// horizon reached.
	LifetimeSeconds float64
	// Censored reports that the via outlived MaxTimeSeconds (or the
	// step bound) without exhausting its budgets — LifetimeSeconds is
	// then a lower bound.
	Censored bool
	// VoidRadiusUm is the final electromigration void radius in µm.
	VoidRadiusUm float64
	// ResGainPct is the final resistance gain in percent of the
	// pristine via resistance.
	ResGainPct float64
	// DropTimesSeconds are the parallelism-halving instants in seconds,
	// one per exhausted budget, ascending (the last one equals
	// LifetimeSeconds for an uncensored via).
	DropTimesSeconds []float64
	// Steps counts committed integration steps (both phases).
	Steps int
	// ExtrusionNm is the extrusion height at the creep horizon in nm.
	ExtrusionNm float64
	// ExtrusionRisk is the dimensionless logistic risk score in [0, 1].
	ExtrusionRisk float64
	// MaxVonMisesMPa and MeanVonMisesMPa echo the stress inputs in MPa
	// so results are interpretable standalone.
	MaxVonMisesMPa  float64
	MeanVonMisesMPa float64
}

// Stats summarizes a slice of per-TSV results.
type Stats struct {
	// NumTSVs is the simulated via count; NumCensored of them hit the
	// horizon with budgets to spare.
	NumTSVs     int
	NumCensored int
	// MeanLifetimeSeconds, MinLifetimeSeconds and P10LifetimeSeconds
	// summarize the lifetime distribution in seconds (censored
	// lifetimes enter as their lower bounds, so the mean is
	// conservative).
	MeanLifetimeSeconds float64
	MinLifetimeSeconds  float64
	P10LifetimeSeconds  float64
	// MeanExtrusionNm, P90ExtrusionNm and MaxExtrusionNm summarize the
	// extrusion-height distribution in nm.
	MeanExtrusionNm float64
	P90ExtrusionNm  float64
	MaxExtrusionNm  float64
	// MeanRisk and P90Risk summarize the dimensionless extrusion risk
	// distribution.
	MeanRisk float64
	P90Risk  float64
}

// Result is one simulation run: per-TSV fates plus their distribution
// summary.
type Result struct {
	TSVs  []TSVResult
	Stats Stats
}

// Summarize computes the distribution statistics of a result slice.
func Summarize(tsvs []TSVResult) Stats {
	st := Stats{NumTSVs: len(tsvs)}
	if len(tsvs) == 0 {
		return st
	}
	lifetimes := make([]float64, 0, len(tsvs))
	heights := make([]float64, 0, len(tsvs))
	risks := make([]float64, 0, len(tsvs))
	st.MinLifetimeSeconds = math.Inf(1)
	for _, r := range tsvs {
		if r.Censored {
			st.NumCensored++
		}
		st.MeanLifetimeSeconds += r.LifetimeSeconds / float64(len(tsvs))
		st.MeanExtrusionNm += r.ExtrusionNm / float64(len(tsvs))
		st.MeanRisk += r.ExtrusionRisk / float64(len(tsvs))
		st.MinLifetimeSeconds = math.Min(st.MinLifetimeSeconds, r.LifetimeSeconds)
		st.MaxExtrusionNm = math.Max(st.MaxExtrusionNm, r.ExtrusionNm)
		lifetimes = append(lifetimes, r.LifetimeSeconds)
		heights = append(heights, r.ExtrusionNm)
		risks = append(risks, r.ExtrusionRisk)
	}
	st.P10LifetimeSeconds = quantile(lifetimes, 0.10)
	st.P90ExtrusionNm = quantile(heights, 0.90)
	st.P90Risk = quantile(risks, 0.90)
	return st
}

// quantile returns the q-quantile of vs (nearest-rank on a sorted
// copy); the unit is whatever vs carries.
func quantile(vs []float64, q float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// uniformDrives expands one drive over n TSVs.
func uniformDrives(d Drive, n int) []Drive {
	ds := make([]Drive, n)
	for i := range ds {
		ds[i] = d
	}
	return ds
}

// UniformDrives returns n copies of d — the common "every via carries
// the same interface share" assignment.
func UniformDrives(d Drive, n int) []Drive { return uniformDrives(d, n) }

// checkInputs validates the per-run inputs shared by Simulate and
// SimulateParallel.
func checkInputs(stress []reliability.StressSummary, drives []Drive) error {
	if len(stress) == 0 {
		return fmt.Errorf("aging: no stress summaries")
	}
	if len(drives) != len(stress) {
		return fmt.Errorf("aging: %d drives for %d TSVs", len(drives), len(stress))
	}
	for i, d := range drives {
		if err := ValidateDrive(d); err != nil {
			return fmt.Errorf("TSV %d: %w", i, err)
		}
	}
	for i, s := range stress {
		if !floats.AllFinite(s.MaxVonMises, s.MeanVonMises, s.MeanHydrostatic) {
			return fmt.Errorf("aging: TSV %d has non-finite stress summary", i)
		}
	}
	return nil
}
