package aging

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"tsvstress/internal/reliability"
)

// SimulateParallel fans the independent per-TSV integrations across
// workers goroutines (GOMAXPROCS when workers ≤ 0). Each result is
// written into its own pre-sized slot, so the output — per-TSV values
// and summary statistics alike — is bit-identical to Simulate's
// regardless of worker count or scheduling; the parity property test
// pins this. All workers are joined before return.
func SimulateParallel(ctx context.Context, cfg Config, stress []reliability.StressSummary, drives []Drive, workers int) (*Result, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if err := checkInputs(stress, drives); err != nil {
		return nil, err
	}
	if err := checkDriveLevels(cfg, drives); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(stress) {
		workers = len(stress)
	}

	out := make([]TSVResult, len(stress))
	var (
		next     atomic.Int64 // work queue cursor
		done     atomic.Int64 // completed integrations (error reporting only)
		errMu    sync.Mutex
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stress) {
					return
				}
				r, err := simulateOne(ctx, cfg, stress[i], drives[i])
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				out[i] = r
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, canceled(int(done.Load()), len(stress), firstErr)
	}
	return &Result{TSVs: out, Stats: Summarize(out)}, nil
}
