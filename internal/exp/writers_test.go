package exp

import (
	"bytes"
	"strings"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
	"tsvstress/internal/tensor"
)

// syntheticPairCase builds a PairCase with fabricated fields so the
// formatting/aggregation paths can be tested without a FEM solve.
func syntheticPairCase(t *testing.T) *PairCase {
	t.Helper()
	pts := []geom.Point{{X: -10, Y: 0}, {X: 0, Y: 0}, {X: 10, Y: 0}}
	crt := []geom.Point{{X: -1, Y: 0}}
	mk := func(base float64) []tensor.Stress {
		out := make([]tensor.Stress, len(pts))
		for i := range out {
			out[i] = tensor.Stress{XX: base + float64(i)*10}
		}
		return out
	}
	return &PairCase{
		D:         10,
		Monitored: pts,
		Critical:  crt,
		GoldenMon: mk(60),
		LSMon:     mk(72), // +12 MPa everywhere
		PFMon:     mk(63), // +3 MPa everywhere
		GoldenCrt: []tensor.Stress{{XX: 100}},
		LSCrt:     []tensor.Stress{{XX: 130}},
		PFCrt:     []tensor.Stress{{XX: 108}},
		NX:        3, NY: 1,
	}
}

func TestRowsFromSyntheticCase(t *testing.T) {
	pc := syntheticPairCase(t)
	ls, pf, err := pc.Rows(metrics.SigmaXX)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Avg.AvgError != 12 || pf.Avg.AvgError != 3 {
		t.Errorf("avg errors = %v / %v", ls.Avg.AvgError, pf.Avg.AvgError)
	}
	if ls.Critical50.AvgError != 30 || pf.Critical50.AvgError != 8 {
		t.Errorf("critical errors = %v / %v", ls.Critical50.AvgError, pf.Critical50.AvgError)
	}
	if ls.Critical50.AvgErrorRate != 30 { // 30/100 → 30%
		t.Errorf("critical rate = %v", ls.Critical50.AvgErrorRate)
	}
}

func TestWriteTableSynthetic(t *testing.T) {
	sw := &PairSweep{Liner: material.BCB, Pitches: []float64{10}, Cases: []*PairCase{syntheticPairCase(t)}}
	var buf bytes.Buffer
	if err := sw.WriteTable(&buf, metrics.SigmaXX, "Synthetic Table"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Synthetic Table") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "| LS | 10 |") || !strings.Contains(out, "| PF | 10 |") {
		t.Errorf("method rows missing:\n%s", out)
	}
	if !strings.Contains(out, "12.00") || !strings.Contains(out, "3.00") {
		t.Errorf("error values missing:\n%s", out)
	}
}

func TestBuildErrorMapsSynthetic(t *testing.T) {
	// Build a case whose monitored points form a full 3×1 lattice on a
	// region, then check the maps line up.
	region := geom.Rect{Min: geom.Pt(-15, -5), Max: geom.Pt(15, 5)}
	cfg := Config{Quick: true, PointSpacing: 10}
	pc := syntheticPairCase(t)
	// Monitored points must match the lattice NewGrid produces.
	em, err := BuildErrorMaps(cfg, pc, region)
	if err != nil {
		t.Fatal(err)
	}
	if em.NX != 3 || em.NY != 1 {
		t.Fatalf("map dims %dx%d", em.NX, em.NY)
	}
	if em.MaxLS != 12 || em.MaxPF != 3 {
		t.Errorf("max errors = %v / %v", em.MaxLS, em.MaxPF)
	}
	var buf bytes.Buffer
	if err := em.Write(&buf, "synthetic"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max |error|: LS 12.0 MPa, PF 3.0 MPa") {
		t.Errorf("map summary missing:\n%s", buf.String())
	}
}

func TestFiveRowsSyntheticConsistency(t *testing.T) {
	fc := &FiveCase{
		GoldenMon: []tensor.Stress{{XX: 80}},
		LSMon:     []tensor.Stress{{XX: 90}},
		PFMon:     []tensor.Stress{{XX: 82}},
		GoldenCrt: []tensor.Stress{{XX: 120}},
		LSCrt:     []tensor.Stress{{XX: 140}},
		PFCrt:     []tensor.Stress{{XX: 125}},
	}
	ls, pf, err := fc.Rows(metrics.SigmaXX)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Avg.AvgError != 10 || pf.Avg.AvgError != 2 {
		t.Errorf("avg = %v / %v", ls.Avg.AvgError, pf.Avg.AvgError)
	}
	var buf bytes.Buffer
	if err := fc.WriteTable(&buf, "Synthetic Table 2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vonMises") {
		t.Error("von Mises row missing")
	}
}
