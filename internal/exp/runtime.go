package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/report"
	"tsvstress/internal/tensor"
)

// RuntimeCase is one column of Table 6 (Appendix A.3).
type RuntimeCase struct {
	Name      string
	NumTSV    int
	Density   float64 // µm⁻²
	NumPoints int
}

// Table6Cases returns the paper's seven scalability cases; in Quick
// mode the point counts are scaled down 10×.
func Table6Cases(quick bool) []RuntimeCase {
	pts := func(m float64) int {
		if quick {
			return int(m * 50_000)
		}
		return int(m * 500_000)
	}
	return []RuntimeCase{
		{"1", 100, 1e-2, pts(1)},
		{"2", 500, 1e-2, pts(1)},
		{"3", 1000, 1e-2, pts(1)},
		{"4", 100, 0.69e-2, pts(1)},
		{"5", 100, 0.25e-2, pts(1)},
		{"6", 100, 1e-2, pts(2)},
		{"7", 100, 1e-2, pts(4)},
	}
}

// RuntimeResult is the measured outcome of one case.
type RuntimeResult struct {
	Case      RuntimeCase
	LSTime    time.Duration
	FullTime  time.Duration
	PairCount int
	// AR is the paper's metric: additional run time of the proposed
	// framework over the linear superposition run time, in percent.
	AR float64
}

// RunRuntimeCase measures LS and full-framework map times on a random
// placement with the case's density.
func RunRuntimeCase(rc RuntimeCase, seed int64) (*RuntimeResult, error) {
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(rc.NumTSV, rc.Density, 2*st.RPrime+1, seed)
	if err != nil {
		return nil, err
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return nil, err
	}
	// Simulation points: uniform over the placement bounding box.
	rng := rand.New(rand.NewSource(seed + 1))
	b := pl.Bounds(5)
	pts := make([]geom.Point, rc.NumPoints)
	for i := range pts {
		pts[i] = geom.Pt(b.Min.X+rng.Float64()*b.W(), b.Min.Y+rng.Float64()*b.H())
	}

	// One destination buffer serves both sweeps: the timing measures
	// evaluation, not slice churn.
	dst := make([]tensor.Stress, len(pts))
	t0 := time.Now()
	if err := an.MapInto(context.Background(), dst, pts, core.ModeLS); err != nil {
		return nil, err
	}
	lsTime := time.Since(t0)

	t1 := time.Now()
	if err := an.MapInto(context.Background(), dst, pts, core.ModeFull); err != nil {
		return nil, err
	}
	fullTime := time.Since(t1)

	res := &RuntimeResult{Case: rc, LSTime: lsTime, FullTime: fullTime, PairCount: an.NumPairRounds()}
	if lsTime > 0 {
		res.AR = 100 * float64(fullTime-lsTime) / float64(lsTime)
	}
	return res, nil
}

// RunTable6 measures all cases.
func RunTable6(quick bool, seed int64) ([]*RuntimeResult, error) {
	var out []*RuntimeResult
	for _, rc := range Table6Cases(quick) {
		r, err := RunRuntimeCase(rc, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteTable6 renders the scalability table.
func WriteTable6(w io.Writer, results []*RuntimeResult) error {
	if _, err := fmt.Fprintf(w, "### Table 6 — run time of the proposed framework\n\n"); err != nil {
		return err
	}
	tb := &report.Table{Header: []string{
		"Case", "TSV #", "Density (1e-2/µm²)", "Points", "LS time", "PF time", "Pair rounds", "AR (%)",
	}}
	for _, r := range results {
		tb.AddRow(
			r.Case.Name,
			fmt.Sprintf("%d", r.Case.NumTSV),
			fmt.Sprintf("%.2f", r.Case.Density*1e2),
			fmt.Sprintf("%d", r.Case.NumPoints),
			r.LSTime.Round(time.Millisecond).String(),
			r.FullTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", r.PairCount),
			fmt.Sprintf("%.0f", r.AR),
		)
	}
	if err := tb.WriteMarkdown(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}
