package exp

import (
	"strings"
	"testing"
)

const oldBench = `{
  "num_points": 100000, "workers": 1,
  "full_ms": 500.0, "ls_ms": 100.0,
  "full_ns_per_point": 2000.0, "ls_ns_per_point": 400.0,
  "cluster_points_per_sec": 50000.0,
  "generated_at_unix": 1700000000
}`

func compare(t *testing.T, newJSON string, tol float64) []BenchDelta {
	t.Helper()
	deltas, err := CompareBenchJSON(strings.NewReader(oldBench), strings.NewReader(newJSON), tol)
	if err != nil {
		t.Fatal(err)
	}
	return deltas
}

func regressions(deltas []BenchDelta) []string {
	var r []string
	for _, d := range deltas {
		if d.Regression {
			r = append(r, d.Metric)
		}
	}
	return r
}

func TestCompareImprovement(t *testing.T) {
	deltas := compare(t, `{
	  "full_ms": 250.0, "ls_ms": 90.0,
	  "full_ns_per_point": 1000.0, "ls_ns_per_point": 360.0,
	  "cluster_points_per_sec": 100000.0
	}`, 0.10)
	if len(deltas) != 5 {
		t.Fatalf("got %d deltas, want 5 (counts and timestamps must not be compared)", len(deltas))
	}
	if r := regressions(deltas); len(r) != 0 {
		t.Fatalf("improvement flagged as regression: %v", r)
	}
}

func TestCompareDirectionAware(t *testing.T) {
	// Latency up 50% and throughput down 50%: both are regressions;
	// a throughput that merely doubled must not be.
	deltas := compare(t, `{
	  "full_ms": 750.0, "ls_ms": 100.0,
	  "full_ns_per_point": 3000.0, "ls_ns_per_point": 400.0,
	  "cluster_points_per_sec": 25000.0
	}`, 0.10)
	r := regressions(deltas)
	want := []string{"cluster_points_per_sec", "full_ms", "full_ns_per_point"}
	if len(r) != len(want) {
		t.Fatalf("regressions %v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("regressions %v, want %v", r, want)
		}
	}
}

func TestCompareToleranceAbsorbsNoise(t *testing.T) {
	// 8% slower is inside a 10% tolerance, outside a 5% one.
	noisy := `{
	  "full_ms": 540.0, "ls_ms": 100.0,
	  "full_ns_per_point": 2160.0, "ls_ns_per_point": 400.0,
	  "cluster_points_per_sec": 50000.0
	}`
	if r := regressions(compare(t, noisy, 0.10)); len(r) != 0 {
		t.Fatalf("8%% slip beyond 10%% tolerance: %v", r)
	}
	if r := regressions(compare(t, noisy, 0.05)); len(r) != 2 {
		t.Fatalf("8%% slip inside 5%% tolerance: %v", r)
	}
}

func TestCompareNoSharedMetrics(t *testing.T) {
	if _, err := CompareBenchJSON(strings.NewReader(`{"a": 1}`), strings.NewReader(`{"b": 2}`), 0.1); err == nil {
		t.Fatal("records with no shared metrics compared without error")
	}
}

func TestWriteBenchDeltas(t *testing.T) {
	deltas := compare(t, `{
	  "full_ms": 750.0, "ls_ms": 90.0,
	  "full_ns_per_point": 3000.0, "ls_ns_per_point": 360.0,
	  "cluster_points_per_sec": 50000.0
	}`, 0.10)
	var sb strings.Builder
	n, err := WriteBenchDeltas(&sb, deltas)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("%d regressions written, want 2", n)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "full_ms") {
		t.Fatalf("table missing expected content:\n%s", out)
	}
}
