package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"tsvstress/internal/cluster"
	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// ClusterBench is one measured cluster-tier sweep, emitted as
// BENCH_cluster.json. It records the same full-chip Full-mode map three
// ways — single process, a one-worker cluster (protocol overhead
// baseline) and the whole fleet — plus the parity check the cluster
// must pass against the single-process result.
type ClusterBench struct {
	NumTSV     int `json:"num_tsv"`
	NumPoints  int `json:"num_points"`
	NumWorkers int `json:"num_workers"`
	// WorkerCores is each worker's advertised tile-parallelism budget.
	WorkerCores []int `json:"worker_cores"`
	// HostCPUs is how many CPUs the benchmarking host exposes. Read the
	// speedup against it: workers are compute-bound, so a fleet sharing
	// one core cannot beat one worker on wall-clock no matter how well
	// the scheduler does — speedup ≈ 1.0 is the ceiling there, and the
	// number only becomes a scaling measurement when the workers own
	// disjoint cores (separate hosts, or HostCPUs ≥ fleet size).
	HostCPUs int `json:"host_cpus"`

	SingleProcessMillis float64 `json:"single_process_ms"`
	OneWorkerMillis     float64 `json:"one_worker_ms"`
	ClusterMillis       float64 `json:"cluster_ms"`
	// Speedup is OneWorkerMillis / ClusterMillis: what adding the rest
	// of the fleet buys over one worker, protocol overhead included in
	// both. See HostCPUs for how to interpret it.
	Speedup float64 `json:"speedup_vs_one_worker"`
	// SpeedupValid is false when the fleet outnumbers the host's CPUs:
	// workers then share cores and Speedup measures scheduler overhead,
	// not scaling. Consumers (and the tsvexp headline) must not quote
	// Speedup when this is false.
	SpeedupValid bool `json:"speedup_valid"`
	// PointsPerSec is the fleet's map throughput (points evaluated per
	// second of wall time, protocol overhead included).
	PointsPerSec float64 `json:"cluster_points_per_sec"`
	// MaxAbsDiffMPa is the worst per-component deviation of the cluster
	// map from the single-process map (the ≤1e-9 MPa parity pin).
	MaxAbsDiffMPa float64 `json:"max_abs_diff_mpa"`

	Chunks          int64 `json:"chunks"`
	Steals          int64 `json:"steals"`
	Requeues        int64 `json:"requeues"`
	GeneratedAtUnix int64 `json:"generated_at_unix"`
}

// ParityBudgetMPa is the acceptance bound on cluster-vs-single-process
// deviation. The implementation is bit-identical by construction, so
// any nonzero deviation is a bug; the budget just leaves the check
// meaningful if the kernel ever reorders its accumulation.
const ParityBudgetMPa = 1e-9

// RunClusterBench measures the cluster tier over the given worker
// fleet on the standard full-chip problem (same placement and grid
// construction as RunFullChipBench). It fails if the cluster map
// deviates from the single-process map by more than ParityBudgetMPa.
func RunClusterBench(numTSV, numPoints int, seed int64, addrs []string) (*ClusterBench, error) {
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(numTSV, 1e-2, 2*st.RPrime+1, seed)
	if err != nil {
		return nil, err
	}
	region := pl.Bounds(5)
	spacing := spacingFor(region.Area(), float64(numPoints)*1.15)
	g, err := field.NewGrid(region, spacing)
	if err != nil {
		return nil, err
	}
	pts := field.Masked(g.Points(), field.OutsideTSVs(pl, st.RPrime))
	ctx := context.Background()

	// Single-process reference.
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return nil, err
	}
	want := make([]tensor.Stress, len(pts))
	t0 := time.Now()
	if err := an.MapInto(ctx, want, pts, core.ModeFull); err != nil {
		return nil, err
	}
	singleMs := millis(time.Since(t0))

	mapVia := func(workerAddrs []string) (float64, []tensor.Stress, cluster.Stats, []int, error) {
		c, err := cluster.NewCoordinator(workerAddrs, cluster.CoordinatorOptions{})
		if err != nil {
			return 0, nil, cluster.Stats{}, nil, err
		}
		defer c.Close()
		if err := c.Ping(ctx); err != nil {
			return 0, nil, cluster.Stats{}, nil, err
		}
		var cores []int
		for _, w := range c.Workers() {
			cores = append(cores, w.Cores)
		}
		// One untimed warm-up map so the timed run measures steady state:
		// a real fleet's pitch-keyed coefficient caches start cold, and
		// the first map pays that fill exactly once per worker process.
		dst := make([]tensor.Stress, len(pts))
		if err := c.Map(ctx, dst, st, pl, pts, core.ModeFull, core.Options{}); err != nil {
			return 0, nil, cluster.Stats{}, nil, err
		}
		t := time.Now()
		if err := c.Map(ctx, dst, st, pl, pts, core.ModeFull, core.Options{}); err != nil {
			return 0, nil, cluster.Stats{}, nil, err
		}
		return millis(time.Since(t)), dst, c.Stats(), cores, nil
	}

	// Protocol-overhead baseline: the same map through one worker.
	oneMs, _, _, _, err := mapVia(addrs[:1])
	if err != nil {
		return nil, fmt.Errorf("one-worker map: %w", err)
	}
	// The fleet.
	clusterMs, got, stats, cores, err := mapVia(addrs)
	if err != nil {
		return nil, fmt.Errorf("cluster map: %w", err)
	}

	worst := 0.0
	for i := range got {
		if d := maxComponentDiff(got[i], want[i]); d > worst {
			worst = d
		}
	}
	if worst > ParityBudgetMPa {
		return nil, fmt.Errorf("cluster map deviates from single-process by %g MPa (budget %g)", worst, ParityBudgetMPa)
	}

	return &ClusterBench{
		NumTSV:              numTSV,
		NumPoints:           len(pts),
		NumWorkers:          len(addrs),
		WorkerCores:         cores,
		HostCPUs:            runtime.NumCPU(),
		SingleProcessMillis: singleMs,
		OneWorkerMillis:     oneMs,
		ClusterMillis:       clusterMs,
		Speedup:             oneMs / clusterMs,
		SpeedupValid:        runtime.NumCPU() >= len(addrs),
		PointsPerSec:        float64(len(pts)) / (clusterMs / 1e3),
		MaxAbsDiffMPa:       worst,
		Chunks:              stats.Chunks,
		Steals:              stats.Steals,
		Requeues:            stats.Requeues,
		GeneratedAtUnix:     time.Now().Unix(),
	}, nil
}

func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func maxComponentDiff(a, b tensor.Stress) float64 {
	d := abs(a.XX - b.XX)
	if v := abs(a.YY - b.YY); v > d {
		d = v
	}
	if v := abs(a.XY - b.XY); v > d {
		d = v
	}
	return d
}

// WriteClusterJSON writes the benchmark record as indented JSON.
func WriteClusterJSON(w io.Writer, r *ClusterBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
