package exp

import (
	"bytes"
	"strings"
	"testing"

	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
)

// The headline end-to-end claim of the paper, in Quick mode: PF must
// beat LS on every reported statistic of the two-TSV case at tight
// pitch, against our own FEM golden.
func TestPairCasePFBeatsLS(t *testing.T) {
	if testing.Short() {
		t.Skip("FEM-backed experiment")
	}
	pc, err := RunPairCase(Config{Quick: true}, material.BCB, 8)
	if err != nil {
		t.Fatal(err)
	}
	ls, pf, err := pc.Rows(metrics.SigmaXX)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("d=8 BCB sxx: LS avg=%.2f rate50=%.1f%% crit=%.1f%% | PF avg=%.2f rate50=%.1f%% crit=%.1f%%",
		ls.Avg.AvgError, ls.Thresh50.AvgErrorRate, ls.Critical50.AvgErrorRate,
		pf.Avg.AvgError, pf.Thresh50.AvgErrorRate, pf.Critical50.AvgErrorRate)
	if pf.Avg.AvgError >= ls.Avg.AvgError {
		t.Errorf("PF avg error %.3f not below LS %.3f", pf.Avg.AvgError, ls.Avg.AvgError)
	}
	if pf.Critical50.AvgErrorRate >= ls.Critical50.AvgErrorRate {
		t.Errorf("PF critical rate %.2f not below LS %.2f",
			pf.Critical50.AvgErrorRate, ls.Critical50.AvgErrorRate)
	}
	if ls.Critical50.N == 0 {
		t.Error("critical region has no points above threshold")
	}
	// Von Mises must improve too (Table 3 behaviour).
	lsv, pfv, err := pc.Rows(metrics.VonMises)
	if err != nil {
		t.Fatal(err)
	}
	if pfv.Avg.AvgError >= lsv.Avg.AvgError {
		t.Errorf("von Mises: PF %.3f not below LS %.3f", pfv.Avg.AvgError, lsv.Avg.AvgError)
	}
}

func TestLineScanShape(t *testing.T) {
	if testing.Short() {
		t.Skip("FEM-backed experiment")
	}
	sc, err := RunLineScan(Config{Quick: true}, material.BCB, 10, 20, 81)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.X) == 0 || len(sc.X) != len(sc.FEM) || len(sc.X) != len(sc.LS) {
		t.Fatalf("scan sizes: %d/%d/%d", len(sc.X), len(sc.FEM), len(sc.LS))
	}
	// Fig. 3 behaviour: LS overestimates σxx between the TSVs; count
	// the points between the vias where LS > FEM.
	over, n := 0, 0
	var sumLSErr, sumPFErr float64
	for i, x := range sc.X {
		if x > -5+3 && x < 5-3 {
			n++
			if sc.LS[i] > sc.FEM[i] {
				over++
			}
		}
		sumLSErr += abs(sc.LS[i] - sc.FEM[i])
		sumPFErr += abs(sc.PF[i] - sc.FEM[i])
	}
	if n == 0 || float64(over) < 0.8*float64(n) {
		t.Errorf("LS should overestimate between TSVs: %d/%d points", over, n)
	}
	if sumPFErr >= sumLSErr {
		t.Errorf("PF scan error %.2f not below LS %.2f", sumPFErr, sumLSErr)
	}
	var buf bytes.Buffer
	if err := sc.Write(&buf, "fig3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FEM") {
		t.Error("plot legend missing")
	}
}

func TestTable6QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	// Only cases 1, 5, 7 in the unit test to keep it fast; the
	// structural claims: AR is finite and positive, and the pair count
	// scales with TSV count and density.
	for _, rc := range []RuntimeCase{
		{"1", 100, 1e-2, 20000},
		{"5", 100, 0.25e-2, 20000},
	} {
		r, err := RunRuntimeCase(rc, 11)
		if err != nil {
			t.Fatal(err)
		}
		if r.LSTime <= 0 || r.FullTime < r.LSTime {
			t.Errorf("case %s: times LS=%v full=%v", rc.Name, r.LSTime, r.FullTime)
		}
		if r.AR < 0 {
			t.Errorf("case %s: AR = %v", rc.Name, r.AR)
		}
		t.Logf("case %s: LS=%v PF=%v AR=%.0f%% pairs=%d", rc.Name, r.LSTime, r.FullTime, r.AR, r.PairCount)
	}
	var buf bytes.Buffer
	r, err := RunRuntimeCase(RuntimeCase{"t", 50, 1e-2, 5000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTable6(&buf, []*RuntimeResult{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AR (%)") {
		t.Error("table header missing")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FEMH != 0.25 || c.PointSpacing != 0.25 || c.Margin != 12 {
		t.Errorf("defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.FEMH != 0.5 || q.PointSpacing != 0.5 {
		t.Errorf("quick defaults = %+v", q)
	}
	if _, ok := Liner("bcb"); !ok {
		t.Error("bcb liner missing")
	}
	if _, ok := Liner("sio2"); !ok {
		t.Error("sio2 liner missing")
	}
	if _, ok := Liner("nope"); ok {
		t.Error("unknown liner should fail")
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	for _, tb := range []PaperTable{PaperTable1, PaperTable3, PaperTable4, PaperTable5} {
		for _, d := range Pitches {
			if _, ok := tb.LS[d]; !ok {
				t.Errorf("%s: missing LS pitch %g", tb.Title, d)
			}
			if _, ok := tb.PF[d]; !ok {
				t.Errorf("%s: missing PF pitch %g", tb.Title, d)
			}
		}
		// PF must beat LS in the published critical-region rates — a
		// transcription sanity check.
		for d, ls := range tb.LS {
			if pf := tb.PF[d]; pf.CritRate >= ls.CritRate {
				t.Errorf("%s d=%g: paper PF rate %.2f >= LS %.2f?", tb.Title, d, pf.CritRate, ls.CritRate)
			}
		}
	}
	if len(PaperTable2) != 4 || len(PaperTable6AR) != 7 {
		t.Error("paper tables 2/6 incomplete")
	}
}
