package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// BenchDelta is one metric's before/after comparison.
type BenchDelta struct {
	Metric string
	Old    float64
	New    float64
	// Frac is the signed fractional change in the metric's value
	// (New/Old - 1); Regression says whether that change is a
	// performance loss under the metric's direction.
	Frac       float64
	Regression bool
}

// lowerIsBetter classifies a benchmark metric's direction from its
// name: latencies and per-point costs shrink when performance improves,
// throughputs grow. Metrics that are neither (counts, ids, timestamps,
// parity checks) are not compared at all.
func lowerIsBetter(key string) (lower, comparable bool) {
	switch {
	case strings.HasSuffix(key, "_ns_per_point"), strings.HasSuffix(key, "_ms"):
		return true, true
	case strings.HasSuffix(key, "points_per_sec"):
		return false, true
	}
	return false, false
}

// CompareBenchJSON reads two benchmark records (any of the BENCH_*.json
// shapes — the metric set is discovered from the keys) and returns the
// per-metric deltas for every comparable metric present in both, sorted
// by name. tol is the fractional change below which a loss is noise,
// not a regression (0.10 = 10%).
func CompareBenchJSON(oldR, newR io.Reader, tol float64) ([]BenchDelta, error) {
	oldM, err := decodeMetrics(oldR)
	if err != nil {
		return nil, fmt.Errorf("old record: %w", err)
	}
	newM, err := decodeMetrics(newR)
	if err != nil {
		return nil, fmt.Errorf("new record: %w", err)
	}
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; !ok {
			continue
		}
		if _, cmp := lowerIsBetter(k); cmp {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("records share no comparable metrics")
	}
	sort.Strings(keys)
	deltas := make([]BenchDelta, 0, len(keys))
	for _, k := range keys {
		o, n := oldM[k], newM[k]
		d := BenchDelta{Metric: k, Old: o, New: n}
		if o != 0 {
			d.Frac = n/o - 1
		}
		lower, _ := lowerIsBetter(k)
		if lower {
			d.Regression = d.Frac > tol
		} else {
			d.Regression = d.Frac < -tol
		}
		deltas = append(deltas, d)
	}
	return deltas, nil
}

func decodeMetrics(r io.Reader) (map[string]float64, error) {
	var raw map[string]any
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, err
	}
	m := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			m[k] = f
		}
	}
	return m, nil
}

// WriteBenchDeltas renders the comparison as an aligned table, one
// metric per line, marking regressions. It returns the number of
// regressions.
func WriteBenchDeltas(w io.Writer, deltas []BenchDelta) (int, error) {
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		if _, err := fmt.Fprintf(w, "%-24s %14.2f -> %14.2f  %+7.1f%%%s\n",
			d.Metric, d.Old, d.New, 100*d.Frac, mark); err != nil {
			return regressions, err
		}
	}
	return regressions, nil
}
