// Package exp contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (see DESIGN.md §5 for the
// experiment index). The same drivers back cmd/tsvexp and the
// bench_test.go harness; Quick mode trades resolution for speed so the
// full suite stays runnable in CI.
package exp

import (
	"tsvstress/internal/material"
)

// Config carries the resolution knobs shared by all experiments.
type Config struct {
	// FEMH is the coarse mesh size of the Richardson golden pair in µm
	// (default 0.25; the effective accuracy is that of the h/2 mesh
	// extrapolated, <1% on the single-TSV K).
	FEMH float64
	// PointSpacing is the simulation-point lattice spacing in µm
	// (default 0.25).
	PointSpacing float64
	// Margin is the FEM domain margin beyond the monitored region in
	// µm (default 20).
	Margin float64
	// Quick selects reduced resolution for tests and benches.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Quick {
		if c.FEMH <= 0 {
			c.FEMH = 0.5
		}
		if c.PointSpacing <= 0 {
			c.PointSpacing = 0.5
		}
		if c.Margin <= 0 {
			c.Margin = 12
		}
		return c
	}
	if c.FEMH <= 0 {
		c.FEMH = 0.25
	}
	if c.PointSpacing <= 0 {
		c.PointSpacing = 0.25
	}
	if c.Margin <= 0 {
		c.Margin = 12
	}
	return c
}

// Pitches is the pitch sweep of Tables 1 and 3–5 (µm).
var Pitches = []float64{8, 9, 10, 11, 12, 18, 30}

// QuickPitches is the reduced sweep used in Quick mode.
var QuickPitches = []float64{8, 12, 30}

// CriticalRadius is the paper's critical-region radius (µm).
const CriticalRadius = 3.3

// Liner returns the liner material by name ("bcb" or "sio2").
func Liner(name string) (material.Material, bool) {
	switch name {
	case "bcb", "BCB":
		return material.BCB, true
	case "sio2", "SiO2":
		return material.SiO2, true
	}
	return material.Material{}, false
}
