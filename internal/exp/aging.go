package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"tsvstress/internal/aging"
	"tsvstress/internal/core"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/reliability"
)

// AgingPoint is one sweep point of the aging experiment: a regular
// TSV array at one pitch, simulated to failure under one electrical
// assignment.
type AgingPoint struct {
	PitchUm        float64 `json:"pitch_um"`
	MaxParallelism int     `json:"max_parallelism"`
	NumTSVs        int     `json:"num_tsvs"`
	// MeanMaxVonMisesMPa is the placement mean of the per-TSV ring-max
	// von Mises stress — the EM accelerant the curve is driven by.
	MeanMaxVonMisesMPa float64 `json:"mean_max_von_mises_mpa"`
	// Lifetime distribution in seconds.
	MeanLifetimeSeconds float64 `json:"mean_lifetime_s"`
	MinLifetimeSeconds  float64 `json:"min_lifetime_s"`
	P10LifetimeSeconds  float64 `json:"p10_lifetime_s"`
	Censored            int     `json:"censored"`
	// Extrusion distribution: heights in nm, risk dimensionless.
	MeanExtrusionNm float64 `json:"mean_extrusion_nm"`
	MeanRisk        float64 `json:"mean_risk"`
	P90Risk         float64 `json:"p90_risk"`
}

// AgingSweep is the full experiment record, emitted as
// AGING_curves.json and golden-checked in CI: the lifetime-vs-pitch
// curve (fixed parallelism) and the lifetime-vs-parallelism curve
// (fixed pitch).
type AgingSweep struct {
	ArrayNx int    `json:"array_nx"`
	ArrayNy int    `json:"array_ny"`
	NTheta  int    `json:"ntheta"`
	Liner   string `json:"liner"`
	// PitchCurve sweeps the array pitch at MaxParallelism 16: tighter
	// pitch → higher local stress → shorter lifetime, higher risk.
	PitchCurve []AgingPoint `json:"pitch_curve"`
	// ParallelismCurve sweeps the starting parallelism at fixed pitch:
	// each extra halving level trades early current for redundancy.
	ParallelismCurve []AgingPoint `json:"parallelism_curve"`
	ElapsedMillis    float64      `json:"elapsed_ms"`
	GeneratedAtUnix  int64        `json:"generated_at_unix"`
}

// agingPitches is the pitch sweep in µm, descending so the curve reads
// loose-to-tight; agingPitchFixed is the parallelism sweep's pitch.
var (
	agingPitches       = []float64{20, 15, 12, 10, 8}
	agingQuickPitches  = []float64{15, 10}
	agingParallelisms  = []int{2, 4, 8, 16}
	agingPitchFixed    = 10.0
	agingQuickParallel = []int{4, 16}
)

// agingCase evaluates one array: build the analyzer, digest every
// via's interface ring, run the serial (reference) simulation.
func agingCase(nx, ny int, pitch float64, nTheta int, drive aging.Drive) (AgingPoint, error) {
	st := material.Baseline(material.BCB)
	pl := placegen.Array(nx, ny, pitch)
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return AgingPoint{}, err
	}
	reports, err := reliability.Screen(pl, st, an.StressAt, reliability.Options{NTheta: nTheta})
	if err != nil {
		return AgingPoint{}, err
	}
	sums := reliability.Summarize(reports)
	res, err := aging.Simulate(context.Background(), aging.Config{}, sums, aging.UniformDrives(drive, len(sums)))
	if err != nil {
		return AgingPoint{}, err
	}
	meanVM := 0.0
	for _, s := range sums {
		meanVM += s.MaxVonMises / float64(len(sums))
	}
	return AgingPoint{
		PitchUm:             pitch,
		MaxParallelism:      drive.MaxParallelism,
		NumTSVs:             len(sums),
		MeanMaxVonMisesMPa:  meanVM,
		MeanLifetimeSeconds: res.Stats.MeanLifetimeSeconds,
		MinLifetimeSeconds:  res.Stats.MinLifetimeSeconds,
		P10LifetimeSeconds:  res.Stats.P10LifetimeSeconds,
		Censored:            res.Stats.NumCensored,
		MeanExtrusionNm:     res.Stats.MeanExtrusionNm,
		MeanRisk:            res.Stats.MeanRisk,
		P90Risk:             res.Stats.P90Risk,
	}, nil
}

// RunAgingSweep runs the aging experiment on 5×5 arrays: the
// lifetime-vs-pitch curve at MaxParallelism 16 and the
// lifetime-vs-parallelism curve at pitch 10 µm. Everything is
// deterministic — regular placements, the serial reference simulation,
// default model constants — so the emitted record is comparable
// against the checked-in golden.
func RunAgingSweep(quick bool) (*AgingSweep, error) {
	pitches, parallelisms := agingPitches, agingParallelisms
	if quick {
		pitches, parallelisms = agingQuickPitches, agingQuickParallel
	}
	const nx, ny, nTheta = 5, 5, 72
	t0 := time.Now()
	sweep := &AgingSweep{ArrayNx: nx, ArrayNy: ny, NTheta: nTheta, Liner: "bcb"}
	for _, pitch := range pitches {
		pt, err := agingCase(nx, ny, pitch, nTheta, aging.DefaultDrive())
		if err != nil {
			return nil, fmt.Errorf("pitch %g: %w", pitch, err)
		}
		sweep.PitchCurve = append(sweep.PitchCurve, pt)
	}
	for _, p := range parallelisms {
		d := aging.DefaultDrive()
		d.MaxParallelism = p
		pt, err := agingCase(nx, ny, agingPitchFixed, nTheta, d)
		if err != nil {
			return nil, fmt.Errorf("parallelism %d: %w", p, err)
		}
		sweep.ParallelismCurve = append(sweep.ParallelismCurve, pt)
	}
	sweep.ElapsedMillis = float64(time.Since(t0).Microseconds()) / 1e3
	sweep.GeneratedAtUnix = time.Now().Unix()
	return sweep, nil
}

// WriteAgingJSON writes the sweep record as indented JSON.
func WriteAgingJSON(w io.Writer, s *AgingSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// CompareAgingJSON checks a freshly emitted sweep against a golden
// record: same curve shapes, every lifetime/risk metric within the
// fractional tolerance, and the pitch curve's monotone trend intact.
// It returns a human-readable report of the per-point deltas and an
// error when the comparison fails — the CI gate.
func CompareAgingJSON(golden, fresh io.Reader, tol float64) (string, error) {
	var g, f AgingSweep
	if err := json.NewDecoder(golden).Decode(&g); err != nil {
		return "", fmt.Errorf("golden: %w", err)
	}
	if err := json.NewDecoder(fresh).Decode(&f); err != nil {
		return "", fmt.Errorf("fresh: %w", err)
	}
	report := ""
	check := func(name string, gc, fc []AgingPoint) error {
		if len(gc) != len(fc) {
			return fmt.Errorf("%s: golden has %d points, fresh has %d", name, len(gc), len(fc))
		}
		for i := range gc {
			if relDelta(gc[i].PitchUm, fc[i].PitchUm) > 0 || gc[i].MaxParallelism != fc[i].MaxParallelism {
				return fmt.Errorf("%s[%d]: sweep coordinates moved (%g/%d vs %g/%d)", name, i,
					gc[i].PitchUm, gc[i].MaxParallelism, fc[i].PitchUm, fc[i].MaxParallelism)
			}
			if gc[i].Censored != fc[i].Censored {
				return fmt.Errorf("%s[%d]: censored count %d vs golden %d", name, i, fc[i].Censored, gc[i].Censored)
			}
			for _, m := range []struct {
				metric string
				gv, fv float64
			}{
				{"mean_lifetime_s", gc[i].MeanLifetimeSeconds, fc[i].MeanLifetimeSeconds},
				{"min_lifetime_s", gc[i].MinLifetimeSeconds, fc[i].MinLifetimeSeconds},
				{"mean_risk", gc[i].MeanRisk, fc[i].MeanRisk},
				{"mean_max_von_mises_mpa", gc[i].MeanMaxVonMisesMPa, fc[i].MeanMaxVonMisesMPa},
			} {
				rel := relDelta(m.gv, m.fv)
				report += fmt.Sprintf("%s[%d] %s: golden %.6g fresh %.6g (Δ %.3g%%)\n",
					name, i, m.metric, m.gv, m.fv, 100*rel)
				if rel > tol {
					return fmt.Errorf("%s[%d]: %s deviates %.3g%% from golden (tolerance %.3g%%)",
						name, i, m.metric, 100*rel, 100*tol)
				}
			}
		}
		return nil
	}
	if err := check("pitch_curve", g.PitchCurve, f.PitchCurve); err != nil {
		return report, err
	}
	if err := check("parallelism_curve", g.ParallelismCurve, f.ParallelismCurve); err != nil {
		return report, err
	}
	if err := CheckAgingTrend(&f); err != nil {
		return report, err
	}
	return report, nil
}

// relDelta is the fractional deviation of fresh from golden, safe at
// zero (dimensionless).
func relDelta(golden, fresh float64) float64 {
	d := golden - fresh
	if d < 0 {
		d = -d
	}
	mag := golden
	if mag < 0 {
		mag = -mag
	}
	if mag == 0 {
		if d == 0 {
			return 0
		}
		return 1
	}
	return d / mag
}

// CheckAgingTrend asserts the physical trend the extrusion paper
// motivates and the stress coupling must reproduce: along the
// descending-pitch curve, local stress and extrusion risk rise
// monotonically and EM lifetime falls monotonically.
func CheckAgingTrend(s *AgingSweep) error {
	for i := 1; i < len(s.PitchCurve); i++ {
		prev, cur := s.PitchCurve[i-1], s.PitchCurve[i]
		if cur.PitchUm >= prev.PitchUm {
			return fmt.Errorf("pitch_curve not descending in pitch: %g after %g", cur.PitchUm, prev.PitchUm)
		}
		if cur.MeanMaxVonMisesMPa <= prev.MeanMaxVonMisesMPa {
			return fmt.Errorf("pitch %g→%g: mean max von Mises fell %.6g→%.6g MPa — tighter pitch must raise local stress",
				prev.PitchUm, cur.PitchUm, prev.MeanMaxVonMisesMPa, cur.MeanMaxVonMisesMPa)
		}
		if cur.MeanLifetimeSeconds >= prev.MeanLifetimeSeconds {
			return fmt.Errorf("pitch %g→%g: mean lifetime rose %.6g→%.6g s — tighter pitch must age faster",
				prev.PitchUm, cur.PitchUm, prev.MeanLifetimeSeconds, cur.MeanLifetimeSeconds)
		}
		if cur.MeanRisk <= prev.MeanRisk {
			return fmt.Errorf("pitch %g→%g: mean extrusion risk fell %.6g→%.6g — tighter pitch must raise risk",
				prev.PitchUm, cur.PitchUm, prev.MeanRisk, cur.MeanRisk)
		}
	}
	return nil
}
