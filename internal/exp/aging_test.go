package exp

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// goldenAgingPath is the checked-in record the CI aging job and this
// test both gate against.
const goldenAgingPath = "../../results/AGING_curves.json"

func runFullAgingSweep(t *testing.T) *AgingSweep {
	t.Helper()
	sweep, err := RunAgingSweep(false)
	if err != nil {
		t.Fatal(err)
	}
	return sweep
}

func encodeAging(t *testing.T, s *AgingSweep) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAgingJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAgingGolden regenerates the full sweep and holds it to the
// checked-in golden: deterministic inputs, so the tolerance only has
// to absorb cross-platform floating-point variation.
func TestAgingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full aging sweep in -short mode")
	}
	golden, err := os.ReadFile(goldenAgingPath)
	if err != nil {
		t.Fatalf("golden record missing (regenerate with tsvexp -aging): %v", err)
	}
	fresh := encodeAging(t, runFullAgingSweep(t))
	report, err := CompareAgingJSON(bytes.NewReader(golden), bytes.NewReader(fresh), 0.01)
	if err != nil {
		t.Fatalf("fresh sweep deviates from golden:\n%s\n%v", report, err)
	}
}

// TestAgingTrend asserts the paper's pitch dependence on a freshly
// computed curve, independent of the golden file.
func TestAgingTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("full aging sweep in -short mode")
	}
	sweep := runFullAgingSweep(t)
	if err := CheckAgingTrend(sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.PitchCurve) != len(agingPitches) {
		t.Fatalf("pitch curve has %d points, want %d", len(sweep.PitchCurve), len(agingPitches))
	}
	if len(sweep.ParallelismCurve) != len(agingParallelisms) {
		t.Fatalf("parallelism curve has %d points, want %d", len(sweep.ParallelismCurve), len(agingParallelisms))
	}
	for _, pt := range sweep.PitchCurve {
		if pt.NumTSVs != 25 {
			t.Fatalf("pitch %g: %d TSVs, want 25", pt.PitchUm, pt.NumTSVs)
		}
		if pt.MeanRisk < 0 || pt.MeanRisk > 1 || pt.P90Risk < pt.MeanRisk {
			t.Fatalf("pitch %g: risk stats out of order (mean %g, p90 %g)", pt.PitchUm, pt.MeanRisk, pt.P90Risk)
		}
	}
}

// TestAgingQuickSelfCompare runs the quick sweep and checks that a
// record always matches itself — the compare path's identity case.
func TestAgingQuickSelfCompare(t *testing.T) {
	sweep, err := RunAgingSweep(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.PitchCurve) != len(agingQuickPitches) {
		t.Fatalf("quick pitch curve has %d points, want %d", len(sweep.PitchCurve), len(agingQuickPitches))
	}
	enc := encodeAging(t, sweep)
	report, err := CompareAgingJSON(bytes.NewReader(enc), bytes.NewReader(enc), 0)
	if err != nil {
		t.Fatalf("record does not match itself:\n%s\n%v", report, err)
	}
	if !strings.Contains(report, "mean_lifetime_s") {
		t.Fatalf("report missing per-metric deltas:\n%s", report)
	}
}

// TestCompareAgingRejects drives the compare gate through its failure
// modes on a synthetic pair of records.
func TestCompareAgingRejects(t *testing.T) {
	sweep, err := RunAgingSweep(true)
	if err != nil {
		t.Fatal(err)
	}
	golden := encodeAging(t, sweep)

	t.Run("metric_deviation", func(t *testing.T) {
		mod := *sweep
		mod.PitchCurve = append([]AgingPoint(nil), sweep.PitchCurve...)
		mod.PitchCurve[0].MeanLifetimeSeconds *= 1.10
		if _, err := CompareAgingJSON(bytes.NewReader(golden), bytes.NewReader(encodeAging(t, &mod)), 0.02); err == nil {
			t.Fatal("10% lifetime shift passed a 2% tolerance")
		}
	})
	t.Run("coordinate_moved", func(t *testing.T) {
		mod := *sweep
		mod.PitchCurve = append([]AgingPoint(nil), sweep.PitchCurve...)
		mod.PitchCurve[0].PitchUm = 99
		if _, err := CompareAgingJSON(bytes.NewReader(golden), bytes.NewReader(encodeAging(t, &mod)), 0.02); err == nil {
			t.Fatal("moved sweep coordinate passed the gate")
		}
	})
	t.Run("censoring_appeared", func(t *testing.T) {
		mod := *sweep
		mod.PitchCurve = append([]AgingPoint(nil), sweep.PitchCurve...)
		mod.PitchCurve[0].Censored = 3
		if _, err := CompareAgingJSON(bytes.NewReader(golden), bytes.NewReader(encodeAging(t, &mod)), 0.02); err == nil {
			t.Fatal("new censoring passed the gate")
		}
	})
	t.Run("point_count", func(t *testing.T) {
		mod := *sweep
		mod.PitchCurve = sweep.PitchCurve[:1]
		if _, err := CompareAgingJSON(bytes.NewReader(golden), bytes.NewReader(encodeAging(t, &mod)), 0.02); err == nil {
			t.Fatal("truncated curve passed the gate")
		}
	})
}

// TestCheckAgingTrendRejects breaks each gated trend in turn.
func TestCheckAgingTrendRejects(t *testing.T) {
	base := func() *AgingSweep {
		return &AgingSweep{PitchCurve: []AgingPoint{
			{PitchUm: 20, MeanMaxVonMisesMPa: 100, MeanLifetimeSeconds: 4e8, MeanRisk: 0.2},
			{PitchUm: 10, MeanMaxVonMisesMPa: 150, MeanLifetimeSeconds: 3e8, MeanRisk: 0.6},
		}}
	}
	if err := CheckAgingTrend(base()); err != nil {
		t.Fatalf("well-formed trend rejected: %v", err)
	}
	for name, breakIt := range map[string]func(*AgingSweep){
		"pitch_not_descending": func(s *AgingSweep) { s.PitchCurve[1].PitchUm = 25 },
		"stress_fell":          func(s *AgingSweep) { s.PitchCurve[1].MeanMaxVonMisesMPa = 90 },
		"lifetime_rose":        func(s *AgingSweep) { s.PitchCurve[1].MeanLifetimeSeconds = 5e8 },
		"risk_fell":            func(s *AgingSweep) { s.PitchCurve[1].MeanRisk = 0.1 },
	} {
		s := base()
		breakIt(s)
		if err := CheckAgingTrend(s); err == nil {
			t.Fatalf("%s: broken trend accepted", name)
		}
	}
}
