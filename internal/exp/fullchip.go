package exp

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"time"

	"tsvstress/internal/core"
	"tsvstress/internal/field"
	"tsvstress/internal/material"
	"tsvstress/internal/placegen"
	"tsvstress/internal/tensor"
)

// FullChipBench is one measured full-chip sweep, emitted as
// BENCH_fullchip.json so the performance trajectory is tracked across
// PRs. Times are wall-clock through the tile-batched engine.
type FullChipBench struct {
	NumTSV          int     `json:"num_tsv"`
	Density         float64 `json:"density_per_um2"`
	NumPoints       int     `json:"num_points"`
	PairRounds      int     `json:"pair_rounds"`
	Workers         int     `json:"workers"`
	BuildMillis     float64 `json:"build_ms"`
	LSMillis        float64 `json:"ls_ms"`
	FullMillis      float64 `json:"full_ms"`
	LSNsPerPoint    float64 `json:"ls_ns_per_point"`
	FullNsPerPoint  float64 `json:"full_ns_per_point"`
	CoeffCacheSize  int     `json:"coeff_cache_entries"`
	CoeffCacheHits  int     `json:"coeff_cache_hits"`
	GeneratedAtUnix int64   `json:"generated_at_unix"`
}

// RunFullChipBench builds a numTSV random placement at the paper's
// 1e-2/µm² density, lays a device-layer grid of about numPoints
// simulation points over it (TSV footprints masked), and times one LS
// and one Full sweep through Map's tile-batched engine, reusing a
// single destination buffer across the sweeps.
func RunFullChipBench(numTSV, numPoints int, seed int64) (*FullChipBench, error) {
	st := material.Baseline(material.BCB)
	pl, err := placegen.Random(numTSV, 1e-2, 2*st.RPrime+1, seed)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return nil, err
	}
	build := time.Since(t0)

	region := pl.Bounds(5)
	// Oversample ~15% so the footprint mask still leaves ~numPoints.
	spacing := spacingFor(region.Area(), float64(numPoints)*1.15)
	g, err := field.NewGrid(region, spacing)
	if err != nil {
		return nil, err
	}
	pts := field.Masked(g.Points(), field.OutsideTSVs(pl, st.RPrime))

	dst := make([]tensor.Stress, len(pts))
	t1 := time.Now()
	if err := an.MapInto(context.Background(), dst, pts, core.ModeLS); err != nil {
		return nil, err
	}
	lsTime := time.Since(t1)
	t2 := time.Now()
	if err := an.MapInto(context.Background(), dst, pts, core.ModeFull); err != nil {
		return nil, err
	}
	fullTime := time.Since(t2)

	entries, hits := an.Model.CoeffCacheStats()
	n := float64(len(pts))
	return &FullChipBench{
		NumTSV:          numTSV,
		Density:         1e-2,
		NumPoints:       len(pts),
		PairRounds:      an.NumPairRounds(),
		Workers:         an.Options().Workers,
		BuildMillis:     float64(build.Microseconds()) / 1e3,
		LSMillis:        float64(lsTime.Microseconds()) / 1e3,
		FullMillis:      float64(fullTime.Microseconds()) / 1e3,
		LSNsPerPoint:    float64(lsTime.Nanoseconds()) / n,
		FullNsPerPoint:  float64(fullTime.Nanoseconds()) / n,
		CoeffCacheSize:  entries,
		CoeffCacheHits:  hits,
		GeneratedAtUnix: time.Now().Unix(),
	}, nil
}

// spacingFor returns the grid spacing that yields about want points
// over an area in µm².
func spacingFor(area, want float64) float64 {
	if want <= 0 || area <= 0 {
		return 1
	}
	return math.Sqrt(area / want)
}

// WriteFullChipJSON writes the benchmark record as indented JSON.
func WriteFullChipJSON(w io.Writer, r *FullChipBench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
