package exp

import (
	"fmt"
	"io"

	"tsvstress/internal/core"
	"tsvstress/internal/fem"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
	"tsvstress/internal/placegen"
	"tsvstress/internal/report"
	"tsvstress/internal/tensor"
)

// FiveCase is the solved five-TSV experiment of Section 5.2 (Figures 5
// and 6, Table 2).
type FiveCase struct {
	Placement               *geom.Placement
	Monitored               []geom.Point
	Critical                []geom.Point
	GoldenMon, LSMon, PFMon []tensor.Stress
	GoldenCrt, LSCrt, PFCrt []tensor.Stress
	NX, NY                  int
	Region                  geom.Rect
}

// monitoredRegion5 is the 60×60 µm monitored region of Section 5.2.
func monitoredRegion5() geom.Rect { return geom.RectAround(geom.Pt(0, 0), 60, 60) }

// RunFiveCase solves the five-TSV experiment (min pitch 10 µm, BCB).
func RunFiveCase(cfg Config) (*FiveCase, error) {
	cfg = cfg.withDefaults()
	st := material.Baseline(material.BCB)
	pl := placegen.FiveCross(10)
	region := monitoredRegion5()

	golden, err := fem.SolveSubmodel(pl, st, fem.DomainFor(pl, st, region, cfg.Margin),
		fem.SubmodelOptions{GlobalH: cfg.FEMH})
	if err != nil {
		return nil, fmt.Errorf("exp: five-TSV: %w", err)
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return nil, err
	}
	grid, err := field.NewGrid(region, cfg.PointSpacing)
	if err != nil {
		return nil, err
	}
	outside := field.OutsideTSVs(pl, st.RPrime)
	mon := field.Masked(grid.Points(), outside)
	crt := field.Masked(grid.Points(), outside, field.WithinAnyTSV(pl, CriticalRadius))

	fc := &FiveCase{Placement: pl, Monitored: mon, Critical: crt, NX: grid.NX, NY: grid.NY, Region: region}
	fc.GoldenMon = sampleFEM(golden, mon)
	fc.LSMon = an.Map(mon, core.ModeLS)
	fc.PFMon = an.Map(mon, core.ModeFull)
	fc.GoldenCrt = sampleFEM(golden, crt)
	fc.LSCrt = an.Map(crt, core.ModeLS)
	fc.PFCrt = an.Map(crt, core.ModeFull)
	return fc, nil
}

// Rows computes the Table-2 statistics for one component.
func (fc *FiveCase) Rows(comp metrics.Component) (ls, pf metrics.Row, err error) {
	ls, err = metrics.TableRow(fc.GoldenMon, fc.LSMon, fc.GoldenCrt, fc.LSCrt, comp)
	if err != nil {
		return
	}
	pf, err = metrics.TableRow(fc.GoldenMon, fc.PFMon, fc.GoldenCrt, fc.PFCrt, comp)
	return
}

// WriteTable renders Table 2 (σxx and von Mises for LS and PF).
func (fc *FiveCase) WriteTable(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", title); err != nil {
		return err
	}
	tb := &report.Table{Header: report.PaperHeader("Method", "Stress")}
	for _, c := range []struct {
		name string
		comp metrics.Component
	}{{"sxx", metrics.SigmaXX}, {"vonMises", metrics.VonMises}} {
		ls, pf, err := fc.Rows(c.comp)
		if err != nil {
			return err
		}
		tb.AddRow(append([]string{"LS", c.name}, report.PaperRowCells(ls)...)...)
		tb.AddRow(append([]string{"PF", c.name}, report.PaperRowCells(pf)...)...)
	}
	if err := tb.WriteMarkdown(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ErrorMaps builds the Figure-6 style |σxx error| maps.
func (fc *FiveCase) ErrorMaps(cfg Config) (*ErrorMaps, error) {
	cfg = cfg.withDefaults()
	grid, err := field.NewGrid(fc.Region, cfg.PointSpacing)
	if err != nil {
		return nil, err
	}
	em := &ErrorMaps{NX: grid.NX, NY: grid.NY}
	em.LS = make([]float64, grid.Len())
	em.PF = make([]float64, grid.Len())
	idx := 0
	for i, p := range grid.Points() {
		//tsvlint:ignore floatcmp lockstep lattice identity: Monitored holds verbatim copies of these grid points
		if idx < len(fc.Monitored) && fc.Monitored[idx] == p {
			em.LS[i] = fc.LSMon[idx].XX - fc.GoldenMon[idx].XX
			em.PF[i] = fc.PFMon[idx].XX - fc.GoldenMon[idx].XX
			if a := abs(em.LS[i]); a > em.MaxLS {
				em.MaxLS = a
			}
			if a := abs(em.PF[i]); a > em.MaxPF {
				em.MaxPF = a
			}
			idx++
		}
	}
	return em, nil
}
