package exp

import (
	"fmt"
	"io"

	"tsvstress/internal/core"
	"tsvstress/internal/fem"
	"tsvstress/internal/field"
	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/metrics"
	"tsvstress/internal/placegen"
	"tsvstress/internal/report"
	"tsvstress/internal/tensor"
)

// PairCase is the solved two-TSV configuration at one pitch: the FEM
// golden and both analytical fields sampled on the monitored and
// critical point sets.
type PairCase struct {
	D         float64
	Monitored []geom.Point
	Critical  []geom.Point
	GoldenMon []tensor.Stress
	LSMon     []tensor.Stress
	PFMon     []tensor.Stress
	GoldenCrt []tensor.Stress
	LSCrt     []tensor.Stress
	PFCrt     []tensor.Stress
	// Grid dimensions of the monitored lattice (for error maps).
	NX, NY int
}

// monitoredRegion2 is the 60×30 µm monitored region of Section 5.1.
func monitoredRegion2() geom.Rect { return geom.RectAround(geom.Pt(0, 0), 60, 30) }

// RunPairCase solves the two-TSV experiment at one pitch.
func RunPairCase(cfg Config, liner material.Material, d float64) (*PairCase, error) {
	cfg = cfg.withDefaults()
	st := material.Baseline(liner)
	pl := placegen.Pair(d)
	region := monitoredRegion2()

	golden, err := fem.SolveSubmodel(pl, st, fem.DomainFor(pl, st, region, cfg.Margin),
		fem.SubmodelOptions{GlobalH: cfg.FEMH})
	if err != nil {
		return nil, fmt.Errorf("exp: pair d=%g: %w", d, err)
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return nil, err
	}

	grid, err := field.NewGrid(region, cfg.PointSpacing)
	if err != nil {
		return nil, err
	}
	outside := field.OutsideTSVs(pl, st.RPrime)
	mon := field.Masked(grid.Points(), outside)
	crt := field.Masked(grid.Points(), outside, field.WithinAnyTSV(pl, CriticalRadius))

	pc := &PairCase{D: d, Monitored: mon, Critical: crt, NX: grid.NX, NY: grid.NY}
	pc.GoldenMon = sampleFEM(golden, mon)
	pc.LSMon = an.Map(mon, core.ModeLS)
	pc.PFMon = an.Map(mon, core.ModeFull)
	pc.GoldenCrt = sampleFEM(golden, crt)
	pc.LSCrt = an.Map(crt, core.ModeLS)
	pc.PFCrt = an.Map(crt, core.ModeFull)
	return pc, nil
}

func sampleFEM(f fem.Field, pts []geom.Point) []tensor.Stress {
	out := make([]tensor.Stress, len(pts))
	for i, p := range pts {
		out[i] = f.StressAt(p)
	}
	return out
}

// Rows computes the Table-1-layout statistics of the case for one
// component, for LS and PF.
func (pc *PairCase) Rows(comp metrics.Component) (ls, pf metrics.Row, err error) {
	ls, err = metrics.TableRow(pc.GoldenMon, pc.LSMon, pc.GoldenCrt, pc.LSCrt, comp)
	if err != nil {
		return
	}
	pf, err = metrics.TableRow(pc.GoldenMon, pc.PFMon, pc.GoldenCrt, pc.PFCrt, comp)
	return
}

// PairSweep is the full pitch sweep for one liner: the data behind
// Tables 1/3 (BCB) or 4/5 (SiO2).
type PairSweep struct {
	Liner   material.Material
	Pitches []float64
	Cases   []*PairCase
}

// RunPairSweep runs the pitch sweep.
func RunPairSweep(cfg Config, liner material.Material, pitches []float64) (*PairSweep, error) {
	sw := &PairSweep{Liner: liner, Pitches: pitches}
	for _, d := range pitches {
		pc, err := RunPairCase(cfg, liner, d)
		if err != nil {
			return nil, err
		}
		sw.Cases = append(sw.Cases, pc)
	}
	return sw, nil
}

// WriteTable renders the sweep for one component in the paper's table
// layout.
func (sw *PairSweep) WriteTable(w io.Writer, comp metrics.Component, title string) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", title); err != nil {
		return err
	}
	tb := &report.Table{Header: report.PaperHeader("Method", "d (um)")}
	for _, method := range []string{"LS", "PF"} {
		for _, pc := range sw.Cases {
			ls, pf, err := pc.Rows(comp)
			if err != nil {
				return err
			}
			row := ls
			if method == "PF" {
				row = pf
			}
			tb.AddRow(append([]string{method, fmt.Sprintf("%g", pc.D)}, report.PaperRowCells(row)...)...)
		}
	}
	if err := tb.WriteMarkdown(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// LineScan is the data behind Figure 3: σxx along the line through the
// two TSV centers.
type LineScan struct {
	X           []float64
	FEM, LS, PF []float64
}

// RunLineScan computes the Figure 3 comparison for pitch d. Points
// inside TSV footprints are skipped (device-layer convention).
func RunLineScan(cfg Config, liner material.Material, d float64, halfSpan float64, n int) (*LineScan, error) {
	cfg = cfg.withDefaults()
	st := material.Baseline(liner)
	pl := placegen.Pair(d)
	region := geom.RectAround(geom.Pt(0, 0), 2*halfSpan, 10)
	golden, err := fem.SolveSubmodel(pl, st, fem.DomainFor(pl, st, region, cfg.Margin),
		fem.SubmodelOptions{GlobalH: cfg.FEMH})
	if err != nil {
		return nil, err
	}
	an, err := core.New(st, pl, core.Options{})
	if err != nil {
		return nil, err
	}
	outside := field.OutsideTSVs(pl, st.RPrime)
	sc := &LineScan{}
	for _, p := range field.Line(geom.Pt(-halfSpan, 0), geom.Pt(halfSpan, 0), n) {
		if !outside(p) {
			continue
		}
		sc.X = append(sc.X, p.X)
		sc.FEM = append(sc.FEM, golden.StressAt(p).XX)
		sc.LS = append(sc.LS, an.StressLS(p).XX)
		sc.PF = append(sc.PF, an.StressAt(p).XX)
	}
	return sc, nil
}

// Write renders the line scan as an ASCII plot plus CSV-ish rows.
func (sc *LineScan) Write(w io.Writer, title string) error {
	if err := report.LinePlot(w, sc.X, map[string][]float64{
		"FEM": sc.FEM, "LS": sc.LS, "PF": sc.PF,
	}, 18, title); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ErrorMaps is the data behind Figures 4 and 6: |method − FEM| of σxx
// on the monitored lattice (NaN-free; masked points carry zero error).
type ErrorMaps struct {
	NX, NY int
	LS, PF []float64 // row-major over the full lattice
	MaxLS  float64
	MaxPF  float64
}

// BuildErrorMaps assembles error maps over the full lattice of the
// monitored region from a solved case (points inside TSVs get zero).
func BuildErrorMaps(cfg Config, pc *PairCase, region geom.Rect) (*ErrorMaps, error) {
	cfg = cfg.withDefaults()
	grid, err := field.NewGrid(region, cfg.PointSpacing)
	if err != nil {
		return nil, err
	}
	em := &ErrorMaps{NX: grid.NX, NY: grid.NY}
	em.LS = make([]float64, grid.Len())
	em.PF = make([]float64, grid.Len())
	// Monitored points were produced by masking the same lattice in
	// order, so walk both in lockstep.
	idx := 0
	for i, p := range grid.Points() {
		//tsvlint:ignore floatcmp lockstep lattice identity: Monitored holds verbatim copies of these grid points
		if idx < len(pc.Monitored) && pc.Monitored[idx] == p {
			em.LS[i] = pc.LSMon[idx].XX - pc.GoldenMon[idx].XX
			em.PF[i] = pc.PFMon[idx].XX - pc.GoldenMon[idx].XX
			if a := abs(em.LS[i]); a > em.MaxLS {
				em.MaxLS = a
			}
			if a := abs(em.PF[i]); a > em.MaxPF {
				em.MaxPF = a
			}
			idx++
		}
	}
	return em, nil
}

// FracAbove returns the fraction of nonzero map entries whose |error|
// exceeds thr — the quantitative form of the paper's "error generally
// within X MPa" figure captions (the pointwise max is dominated by the
// few lattice points hugging the liner interface, where the golden
// itself carries its largest noise).
func (em *ErrorMaps) FracAbove(thr float64) (ls, pf float64) {
	var n, nLS, nPF int
	for i := range em.LS {
		if em.LS[i] == 0 && em.PF[i] == 0 {
			continue // masked (inside a TSV footprint)
		}
		n++
		if abs(em.LS[i]) > thr {
			nLS++
		}
		if abs(em.PF[i]) > thr {
			nPF++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(nLS) / float64(n), float64(nPF) / float64(n)
}

// Write renders both maps as ASCII heat maps.
func (em *ErrorMaps) Write(w io.Writer, title string) error {
	scale := em.MaxLS
	if err := report.HeatMap(w, em.LS, em.NX, em.NY, scale, title+" — |LS − FEM| σxx"); err != nil {
		return err
	}
	if err := report.HeatMap(w, em.PF, em.NX, em.NY, scale, title+" — |PF − FEM| σxx (same scale)"); err != nil {
		return err
	}
	ls25, pf25 := em.FracAbove(25)
	_, err := fmt.Fprintf(w,
		"max |error|: LS %.1f MPa, PF %.1f MPa; points above 25 MPa: LS %.2f%%, PF %.2f%%\n\n",
		em.MaxLS, em.MaxPF, 100*ls25, 100*pf25)
	return err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
