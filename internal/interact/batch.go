//tsvlint:hotpath

package interact

import (
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// VictimRounds packs every aggressor→victim round sharing one victim
// TSV into an aggregated per-harmonic form for tile-batched Stage II
// evaluation.
//
// Every round of a victim sees the same point geometry (relative
// vector, its norm r, the polar angle φ and the decay base R′/r); a
// round only differs by its axis angle ψ and its pitch-dependent
// coefficients a_m, b_m. Writing the local angle as θ = φ − ψ and
// expanding cos(mθ) and sin(mθ), the sum over rounds factorizes:
//
//	Σ_r a_m^r cos(mθ_r) = cos(mφ) Σ_r a_m^r cos(mψ_r) + sin(mφ) Σ_r a_m^r sin(mψ_r)
//
// so the four per-harmonic aggregates Σ a cos(mψ), Σ a sin(mψ),
// Σ b cos(mψ), Σ b sin(mψ) are point independent and computed once at
// pack time. AccumulateAt then costs O(MMax) per point regardless of
// how many rounds the victim participates in — the structural speedup
// that makes dense full-chip Stage II tractable.
//
// A VictimRounds is immutable after Pack and safe for concurrent use.
type VictimRounds struct {
	vicX, vicY float64
	rPrime     float64
	nm         int // harmonics (MMax−1)
	// Aggregated coefficients, each of length nm (index m−2):
	// ca[i] = Σ_r a_i^r cos(mψ_r), sa[i] = Σ_r a_i^r sin(mψ_r),
	// cb/sb likewise for b. Backed by one slab.
	ca, sa, cb, sb []float64
	evs            []PairEval // fallback path for points inside the victim

	// SoA complex-Horner state for AccumulateTile (see the derivation
	// there). horner is step-major, one hornerStep per harmonic index
	// i: [γRe, γIm, (i+2)·γRe, (i+2)·γIm, βRe, βIm] with
	// γ_i = ca[i] − i·sa[i] and β_i = cb[i] − i·sb[i], so one Horner
	// step streams a single 48-byte run and indexes with one bounds
	// check at most.
	horner []hornerStep
	// trunc[k] is the smallest d² (µm²) at which evaluating the Horner
	// polynomials with coefficient indices 0…k only keeps the dropped
	// tail below truncTolMPa per stress component (trunc[nm−1] = 0, no
	// tail). Non-increasing in k by construction.
	trunc []float64
	// rp2Guard is R′²·(1+guard): below it the exterior/interior
	// classification recomputes math.Hypot so it is bit-identical to
	// the scalar paths (σθθ jumps across Γ1, so a 1-ulp disagreement
	// would not be a round-off-level diff).
	rp2Guard float64
	rp2      float64 // R′²
	rpInv2   float64 // 1/R′²
}

// hornerStride is the number of packed lanes per harmonic in the
// step-major Horner slab.
const hornerStride = 6

// hornerStep is one harmonic's packed coefficient run.
type hornerStep [hornerStride]float64

// truncTolMPa bounds the per-victim stress-component error (MPa) of the
// adaptive harmonic truncation AccumulateTile applies to far points.
// With the default 25 µm cutoffs a point accumulates a few dozen
// victims, keeping the summed truncation error two orders of magnitude
// under the 1e-9 MPa parity budget. The bound is absolute, so victims
// with larger coefficients (hotter loads) automatically keep more
// harmonics.
const truncTolMPa = 2e-12

// PackRounds builds the aggregated view over rounds, which must all
// share one victim center (as the per-victim lists built by the
// analyzer do). Degenerate rounds (non-positive pitch) contribute zero
// and are dropped. Returns nil when no evaluable round remains.
func PackRounds(evs []PairEval) *VictimRounds {
	kept := make([]PairEval, 0, len(evs))
	for _, pe := range evs {
		if pe.d > 0 {
			kept = append(kept, pe)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	nm := len(kept[0].a)
	slab := make([]float64, 4*nm)
	vr := &VictimRounds{
		vicX:   kept[0].vic.X,
		vicY:   kept[0].vic.Y,
		rPrime: kept[0].rPrime,
		nm:     nm,
		ca:     slab[0*nm : 1*nm],
		sa:     slab[1*nm : 2*nm],
		cb:     slab[2*nm : 3*nm],
		sb:     slab[3*nm : 4*nm],
		evs:    kept,
	}
	for _, pe := range kept {
		// cos/sin(mψ) recurrence over the round's axis angle ψ,
		// starting at m = 2.
		c1, s1 := pe.axX, pe.axY
		cm := c1*c1 - s1*s1
		sm := 2 * s1 * c1
		for i := 0; i < nm; i++ {
			vr.ca[i] += pe.a[i] * cm
			vr.sa[i] += pe.a[i] * sm
			vr.cb[i] += pe.b[i] * cm
			vr.sb[i] += pe.b[i] * sm
			cm, sm = cm*c1-sm*s1, sm*c1+cm*s1
		}
	}
	vr.packHorner()
	return vr
}

// packHorner folds the four aggregate lanes into the step-major complex
// coefficient slab AccumulateTile streams, and solves the per-start
// truncation thresholds.
func (vr *VictimRounds) packHorner() {
	nm := vr.nm
	vr.horner = make([]hornerStep, nm)
	for i := 0; i < nm; i++ {
		fm := float64(i + 2)
		vr.horner[i] = hornerStep{
			vr.ca[i], -vr.sa[i],
			fm * vr.ca[i], -fm * vr.sa[i],
			vr.cb[i], -vr.sb[i],
		}
	}
	vr.rp2 = vr.rPrime * vr.rPrime
	vr.rpInv2 = 1 / vr.rp2
	vr.rp2Guard = vr.rp2 * (1 + 1e-9)

	// Tail magnitude of harmonic index i at decay base inv = R′/r ≤ 1:
	// the polar components are bounded by inv^m·((2+m)·A_i + B_i·inv²)
	// with A_i = |(ca_i, sa_i)|, B_i = |(cb_i, sb_i)| (each aggregate
	// pair is a single sinusoid in φ), and the polar→Cartesian rotation
	// at most adds |σrt| to max(|σrr|, |σθθ|). wts[i] is the resulting
	// per-component Cartesian bound coefficient of inv^m.
	wts := make([]float64, nm)
	for i := 0; i < nm; i++ {
		fm := float64(i + 2)
		ai := math.Hypot(vr.ca[i], vr.sa[i])
		bi := math.Hypot(vr.cb[i], vr.sb[i])
		wts[i] = (2+2*fm)*ai + 2*bi
	}
	//tsvlint:ignore hotpath per-victim setup, not the per-point lane sweep: runs once per rebuild
	tail := func(k int, inv float64) float64 {
		s := 0.0
		//tsvlint:ignore hotpath bisection seed once per (victim, k), not per point
		p := math.Pow(inv, float64(k+3)) // inv^m at i = k+1
		for i := k + 1; i < nm; i++ {
			s += wts[i] * p
			p *= inv
		}
		return s
	}
	vr.trunc = make([]float64, nm)
	for k := 0; k < nm-1; k++ {
		if tail(k, 1) <= truncTolMPa {
			// Even touching the footprint the tail is negligible.
			vr.trunc[k] = 0
			continue
		}
		// tail(k, ·) is increasing in inv; bisect for the largest inv
		// still within tolerance and convert to a d² threshold.
		lo, hi := 0.0, 1.0
		for it := 0; it < 64; it++ {
			mid := 0.5 * (lo + hi)
			if tail(k, mid) <= truncTolMPa {
				lo = mid
			} else {
				hi = mid
			}
		}
		r := vr.rPrime / lo
		vr.trunc[k] = r * r
	}
	// trunc[nm-1] stays 0: the full series is always admissible, which
	// also terminates the start-index scan.
}

// NumRounds returns the number of packed (non-degenerate) rounds.
func (vr *VictimRounds) NumRounds() int { return len(vr.evs) }

// Vic returns the shared victim center.
func (vr *VictimRounds) Vic() geom.Point { return geom.Pt(vr.vicX, vr.vicY) }

// AccumulateAt adds the summed interactive stress of all packed rounds
// at (px, py) into acc. It matches summing PairEval.StressAt over the
// rounds to round-off: the factorization above is an exact trig
// identity, so only summation order and recurrence rounding differ.
func (vr *VictimRounds) AccumulateAt(px, py float64, acc *tensor.Stress) {
	relX := px - vr.vicX
	relY := py - vr.vicY
	r := math.Hypot(relX, relY)
	if r < vr.rPrime {
		// Interior of the victim footprint: rare for device-layer
		// points; take the general transmitted-field path per round.
		p := geom.Pt(px, py)
		for k := range vr.evs {
			*acc = acc.Add(vr.evs[k].StressAt(p))
		}
		return
	}
	cphi, sphi := relX/r, relY/r
	inv := vr.rPrime / r // 1/ρ̂ < 1
	inv2 := inv * inv
	pm := inv2 // ρ̂^{−m} starting at m = 2
	// cos/sin(mφ) recurrence starting at m = 2.
	cm := cphi*cphi - sphi*sphi
	sm := 2 * sphi * cphi
	var rr, tt, rt float64
	for i := 0; i < vr.nm; i++ {
		fm := float64(i + 2)
		ac := cm*vr.ca[i] + sm*vr.sa[i] // Σ_r a cos(mθ_r)
		as := sm*vr.ca[i] - cm*vr.sa[i] // Σ_r a sin(mθ_r)
		bc := (cm*vr.cb[i] + sm*vr.sb[i]) * inv2
		bs := (sm*vr.cb[i] - cm*vr.sb[i]) * inv2
		rr += pm * ((2+fm)*ac - bc)
		tt += pm * ((2-fm)*ac + bc)
		rt += pm * (fm*as - bs)
		pm *= inv
		cm, sm = cm*cphi-sm*sphi, sm*cphi+cm*sphi
	}
	// One polar→Cartesian rotation for the victim's whole round set
	// (the r-axis at angle φ is shared by every round).
	c2, s2, cs := cphi*cphi, sphi*sphi, cphi*sphi
	acc.XX += rr*c2 - 2*rt*cs + tt*s2
	acc.YY += rr*s2 + 2*rt*cs + tt*c2
	acc.XY += (rr-tt)*cs + rt*(c2-s2)
}

// interiorAt is the cold path of AccumulateTile for points inside the
// victim footprint: the general transmitted-field evaluation per round,
// identical to AccumulateAt's interior branch.
func (vr *VictimRounds) interiorAt(px, py float64) tensor.Stress {
	p := geom.Pt(px, py)
	var s tensor.Stress
	for k := range vr.evs {
		s = s.Add(vr.evs[k].StressAt(p))
	}
	return s
}

// AccumulateTile adds this victim's interactive stress into the tile
// accumulator lanes for every point with squared distance ≤ pd2 from
// the victim center — the SoA form of calling AccumulateAt per point.
//
// It evaluates the same harmonic sum through a complex reformulation
// that needs no radial norm and exactly one division per contributing
// point. With z = relX + i·relY and w = R′·z/|z|² (so |w| = R′/r and
// arg w = φ), the aggregated series collapses to two complex
// polynomials in w, each evaluated by Horner over the step-major slab:
//
//	S(w) = Σ_i γ_i w^{i+2},                γ_i = ca_i − i·sa_i
//	U(w) = Σ_i ((i+2)·γ_i − inv2·β_i) w^{i+2},  β_i = cb_i − i·sb_i
//
// where inv2 = R′²/d² = |w|² is fixed per point, so U's coefficients
// fold on the fly inside one chain instead of running a third Horner
// chain for the β polynomial. Writing e^{2iφ} = z²/|z|² = w²·d²/R′²,
// the Cartesian accumulation is
//
//	V    = U·e^{2iφ} = (U·w²)·(d²/R′²)
//	σxx += 2·Re(S·w²) + Re V,  σyy += 2·Re(S·w²) − Re V,  σxy += Im V
//
// which matches AccumulateAt's polar recurrence + rotation to round-off
// (the parity tests pin ≤1e-9 MPa; in isolation the two forms agree to
// ~1e-13). Far points start the Horner recursion at the precomputed
// truncation index, bounding the dropped tail below truncTolMPa per
// component; the start-index scan walks down from the full series so
// dense placements (which need every harmonic inside the cutoff) pay a
// single compare.
//
// px, py, sxx, syy, sxy must have equal length. Points inside the
// victim footprint take the per-round interior path (the classification
// reproduces AccumulateAt's Hypot compare exactly via rp2Guard).
func (vr *VictimRounds) AccumulateTile(px, py, sxx, syy, sxy []float64, pd2 float64) {
	n := len(px)
	if len(py) != n || len(sxx) != n || len(syy) != n || len(sxy) != n {
		panic("interact: AccumulateTile lane length mismatch")
	}
	py, sxx, syy, sxy = py[:n], sxx[:n], syy[:n], sxy[:n]
	vx, vy, rp := vr.vicX, vr.vicY, vr.rPrime
	h, tr := vr.horner, vr.trunc
	kFull := vr.nm - 1
	for i := 0; i < n; i++ {
		dx := px[i] - vx
		dy := py[i] - vy
		d2 := dx*dx + dy*dy
		if d2 > pd2 {
			continue
		}
		if d2 < vr.rp2Guard {
			// Guard band: settle interior vs exterior with the exact
			// scalar-path compare.
			if math.Hypot(dx, dy) < rp {
				s := vr.interiorAt(px[i], py[i])
				sxx[i] += s.XX
				syy[i] += s.YY
				sxy[i] += s.XY
				continue
			}
		}
		d2inv := 1 / d2
		wx := rp * dx * d2inv
		wy := rp * dy * d2inv
		inv2 := vr.rp2 * d2inv
		w2R := wx*wx - wy*wy
		w2I := 2 * wx * wy
		var sR, sI, uR, uI float64
		if kFull == 0 || d2 < tr[kFull-1] {
			// Full-depth evaluation — the common case inside a dense
			// placement's cutoff. Estrin even/odd split: each chain is
			// Horner in v = w² at half length, so the two serial
			// dependency chains run concurrently and the recursion's
			// critical path halves (the kernel is latency-bound on the
			// chained multiply-adds, not on port throughput).
			ke := kFull - (kFull & 1) // highest even index
			ko := kFull - 1 + (kFull & 1)
			c := &h[ke]
			sER, sEI := c[0], c[1]
			uER := c[2] - inv2*c[4]
			uEI := c[3] - inv2*c[5]
			for o := ke - 2; o >= 0; o -= 2 {
				c = &h[o]
				sER, sEI = sER*w2R-sEI*w2I+c[0], sER*w2I+sEI*w2R+c[1]
				uER, uEI = uER*w2R-uEI*w2I+(c[2]-inv2*c[4]), uER*w2I+uEI*w2R+(c[3]-inv2*c[5])
			}
			sR, sI, uR, uI = sER, sEI, uER, uEI
			if ko >= 0 {
				c = &h[ko]
				sOR, sOI := c[0], c[1]
				uOR := c[2] - inv2*c[4]
				uOI := c[3] - inv2*c[5]
				for o := ko - 2; o >= 1; o -= 2 {
					c = &h[o]
					sOR, sOI = sOR*w2R-sOI*w2I+c[0], sOR*w2I+sOI*w2R+c[1]
					uOR, uOI = uOR*w2R-uOI*w2I+(c[2]-inv2*c[4]), uOR*w2I+uOI*w2R+(c[3]-inv2*c[5])
				}
				sR += wx*sOR - wy*sOI
				sI += wx*sOI + wy*sOR
				uR += wx*uOR - wy*uOI
				uI += wx*uOI + wy*uOR
			}
		} else {
			// A truncated start suffices: scan down to the smallest
			// admissible index and run the plain Horner recursion over
			// the shortened series.
			k := kFull - 1
			for k > 0 && d2 >= tr[k-1] {
				k--
			}
			c := &h[k]
			sR, sI = c[0], c[1]
			uR = c[2] - inv2*c[4]
			uI = c[3] - inv2*c[5]
			for o := k - 1; o >= 0; o-- {
				c = &h[o]
				sR, sI = sR*wx-sI*wy+c[0], sR*wy+sI*wx+c[1]
				uR, uI = uR*wx-uI*wy+(c[2]-inv2*c[4]), uR*wy+uI*wx+(c[3]-inv2*c[5])
			}
		}
		// The chains computed Σ c_i w^i; the series shift to w^{i+2}
		// multiplies both by w², and V picks up a second w² from
		// e^{2iφ} = w²·d²/R′². Only the real part of S survives.
		w4R := w2R*w2R - w2I*w2I
		w4I := 2 * w2R * w2I
		q := d2 * vr.rpInv2
		iso := 2 * (sR*w2R - sI*w2I)
		vR := (uR*w4R - uI*w4I) * q
		vI := (uR*w4I + uI*w4R) * q
		sxx[i] += iso + vR
		syy[i] += iso - vR
		sxy[i] += vI
	}
}
