//tsvlint:hotpath

package interact

import (
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/tensor"
)

// VictimRounds packs every aggressor→victim round sharing one victim
// TSV into an aggregated per-harmonic form for tile-batched Stage II
// evaluation.
//
// Every round of a victim sees the same point geometry (relative
// vector, its norm r, the polar angle φ and the decay base R′/r); a
// round only differs by its axis angle ψ and its pitch-dependent
// coefficients a_m, b_m. Writing the local angle as θ = φ − ψ and
// expanding cos(mθ) and sin(mθ), the sum over rounds factorizes:
//
//	Σ_r a_m^r cos(mθ_r) = cos(mφ) Σ_r a_m^r cos(mψ_r) + sin(mφ) Σ_r a_m^r sin(mψ_r)
//
// so the four per-harmonic aggregates Σ a cos(mψ), Σ a sin(mψ),
// Σ b cos(mψ), Σ b sin(mψ) are point independent and computed once at
// pack time. AccumulateAt then costs O(MMax) per point regardless of
// how many rounds the victim participates in — the structural speedup
// that makes dense full-chip Stage II tractable.
//
// A VictimRounds is immutable after Pack and safe for concurrent use.
type VictimRounds struct {
	vicX, vicY float64
	rPrime     float64
	nm         int // harmonics (MMax−1)
	// Aggregated coefficients, each of length nm (index m−2):
	// ca[i] = Σ_r a_i^r cos(mψ_r), sa[i] = Σ_r a_i^r sin(mψ_r),
	// cb/sb likewise for b. Backed by one slab.
	ca, sa, cb, sb []float64
	evs            []PairEval // fallback path for points inside the victim
}

// PackRounds builds the aggregated view over rounds, which must all
// share one victim center (as the per-victim lists built by the
// analyzer do). Degenerate rounds (non-positive pitch) contribute zero
// and are dropped. Returns nil when no evaluable round remains.
func PackRounds(evs []PairEval) *VictimRounds {
	kept := make([]PairEval, 0, len(evs))
	for _, pe := range evs {
		if pe.d > 0 {
			kept = append(kept, pe)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	nm := len(kept[0].a)
	slab := make([]float64, 4*nm)
	vr := &VictimRounds{
		vicX:   kept[0].vic.X,
		vicY:   kept[0].vic.Y,
		rPrime: kept[0].rPrime,
		nm:     nm,
		ca:     slab[0*nm : 1*nm],
		sa:     slab[1*nm : 2*nm],
		cb:     slab[2*nm : 3*nm],
		sb:     slab[3*nm : 4*nm],
		evs:    kept,
	}
	for _, pe := range kept {
		// cos/sin(mψ) recurrence over the round's axis angle ψ,
		// starting at m = 2.
		c1, s1 := pe.axX, pe.axY
		cm := c1*c1 - s1*s1
		sm := 2 * s1 * c1
		for i := 0; i < nm; i++ {
			vr.ca[i] += pe.a[i] * cm
			vr.sa[i] += pe.a[i] * sm
			vr.cb[i] += pe.b[i] * cm
			vr.sb[i] += pe.b[i] * sm
			cm, sm = cm*c1-sm*s1, sm*c1+cm*s1
		}
	}
	return vr
}

// NumRounds returns the number of packed (non-degenerate) rounds.
func (vr *VictimRounds) NumRounds() int { return len(vr.evs) }

// Vic returns the shared victim center.
func (vr *VictimRounds) Vic() geom.Point { return geom.Pt(vr.vicX, vr.vicY) }

// AccumulateAt adds the summed interactive stress of all packed rounds
// at (px, py) into acc. It matches summing PairEval.StressAt over the
// rounds to round-off: the factorization above is an exact trig
// identity, so only summation order and recurrence rounding differ.
func (vr *VictimRounds) AccumulateAt(px, py float64, acc *tensor.Stress) {
	relX := px - vr.vicX
	relY := py - vr.vicY
	r := math.Hypot(relX, relY)
	if r < vr.rPrime {
		// Interior of the victim footprint: rare for device-layer
		// points; take the general transmitted-field path per round.
		p := geom.Pt(px, py)
		for k := range vr.evs {
			*acc = acc.Add(vr.evs[k].StressAt(p))
		}
		return
	}
	cphi, sphi := relX/r, relY/r
	inv := vr.rPrime / r // 1/ρ̂ < 1
	inv2 := inv * inv
	pm := inv2 // ρ̂^{−m} starting at m = 2
	// cos/sin(mφ) recurrence starting at m = 2.
	cm := cphi*cphi - sphi*sphi
	sm := 2 * sphi * cphi
	var rr, tt, rt float64
	for i := 0; i < vr.nm; i++ {
		fm := float64(i + 2)
		ac := cm*vr.ca[i] + sm*vr.sa[i] // Σ_r a cos(mθ_r)
		as := sm*vr.ca[i] - cm*vr.sa[i] // Σ_r a sin(mθ_r)
		bc := (cm*vr.cb[i] + sm*vr.sb[i]) * inv2
		bs := (sm*vr.cb[i] - cm*vr.sb[i]) * inv2
		rr += pm * ((2+fm)*ac - bc)
		tt += pm * ((2-fm)*ac + bc)
		rt += pm * (fm*as - bs)
		pm *= inv
		cm, sm = cm*cphi-sm*sphi, sm*cphi+cm*sphi
	}
	// One polar→Cartesian rotation for the victim's whole round set
	// (the r-axis at angle φ is shared by every round).
	c2, s2, cs := cphi*cphi, sphi*sphi, cphi*sphi
	acc.XX += rr*c2 - 2*rt*cs + tt*s2
	acc.YY += rr*s2 + 2*rt*cs + tt*c2
	acc.XY += (rr-tt)*cs + rt*(c2-s2)
}
