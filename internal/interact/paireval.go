package interact

import (
	"math"

	"tsvstress/internal/geom"
	"tsvstress/internal/potential"
	"tsvstress/internal/tensor"
)

// PairEval is a precomputed evaluator for the interactive stress of one
// aggressor→victim round. It bakes the per-harmonic scattered
// coefficients (which depend on the structure and the pair pitch, but
// not on the simulation point) so that full-chip Stage II evaluation
// runs with a cos/sin recurrence and iterated powers instead of
// math.Pow/Atan2-heavy general code. It is immutable and safe for
// concurrent use.
type PairEval struct {
	model    *Model
	vic, agg geom.Point
	axX, axY float64 // unit vector victim→aggressor
	d        float64
	rPrime   float64
	// Scattered substrate coefficients per harmonic (index m−2).
	a, b []float64
}

// NewPairEval builds the evaluator for a pair; pitch must be positive.
// Rounds at bit-identical pitch share one cached coefficient pair.
func (mo *Model) NewPairEval(vic, agg geom.Point) PairEval {
	axis := agg.Sub(vic)
	d := axis.Norm()
	pe := PairEval{
		model:  mo,
		vic:    vic,
		agg:    agg,
		d:      d,
		rPrime: mo.Struct.RPrime,
	}
	if d <= 0 {
		return pe // degenerate; StressAt returns zero
	}
	pe.axX, pe.axY = axis.X/d, axis.Y/d
	pe.a, pe.b = mo.pitchCoeffs(d)
	return pe
}

// pitchCoeffs returns the shared scattered-coefficient slices for pitch
// d, computing and caching them on first use. Safe for concurrent use.
func (mo *Model) pitchCoeffs(d float64) (a, b []float64) {
	key := math.Float64bits(d)
	mo.cacheMu.Lock()
	if c, ok := mo.coeffCache[key]; ok {
		mo.cacheHits++
		mo.cacheMu.Unlock()
		return c.a, c.b
	}
	mo.cacheMu.Unlock()
	a = make([]float64, mo.MMax-1)
	b = make([]float64, mo.MMax-1)
	for m := 2; m <= mo.MMax; m++ {
		scale := potential.IncidentCoeff(m-2, mo.Lame.K, mo.Struct.RPrime, d)
		a[m-2] = mo.units[m-2].sub.ANeg * scale
		b[m-2] = mo.units[m-2].sub.BNeg * scale
	}
	mo.cacheMu.Lock()
	if c, ok := mo.coeffCache[key]; ok { // lost the race: share the winner
		mo.cacheHits++
		a, b = c.a, c.b
	} else {
		mo.coeffCache[key] = pairCoeffs{a: a, b: b}
	}
	mo.cacheMu.Unlock()
	return a, b
}

// CoeffCacheStats reports the pitch-keyed coefficient cache state:
// distinct pitches solved and the number of rounds that reused one.
func (mo *Model) CoeffCacheStats() (entries, hits int) {
	mo.cacheMu.Lock()
	defer mo.cacheMu.Unlock()
	return len(mo.coeffCache), mo.cacheHits
}

// StressAt returns the interactive stress of this round at p, in MPa
// (global Cartesian axes). Points inside the victim footprint fall back to the
// general evaluator.
func (pe *PairEval) StressAt(p geom.Point) tensor.Stress {
	if pe.d <= 0 {
		return tensor.Stress{}
	}
	relX := p.X - pe.vic.X
	relY := p.Y - pe.vic.Y
	r := math.Hypot(relX, relY)
	if r < pe.rPrime {
		// Interior of the victim: rare for device-layer points; use
		// the general (transmitted-field) path.
		return pe.model.PairStress(p, pe.vic, pe.agg)
	}
	// Global angle φ of the point and local angle θ = φ − ψ.
	cphi, sphi := relX/r, relY/r
	c1 := cphi*pe.axX + sphi*pe.axY // cos θ
	s1 := sphi*pe.axX - cphi*pe.axY // sin θ

	inv := pe.rPrime / r // 1/ρ̂ < 1
	inv2 := inv * inv
	pm := inv2 // ρ̂^{−m} starting at m = 2
	// cos/sin(mθ) recurrence starting at m = 2.
	cm := c1*c1 - s1*s1
	sm := 2 * s1 * c1

	var rr, tt, rt float64
	for k := 0; k < len(pe.a); k++ {
		fm := float64(k + 2)
		u := pe.a[k] * pm
		v := pe.b[k] * pm * inv2
		rr += ((2+fm)*u - v) * cm
		tt += ((2-fm)*u + v) * cm
		rt += (fm*u - v) * sm
		// Advance to harmonic m+1 (tuple assignment evaluates the
		// right-hand side with the old cm/sm, as the recurrence needs).
		pm *= inv
		cm, sm = cm*c1-sm*s1, sm*c1+cm*s1
	}
	// Rotate the polar tensor (r-axis at angle φ) to Cartesian.
	c2, s2, cs := cphi*cphi, sphi*sphi, cphi*sphi
	return tensor.Stress{
		XX: rr*c2 - 2*rt*cs + tt*s2,
		YY: rr*s2 + 2*rt*cs + tt*c2,
		XY: (rr-tt)*cs + rt*(c2-s2),
	}
}
