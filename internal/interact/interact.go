// Package interact implements the analytical interactive-stress model of
// Section 3.3 of the paper: the stress induced by the elastic-property
// mismatch of a victim TSV sitting in the stress field of an aggressor
// TSV.
//
// For each Fourier harmonic m = 2…MMax of the aggressor's ideal field
// expanded about the victim center, the scattered (substrate) and
// transmitted (liner, body) potential coefficients solve an 8×8 real
// linear system expressing continuity of the traction combination
// σrr − iσrθ and the displacement combination ur + i uθ at the
// liner/substrate interface Γ1 (r = R′) and the body/liner interface Γ2
// (r = R) — precisely the boundary conditions (14)–(17) of the paper.
//
// The right-hand side scales as K/d^m, so the unit solutions depend only
// on the TSV structure (the paper's observation that its h_ij(m) are
// placement independent); they are computed once per Model and reused
// for every pair and every pitch.
package interact

import (
	"fmt"
	"math"
	"sync"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/linalg"
	"tsvstress/internal/material"
	"tsvstress/internal/potential"
	"tsvstress/internal/tensor"
)

// DefaultMMax is the series truncation used by the paper ("9 terms in
// practice", m = 2…10).
const DefaultMMax = 10

// unitSol holds the per-region potential coefficients of one harmonic
// for a unit incident coefficient b̂_{m−2} = 1.
type unitSol struct {
	sub   potential.HarmCoeffs // scattered field, exterior coefficients
	liner potential.HarmCoeffs // transmitted field in the liner ring
	core  potential.HarmCoeffs // transmitted field in the body
}

// Model is the interactive-stress model for one TSV structure. It is
// immutable after New and safe for concurrent use.
type Model struct {
	Struct material.Structure
	// Plane is the 2D idealization (the paper uses plane stress).
	Plane material.Plane
	// Lame is the single-TSV solution providing the decay constant K.
	Lame *lame.Solution
	// MMax is the highest harmonic retained (inclusive).
	MMax int

	units []unitSol // index m−2

	// Pitch-keyed cache of scattered-coefficient slices shared by every
	// pair round at the same pitch (the transfer coefficients depend on
	// the structure and the pitch only). Keyed by the float64 bit
	// pattern of the pitch, so sharing is exact and parity-safe: on
	// regular arrays the handful of distinct center-to-center distances
	// collapses thousands of per-round allocations to a few entries.
	cacheMu    sync.Mutex
	coeffCache map[uint64]pairCoeffs
	cacheHits  int
}

// pairCoeffs is one cached entry: the per-harmonic scattered substrate
// coefficients of a round at a fixed pitch (index m−2). The slices are
// shared across rounds and must never be mutated.
type pairCoeffs struct {
	a, b []float64
}

// New builds the plane-stress model (the paper's device-layer setting),
// solving the per-harmonic boundary systems for m = 2…mmax. Pass
// mmax ≤ 0 for DefaultMMax.
func New(s material.Structure, mmax int) (*Model, error) {
	return NewPlane(s, mmax, material.PlaneStress)
}

// NewPlane builds the model for either plane mode; plane strain swaps
// the Kolosov constants (3−4ν) and the single-TSV load constant K.
func NewPlane(s material.Structure, mmax int, plane material.Plane) (*Model, error) {
	if mmax <= 0 {
		mmax = DefaultMMax
	}
	if mmax < 2 {
		return nil, fmt.Errorf("interact: mmax %d must be ≥ 2", mmax)
	}
	sol, err := lame.SolvePlane(s, plane)
	if err != nil {
		return nil, err
	}
	m := &Model{Struct: s, Plane: plane, Lame: sol, MMax: mmax,
		coeffCache: make(map[uint64]pairCoeffs)}
	k := s.K() // scaled body radius (R′ = 1)
	if k <= 0 || k >= 1 {
		return nil, fmt.Errorf("interact: radius ratio k=%g outside (0,1)", k)
	}
	for h := 2; h <= mmax; h++ {
		u, err := solveHarmonic(s, h, k, plane)
		if err != nil {
			return nil, fmt.Errorf("interact: harmonic %d: %w", h, err)
		}
		m.units = append(m.units, u)
	}
	return m, nil
}

// Unknown ordering in the 8×8 system.
const (
	iASubNeg = iota // substrate a_{−m}
	iBSubNeg        // substrate b_{−m−2}
	iALinPos        // liner a_m
	iALinNeg        // liner a_{−m}
	iBLinPos        // liner b_{m−2}
	iBLinNeg        // liner b_{−m−2}
	iACorPos        // core a_m
	iBCorPos        // core b_{m−2}
	nUnknown
)

// regionSlot maps an unknown index to its region's HarmCoeffs with a
// unit value in the right slot. Region: 0 = substrate, 1 = liner,
// 2 = core.
func regionSlot(j int) (region int, c potential.HarmCoeffs) {
	switch j {
	case iASubNeg:
		return 0, potential.HarmCoeffs{ANeg: 1}
	case iBSubNeg:
		return 0, potential.HarmCoeffs{BNeg: 1}
	case iALinPos:
		return 1, potential.HarmCoeffs{APos: 1}
	case iALinNeg:
		return 1, potential.HarmCoeffs{ANeg: 1}
	case iBLinPos:
		return 1, potential.HarmCoeffs{BPos: 1}
	case iBLinNeg:
		return 1, potential.HarmCoeffs{BNeg: 1}
	case iACorPos:
		return 2, potential.HarmCoeffs{APos: 1}
	case iBCorPos:
		return 2, potential.HarmCoeffs{BPos: 1}
	}
	panic("interact: bad unknown index")
}

// solveHarmonic assembles and solves the boundary system of harmonic m
// for a unit incident coefficient b̂_{m−2} = 1.
func solveHarmonic(s material.Structure, m int, k float64, plane material.Plane) (unitSol, error) {
	c, l, sub := s.Body, s.Liner, s.Substrate
	twoMu := [3]float64{2 * sub.Mu(), 2 * l.Mu(), 2 * c.Mu()}
	kappa := [3]float64{sub.Kappa(plane), l.Kappa(plane), c.Kappa(plane)}

	// Equation functionals: value of each equation's LHS for a unit
	// unknown. Signs: liner contributes +, substrate and core −.
	// Eq order: [tΓ1+, tΓ1−, dΓ1+, dΓ1−, tΓ2+, tΓ2−, dΓ2+, dΓ2−].
	a := linalg.NewMatrix(nUnknown, nUnknown)
	for j := 0; j < nUnknown; j++ {
		region, hc := regionSlot(j)
		sign := 1.0
		if region != 1 {
			sign = -1.0
		}
		// Γ1 equations involve substrate (region 0) and liner (1).
		if region == 0 || region == 1 {
			mu, kap := twoMu[region], kappa[region]
			a.AddTo(0, j, sign*hc.TractionPlus(m, 1))
			a.AddTo(1, j, sign*hc.TractionMinus(m, 1))
			a.AddTo(2, j, sign*hc.DispPlus(m, 1, kap)/mu)
			a.AddTo(3, j, sign*hc.DispMinus(m, 1, kap)/mu)
		}
		// Γ2 equations involve liner (1) and core (2).
		if region == 1 || region == 2 {
			mu, kap := twoMu[region], kappa[region]
			a.AddTo(4, j, sign*hc.TractionPlus(m, k))
			a.AddTo(5, j, sign*hc.TractionMinus(m, k))
			a.AddTo(6, j, sign*hc.DispPlus(m, k, kap)/mu)
			a.AddTo(7, j, sign*hc.DispMinus(m, k, kap)/mu)
		}
	}

	// RHS: incident field (b̂_{m−2} = 1) on the substrate side of Γ1.
	inc := potential.HarmCoeffs{BPos: 1}
	b := make([]float64, nUnknown)
	b[0] = inc.TractionPlus(m, 1)
	b[1] = inc.TractionMinus(m, 1)
	b[2] = inc.DispPlus(m, 1, kappa[0]) / twoMu[0]
	b[3] = inc.DispMinus(m, 1, kappa[0]) / twoMu[0]

	x, err := linalg.Solve(a, b)
	if err != nil {
		return unitSol{}, err
	}
	return unitSol{
		sub:   potential.HarmCoeffs{ANeg: x[iASubNeg], BNeg: x[iBSubNeg]},
		liner: potential.HarmCoeffs{APos: x[iALinPos], ANeg: x[iALinNeg], BPos: x[iBLinPos], BNeg: x[iBLinNeg]},
		core:  potential.HarmCoeffs{APos: x[iACorPos], BPos: x[iBCorPos]},
	}, nil
}

// MinPairPitch returns the smallest admissible pitch in µm (touching
// TSVs).
func (mo *Model) MinPairPitch() float64 { return 2 * mo.Struct.RPrime }

// PairPolar returns the interactive stress of one aggressor→victim
// round in the victim-centered polar frame whose θ = 0 axis points at
// the aggressor: r is the distance from the victim center in µm, theta
// the local polar angle, d the pair pitch in µm.
//
// In the substrate (r ≥ R′) this is the scattered field; inside the
// victim (liner/body) it is the transmitted field minus the aggressor's
// incident field, i.e. always "true field − linear-superposition field".
func (mo *Model) PairPolar(r, theta, d float64) tensor.Polar {
	s := mo.Struct
	rho := r / s.RPrime
	k := s.K()
	var out tensor.Polar
	for m := 2; m <= mo.MMax; m++ {
		scale := potential.IncidentCoeff(m-2, mo.Lame.K, s.RPrime, d)
		u := mo.units[m-2]
		var prof potential.PolarHarm
		switch {
		case rho >= 1:
			prof = u.sub.Scale(scale).StressProfiles(m, rho)
		case rho >= k:
			tr := u.liner.Scale(scale).StressProfiles(m, rho)
			in := potential.HarmCoeffs{BPos: scale}.StressProfiles(m, rho)
			prof = potential.PolarHarm{RR: tr.RR - in.RR, TT: tr.TT - in.TT, RT: tr.RT - in.RT}
		default:
			tr := u.core.Scale(scale).StressProfiles(m, rho)
			in := potential.HarmCoeffs{BPos: scale}.StressProfiles(m, rho)
			prof = potential.PolarHarm{RR: tr.RR - in.RR, TT: tr.TT - in.TT, RT: tr.RT - in.RT}
		}
		cm, sm := math.Cos(float64(m)*theta), math.Sin(float64(m)*theta)
		out.RR += prof.RR * cm
		out.TT += prof.TT * cm
		out.RT += prof.RT * sm
	}
	return out
}

// PairStress returns the interactive stress in MPa (Cartesian, global
// axes) at point p for the round with victim TSV centered at vic and
// aggressor at agg. It returns the zero tensor when p coincides with the victim
// center direction degeneracies cannot occur (the field is evaluated in
// the rotated frame and rotated back).
func (mo *Model) PairStress(p, vic, agg geom.Point) tensor.Stress {
	axis := agg.Sub(vic)
	d := axis.Norm()
	if d <= 0 {
		return tensor.Stress{}
	}
	rel := p.Sub(vic)
	r := rel.Norm()
	if r == 0 {
		// Center of the victim: evaluate the m-sum at r=0; only the
		// transmitted-minus-incident core field survives and every
		// profile carries r^m or r^{m-2} with m ≥ 2, so the only
		// non-zero term is m = 2 via r^0. Evaluate at a tiny radius
		// along the axis for numerical simplicity.
		rel = axis.Scale(1e-9 / d)
		r = rel.Norm()
	}
	phiGlobal := rel.Angle()               // angle of the point in global axes
	thetaLocal := phiGlobal - axis.Angle() // local frame: aggressor at θ=0
	pol := mo.PairPolar(r, thetaLocal, d)
	return pol.ToCartesian(phiGlobal)
}

// BoundaryResiduals numerically verifies the interface conditions for a
// given pitch d: it returns the maximum traction jump (MPa) and
// displacement jump (µm) across Γ1 and Γ2, sampled at nTheta angles.
// Both should be at round-off level; they are exported as a diagnostic
// of solver health.
func (mo *Model) BoundaryResiduals(d float64, nTheta int) (tracJump, dispJump float64) {
	if nTheta < 4 {
		nTheta = 16
	}
	s := mo.Struct
	const eps = 1e-9
	for i := 0; i < nTheta; i++ {
		th := 2 * math.Pi * float64(i) / float64(nTheta)
		// Γ1: substrate side = scattered + incident; liner side =
		// transmitted − incident + incident = PairPolar + incident on
		// both sides — so PairPolar continuity in (RR, RT) plus
		// incident continuity (trivially continuous) suffices.
		out := mo.PairPolar(s.RPrime*(1+eps), th, d)
		in := mo.PairPolar(s.RPrime*(1-eps), th, d)
		// Add the incident field on the liner side to compare total
		// tractions: PairPolar inside = transmitted − incident, and
		// outside = scattered; totals are scattered+incident vs
		// transmitted, so jump = (out + incident) − (in + incident).
		if j := math.Abs(out.RR - in.RR); j > tracJump {
			tracJump = j
		}
		if j := math.Abs(out.RT - in.RT); j > tracJump {
			tracJump = j
		}
		// Γ2 similarly (both sides are transmitted − incident, and the
		// incident field is smooth across Γ2).
		out2 := mo.PairPolar(s.R*(1+eps), th, d)
		in2 := mo.PairPolar(s.R*(1-eps), th, d)
		if j := math.Abs(out2.RR - in2.RR); j > tracJump {
			tracJump = j
		}
		if j := math.Abs(out2.RT - in2.RT); j > tracJump {
			tracJump = j
		}
		// Displacement continuity.
		for _, pair := range [][2]float64{{s.RPrime, 1}, {s.R, s.K()}} {
			radius := pair[0]
			urOut, utOut := mo.dispAt(radius*(1+eps), th, d)
			urIn, utIn := mo.dispAt(radius*(1-eps), th, d)
			if j := math.Abs(urOut - urIn); j > dispJump {
				dispJump = j
			}
			if j := math.Abs(utOut - utIn); j > dispJump {
				dispJump = j
			}
		}
	}
	return tracJump, dispJump
}

// dispAt evaluates the perturbation displacement field (total minus the
// smooth incident part in the substrate convention used by
// BoundaryResiduals) at local polar (r, θ) for pitch d, in µm.
func (mo *Model) dispAt(r, theta, d float64) (ur, ut float64) {
	s := mo.Struct
	rho := r / s.RPrime
	k := s.K()
	c, l, sub := s.Body, s.Liner, s.Substrate
	for m := 2; m <= mo.MMax; m++ {
		scale := potential.IncidentCoeff(m-2, mo.Lame.K, s.RPrime, d)
		u := mo.units[m-2]
		var urm, utm float64
		switch {
		case rho >= 1:
			// Scattered + incident so that both sides of Γ1 carry the
			// incident term and the comparison is total vs total.
			a, b := u.sub.Scale(scale).DispProfiles(m, rho, 2*sub.Mu(), sub.Kappa(mo.Plane))
			ai, bi := potential.HarmCoeffs{BPos: scale}.DispProfiles(m, rho, 2*sub.Mu(), sub.Kappa(mo.Plane))
			urm, utm = a+ai, b+bi
		case rho >= k:
			urm, utm = u.liner.Scale(scale).DispProfiles(m, rho, 2*l.Mu(), l.Kappa(mo.Plane))
		default:
			urm, utm = u.core.Scale(scale).DispProfiles(m, rho, 2*c.Mu(), c.Kappa(mo.Plane))
		}
		cm, sm := math.Cos(float64(m)*theta), math.Sin(float64(m)*theta)
		ur += urm * cm * s.RPrime // back to µm
		ut += utm * sm * s.RPrime
	}
	return ur, ut
}
