package interact

import (
	"math"

	"tsvstress/internal/tensor"
)

// HSub holds the substrate-region transfer functions of the paper's
// Eq. (18) for one harmonic: h33, h34, h36, h38 (h31 = h32 = h35 =
// h37 = 0 in the substrate). They depend only on the TSV structure.
type HSub struct {
	H33, H34, H36, H38 float64
}

// DerivedH returns the Eq. (18) substrate transfer functions implied by
// the solver's unit solution for harmonic m. The identification (see
// the package DESIGN notes) is
//
//	F(m)  = (m−1)·â_{−m}          (scattered a coefficient, unit incident)
//	h33 = −(2+m)F(m)             (so h33 = −(m−1)(2+m)·â_{−m})
//	h34 = −(m−1)·b̂_{−m−2}
//	h36, h38 follow from the σθθ and σrθ profiles.
func (mo *Model) DerivedH(m int) HSub {
	u := mo.units[m-2]
	fm := float64(m)
	// Scattered profiles: σrr = (2+m)a ρ^{−m} − b ρ^{−m−2} (×cos mθ),
	// σθθ = (2−m)a ρ^{−m} + b ρ^{−m−2}, σrθ = m a ρ^{−m} − b ρ^{−m−2}
	// (×sin mθ). Matching Eq. (18)'s substrate form with incident
	// scale −K(m−1)/(d̂^m R′²):
	a, b := u.sub.ANeg, u.sub.BNeg
	return HSub{
		H33: -(fm - 1) * (2 + fm) * a,
		H34: -(fm - 1) * b,
		H36: -(fm - 1) * (2 - fm) * a,
		H38: -(fm - 1) * fm * a,
	}
}

// PairPolarEq18 evaluates the substrate interactive stress in MPa using
// the Eq. (18) series form with the given transfer functions; it must agree
// with PairPolar for r ≥ R′ when fed DerivedH. Exposed so the verbatim
// Appendix-A.4 coefficients can be compared on equal footing.
func (mo *Model) PairPolarEq18(h func(m int) HSub, r, theta, d float64) tensor.Polar {
	s := mo.Struct
	K := mo.Lame.K
	rp2 := s.RPrime * s.RPrime
	var out tensor.Polar
	for m := 2; m <= mo.MMax; m++ {
		hm := h(m)
		fm := float64(m)
		g := math.Pow(rp2/(r*d), fm) // (R′²/(rd))^m
		q := rp2 / (r * r)
		cm, sm := math.Cos(fm*theta), math.Sin(fm*theta)
		out.RR += K / rp2 * cm * g * (hm.H33 - q*hm.H34)
		out.TT += K / rp2 * cm * g * (hm.H36 + q*hm.H34)
		out.RT += K / rp2 * sm * g * (hm.H38 - q*hm.H34)
	}
	return out
}

// PaperA1A2 returns the dimensionless a1, a2 constants of Appendix A.4,
// verbatim.
func (mo *Model) PaperA1A2() (a1, a2 float64) {
	c, l := mo.Struct.Body, mo.Struct.Liner
	r := c.E / l.E
	a1 = (1 + r*(3-l.Nu)/(1+c.Nu)) / (1 - r*(1+l.Nu)/(1+c.Nu))
	a2 = (1 - r*(3-l.Nu)/(3-c.Nu)) / (1 + r*(1+l.Nu)/(3-c.Nu))
	return a1, a2
}

// VerbatimH evaluates the Appendix-A.4 closed forms for the substrate
// transfer functions, exactly as printed in the paper (including its
// G1/G3 bracket structure, which is OCR-noisy in the source text). It
// is retained for study and cross-checking against DerivedH; the solver
// path is authoritative.
func (mo *Model) VerbatimH(m int) HSub {
	s := mo.Struct
	l, sub := s.Liner, s.Substrate
	El, Es := l.E, sub.E
	vl, vs := l.Nu, sub.Nu
	k := s.K()
	k2 := k * k
	a1, a2 := mo.PaperA1A2()

	pow := math.Pow
	bracket := func(fm float64) float64 { // a1a2k⁴ − a1k^{2m+2} − a2k^{2−2m} + (1−k²)²(m²−1) + 1
		return a1*a2*k2*k2 - a1*pow(k, 2*fm+2) - a2*pow(k, 2-2*fm) +
			(1-k2)*(1-k2)*(fm*fm-1) + 1
	}
	g1 := func(fm float64) float64 {
		t1 := (4*a1*pow(k, 2*fm+2) - 4) / El
		t2 := ((1+vl)/El - (1+vs)/Es) * bracket(fm)
		t3 := (4*a2*pow(k, 2-2*fm) - 4) / El
		t4 := ((1+vl)/El + (3-vs)/Es) * bracket(fm)
		return 16*(k2-1)*(k2-1)/(El*El) + (t1+t2)*(t3+t4)/(fm*fm-1)
	}
	g2 := func(fm float64) float64 {
		return 16 / (El * Es) * (1 - k2) * bracket(fm)
	}
	g3 := func(fm float64) float64 {
		t1 := (4*a1*pow(k, 2-2*fm) - 4) / El
		t2 := ((1+vl)/El - (1+vs)/Es) *
			(a1*a2*k2*k2 - a1*pow(k, 2-2*fm) - a2*pow(k, 2*fm+2) + (1-k2)*(1-k2)*(fm*fm-1) + 1)
		t3 := (4*a2*pow(k, 2*fm+2) - 4) / El
		t4 := ((1+vl)/El - (1+vs)/Es) *
			(a1*a2*k2*k2 - a1*pow(k, 2-2*fm) - a2*pow(k, 2*fm+2) + (1-k2)*(1-k2)*(fm*fm-1) + 1)
		return 16*(k2-1)*(k2-1)/(El*El) + (t1+t2)*(t3+t4)/(fm*fm-1)
	}
	F := func(mm int) float64 {
		fm := float64(mm)
		if mm <= -2 {
			return g2(fm) / g1(fm)
		}
		return g3(fm) / g1(-fm)
	}
	fm := float64(m)
	return HSub{
		H33: -(2 + fm) * F(m),
		H34: F(-m) - (fm+1)*F(m),
		H36: (fm - 2) * F(m),
		H38: -fm * F(m),
	}
}
