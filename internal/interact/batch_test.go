package interact

import (
	"math"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// TestPitchCoeffCacheShares checks that rounds at bit-identical pitch
// share one coefficient pair regardless of orientation.
func TestPitchCoeffCacheShares(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	vic := geom.Pt(0, 0)
	p1 := mo.NewPairEval(vic, geom.Pt(10, 0))
	p2 := mo.NewPairEval(vic, geom.Pt(0, 10)) // same pitch, rotated 90°
	p3 := mo.NewPairEval(geom.Pt(10, 0), vic) // reversed round, same pitch
	p4 := mo.NewPairEval(vic, geom.Pt(12, 0)) // different pitch
	if &p1.a[0] != &p2.a[0] || &p1.b[0] != &p3.b[0] {
		t.Error("equal-pitch rounds must share cached coefficient slices")
	}
	if &p1.a[0] == &p4.a[0] {
		t.Error("distinct pitches must not share coefficients")
	}
	entries, hits := mo.CoeffCacheStats()
	if entries != 2 || hits != 2 {
		t.Errorf("cache stats = (%d entries, %d hits), want (2, 2)", entries, hits)
	}
}

// TestCachedPairEvalMatchesDirect pins the cached evaluator against the
// general PairStress path outside the victim.
func TestCachedPairEvalMatchesDirect(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	vic, agg := geom.Pt(-5, 0), geom.Pt(5, 0)
	pe := mo.NewPairEval(vic, agg)
	for _, p := range []geom.Point{geom.Pt(0, 4), geom.Pt(-9, 2), geom.Pt(3, -7), geom.Pt(-5, 3.1)} {
		got := pe.StressAt(p)
		want := mo.PairStress(p, vic, agg)
		for _, d := range []float64{got.XX - want.XX, got.YY - want.YY, got.XY - want.XY} {
			if math.Abs(d) > 1e-9 {
				t.Errorf("at %v: cached %v vs direct %v", p, got, want)
				break
			}
		}
	}
}

// TestPackRoundsMatchesPerRoundSum pins the aggregated per-harmonic
// evaluation against summing PairEval.StressAt round by round,
// including the interior fallback.
func TestPackRoundsMatchesPerRoundSum(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	vic := geom.Pt(0, 0)
	aggs := []geom.Point{geom.Pt(8, 0), geom.Pt(0, 10), geom.Pt(-7, 7), geom.Pt(12, -5)}
	evs := make([]PairEval, 0, len(aggs))
	for _, a := range aggs {
		evs = append(evs, mo.NewPairEval(vic, a))
	}
	vr := PackRounds(evs)
	if vr == nil || vr.NumRounds() != len(aggs) {
		t.Fatalf("PackRounds kept %v rounds", vr)
	}
	if vr.Vic() != vic {
		t.Fatalf("Vic = %v", vr.Vic())
	}
	pts := []geom.Point{
		geom.Pt(4, 3), geom.Pt(-6, 1), geom.Pt(0.5, -0.2) /* inside victim */, geom.Pt(20, 20),
		geom.Pt(3.0001, 0), geom.Pt(0, 0), // footprint boundary region and center
	}
	for _, p := range pts {
		var want tensor.Stress
		for k := range evs {
			want = want.Add(evs[k].StressAt(p))
		}
		var got tensor.Stress
		vr.AccumulateAt(p.X, p.Y, &got)
		for _, d := range []float64{got.XX - want.XX, got.YY - want.YY, got.XY - want.XY} {
			if math.Abs(d) > 1e-9 {
				t.Errorf("at %v: packed %v vs per-round %v", p, got, want)
				break
			}
		}
	}
}

// TestPackRoundsEmpty covers the degenerate inputs.
func TestPackRoundsEmpty(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	if vr := PackRounds(nil); vr != nil {
		t.Error("PackRounds(nil) must be nil")
	}
	deg := mo.NewPairEval(geom.Pt(0, 0), geom.Pt(0, 0)) // zero pitch
	if vr := PackRounds([]PairEval{deg}); vr != nil {
		t.Error("all-degenerate round set must pack to nil")
	}
}
