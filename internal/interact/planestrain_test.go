package interact

import (
	"math"
	"testing"

	"tsvstress/internal/material"
)

func TestPlaneStrainModel(t *testing.T) {
	st := material.Baseline(material.BCB)
	pe, err := NewPlane(st, 0, material.PlaneStrain)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Plane != material.PlaneStrain {
		t.Fatal("plane mode not recorded")
	}
	// Boundary conditions must hold in plane strain too.
	trac, disp := pe.BoundaryResiduals(9, 24)
	if trac > 1e-4 {
		t.Errorf("plane-strain traction jump %g", trac)
	}
	if disp > 1e-8 {
		t.Errorf("plane-strain displacement jump %g", disp)
	}
	// The plane-strain correction differs from plane stress (different
	// κ and K) but has the same sign and order of magnitude.
	ps, err := New(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := ps.PairPolar(3.3, 0.4, 9)
	b := pe.PairPolar(3.3, 0.4, 9)
	if a == b {
		t.Error("plane modes should give different corrections")
	}
	if math.Signbit(a.RR) != math.Signbit(b.RR) {
		t.Errorf("plane modes disagree on sign: %+v vs %+v", a, b)
	}
	ratio := b.RR / a.RR
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("plane-strain/plane-stress ratio %v outside sanity band", ratio)
	}
}
