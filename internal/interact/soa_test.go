package interact

import (
	"math"
	"math/rand"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

// packRandom builds a VictimRounds with nAgg random aggressors around a
// random victim center.
func packRandom(t *testing.T, mo *Model, rng *rand.Rand, nAgg int) *VictimRounds {
	t.Helper()
	vic := geom.Pt(rng.Float64()*40-20, rng.Float64()*40-20)
	evs := make([]PairEval, 0, nAgg)
	for len(evs) < nAgg {
		ang := rng.Float64() * 2 * math.Pi
		d := mo.MinPairPitch() + rng.Float64()*20
		agg := geom.Pt(vic.X+d*math.Cos(ang), vic.Y+d*math.Sin(ang))
		evs = append(evs, mo.NewPairEval(vic, agg))
	}
	vr := PackRounds(evs)
	if vr == nil {
		t.Fatal("PackRounds returned nil for non-degenerate rounds")
	}
	return vr
}

// TestAccumulateTileMatchesScalar pins the SoA complex-Horner lane
// kernel against the scalar AccumulateAt oracle over randomized round
// sets and point mixes (far, near-cutoff, footprint-boundary, interior
// and center points), at the engine-wide 1e-9 MPa budget.
func TestAccumulateTileMatchesScalar(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rp := mo.Struct.RPrime
	const pd2 = 25 * 25
	worst := 0.0
	for trial := 0; trial < 20; trial++ {
		vr := packRandom(t, mo, rng, 1+rng.Intn(6))
		vic := vr.Vic()
		var px, py []float64
		for i := 0; i < 64; i++ {
			r := rng.Float64() * 30
			switch i % 4 {
			case 1:
				r = rng.Float64() * rp * 1.5 // interior and boundary band
			case 2:
				r = rp * (1 + (rng.Float64()-0.5)*1e-6) // footprint edge
			case 3:
				r = 24 + rng.Float64()*2 // cutoff edge
			}
			ang := rng.Float64() * 2 * math.Pi
			px = append(px, vic.X+r*math.Cos(ang))
			py = append(py, vic.Y+r*math.Sin(ang))
		}
		px = append(px, vic.X, vic.X+rp)
		py = append(py, vic.Y, vic.Y)
		n := len(px)
		sxx, syy, sxy := make([]float64, n), make([]float64, n), make([]float64, n)
		vr.AccumulateTile(px, py, sxx, syy, sxy, pd2)
		for i := 0; i < n; i++ {
			dx, dy := px[i]-vic.X, py[i]-vic.Y
			var want tensor.Stress
			if dx*dx+dy*dy <= pd2 {
				vr.AccumulateAt(px[i], py[i], &want)
			}
			for _, d := range []float64{sxx[i] - want.XX, syy[i] - want.YY, sxy[i] - want.XY} {
				if math.Abs(d) > worst {
					worst = math.Abs(d)
				}
				if math.Abs(d) > 1e-9 {
					t.Fatalf("trial %d point %d (r=%g): SoA (%g,%g,%g) vs scalar %+v",
						trial, i, math.Hypot(dx, dy), sxx[i], syy[i], sxy[i], want)
				}
			}
		}
	}
	t.Logf("worst SoA-vs-scalar diff: %.3g MPa", worst)
}

// TestTruncationThresholds checks the adaptive-truncation metadata: the
// thresholds are finite, non-increasing in the start index, and end at
// zero so the start-index scan always terminates.
func TestTruncationThresholds(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	vr := packRandom(t, mo, rng, 4)
	if len(vr.trunc) != vr.nm {
		t.Fatalf("trunc has %d entries for %d harmonics", len(vr.trunc), vr.nm)
	}
	for k, d2 := range vr.trunc {
		if math.IsNaN(d2) || math.IsInf(d2, 0) || d2 < 0 {
			t.Fatalf("trunc[%d] = %g", k, d2)
		}
		if k > 0 && d2 > vr.trunc[k-1] {
			t.Errorf("trunc not non-increasing at %d: %g > %g", k, d2, vr.trunc[k-1])
		}
	}
	if last := vr.trunc[vr.nm-1]; last != 0 {
		t.Errorf("trunc[last] = %g, want 0", last)
	}
}

// TestAccumulateTileLaneMismatch pins the defensive length check.
func TestAccumulateTileLaneMismatch(t *testing.T) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	vr := PackRounds([]PairEval{mo.NewPairEval(geom.Pt(0, 0), geom.Pt(10, 0))})
	defer func() {
		if recover() == nil {
			t.Error("mismatched lane lengths must panic")
		}
	}()
	vr.AccumulateTile(make([]float64, 4), make([]float64, 3), make([]float64, 4), make([]float64, 4), make([]float64, 4), 625)
}
