package interact

import (
	"math"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/tensor"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func newBCB(t *testing.T) *Model {
	t.Helper()
	m, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(material.Baseline(material.BCB), 1); err == nil {
		t.Error("mmax < 2 should fail")
	}
	s := material.Baseline(material.BCB)
	s.R = -1
	if _, err := New(s, 0); err == nil {
		t.Error("invalid structure should fail")
	}
	m, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.MMax != DefaultMMax || len(m.units) != DefaultMMax-1 {
		t.Errorf("MMax = %d, units = %d", m.MMax, len(m.units))
	}
	if m.MinPairPitch() != 6 {
		t.Errorf("MinPairPitch = %v", m.MinPairPitch())
	}
}

// The headline correctness check: the solved coefficients must satisfy
// traction and displacement continuity at both interfaces.
func TestBoundaryResiduals(t *testing.T) {
	for _, liner := range []material.Material{material.BCB, material.SiO2} {
		mo, err := New(material.Baseline(liner), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []float64{8, 10, 25} {
			trac, disp := mo.BoundaryResiduals(d, 32)
			// Stress scale near the victim is O(10 MPa); displacements
			// O(1e-4 µm). The 1e-9 probe offset contributes ~1e-6.
			if trac > 1e-4 {
				t.Errorf("%s d=%g: traction jump %g MPa", liner.Name, d, trac)
			}
			if disp > 1e-8 {
				t.Errorf("%s d=%g: displacement jump %g µm", liner.Name, d, disp)
			}
		}
	}
}

func TestSymmetryAboutPairAxis(t *testing.T) {
	mo := newBCB(t)
	d := 9.0
	for _, pt := range []struct{ r, th float64 }{{3.5, 0.7}, {4.2, 2.1}, {6.0, 1.0}} {
		p1 := mo.PairPolar(pt.r, pt.th, d)
		p2 := mo.PairPolar(pt.r, -pt.th, d)
		if !eq(p1.RR, p2.RR, 1e-9) || !eq(p1.TT, p2.TT, 1e-9) {
			t.Errorf("normal stresses not even in θ at %+v", pt)
		}
		if !eq(p1.RT, -p2.RT, 1e-9) {
			t.Errorf("shear stress not odd in θ at %+v", pt)
		}
	}
}

func TestDecayWithDistance(t *testing.T) {
	mo := newBCB(t)
	d := 10.0
	// In the far field the scattered series is dominated by its m = 2
	// term, so doubling r must cut the stress by ≈4 (r⁻² decay, the
	// bound the paper's Stage-II cutoff argument relies on).
	near := mo.PairPolar(10, 0.5, d)
	far := mo.PairPolar(20, 0.5, d)
	nearMag := math.Abs(near.RR) + math.Abs(near.TT) + math.Abs(near.RT)
	farMag := math.Abs(far.RR) + math.Abs(far.TT) + math.Abs(far.RT)
	if farMag > nearMag/3.5 {
		t.Errorf("decay too slow: near %g, far %g", nearMag, farMag)
	}
}

func TestDecayWithPitch(t *testing.T) {
	mo := newBCB(t)
	// The interactive stress at the victim boundary scales roughly as
	// (R′/d)², so doubling the pitch should cut it by ≳4 (faster in
	// practice because of higher harmonics).
	a := mo.PairPolar(3.2, 0.3, 8)
	b := mo.PairPolar(3.2, 0.3, 16)
	magA := math.Abs(a.RR) + math.Abs(a.TT) + math.Abs(a.RT)
	magB := math.Abs(b.RR) + math.Abs(b.TT) + math.Abs(b.RT)
	if magB > magA/3.9 {
		t.Errorf("pitch decay too slow: d=8 → %g, d=16 → %g", magA, magB)
	}
}

func TestSeriesConvergence(t *testing.T) {
	// MMax = 10 (paper default) vs MMax = 24 must agree closely at
	// practical pitches, confirming the paper's truncation argument.
	s := material.Baseline(material.BCB)
	m10, err := New(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	m24, err := New(s, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{8, 12} {
		for _, pt := range []struct{ r, th float64 }{{3.1, 0}, {4, 1.0}, {3.5, math.Pi}} {
			a := m10.PairPolar(pt.r, pt.th, d)
			b := m24.PairPolar(pt.r, pt.th, d)
			scale := math.Max(1, math.Abs(b.RR)+math.Abs(b.TT)+math.Abs(b.RT))
			if !eq(a.RR, b.RR, 0.02*scale) || !eq(a.TT, b.TT, 0.02*scale) || !eq(a.RT, b.RT, 0.02*scale) {
				t.Errorf("d=%g %+v: truncation error too large: %+v vs %+v", d, pt, a, b)
			}
		}
	}
}

func TestLSOverestimationSign(t *testing.T) {
	// Fig. 3 of the paper: for the BCB structure, linear superposition
	// overestimates σxx between the TSVs; the interactive correction
	// there must therefore be negative (σxx from each TSV on its axis
	// is tensile K/r² > 0 with K > 0).
	mo := newBCB(t)
	d := 10.0
	vic := geom.Pt(0, 0)
	agg := geom.Pt(d, 0)
	mid := geom.Pt(d/2, 0)
	corr := mo.PairStress(mid, vic, agg)
	if corr.XX >= 0 {
		t.Errorf("interactive σxx at midpoint = %v, want < 0 (LS overestimates)", corr.XX)
	}
}

func TestPairStressFrameInvariance(t *testing.T) {
	mo := newBCB(t)
	d := 9.0
	vic := geom.Pt(2, -1)
	aggBase := geom.Pt(2+d, -1)
	pBase := geom.Pt(6, 1.5)
	base := mo.PairStress(pBase, vic, aggBase)
	for _, phi := range []float64{0.3, math.Pi / 3, 2.2} {
		rot := func(q geom.Point) geom.Point {
			rel := q.Sub(vic)
			c, s := math.Cos(phi), math.Sin(phi)
			return vic.Add(geom.Pt(rel.X*c-rel.Y*s, rel.X*s+rel.Y*c))
		}
		got := mo.PairStress(rot(pBase), vic, rot(aggBase))
		// Rotating the configuration by φ rotates the tensor by φ:
		// express got back in the rotated frame and compare.
		back := got.Rotate(phi)
		if !eq(back.XX, base.XX, 1e-8) || !eq(back.YY, base.YY, 1e-8) || !eq(back.XY, base.XY, 1e-8) {
			t.Errorf("φ=%g: %v vs %v", phi, back, base)
		}
	}
}

func TestPairStressDegenerate(t *testing.T) {
	mo := newBCB(t)
	// Coincident aggressor/victim → zero tensor, no panic.
	if got := mo.PairStress(geom.Pt(1, 1), geom.Pt(0, 0), geom.Pt(0, 0)); got != (tensor.Stress{}) {
		t.Errorf("degenerate pair = %v", got)
	}
	// Point exactly at the victim center must be finite.
	got := mo.PairStress(geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(8, 0))
	if math.IsNaN(got.XX) || math.IsInf(got.XX, 0) {
		t.Errorf("center stress = %v", got)
	}
}

func TestContinuityAcrossRegions(t *testing.T) {
	// PairPolar is the LS-correction field: discontinuous only in σθθ
	// across material interfaces (physical), but σrr and σrθ must be
	// continuous everywhere (traction continuity minus the smooth
	// incident field).
	mo := newBCB(t)
	d := 8.0
	for _, th := range []float64{0, 0.8, 2.5} {
		for _, r0 := range []float64{mo.Struct.R, mo.Struct.RPrime} {
			in := mo.PairPolar(r0*(1-1e-9), th, d)
			out := mo.PairPolar(r0*(1+1e-9), th, d)
			if !eq(in.RR, out.RR, 1e-5) || !eq(in.RT, out.RT, 1e-5) {
				t.Errorf("traction jump at r=%g θ=%g: in %+v out %+v", r0, th, in, out)
			}
		}
	}
}

func TestInteriorFieldFinite(t *testing.T) {
	mo := newBCB(t)
	d := 8.0
	for _, r := range []float64{0.01, 1.0, 2.4, 2.6, 2.99, 3.01, 5} {
		p := mo.PairPolar(r, 0.4, d)
		for _, v := range []float64{p.RR, p.TT, p.RT} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite stress at r=%g: %+v", r, p)
			}
		}
	}
}

// DerivedH must reproduce PairPolar through the Eq. (18) series form in
// the substrate — this validates the identification of the paper's
// transfer functions with the solver's unit solution.
func TestEq18FormMatchesSolver(t *testing.T) {
	mo := newBCB(t)
	d := 9.0
	for _, pt := range []struct{ r, th float64 }{{3.2, 0.2}, {4.0, 1.3}, {6.5, 2.9}} {
		direct := mo.PairPolar(pt.r, pt.th, d)
		viaH := mo.PairPolarEq18(mo.DerivedH, pt.r, pt.th, d)
		scale := math.Max(1e-6, math.Abs(direct.RR)+math.Abs(direct.TT)+math.Abs(direct.RT))
		if !eq(direct.RR, viaH.RR, 1e-9*scale) ||
			!eq(direct.TT, viaH.TT, 1e-9*scale) ||
			!eq(direct.RT, viaH.RT, 1e-9*scale) {
			t.Errorf("%+v: direct %+v != Eq18 %+v", pt, direct, viaH)
		}
	}
}

// Cross-check the verbatim Appendix-A.4 closed forms against the solver.
// Empirical finding (also recorded in DESIGN.md): the verbatim h33, h36
// and h38 equal the solver-derived values divided by (m−1) — exactly,
// at every harmonic — i.e. the paper's printed Eq. (18) dropped the
// (m−1) factor that its Eq. (7) load expansion carries. h34 additionally
// mixes F(−m) whose printed G2 is slightly OCR-garbled, so it is only
// checked loosely.
func TestVerbatimHComparison(t *testing.T) {
	mo := newBCB(t)
	for m := 2; m <= 8; m++ {
		dh := mo.DerivedH(m)
		vh := mo.VerbatimH(m)
		fm := float64(m)
		t.Logf("m=%d: derived h33=%.5g h34=%.5g h36=%.5g h38=%.5g | verbatim·(m−1) h33=%.5g h34=%.5g h36=%.5g h38=%.5g",
			m, dh.H33, dh.H34, dh.H36, dh.H38, (fm-1)*vh.H33, (fm-1)*vh.H34, (fm-1)*vh.H36, (fm-1)*vh.H38)
		for name, pair := range map[string][2]float64{
			"h33": {dh.H33, (fm - 1) * vh.H33},
			"h36": {dh.H36, (fm - 1) * vh.H36},
			"h38": {dh.H38, (fm - 1) * vh.H38},
		} {
			scale := math.Max(1e-9, math.Abs(pair[0]))
			if !eq(pair[0], pair[1], 1e-6*scale) {
				t.Errorf("m=%d: %s derived %g != (m−1)·verbatim %g", m, name, pair[0], pair[1])
			}
		}
		// h34: same sign and within 15% after the (m−1) rescale.
		if r := dh.H34 / ((fm - 1) * vh.H34); r < 0.85 || r > 1.15 {
			t.Errorf("m=%d: h34 ratio %g outside loose band", m, r)
		}
	}
}
