package interact

import (
	"math"
	"math/rand"
	"testing"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
)

// The fast evaluator must agree with the general path everywhere.
func TestPairEvalMatchesPairStress(t *testing.T) {
	mo := newBCB(t)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		vic := geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		ang := rng.Float64() * 2 * math.Pi
		d := 7 + rng.Float64()*15
		agg := vic.Add(geom.Pt(d*math.Cos(ang), d*math.Sin(ang)))
		pe := mo.NewPairEval(vic, agg)
		for k := 0; k < 10; k++ {
			r := 3.05 + rng.Float64()*15
			th := rng.Float64() * 2 * math.Pi
			p := vic.Add(geom.Pt(r*math.Cos(th), r*math.Sin(th)))
			fast := pe.StressAt(p)
			slow := mo.PairStress(p, vic, agg)
			scale := math.Max(1e-9, math.Abs(slow.XX)+math.Abs(slow.YY)+math.Abs(slow.XY))
			if math.Abs(fast.XX-slow.XX) > 1e-9*scale ||
				math.Abs(fast.YY-slow.YY) > 1e-9*scale ||
				math.Abs(fast.XY-slow.XY) > 1e-9*scale {
				t.Fatalf("mismatch at %v (vic %v agg %v): fast %v slow %v", p, vic, agg, fast, slow)
			}
		}
	}
}

func TestPairEvalInteriorFallback(t *testing.T) {
	mo := newBCB(t)
	vic, agg := geom.Pt(0, 0), geom.Pt(9, 0)
	pe := mo.NewPairEval(vic, agg)
	p := geom.Pt(1.5, 0.5) // inside the victim body
	fast := pe.StressAt(p)
	slow := mo.PairStress(p, vic, agg)
	if fast != slow {
		t.Errorf("interior fallback mismatch: %v vs %v", fast, slow)
	}
}

func TestPairEvalDegenerate(t *testing.T) {
	mo := newBCB(t)
	pe := mo.NewPairEval(geom.Pt(1, 1), geom.Pt(1, 1))
	if got := pe.StressAt(geom.Pt(5, 5)); got.XX != 0 || got.YY != 0 || got.XY != 0 {
		t.Errorf("degenerate pair = %v", got)
	}
}

func BenchmarkPairEvalStressAt(b *testing.B) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		b.Fatal(err)
	}
	pe := mo.NewPairEval(geom.Pt(0, 0), geom.Pt(10, 0))
	p := geom.Pt(5, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = pe.StressAt(p)
	}
}

func BenchmarkPairStressGeneral(b *testing.B) {
	mo, err := New(material.Baseline(material.BCB), 0)
	if err != nil {
		b.Fatal(err)
	}
	p := geom.Pt(5, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = mo.PairStress(p, geom.Pt(0, 0), geom.Pt(10, 0))
	}
}
