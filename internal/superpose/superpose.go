// Package superpose implements the linear-superposition (LS) baseline
// method of Jung et al. (DAC'11), the paper's reference [9] and the
// Stage I of its Algorithm 1: every TSV contributes its isolated
// single-TSV stress field, and contributions of TSVs within a cutoff
// distance of the simulation point are superposed.
//
// Two evaluation modes are provided: exact analytical evaluation of the
// Lamé field, and the paper's table look-up (a precomputed radial
// profile with linear interpolation), which is the production mode and
// the one whose run time Table 6 normalizes against.
package superpose

import (
	"fmt"

	"tsvstress/internal/geom"
	"tsvstress/internal/lame"
	"tsvstress/internal/material"
	"tsvstress/internal/spatial"
	"tsvstress/internal/tensor"
)

// DefaultCutoff is the nearby-TSV distance of the paper (25 µm).
const DefaultCutoff = 25.0

// Options configures the LS engine.
type Options struct {
	// Cutoff is the nearby-TSV distance in µm (default 25).
	Cutoff float64
	// Exact disables the radial look-up table and evaluates the Lamé
	// field analytically at every point (slower; used for ablation).
	Exact bool
	// TableStep is the radial table resolution in µm (default 0.01).
	TableStep float64
}

func (o Options) withDefaults() Options {
	if o.Cutoff <= 0 {
		o.Cutoff = DefaultCutoff
	}
	if o.TableStep <= 0 {
		o.TableStep = 0.01
	}
	return o
}

// LS is the linear-superposition engine for one TSV structure. It is
// immutable and safe for concurrent use.
type LS struct {
	Struct material.Structure
	Sol    *lame.Solution
	opt    Options
	table  *radialTable
}

// New builds the LS engine.
func New(st material.Structure, opt Options) (*LS, error) {
	opt = opt.withDefaults()
	sol, err := lame.Solve(st)
	if err != nil {
		return nil, fmt.Errorf("superpose: %w", err)
	}
	ls := &LS{Struct: st, Sol: sol, opt: opt}
	if !opt.Exact {
		ls.table = newRadialTable(sol, opt.Cutoff, opt.TableStep)
	}
	return ls, nil
}

// Cutoff returns the nearby-TSV distance in use, in µm.
func (ls *LS) Cutoff() float64 { return ls.opt.Cutoff }

// Polar returns the axisymmetric single-TSV stress profile in MPa at
// radial distance r ≥ 0 from the center (σrr, σθθ in the TSV's polar
// frame; σrθ is identically zero), using the table look-up or the exact
// Lamé solution per Options. Batched engines use it to rotate polar→
// Cartesian in place without a per-point Atan2. Beyond the cutoff the
// value is not meaningful (callers gate on Cutoff).
func (ls *LS) Polar(r float64) tensor.Polar {
	if ls.table != nil {
		return ls.table.at(r)
	}
	return ls.Sol.PolarAt(r)
}

// Table exposes the radial look-up table backing Polar for fused batch
// kernels that inline the interpolation: the σrr and σθθ profiles
// sampled every step µm from r = 0, with linear interpolation between
// knots and the last interval clamped (exactly what Polar computes in
// table mode). ok is false in Exact mode, where no table exists and
// callers must stay on Polar. The slices are the live table — callers
// must not mutate them.
func (ls *LS) Table() (rr, tt []float64, step float64, ok bool) {
	if ls.table == nil {
		return nil, nil, 0, false
	}
	return ls.table.rr, ls.table.tt, ls.table.step, true
}

// Contribution returns the stress contribution in MPa of a single TSV
// centered at c to the point p (zero beyond the cutoff).
func (ls *LS) Contribution(p, c geom.Point) tensor.Stress {
	rel := p.Sub(c)
	r := rel.Norm()
	if r > ls.opt.Cutoff {
		return tensor.Stress{}
	}
	if r == 0 {
		pol := ls.Sol.PolarAt(0)
		return tensor.Stress{XX: pol.RR, YY: pol.TT}
	}
	return ls.Polar(r).ToCartesian(rel.Angle())
}

// StressAt superposes the contributions, in MPa, of all indexed TSVs
// within the cutoff of p. The index must have been built over the placement's
// center points.
func (ls *LS) StressAt(p geom.Point, ix *spatial.Index) tensor.Stress {
	var s tensor.Stress
	ls.Near(p, ix, func(c geom.Point, r float64) {
		s = s.Add(ls.contributionAt(p, c, r))
	})
	return s
}

// Near visits the TSVs within the cutoff of p.
func (ls *LS) Near(p geom.Point, ix *spatial.Index, fn func(c geom.Point, r float64)) {
	ix.Near(p, ls.opt.Cutoff, func(i int, d float64) {
		fn(ix.At(i), d)
	})
}

func (ls *LS) contributionAt(p, c geom.Point, r float64) tensor.Stress {
	if r == 0 {
		pol := ls.Sol.PolarAt(0)
		return tensor.Stress{XX: pol.RR, YY: pol.TT}
	}
	rel := p.Sub(c)
	return ls.Polar(r).ToCartesian(rel.Angle())
}

// radialTable stores the axisymmetric single-TSV polar stress profile
// on a uniform radial grid for linear interpolation — the paper's
// "table look-up method".
type radialTable struct {
	step float64
	rr   []float64
	tt   []float64
}

func newRadialTable(sol *lame.Solution, cutoff, step float64) *radialTable {
	n := int(cutoff/step) + 2
	t := &radialTable{step: step, rr: make([]float64, n), tt: make([]float64, n)}
	for i := 0; i < n; i++ {
		p := sol.PolarAt(float64(i) * step)
		t.rr[i] = p.RR
		t.tt[i] = p.TT
	}
	return t
}

func (t *radialTable) at(r float64) tensor.Polar {
	f := r / t.step
	i := int(f)
	if i >= len(t.rr)-1 {
		i = len(t.rr) - 2
	}
	w := f - float64(i)
	return tensor.Polar{
		RR: t.rr[i]*(1-w) + t.rr[i+1]*w,
		TT: t.tt[i]*(1-w) + t.tt[i+1]*w,
	}
}
