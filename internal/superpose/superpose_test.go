package superpose

import (
	"math"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
	"tsvstress/internal/spatial"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func newLS(t *testing.T, opt Options) *LS {
	t.Helper()
	ls, err := New(material.Baseline(material.BCB), opt)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func index(pl *geom.Placement) *spatial.Index {
	return spatial.NewIndex(pl.Centers(), DefaultCutoff)
}

func TestNewRejectsBadStructure(t *testing.T) {
	st := material.Baseline(material.BCB)
	st.RPrime = 1
	if _, err := New(st, Options{}); err == nil {
		t.Fatal("invalid structure should fail")
	}
}

func TestSingleTSVMatchesLame(t *testing.T) {
	ls := newLS(t, Options{})
	exact := newLS(t, Options{Exact: true})
	pl := geom.NewPlacement(geom.Pt(0, 0))
	ix := index(pl)
	for _, p := range []geom.Point{{X: 4, Y: 0}, {X: 0, Y: 6}, {X: 5, Y: 5}, {X: -3, Y: 8}} {
		got := ls.StressAt(p, ix)
		want := exact.Sol.StressAt(p, geom.Pt(0, 0))
		scale := math.Max(1, math.Abs(want.XX)+math.Abs(want.YY))
		if !eq(got.XX, want.XX, 1e-3*scale) || !eq(got.YY, want.YY, 1e-3*scale) || !eq(got.XY, want.XY, 1e-3*scale) {
			t.Errorf("table mode at %v: %v, want %v", p, got, want)
		}
		gotE := exact.StressAt(p, ix)
		if !eq(gotE.XX, want.XX, 1e-12*scale) {
			t.Errorf("exact mode at %v: %v, want %v", p, gotE, want)
		}
	}
}

func TestCutoffRespected(t *testing.T) {
	ls := newLS(t, Options{Cutoff: 10})
	if got := ls.Contribution(geom.Pt(10.01, 0), geom.Pt(0, 0)); got.XX != 0 || got.YY != 0 {
		t.Errorf("beyond cutoff should be zero: %v", got)
	}
	if got := ls.Contribution(geom.Pt(9.99, 0), geom.Pt(0, 0)); got.XX == 0 {
		t.Error("inside cutoff should be nonzero")
	}
	if ls.Cutoff() != 10 {
		t.Errorf("Cutoff = %v", ls.Cutoff())
	}
}

func TestSuperpositionLinearity(t *testing.T) {
	// LS of two TSVs must equal the sum of individual contributions.
	ls := newLS(t, Options{})
	pl := geom.NewPlacement(geom.Pt(-5, 0), geom.Pt(5, 0))
	ix := index(pl)
	p := geom.Pt(1, 2)
	got := ls.StressAt(p, ix)
	want := ls.Contribution(p, geom.Pt(-5, 0)).Add(ls.Contribution(p, geom.Pt(5, 0)))
	if !eq(got.XX, want.XX, 1e-9) || !eq(got.YY, want.YY, 1e-9) || !eq(got.XY, want.XY, 1e-9) {
		t.Errorf("superposition broken: %v vs %v", got, want)
	}
}

func TestTableAccuracy(t *testing.T) {
	// The default 0.01 µm table must track the exact profile to better
	// than 0.1% of the local stress across the whole radial range.
	ls := newLS(t, Options{})
	for r := 0.05; r < 25; r += 0.0317 {
		got := ls.Contribution(geom.Pt(r, 0), geom.Pt(0, 0))
		want := ls.Sol.StressAt(geom.Pt(r, 0), geom.Pt(0, 0))
		scale := math.Max(0.5, math.Abs(want.XX))
		if !eq(got.XX, want.XX, 1e-3*scale) {
			t.Fatalf("r=%g: table %v vs exact %v", r, got.XX, want.XX)
		}
	}
}

func TestCenterPoint(t *testing.T) {
	ls := newLS(t, Options{})
	got := ls.Contribution(geom.Pt(0, 0), geom.Pt(0, 0))
	body := ls.Sol.PolarAt(0)
	if !eq(got.XX, body.RR, 1e-12) || !eq(got.YY, body.TT, 1e-12) {
		t.Errorf("center contribution = %v", got)
	}
}

func TestNearVisitsOnlyNearby(t *testing.T) {
	ls := newLS(t, Options{Cutoff: 12})
	pl := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(40, 0))
	ix := spatial.NewIndex(pl.Centers(), 12)
	var visited int
	ls.Near(geom.Pt(5, 0), ix, func(geom.Point, float64) { visited++ })
	if visited != 2 {
		t.Errorf("visited %d TSVs, want 2", visited)
	}
}

func TestManyTSVGridFiniteAndSymmetric(t *testing.T) {
	// 5×5 grid at 10 µm pitch: stress at the grid center must have the
	// symmetry of the placement (σxx = σyy by 90° symmetry).
	var pts []geom.Point
	for i := -2; i <= 2; i++ {
		for j := -2; j <= 2; j++ {
			pts = append(pts, geom.Pt(float64(i)*10, float64(j)*10))
		}
	}
	pl := geom.NewPlacement(pts...)
	ls := newLS(t, Options{})
	ix := index(pl)
	s := ls.StressAt(geom.Pt(5, 5), ix) // center of a grid cell
	if math.IsNaN(s.XX) || math.IsInf(s.XX, 0) {
		t.Fatal("non-finite stress")
	}
	if !eq(s.XX, s.YY, 1e-9) {
		t.Errorf("diagonal symmetry broken: σxx=%v σyy=%v", s.XX, s.YY)
	}
}
