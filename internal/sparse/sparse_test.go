package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/linalg"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

// laplacian1D builds the SPD tridiagonal matrix of a 1D Poisson problem.
func laplacian1D(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.Build()
}

// randSPD builds a random SPD matrix as Aᵀ·A + n·I in dense form and
// converts it to CSR (dense conversion keeps the reference comparable).
func randSPD(rng *rand.Rand, n int) (*CSR, *linalg.Matrix) {
	a := linalg.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	spd := a.T().Mul(a)
	for i := 0; i < n; i++ {
		spd.AddTo(i, i, float64(n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add(i, j, spd.At(i, j))
		}
	}
	return b.Build(), spd
}

func TestBuilderDuplicateSum(t *testing.T) {
	b := NewBuilder(3)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2.5)
	b.Add(0, 2, -1)
	b.Add(2, 0, 4)
	b.Add(1, 1, 0) // zero entries are dropped
	m := b.Build()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 3.5 || m.At(0, 2) != -1 || m.At(2, 0) != 4 {
		t.Fatal("entries wrong after dedup")
	}
	if m.At(1, 1) != 0 || m.At(0, 1) != 0 {
		t.Fatal("absent entries should read as zero")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range should panic")
		}
	}()
	NewBuilder(2).Add(2, 0, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	csr, dense := randSPD(rng, 12)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 12)
	csr.MulVec(x, y)
	want := dense.MulVec(x)
	for i := range y {
		if !eq(y[i], want[i], 1e-9) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestDiagAndSymmetry(t *testing.T) {
	m := laplacian1D(5)
	d := m.Diag()
	for _, v := range d {
		if v != 2 {
			t.Fatalf("Diag = %v", d)
		}
	}
	if m.SymmetryError() != 0 {
		t.Fatalf("SymmetryError = %v", m.SymmetryError())
	}
	// Asymmetric matrix detected.
	b := NewBuilder(2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 3)
	if got := b.Build().SymmetryError(); got != 2 {
		t.Fatalf("SymmetryError = %v, want 2", got)
	}
}

func TestCGLaplacian(t *testing.T) {
	n := 200
	a := laplacian1D(n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i) / 10)
	}
	b := make([]float64, n)
	a.MulVec(xTrue, b)
	for name, prec := range map[string]Preconditioner{
		"identity": IdentityPrec{},
		"jacobi":   nil, // default
		"ssor":     mustSSOR(t, a, 1.2),
	} {
		x := make([]float64, n)
		res, err := CG(a, b, x, CGOptions{Tol: 1e-10, Prec: prec})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range x {
			if !eq(x[i], xTrue[i], 1e-6) {
				t.Fatalf("%s: x[%d] = %v, want %v (iters=%d)", name, i, x[i], xTrue[i], res.Iterations)
			}
		}
	}
}

func mustSSOR(t *testing.T, a *CSR, w float64) *SSORPrec {
	t.Helper()
	p, err := NewSSOR(a, w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCGAgainstDenseLU(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{5, 20, 60} {
		csr, dense := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		if _, err := CG(csr, b, x, CGOptions{Tol: 1e-12}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := linalg.Solve(dense, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !eq(x[i], want[i], 1e-7) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1 // non-zero start must be reset
	}
	res, err := CG(a, make([]float64, 10), x, CGOptions{})
	if err != nil || res.Iterations != 0 {
		t.Fatalf("zero rhs: %v %v", res, err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x should be zeroed")
		}
	}
}

func TestCGNoConvergence(t *testing.T) {
	a := laplacian1D(300)
	b := make([]float64, 300)
	b[150] = 1
	x := make([]float64, 300)
	_, err := CG(a, b, x, CGOptions{Tol: 1e-14, MaxIter: 3, Prec: IdentityPrec{}})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, -1)
	a := b.Build()
	x := make([]float64, 2)
	_, err := CG(a, []float64{1, 1}, x, CGOptions{Prec: IdentityPrec{}})
	if err == nil {
		t.Fatal("indefinite matrix should break down")
	}
}

func TestJacobiRejectsBadDiagonal(t *testing.T) {
	b := NewBuilder(2)
	b.Add(0, 0, 1)
	// (1,1) left empty → zero diagonal.
	if _, err := NewJacobi(b.Build()); err == nil {
		t.Fatal("zero diagonal should be rejected")
	}
}

func TestSSORValidation(t *testing.T) {
	a := laplacian1D(4)
	if _, err := NewSSOR(a, 0); err == nil {
		t.Error("omega=0 should be rejected")
	}
	if _, err := NewSSOR(a, 2); err == nil {
		t.Error("omega=2 should be rejected")
	}
}

func TestSSORBeatsJacobiOnLaplacian(t *testing.T) {
	n := 400
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	xj := make([]float64, n)
	resJ, err := CG(a, b, xj, CGOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, n)
	resS, err := CG(a, b, xs, CGOptions{Tol: 1e-8, Prec: mustSSOR(t, a, 1.5)})
	if err != nil {
		t.Fatal(err)
	}
	if resS.Iterations >= resJ.Iterations {
		t.Errorf("SSOR (%d iters) should beat Jacobi (%d iters) on Laplacian", resS.Iterations, resJ.Iterations)
	}
}
