package sparse

import (
	"errors"
	"fmt"
	"math"
)

// Preconditioner applies z = M⁻¹ r for some SPD approximation M ≈ A.
type Preconditioner interface {
	Apply(r, z []float64)
}

// IdentityPrec is the trivial (no-op) preconditioner.
type IdentityPrec struct{}

// Apply copies r into z.
func (IdentityPrec) Apply(r, z []float64) { copy(z, r) }

// JacobiPrec is diagonal scaling: z_i = r_i / A_ii.
type JacobiPrec struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
// Zero or negative diagonal entries (inadmissible for SPD systems)
// yield an error.
func NewJacobi(a *CSR) (*JacobiPrec, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("sparse: non-positive diagonal %g at row %d", v, i)
		}
		inv[i] = 1 / v
	}
	return &JacobiPrec{invDiag: inv}, nil
}

// Apply implements Preconditioner.
func (p *JacobiPrec) Apply(r, z []float64) {
	for i, v := range r {
		z[i] = v * p.invDiag[i]
	}
}

// SSORPrec is a symmetric successive over-relaxation preconditioner
// M = (D/ω + L) (ω/(2−ω)) D⁻¹ (D/ω + U), a strong smoother for the
// ill-conditioned high-contrast elasticity systems here.
type SSORPrec struct {
	a     *CSR
	diag  []float64
	omega float64
	tmp   []float64
}

// NewSSOR builds an SSOR preconditioner with relaxation factor ω ∈ (0, 2).
func NewSSOR(a *CSR, omega float64) (*SSORPrec, error) {
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("sparse: SSOR omega %g outside (0,2)", omega)
	}
	d := a.Diag()
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("sparse: non-positive diagonal %g at row %d", v, i)
		}
	}
	return &SSORPrec{a: a, diag: d, omega: omega, tmp: make([]float64, a.N)}, nil
}

// Apply implements Preconditioner via a forward then backward sweep.
func (p *SSORPrec) Apply(r, z []float64) {
	a, d, w, y := p.a, p.diag, p.omega, p.tmp
	n := a.N
	// Forward: (D/ω + L) y = r.
	for i := 0; i < n; i++ {
		s := r[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.Col[k]; j < i {
				s -= a.Val[k] * y[j]
			}
		}
		y[i] = s * w / d[i]
	}
	// Scale: y ← ((2−ω)/ω) D y.
	c := (2 - w) / w
	for i := 0; i < n; i++ {
		y[i] *= c * d[i]
	}
	// Backward: (D/ω + U) z = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.Col[k]; j > i {
				s -= a.Val[k] * z[j]
			}
		}
		z[i] = s * w / d[i]
	}
}

// ErrNoConvergence is returned when CG exhausts its iteration budget.
var ErrNoConvergence = errors.New("sparse: conjugate gradient did not converge")

// CGOptions controls the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual target ‖r‖₂ / ‖b‖₂. Default 1e-8.
	Tol float64
	// MaxIter caps the iterations. Default 10·N.
	MaxIter int
	// Prec is the preconditioner. Default Jacobi.
	Prec Preconditioner
}

// CGResult reports solver statistics.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
}

// CG solves A·x = b for SPD A, starting from x (commonly zero), in place.
func CG(a *CSR, b, x []float64, opt CGOptions) (CGResult, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("sparse: CG dimension mismatch")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-8
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	if opt.Prec == nil {
		j, err := NewJacobi(a)
		if err != nil {
			return CGResult{}, err
		}
		opt.Prec = j
	}

	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(x, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{Iterations: 0, Residual: 0}, nil
	}

	opt.Prec.Apply(r, z)
	copy(p, z)
	rz := dot(r, z)

	var res CGResult
	for it := 1; it <= opt.MaxIter; it++ {
		a.MulVec(p, ap)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return res, fmt.Errorf("sparse: CG breakdown (pᵀAp = %g); matrix may not be SPD", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rel := norm2(r) / bnorm
		res = CGResult{Iterations: it, Residual: rel}
		if rel <= opt.Tol {
			return res, nil
		}
		opt.Prec.Apply(r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, fmt.Errorf("%w after %d iterations (residual %.3g)", ErrNoConvergence, opt.MaxIter, res.Residual)
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func norm2(x []float64) float64 {
	return math.Sqrt(dot(x, x))
}
