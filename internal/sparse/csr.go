// Package sparse implements the sparse linear algebra used by the FEM
// substrate: compressed-sparse-row matrices assembled from triplets, and
// a preconditioned conjugate-gradient solver for the symmetric
// positive-definite systems arising from plane-stress elasticity.
package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates (row, col, value) triplets; duplicate entries are
// summed, which matches finite-element assembly semantics.
type Builder struct {
	n       int
	rows    [][]entry
	entries int
}

type entry struct {
	col int
	val float64
}

// NewBuilder creates a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rows: make([][]entry, n)}
}

// Add accumulates v into position (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for n=%d", i, j, b.n))
	}
	if v == 0 {
		return
	}
	b.rows[i] = append(b.rows[i], entry{col: j, val: v})
	b.entries++
}

// N returns the matrix dimension.
func (b *Builder) N() int { return b.n }

// Build compacts the triplets into a CSR matrix, summing duplicates.
func (b *Builder) Build() *CSR {
	m := &CSR{N: b.n, RowPtr: make([]int, b.n+1)}
	// First pass: sort and deduplicate each row.
	for i, row := range b.rows {
		sort.Slice(row, func(a, c int) bool { return row[a].col < row[c].col })
		w := 0
		for r := 0; r < len(row); {
			col, sum := row[r].col, 0.0
			for ; r < len(row) && row[r].col == col; r++ {
				sum += row[r].val
			}
			row[w] = entry{col: col, val: sum}
			w++
		}
		b.rows[i] = row[:w]
		m.RowPtr[i+1] = m.RowPtr[i] + w
	}
	nnz := m.RowPtr[b.n]
	m.Col = make([]int, nnz)
	m.Val = make([]float64, nnz)
	for i, row := range b.rows {
		base := m.RowPtr[i]
		for k, e := range row {
			m.Col[base+k] = e.col
			m.Val[base+k] = e.val
		}
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the entry at (i, j); absent entries are zero. O(log nnz_row).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.Col[lo:hi], j)
	if k < hi && m.Col[k] == j {
		return m.Val[k]
	}
	return 0
}

// MulVec computes y = A·x; y must have length N and is overwritten.
func (m *CSR) MulVec(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.N; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
}

// Diag extracts the diagonal into a new slice.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// SymmetryError returns max |A_ij − A_ji| over stored entries — a sanity
// check for assembled stiffness matrices.
func (m *CSR) SymmetryError() float64 {
	mx := 0.0
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			if d := m.Val[k] - m.At(j, i); d > mx {
				mx = d
			} else if -d > mx {
				mx = -d
			}
		}
	}
	return mx
}
