package placefile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tsvstress/internal/geom"
)

func TestRoundTrip(t *testing.T) {
	pl := geom.NewPlacement(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(0, 10))
	var buf bytes.Buffer
	if err := Encode(&buf, pl, "bcb"); err != nil {
		t.Fatal(err)
	}
	got, st, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("len = %d", got.Len())
	}
	if st.Liner.Name != "BCB" {
		t.Errorf("liner = %q", st.Liner.Name)
	}
	for i := range pl.TSVs {
		if got.TSVs[i].Center != pl.TSVs[i].Center {
			t.Fatal("centers changed in round trip")
		}
	}
}

func TestDecodeLiners(t *testing.T) {
	_, st, err := Decode(strings.NewReader(`{"liner":"sio2","tsvs":[{"x":0,"y":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.Liner.Name != "SiO2" {
		t.Errorf("liner = %q", st.Liner.Name)
	}
	// Default liner is BCB.
	_, st, err = Decode(strings.NewReader(`{"tsvs":[{"x":0,"y":0}]}`))
	if err != nil || st.Liner.Name != "BCB" {
		t.Errorf("default liner = %q, %v", st.Liner.Name, err)
	}
	if _, _, err := Decode(strings.NewReader(`{"liner":"teflon","tsvs":[]}`)); err == nil {
		t.Error("unknown liner should fail")
	}
}

func TestDecodeCustomStructure(t *testing.T) {
	src := `{
	  "structure": {
	    "r_body_um": 2.0, "r_liner_um": 2.4, "delta_t_k": -200,
	    "body": {"name":"cu", "e_gpa":110, "nu":0.35, "cte_ppm_per_k":17},
	    "liner": {"name":"ox", "e_gpa":71, "nu":0.16, "cte_ppm_per_k":0.5},
	    "substrate": {"name":"si", "e_gpa":188, "nu":0.28, "cte_ppm_per_k":2.3}
	  },
	  "tsvs": [{"x":0,"y":0},{"x":8,"y":0}]
	}`
	pl, st, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if st.R != 2.0 || st.RPrime != 2.4 || st.DeltaT != -200 {
		t.Errorf("structure = %+v", st)
	}
	if math.Abs(st.Body.E-110e3) > 1e-9 || math.Abs(st.Liner.CTE-0.5e-6) > 1e-15 {
		t.Error("unit conversion wrong")
	}
	if pl.Len() != 2 {
		t.Errorf("len = %d", pl.Len())
	}
}

func TestDecodeRejectsBad(t *testing.T) {
	cases := []string{
		`{"tsvs":[{"x":0,"y":0},{"x":1,"y":0}]}`, // overlapping vias
		`{"unknown_field":1,"tsvs":[]}`,          // schema violation
		`not json`,
	}
	for _, src := range cases {
		if _, _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q) should fail", src)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := Load("/nonexistent/path.json"); err == nil {
		t.Error("missing file should fail")
	}
}
