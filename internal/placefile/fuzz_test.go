package placefile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode exercises the placement-file parser with arbitrary input:
// it must never panic, and any accepted input must round-trip through
// Encode/Decode without changing the TSV set.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		`{"liner":"bcb","tsvs":[{"x":0,"y":0},{"x":10,"y":0}]}`,
		`{"liner":"sio2","tsvs":[]}`,
		`{"tsvs":[{"x":-3.5,"y":2.25}]}`,
		`{"structure":{"r_body_um":2,"r_liner_um":2.4,"delta_t_k":-200,` +
			`"body":{"name":"cu","e_gpa":110,"nu":0.35,"cte_ppm_per_k":17},` +
			`"liner":{"name":"ox","e_gpa":71,"nu":0.16,"cte_ppm_per_k":0.5},` +
			`"substrate":{"name":"si","e_gpa":188,"nu":0.28,"cte_ppm_per_k":2.3}},"tsvs":[]}`,
		`{`,
		`[]`,
		`{"tsvs":[{"x":1e308,"y":-1e308}]}`,
		`{"liner":"bcb","tsvs":[{"x":0,"y":0},{"x":0,"y":0}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pl, st, err := Decode(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must satisfy the documented invariants.
		if err := st.Validate(); err != nil {
			t.Fatalf("accepted structure fails validation: %v", err)
		}
		if pl.MinPitch() < 2*st.RPrime {
			t.Fatalf("accepted placement violates min pitch")
		}
		// Round trip preserves the TSV set (baseline-liner inputs only;
		// custom structures encode through the liner name anyway).
		var buf bytes.Buffer
		if err := Encode(&buf, pl, "bcb"); err != nil {
			t.Fatalf("encode of accepted placement failed: %v", err)
		}
		pl2, _, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if pl2.Len() != pl.Len() {
			t.Fatalf("round trip changed TSV count: %d vs %d", pl2.Len(), pl.Len())
		}
		for i := range pl.TSVs {
			if pl.TSVs[i].Center != pl2.TSVs[i].Center {
				t.Fatalf("round trip moved TSV %d", i)
			}
		}
	})
}
