// Package placefile reads and writes the JSON placement files the
// command-line tools exchange: a TSV structure specification plus a
// list of via centers.
package placefile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tsvstress/internal/geom"
	"tsvstress/internal/material"
)

// File is the on-disk schema.
type File struct {
	// Liner is "bcb" or "sio2" (selects the paper's baseline
	// structure); ignored when Structure is set.
	Liner string `json:"liner,omitempty"`
	// Structure optionally overrides the full cross-section.
	Structure *StructureSpec `json:"structure,omitempty"`
	// TSVs are the via centers in µm.
	TSVs []XY `json:"tsvs"`
}

// XY is a point in µm.
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// StructureSpec mirrors material.Structure with JSON tags.
type StructureSpec struct {
	R      float64      `json:"r_body_um"`
	RPrime float64      `json:"r_liner_um"`
	DeltaT float64      `json:"delta_t_k"`
	Body   MaterialSpec `json:"body"`
	Liner  MaterialSpec `json:"liner"`
	Subst  MaterialSpec `json:"substrate"`
}

// MaterialSpec mirrors material.Material with JSON tags (E in GPa for
// human-friendliness, CTE in ppm/K).
type MaterialSpec struct {
	Name    string  `json:"name"`
	EGPa    float64 `json:"e_gpa"`
	Nu      float64 `json:"nu"`
	CTEppmK float64 `json:"cte_ppm_per_k"`
}

func (m MaterialSpec) toMaterial() material.Material {
	return material.Material{
		Name: m.Name,
		E:    material.GPa(m.EGPa),
		Nu:   m.Nu,
		CTE:  material.PPMPerK(m.CTEppmK),
	}
}

// Decode parses a placement file.
func Decode(r io.Reader) (*geom.Placement, material.Structure, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, material.Structure{}, fmt.Errorf("placefile: %w", err)
	}
	var st material.Structure
	switch {
	case f.Structure != nil:
		s := f.Structure
		st = material.Structure{
			R: s.R, RPrime: s.RPrime, DeltaT: s.DeltaT,
			Body: s.Body.toMaterial(), Liner: s.Liner.toMaterial(), Substrate: s.Subst.toMaterial(),
		}
	case f.Liner == "bcb" || f.Liner == "":
		st = material.Baseline(material.BCB)
	case f.Liner == "sio2":
		st = material.Baseline(material.SiO2)
	default:
		return nil, st, fmt.Errorf("placefile: unknown liner %q (want bcb or sio2)", f.Liner)
	}
	if err := st.Validate(); err != nil {
		return nil, st, fmt.Errorf("placefile: %w", err)
	}
	pts := make([]geom.Point, len(f.TSVs))
	for i, t := range f.TSVs {
		pts[i] = geom.Pt(t.X, t.Y)
	}
	pl := geom.NewPlacement(pts...)
	if err := pl.Validate(2 * st.RPrime); err != nil {
		return nil, st, fmt.Errorf("placefile: %w", err)
	}
	return pl, st, nil
}

// Encode writes a placement using a named baseline liner.
func Encode(w io.Writer, pl *geom.Placement, liner string) error {
	f := File{Liner: liner}
	for _, t := range pl.TSVs {
		f.TSVs = append(f.TSVs, XY{X: t.Center.X, Y: t.Center.Y})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Load reads a placement from a path ("-" for stdin).
func Load(path string) (*geom.Placement, material.Structure, error) {
	if path == "-" {
		return Decode(os.Stdin)
	}
	fh, err := os.Open(path)
	if err != nil {
		return nil, material.Structure{}, err
	}
	defer fh.Close()
	return Decode(fh)
}
