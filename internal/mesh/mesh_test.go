package mesh

import (
	"testing"
	"tsvstress/internal/floats"

	"tsvstress/internal/geom"
)

func eq(a, b, tol float64) bool { return floats.AlmostEqual(a, b, tol) }

func grid10(t *testing.T) *Grid {
	t.Helper()
	g, err := New(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 5)}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Rect{Min: geom.Pt(1, 0), Max: geom.Pt(0, 1)}, 1); err == nil {
		t.Error("inverted domain should fail")
	}
	if _, err := New(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}, 0); err == nil {
		t.Error("zero h should fail")
	}
	if _, err := New(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(0, 1)}, 1); err == nil {
		t.Error("zero-width domain should fail")
	}
}

func TestGridDimensions(t *testing.T) {
	g := grid10(t)
	if g.NX != 10 || g.NY != 5 {
		t.Fatalf("NX/NY = %d/%d", g.NX, g.NY)
	}
	if g.NumNodes() != 66 || g.NumElems() != 50 {
		t.Fatalf("nodes/elems = %d/%d", g.NumNodes(), g.NumElems())
	}
	if !eq(g.DX, 1, 1e-12) || !eq(g.DY, 1, 1e-12) {
		t.Fatalf("DX/DY = %v/%v", g.DX, g.DY)
	}
	// Non-divisible h shrinks to fit exactly.
	g2, err := New(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 5)}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(float64(g2.NX)*g2.DX, 10, 1e-12) || !eq(float64(g2.NY)*g2.DY, 5, 1e-12) {
		t.Error("elements do not tile the domain exactly")
	}
}

func TestNodeIndexing(t *testing.T) {
	g := grid10(t)
	if g.NodeID(0, 0) != 0 || g.NodeID(10, 0) != 10 || g.NodeID(0, 1) != 11 {
		t.Fatal("NodeID wrong")
	}
	if p := g.NodeXY(3, 2); p != geom.Pt(3, 2) {
		t.Fatalf("NodeXY = %v", p)
	}
	// All node ids unique and within range.
	seen := make(map[int]bool)
	for j := 0; j <= g.NY; j++ {
		for i := 0; i <= g.NX; i++ {
			id := g.NodeID(i, j)
			if id < 0 || id >= g.NumNodes() || seen[id] {
				t.Fatalf("bad node id %d at (%d,%d)", id, i, j)
			}
			seen[id] = true
		}
	}
}

func TestElemIndexing(t *testing.T) {
	g := grid10(t)
	for e := 0; e < g.NumElems(); e++ {
		i, j := g.ElemIJ(e)
		if g.ElemID(i, j) != e {
			t.Fatalf("ElemID/ElemIJ roundtrip failed at %d", e)
		}
		n := g.ElemNodes(e)
		// CCW order: lower-left, lower-right, upper-right, upper-left.
		if n[1] != n[0]+1 || n[3] != n[0]+g.NX+1 || n[2] != n[3]+1 {
			t.Fatalf("ElemNodes(%d) = %v not CCW-consistent", e, n)
		}
	}
	if c := g.ElemCenter(0); c != geom.Pt(0.5, 0.5) {
		t.Fatalf("ElemCenter(0) = %v", c)
	}
}

func TestBoundaryNodes(t *testing.T) {
	g := grid10(t)
	if !g.IsBoundaryNode(0, 3) || !g.IsBoundaryNode(10, 0) || !g.IsBoundaryNode(4, 5) {
		t.Error("boundary nodes not detected")
	}
	if g.IsBoundaryNode(5, 2) {
		t.Error("interior node misclassified")
	}
}

func TestLocate(t *testing.T) {
	g := grid10(t)
	e, xi, eta, ok := g.Locate(geom.Pt(2.5, 1.5))
	if !ok || e != g.ElemID(2, 1) {
		t.Fatalf("Locate center: e=%d ok=%v", e, ok)
	}
	if !eq(xi, 0, 1e-12) || !eq(eta, 0, 1e-12) {
		t.Fatalf("center local coords = %v, %v", xi, eta)
	}
	// Corner of the domain.
	e, xi, eta, ok = g.Locate(geom.Pt(0, 0))
	if !ok || e != 0 || !eq(xi, -1, 1e-12) || !eq(eta, -1, 1e-12) {
		t.Fatalf("corner locate: e=%d ξ=%v η=%v ok=%v", e, xi, eta, ok)
	}
	// Outside: clamped, not ok.
	e, xi, _, ok = g.Locate(geom.Pt(-3, 1.5))
	if ok || e != g.ElemID(0, 1) || xi != -1 {
		t.Fatalf("outside locate: e=%d ξ=%v ok=%v", e, xi, ok)
	}
}

func TestCellInterpPartitionOfUnity(t *testing.T) {
	g := grid10(t)
	for _, p := range []geom.Point{{X: 2.5, Y: 1.5}, {X: 0.1, Y: 0.1}, {X: 9.9, Y: 4.9}, {X: 5.0, Y: 2.0}} {
		cells, w := g.CellInterp(p)
		sum := 0.0
		for k, wk := range w {
			if wk < -1e-12 || wk > 1+1e-12 {
				t.Fatalf("weight %v out of range at %v", wk, p)
			}
			if cells[k] < 0 || cells[k] >= g.NumElems() {
				t.Fatalf("cell %d out of range at %v", cells[k], p)
			}
			sum += wk
		}
		if !eq(sum, 1, 1e-12) {
			t.Fatalf("weights sum to %v at %v", sum, p)
		}
	}
}

func TestCellInterpReproducesLinearField(t *testing.T) {
	g := grid10(t)
	// Field f(x,y) = 2x − 3y sampled at cell centers must be
	// reproduced exactly by bilinear interpolation away from edges.
	vals := make([]float64, g.NumElems())
	for e := range vals {
		c := g.ElemCenter(e)
		vals[e] = 2*c.X - 3*c.Y
	}
	for _, p := range []geom.Point{{X: 3.3, Y: 2.2}, {X: 6.7, Y: 1.9}, {X: 5.0, Y: 2.5}} {
		cells, w := g.CellInterp(p)
		got := 0.0
		for k := range cells {
			got += w[k] * vals[cells[k]]
		}
		want := 2*p.X - 3*p.Y
		if !eq(got, want, 1e-10) {
			t.Errorf("interp at %v = %v, want %v", p, got, want)
		}
	}
}

func TestElemCenterOfLocate(t *testing.T) {
	g := grid10(t)
	for e := 0; e < g.NumElems(); e++ {
		c := g.ElemCenter(e)
		le, xi, eta, ok := g.Locate(c)
		if !ok || le != e || !eq(xi, 0, 1e-9) || !eq(eta, 0, 1e-9) {
			t.Fatalf("Locate(ElemCenter(%d)) = %d (%v,%v)", e, le, xi, eta)
		}
	}
}
