// Package mesh provides the structured quadrilateral mesh used by the
// plane-stress FEM substrate. The mesh covers an axis-aligned
// rectangular domain with a uniform grid of 4-node quadrilateral
// elements; all geometric queries (node/element indexing, point
// location, bilinear interpolation weights) live here.
package mesh

import (
	"fmt"
	"math"

	"tsvstress/internal/geom"
)

// Grid is a uniform structured quad mesh over Domain with NX×NY
// elements of size DX×DY.
type Grid struct {
	Domain geom.Rect
	NX, NY int
	DX, DY float64
}

// New builds a grid over domain with target element size h; the actual
// element sizes divide the domain exactly.
func New(domain geom.Rect, h float64) (*Grid, error) {
	if !domain.Valid() || domain.W() <= 0 || domain.H() <= 0 {
		return nil, fmt.Errorf("mesh: invalid domain %+v", domain)
	}
	if h <= 0 {
		return nil, fmt.Errorf("mesh: element size %g must be positive", h)
	}
	nx := int(math.Ceil(domain.W() / h))
	ny := int(math.Ceil(domain.H() / h))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		Domain: domain,
		NX:     nx,
		NY:     ny,
		DX:     domain.W() / float64(nx),
		DY:     domain.H() / float64(ny),
	}, nil
}

// NumNodes returns the node count (NX+1)·(NY+1).
func (g *Grid) NumNodes() int { return (g.NX + 1) * (g.NY + 1) }

// NumElems returns the element count NX·NY.
func (g *Grid) NumElems() int { return g.NX * g.NY }

// NodeID maps grid indices (i ∈ [0,NX], j ∈ [0,NY]) to a node id.
func (g *Grid) NodeID(i, j int) int { return j*(g.NX+1) + i }

// NodeXY returns the coordinates of node (i, j).
func (g *Grid) NodeXY(i, j int) geom.Point {
	return geom.Pt(g.Domain.Min.X+float64(i)*g.DX, g.Domain.Min.Y+float64(j)*g.DY)
}

// ElemID maps element indices (i ∈ [0,NX), j ∈ [0,NY)) to an element id.
func (g *Grid) ElemID(i, j int) int { return j*g.NX + i }

// ElemIJ inverts ElemID.
func (g *Grid) ElemIJ(e int) (i, j int) { return e % g.NX, e / g.NX }

// ElemNodes returns the four node ids of element e in counter-clockwise
// order starting at the lower-left corner.
func (g *Grid) ElemNodes(e int) [4]int {
	i, j := g.ElemIJ(e)
	return [4]int{
		g.NodeID(i, j),
		g.NodeID(i+1, j),
		g.NodeID(i+1, j+1),
		g.NodeID(i, j+1),
	}
}

// ElemCenter returns the centroid of element e.
func (g *Grid) ElemCenter(e int) geom.Point {
	i, j := g.ElemIJ(e)
	return geom.Pt(
		g.Domain.Min.X+(float64(i)+0.5)*g.DX,
		g.Domain.Min.Y+(float64(j)+0.5)*g.DY,
	)
}

// IsBoundaryNode reports whether node (i, j) lies on the domain boundary.
func (g *Grid) IsBoundaryNode(i, j int) bool {
	return i == 0 || j == 0 || i == g.NX || j == g.NY
}

// Locate returns the element containing p and the local isoparametric
// coordinates (ξ, η) ∈ [−1, 1]². Points outside the domain are clamped
// to the nearest element; ok reports whether p was inside.
func (g *Grid) Locate(p geom.Point) (e int, xi, eta float64, ok bool) {
	fx := (p.X - g.Domain.Min.X) / g.DX
	fy := (p.Y - g.Domain.Min.Y) / g.DY
	ok = fx >= 0 && fy >= 0 && fx <= float64(g.NX) && fy <= float64(g.NY)
	i := int(math.Floor(fx))
	j := int(math.Floor(fy))
	i = clamp(i, 0, g.NX-1)
	j = clamp(j, 0, g.NY-1)
	xi = 2*(fx-float64(i)) - 1
	eta = 2*(fy-float64(j)) - 1
	xi = clampF(xi, -1, 1)
	eta = clampF(eta, -1, 1)
	return g.ElemID(i, j), xi, eta, ok
}

// CellInterp returns, for a field stored at element centers, the four
// surrounding cell ids and bilinear weights for point p. Cells are
// clamped at the domain edge (constant extrapolation).
func (g *Grid) CellInterp(p geom.Point) (cells [4]int, w [4]float64) {
	// Cell-center coordinates form a grid offset by half a cell.
	fx := (p.X-g.Domain.Min.X)/g.DX - 0.5
	fy := (p.Y-g.Domain.Min.Y)/g.DY - 0.5
	i0 := clamp(int(math.Floor(fx)), 0, g.NX-1)
	j0 := clamp(int(math.Floor(fy)), 0, g.NY-1)
	i1 := clamp(i0+1, 0, g.NX-1)
	j1 := clamp(j0+1, 0, g.NY-1)
	tx := clampF(fx-float64(i0), 0, 1)
	ty := clampF(fy-float64(j0), 0, 1)
	cells = [4]int{g.ElemID(i0, j0), g.ElemID(i1, j0), g.ElemID(i1, j1), g.ElemID(i0, j1)}
	w = [4]float64{(1 - tx) * (1 - ty), tx * (1 - ty), tx * ty, (1 - tx) * ty}
	return cells, w
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
