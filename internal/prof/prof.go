// Package prof is the repo's one profiling seam: file-based CPU/heap
// profile collection for the CLI tools (tsvexp -bench -cpuprofile ...)
// and the pprof debug endpoints the serving stack mounts next to
// /debug/vars. It wraps runtime/pprof and net/http/pprof so the
// commands share flag semantics and none of them imports the pprof
// machinery directly.
package prof

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runpprof "runtime/pprof"
)

// Start begins profile collection. cpuPath != "" starts a CPU profile
// immediately; memPath != "" records a heap profile when the returned
// stop function runs. Either path may be empty; with both empty Start
// is a no-op and stop never fails.
//
// The returned stop must be called exactly once, on the normal exit
// path (a log.Fatal skips it — an aborted run has no profile worth
// keeping). It stops the CPU profile, snapshots the heap profile after
// a final GC (so the live set, not transient garbage, is what the
// profile shows), and reports the first file error.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := runpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			runpprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("prof: closing %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			if err := writeHeap(memPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeap snapshots the heap profile into path.
func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	runtime.GC() // settle the live set before snapshotting
	if err := runpprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("prof: writing heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prof: closing %s: %w", path, err)
	}
	return nil
}

// Handler returns the net/http/pprof handler tree, for mounting at
// /debug/pprof/ on a service mux. The index page lists every runtime
// profile (heap, goroutine, mutex, ...); /profile streams a CPU
// profile, /trace an execution trace — `go tool pprof
// http://host/debug/pprof/profile` against a live tsvserve is the
// production twin of `tsvexp -bench -cpuprofile`.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
