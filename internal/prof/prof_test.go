package prof

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i) * 1e-9
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("want error for uncreatable CPU profile path")
	}
}

func TestHandlerServesIndex(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("index status %d", res.StatusCode)
	}
	buf := make([]byte, 4096)
	n, _ := res.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "heap") {
		t.Error("index page does not list the heap profile")
	}
}
