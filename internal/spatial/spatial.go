// Package spatial provides a uniform hash-grid index over TSV centers
// for the O(1) nearby-TSV queries both stages of the full-chip
// framework rely on (Algorithm 1 of the paper: only TSVs within a
// cutoff distance of a simulation point contribute).
package spatial

//tsvlint:hotpath

import (
	"math"

	"tsvstress/internal/geom"
)

// Index is an immutable uniform-grid spatial index over points.
type Index struct {
	cell    float64
	minX    float64
	minY    float64
	nx, ny  int
	buckets [][]int32
	pts     []geom.Point
}

// NewIndex builds an index with the given cell size (commonly the query
// radius, so a query touches at most 3×3 cells). cellSize must be
// positive; an empty point set is allowed.
func NewIndex(pts []geom.Point, cellSize float64) *Index {
	if cellSize <= 0 {
		panic("spatial: cell size must be positive")
	}
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	ix := &Index{cell: cellSize, pts: own}
	if len(pts) == 0 {
		ix.nx, ix.ny = 1, 1
		ix.buckets = make([][]int32, 1)
		return ix
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ix.minX, ix.minY = minX, minY
	ix.nx = int((maxX-minX)/cellSize) + 1
	ix.ny = int((maxY-minY)/cellSize) + 1
	// Counting sort into one index slab: size every bucket exactly, then
	// fill, so construction performs three allocations total and the
	// bucket contents are contiguous in query order.
	counts := make([]int32, ix.nx*ix.ny)
	for i := range own {
		counts[ix.bucketOf(own[i])]++
	}
	offs := make([]int32, len(counts))
	var sum int32
	for b, n := range counts {
		offs[b] = sum
		sum += n
	}
	slab := make([]int32, len(own))
	for i := range own {
		b := ix.bucketOf(own[i])
		slab[offs[b]] = int32(i)
		offs[b]++
	}
	ix.buckets = make([][]int32, len(counts))
	sum = 0
	for b, n := range counts {
		ix.buckets[b] = slab[sum : sum+n]
		sum += n
	}
	return ix
}

func (ix *Index) bucketOf(p geom.Point) int {
	cx := int((p.X - ix.minX) / ix.cell)
	cy := int((p.Y - ix.minY) / ix.cell)
	cx = clampInt(cx, 0, ix.nx-1)
	cy = clampInt(cy, 0, ix.ny-1)
	return cy*ix.nx + cx
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.pts) }

// At returns indexed point i.
func (ix *Index) At(i int) geom.Point { return ix.pts[i] }

// Near calls fn for every indexed point within radius of q (inclusive).
// Order is unspecified.
func (ix *Index) Near(q geom.Point, radius float64, fn func(i int, d float64)) {
	if len(ix.pts) == 0 {
		return
	}
	r2 := radius * radius
	cx0 := int(math.Floor((q.X - radius - ix.minX) / ix.cell))
	cx1 := int(math.Floor((q.X + radius - ix.minX) / ix.cell))
	cy0 := int(math.Floor((q.Y - radius - ix.minY) / ix.cell))
	cy1 := int(math.Floor((q.Y + radius - ix.minY) / ix.cell))
	cx0 = clampInt(cx0, 0, ix.nx-1)
	cx1 = clampInt(cx1, 0, ix.nx-1)
	cy0 = clampInt(cy0, 0, ix.ny-1)
	cy1 = clampInt(cy1, 0, ix.ny-1)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, i := range ix.buckets[cy*ix.nx+cx] {
				p := ix.pts[i]
				dx, dy := p.X-q.X, p.Y-q.Y
				if d2 := dx*dx + dy*dy; d2 <= r2 {
					fn(int(i), math.Sqrt(d2))
				}
			}
		}
	}
}

// AppendNear appends to dst the indices of the points within radius of
// q (inclusive), in the same unspecified order Near uses, and returns
// the extended slice. It performs no allocation when dst has capacity —
// batched engines reuse one scratch slice across many queries.
func (ix *Index) AppendNear(dst []int32, q geom.Point, radius float64) []int32 {
	if len(ix.pts) == 0 {
		return dst
	}
	r2 := radius * radius
	cx0 := clampInt(int(math.Floor((q.X-radius-ix.minX)/ix.cell)), 0, ix.nx-1)
	cx1 := clampInt(int(math.Floor((q.X+radius-ix.minX)/ix.cell)), 0, ix.nx-1)
	cy0 := clampInt(int(math.Floor((q.Y-radius-ix.minY)/ix.cell)), 0, ix.ny-1)
	cy1 := clampInt(int(math.Floor((q.Y+radius-ix.minY)/ix.cell)), 0, ix.ny-1)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, i := range ix.buckets[cy*ix.nx+cx] {
				p := ix.pts[i]
				dx, dy := p.X-q.X, p.Y-q.Y
				if dx*dx+dy*dy <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// NearIDs returns the indices within radius of q, in unspecified order.
func (ix *Index) NearIDs(q geom.Point, radius float64) []int {
	ids := ix.AppendNear(make([]int32, 0, 16), q, radius)
	out := make([]int, len(ids))
	for k, i := range ids {
		out[k] = int(i)
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
