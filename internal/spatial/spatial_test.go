package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"tsvstress/internal/geom"
)

func TestEmptyIndex(t *testing.T) {
	ix := NewIndex(nil, 10)
	if ix.Len() != 0 {
		t.Fatal("empty index should have Len 0")
	}
	called := false
	ix.Near(geom.Pt(0, 0), 100, func(int, float64) { called = true })
	if called {
		t.Fatal("Near on empty index should not call fn")
	}
	if ids := ix.NearIDs(geom.Pt(0, 0), 100); len(ids) != 0 {
		t.Fatal("NearIDs should be empty")
	}
}

func TestBadCellSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero cell size should panic")
		}
	}()
	NewIndex(nil, 0)
}

func TestSinglePoint(t *testing.T) {
	ix := NewIndex([]geom.Point{geom.Pt(5, 5)}, 3)
	if ix.At(0) != geom.Pt(5, 5) {
		t.Fatal("At wrong")
	}
	if got := ix.NearIDs(geom.Pt(5, 6), 1.0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("NearIDs = %v", got)
	}
	if got := ix.NearIDs(geom.Pt(5, 7), 1.0); len(got) != 0 {
		t.Fatalf("NearIDs = %v, want empty", got)
	}
	// Boundary inclusive.
	if got := ix.NearIDs(geom.Pt(5, 7), 2.0); len(got) != 1 {
		t.Fatalf("boundary point should be included: %v", got)
	}
}

func TestNearMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		}
		cell := 1 + rng.Float64()*30
		ix := NewIndex(pts, cell)
		for q := 0; q < 10; q++ {
			query := geom.Pt(rng.Float64()*240-120, rng.Float64()*240-120)
			radius := rng.Float64() * 50
			got := ix.NearIDs(query, radius)
			sort.Ints(got)
			var want []int
			for i, p := range pts {
				if p.Dist(query) <= radius {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("trial %d: ids differ: %v vs %v", trial, got, want)
				}
			}
		}
	}
}

func TestNearReportsDistance(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	ix := NewIndex(pts, 5)
	ix.Near(geom.Pt(0, 0), 10, func(i int, d float64) {
		want := pts[i].Dist(geom.Pt(0, 0))
		if d != want {
			t.Errorf("distance for %d = %v, want %v", i, d, want)
		}
	})
}

func TestDegenerateColinear(t *testing.T) {
	// All points on one horizontal line: grid has ny == 1.
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Pt(float64(i)*2, 7))
	}
	ix := NewIndex(pts, 5)
	got := ix.NearIDs(geom.Pt(50, 7), 4.1)
	if len(got) != 5 { // x ∈ {46,48,50,52,54}
		t.Fatalf("NearIDs = %v", got)
	}
}

func TestAppendNearMatchesNear(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(10, 10), geom.Pt(-2, 1), geom.Pt(5, -5), geom.Pt(25, 0)}
	ix := NewIndex(pts, 5)
	for _, q := range []geom.Point{geom.Pt(0, 0), geom.Pt(4, 4), geom.Pt(30, 30), geom.Pt(-3, -3)} {
		for _, r := range []float64{0, 2, 5, 12, 100} {
			want := map[int]bool{}
			ix.Near(q, r, func(i int, _ float64) { want[i] = true })
			got := ix.AppendNear(nil, q, r)
			if len(got) != len(want) {
				t.Fatalf("q=%v r=%g: AppendNear %d ids, Near %d", q, r, len(got), len(want))
			}
			for _, i := range got {
				if !want[int(i)] {
					t.Fatalf("q=%v r=%g: unexpected id %d", q, r, i)
				}
			}
		}
	}
	// Reuse without reallocation.
	buf := make([]int32, 0, 16)
	out := ix.AppendNear(buf[:0], geom.Pt(0, 0), 100)
	if len(out) != len(pts) || &out[0] != &buf[:1][0] {
		t.Error("AppendNear must reuse the provided buffer capacity")
	}
}

func TestAppendNearEmptyIndex(t *testing.T) {
	ix := NewIndex(nil, 5)
	if got := ix.AppendNear(nil, geom.Pt(0, 0), 10); len(got) != 0 {
		t.Errorf("empty index returned %d ids", len(got))
	}
}
