package resilience

import (
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := BackoffConfig{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond, Factor: 2, Jitter: 0.2, Seed: 7}
	for attempt := 1; attempt <= 12; attempt++ {
		a, b := cfg.Next(attempt), cfg.Next(attempt)
		if a != b {
			t.Fatalf("attempt %d: Next is not deterministic: %v vs %v", attempt, a, b)
		}
		lo := time.Duration(float64(cfg.Base) * 0.8)
		hi := time.Duration(float64(cfg.Max) * 1.2)
		if a < lo || a > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, a, lo, hi)
		}
	}
	// Different seeds give different jitter streams (with overwhelming
	// probability over 12 attempts).
	other := cfg
	other.Seed = 8
	same := true
	for attempt := 1; attempt <= 12; attempt++ {
		if cfg.Next(attempt) != other.Next(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

func TestBackoffJitterFreeGrowth(t *testing.T) {
	cfg := BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := cfg.Next(i + 1); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBudgetBoundsRetries(t *testing.T) {
	b := NewBudget(BudgetConfig{MaxTokens: 3, RetryCost: 1, SuccessRefund: 0.5})
	granted := 0
	for i := 0; i < 10; i++ {
		if b.TryRetry() {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("granted %d retries from a 3-token bucket", granted)
	}
	if b.Exhausted() != 7 {
		t.Fatalf("exhausted %d, want 7", b.Exhausted())
	}
	// Two successes refund one token.
	b.OnSuccess()
	b.OnSuccess()
	if !b.TryRetry() {
		t.Fatal("refunded token not granted")
	}
	if b.TryRetry() {
		t.Fatal("bucket granted more than the refund")
	}
	// Refunds cap at MaxTokens.
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens %g after heavy refund, want cap 3", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, Clock: clock})

	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("new breaker is not closed/allowing")
	}
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess() // resets the consecutive count
	b.OnFailure()
	b.OnFailure()
	if b.State() != StateClosed {
		t.Fatal("breaker tripped before threshold of consecutive failures")
	}
	b.OnFailure()
	if b.State() != StateOpen || b.Opens() != 1 {
		t.Fatalf("state %v opens %d after threshold, want open/1", b.State(), b.Opens())
	}
	if b.Allow() || !b.Tripped() {
		t.Fatal("open breaker admitted a call inside the cool-down")
	}
	// Cool-down elapses: exactly MaxProbes (1) trial call is admitted.
	now = now.Add(time.Second)
	if b.Tripped() {
		t.Fatal("expired open breaker still reports tripped")
	}
	if !b.Allow() {
		t.Fatal("expired open breaker refused the probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state %v after probe admit, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted with MaxProbes=1")
	}
	// Probe fails: re-open, new cool-down.
	b.OnFailure()
	if b.State() != StateOpen || b.Opens() != 2 {
		t.Fatalf("state %v opens %d after failed probe, want open/2", b.State(), b.Opens())
	}
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.OnSuccess()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestDeadlineForClamps(t *testing.T) {
	cfg := DeadlineConfig{Floor: time.Second, Ceil: 10 * time.Second, PerUnit: 100 * time.Millisecond}
	cases := []struct {
		units int
		want  time.Duration
	}{
		{-5, time.Second},
		{0, time.Second},
		{10, 2 * time.Second},
		{1000, 10 * time.Second},
		{1 << 50, 10 * time.Second}, // overflow clamps to the ceiling
	}
	for _, c := range cases {
		if got := cfg.For(c.units); got != c.want {
			t.Errorf("For(%d) = %v, want %v", c.units, got, c.want)
		}
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxAttempts != 3 {
		t.Errorf("MaxAttempts default %d", c.MaxAttempts)
	}
	if c.Budget.MaxTokens != 64 || c.Budget.RetryCost != 1 {
		t.Errorf("budget defaults %+v", c.Budget)
	}
	if c.Breaker.FailureThreshold != 5 || c.Breaker.OpenFor != 2*time.Second {
		t.Errorf("breaker defaults %+v", c.Breaker)
	}
	if c.PoolBreaker.FailureThreshold != 2 || c.PoolBreaker.OpenFor != 5*time.Second {
		t.Errorf("pool breaker defaults %+v", c.PoolBreaker)
	}
	if c.Deadline.Floor != 2*time.Second || c.Deadline.Ceil != 60*time.Second {
		t.Errorf("deadline defaults %+v", c.Deadline)
	}
	if c.Backoff.Seed != 1 || c.Backoff.Jitter != 0.2 {
		t.Errorf("backoff defaults %+v", c.Backoff)
	}
}
