package resilience

import (
	"math"
	"sync"
)

// BudgetConfig sizes a retry token bucket.
type BudgetConfig struct {
	// MaxTokens is the bucket capacity and initial fill (default 64).
	MaxTokens float64
	// RetryCost is the tokens one retry consumes (default 1).
	RetryCost float64
	// SuccessRefund is the tokens one success returns to the bucket,
	// capped at MaxTokens (default 0.1) — a mostly-healthy system earns
	// its retries back, a mostly-failing one drains and stays drained.
	SuccessRefund float64
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	if c.MaxTokens <= 0 || math.IsNaN(c.MaxTokens) {
		c.MaxTokens = 64
	}
	if c.RetryCost <= 0 || math.IsNaN(c.RetryCost) {
		c.RetryCost = 1
	}
	if c.SuccessRefund < 0 || math.IsNaN(c.SuccessRefund) {
		c.SuccessRefund = 0.1
	}
	return c
}

// Budget is a process-wide retry token bucket: every retry (not first
// attempts) must acquire RetryCost tokens or be dropped. Per-call
// attempt bounds stop one sick RPC from spinning; the shared budget
// stops a dying fleet from multiplying bounded retries across every
// in-flight call into a storm. Safe for concurrent use.
type Budget struct {
	mu        sync.Mutex
	cfg       BudgetConfig
	tokens    float64
	retries   int64
	exhausted int64
}

// NewBudget builds a full bucket (zero-value config → defaults).
func NewBudget(cfg BudgetConfig) *Budget {
	cfg = cfg.withDefaults()
	return &Budget{cfg: cfg, tokens: cfg.MaxTokens}
}

// TryRetry acquires one retry's worth of tokens, reporting whether the
// caller may retry. A denied retry counts toward Exhausted.
func (b *Budget) TryRetry() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < b.cfg.RetryCost {
		b.exhausted++
		return false
	}
	b.tokens -= b.cfg.RetryCost
	b.retries++
	return true
}

// OnSuccess refunds SuccessRefund tokens, capped at the bucket size.
func (b *Budget) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.cfg.SuccessRefund
	if b.tokens > b.cfg.MaxTokens {
		b.tokens = b.cfg.MaxTokens
	}
}

// Tokens returns the current token balance (dimensionless retry
// tokens).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Retries returns how many retries the budget has granted.
func (b *Budget) Retries() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retries
}

// Exhausted returns how many retries were denied for lack of tokens.
func (b *Budget) Exhausted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}
