package resilience

import (
	"sync"
	"time"
)

// State is a breaker's position.
type State int32

const (
	// StateClosed: traffic flows; consecutive failures are counted.
	StateClosed State = iota
	// StateOpen: traffic is refused until OpenFor has elapsed.
	StateOpen
	// StateHalfOpen: up to MaxProbes trial calls are admitted; the
	// first success closes the breaker, any failure re-opens it.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// closed breaker open (default 5).
	FailureThreshold int
	// OpenFor is the cool-down an open breaker waits before admitting
	// probes (default 2s).
	OpenFor time.Duration
	// MaxProbes bounds concurrently admitted half-open trial calls
	// (default 1).
	MaxProbes int
	// Clock overrides time.Now (tests; nil uses the real clock).
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 1
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a classic closed/open/half-open circuit breaker. Callers
// ask Allow before work and report OnSuccess/OnFailure after; while
// open, Allow refuses until OpenFor elapses, then admits MaxProbes
// trial calls whose outcomes close or re-open the circuit. Safe for
// concurrent use.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    State
	fails    int // consecutive failures while closed
	openedAt time.Time
	probes   int // admitted, unresolved half-open probes
	opens    int64
}

// NewBreaker builds a closed breaker (zero-value config → defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed, transitioning an expired
// open breaker to half-open and accounting the admitted probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = StateHalfOpen
		b.probes = 1
		return true
	default: // half-open
		if b.probes >= b.cfg.MaxProbes {
			return false
		}
		b.probes++
		return true
	}
}

// OnSuccess records a successful call: it closes a half-open breaker
// and clears the consecutive-failure count.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == StateHalfOpen {
		b.state = StateClosed
		b.probes = 0
	}
}

// OnFailure records a failed call: it trips a closed breaker once the
// threshold is reached and re-opens a half-open one immediately. A
// failure reported while already open (a straggler from before the
// trip) is ignored.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	case StateHalfOpen:
		b.tripLocked()
	}
}

// tripLocked opens the circuit; caller holds mu.
func (b *Breaker) tripLocked() {
	b.state = StateOpen
	b.openedAt = b.cfg.Clock()
	b.fails = 0
	b.probes = 0
	b.opens++
}

// State returns the breaker's raw position without side effects (an
// expired open breaker still reports open until Allow probes it).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Tripped reports whether the breaker is open and still cooling down —
// the non-mutating check schedulers use to skip an endpoint without
// consuming a half-open probe slot.
func (b *Breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == StateOpen && b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
