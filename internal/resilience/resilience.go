// Package resilience is the cluster/serving tier's failure-handling
// policy kit: retry budgets, exponential backoff with deterministic
// jitter, circuit breakers and per-RPC deadline derivation. It is
// stdlib-only, allocation-light and — deliberately — deterministic:
// every jittered delay is a pure function of a seed and an attempt
// number, so chaos tests can assert exact retry schedules and total
// attempt counts instead of sleeping and hoping.
//
// The pieces compose but do not know about each other:
//
//   - Budget is a process-wide retry token bucket: bounded attempts per
//     call stop one sick RPC from spinning, the budget stops a dying
//     fleet from multiplying that across every call (retry storms).
//   - BackoffConfig.Next spaces the attempts that are allowed.
//   - Breaker stops routing to an endpoint that keeps failing, probes
//     it after a cool-down, and heals on the first success.
//   - DeadlineConfig.For turns a work size (tiles, points) into a
//     bounded per-RPC deadline so no call can hang a scheduler slot.
//
// internal/cluster wires all four around its coordinator RPCs;
// internal/serve keys its cluster→local fallback off the pool-level
// Breaker. DESIGN.md §18 documents the policy semantics.
package resilience

import (
	"math"
	"time"
)

// Config bundles the policy knobs one client (the cluster coordinator)
// needs. The zero value selects production defaults; see WithDefaults.
type Config struct {
	// MaxAttempts bounds RPC attempts per call against one endpoint,
	// first try included (default 3). Retries beyond the first attempt
	// also consume Budget tokens.
	MaxAttempts int
	// Budget configures the global retry token bucket.
	Budget BudgetConfig
	// Backoff spaces retry attempts.
	Backoff BackoffConfig
	// Breaker configures the per-endpoint (per-worker) breakers.
	Breaker BreakerConfig
	// PoolBreaker configures the whole-pool breaker that gates the
	// cluster→local fallback decision (more tolerant than the
	// per-worker one: it should open only when the fleet as a whole
	// cannot complete work).
	PoolBreaker BreakerConfig
	// Deadline derives per-RPC timeouts from work size.
	Deadline DeadlineConfig
}

// WithDefaults resolves every zero field to its production default.
func (c Config) WithDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	c.Budget = c.Budget.withDefaults()
	c.Backoff = c.Backoff.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	p := c.PoolBreaker
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = 2
	}
	if p.OpenFor <= 0 {
		p.OpenFor = 5 * time.Second
	}
	c.PoolBreaker = p.withDefaults()
	c.Deadline = c.Deadline.withDefaults()
	return c
}

// DeadlineConfig derives a per-RPC deadline from the size of the work
// the RPC carries: d = clamp(Floor + PerUnit·units, Floor, Ceil). The
// unit is whatever the caller meters (the coordinator uses tiles for
// eval RPCs and point-blocks for init RPCs); the floor keeps small RPCs
// from flapping on scheduling noise and the ceiling bounds how long a
// hung endpoint can pin a scheduler slot.
type DeadlineConfig struct {
	// Floor is the minimum deadline granted to any RPC (default 2s).
	Floor time.Duration
	// Ceil is the maximum deadline however large the work (default 60s).
	Ceil time.Duration
	// PerUnit is the time granted per work unit (default 25ms).
	PerUnit time.Duration
}

func (c DeadlineConfig) withDefaults() DeadlineConfig {
	if c.Floor <= 0 {
		c.Floor = 2 * time.Second
	}
	if c.Ceil <= 0 {
		c.Ceil = 60 * time.Second
	}
	if c.Ceil < c.Floor {
		c.Ceil = c.Floor
	}
	if c.PerUnit <= 0 {
		c.PerUnit = 25 * time.Millisecond
	}
	return c
}

// For returns the derived deadline for an RPC carrying units of work.
// Negative unit counts clamp to zero.
func (c DeadlineConfig) For(units int) time.Duration {
	c = c.withDefaults()
	if units < 0 {
		units = 0
	}
	d := c.Floor + time.Duration(units)*c.PerUnit
	if d > c.Ceil || d < 0 { // d < 0: overflow on absurd unit counts
		d = c.Ceil
	}
	return d
}

// BackoffConfig is an exponential backoff schedule with deterministic
// jitter: delay(attempt) = min(Base·Factor^(attempt-1), Max), scaled by
// a jitter factor in [1−Jitter, 1+Jitter] drawn from a splitmix64
// stream over (Seed, attempt). Next is a pure function — two calls with
// the same config and attempt return the same duration — which is what
// lets the chaos harness assert retry schedules exactly.
type BackoffConfig struct {
	// Base is the first retry's nominal delay (default 50ms).
	Base time.Duration
	// Max caps the nominal delay growth (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the ± fraction applied to the nominal delay (default
	// 0.2; 0 keeps jitter on at the default — use a negative value for
	// a strictly jitter-free schedule).
	Jitter float64
	// Seed selects the deterministic jitter stream (default 1).
	Seed uint64
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 50 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 2 * time.Second
	}
	if c.Max < c.Base {
		c.Max = c.Base
	}
	if c.Factor < 1 || math.IsNaN(c.Factor) || math.IsInf(c.Factor, 0) {
		c.Factor = 2
	}
	switch {
	case c.Jitter < 0 || math.IsNaN(c.Jitter):
		c.Jitter = 0
	case c.Jitter == 0:
		c.Jitter = 0.2
	case c.Jitter > 1:
		c.Jitter = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Next returns the delay before retry attempt (1-based: attempt 1 is
// the delay after the first failure). It is deterministic in (config,
// attempt) and never exceeds Max·(1+Jitter).
func (c BackoffConfig) Next(attempt int) time.Duration {
	c = c.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(c.Base)
	for i := 1; i < attempt; i++ {
		d *= c.Factor
		if d >= float64(c.Max) {
			d = float64(c.Max)
			break
		}
	}
	if c.Jitter > 0 {
		u := float64(splitmix64(c.Seed^(uint64(attempt)*0x9e3779b97f4a7c15))>>11) / (1 << 53)
		d *= 1 - c.Jitter + 2*c.Jitter*u
	}
	return time.Duration(d)
}

// splitmix64 is the SplitMix64 output function: a bijective avalanche
// over 64 bits, good enough for jitter and fault sampling and free of
// shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
