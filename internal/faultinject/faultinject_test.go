package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedSitesPassThrough(t *testing.T) {
	Reset()
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("Fire(unarmed) = %v", err)
	}
	if n, err := ShortWrite("nowhere", 42); n != 42 || err != nil {
		t.Fatalf("ShortWrite(unarmed) = %d, %v", n, err)
	}
}

func TestFireErrAndDefault(t *testing.T) {
	defer Reset()
	errBoom := errors.New("boom")
	Set("a", Fault{Err: errBoom})
	if err := Fire("a"); !errors.Is(err, errBoom) {
		t.Fatalf("Fire = %v, want %v", err, errBoom)
	}
	Set("b", Fault{})
	if err := Fire("b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire(zero fault) = %v, want ErrInjected", err)
	}
	// A different site stays unarmed.
	if err := Fire("c"); err != nil {
		t.Fatalf("Fire(other site) = %v", err)
	}
}

func TestDelayOnlyFaultPassesClean(t *testing.T) {
	defer Reset()
	Set("slow", Fault{Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Fire("slow"); err != nil {
		t.Fatalf("delay-only Fire = %v, want nil", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Fire returned after %v, want ≥ 10ms", d)
	}
}

func TestPanicFault(t *testing.T) {
	defer Reset()
	Set("p", Fault{Panic: "kernel exploded"})
	defer func() {
		if r := recover(); r != "kernel exploded" {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = Fire("p")
	t.Fatal("Fire did not panic")
}

func TestAfterAndTimes(t *testing.T) {
	defer Reset()
	// Skip 2 firings, then fail exactly twice, then auto-disarm.
	Set("n", Fault{After: 2, Times: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Fire("n") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d: injected=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestProbFaultDeterministicRate(t *testing.T) {
	defer Reset()
	// The same seed must reproduce the exact same fault sequence.
	runs := make([][]bool, 2)
	for r := range runs {
		Set("flaky", Fault{Prob: 0.3, Seed: 42})
		for i := 0; i < 200; i++ {
			runs[r] = append(runs[r], Fire("flaky") != nil)
		}
		Reset()
	}
	injected := 0
	for i := range runs[0] {
		if runs[0][i] != runs[1][i] {
			t.Fatalf("firing %d differs across identically seeded runs", i)
		}
		if runs[0][i] {
			injected++
		}
	}
	// 200 draws at p=0.3: the deterministic stream lands near 60.
	if injected < 30 || injected > 90 {
		t.Fatalf("injected %d of 200 at Prob 0.3", injected)
	}
	// Times only counts firings the Prob gate let through.
	Set("flaky", Fault{Prob: 0.5, Seed: 7, Times: 3})
	hits := 0
	for i := 0; i < 1000 && hits < 3; i++ {
		if Fire("flaky") != nil {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("Times-limited Prob fault hit %d times", hits)
	}
	if Fire("flaky") != nil {
		t.Fatal("Prob fault still armed after Times firings")
	}
}

func TestShortWriteClamps(t *testing.T) {
	defer Reset()
	Set("w", Fault{ShortWrite: 100})
	if n, err := ShortWrite("w", 7); n != 7 || err == nil {
		t.Fatalf("ShortWrite clamp = %d, %v; want 7 bytes and an error", n, err)
	}
	Set("w", Fault{ShortWrite: -3})
	if n, _ := ShortWrite("w", 7); n != 0 {
		t.Fatalf("negative ShortWrite = %d, want 0", n)
	}
	Set("w", Fault{ShortWrite: 3})
	if n, err := ShortWrite("w", 7); n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("ShortWrite = %d, %v", n, err)
	}
}

func TestClearAndReset(t *testing.T) {
	defer Reset()
	Set("x", Fault{})
	Set("y", Fault{})
	Clear("x")
	Clear("x") // double-clear is a no-op
	if err := Fire("x"); err != nil {
		t.Fatalf("cleared site fired: %v", err)
	}
	if err := Fire("y"); err == nil {
		t.Fatal("armed site did not fire")
	}
	Set("y", Fault{}) // re-arm after the previous firing
	Reset()
	if err := Fire("y"); err != nil {
		t.Fatalf("site fired after Reset: %v", err)
	}
}
