// Package faultinject is a test-only fault-injection hook layer. Code
// under test registers no hooks in production: every instrumented site
// costs one atomic load when the registry is empty, so the hooks are
// compiled into hot paths (WAL writes, tile evaluation) without
// measurable overhead.
//
// Tests arm a site by name:
//
//	faultinject.Set("wal.append.write", faultinject.Fault{ShortWrite: 7, Err: errDisk})
//	defer faultinject.Reset()
//
// and the instrumented code observes the fault through Fire (delays,
// panics, injected errors) or ShortWrite (torn writes). Sites are plain
// strings; an unknown site is simply never armed. The registry is
// process-global and safe for concurrent use.
package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes one injected failure.
type Fault struct {
	// Err is the error the site reports (defaults to a generic
	// injected-fault error when the fault is armed with Panic unset).
	Err error
	// Panic, when non-nil, makes Fire panic with this value instead of
	// returning an error — the kernel-panic containment drill.
	Panic any
	// Delay is slept before the fault (and before a clean pass when it
	// is the only field set) — the slow-tile / slow-disk drill.
	Delay time.Duration
	// ShortWrite is the number of bytes a write site actually writes
	// before failing (torn-write drill). Consulted only by ShortWrite
	// call sites; clamped to the attempted length.
	ShortWrite int
	// After skips the first After firings, so a fault can be aimed at
	// the Nth operation (e.g. "fail the 3rd journal append").
	After int
	// Times disarms the fault after this many firings; 0 means it
	// stays armed until Clear/Reset. Firings a Prob gate passes over do
	// not count.
	Times int
	// Prob, when in (0, 1), applies the fault to each firing with this
	// probability — the flaky-network drill. The decisions come from a
	// deterministic splitmix64 stream over Seed, so a single-threaded
	// caller sees an exactly reproducible fault sequence. 0 (and ≥1)
	// means the fault always applies.
	Prob float64
	// Seed selects the Prob decision stream (default 1).
	Seed uint64
}

// ErrInjected is the default error reported by an armed site whose
// Fault has no explicit Err.
var ErrInjected = errors.New("faultinject: injected fault")

type armed struct {
	f       Fault
	skipped int
	fired   int
	draws   uint64 // Prob decisions taken so far (the stream position)
}

var (
	mu     sync.Mutex
	nArmed atomic.Int32
	sites  map[string]*armed
)

// Set arms site with f, replacing any previous fault at that site.
func Set(site string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*armed)
	}
	if _, ok := sites[site]; !ok {
		nArmed.Add(1)
	}
	sites[site] = &armed{f: f}
}

// Clear disarms site. Clearing an unarmed site is a no-op.
func Clear(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; ok {
		delete(sites, site)
		nArmed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	nArmed.Store(0)
	sites = nil
}

// take returns a copy of the fault to apply at site for this firing, or
// nil (not armed, still skipping, or already spent). It performs the
// After/Times bookkeeping and auto-disarms spent faults.
func take(site string) *Fault {
	mu.Lock()
	defer mu.Unlock()
	a, ok := sites[site]
	if !ok {
		return nil
	}
	if a.skipped < a.f.After {
		a.skipped++
		return nil
	}
	if a.f.Prob > 0 && a.f.Prob < 1 {
		seed := a.f.Seed
		if seed == 0 {
			seed = 1
		}
		a.draws++
		u := float64(splitmix64(seed^(a.draws*0x9e3779b97f4a7c15))>>11) / (1 << 53)
		if u >= a.f.Prob {
			return nil // the coin came up clean; pass through
		}
	}
	a.fired++
	if a.f.Times > 0 && a.fired >= a.f.Times {
		delete(sites, site)
		nArmed.Add(-1)
	}
	f := a.f
	return &f
}

// splitmix64 drives the Prob decision stream: bijective avalanche over
// 64 bits, deterministic for a given seed and draw index.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fire observes the fault armed at site: it sleeps Delay, panics with
// Panic when set, and otherwise returns the injected error. It returns
// nil when the site is not armed — the common case, decided by one
// atomic load.
func Fire(site string) error {
	if nArmed.Load() == 0 {
		return nil
	}
	f := take(site)
	if f == nil {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	if f.Err != nil {
		return f.Err
	}
	if f.Delay > 0 {
		// Delay-only fault: a slow site, not a failing one.
		return nil
	}
	return ErrInjected
}

// ShortWrite observes a write-site fault for an attempted n-byte write:
// it returns how many bytes the caller should actually write and the
// error to report afterwards. Unarmed sites pass through as (n, nil).
func ShortWrite(site string, n int) (int, error) {
	if nArmed.Load() == 0 {
		return n, nil
	}
	f := take(site)
	if f == nil {
		return n, nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	k := f.ShortWrite
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	err := f.Err
	if err == nil {
		err = ErrInjected
	}
	return k, err
}
