package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func reportFindings(baseDir string) []Finding {
	return []Finding{
		{
			Analyzer: "lockorder",
			Pos:      token.Position{Filename: filepath.Join(baseDir, "internal/serve/serve.go"), Line: 40, Column: 2},
			Message:  "acquires session.mu while holding Server.mu",
		},
		{
			Analyzer: "goroleak",
			Pos:      token.Position{Filename: filepath.Join(baseDir, "internal/cluster/local.go"), Line: 48, Column: 2},
			Message:  "goroutine has no visible join or cancel path",
		},
	}
}

func TestWriteJSONRelativizesPaths(t *testing.T) {
	base := t.TempDir()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, base, reportFindings(base)); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	if got[0]["file"] != "internal/serve/serve.go" {
		t.Errorf("file = %q, want module-relative path", got[0]["file"])
	}
	if got[0]["analyzer"] != "lockorder" || got[0]["line"] != float64(40) {
		t.Errorf("unexpected first finding: %v", got[0])
	}
}

func TestWriteSARIF(t *testing.T) {
	base := t.TempDir()
	var buf bytes.Buffer
	analyzers := []*Analyzer{{Name: "lockorder", Doc: "checks lock acquisition order\nmore detail"}}
	if err := WriteSARIF(&buf, base, analyzers, reportFindings(base)); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tsvlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 1 || run.Tool.Driver.Rules[0].ID != "lockorder" {
		t.Errorf("rules = %+v", run.Tool.Driver.Rules)
	}
	if strings.Contains(run.Tool.Driver.Rules[0].ShortDescription.Text, "more detail") {
		t.Errorf("rule description should be first Doc line only: %q", run.Tool.Driver.Rules[0].ShortDescription.Text)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/serve/serve.go" || loc.Region.StartLine != 40 {
		t.Errorf("unexpected location: %+v", loc)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	base := t.TempDir()
	findings := reportFindings(base)
	path := filepath.Join(base, "baseline.json")
	if err := WriteBaselineFile(path, base, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d entries, want 2", len(b.Findings))
	}

	// Every recorded finding is covered; nothing fresh, nothing stale.
	fresh, stale := b.Apply(base, findings)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip: fresh=%v stale=%v", fresh, stale)
	}

	// Line drift must not invalidate entries.
	moved := make([]Finding, len(findings))
	copy(moved, findings)
	moved[0].Pos.Line += 100
	fresh, stale = b.Apply(base, moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("line drift: fresh=%v stale=%v", fresh, stale)
	}

	// A new finding is fresh; a fixed finding leaves its entry stale.
	extra := append(moved[:1:1], Finding{
		Analyzer: "ctxflow",
		Pos:      token.Position{Filename: filepath.Join(base, "internal/incr/incr.go"), Line: 9, Column: 1},
		Message:  "can reach core.MapInto but takes no context.Context",
	})
	fresh, stale = b.Apply(base, extra)
	if len(fresh) != 1 || fresh[0].Analyzer != "ctxflow" {
		t.Fatalf("fresh = %v, want the ctxflow finding", fresh)
	}
	if len(stale) != 1 || stale[0].Analyzer != "goroleak" {
		t.Fatalf("stale = %v, want the goroleak entry", stale)
	}
}

func TestLoadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("LoadBaseline accepted malformed JSON")
	}
}
