package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseLockOrder(t *testing.T) {
	tests := []struct {
		name    string
		rest    string
		before  string
		after   string
		wantErr string // substring of the error, "" for success
	}{
		{"canonical", " session.mu < Server.mu", "session.mu", "Server.mu", ""},
		{"tight spacing", " a<b", "a", "b", ""},
		{"tabs", "\tA.mu\t<\tB.mu", "A.mu", "B.mu", ""},
		{"bare identifiers", " tableMu < rowMu", "tableMu", "rowMu", ""},
		{"empty payload", "", "", "", "exactly one"},
		{"missing separator", " session.mu Server.mu", "", "", "exactly one"},
		{"wrong separator", " session.mu > Server.mu", "", "", "exactly one"},
		{"double separator", " a < b < c", "", "", "exactly one"},
		{"missing left", " < Server.mu", "", "", "missing lock name before"},
		{"missing right", " session.mu <", "", "", "missing lock name after"},
		{"spaces in left name", " session mu < Server.mu", "", "", "contains spaces"},
		{"spaces in right name", " session.mu < Server mu", "", "", "contains spaces"},
		{"self order", " mu < mu", "", "", "ordered against itself"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			before, after, err := ParseLockOrder(tt.rest)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("ParseLockOrder(%q) error: %v", tt.rest, err)
				}
				if before != tt.before || after != tt.after {
					t.Fatalf("ParseLockOrder(%q) = %q, %q; want %q, %q",
						tt.rest, before, after, tt.before, tt.after)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseLockOrder(%q) = %q, %q; want error containing %q",
					tt.rest, before, after, tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("ParseLockOrder(%q) error %q; want substring %q", tt.rest, err, tt.wantErr)
			}
		})
	}
}

func TestLockOrderDirectives(t *testing.T) {
	src := `// Package p declares lock orders.
//
//tsvlint:lockorder A.mu < B.mu
package p

//tsvlint:lockorder broken directive line
var x int

//tsvlint:lockorderly not this directive at all
var y int

// inner comment too:
//tsvlint:lockorder C.mu < D.mu
var z int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	rules, malformed := LockOrderDirectives([]*ast.File{f})
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2: %+v", len(rules), rules)
	}
	if rules[0].Before != "A.mu" || rules[0].After != "B.mu" {
		t.Errorf("rule 0 = %q < %q; want A.mu < B.mu", rules[0].Before, rules[0].After)
	}
	if rules[1].Before != "C.mu" || rules[1].After != "D.mu" {
		t.Errorf("rule 1 = %q < %q; want C.mu < D.mu", rules[1].Before, rules[1].After)
	}
	if len(malformed) != 1 {
		t.Fatalf("got %d malformed diagnostics, want 1: %+v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "malformed") {
		t.Errorf("malformed diagnostic message %q lacks 'malformed'", malformed[0].Message)
	}
	if got := fset.Position(malformed[0].Pos).Line; got != 6 {
		t.Errorf("malformed diagnostic on line %d, want 6", got)
	}
}
