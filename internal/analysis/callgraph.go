package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Call-graph utilities shared by the program analyzers (panicboundary,
// nonfinite). The graph is the static one: direct calls whose callee
// resolves to a *types.Func with a body somewhere in the module.
// Dynamic dispatch (interface methods, function values) is out of
// scope — the boundary invariants these analyzers enforce concern the
// concrete internal call chains.

// FuncBodies maps every function and method declared in the module to
// its declaration, so callees can be traversed cross-package.
func FuncBodies(prog *Program) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// InfoFor returns the types.Info of the package that type-checked the
// given object, or nil.
func InfoFor(prog *Program, obj types.Object) *types.Info {
	if obj.Pkg() == nil {
		return nil
	}
	// Test variants share the plain path; prefer an exact match first.
	for _, pkg := range prog.Packages {
		if pkg.Pkg == obj.Pkg() {
			return pkg.TypesInfo
		}
	}
	return nil
}

// StaticCallee resolves a call expression to the called named function
// or method, or nil for dynamic calls, conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Reachable walks the static call graph from entry (whose body must be
// in bodies) and calls visit for every reachable declared function,
// including entry itself. visit returning false prunes traversal below
// that function.
func Reachable(prog *Program, bodies map[*types.Func]*ast.FuncDecl, entry *types.Func, visit func(fn *types.Func, decl *ast.FuncDecl) bool) {
	seen := make(map[*types.Func]bool)
	var walk func(fn *types.Func)
	walk = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		decl, ok := bodies[fn]
		if !ok || decl.Body == nil {
			return
		}
		if !visit(fn, decl) {
			return
		}
		info := InfoFor(prog, fn)
		if info == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := StaticCallee(info, call); callee != nil {
				walk(callee)
			}
			return true
		})
	}
	walk(entry)
}

// validationName matches identifiers that perform input validation:
// explicit validators plus the floats finiteness helpers.
func validationName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "validate") ||
		strings.Contains(lower, "finite") ||
		strings.Contains(lower, "isnan") ||
		strings.Contains(lower, "isinf")
}

// ReachesValidation reports whether entry's static call closure
// contains a call to a validation function: math.IsNaN/math.IsInf, the
// internal/floats helpers, or any function or method whose name
// contains "validate"/"finite".
func ReachesValidation(prog *Program, bodies map[*types.Func]*ast.FuncDecl, entry *types.Func) bool {
	found := false
	Reachable(prog, bodies, entry, func(fn *types.Func, decl *ast.FuncDecl) bool {
		if found {
			return false
		}
		info := InfoFor(prog, fn)
		if info == nil {
			return false
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(info, call)
			if callee == nil {
				return true
			}
			if validationName(callee.Name()) {
				found = true
				return false
			}
			if pkg := callee.Pkg(); pkg != nil {
				if pkg.Path() == "math" && (callee.Name() == "IsNaN" || callee.Name() == "IsInf") {
					found = true
					return false
				}
				if strings.HasSuffix(pkg.Path(), "internal/floats") {
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return found
}
