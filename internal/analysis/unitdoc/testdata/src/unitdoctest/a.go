// Package unitdoctest is the unitdoc fixture.
package unitdoctest

// Stress is a plane-stress tensor in MPa.
type Stress struct{ XX, YY, XY float64 }

// Distance returns the separation in µm.
func Distance(x float64) float64 { return x } // non-ASCII unit must match

// Evaluate returns the stress tensor in MPa.
func Evaluate() Stress { return Stress{} }

// Angle returns the principal direction in radians.
func Angle() float64 { return 0 }

// Ratio returns a dimensionless fraction.
func Ratio() float64 { return 1 }

// Vague returns a value whose measure goes unstated.
func Vague(x float64) float64 { return x } // want "doc comment of Vague does not state the units"

// VagueStress returns something stress-shaped without saying how big.
func VagueStress() Stress { return Stress{} } // want "doc comment of VagueStress does not state the units"

func Undocumented() float64 { return 2 } // want "exported Undocumented returns a physical quantity but has no doc comment"

// Count returns how many samples were taken.
func Count() int { return 0 } // not a physical quantity: allowed

func unexported() float64 { return 3 } // unexported: allowed
