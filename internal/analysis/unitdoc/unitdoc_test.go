package unitdoc_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/unitdoc"
)

func TestUnitdoc(t *testing.T) {
	a := unitdoc.NewAnalyzer(unitdoc.Config{
		PackageSuffixes: []string{"unitdoctest"},
		StructResults:   []string{"Stress"},
	})
	analysistest.Run(t, a, ".", "unitdoctest")
}
