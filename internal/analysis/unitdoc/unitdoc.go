// Package unitdoc defines an analyzer requiring exported functions
// that return physical quantities to declare their units in the doc
// comment. The framework mixes MPa, µm, kelvin, radians and
// dimensionless ratios in float64-shaped APIs; a stated unit in the
// doc is the only machine-checkable trace of which one a function
// speaks.
package unitdoc

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"tsvstress/internal/analysis"
)

// Config scopes the analyzer.
type Config struct {
	// PackageSuffixes lists import-path suffixes the requirement
	// applies to (physical packages; pure math like linalg/sparse is
	// exempt). Empty means every package.
	PackageSuffixes []string
	// StructResults names result struct types (by type name) that also
	// carry units, e.g. a stress tensor.
	StructResults []string
}

// unitPattern matches an acceptable unit declaration in a doc comment.
// Word-bounded so that prose cannot satisfy it by accident. The
// boundaries are explicit character classes rather than \b because \b
// is ASCII-only in Go regexps: µ is not a word character, so \bµm\b
// could never match.
var unitPattern = regexp.MustCompile(
	`(?i)(?:^|[^0-9A-Za-z_])(MPa|µm(?:²|⁻²)?|um|GPa|1/K|1/MPa|kelvin|radians?|degrees?|percent|dimensionless|unitless|ratio|fraction|nanoseconds?|ns/point|seconds?)(?:$|[^0-9A-Za-z_])|%`)

// DefaultConfig covers the repository's physical packages.
var DefaultConfig = Config{
	PackageSuffixes: []string{
		"tsvstress", "internal/core", "internal/interact", "internal/lame",
		"internal/superpose", "internal/geom", "internal/tensor",
		"internal/material", "internal/mobility", "internal/metrics",
		"internal/reliability", "internal/fem", "internal/field",
		"internal/potential", "internal/optimize", "internal/aging",
		"internal/resilience",
	},
	StructResults: []string{"Stress", "Polar"},
}

// Analyzer is unitdoc with the default repository scope.
var Analyzer = NewAnalyzer(DefaultConfig)

// NewAnalyzer builds a unitdoc analyzer for the given scope.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "unitdoc",
		Doc:  "require exported float- or stress-returning functions to state units (MPa, µm, …) in their doc comment",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if !inScope(pass.Pkg.Path(), cfg.PackageSuffixes) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			if !returnsPhysical(pass, fd, cfg) {
				continue
			}
			if fd.Doc == nil {
				pass.Reportf(fd.Name.Pos(), "exported %s returns a physical quantity but has no doc comment; document its units (MPa, µm, …)", fd.Name.Name)
				continue
			}
			if !unitPattern.MatchString(fd.Doc.Text()) {
				pass.Reportf(fd.Name.Pos(), "doc comment of %s does not state the units of its result (MPa, µm, radians, dimensionless, …)", fd.Name.Name)
			}
		}
	}
	return nil
}

func inScope(path string, suffixes []string) bool {
	if len(suffixes) == 0 {
		return true
	}
	// Test variants keep a bracketed suffix; scope by the plain path.
	path, _, _ = strings.Cut(path, " [")
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// returnsPhysical reports whether any result of fd is float-typed or a
// configured unit-carrying struct.
func returnsPhysical(pass *analysis.Pass, fd *ast.FuncDecl, cfg Config) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
			return true
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			for _, name := range cfg.StructResults {
				if named.Obj().Name() == name {
					return true
				}
			}
		}
	}
	return false
}
