// Package nonfinite defines a program analyzer enforcing NaN/Inf
// rejection at the API boundary. In files marked //tsvlint:apiboundary
// every exported function that takes float-bearing parameters AND can
// return an error must reachably validate finiteness — a call, in its
// static call closure within the module, to math.IsNaN/math.IsInf, an
// internal/floats helper, or any *Validate*/*Finite* function.
//
// The error result is the gate: a function that can say no must say no
// to NaN coordinates and Inf material properties, because both sail
// through every < and > comparison downstream (a NaN pitch passes a
// min-pitch check, a NaN extent turns a tile-grid dimension into a
// runtime panic). Pure evaluators without an error result stay
// garbage-in/garbage-out by design and are out of scope.
package nonfinite

import (
	"go/ast"
	"go/types"

	"tsvstress/internal/analysis"
)

// Analyzer flags unvalidated float-accepting API entry points.
var Analyzer = &analysis.Analyzer{
	Name:       "nonfinite",
	Doc:        "require error-returning exported functions in //tsvlint:apiboundary files to validate float parameters for NaN/Inf",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	prog := pass.Program
	bodies := analysis.FuncBodies(prog)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if !analysis.FileHasDirective(f, "apiboundary") {
				continue
			}
			if analysis.IsTestFile(prog.Fset, f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sig := fn.Type().(*types.Signature)
				if !returnsError(sig) || !hasFloatParams(sig) {
					continue
				}
				if !analysis.ReachesValidation(prog, bodies, fn) {
					pass.Reportf(fd.Name.Pos(),
						"exported %s accepts float parameters and returns error but never validates finiteness; reject NaN/Inf (internal/floats.AllFinite) before use",
						fd.Name.Name)
				}
			}
		}
	}
	return nil
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := types.Unalias(res.At(i).Type()).(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}

func hasFloatParams(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if containsFloat(params.At(i).Type(), 0, make(map[types.Type]bool)) {
			return true
		}
	}
	return false
}

// containsFloat reports whether t transitively holds floating-point
// state a caller could smuggle a NaN through.
func containsFloat(t types.Type, depth int, seen map[types.Type]bool) bool {
	if depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	case *types.Slice:
		return containsFloat(u.Elem(), depth+1, seen)
	case *types.Array:
		return containsFloat(u.Elem(), depth+1, seen)
	case *types.Pointer:
		return containsFloat(u.Elem(), depth+1, seen)
	case *types.Map:
		return containsFloat(u.Key(), depth+1, seen) || containsFloat(u.Elem(), depth+1, seen)
	}
	return false
}
