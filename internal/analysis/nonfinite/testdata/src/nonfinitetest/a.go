//tsvlint:apiboundary

// Package nonfinitetest is the nonfinite fixture: an API-boundary file.
package nonfinitetest

import (
	"errors"
	"math"
)

type point struct{ X, Y float64 }

// Bad accepts floats and can say no, yet never checks finiteness.
func Bad(x, y float64) (float64, error) { // want "exported Bad accepts float parameters and returns error but never validates finiteness"
	if x < 0 {
		return 0, errors.New("negative")
	}
	return x + y, nil
}

// BadStruct smuggles the floats in through a struct parameter.
func BadStruct(p point) error { // want "exported BadStruct accepts float parameters and returns error but never validates finiteness"
	if p.X < p.Y {
		return errors.New("unordered")
	}
	return nil
}

// Direct rejects NaN/Inf inline.
func Direct(x float64) (float64, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, errors.New("not finite")
	}
	return x, nil
}

// Indirect validates through a helper two hops down the call graph.
func Indirect(x float64) (float64, error) {
	return checked(x)
}

func checked(x float64) (float64, error) {
	if err := validateFinite(x); err != nil {
		return 0, err
	}
	return x, nil
}

func validateFinite(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return errors.New("not finite")
	}
	return nil
}

// Pure has no error result: garbage-in/garbage-out by design.
func Pure(x float64) float64 { return 2 * x }

// NoFloats carries no float-bearing parameters.
func NoFloats(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}
