package nonfinite_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/nonfinite"
)

func TestNonfinite(t *testing.T) {
	analysistest.Run(t, nonfinite.Analyzer, ".", "nonfinitetest")
}
