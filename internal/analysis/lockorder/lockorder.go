// Package lockorder infers the mutex acquisition order of the program
// and checks it against declared //tsvlint:lockorder directives.
//
// The PR 4 deadlock this analyzer exists to catch: handleList iterated
// the session table holding Server.mu while locking each session.mu,
// while every compute handler held session.mu and quarantined through
// Server.mu — an ABBA inversion that shipped and was only found by a
// chaos drill. The fix pinned the order (session.mu before Server.mu,
// never the reverse) in a comment; this analyzer turns that comment
// into a machine-checked invariant.
//
// Model. Locks are identified by class, not instance: x.mu.Lock() on a
// value of type *session acquires the class "session.mu", matching how
// lock-order disciplines are stated. For every function (and every
// function literal, analyzed as an independent root — goroutine and
// callback bodies run on their own stacks), a linear source-order walk
// tracks the held set: Lock/RLock pushes, Unlock/RUnlock pops the most
// recent matching acquisition, and a deferred Unlock keeps the lock
// held to the end of the walk (acquisitions after it are still nested
// inside). Each acquisition while locks are held records an ordering
// edge held → acquired.
//
// Edges also cross function boundaries: a call made while holding L
// contributes edges L → M for every lock class M the callee's static
// call closure may acquire. Helpers that return while still holding a
// lock — serve's lockSession locks ses.mu and hands back the unlock as
// a closure — are summarized as "leaking" that class, which joins the
// caller's held set after the call.
//
// Findings:
//
//   - an edge B → A when a //tsvlint:lockorder A < B directive declares
//     the opposite order;
//   - an undeclared inversion: both A → B and B → A observed;
//   - re-acquiring a held class with a write Lock (sync mutexes are not
//     reentrant; two instances of one class count — instance identity
//     is not tracked, which is exactly what makes iterating a table of
//     same-class locks under another lock suspicious);
//   - malformed //tsvlint:lockorder directives.
//
// Dynamic calls (interface methods, function values) contribute no
// edges; RLock counts as an acquisition for ordering because reader
// sides participate in ABBA cycles too.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"tsvstress/internal/analysis"
)

// Analyzer checks mutex acquisition order against //tsvlint:lockorder
// directives. Standalone runs see the whole module; vettool mode falls
// back to per-package edges.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "mutex acquisition order must match declared //tsvlint:lockorder directives, with no undeclared inversions",
	Run:        run,
	RunProgram: runProgram,
}

func runProgram(pass *analysis.ProgramPass) error {
	return analyze(pass.Program, pass.Report)
}

func run(pass *analysis.Pass) error {
	prog := &analysis.Program{
		Fset: pass.Fset,
		Packages: []*analysis.Package{{
			Path: pass.Pkg.Path(), Files: pass.Files, Pkg: pass.Pkg, TypesInfo: pass.TypesInfo,
		}},
	}
	return analyze(prog, pass.Report)
}

// lockKey names a lock class.
type lockKey struct {
	typeName string // named type owning the mutex field, "" for bare vars
	name     string // field or variable name
}

func (k lockKey) String() string {
	if k.typeName == "" {
		return k.name
	}
	return k.typeName + "." + k.name
}

// acq is one acquisition of a lock class.
type acq struct {
	key   lockKey
	write bool // Lock rather than RLock
	pos   token.Pos
}

// callRec is one static call made with locks held (or any call, for
// the transitive-acquisition pass).
type callRec struct {
	callee *types.Func
	pos    token.Pos
	held   []acq // snapshot at the call
}

// fnFacts is the per-function result of the linear walk.
type fnFacts struct {
	acquires []acq     // direct acquisitions
	edges    []edge    // direct held→acquired pairs
	calls    []callRec // static call sites with held snapshots
	leaked   []lockKey // still held at end and not released by a defer
}

type edge struct {
	from, to acq
	pos      token.Pos
	via      string // callee name for call-propagated edges, "" for direct
}

func analyze(prog *analysis.Program, report func(analysis.Diagnostic)) error {
	// Directives: collected module-wide, so serve's declaration also
	// governs edges observed in packages that import it.
	var rules []analysis.LockOrderRule
	for _, pkg := range prog.Packages {
		r, malformed := analysis.LockOrderDirectives(pkg.Files)
		rules = append(rules, r...)
		for _, d := range malformed {
			report(d)
		}
	}

	bodies := analysis.FuncBodies(prog)

	// Pass A: walk every function without call effects to learn which
	// helpers leak locks to their callers (lockSession-style).
	leaks := make(map[*types.Func][]lockKey)
	for fn, decl := range bodies {
		if decl.Body == nil {
			continue
		}
		info := analysis.InfoFor(prog, fn)
		if info == nil {
			continue
		}
		facts := walkFunc(decl.Body, info, nil)
		if len(facts.leaked) > 0 {
			leaks[fn] = facts.leaked
		}
	}
	leakOf := func(callee *types.Func) []lockKey { return leaks[callee] }

	// Pass B: full walks, now crediting leaked locks to callers. Roots
	// are every declared function plus every function literal.
	factsOf := make(map[*types.Func]*fnFacts)
	var allFacts []*fnFacts
	for fn, decl := range bodies {
		if decl.Body == nil {
			continue
		}
		info := analysis.InfoFor(prog, fn)
		if info == nil {
			continue
		}
		f := walkFunc(decl.Body, info, leakOf)
		factsOf[fn] = f
		allFacts = append(allFacts, f)
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			info := pkg.TypesInfo
			for lit := range funcLits(file) {
				allFacts = append(allFacts, walkFunc(lit.Body, info, leakOf))
			}
		}
	}

	// Transitive acquisition summaries over the static call graph.
	mayAcquire := newAcquireIndex(factsOf)

	// Merge edges: direct ones plus call-propagated ones.
	type edgeKey struct{ from, to lockKey }
	edges := make(map[edgeKey]edge)
	add := func(e edge) {
		k := edgeKey{e.from.key, e.to.key}
		if prev, ok := edges[k]; !ok || e.pos < prev.pos {
			edges[k] = e // earliest site wins, keeping reports deterministic
		}
	}
	for _, f := range allFacts {
		for _, e := range f.edges {
			add(e)
		}
		for _, c := range f.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, a := range mayAcquire.closure(c.callee) {
				for _, h := range c.held {
					if h.key == a.key {
						continue // re-entry through calls is too noisy to flag
					}
					add(edge{from: h, to: acq{key: a.key, write: a.write, pos: c.pos}, pos: c.pos, via: c.callee.Name()})
				}
			}
		}
	}

	declared := func(a, b lockKey) *analysis.LockOrderRule {
		for i := range rules {
			if rules[i].Before == a.String() && rules[i].After == b.String() {
				return &rules[i]
			}
		}
		return nil
	}

	var diags []analysis.Diagnostic
	emit := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}

	keys := make([]edgeKey, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from.String() != b.from.String() {
			return a.from.String() < b.from.String()
		}
		return a.to.String() < b.to.String()
	})
	seenPair := make(map[edgeKey]bool)
	for _, k := range keys {
		e := edges[k]
		if k.from == k.to {
			// Same class re-acquired while held. Reader re-acquisition
			// is a latent writer-starvation deadlock at worst; only
			// write re-acquisition is certain, keep the signal strong.
			if e.from.write || e.to.write {
				emit(e.pos, "acquires %s while a %s is already held (sync mutexes are not reentrant; lock classes, not instances, are tracked)",
					e.to.key, e.from.key)
			}
			continue
		}
		if rule := declared(k.to, k.from); rule != nil {
			// Declared order says to < from, this edge holds from then
			// acquires to: inversion.
			if e.via != "" {
				emit(e.pos, "call to %s acquires %s while holding %s, violating declared lock order %s < %s",
					e.via, e.to.key, e.from.key, rule.Before, rule.After)
			} else {
				emit(e.pos, "acquires %s while holding %s, violating declared lock order %s < %s",
					e.to.key, e.from.key, rule.Before, rule.After)
			}
			continue
		}
		if declared(k.from, k.to) != nil {
			continue // the declared direction
		}
		rev, ok := edges[edgeKey{k.to, k.from}]
		if !ok || seenPair[edgeKey{k.to, k.from}] {
			continue
		}
		seenPair[k] = true
		emit(e.pos, "lock order inversion: %s is acquired while holding %s here, and the reverse order occurs at %s (declare the intended order with //tsvlint:lockorder)",
			e.to.key, e.from.key, prog.Fset.Position(rev.pos))
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		report(d)
	}
	return nil
}

// walkFunc runs the linear source-order walk over one function body.
// leakOf is nil in pass A; in pass B it supplies the lock classes a
// callee leaves held for its caller.
func walkFunc(body *ast.BlockStmt, info *types.Info, leakOf func(*types.Func) []lockKey) *fnFacts {
	f := &fnFacts{}
	var held []acq
	deferUnlocked := make(map[lockKey]bool)

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own root
		case *ast.DeferStmt:
			// A deferred unlock releases at return: the lock stays held
			// for the rest of the walk but is not leaked to callers.
			if key, _, ok := mutexOp(info, n.Call); ok {
				deferUnlocked[key] = true
			}
			return false
		case *ast.CallExpr:
			if key, op, ok := mutexOp(info, n); ok {
				switch op {
				case opLock, opRLock:
					a := acq{key: key, write: op == opLock, pos: n.Pos()}
					for _, h := range held {
						f.edges = append(f.edges, edge{from: h, to: a, pos: n.Pos()})
					}
					held = append(held, a)
					f.acquires = append(f.acquires, a)
				case opUnlock, opRUnlock:
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].key == key {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if callee := analysis.StaticCallee(info, n); callee != nil {
				f.calls = append(f.calls, callRec{callee: callee, pos: n.Pos(), held: append([]acq(nil), held...)})
				if leakOf != nil {
					for _, key := range leakOf(callee) {
						a := acq{key: key, write: true, pos: n.Pos()}
						for _, h := range held {
							f.edges = append(f.edges, edge{from: h, to: a, pos: n.Pos()})
						}
						held = append(held, a)
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)

	for _, h := range held {
		if !deferUnlocked[h.key] {
			f.leaked = append(f.leaked, h.key)
		}
	}
	return f
}

// funcLits yields every function literal in the file, however nested —
// each is walked as an independent root.
func funcLits(file *ast.File) map[*ast.FuncLit]bool {
	lits := make(map[*ast.FuncLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			lits[lit] = true
		}
		return true
	})
	return lits
}

type mutexOpKind int

const (
	opLock mutexOpKind = iota
	opRLock
	opUnlock
	opRUnlock
)

// mutexOp recognizes calls of the form x.Lock() / x.RLock() /
// x.Unlock() / x.RUnlock() where x is a sync.Mutex or sync.RWMutex,
// returning the lock class. TryLock variants never block and are
// ignored.
func mutexOp(info *types.Info, call *ast.CallExpr) (lockKey, mutexOpKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	var op mutexOpKind
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockKey{}, 0, false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil || !isSyncMutex(recv) {
		return lockKey{}, 0, false
	}
	return keyFor(info, sel.X), op, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// keyFor derives the lock class from the mutex expression: base.field
// becomes {type(base), field}; a bare identifier (package-level or
// local mutex) is its own class; anything else falls back to the
// printed expression.
func keyFor(info *types.Info, x ast.Expr) lockKey {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if tn := namedTypeName(info.TypeOf(x.X)); tn != "" {
			return lockKey{typeName: tn, name: x.Sel.Name}
		}
		return lockKey{name: x.Sel.Name}
	case *ast.Ident:
		return lockKey{name: x.Name}
	default:
		return lockKey{name: types.ExprString(x)}
	}
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// acquireIndex memoizes the transitive may-acquire set of each
// declared function over the static call graph.
type acquireIndex struct {
	facts   map[*types.Func]*fnFacts
	memo    map[*types.Func][]acq
	onStack map[*types.Func]bool
}

func newAcquireIndex(facts map[*types.Func]*fnFacts) *acquireIndex {
	return &acquireIndex{
		facts:   facts,
		memo:    make(map[*types.Func][]acq),
		onStack: make(map[*types.Func]bool),
	}
}

// closure returns every lock class fn's static call closure may
// acquire. Cycles contribute the acquisitions discovered before
// re-entry (a sound-enough under-approximation for diagnostics).
func (ix *acquireIndex) closure(fn *types.Func) []acq {
	if got, ok := ix.memo[fn]; ok {
		return got
	}
	if ix.onStack[fn] {
		return nil
	}
	f, ok := ix.facts[fn]
	if !ok {
		return nil
	}
	ix.onStack[fn] = true
	byKey := make(map[lockKey]acq)
	for _, a := range f.acquires {
		merge(byKey, a)
	}
	for _, c := range f.calls {
		for _, a := range ix.closure(c.callee) {
			merge(byKey, a)
		}
	}
	delete(ix.onStack, fn)
	out := make([]acq, 0, len(byKey))
	for _, a := range byKey {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key.String() < out[j].key.String() })
	ix.memo[fn] = out
	return out
}

// merge keeps one acquisition per class, preferring write locks (the
// stronger signal for the reentrancy check).
func merge(byKey map[lockKey]acq, a acq) {
	if prev, ok := byKey[a.key]; ok && (prev.write || !a.write) {
		return
	}
	byKey[a.key] = a
}
