package lockorder_test

import (
	"testing"

	"tsvstress/internal/analysis/analysistest"
	"tsvstress/internal/analysis/lockorder"
)

// TestABBARegression is the PR 4 regression gate: the pre-fix
// handleList shape (session locks taken inside the table lock) must be
// reported, and the fixed shape (snapshot, release, then lock) must
// pass untouched.
func TestABBARegression(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, ".", "abba")
}

func TestFixedShapePasses(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, ".", "abbafixed")
}

// TestCrossPackage nests locks across a package boundary: the edge is
// only visible when both packages load into one program.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, ".", "lockcross/store", "lockcross/api")
}

// TestLeakedLock covers the lockSession pattern: the helper returns
// holding the lock, so the caller's later acquisitions nest inside it.
func TestLeakedLock(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, ".", "lockleak")
}

// TestUndeclaredInversion needs no directive: both orders observed is
// a finding on its own, as is same-class re-acquisition.
func TestUndeclaredInversion(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, ".", "lockinv")
}

func TestMalformedDirective(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, ".", "lockbad")
}
