// Package abba reconstructs the PR 4 handleList deadlock: the list
// handler iterated the session table holding Server.mu while taking
// each session.mu, while compute handlers held session.mu and
// quarantined through Server.mu — the reverse order.
//
//tsvlint:lockorder session.mu < Server.mu
package abba

import "sync"

type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	mu          sync.Mutex
	id          string
	quarantined string
}

// quarantine marks a session bad; compute handlers call it while they
// hold ses.mu, so it must only ever take Server.mu second — which is
// exactly what the directive above declares.
func (s *Server) quarantine(ses *session, why string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses.quarantined = why
}

// handleCompute is the declared-order direction: session.mu first,
// Server.mu second (through quarantine). No finding.
func (s *Server) handleCompute(ses *session) {
	ses.mu.Lock()
	defer ses.mu.Unlock()
	s.quarantine(ses, "compute failed")
}

// handleList is the pre-fix PR 4 shape: the whole iteration runs under
// Server.mu and takes each session.mu inside — the ABBA half.
func (s *Server) handleList() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, ses := range s.sessions {
		ses.mu.Lock() // want "acquires session\.mu while holding Server\.mu, violating declared lock order session\.mu < Server\.mu"
		out = append(out, ses.id)
		ses.mu.Unlock()
	}
	return out
}
