// Package lockinv holds an undeclared inversion (two package-level
// mutexes nested in both orders) and a class-level re-acquisition.
package lockinv

import "sync"

var aMu, bMu sync.Mutex

func ab() {
	aMu.Lock()
	bMu.Lock() // want "lock order inversion: bMu is acquired while holding aMu here, and the reverse order occurs at"
	bMu.Unlock()
	aMu.Unlock()
}

func ba() {
	bMu.Lock()
	aMu.Lock()
	aMu.Unlock()
	bMu.Unlock()
}

type box struct{ mu sync.Mutex }

// nested takes two locks of the same class at once: with class-based
// tracking that is indistinguishable from re-entry, and it is exactly
// the shape that deadlocks when a and b arrive in opposite orders on
// two goroutines.
func nested(a, b *box) {
	a.mu.Lock()
	b.mu.Lock() // want "acquires box\.mu while a box\.mu is already held"
	b.mu.Unlock()
	a.mu.Unlock()
}
