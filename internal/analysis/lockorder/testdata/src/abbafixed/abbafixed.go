// Package abbafixed is the post-fix PR 4 shape: handleList snapshots
// the table under Server.mu, releases it, and only then takes each
// session.mu — every path acquires in the declared order, so the
// analyzer stays silent.
//
//tsvlint:lockorder session.mu < Server.mu
package abbafixed

import "sync"

type Server struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	mu          sync.Mutex
	id          string
	quarantined string
}

func (s *Server) quarantine(ses *session, why string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses.quarantined = why
}

func (s *Server) handleCompute(ses *session) {
	ses.mu.Lock()
	defer ses.mu.Unlock()
	s.quarantine(ses, "compute failed")
}

func (s *Server) handleList() []string {
	s.mu.Lock()
	snapshot := make([]*session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		snapshot = append(snapshot, ses)
	}
	s.mu.Unlock()

	var out []string
	for _, ses := range snapshot {
		ses.mu.Lock()
		out = append(out, ses.id)
		ses.mu.Unlock()
	}
	return out
}
