// Package api holds Cache.mu across a call into the store package,
// whose Table locks internally — a cross-package edge the per-package
// view cannot see.
//
//tsvlint:lockorder Table.mu < Cache.mu
package api

import (
	"lockcross/store"
	"sync"
)

type Cache struct {
	mu    sync.Mutex
	table *store.Table
	local map[string]int
}

// WriteThrough violates the declared order through the call graph:
// Cache.mu is held when store.Put takes Table.mu.
func (c *Cache) WriteThrough(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.local[k] = v
	c.table.Put(k, v) // want "call to Put acquires Table\.mu while holding Cache\.mu, violating declared lock order Table\.mu < Cache\.mu"
}

// WriteAround releases Cache.mu before crossing into the store: the
// declared order is respected because the locks are never nested.
func (c *Cache) WriteAround(k string, v int) {
	c.mu.Lock()
	c.local[k] = v
	c.mu.Unlock()
	c.table.Put(k, v)
}
