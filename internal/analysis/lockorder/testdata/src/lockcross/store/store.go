// Package store is the lower tier of the cross-package fixture: its
// Table locks internally, so callers must not hold their own locks
// unless the declared order allows it.
package store

import "sync"

type Table struct {
	mu   sync.Mutex
	rows map[string]int
}

func NewTable() *Table {
	return &Table{rows: make(map[string]int)}
}

func (t *Table) Put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[k] = v
}
