// Package lockbad carries a malformed lock-order directive.
package lockbad

//tsvlint:lockorder table.mu before row.mu // want "malformed //tsvlint:lockorder directive"
var placeholder int
