// Package lockleak exercises the leaked-lock summary: lockSession
// returns while still holding session.mu (the unlock comes back as a
// closure), so its callers hold session.mu from the call onward.
//
//tsvlint:lockorder server.mu < session.mu
package lockleak

import "sync"

type server struct{ mu sync.Mutex }

type session struct{ mu sync.Mutex }

// lockSession locks the session and hands the release back to the
// caller — the serve.lockSession pattern.
func lockSession(ses *session) func() {
	ses.mu.Lock()
	return func() { ses.mu.Unlock() }
}

func handler(s *server, ses *session) {
	unlock := lockSession(ses)
	defer unlock()
	s.mu.Lock() // want "acquires server\.mu while holding session\.mu, violating declared lock order server\.mu < session\.mu"
	s.mu.Unlock()
}
