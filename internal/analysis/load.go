package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadOptions configures Load.
type LoadOptions struct {
	// Dir is the module directory go list runs in (default ".").
	Dir string
	// Patterns are the package patterns (default "./...").
	Patterns []string
	// Tests includes _test.go files and external test packages.
	Tests bool
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Error      *struct{ Err string }
	Module     *struct{ Path, GoVersion string }
}

// Load resolves the patterns with `go list -deps -export`, type-checks
// every module package from source (dependencies first, as go list
// orders them), and imports out-of-module dependencies from their
// compiled export data. The returned Program holds syntax and type
// information for the module packages only.
func Load(opts LoadOptions) (*Program, error) {
	if opts.Dir == "" {
		opts.Dir = "."
	}
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	args := []string{"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,ForTest,GoFiles,CgoFiles,Imports,Error,Module"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, opts.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	fset := token.NewFileSet()
	cat := &exportCatalog{exports: make(map[string]string)}
	gc := cat.Importer(fset)
	checked := make(map[string]*types.Package)
	prog := &Program{Fset: fset, Dir: opts.Dir}
	if abs, err := filepath.Abs(opts.Dir); err == nil {
		prog.Dir = abs
	}

	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		switch {
		case lp.ImportPath == "unsafe":
			checked["unsafe"] = types.Unsafe
		case lp.Standard || lp.Module == nil:
			// Out-of-module dependency: import lazily from export data.
			if lp.Export != "" {
				cat.exports[lp.ImportPath] = lp.Export
			}
		case strings.HasSuffix(lp.ImportPath, ".test"):
			// Synthesized test-binary main; its files live in the build
			// cache and hold nothing worth analyzing.
		case len(lp.CgoFiles) > 0:
			return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
		default:
			pkg, err := checkModulePackage(fset, lp, checked, gc)
			if err != nil {
				return nil, err
			}
			checked[lp.ImportPath] = pkg.Pkg
			prog.Packages = append(prog.Packages, pkg)
			if prog.GoVersion == "" && lp.Module != nil {
				prog.GoVersion = lp.Module.GoVersion
			}
		}
	}
	return prog, nil
}

// checkModulePackage parses and type-checks one module package from
// source.
func checkModulePackage(fset *token.FileSet, lp *listPackage, checked map[string]*types.Package, fallback types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := &types.Config{
		Importer: resolverFor(lp.ImportPath, checked, fallback),
	}
	if lp.Module != nil && lp.Module.GoVersion != "" {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	// go list strips the bracketed test-variant suffix from nothing we
	// feed to the type checker; check under the plain path.
	plainPath, _, _ := strings.Cut(lp.ImportPath, " [")
	pkg, err := conf.Check(plainPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// resolverFor returns the importer used while checking the package with
// the given (possibly test-variant) import path: module packages come
// from the already-checked map — preferring the importer's own test
// variant, which is how external test packages see the augmented
// package under test — and everything else from export data.
func resolverFor(importerPath string, checked map[string]*types.Package, fallback types.Importer) types.Importer {
	variant := ""
	if _, v, ok := strings.Cut(importerPath, " ["); ok {
		variant = " [" + v
	}
	return importerFunc(func(path string) (*types.Package, error) {
		if variant != "" {
			if pkg, ok := checked[path+variant]; ok {
				return pkg, nil
			}
		}
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return fallback.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportCatalog maps import paths to compiled export-data files and
// builds a caching gc importer over them.
type exportCatalog struct {
	exports map[string]string
}

func (c *exportCatalog) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := c.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ExportImporter resolves export-data files for the given
// out-of-module import paths (and their dependencies) by invoking
// go list in dir, and returns an importer over them bound to fset.
// The analysistest fixture loader uses it to satisfy fixture imports.
func ExportImporter(fset *token.FileSet, dir string, paths []string) (types.Importer, error) {
	exports, err := ExportData(dir, paths)
	if err != nil {
		return nil, err
	}
	return (&exportCatalog{exports: exports}).Importer(fset), nil
}

// ExportData maps the given import paths and their whole dependency
// closure to compiled export-data files, resolved by `go list -deps
// -export` in dir. Entries without export data (e.g. unsafe) are
// omitted. allocfree feeds the result to `go tool compile -importcfg`
// when it reproduces escape diagnostics for annotated packages.
func ExportData(dir string, paths []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
