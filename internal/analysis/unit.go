package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// Unitchecker mode: the command-line protocol `go vet -vettool=...`
// drives (modelled on x/tools' unitchecker). The build tool invokes
// the tool as
//
//	tsvlint -V=full                 # identify for build caching
//	tsvlint -flags                  # enumerate tool flags (JSON)
//	tsvlint <unit>.cfg              # analyze one compilation unit
//
// where the cfg file describes one package: its Go files, the export
// data of its dependencies, and where to write fact output. Only
// package analyzers run in this mode — a unit sees a single package,
// so program analyzers (which need module-wide syntax) are standalone
// only.

// unitConfig mirrors the JSON config go vet writes for each unit.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// UnitMain implements the vettool protocol for the given package
// analyzers. It returns false if the arguments do not select
// unitchecker mode (so the caller can fall through to standalone
// mode), and otherwise never returns.
func UnitMain(progname string, analyzers []*Analyzer) bool {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			describeExecutable(progname)
			os.Exit(0)
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags are exposed to go vet.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			unitRun(args[0], analyzers)
			os.Exit(0)
		}
	}
	return false
}

// describeExecutable prints the -V=full line the go command hashes for
// build caching: "<name> version devel ... buildID=<content hash>".
func describeExecutable(progname string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(progname), h.Sum(nil))
}

func unitRun(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg)
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			os.Exit(0)
		}
		log.Fatal(err)
	}

	writeVetx(cfg)
	if cfg.VetxOnly {
		os.Exit(0)
	}

	ix := NewIgnoreIndex(fset, files)
	exit := 0
	for _, a := range analyzers {
		if a.Run == nil {
			continue // program analyzers need the whole module
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				if ix.Suppressed(a.Name, d.Pos) {
					return
				}
				p := fset.Position(d.Pos)
				fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", p.Filename, p.Line, p.Column, d.Message, a.Name)
				exit = 1
			},
		}
		if err := a.Run(pass); err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
	}
	os.Exit(exit)
}

// writeVetx writes an (empty) fact file: these analyzers exchange no
// facts, but the build system expects the output to exist for caching.
func writeVetx(cfg *unitConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		log.Fatalf("failed to write facts: %v", err)
	}
}
