// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want "regexp" comments, mirroring the
// x/tools harness of the same name.
//
// Fixtures live under <dir>/testdata/src/<importpath>/*.go. A line
// expecting a diagnostic ends with:
//
//	x := a == b // want "floating-point"
//
// Every want must be matched by a diagnostic on its line whose message
// matches the regexp, and every diagnostic must be covered by a want.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"tsvstress/internal/analysis"
)

// Run loads the fixture packages (in dependency order) from
// dir/testdata/src and runs the analyzer over all of them, comparing
// diagnostics against want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string, pkgPaths ...string) {
	t.Helper()
	prog, err := loadFixtures(dir, pkgPaths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := analysis.RunAnalyzers(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, prog, findings)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

func checkWants(t *testing.T, prog *analysis.Program, findings []analysis.Finding) {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(strings.ReplaceAll(m[1], `\"`, `"`))
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := prog.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, f := range findings {
		covered := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// loadFixtures parses and type-checks the fixture packages. Imports
// between fixtures resolve within the set; all other imports resolve
// through compiled export data.
func loadFixtures(dir string, pkgPaths []string) (*analysis.Program, error) {
	srcRoot := filepath.Join(dir, "testdata", "src")

	// First pass: parse everything and gather external imports.
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	external := make(map[string]bool)
	inSet := make(map[string]bool)
	for _, p := range pkgPaths {
		inSet[p] = true
	}
	for _, p := range pkgPaths {
		entries, err := os.ReadDir(filepath.Join(srcRoot, p))
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(srcRoot, p, e.Name()), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[p] = append(parsed[p], f)
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if !inSet[path] {
					external[path] = true
				}
			}
		}
	}
	var extPaths []string
	for p := range external {
		extPaths = append(extPaths, p)
	}
	sort.Strings(extPaths)
	extImp, err := analysis.ExportImporter(fset, dir, extPaths)
	if err != nil {
		return nil, err
	}

	prog := &analysis.Program{Fset: fset}
	if abs, err := filepath.Abs(dir); err == nil {
		// Analyzers that shell out to the go toolchain (allocfree) run
		// from the analyzer's own directory, which is inside the module.
		prog.Dir = abs
	}
	checked := make(map[string]*types.Package)
	for _, p := range pkgPaths {
		info := analysis.NewInfo()
		conf := &types.Config{Importer: mapImporter{checked: checked, fallback: extImp}}
		pkg, err := conf.Check(p, fset, parsed[p], info)
		if err != nil {
			return nil, err
		}
		checked[p] = pkg
		prog.Packages = append(prog.Packages, &analysis.Package{
			Path: p, Files: parsed[p], Pkg: pkg, TypesInfo: info,
		})
	}
	return prog, nil
}

type mapImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return m.fallback.Import(path)
}
