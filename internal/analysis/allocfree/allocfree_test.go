package allocfree_test

import (
	"testing"

	"tsvstress/internal/analysis/allocfree"
	"tsvstress/internal/analysis/analysistest"
)

// TestKernels recompiles the fixture with -m through the real
// toolchain: clean kernels prove silently, escaping make/moved-to-heap
// fail, and grow-helper reallocs are excused.
func TestKernels(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, ".", "allocfree/kernels")
}
